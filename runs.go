package ufsclust

import (
	"ufsclust/internal/core"
	"ufsclust/internal/driver"
	"ufsclust/internal/ufs"
)

// RunConfig is one row of the paper's Figure 9: a complete benchmark
// configuration combining on-disk tuning, code path, and heuristics.
type RunConfig struct {
	Name       string
	ClusterKB  int    // cluster size: maxcontig * 8 KB
	RotdelayMs int    // allocator gap
	UFSVersion string // which engine: "4.1.1" clustered / "4.1" legacy
	FreeBehind bool
	WriteLimit bool
}

// WriteLimitBytes is the paper's per-file cap on queued write I/O:
// "we allow a fairly large (currently 240KB) amount of I/O per file in
// the disk queue."
const WriteLimitBytes = 240 << 10

// RunA is SunOS 4.1.1 tuned to 120 KB clusters: clustering engine,
// contiguous allocation, free-behind, write limit.
func RunA() RunConfig {
	return RunConfig{Name: "A", ClusterKB: 120, RotdelayMs: 0, UFSVersion: "4.1.1", FreeBehind: true, WriteLimit: true}
}

// RunB is the legacy engine plus both heuristics.
func RunB() RunConfig {
	return RunConfig{Name: "B", ClusterKB: 8, RotdelayMs: 4, UFSVersion: "4.1", FreeBehind: true, WriteLimit: true}
}

// RunC is the legacy engine plus only the write limit.
func RunC() RunConfig {
	return RunConfig{Name: "C", ClusterKB: 8, RotdelayMs: 4, UFSVersion: "4.1", FreeBehind: false, WriteLimit: true}
}

// RunD approximates a stock SunOS 4.1 installation.
func RunD() RunConfig {
	return RunConfig{Name: "D", ClusterKB: 8, RotdelayMs: 4, UFSVersion: "4.1", FreeBehind: false, WriteLimit: false}
}

// Runs returns all four configurations in paper order.
func Runs() []RunConfig { return []RunConfig{RunA(), RunB(), RunC(), RunD()} }

// Options converts a run configuration into machine options. Extra
// tweaks (memory size, seed) can be applied to the result.
func (rc RunConfig) Options() Options {
	maxcontig := rc.ClusterKB / 8
	if maxcontig < 1 {
		maxcontig = 1
	}
	dc := driver.DefaultConfig()
	if rc.ClusterKB*1024 > dc.MaxPhys {
		// Run A's 120 KB clusters need a driver without the 16-bit
		// limitation.
		dc.MaxPhys = 128 << 10
	}
	o := Options{
		Mkfs: ufs.MkfsOpts{Rotdelay: rc.RotdelayMs, Maxcontig: maxcontig},
		Engine: core.Config{
			Clustered:  rc.UFSVersion == "4.1.1",
			ReadAhead:  true,
			FreeBehind: rc.FreeBehind,
		},
		Driver: &dc,
	}
	if rc.WriteLimit {
		o.Mount.WriteLimit = WriteLimitBytes
	}
	return o
}

// NewMachineForRun assembles a machine for one of the paper's runs.
// It is New(rc) with no options; kept for existing callers.
func NewMachineForRun(rc RunConfig) (*Machine, error) {
	return New(rc)
}
