package ufsclust

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"ufsclust/internal/disk"
	"ufsclust/internal/fault"
	"ufsclust/internal/sim"
)

var updateManifest = flag.Bool("update-manifest", false, "rewrite testdata/metrics_manifest.txt")

// TestMetricsManifest pins the full set of registered metric and
// histogram names. A new counter (or a renamed one) must show up here
// deliberately — regenerate with -update-manifest — so dashboards and
// tests reading Snapshot names never silently lose a series.
func TestMetricsManifest(t *testing.T) {
	m, err := New(RunA())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	snap := m.Snapshot()
	var sb strings.Builder
	for _, e := range snap.Entries {
		kind := "counter"
		if e.Gauge {
			kind = "gauge"
		}
		fmt.Fprintf(&sb, "%s %s\n", e.Name, kind)
	}
	for _, h := range snap.Hists {
		fmt.Fprintf(&sb, "%s hist\n", h.Name)
	}
	got := sb.String()
	const path = "testdata/metrics_manifest.txt"
	if *updateManifest {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-manifest)", err)
	}
	if got != string(want) {
		t.Fatalf("metric registry drifted from %s (regenerate with -update-manifest):\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

func TestFaultCountersMeasuredBySnapshotDelta(t *testing.T) {
	// A transient write failure bumps the fault and retry counters, and
	// Snapshot/Delta isolates the measured phase without resetting
	// anything — the pattern that replaced the removed ResetStats shim.
	m, err := New(RunA(), WithFaultPlan(fault.Plan{Rules: []fault.Rule{
		fault.FailNth(1, fault.Writes, 1),
	}}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(p, 0, make([]byte, 8192)); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(p); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	post := m.Snapshot()
	if post.Get("fault.media_injected") != 1 {
		t.Fatalf("fault.media_injected = %d, want 1", post.Get("fault.media_injected"))
	}
	if post.Get("driver.retries") != 1 {
		t.Fatalf("driver.retries = %d, want 1", post.Get("driver.retries"))
	}
	// A quiet interval deltas to zero for every fault-path counter: no
	// residue, no interference between back-to-back measurements.
	quiet := m.Snapshot().Delta(post)
	for _, name := range []string{
		"fault.media_injected", "fault.cuts",
		"driver.retries", "driver.giveups", "disk.media_errors",
	} {
		if v := quiet.Get(name); v != 0 {
			t.Errorf("%s = %d across a quiet interval, want 0", name, v)
		}
	}
}

func TestWithFaultPlanHardErrorReachesCaller(t *testing.T) {
	// A hard media error on a data write surfaces through fsync as a
	// typed error chain: core → ufs → driver.DevError → disk.ErrMedia.
	m, err := New(RunA(), WithFaultPlan(fault.Plan{Rules: []fault.Rule{
		fault.FailNthHard(1, fault.Writes),
	}}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var ioErr error
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/f")
		if err != nil {
			// The very first write in this run may already be the
			// metadata write the plan kills.
			ioErr = err
			return
		}
		if _, err := f.Write(p, 0, make([]byte, 64<<10)); err != nil {
			ioErr = err
			return
		}
		ioErr = f.Fsync(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ioErr == nil {
		t.Fatal("hard media error never surfaced")
	}
	if !errors.Is(ioErr, disk.ErrMedia) {
		t.Fatalf("error %v does not unwrap to disk.ErrMedia", ioErr)
	}
}

func TestInvalidFaultPlanRejectedAtConstruction(t *testing.T) {
	_, err := New(RunA(), WithFaultPlan(fault.Plan{Rules: []fault.Rule{
		{Kind: fault.PowerCut, At: -1},
	}}))
	if err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	// A machine booted from another machine's platter snapshot sees the
	// same file system — and the snapshot is a deep copy, so the donor
	// writing afterwards does not leak through.
	m1, err := New(RunA())
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	payload := bytes.Repeat([]byte("extent"), 4096)
	err = m1.Run(func(p *sim.Proc) {
		f, err := m1.Engine.Create(p, "/keep")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(p, 0, payload); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(p); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m1.FS.SyncImage()
	img := m1.Disk.Snapshot()

	// Donor keeps writing after the snapshot.
	err = m1.Run(func(p *sim.Proc) {
		f, err := m1.Engine.Create(p, "/after")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.Write(p, 0, []byte("late")); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(p); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	m2, err := New(RunA(), WithImage(img))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	err = m2.Run(func(p *sim.Proc) {
		f, err := m2.Engine.Open(p, "/keep")
		if err != nil {
			t.Errorf("open /keep: %v", err)
			return
		}
		got := make([]byte, len(payload))
		if _, err := f.Read(p, 0, got); err != nil {
			t.Errorf("read /keep: %v", err)
			return
		}
		if !bytes.Equal(got, payload) {
			t.Error("payload changed across snapshot/restore")
		}
		if _, err := m2.Engine.Open(p, "/after"); err == nil {
			t.Error("post-snapshot donor write leaked into the restored image")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := m2.Fsck(); err != nil || !rep.Clean() {
		t.Fatalf("restored image not clean: %v %v", err, rep)
	}
}
