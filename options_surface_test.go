package ufsclust

import (
	"io"
	"reflect"
	"testing"

	"ufsclust/internal/core"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/fault"
	"ufsclust/internal/prefetch"
	"ufsclust/internal/ufs"
	"ufsclust/internal/vec"
	"ufsclust/internal/vol"
	"ufsclust/internal/wal"
)

// TestPublicOptionsSurface pins the Options struct field list. Adding,
// removing, or renaming a field must touch this list deliberately —
// the functional options, README, and DESIGN.md all follow from it.
func TestPublicOptionsSurface(t *testing.T) {
	want := []string{
		"Seed", "MIPS", "MemBytes",
		"Disk", "Driver", "Mkfs", "Mount", "Engine",
		"EventJSONL", "Fault",
		"Image", "RepairImage",
		"Volume", "VolImages",
		"Journal",
	}
	typ := reflect.TypeOf(Options{})
	got := make([]string, 0, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		got = append(got, typ.Field(i).Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Options fields drifted:\ngot:  %v\nwant: %v", got, want)
	}
}

// TestOptionConstructorsCompose pins every With* constructor by
// reference — a removed or re-signatured option fails to compile here —
// and checks they all apply cleanly to one Options value.
func TestOptionConstructorsCompose(t *testing.T) {
	opts := []Option{
		WithSeed(7),
		WithMIPS(12),
		WithMemBytes(8 << 20),
		WithDiskParams(disk.DefaultParams()),
		WithDriverConfig(driver.DefaultConfig()),
		WithMkfs(ufs.MkfsOpts{}),
		WithMount(ufs.MountOpts{}),
		WithEngine(core.Config{}),
		WithWriteLimit(0),
		WithFreeBehind(false),
		WithReadAhead(prefetch.NewFixed()),
		WithVecStrategy(vec.Auto(0)),
		WithTelemetry(io.Discard),
		WithFaultPlan(fault.Plan{}),
		WithImage(nil),
		WithRecovery(),
		WithCrashRecovery(nil),       // deprecated shim, still present
		WithVolume(vol.Config{}),
		WithVolumeImages(nil),
		WithVolumeCrashRecovery(nil), // deprecated shim, still present
		WithJournal(wal.Config{}),
	}
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	if o.Journal == nil || o.Seed != 7 {
		t.Error("options did not apply")
	}
}

// TestResetStatsRemoved pins the removal milestone documented in the
// telemetry PR: the deprecated Machine.ResetStats shim is gone, and no
// method of that name may quietly come back.
func TestResetStatsRemoved(t *testing.T) {
	mt := reflect.TypeOf(&Machine{})
	for i := 0; i < mt.NumMethod(); i++ {
		if mt.Method(i).Name == "ResetStats" {
			t.Error("Machine.ResetStats is back; measure with Snapshot/Delta instead")
		}
	}
}
