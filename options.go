package ufsclust

import (
	"io"

	"ufsclust/internal/core"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/fault"
	"ufsclust/internal/prefetch"
	"ufsclust/internal/ufs"
	"ufsclust/internal/vec"
	"ufsclust/internal/vol"
	"ufsclust/internal/wal"
)

// Option adjusts the machine options derived from a RunConfig. Options
// compose left to right, so later options win.
type Option func(*Options)

// WithSeed sets the simulation's RNG seed.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithMIPS sets the CPU speed in million instructions per second.
func WithMIPS(mips float64) Option {
	return func(o *Options) { o.MIPS = mips }
}

// WithMemBytes sets physical memory (0 keeps the paper's 8 MB).
func WithMemBytes(n int64) Option {
	return func(o *Options) { o.MemBytes = n }
}

// WithDiskParams replaces the drive characteristics.
func WithDiskParams(p disk.Params) Option {
	return func(o *Options) { o.Disk = &p }
}

// WithDriverConfig replaces the driver configuration.
func WithDriverConfig(c driver.Config) Option {
	return func(o *Options) { o.Driver = &c }
}

// WithMkfs replaces the mkfs tuning.
func WithMkfs(mk ufs.MkfsOpts) Option {
	return func(o *Options) { o.Mkfs = mk }
}

// WithMount replaces the mount options.
func WithMount(mo ufs.MountOpts) Option {
	return func(o *Options) { o.Mount = mo }
}

// WithEngine replaces the engine configuration.
func WithEngine(c core.Config) Option {
	return func(o *Options) { o.Engine = c }
}

// WithWriteLimit sets the per-file cap on queued write bytes
// (0 disables the limit), overriding the RunConfig's choice.
func WithWriteLimit(bytes int64) Option {
	return func(o *Options) { o.Mount.WriteLimit = bytes }
}

// WithFreeBehind overrides the RunConfig's free-behind setting.
func WithFreeBehind(on bool) Option {
	return func(o *Options) { o.Engine.FreeBehind = on }
}

// WithReadAhead selects the clustered engine's read-ahead policy:
//
//	WithReadAhead(prefetch.NewFixed())                       // the paper's one-cluster nextrio (the default)
//	WithReadAhead(prefetch.NewAdaptive(prefetch.AdaptiveConfig{})) // confidence-driven ramping window
//	WithReadAhead(prefetch.Off())                            // no read-ahead at all
//
// Policies carry per-file detector state, so build a fresh policy per
// machine — never share one instance across machines (inode numbers
// collide). The default fixed policy is byte-identical to the pre-policy
// engine: same events, same trace, same goldens.
func WithReadAhead(pol prefetch.Policy) Option {
	return func(o *Options) {
		o.Engine.Prefetch = pol
		o.Engine.ReadAhead = pol != nil
	}
}

// WithVecStrategy selects how Readv/Writev service multi-element
// vectors (see internal/vec):
//
//	WithVecStrategy(vec.Auto(0))    // density-threshold sieve/list pick (the default)
//	WithVecStrategy(vec.UseSieve()) // always data sieving
//	WithVecStrategy(vec.UseList())  // always true list I/O
//	WithVecStrategy(vec.UseNaive()) // per-piece baseline
//
// Single-element vectors always take the scalar Read/Write paths,
// whatever the strategy.
func WithVecStrategy(s vec.Strategy) Option {
	return func(o *Options) { o.Engine.Vec = s }
}

// WithTelemetry streams every telemetry event to w as JSON Lines.
// Same-seed runs produce byte-identical streams.
func WithTelemetry(w io.Writer) Option {
	return func(o *Options) { o.EventJSONL = w }
}

// WithFaultPlan installs a fault plan: media errors and power cuts
// injected at deterministic points (see internal/fault). Same seed,
// same plan, same workload — same faults:
//
//	m, _ := ufsclust.New(ufsclust.RunA(),
//		ufsclust.WithFaultPlan(fault.Plan{Rules: []fault.Rule{
//			fault.FailNth(3, fault.Writes, 1), // 3rd write errors once, then succeeds
//		}}))
func WithFaultPlan(pl fault.Plan) Option {
	return func(o *Options) { o.Fault = pl }
}

// WithImage boots the machine from a platter snapshot (disk.Disk's
// Snapshot) instead of running mkfs. The snapshot is deep-copied; the
// donor machine is not shared.
func WithImage(img *disk.Image) Option {
	return func(o *Options) { o.Image = img }
}

// WithRecovery boots from platter snapshots and runs ufs.Repair before
// mounting — the reboot-and-fsck path after a power cut. One image
// restores a bare-disk machine (disk.Disk's Snapshot); several restore
// a volume machine's members in member order (vol.Volume.Snapshot).
// The repair's report lands in Machine.RepairLog.
func WithRecovery(imgs ...*disk.Image) Option {
	return func(o *Options) {
		o.RepairImage = true
		o.VolImages = imgs
		if len(imgs) == 1 {
			o.Image = imgs[0]
		}
	}
}

// WithJournal reserves an on-disk log region at mkfs time and mounts
// the machine with the write-ahead metadata journal attached (see
// internal/wal). Metadata mutations are grouped into transactions,
// committed to the log with a checksum, and copied home lazily at
// checkpoints; recovery after a power cut becomes a bounded log replay
// instead of a full-image repair — WithRecovery notices the log region
// in the restored superblock and replays it automatically:
//
//	m, _ := ufsclust.New(ufsclust.RunA(),
//		ufsclust.WithJournal(wal.Config{}))
//
// The zero Config takes the defaults (64-block log, one log transfer
// per record); Clustered batches each commit's log sectors into
// MaxPhys-sized transfers. Without this option nothing changes: no log
// region is reserved and every event stream is byte-identical to the
// unjournaled machine.
func WithJournal(cfg wal.Config) Option {
	return func(o *Options) { o.Journal = &cfg }
}

// WithCrashRecovery boots from a platter snapshot and runs ufs.Repair
// before mounting.
//
// Deprecated: use WithRecovery(img) — one variadic option now covers
// bare-disk and volume machines.
func WithCrashRecovery(img *disk.Image) Option {
	return WithRecovery(img)
}

// WithVolume composes the machine's storage from several member drives
// instead of the single sd0 — a concat, stripe set, mirror, or RAID-5
// array (see internal/vol). The file system sees one synthetic drive of
// the composed data capacity; the driver keeps one request in flight
// per member so the spindles seek concurrently:
//
//	m, _ := ufsclust.New(ufsclust.RunA(),
//		ufsclust.WithVolume(vol.Config{Level: vol.RAID5, Members: 4}))
//
// Options.Disk, if also set, becomes the member drive template.
func WithVolume(cfg vol.Config) Option {
	return func(o *Options) { o.Volume = &cfg }
}

// WithVolumeImages boots a volume machine from member platter
// snapshots (vol.Volume.Snapshot) instead of running mkfs; the slice
// must have one image per member, in member order.
func WithVolumeImages(imgs []*disk.Image) Option {
	return func(o *Options) { o.VolImages = imgs }
}

// WithVolumeCrashRecovery boots a volume machine from member snapshots
// and runs ufs.Repair before mounting.
//
// Deprecated: use WithRecovery(imgs...) — one variadic option now
// covers bare-disk and volume machines.
func WithVolumeCrashRecovery(imgs []*disk.Image) Option {
	return WithRecovery(imgs...)
}

// New assembles a machine for one of the paper's run configurations,
// with functional options applied on top — the constructor sweeps use
// instead of mutating the Options struct by hand:
//
//	m, err := ufsclust.New(ufsclust.RunA(),
//		ufsclust.WithMemBytes(16<<20),
//		ufsclust.WithSeed(7))
func New(rc RunConfig, opts ...Option) (*Machine, error) {
	o := rc.Options()
	for _, fn := range opts {
		fn(&o)
	}
	return NewMachine(o)
}
