// Database: a transaction-like workload of random 8 KB updates over a
// large table file, with a periodic "checkpoint" that rewrites a region
// sequentially. Shows the write-limit fairness trade-off the paper
// accepted (random updates get slightly slower) and the latency
// protection it buys: with the limit, a concurrent small writer's
// fsync latency stays bounded while the checkpoint runs; without it the
// checkpoint's queue starves everyone.
package main

import (
	"fmt"
	"log"

	"ufsclust"
	"ufsclust/internal/sim"
)

const (
	tableSize  = 16 << 20
	checkpoint = 4 << 20
	updates    = 400
)

func main() {
	fmt.Println("random-update database with a concurrent checkpoint, twice:")
	for _, limit := range []int64{ufsclust.WriteLimitBytes, 0} {
		run(limit)
	}
	fmt.Println("(the paper: \"We made a tradeoff between performance and fairness in favor of fairness\")")
}

func run(limit int64) {
	m, err := ufsclust.New(ufsclust.RunA(), ufsclust.WithWriteLimit(limit))
	if err != nil {
		log.Fatal(err)
	}

	var updateRate float64
	var worstLog sim.Time

	err = m.Run(func(p *sim.Proc) {
		table, err := m.Engine.Create(p, "/table.db")
		if err != nil {
			log.Fatal(err)
		}
		chunk := make([]byte, 120<<10)
		for off := int64(0); off < tableSize; off += int64(len(chunk)) {
			table.Write(p, off, chunk)
		}
		table.Fsync(p)

		logf, err := m.Engine.Create(p, "/commit.log")
		if err != nil {
			log.Fatal(err)
		}

		// Checkpointer: rewrites a big region sequentially, hogging the
		// queue if nothing stops it.
		m.Sim.SpawnDaemon("checkpoint", func(cp *sim.Proc) {
			for {
				for off := int64(0); off < checkpoint; off += int64(len(chunk)) {
					table.Write(cp, off, chunk)
				}
				table.Fsync(cp)
				cp.Sleep(50 * sim.Millisecond)
			}
		})

		// Log writer: small synchronous commits; its latency is what
		// the fairness fix protects.
		rec := make([]byte, 8192)
		var logOff int64
		m.Sim.SpawnDaemon("logger", func(lp *sim.Proc) {
			for {
				lp.Sleep(40 * sim.Millisecond)
				t0 := lp.Now()
				logf.Write(lp, logOff, rec)
				logf.Fsync(lp)
				logOff += 8192
				if dt := lp.Now() - t0; dt > worstLog {
					worstLog = dt
				}
			}
		})

		// Foreground: random updates.
		buf := make([]byte, 8192)
		t0 := p.Now()
		for i := 0; i < updates; i++ {
			off := m.Sim.Rand.Int63n(tableSize/8192) * 8192
			table.Write(p, off, buf)
		}
		table.Fsync(p)
		updateRate = float64(updates*8192) / 1024 / (p.Now() - t0).Seconds()
		m.Sim.Stop() // checkpoint and logger daemons run forever
	})
	if err != nil {
		log.Fatal(err)
	}

	name := "240KB write limit"
	if limit == 0 {
		name = "no write limit   "
	}
	fmt.Printf("  %s: random updates %4.0f KB/s, worst commit latency %8v, write stalls %d\n",
		name, updateRate, worstLog, m.Engine.Stats.WriteStalls)
}
