// Quickstart: build the paper's machine, write a file through the
// clustering engine, read it back, and look at what the disk actually
// did — whole clusters instead of single blocks.
package main

import (
	"fmt"
	"log"

	"ufsclust"
	"ufsclust/internal/sim"
)

func main() {
	// Run A is the paper's SunOS 4.1.1 configuration: 120 KB clusters,
	// contiguous allocation, free-behind, 240 KB write limit.
	m, err := ufsclust.New(ufsclust.RunA())
	if err != nil {
		log.Fatal(err)
	}

	const size = 1 << 20 // 1 MB
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}

	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/hello.dat")
		if err != nil {
			log.Fatal(err)
		}
		// Write like an application would: 8 KB at a time.
		for off := 0; off < size; off += 8192 {
			if _, err := f.Write(p, int64(off), data[off:off+8192]); err != nil {
				log.Fatal(err)
			}
		}
		f.Fsync(p)
		fmt.Printf("wrote %d KB in %v of virtual time\n", size/1024, p.Now())

		// Drop the cache and read it back cold.
		f.Purge(p)
		t0 := p.Now()
		buf := make([]byte, 8192)
		for off := int64(0); off < size; off += 8192 {
			f.Read(p, off, buf)
		}
		dt := p.Now() - t0
		fmt.Printf("read it back at %.0f KB/s\n", float64(size)/1024/dt.Seconds())
	})
	if err != nil {
		log.Fatal(err)
	}

	// The point of the paper: 128 blocks moved in a handful of I/Os.
	// Counters come from the telemetry snapshot, keyed by name.
	snap := m.Snapshot()
	fmt.Printf("disk saw %d write requests and %d read requests for %d file blocks\n",
		snap.Get("disk.writes"), snap.Get("disk.reads"), size/8192)
	fmt.Printf("CPU charged: %v (%.0f%% utilization)\n",
		sim.Time(snap.Get("cpu.system_ns")), m.CPU.Utilization()*100)

	// And the on-disk format is still plain UFS:
	rep, err := m.Fsck()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fsck: %d files, clean=%v\n", rep.Files, rep.Clean())
}
