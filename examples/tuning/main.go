// Tuning: the paper's "Possible Improvements" section as a live
// experiment. Sweep the rotdelay tuning of the legacy block-at-a-time
// engine (with the track-buffer drive), then compare with clustering —
// showing why "file system tuning" alone was rejected: rotdelay 0 helps
// reads but makes writes "suffer horribly", any non-zero rotdelay caps
// sequential I/O near half the disk, and only clustering gets both.
package main

import (
	"fmt"
	"log"

	"ufsclust"
	"ufsclust/internal/core"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

const size = 8 << 20

func main() {
	fmt.Println("sequential rates (KB/s) by tuning, 8MB file, legacy engine:")
	fmt.Printf("%-26s %8s %8s\n", "configuration", "read", "write")
	for _, rot := range []int{8, 4, 2, 0} {
		r, w := measure(ufs.MkfsOpts{Rotdelay: rot, Maxcontig: 1}, core.Config{ReadAhead: true})
		fmt.Printf("rotdelay %dms%-14s %8.0f %8.0f\n", rot, "", r, w)
	}
	r, w := measure(ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 15},
		core.Config{Clustered: true, ReadAhead: true, FreeBehind: true})
	fmt.Printf("%-26s %8.0f %8.0f\n", "clustering (the paper)", r, w)
	fmt.Println("\nthe tuning-only row (rotdelay 0) shows the trade the paper rejects:")
	fmt.Println("reads ride the track buffer but each write waits a full rotation.")
}

func measure(mk ufs.MkfsOpts, cfg core.Config) (readKBs, writeKBs float64) {
	run := func(write bool) float64 {
		o := ufsclust.Options{Mkfs: mk, Engine: cfg}
		m, err := ufsclust.NewMachine(o)
		if err != nil {
			log.Fatal(err)
		}
		var elapsed sim.Time
		err = m.Run(func(p *sim.Proc) {
			f, err := m.Engine.Create(p, "/t")
			if err != nil {
				log.Fatal(err)
			}
			chunk := make([]byte, 8192)
			if !write {
				for off := int64(0); off < size; off += 8192 {
					f.Write(p, off, chunk)
				}
				f.Purge(p)
			}
			t0 := p.Now()
			for off := int64(0); off < size; off += 8192 {
				if write {
					f.Write(p, off, chunk)
				} else {
					f.Read(p, off, chunk)
				}
			}
			f.Fsync(p)
			elapsed = p.Now() - t0
		})
		if err != nil {
			log.Fatal(err)
		}
		return float64(size) / 1024 / elapsed.Seconds()
	}
	return run(false), run(true)
}
