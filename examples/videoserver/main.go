// Videoserver: the paper's motivating workload — "applications such as
// video and sound require much higher data rates than are available
// today through UFS". A 24 MB "video" (three times physical memory)
// is streamed while a second process keeps a working set of small files
// warm. With free-behind (run A) the stream recycles its own pages and
// the editor's cache survives; without it (free-behind off) the stream
// flushes everything through the pageout daemon.
package main

import (
	"fmt"
	"log"

	"ufsclust"
	"ufsclust/internal/sim"
)

const (
	videoSize = 24 << 20
	hotFiles  = 24
	hotSize   = 64 << 10
)

func main() {
	fmt.Println("streaming a 24MB video through an 8MB machine, twice:")
	for _, freeBehind := range []bool{true, false} {
		run(freeBehind)
	}
}

func run(freeBehind bool) {
	m, err := ufsclust.New(ufsclust.RunA(),
		ufsclust.WithFreeBehind(freeBehind),
		ufsclust.WithWriteLimit(0))
	if err != nil {
		log.Fatal(err)
	}

	var streamRate float64
	var editorHits, editorLookups int64

	err = m.Run(func(p *sim.Proc) {
		// Lay down the video and the editor's working set.
		video, err := m.Engine.Create(p, "/video.mjpg")
		if err != nil {
			log.Fatal(err)
		}
		chunk := make([]byte, 120<<10)
		for off := int64(0); off < videoSize; off += int64(len(chunk)) {
			video.Write(p, off, chunk)
		}
		video.Purge(p)

		var hot []*ufsclust.File
		small := make([]byte, hotSize)
		for i := 0; i < hotFiles; i++ {
			f, err := m.Engine.Create(p, fmt.Sprintf("/doc%d", i))
			if err != nil {
				log.Fatal(err)
			}
			f.Write(p, 0, small)
			f.Fsync(p)
			hot = append(hot, f)
		}
		// Warm the editor's cache.
		for _, f := range hot {
			f.Read(p, 0, small)
		}

		// Editor process: periodically touches its files.
		m.Sim.SpawnDaemon("editor", func(ep *sim.Proc) {
			buf := make([]byte, 8192)
			for {
				ep.Sleep(200 * sim.Millisecond)
				for _, f := range hot {
					lk := m.VM.Stats.Lookups
					h := m.VM.Stats.Hits + m.VM.Stats.Reclaims
					f.Read(ep, 0, buf)
					editorLookups += m.VM.Stats.Lookups - lk
					editorHits += m.VM.Stats.Hits + m.VM.Stats.Reclaims - h
				}
			}
		})

		// The stream.
		t0 := p.Now()
		buf := make([]byte, 64<<10)
		for off := int64(0); off < videoSize; off += int64(len(buf)) {
			video.Read(p, off, buf)
		}
		streamRate = float64(videoSize) / 1024 / (p.Now() - t0).Seconds()
		m.Sim.Stop() // the editor daemon would run forever
	})
	if err != nil {
		log.Fatal(err)
	}

	hitRate := float64(editorHits) / float64(editorLookups) * 100
	fmt.Printf("  free-behind %-5v: stream %4.0f KB/s, editor cache hit rate %3.0f%%, "+
		"pageout daemon scanned %d pages, stream freed %d of its own pages\n",
		freeBehind, streamRate, hitRate, m.VM.Stats.Scans, m.Engine.Stats.FreeBehinds)
}
