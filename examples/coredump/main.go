// Coredump: the paper's fairness pathology — "a large process dumping
// core can cause the system to be temporarily unusable, since all the
// pages are essentially locked (they are dirty and in the disk queue)".
// A 6 MB core file is dumped as fast as the CPU allows on an 8 MB
// machine while an interactive process just tries to read one block at
// a time. With the per-file write limit the interactive read latency
// stays sane; without it the dumper owns memory and the disk queue.
package main

import (
	"fmt"
	"log"

	"ufsclust"
	"ufsclust/internal/sim"
)

const coreSize = 6 << 20

func main() {
	fmt.Println("a process dumps core while another tries to work, twice:")
	for _, limit := range []int64{ufsclust.WriteLimitBytes, 0} {
		run(limit)
	}
}

func run(limit int64) {
	m, err := ufsclust.New(ufsclust.RunA(), ufsclust.WithWriteLimit(limit))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	var worst, total sim.Time
	var nreads int
	var dumpTime sim.Time

	err = m.Run(func(p *sim.Proc) {
		// The victim's file, warm on disk.
		doc, err := m.Engine.Create(p, "/notes.txt")
		if err != nil {
			log.Fatal(err)
		}
		doc.Write(p, 0, make([]byte, 1<<20))
		doc.Purge(p)

		dumper, err := m.Engine.Create(p, "/core")
		if err != nil {
			log.Fatal(err)
		}

		done := false
		m.Sim.SpawnDaemon("dumper", func(dp *sim.Proc) {
			chunk := make([]byte, 56<<10)
			t0 := dp.Now()
			for off := int64(0); off < coreSize; off += int64(len(chunk)) {
				dumper.Write(dp, off, chunk)
			}
			dumper.Fsync(dp)
			dumpTime = dp.Now() - t0
			done = true
		})

		// The interactive victim: one cold 8 KB read every 100 ms.
		buf := make([]byte, 8192)
		var off int64
		for !done {
			p.Sleep(100 * sim.Millisecond)
			t0 := p.Now()
			doc.Read(p, off%(1<<20), buf)
			dt := p.Now() - t0
			total += dt
			nreads++
			if dt > worst {
				worst = dt
			}
			off += 8192
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	name := "240KB write limit"
	if limit == 0 {
		name = "no write limit   "
	}
	fmt.Printf("  %s: core dumped in %8v; victim reads: worst %8v, mean %8v, memory waits %d\n",
		name, dumpTime, worst, total/sim.Time(nreads), m.VM.Stats.MemWaits)
}
