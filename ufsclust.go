// Package ufsclust reproduces McVoy & Kleiman, "Extent-like Performance
// from a UNIX File System" (USENIX Winter 1991): file system I/O
// clustering in UFS, evaluated on a simulated SunOS machine.
//
// The package assembles a complete simulated machine — a 12-MIPS CPU
// with an instruction-cost model, an 8 MB unified page cache with a
// two-handed-clock pageout daemon, a disksort block driver, and a
// rotational 400 MB SCSI disk with a track buffer — runs a byte-accurate
// FFS/UFS on it, and exposes the paper's two data-path engines (legacy
// block-at-a-time vs. clustered) plus its benchmark configurations A-D.
//
// Quick start:
//
//	m, _ := ufsclust.New(ufsclust.RunA())
//	pre := m.Snapshot()
//	m.Run(func(p *sim.Proc) {
//		f, _ := m.Engine.Create(p, "/data")
//		f.Write(p, 0, make([]byte, 1<<20))
//		f.Fsync(p)
//	})
//	delta := m.Snapshot().Delta(pre)
//	fmt.Println(delta.Get("disk.sectors_written"), m.Sim.Now())
package ufsclust

import (
	"fmt"
	"io"

	"ufsclust/internal/core"
	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/fault"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/ufs"
	"ufsclust/internal/vec"
	"ufsclust/internal/vm"
	"ufsclust/internal/vol"
	"ufsclust/internal/wal"
)

// File is an open file handle on the simulated file system.
type File = core.File

// Ext is one element of a Readv/Writev I/O vector: Len bytes at file
// offset Off (see internal/vec). Build vectors as []ufsclust.Ext and
// pass them straight to File.Readv / File.Writev:
//
//	v := []ufsclust.Ext{{Off: 0, Len: 8192}, {Off: 65536, Len: 8192}}
//	buf := make([]byte, 16384)
//	n, err := f.Readv(p, v, buf)
//
// The strategy behind the call — data sieving vs. true list I/O — is
// selected per machine with WithVecStrategy.
type Ext = vec.Ext

// Options configures a simulated machine. Zero values select the
// paper's hardware: 12 MIPS, 8 MB memory, the 400 MB drive.
type Options struct {
	Seed     int64
	MIPS     float64
	MemBytes int64

	Disk   *disk.Params   // nil = disk.DefaultParams()
	Driver *driver.Config // nil = driver.DefaultConfig()
	Mkfs   ufs.MkfsOpts
	Mount  ufs.MountOpts
	Engine core.Config

	// EventJSONL, when non-nil, receives every telemetry event as one
	// JSON line (see internal/telemetry's JSONLWriter). Same-seed runs
	// produce byte-identical streams.
	EventJSONL io.Writer

	// Fault is the machine's fault plan (media errors, power cuts);
	// the zero value injects nothing. See internal/fault.
	Fault fault.Plan

	// Image, when non-nil, is a platter snapshot (disk.Disk.Snapshot)
	// restored instead of running mkfs; the machine mounts the existing
	// file system. RepairImage additionally runs ufs.Repair on the
	// image before mounting — the crash-recovery path.
	Image       *disk.Image
	RepairImage bool

	// Volume, when non-nil, composes the machine's storage from several
	// member drives (concat, RAID-0/1/5 — see internal/vol) instead of
	// the single sd0. Options.Disk becomes the member template when
	// Volume.Member is nil. Image is then ignored; VolImages restores
	// member snapshots (vol.Volume.Snapshot) instead.
	Volume    *vol.Config
	VolImages []*disk.Image

	// Journal, when non-nil, reserves an on-disk log region at mkfs
	// time and mounts the file system with the write-ahead metadata
	// journal attached (see internal/wal). Machines restored from a
	// journaled image attach the journal regardless — the mount follows
	// the format, so a recovery boot never silently drops journaling.
	Journal *wal.Config
}

// Machine is a fully assembled simulated system.
type Machine struct {
	Sim *sim.Sim
	CPU *cpu.Model

	// Dev is the block device under the driver: the bare Disk, or the
	// Vol composing several. Always non-nil.
	Dev disk.Device
	// Disk is the bare drive on a single-disk machine; nil when the
	// machine was built with a volume (use Vol, or Dev for the common
	// block-device surface).
	Disk *disk.Disk
	// Vol is the composed volume on a volume machine; nil otherwise.
	Vol *vol.Volume

	Driver *driver.Driver
	VM     *vm.VM
	FS     *ufs.Fs
	Engine *core.Engine

	// Tel is the machine's telemetry: every subsystem's counters and
	// histograms registered in Tel.Reg, every subsystem's events
	// emitted on Tel.Bus. Read it through Snapshot; subscribe to
	// Tel.Bus for the structured event stream.
	Tel *telemetry.Telemetry

	// Fault executes the machine's fault plan. Always present (an
	// empty plan injects nothing), so fault.* metrics exist on every
	// machine. After a power cut, Fault.Crashed() reports true and
	// the disk image is frozen as of the cut.
	Fault *fault.Injector

	// RepairLog is the crash-recovery report when the machine was
	// built with RepairImage (WithRecovery) and recovered by full-image
	// repair; nil otherwise. Journaled machines recover by log replay
	// instead — see ReplayLog.
	RepairLog *ufs.RepairReport

	// WAL is the write-ahead metadata journal on a journaled machine
	// (WithJournal, or a restored image whose superblock carries a log
	// region); nil otherwise.
	WAL *wal.Log

	// ReplayLog is the log-replay report when a journaled machine was
	// built with RepairImage (WithRecovery): recovery replayed the
	// journal instead of running ufs.Repair. Nil otherwise.
	ReplayLog *wal.RecoverReport
}

// NewMachine builds a machine, formats its disk, and mounts it.
func NewMachine(o Options) (*Machine, error) {
	if o.MIPS == 0 {
		o.MIPS = 12
	}
	if o.MemBytes == 0 {
		o.MemBytes = 8 << 20
	}
	s := sim.New(o.Seed)
	cm := cpu.New(s, o.MIPS)
	tel := telemetry.New()

	var (
		dev disk.Device
		d   *disk.Disk
		vl  *vol.Volume
		err error
	)
	if o.Volume != nil {
		vc := *o.Volume
		if vc.Member == nil && o.Disk != nil {
			vc.Member = o.Disk
		}
		vl, err = vol.New(s, "vol0", vc)
		if err != nil {
			return nil, err
		}
		dev = vl
	} else {
		dp := disk.DefaultParams()
		if o.Disk != nil {
			dp = *o.Disk
		}
		d = disk.New(s, "sd0", dp)
		dev = d
	}

	dc := driver.DefaultConfig()
	if o.Driver != nil {
		dc = *o.Driver
	}
	dr := driver.New(s, dev, cm, dc)

	inj, err := fault.NewInjector(s, o.Fault)
	if err != nil {
		return nil, fmt.Errorf("fault plan: %w", err)
	}
	if vl != nil {
		vl.AttachFaults(inj)
	} else {
		d.AttachFaults(inj)
	}

	var repairLog *ufs.RepairReport
	var replayLog *wal.RecoverReport
	restored := false
	if vl != nil && o.VolImages != nil {
		if err := vl.Restore(o.VolImages); err != nil {
			return nil, err
		}
		restored = true
	} else if vl == nil && o.Image != nil {
		d.Restore(o.Image)
		restored = true
	}
	if restored {
		if o.RepairImage {
			// A journaled image recovers by log replay — cost bounded by
			// the log region size — instead of the full-image sweep. The
			// restored superblock says which kind it is; an unreadable
			// primary superblock falls back to Repair, which knows how to
			// search the alternates.
			if sb, sbErr := ufs.ReadSuperblock(dev); sbErr == nil && sb.LogFrags > 0 {
				base, sectors := logGeometry(sb)
				replayLog, err = wal.Recover(dev, base, sectors, int(sb.Bsize))
				if err != nil {
					return nil, fmt.Errorf("wal recover: %w", err)
				}
			} else {
				repairLog, err = ufs.Repair(dev)
				if err != nil {
					return nil, fmt.Errorf("repair: %w", err)
				}
			}
		}
	} else {
		if o.Journal != nil && o.Mkfs.LogBlocks == 0 {
			o.Mkfs.LogBlocks = o.Journal.Blocks()
		}
		sb, err := ufs.Mkfs(dev, o.Mkfs)
		if err != nil {
			return nil, fmt.Errorf("mkfs: %w", err)
		}
		if sb.LogFrags > 0 {
			base, _ := logGeometry(sb)
			wal.Format(dev, base)
		}
	}
	fs, err := ufs.Mount(s, cm, dr, o.Mount)
	if err != nil {
		return nil, fmt.Errorf("mount: %w", err)
	}
	// The mount follows the format: any image whose superblock carries a
	// log region gets the journal attached, whether this machine was
	// built with WithJournal or restored from a journaled donor.
	var jl *wal.Log
	if fs.SB.LogFrags > 0 {
		cfg := wal.Config{}
		if o.Journal != nil {
			cfg = *o.Journal
		}
		base, sectors := logGeometry(fs.SB)
		jl, err = wal.New(s, dr, base, sectors, int(fs.SB.Bsize), cfg)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		jl.Flush = fs.StageCommit
		fs.AttachJournal(jl)
	}
	v := vm.New(s, cm, vm.Config{MemBytes: o.MemBytes})
	eng := core.NewEngine(s, cm, v, fs, o.Engine)
	cm.AttachTelemetry(tel)
	if vl != nil {
		vl.AttachTelemetry(tel)
	} else {
		d.AttachTelemetry(tel)
	}
	dr.AttachTelemetry(tel)
	fs.AttachTelemetry(tel)
	if jl != nil {
		// Journal metrics exist only on journaled machines, so the
		// pinned metric manifest of a default machine never changes.
		jl.AttachTelemetry(tel)
		tel.Reg.Counter("fs.journal_meta_writes", func() int64 { return fs.JournalMetaWrites })
	}
	v.AttachTelemetry(tel)
	eng.AttachTelemetry(tel)
	if o.EventJSONL != nil {
		tel.Bus.Subscribe(telemetry.NewJSONL(o.EventJSONL).Write)
	}
	// The injector's telemetry goes last so its crash_cut / fault_inject
	// lines appear in the JSONL stream after the event that triggered
	// them — the bus runs subscribers in registration order.
	inj.AttachTelemetry(tel)
	if replayLog != nil && tel.Bus.Active() {
		// Boot-time replay happened before the bus had subscribers;
		// surface it as the stream's first event.
		tel.Bus.Emit(telemetry.Event{
			T: s.Now(), Kind: telemetry.EvLogReplay,
			Blocks: int64(replayLog.Txns), Bytes: replayLog.SectorsRead, Depth: replayLog.SectorsWritten,
		})
	}
	return &Machine{Sim: s, CPU: cm, Dev: dev, Disk: d, Vol: vl, Driver: dr, VM: v, FS: fs,
		Engine: eng, Tel: tel, Fault: inj, RepairLog: repairLog, WAL: jl, ReplayLog: replayLog}, nil
}

// logGeometry converts the superblock's log-region fragments to the
// device sector range the wal package works in.
func logGeometry(sb *ufs.Superblock) (base, sectors int64) {
	return sb.FsbToDb(sb.LogStart), int64(sb.LogFrags) * int64(sb.Fsize) / disk.SectorSize
}

// Run spawns fn as a simulated process and drives the simulation until
// it (and everything it started) finishes.
func (m *Machine) Run(fn func(p *sim.Proc)) error {
	m.Sim.Spawn("main", fn)
	return m.Sim.Run()
}

// Close tears down the machine's simulation, unwinding the daemon
// goroutines (disk service loop, pageout) that otherwise outlive it.
// Call it once the machine is no longer needed; a Machine that is
// never closed leaks one host goroutine per daemon, which a parallel
// sweep running thousands of machines cannot afford.
func (m *Machine) Close() { m.Sim.Close() }

// Fsck flushes all state to the disk image and checks it.
func (m *Machine) Fsck() (*ufs.FsckReport, error) {
	m.FS.SyncImage()
	return ufs.Fsck(m.Dev)
}

// Snapshot reads every registered metric and histogram at the current
// virtual time. It is a pure read — no counter is disturbed, no
// simulated time passes — so interval measurement is simply:
//
//	pre := m.Snapshot()
//	... measured phase ...
//	delta := m.Snapshot().Delta(pre)
func (m *Machine) Snapshot() telemetry.Snapshot {
	return m.Tel.Reg.Snapshot(m.Sim.Now())
}

