# Extent-like Performance from a UNIX File System — reproduction.
#
# `make check` is the extended tier-1 gate (build + vet + simlint +
# tests + race on the sim kernel); see scripts/check.sh and ROADMAP.md.

.PHONY: all build test lint race check bench

all: check

build:
	go build ./...

test:
	go test ./...

# lint runs only the simulation-hygiene analyzers (cmd/simlint).
lint:
	go run ./cmd/simlint ./...

race:
	go test -race ./internal/sim/...

check:
	scripts/check.sh

# bench measures the sim kernel's host cost and refreshes BENCH_sim.json
# (the committed baseline is carried forward; see scripts/bench.sh).
bench:
	scripts/bench.sh
