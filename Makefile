# Extent-like Performance from a UNIX File System — reproduction.
#
# `make check` is the extended tier-1 gate (build + vet + simlint +
# tests + race on the sim kernel); see scripts/check.sh and ROADMAP.md.

.PHONY: all build test lint race check bench cover

all: check

build:
	go build ./...

test:
	go test ./...

# lint runs only the simulation-hygiene analyzers (cmd/simlint).
lint:
	go run ./cmd/simlint ./...

race:
	go test -race ./internal/sim/...

check:
	scripts/check.sh

# bench measures the sim kernel's host cost and refreshes BENCH_sim.json
# (the committed baseline is carried forward; see scripts/bench.sh).
bench:
	scripts/bench.sh

# cover writes a whole-tree coverage profile and prints the per-function
# summary tail plus the total.
cover:
	go test -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out | tail -n 1
	@echo "cover: wrote coverage.out (go tool cover -html=coverage.out to browse)"
