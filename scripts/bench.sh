#!/bin/sh
# bench.sh — host-performance harness for the simulation kernel.
#
# Builds cmd/simbench and measures the kernel's host cost (events/sec,
# allocs/event, context-switch and ping-pong latency, parallel-runner
# scaling, the telemetry bus's zero-subscriber Emit overhead, and the
# adaptive read-ahead policy's decision cost), writing the report to
# BENCH_sim.json at the repo root. Then builds cmd/iobench and writes
# the read-ahead policy comparison matrix (policy x {FSR, FRR, FMX}
# under memory pressure, simulated throughput and prefetch hit/waste
# counters), the volume matrix (cluster size x RAID level x stripe
# width, with the parity-path counters), the vectored-I/O matrix
# (FSTR stride x Readv strategy, with the vec counters and the
# sieve/list crossover), and the metadata-journal matrix (journal mode
# x {FSW, FSR}, with the wal commit/checkpoint counters) to
# BENCH_iobench.json.
#
# If a BENCH_sim.json already exists, its recorded baseline (the
# pre-fast-path kernel, measured interleaved against the new one when
# this harness was introduced) is carried forward so the old-vs-new
# speedup columns stay anchored to the same reference across runs.
#
# Usage: scripts/bench.sh [extra simbench flags]
#   e.g. scripts/bench.sh -reps 12
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "==> go build ./cmd/simbench"
go build -o "$tmp/simbench" ./cmd/simbench

baseline=""
if [ -f BENCH_sim.json ]; then
    baseline="-baseline BENCH_sim.json"
    # simbench reads the baseline before the output file is replaced,
    # but write to a temp path anyway so an interrupted run cannot
    # leave a truncated report behind.
fi

echo "==> simbench"
# shellcheck disable=SC2086 # $baseline is intentionally word-split
"$tmp/simbench" $baseline -o "$tmp/BENCH_sim.json" "$@"

mv "$tmp/BENCH_sim.json" BENCH_sim.json
echo "bench: wrote BENCH_sim.json"

echo "==> go build ./cmd/iobench"
go build -o "$tmp/iobench" ./cmd/iobench

echo "==> iobench -ramatrix -volmatrix -vecmatrix -jmatrix"
"$tmp/iobench" -ramatrix "$tmp/BENCH_iobench.json" -volmatrix "$tmp/BENCH_iobench.json" -vecmatrix "$tmp/BENCH_iobench.json" -jmatrix "$tmp/BENCH_iobench.json"
mv "$tmp/BENCH_iobench.json" BENCH_iobench.json
echo "bench: wrote BENCH_iobench.json"
