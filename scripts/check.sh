#!/bin/sh
# check.sh — the extended tier-1 gate (see ROADMAP.md).
#
# Runs, in order:
#   1. go build ./...                      everything compiles
#   2. go vet ./...                        stock vet findings
#   3. simlint ./...                       determinism & simulation-hygiene
#                                          rules (internal/analysis), the
#                                          interprocedural simflow rules
#                                          (blockpath, buspure, timeflow),
#                                          and the stalesuppress meta-rule;
#                                          the tree must be clean or
#                                          explicitly annotated
#      simlint internal/analysis/...       self-run: the analyzers eat
#                                          their own dog food even if the
#                                          main sweep's patterns change
#   4. go test ./...                       the full test suite, including
#                                          the same-seed replay gate and
#                                          the simlint golden tests
#   5. go test -race ./internal/sim/...    the packages that touch host
#      go test -race ./internal/runner/... goroutines and channels
#      go test -race ./internal/telemetry/...  (and the bus, whose
#                                          subscribers run on hot paths)
#      go test -race ./internal/fault/...  (injector runs inline on the
#                                          bus, in parallel sweeps)
#      go test -race ./internal/prefetch/...  (policies are shared across
#                                          parallel iobench cells only by
#                                          mistake; the race run proves a
#                                          per-machine policy never is)
#      go test -race ./internal/vec/...    (vec strategies run inline in
#                                          Readv/Writev across parallel
#                                          sweep cells)
#      go test -race ./internal/vol/... ./internal/faultlab/...
#                                          (volume machines run in
#                                          parallel sweep workers; the
#                                          race run proves no member or
#                                          parity state leaks between
#                                          host goroutines)
#      go test -race ./internal/wal/...    (journaled machines run in
#                                          parallel sweep workers; the
#                                          race run proves log and frame
#                                          state never crosses machines)
#   6. faultlab smoke sweeps               8 crash points over a 2 MB
#                                          write — on the single drive,
#                                          on a degraded mirror, and on
#                                          a journaled machine (replay
#                                          recovery); exits nonzero on
#                                          any crash-consistency
#                                          violation
#   7. coverage summary                    go test -cover over the model
#                                          packages, informational
#
# Usage: scripts/check.sh  (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> simlint ./..."
go build -o "$tmp/simlint" ./cmd/simlint
"$tmp/simlint" ./...

echo "==> simlint self-run (internal/analysis/...)"
"$tmp/simlint" internal/analysis/...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/sim/..."
go test -race ./internal/sim/...

echo "==> go test -race ./internal/runner/..."
go test -race ./internal/runner/...

echo "==> go test -race ./internal/telemetry/..."
go test -race ./internal/telemetry/...

echo "==> go test -race ./internal/fault/..."
go test -race ./internal/fault/...

echo "==> go test -race ./internal/prefetch/..."
go test -race ./internal/prefetch/...

echo "==> go test -race ./internal/vec/..."
go test -race ./internal/vec/...

echo "==> go test -race -short ./internal/vol/... ./internal/faultlab/..."
go test -race -short ./internal/vol/... ./internal/faultlab/...

echo "==> go test -race ./internal/wal/..."
go test -race ./internal/wal/...

echo "==> faultlab smoke sweep"
go build -o "$tmp/faultlab" ./cmd/faultlab
"$tmp/faultlab" -file 2 -fsync 262144 -cuts 8 -seed 7

echo "==> faultlab smoke sweep (degraded mirror)"
"$tmp/faultlab" -file 2 -fsync 262144 -cuts 8 -seed 7 -vol raid1 -degraded 1

echo "==> faultlab smoke sweep (journaled, replay recovery)"
"$tmp/faultlab" -file 2 -fsync 262144 -cuts 8 -seed 7 -journal wal

echo "==> coverage summary (informational)"
go test -cover ./internal/vol/ ./internal/core/ ./internal/ufs/ ./internal/disk/ ./internal/driver/ ./internal/faultlab/ 2>/dev/null | awk '{printf "    %-28s %s\n", $2, $5}'

echo "check: all gates passed"
