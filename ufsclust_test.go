package ufsclust

import (
	"bytes"
	"testing"

	"ufsclust/internal/sim"
)

func TestNewMachineDefaults(t *testing.T) {
	m, err := NewMachine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.CPU.MIPS != 12 {
		t.Errorf("MIPS = %v, want 12 (the paper's machine)", m.CPU.MIPS)
	}
	if got := m.VM.TotalPages() * 8192; got != 8<<20 {
		t.Errorf("memory = %d, want 8MB", got)
	}
	if mb := m.Disk.Geom().TotalBytes() >> 20; mb < 380 || mb > 420 {
		t.Errorf("disk = %dMB, want ~400MB", mb)
	}
}

func TestRunConfigsMatchFigure9(t *testing.T) {
	runs := Runs()
	if len(runs) != 4 {
		t.Fatalf("%d runs, want 4", len(runs))
	}
	a, b, c, d := runs[0], runs[1], runs[2], runs[3]
	if a.ClusterKB != 120 || a.RotdelayMs != 0 || a.UFSVersion != "4.1.1" || !a.FreeBehind || !a.WriteLimit {
		t.Errorf("run A = %+v", a)
	}
	if b.ClusterKB != 8 || b.RotdelayMs != 4 || b.UFSVersion != "4.1" || !b.FreeBehind || !b.WriteLimit {
		t.Errorf("run B = %+v", b)
	}
	if c.FreeBehind || !c.WriteLimit {
		t.Errorf("run C = %+v", c)
	}
	if d.FreeBehind || d.WriteLimit {
		t.Errorf("run D = %+v", d)
	}
}

func TestRunAOptionsRaiseMaxphys(t *testing.T) {
	o := RunA().Options()
	if o.Driver.MaxPhys < 120<<10 {
		t.Errorf("run A maxphys = %d, cannot carry 120KB clusters", o.Driver.MaxPhys)
	}
	if o.Mount.WriteLimit != WriteLimitBytes {
		t.Errorf("run A write limit = %d", o.Mount.WriteLimit)
	}
	if o.Mkfs.Maxcontig != 15 {
		t.Errorf("run A maxcontig = %d, want 15 (120KB/8KB)", o.Mkfs.Maxcontig)
	}
}

func TestEndToEndThroughFacade(t *testing.T) {
	for _, rc := range Runs() {
		m, err := NewMachineForRun(rc)
		if err != nil {
			t.Fatalf("run %s: %v", rc.Name, err)
		}
		data := make([]byte, 256<<10)
		for i := range data {
			data[i] = byte(i * 31)
		}
		err = m.Run(func(p *sim.Proc) {
			f, err := m.Engine.Create(p, "/e2e")
			if err != nil {
				t.Errorf("run %s create: %v", rc.Name, err)
				return
			}
			f.Write(p, 0, data)
			f.Purge(p)
			got := make([]byte, len(data))
			f.Read(p, 0, got)
			if !bytes.Equal(got, data) {
				t.Errorf("run %s: data corrupted through full stack", rc.Name)
			}
		})
		if err != nil {
			t.Fatalf("run %s: %v", rc.Name, err)
		}
		rep, err := m.Fsck()
		if err != nil || !rep.Clean() {
			t.Fatalf("run %s fsck: %v %v", rc.Name, err, rep.Problems)
		}
	}
}

func TestOnDiskFormatIdenticalAcrossEngines(t *testing.T) {
	// The paper's constraint: the clustering engine changes no on-disk
	// structure. Write the same bytes through run A and run D onto
	// disks formatted identically (run D tuning), and compare images.
	images := make([][]byte, 0, 2)
	for _, engCfg := range []RunConfig{RunA(), RunD()} {
		o := engCfg.Options()
		// Same format for both: only the code path differs.
		o.Mkfs = RunD().Options().Mkfs
		o.Seed = 1
		m, err := NewMachine(o)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 128<<10)
		for i := range data {
			data[i] = byte(i * 7)
		}
		err = m.Run(func(p *sim.Proc) {
			f, err := m.Engine.Create(p, "/same")
			if err != nil {
				t.Error(err)
				return
			}
			f.Write(p, 0, data)
			f.Fsync(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		m.FS.SB.Time = 0 // normalize timestamps (none are set, but be safe)
		m.FS.SyncImage()
		var buf bytes.Buffer
		if err := m.Disk.DumpImage(&buf); err != nil {
			t.Fatal(err)
		}
		images = append(images, buf.Bytes())
	}
	if !bytes.Equal(images[0], images[1]) {
		t.Error("the two engines produced different on-disk images for the same writes")
	}
}

func TestSnapshotDeltaIsolatesMeasuredPhase(t *testing.T) {
	// Interval measurement is Snapshot-before / Snapshot-after / Delta —
	// nothing is reset, so back-to-back measurements on one machine
	// cannot interfere (the reason the ResetStats shim could go).
	m, err := NewMachineForRun(RunA())
	if err != nil {
		t.Fatal(err)
	}
	pre := m.Snapshot()
	err = m.Run(func(p *sim.Proc) {
		f, _ := m.Engine.Create(p, "/x")
		f.Write(p, 0, make([]byte, 64<<10))
		f.Fsync(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	busy := m.Snapshot()
	if busy.Delta(pre).Get("disk.sectors_written") == 0 {
		t.Fatal("no disk activity in the measured interval")
	}
	if quiet := m.Snapshot().Delta(busy); quiet.Get("disk.sectors_written") != 0 {
		t.Fatal("quiet interval shows disk activity")
	}
}
