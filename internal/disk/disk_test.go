package disk

import (
	"bytes"
	"testing"
	"testing/quick"

	"ufsclust/internal/sim"
)

func TestGeometryCapacity(t *testing.T) {
	g := DefaultGeometry()
	want := int64(1520) * 8 * 64 * SectorSize
	if g.TotalBytes() != want {
		t.Fatalf("TotalBytes = %d, want %d (~398MB)", g.TotalBytes(), want)
	}
	if mb := g.TotalBytes() >> 20; mb < 380 || mb > 420 {
		t.Fatalf("capacity %dMB not ~400MB", mb)
	}
}

func TestGeometryLocateRoundTrip(t *testing.T) {
	g := ZonedGeometry()
	// Walk assorted sectors and verify monotone, consistent decoding.
	var prev CHS
	for s := int64(0); s < g.TotalSectors(); s += 977 {
		c := g.Locate(s)
		if c.Sector >= g.Zones[c.Zone].SPT {
			t.Fatalf("sector %d: in-track index %d exceeds SPT", s, c.Sector)
		}
		if s > 0 && (c.Cyl < prev.Cyl) {
			t.Fatalf("sector %d: cylinder went backwards (%d < %d)", s, c.Cyl, prev.Cyl)
		}
		prev = c
	}
	// Last sector must land on the last cylinder.
	last := g.Locate(g.TotalSectors() - 1)
	if last.Cyl != g.Cylinders()-1 {
		t.Fatalf("last sector on cyl %d, want %d", last.Cyl, g.Cylinders()-1)
	}
}

func TestGeometryLocateExhaustiveSmall(t *testing.T) {
	g, err := NewGeometry(2, 3600, Zone{Cylinders: 3, SPT: 4}, Zone{Cylinders: 2, SPT: 6})
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := int64(3*2*4 + 2*2*6)
	if g.TotalSectors() != wantTotal {
		t.Fatalf("TotalSectors = %d, want %d", g.TotalSectors(), wantTotal)
	}
	// Reconstruct the absolute sector from the decoded CHS and compare.
	for s := int64(0); s < wantTotal; s++ {
		c := g.Locate(s)
		var abs int64
		if c.Zone == 1 {
			abs = 3 * 2 * 4
			abs += int64(c.Cyl-3)*2*6 + int64(c.Head)*6 + int64(c.Sector)
		} else {
			abs = int64(c.Cyl)*2*4 + int64(c.Head)*4 + int64(c.Sector)
		}
		if abs != s {
			t.Fatalf("Locate(%d) = %+v reconstructs to %d", s, c, abs)
		}
	}
}

func TestGeometryMediaRate(t *testing.T) {
	g := DefaultGeometry()
	r := g.MediaRate(0)
	// 64 sectors * 512 B per ~16.67 ms rev => ~1.9 MB/s.
	if r < 1.8e6 || r > 2.1e6 {
		t.Fatalf("media rate = %.0f B/s, want ~1.9MB/s", r)
	}
}

func TestBlockTimeMatchesPaper(t *testing.T) {
	// The paper: "the rotational delay of one block time ... For a file
	// system with a block size of 8KB this is 4 milliseconds on typical
	// disks."
	g := DefaultGeometry()
	blockTime := g.SectorTime(0) * Time(8192/SectorSize)
	if blockTime < 3900*Microsecond || blockTime > 4400*Microsecond {
		t.Fatalf("8KB block time = %v, want ~4ms", blockTime)
	}
}

func TestImageReadWriteRoundTrip(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := New(s, "d0", DefaultParams())
	data := make([]byte, 3*SectorSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	d.WriteImage(100, data)
	got := make([]byte, 3*SectorSize)
	d.ReadImage(100, got)
	if !bytes.Equal(got, data) {
		t.Fatal("image round trip mismatch")
	}
	// Unwritten sectors read as zeros.
	zero := make([]byte, SectorSize)
	got2 := make([]byte, SectorSize)
	d.ReadImage(99, got2)
	if !bytes.Equal(got2, zero) {
		t.Fatal("unwritten sector not zero")
	}
}

func TestImageCrossesChunkBoundary(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := New(s, "d0", DefaultParams())
	data := make([]byte, 4*chunkSectors*SectorSize)
	for i := range data {
		data[i] = byte(i)
	}
	start := int64(chunkSectors - 3)
	d.WriteImage(start, data)
	got := make([]byte, len(data))
	d.ReadImage(start, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk round trip mismatch")
	}
}

func TestTimedWriteThenReadMovesData(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := New(s, "d0", DefaultParams())
	data := make([]byte, 16*SectorSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	var got []byte
	s.Spawn("io", func(p *sim.Proc) {
		d.IO(p, &Request{Sector: 500, Count: 16, Write: true, Data: data})
		got = make([]byte, len(data))
		d.IO(p, &Request{Sector: 500, Count: 16, Data: got})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("timed I/O round trip mismatch")
	}
	if d.Stats.Reads != 1 || d.Stats.Writes != 1 {
		t.Fatalf("stats = %+v, want 1 read 1 write", d.Stats)
	}
	if s.Now() == 0 {
		t.Fatal("timed I/O consumed no virtual time")
	}
}

func TestSequentialContiguousReadNearMediaRate(t *testing.T) {
	// A single large contiguous read (the clustering ideal) must run at
	// close to the media rate, losing only seek + initial latency +
	// skew-covered head switches.
	s := sim.New(1)
	t.Cleanup(s.Close)
	p := DefaultParams()
	p.TrackBuffer = false
	d := New(s, "d0", p)
	const mb = 4 << 20
	buf := make([]byte, mb)
	s.Spawn("reader", func(pr *sim.Proc) {
		// One request per 120KB cluster, back to back.
		const clu = 120 << 10
		for off := 0; off < mb; off += clu {
			n := clu
			if off+n > mb {
				n = mb - off
			}
			d.IO(pr, &Request{Sector: int64(off / SectorSize), Count: n / SectorSize, Data: buf[off : off+n]})
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rate := float64(mb) / s.Now().Seconds()
	media := d.Geom().MediaRate(0)
	// Back-to-back synchronous requests with no track buffer pay a
	// rotation miss per request (command overhead lets the next sector
	// slip past); ~2/3 of media rate is the physical expectation, and
	// matches the paper's write numbers (1359 of ~1900 KB/s).
	if rate < 0.60*media {
		t.Fatalf("contiguous read rate %.0f B/s < 60%% of media rate %.0f", rate, media)
	}
	if rate > media {
		t.Fatalf("read rate %.0f exceeds media rate %.0f: impossible", rate, media)
	}
}

func TestContiguousReadWithTrackBufferNearMediaRate(t *testing.T) {
	// With the track buffer on (the paper's hardware), large contiguous
	// reads approach media rate: the buffer absorbs the per-request
	// command overhead by reading ahead on the platter.
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := New(s, "d0", DefaultParams())
	const mb = 4 << 20
	const clu = 120 << 10
	buf := make([]byte, mb)
	// Keep two requests outstanding, as cluster read-ahead does.
	pending := 0
	var q sim.WaitQ
	s.Spawn("reader", func(pr *sim.Proc) {
		for off := 0; off < mb; off += clu {
			n := clu
			if off+n > mb {
				n = mb - off
			}
			for pending >= 2 {
				pr.Block(&q)
			}
			pending++
			d.Submit(&Request{
				Sector: int64(off / SectorSize), Count: n / SectorSize,
				Data: buf[off : off+n],
				Done: func() { pending--; q.WakeAll() },
			})
		}
		for pending > 0 {
			pr.Block(&q)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rate := float64(mb) / s.Now().Seconds()
	media := d.Geom().MediaRate(0)
	if rate < 0.75*media {
		t.Fatalf("buffered pipelined read rate %.0f B/s < 75%% of media rate %.0f", rate, media)
	}
}

func TestInterleavedReadsHalfRate(t *testing.T) {
	// Blocks laid out with one-block gaps (rotdelay placement, fig. 4)
	// and read back to back without a track buffer: at most half the
	// media rate is achievable.
	s := sim.New(1)
	t.Cleanup(s.Close)
	p := DefaultParams()
	p.TrackBuffer = false
	d := New(s, "d0", p)
	const bsize = 8192
	const nblocks = 128
	buf := make([]byte, bsize)
	s.Spawn("reader", func(pr *sim.Proc) {
		for i := 0; i < nblocks; i++ {
			sector := int64(i) * 2 * (bsize / SectorSize) // gap after each block
			d.IO(pr, &Request{Sector: sector, Count: bsize / SectorSize, Data: buf})
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rate := float64(nblocks*bsize) / s.Now().Seconds()
	media := d.Geom().MediaRate(0)
	if rate > 0.55*media {
		t.Fatalf("interleaved read rate %.0f B/s > 55%% of media %.0f: gaps not modeled", rate, media)
	}
}

func TestTrackBufferSpeedsRereads(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := New(s, "d0", DefaultParams())
	buf := make([]byte, 8192)
	var first, second sim.Time
	s.Spawn("reader", func(pr *sim.Proc) {
		t0 := pr.Now()
		d.IO(pr, &Request{Sector: 0, Count: 16, Data: buf})
		first = pr.Now() - t0
		t0 = pr.Now()
		d.IO(pr, &Request{Sector: 16, Count: 16, Data: buf})
		second = pr.Now() - t0
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.BufHits != 1 || d.Stats.BufMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", d.Stats.BufHits, d.Stats.BufMisses)
	}
	if second >= first {
		t.Fatalf("buffered read (%v) not faster than mechanical (%v)", second, first)
	}
}

func TestWriteInvalidatesTrackBuffer(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := New(s, "d0", DefaultParams())
	buf := make([]byte, 8192)
	s.Spawn("io", func(pr *sim.Proc) {
		d.IO(pr, &Request{Sector: 0, Count: 16, Data: buf})              // fills buffer
		d.IO(pr, &Request{Sector: 0, Count: 16, Write: true, Data: buf}) // invalidates
		d.IO(pr, &Request{Sector: 16, Count: 16, Data: buf})             // must miss
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.BufHits != 0 {
		t.Fatalf("bufHits = %d after invalidating write, want 0", d.Stats.BufHits)
	}
}

func TestWritesAreWriteThrough(t *testing.T) {
	// Repeated writes to the same track must each pay mechanical cost;
	// the track buffer gives them no speedup.
	s := sim.New(1)
	t.Cleanup(s.Close)
	pr := DefaultParams()
	d := New(s, "d0", pr)
	buf := make([]byte, 8192)
	var times []sim.Time
	s.Spawn("writer", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			t0 := p.Now()
			d.IO(p, &Request{Sector: int64(i * 16), Count: 16, Write: true, Data: buf})
			times = append(times, p.Now()-t0)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Geom().SectorTime(0)
	for i, dt := range times {
		if dt < 16*st {
			t.Fatalf("write %d took %v, less than media transfer %v: buffered a write", i, dt, 16*st)
		}
	}
	if d.Stats.BusTime != 0 {
		t.Fatal("writes used the electronic path")
	}
}

func TestSeekTimeMonotone(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := New(s, "d0", DefaultParams())
	prev := Time(0)
	for _, dist := range []int{1, 10, 100, 1000, 1519} {
		dt := d.seekTime(0, dist)
		if dt < d.P.SeekMin || dt > d.P.SeekMax {
			t.Fatalf("seek(%d) = %v outside [%v,%v]", dist, dt, d.P.SeekMin, d.P.SeekMax)
		}
		if dt < prev {
			t.Fatalf("seek time not monotone at distance %d", dist)
		}
		prev = dt
	}
	if d.seekTime(7, 7) != 0 {
		t.Fatal("zero-distance seek should cost nothing")
	}
}

func TestRotationalPositionIsTimeDerived(t *testing.T) {
	// Reading the same sector twice back to back costs a full rotation
	// the second time (with the track buffer off): the platter has
	// moved past it.
	s := sim.New(1)
	t.Cleanup(s.Close)
	p := DefaultParams()
	p.TrackBuffer = false
	p.CmdOverhead = 0
	d := New(s, "d0", p)
	buf := make([]byte, SectorSize)
	var gap sim.Time
	s.Spawn("reader", func(pr *sim.Proc) {
		d.IO(pr, &Request{Sector: 5, Count: 1, Data: buf})
		t0 := pr.Now()
		d.IO(pr, &Request{Sector: 5, Count: 1, Data: buf})
		gap = pr.Now() - t0
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rot := d.Geom().RotationPeriod(0)
	if gap < rot-Millisecond || gap > rot+Millisecond {
		t.Fatalf("immediate re-read took %v, want ~one rotation %v", gap, rot)
	}
}

func TestMultiTrackTransferUsesSkew(t *testing.T) {
	// A transfer spanning two tracks should not lose a full rotation at
	// the boundary: skew hides the head switch.
	s := sim.New(1)
	t.Cleanup(s.Close)
	p := DefaultParams()
	p.TrackBuffer = false
	d := New(s, "d0", p)
	spt := d.Geom().Zones[0].SPT
	n := spt + spt/2 // 1.5 tracks
	buf := make([]byte, n*SectorSize)
	s.Spawn("reader", func(pr *sim.Proc) {
		d.IO(pr, &Request{Sector: 0, Count: n, Data: buf})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rot := d.Geom().RotationPeriod(0)
	// Ideal: 1.5 rotations of transfer + initial latency (< 1 rot) +
	// head switch. Anything over 3.2 rotations means the skew failed.
	if s.Now() > rot*16/5 {
		t.Fatalf("1.5-track read took %v (%.1f rotations)", s.Now(), float64(s.Now())/float64(rot))
	}
}

func TestSubmitQueuesFIFO(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := New(s, "d0", DefaultParams())
	buf1 := make([]byte, SectorSize)
	buf2 := make([]byte, SectorSize)
	var order []int
	s.Spawn("submitter", func(pr *sim.Proc) {
		d.Submit(&Request{Sector: 1000, Count: 1, Data: buf1, Done: func() { order = append(order, 1) }})
		d.Submit(&Request{Sector: 10, Count: 1, Data: buf2, Done: func() { order = append(order, 2) }})
		pr.Sleep(Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("completion order = %v, want [1 2]", order)
	}
}

func TestRequestValidation(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := New(s, "d0", DefaultParams())
	recover1 := func(f func()) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		f()
		return
	}
	if !recover1(func() { d.Submit(&Request{Sector: -1, Count: 1, Data: make([]byte, SectorSize)}) }) {
		t.Fatal("negative sector accepted")
	}
	if !recover1(func() { d.Submit(&Request{Sector: 0, Count: 1, Data: nil}) }) {
		t.Fatal("bad data length accepted")
	}
	if !recover1(func() {
		d.Submit(&Request{Sector: d.Geom().TotalSectors(), Count: 1, Data: make([]byte, SectorSize)})
	}) {
		t.Fatal("out-of-range sector accepted")
	}
}

// Property: the image behaves like a flat byte array — random writes
// then reads return exactly what was written last.
func TestPropertyImageIsFlatArray(t *testing.T) {
	type op struct {
		Sector uint16
		Val    byte
	}
	f := func(ops []op) bool {
		s := sim.New(1)
		t.Cleanup(s.Close)
		d := New(s, "d0", DefaultParams())
		shadow := make(map[int64]byte)
		sec := make([]byte, SectorSize)
		for _, o := range ops {
			sector := int64(o.Sector)
			for i := range sec {
				sec[i] = o.Val
			}
			d.WriteImage(sector, sec)
			shadow[sector] = o.Val
		}
		got := make([]byte, SectorSize)
		for sector, val := range shadow {
			d.ReadImage(sector, got)
			for _, b := range got {
				if b != val {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: service time for any valid read is positive and bounded by
// (seek max + rotations proportional to span).
func TestPropertyServiceTimeBounded(t *testing.T) {
	f := func(sector uint32, count uint8) bool {
		s := sim.New(1)
		t.Cleanup(s.Close)
		p := DefaultParams()
		d := New(s, "d0", p)
		n := int(count%64) + 1
		sec := int64(sector) % (d.Geom().TotalSectors() - int64(n))
		buf := make([]byte, n*SectorSize)
		var took sim.Time
		s.Spawn("io", func(pr *sim.Proc) {
			t0 := pr.Now()
			d.IO(pr, &Request{Sector: sec, Count: n, Data: buf})
			took = pr.Now() - t0
		})
		if err := s.Run(); err != nil {
			return false
		}
		if took <= 0 {
			return false
		}
		rot := d.Geom().RotationPeriod(0)
		tracks := Time(n/d.Geom().Zones[0].SPT + 2)
		limit := p.SeekMax + p.CmdOverhead + (tracks+1)*rot + tracks*p.HeadSwitch
		return took <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
