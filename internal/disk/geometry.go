// Package disk implements a rotational disk model with byte-accurate
// platter contents and time-accurate mechanical behaviour: seeks, head
// switches, rotational position derived from the virtual clock, zoned
// (variable) geometry, track skew, and an optional track buffer that
// caches reads and writes through — the drive the paper's measurements
// were taken on ("one 400MB 3.5\" IBM SCSI drive" with a track buffer).
package disk

import (
	"fmt"

	"ufsclust/internal/sim"
)

// SectorSize is the unit of addressing, in bytes.
const SectorSize = 512

// Zone describes a band of cylinders sharing a sectors-per-track count.
// Variable-geometry ("zoned") drives have more sectors on outer tracks;
// the paper uses them to argue that no single user-chosen extent size can
// be right everywhere on the disk.
type Zone struct {
	Cylinders int // number of cylinders in this zone
	SPT       int // sectors per track
}

// Geometry describes the physical layout of a drive.
type Geometry struct {
	Heads int
	Zones []Zone
	RPM   int

	// derived
	totalSectors int64
	zoneStart    []int64 // first absolute sector of each zone
	zoneCyl      []int   // first cylinder of each zone
	sectorTime   []Time  // per-zone time to pass one sector under the head
}

// Time is the simulation clock type.
type Time = sim.Time

// Time units re-exported for convenience.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewGeometry builds a geometry and precomputes its derived tables.
// It rejects physically senseless descriptions: geometry reaches this
// constructor from user input (mkfs flags, image-file headers), so bad
// values are an error, not a crash.
func NewGeometry(heads, rpm int, zones ...Zone) (*Geometry, error) {
	if heads <= 0 || rpm <= 0 || len(zones) == 0 {
		return nil, fmt.Errorf("disk: invalid geometry: %d heads, %d rpm, %d zones", heads, rpm, len(zones))
	}
	g := &Geometry{Heads: heads, Zones: zones, RPM: rpm}
	rot := 60 * Second / Time(rpm)
	cyl := 0
	var sec int64
	for _, z := range zones {
		if z.Cylinders <= 0 || z.SPT <= 0 {
			return nil, fmt.Errorf("disk: invalid zone: %d cylinders, %d sectors/track", z.Cylinders, z.SPT)
		}
		g.zoneStart = append(g.zoneStart, sec)
		g.zoneCyl = append(g.zoneCyl, cyl)
		// Integer sector time; the rotation period is defined as
		// SPT*sectorTime so positions stay exact.
		g.sectorTime = append(g.sectorTime, rot/Time(z.SPT))
		sec += int64(z.Cylinders) * int64(heads) * int64(z.SPT)
		cyl += z.Cylinders
	}
	g.totalSectors = sec
	return g, nil
}

// mustGeometry unwraps NewGeometry for the preset constructors below,
// which are built from compile-time constants.
func mustGeometry(g *Geometry, err error) *Geometry {
	if err != nil {
		panic(err) // simlint:invariant -- preset geometry constants are known good
	}
	return g
}

// UniformGeometry is the common case: one zone across all cylinders.
// It panics on a senseless description; callers with untrusted values
// use NewGeometry directly.
func UniformGeometry(cylinders, heads, spt, rpm int) *Geometry {
	return mustGeometry(NewGeometry(heads, rpm, Zone{Cylinders: cylinders, SPT: spt}))
}

// DefaultGeometry models the paper's 400 MB SCSI drive: 3600 RPM,
// 1520 cylinders x 8 heads x 64 sectors x 512 B = ~398 MB, media rate
// ~1.9 MB/s so an 8 KB block passes in ~4.2 ms (the paper's "4 ms").
func DefaultGeometry() *Geometry {
	return UniformGeometry(1520, 8, 64, 3600)
}

// ZonedGeometry models a variable-geometry drive of roughly the same
// capacity with three zones (72/64/48 sectors per track).
func ZonedGeometry() *Geometry {
	return mustGeometry(NewGeometry(8, 3600,
		Zone{Cylinders: 500, SPT: 72},
		Zone{Cylinders: 520, SPT: 64},
		Zone{Cylinders: 560, SPT: 48},
	))
}

// TotalSectors returns the drive capacity in sectors.
func (g *Geometry) TotalSectors() int64 { return g.totalSectors }

// TotalBytes returns the drive capacity in bytes.
func (g *Geometry) TotalBytes() int64 { return g.totalSectors * SectorSize }

// Cylinders returns the total cylinder count.
func (g *Geometry) Cylinders() int {
	n := 0
	for _, z := range g.Zones {
		n += z.Cylinders
	}
	return n
}

// RotationPeriod returns one revolution's duration. It is exact per zone
// (SPT * sector time); zones may differ by integer truncation.
func (g *Geometry) RotationPeriod(zone int) Time {
	return g.sectorTime[zone] * Time(g.Zones[zone].SPT)
}

// SectorTime returns the time for one sector to pass under the head in
// the given zone.
func (g *Geometry) SectorTime(zone int) Time { return g.sectorTime[zone] }

// CHS is a decoded sector address.
type CHS struct {
	Zone   int
	Cyl    int // absolute cylinder
	Head   int
	Sector int // within track
}

// Track returns a drive-unique track index for skew computation.
func (g *Geometry) Track(c CHS) int64 {
	return int64(c.Cyl)*int64(g.Heads) + int64(c.Head)
}

// Locate decodes an absolute sector number.
func (g *Geometry) Locate(sector int64) CHS {
	if sector < 0 || sector >= g.totalSectors {
		panic(fmt.Sprintf("disk: sector %d out of range [0,%d)", sector, g.totalSectors)) // simlint:invariant -- sector numbers are computed from this geometry
	}
	z := len(g.zoneStart) - 1
	for z > 0 && sector < g.zoneStart[z] {
		z--
	}
	rel := sector - g.zoneStart[z]
	spt := int64(g.Zones[z].SPT)
	perCyl := int64(g.Heads) * spt
	return CHS{
		Zone:   z,
		Cyl:    g.zoneCyl[z] + int(rel/perCyl),
		Head:   int((rel % perCyl) / spt),
		Sector: int(rel % spt),
	}
}

// SectorsLeftOnTrack returns how many sectors from sector (inclusive)
// remain on its track, i.e. the largest contiguous run servable without
// a head switch.
func (g *Geometry) SectorsLeftOnTrack(sector int64) int {
	c := g.Locate(sector)
	return g.Zones[c.Zone].SPT - c.Sector
}

// MediaRate returns the sustained transfer rate of the given zone in
// bytes per second, ignoring head switches and seeks.
func (g *Geometry) MediaRate(zone int) float64 {
	return float64(SectorSize) / (float64(g.sectorTime[zone]) / float64(Second))
}
