package disk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Image file format: a compact sparse dump of the platter so mkfs/fsck
// can operate on real files. Layout (little endian):
//
//	magic   [8]byte  "UFSCIMG1"
//	zones   int32    number of geometry zones
//	heads   int32
//	rpm     int32
//	per zone: cylinders int32, spt int32
//	chunks  int64    number of 64 KB chunks present
//	per chunk: index int64, data [chunkSectors*SectorSize]byte
var imageMagic = [8]byte{'U', 'F', 'S', 'C', 'I', 'M', 'G', '1'}

// DumpImage writes the platter contents and geometry to w.
func (d *Disk) DumpImage(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(imageMagic[:]); err != nil {
		return err
	}
	g := d.P.Geom
	hdr := []int32{int32(len(g.Zones)), int32(g.Heads), int32(g.RPM)}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, z := range g.Zones {
		if err := binary.Write(bw, binary.LittleEndian, int32(z.Cylinders)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, int32(z.SPT)); err != nil {
			return err
		}
	}
	keys := make([]int64, 0, len(d.image))
	for k := range d.image {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if err := binary.Write(bw, binary.LittleEndian, int64(len(keys))); err != nil {
		return err
	}
	for _, k := range keys {
		if err := binary.Write(bw, binary.LittleEndian, k); err != nil {
			return err
		}
		if _, err := bw.Write(d.image[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadImage replaces the platter contents and geometry from a dump
// written by DumpImage. The disk's mechanical parameters are retained;
// only geometry and data change.
func (d *Disk) LoadImage(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return err
	}
	if magic != imageMagic {
		return fmt.Errorf("disk: bad image magic %q", magic)
	}
	var nz, heads, rpm int32
	for _, p := range []*int32{&nz, &heads, &rpm} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return err
		}
	}
	if nz <= 0 || nz > 64 {
		return fmt.Errorf("disk: implausible zone count %d", nz)
	}
	zones := make([]Zone, nz)
	for i := range zones {
		var cyl, spt int32
		if err := binary.Read(br, binary.LittleEndian, &cyl); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &spt); err != nil {
			return err
		}
		zones[i] = Zone{Cylinders: int(cyl), SPT: int(spt)}
	}
	g, err := NewGeometry(int(heads), int(rpm), zones...)
	if err != nil {
		return fmt.Errorf("disk: bad image geometry: %w", err)
	}
	d.P.Geom = g
	var n int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return err
	}
	d.image = make(map[int64][]byte, n)
	for i := int64(0); i < n; i++ {
		var k int64
		if err := binary.Read(br, binary.LittleEndian, &k); err != nil {
			return err
		}
		buf := make([]byte, chunkSectors*SectorSize)
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		d.image[k] = buf
	}
	return nil
}
