package disk

import (
	"errors"
	"math"

	"ufsclust/internal/fault"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// ErrMedia is the drive-level error for a failed transfer (injected by
// a fault plan). The driver wraps it in a typed DevError once retries
// are exhausted; errors.Is(err, disk.ErrMedia) sees through the wrap.
var ErrMedia = errors.New("disk: media error")

// Device is the block-device contract shared by a bare Disk and an
// internal/vol volume composing several. The driver drives one Device;
// the offline tools (mkfs, fsck, repair) address its image through the
// same sector space the driver submits against.
type Device interface {
	// Name identifies the device ("sd0", "vol0").
	Name() string
	// Geom describes the device's addressable geometry. For a volume it
	// is synthetic: a uniform single-zone drive of the composed data
	// capacity, so file-system layout code works unchanged.
	Geom() *Geometry
	// Submit queues one request; completion is delivered through
	// Request.Done in scheduler context. Safe from process or scheduler
	// context.
	Submit(r *Request)
	// Channels is how many requests the device can usefully service at
	// once: 1 for a single spindle, the member count for a volume. The
	// driver keeps up to this many requests in flight so member seeks
	// overlap.
	Channels() int
	// ReadImage / WriteImage access the platter content without
	// consuming simulated time — the offline path. A volume translates
	// addresses and maintains redundancy (mirrors, parity) on offline
	// writes too.
	ReadImage(sector int64, buf []byte)
	WriteImage(sector int64, data []byte)
}

// Params are the mechanical and electronic characteristics of a drive.
type Params struct {
	Geom *Geometry

	SeekMin    Time // single-cylinder seek (including settle)
	SeekMax    Time // full-stroke seek
	HeadSwitch Time // head-to-head switch on the same cylinder

	// SkewSectors is the track skew: logical sector 0 of each successive
	// track is rotated by this many sector positions so that a head
	// switch completes before the next logical sector arrives. Without
	// skew, contiguous multi-track transfers would lose a full rotation
	// at every track boundary.
	SkewSectors int

	// CmdOverhead is the fixed controller/command time charged per
	// request (bus arbitration, command decode).
	CmdOverhead Time

	// CmdJitter adds a uniform random [0, CmdJitter) to each request's
	// command overhead, modeling the variable controller and host
	// latency of the era. It is what occasionally makes a
	// rotdelay-placed file system miss its gap window — without it the
	// simulated legacy system is unrealistically punctual. Drawn from
	// the simulation's seeded RNG, so runs stay reproducible.
	CmdJitter Time

	// TrackBuffer enables the on-board one-track read cache. It is a
	// write-through cache: writes always pay full mechanical cost (the
	// paper: promising stability for buffered writes would be a lie).
	TrackBuffer bool

	// BusRate is the electronics transfer rate in bytes/second used for
	// track-buffer hits.
	BusRate int64

	// ErrorLatency is the extra time a failed transfer spends before
	// the drive reports the error (internal retries, ECC attempts).
	// Real drives of the era took tens of milliseconds to give up on a
	// sector. 0 means DefaultErrorLatency.
	ErrorLatency Time
}

// DefaultErrorLatency is the failed-transfer report time used when
// Params.ErrorLatency is zero.
const DefaultErrorLatency = 15 * Millisecond

// DefaultParams returns values representative of a 1990 3.5" SCSI drive
// and calibrated against the paper's numbers (4 ms block time, ~1.5 MB/s
// deliverable bandwidth).
func DefaultParams() Params {
	return Params{
		Geom:        DefaultGeometry(),
		SeekMin:     2500 * Microsecond,
		SeekMax:     30 * Millisecond,
		HeadSwitch:  1 * Millisecond,
		SkewSectors: 6,
		CmdOverhead: 700 * Microsecond,
		CmdJitter:   3900 * Microsecond,
		TrackBuffer: true,
		BusRate:     4 << 20, // 4 MB/s SCSI-1 sync
	}
}

// Request is one I/O operation presented to the drive. The driver layer
// (internal/driver) queues and sorts these; the drive itself services
// them in arrival order.
type Request struct {
	Sector int64
	Count  int // sectors
	Write  bool
	// Data holds the bytes to write, or receives the bytes read; its
	// length must be Count*SectorSize.
	Data []byte
	// Done is invoked in scheduler context when the operation completes
	// (the "interrupt"). May be nil.
	Done func()
	// Err is set before Done runs when the transfer failed (ErrMedia).
	// On a failed read Data is untouched; on a failed write the media
	// is untouched.
	Err error

	queued Time
}

// Stats accumulates drive-level accounting.
type Stats struct {
	Reads, Writes               int64
	SectorsRead, SectorsWritten int64
	SeekCount                   int64
	SeekTime                    Time
	RotWait                     Time  // rotational latency waited
	XferTime                    Time  // mechanical transfer time
	BusTime                     Time  // track-buffer (electronic) transfer time
	BufHits, BufMisses          int64 // per segment, reads only
	BusyTime                    Time  // total time servicing requests
	QueueWait                   Time  // time requests spent queued
	MediaErrors                 int64 // transfers failed by the fault plan
}

// BytesMoved returns total bytes transferred in either direction.
func (st *Stats) BytesMoved() int64 {
	return (st.SectorsRead + st.SectorsWritten) * SectorSize
}

// Disk is a simulated drive. Submit requests with Submit; a dedicated
// simulation process services them one at a time.
type Disk struct {
	P     Params
	Sim   *sim.Sim
	name  string
	label string // member tag on emitted events; empty for a bare drive

	// mechanical state
	curCyl   int
	curTrack int64

	// track buffer state: the track being cached, the time its fill
	// began, and the logical in-track sector the fill began at.
	tbTrack     int64
	tbValid     bool
	tbFillStart Time
	tbFillSect  int

	// image is the sparse platter content, in 64 KB chunks.
	image map[int64][]byte

	q     []*Request
	qWait sim.WaitQ

	// inj, when attached, decides which transfers fail; torn tracks
	// the write transfer in flight so a power cut can freeze the image
	// with exactly the sectors physically written by the cut instant.
	inj  *fault.Injector
	torn tornXfer

	Stats Stats

	// Telemetry; all nil (and nil-safe) until AttachTelemetry.
	bus                      *telemetry.Bus
	seekH, rotH, xferH, svcH *telemetry.Histogram
}

const chunkSectors = 128 // 64 KB image chunks

// New creates a drive and starts its service process on s.
func New(s *sim.Sim, name string, p Params) *Disk {
	if p.Geom == nil {
		p.Geom = DefaultGeometry()
	}
	if p.ErrorLatency == 0 {
		p.ErrorLatency = DefaultErrorLatency
	}
	d := &Disk{P: p, Sim: s, name: name, image: make(map[int64][]byte)}
	d.qWait.Name = name + ".queue"
	s.SpawnDaemon(name, d.serve)
	return d
}

// Name returns the drive's name.
func (d *Disk) Name() string { return d.name }

// Channels reports a single spindle: one request in service at a time.
func (d *Disk) Channels() int { return 1 }

// SetEventLabel tags every event this drive emits with a member label
// (telemetry.Event.Dev). Volumes label their members so fault plans and
// event consumers can tell spindles apart; a bare drive stays unlabeled
// and replays the pre-volume golden streams byte-for-byte.
func (d *Disk) SetEventLabel(label string) { d.label = label }

// AttachTelemetry registers the drive's counters and latency
// histograms and connects it to the event bus. Call once, at machine
// construction, before any I/O.
func (d *Disk) AttachTelemetry(tel *telemetry.Telemetry) {
	d.bus = tel.Bus
	r := tel.Reg
	r.Counter("disk.reads", func() int64 { return d.Stats.Reads })
	r.Counter("disk.writes", func() int64 { return d.Stats.Writes })
	r.Counter("disk.sectors_read", func() int64 { return d.Stats.SectorsRead })
	r.Counter("disk.sectors_written", func() int64 { return d.Stats.SectorsWritten })
	r.Counter("disk.seeks", func() int64 { return d.Stats.SeekCount })
	r.Counter("disk.seek_time_ns", func() int64 { return int64(d.Stats.SeekTime) })
	r.Counter("disk.rot_wait_ns", func() int64 { return int64(d.Stats.RotWait) })
	r.Counter("disk.xfer_time_ns", func() int64 { return int64(d.Stats.XferTime) })
	r.Counter("disk.bus_time_ns", func() int64 { return int64(d.Stats.BusTime) })
	r.Counter("disk.buf_hits", func() int64 { return d.Stats.BufHits })
	r.Counter("disk.buf_misses", func() int64 { return d.Stats.BufMisses })
	r.Counter("disk.busy_time_ns", func() int64 { return int64(d.Stats.BusyTime) })
	r.Counter("disk.queue_wait_ns", func() int64 { return int64(d.Stats.QueueWait) })
	r.Counter("disk.media_errors", func() int64 { return d.Stats.MediaErrors })
	r.Gauge("disk.queue_len", func() int64 { return int64(len(d.q)) })
	d.seekH = r.Hist(telemetry.NewHistogram("disk.seek_ns", telemetry.UnitNs, telemetry.TimeBounds()))
	d.rotH = r.Hist(telemetry.NewHistogram("disk.rotate_ns", telemetry.UnitNs, telemetry.TimeBounds()))
	d.xferH = r.Hist(telemetry.NewHistogram("disk.transfer_ns", telemetry.UnitNs, telemetry.TimeBounds()))
	d.svcH = r.Hist(telemetry.NewHistogram("disk.service_ns", telemetry.UnitNs, telemetry.TimeBounds()))
}

// AttachMemberTelemetry connects a volume member to the machine's event
// bus and to a shared set of latency histograms (one set per volume
// under the standard disk.* names, aggregating all spindles). The
// volume registers the member's counters itself, under per-member
// names; the member only emits and observes.
func (d *Disk) AttachMemberTelemetry(bus *telemetry.Bus, seekH, rotH, xferH, svcH *telemetry.Histogram) {
	d.bus = bus
	d.seekH, d.rotH, d.xferH, d.svcH = seekH, rotH, xferH, svcH
}

// AttachFaults connects a fault injector: the drive consults it after
// every io_start emission and registers a crash hook that freezes any
// write transfer in flight at the cut, torn at sector granularity.
// Fault matching rides the telemetry stream, so a drive without
// AttachTelemetry never sees injected faults.
func (d *Disk) AttachFaults(inj *fault.Injector) {
	d.inj = inj
	inj.OnCrash(d.freezeTorn)
}

// tornXfer is the write transfer currently on the media: armed just
// before the transfer sleep in segment, cleared when the sleep ends.
type tornXfer struct {
	active bool
	sector int64
	buf    []byte
	start  Time // instant the first sector hits the media
	st     Time // per-sector transfer time
}

// freezeTorn runs at a power cut: if a write transfer was in flight,
// apply to the image exactly the whole sectors the head had finished
// by the cut instant. Everything after the cut is lost — including the
// rest of this transfer, because the drive process never resumes once
// the sim stops.
func (d *Disk) freezeTorn(cut sim.Time) {
	t := d.torn
	d.torn.active = false
	if !t.active || cut <= t.start {
		return
	}
	n := int((cut - t.start) / t.st)
	if total := len(t.buf) / SectorSize; n > total {
		n = total
	}
	if n > 0 {
		d.writeImage(t.sector, t.buf[:n*SectorSize])
	}
}

// Geom returns the drive geometry.
func (d *Disk) Geom() *Geometry { return d.P.Geom }

// QueueLen returns the number of requests waiting (not including one in
// service).
func (d *Disk) QueueLen() int { return len(d.q) }

// Submit hands a request to the drive. Safe from process or scheduler
// context. Completion is reported through r.Done.
func (d *Disk) Submit(r *Request) {
	if r.Count <= 0 || r.Sector < 0 || r.Sector+int64(r.Count) > d.P.Geom.TotalSectors() {
		panic("disk: request out of range") // simlint:invariant -- driver validates transfers before queueing
	}
	if len(r.Data) != r.Count*SectorSize {
		panic("disk: request data length mismatch") // simlint:invariant -- driver validates transfers before queueing
	}
	r.queued = d.Sim.Now()
	d.q = append(d.q, r)
	d.qWait.WakeAll()
}

// IO submits r and blocks the calling process until it completes. It is
// a convenience for code (and tests) that has no driver layer.
func (d *Disk) IO(p *sim.Proc, r *Request) {
	done := false
	var q sim.WaitQ
	prev := r.Done
	// simlint:ignore blockpath -- prev is the request's original Done, itself bound by the non-blocking completion contract; the dynamic-call match is conservative
	r.Done = func() {
		done = true
		q.WakeAll()
		if prev != nil {
			prev()
		}
	}
	d.Submit(r)
	for !done {
		p.Block(&q)
	}
}

// serve is the drive's service loop.
func (d *Disk) serve(p *sim.Proc) {
	for {
		for len(d.q) == 0 {
			p.Block(&d.qWait)
		}
		r := d.q[0]
		copy(d.q, d.q[1:])
		d.q = d.q[:len(d.q)-1]

		start := p.Now()
		d.Stats.QueueWait += start - r.queued
		d.bus.Emit(telemetry.Event{
			T:      start,
			Kind:   telemetry.EvIOStart,
			Sector: r.Sector,
			Bytes:  int64(r.Count) * SectorSize,
			Depth:  int64(len(d.q)),
			Write:  r.Write,
			Dev:    d.label,
		})
		// The injector's subscriber ran inside the Emit above, so a
		// media fault anchored on that io_start is armed by now.
		failed := d.inj != nil && d.inj.TakeMedia()
		if failed {
			d.bus.Emit(telemetry.Event{
				T:      start,
				Kind:   telemetry.EvFaultInject,
				Sector: r.Sector,
				Bytes:  int64(r.Count) * SectorSize,
				Write:  r.Write,
				Dev:    d.label,
			})
			d.failService(p)
			r.Err = ErrMedia
			d.Stats.MediaErrors++
			d.Stats.BusyTime += p.Now() - start
		} else {
			seek0, rot0 := d.Stats.SeekTime, d.Stats.RotWait
			xfer0 := d.Stats.XferTime + d.Stats.BusTime
			d.service(p, r)
			svc := p.Now() - start
			d.Stats.BusyTime += svc
			// Per-request phase latencies, from the Stats deltas the service
			// routine accumulated. Seek and rotate observe only when the
			// request paid them; transfer and total service always happen.
			if dt := d.Stats.SeekTime - seek0; dt > 0 {
				d.seekH.Observe(int64(dt))
			}
			if dt := d.Stats.RotWait - rot0; dt > 0 {
				d.rotH.Observe(int64(dt))
			}
			d.xferH.Observe(int64(d.Stats.XferTime + d.Stats.BusTime - xfer0))
			d.svcH.Observe(int64(svc))
			if r.Write {
				d.Stats.Writes++
				d.Stats.SectorsWritten += int64(r.Count)
			} else {
				d.Stats.Reads++
				d.Stats.SectorsRead += int64(r.Count)
			}
		}
		if r.Done != nil {
			// Deliver the completion as a zero-delay event so it runs
			// in scheduler context, like an interrupt, rather than on
			// the drive's own stack.
			done := r.Done
			d.Sim.After(0, done)
		}
	}
}

// service performs one request, sleeping through its mechanical phases.
func (d *Disk) service(p *sim.Proc, r *Request) {
	cmd := d.P.CmdOverhead
	if d.P.CmdJitter > 0 {
		cmd += Time(d.Sim.Rand.Int63n(int64(d.P.CmdJitter)))
	}
	p.Sleep(cmd)
	sector := r.Sector
	remain := r.Count
	buf := r.Data
	for remain > 0 {
		n := d.P.Geom.SectorsLeftOnTrack(sector)
		if n > remain {
			n = remain
		}
		d.segment(p, sector, n, buf[:n*SectorSize], r.Write)
		buf = buf[n*SectorSize:]
		sector += int64(n)
		remain -= n
	}
}

// failService is the service path for a transfer the fault plan
// failed: the drive pays command overhead and its internal error
// recovery time (no arm movement is modeled — the failure is reported
// from wherever the head is), touching neither media nor buffers.
func (d *Disk) failService(p *sim.Proc) {
	cmd := d.P.CmdOverhead
	if d.P.CmdJitter > 0 {
		cmd += Time(d.Sim.Rand.Int63n(int64(d.P.CmdJitter)))
	}
	p.Sleep(cmd + d.P.ErrorLatency)
}

// physPos maps a logical in-track sector to its physical rotational
// position, applying track skew.
func (d *Disk) physPos(c CHS) int {
	spt := d.P.Geom.Zones[c.Zone].SPT
	track := d.P.Geom.Track(c)
	return int((int64(c.Sector) + track*int64(d.P.SkewSectors)) % int64(spt))
}

// segment services n sectors that lie on a single track.
func (d *Disk) segment(p *sim.Proc, sector int64, n int, buf []byte, write bool) {
	g := d.P.Geom
	c := g.Locate(sector)
	track := g.Track(c)
	st := g.SectorTime(c.Zone)
	spt := g.Zones[c.Zone].SPT

	if !write && d.P.TrackBuffer && d.tbValid && d.tbTrack == track {
		// Track-buffer hit: wait until the background fill has passed
		// the last sector we need, then transfer at bus rate.
		d.Stats.BufHits++
		last := c.Sector + n - 1
		avail := d.tbFillStart + Time(((last-d.tbFillSect)+spt)%spt+1)*st
		bus := Time(int64(n) * SectorSize * int64(Second) / d.P.BusRate)
		// The bus transfer overlaps the background fill: data streams
		// out as it arrives, so the segment completes at whichever is
		// later — fill of the last sector, or pure bus time.
		end := p.Now() + bus
		if avail > end {
			end = avail
		}
		p.Sleep(end - p.Now())
		d.Stats.BusTime += bus
		d.readImage(sector, buf)
		return
	}
	if !write {
		d.Stats.BufMisses++
	}

	// Seek.
	if c.Cyl != d.curCyl {
		t := d.seekTime(d.curCyl, c.Cyl)
		p.Sleep(t)
		d.Stats.SeekCount++
		d.Stats.SeekTime += t
		d.curCyl = c.Cyl
	} else if track != d.curTrack {
		// Head switch within the cylinder.
		p.Sleep(d.P.HeadSwitch)
	}
	d.curTrack = track

	// Rotational latency: wait for the physical position of the first
	// sector to come under the head. Position is derived from absolute
	// virtual time, so the platter keeps spinning while the drive is
	// idle or seeking.
	target := d.physPos(c)
	tick := (p.Now() + st - 1) / st // next sector boundary index
	cur := int(tick % Time(spt))
	delta := (target - cur + spt) % spt
	xferStart := (tick + Time(delta)) * st
	if wait := xferStart - p.Now(); wait > 0 {
		p.Sleep(wait)
		d.Stats.RotWait += wait
	}

	// Media transfer. For writes, arm the torn-transfer record across
	// the sleep: a power cut lands mid-transfer, and the freeze hook
	// applies exactly the sectors written by then.
	xfer := Time(n) * st
	if write {
		d.torn = tornXfer{active: true, sector: sector, buf: buf, start: p.Now(), st: st}
	}
	p.Sleep(xfer)
	d.torn.active = false
	d.Stats.XferTime += xfer

	if write {
		d.writeImage(sector, buf)
		// Write-through: a write to the buffered track invalidates the
		// buffer (conservative; keeps "the track buffer helps only
		// reads" true, as the paper observes).
		if d.tbValid && d.tbTrack == track {
			d.tbValid = false
		}
		return
	}
	d.readImage(sector, buf)
	if d.P.TrackBuffer {
		// The drive keeps reading the rest of the track into its
		// buffer; sectors become available in rotational order from
		// the start of this transfer.
		d.tbValid = true
		d.tbTrack = track
		d.tbFillStart = xferStart
		d.tbFillSect = c.Sector
	}
}

// seekTime models arm movement with a square-root profile: SeekMin for a
// single-cylinder step (dominated by settle time) rising to SeekMax for
// a full stroke. Short sorted steps are much cheaper than random
// intra-file hops — the property disksort exploits.
func (d *Disk) seekTime(from, to int) Time {
	if from == to {
		return 0
	}
	dist := from - to
	if dist < 0 {
		dist = -dist
	}
	maxDist := d.P.Geom.Cylinders() - 1
	frac := math.Sqrt(float64(dist-1) / float64(maxDist-1))
	return d.P.SeekMin + Time(frac*float64(d.P.SeekMax-d.P.SeekMin))
}

// --- image (platter content) access -------------------------------------

// ReadImage copies platter bytes without consuming simulated time. It is
// the "offline" access path used by mkfs, fsck, and tests.
func (d *Disk) ReadImage(sector int64, buf []byte) { d.readImage(sector, buf) }

// WriteImage stores platter bytes without consuming simulated time.
func (d *Disk) WriteImage(sector int64, data []byte) { d.writeImage(sector, data) }

// Image is a point-in-time deep copy of a drive's platter contents in
// the sparse chunk representation. Snapshot one from a crashed machine
// and hand it to a fresh machine (ufsclust.WithCrashRecovery) to model
// the reboot after a power cut. For the serialized on-host file format
// see DumpImage/LoadImage in image.go.
type Image struct {
	chunks map[int64][]byte
}

// Snapshot deep-copies the platter contents.
func (d *Disk) Snapshot() *Image {
	img := &Image{chunks: make(map[int64][]byte, len(d.image))}
	for k, c := range d.image { // simlint:ignore maporder -- deep copy into a map, order-insensitive
		img.chunks[k] = append([]byte(nil), c...)
	}
	return img
}

// Restore replaces the platter contents with a deep copy of img. Call
// it before mounting; restoring under a live file system is not
// supported.
func (d *Disk) Restore(img *Image) {
	d.image = make(map[int64][]byte, len(img.chunks))
	for k, c := range img.chunks { // simlint:ignore maporder -- deep copy into a map, order-insensitive
		d.image[k] = append([]byte(nil), c...)
	}
	d.tbValid = false
}

func (d *Disk) readImage(sector int64, buf []byte) {
	if len(buf)%SectorSize != 0 {
		panic("disk: image access not sector aligned") // simlint:invariant -- offline callers use block-multiple buffers
	}
	off := sector * SectorSize
	for len(buf) > 0 {
		chunk := off / (chunkSectors * SectorSize)
		coff := off % (chunkSectors * SectorSize)
		n := chunkSectors*SectorSize - coff
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		if c, ok := d.image[chunk]; ok {
			copy(buf[:n], c[coff:coff+n])
		} else {
			for i := int64(0); i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		off += n
	}
}

func (d *Disk) writeImage(sector int64, data []byte) {
	if len(data)%SectorSize != 0 {
		panic("disk: image access not sector aligned") // simlint:invariant -- offline callers use block-multiple buffers
	}
	off := sector * SectorSize
	for len(data) > 0 {
		chunk := off / (chunkSectors * SectorSize)
		coff := off % (chunkSectors * SectorSize)
		n := chunkSectors*SectorSize - coff
		if n > int64(len(data)) {
			n = int64(len(data))
		}
		c, ok := d.image[chunk]
		if !ok {
			c = make([]byte, chunkSectors*SectorSize)
			d.image[chunk] = c
		}
		copy(c[coff:coff+n], data[:n])
		data = data[n:]
		off += n
	}
}
