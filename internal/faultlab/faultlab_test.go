package faultlab

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"ufsclust"
	"ufsclust/internal/fault"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

var updateFaultEvents = flag.Bool("update-fault-events", false, "rewrite the golden fault-event JSONL stream")

func TestPatternByteNeverZero(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for off := int64(0); off < 1<<16; off++ {
			if PatternByte(seed, off) == 0 {
				t.Fatalf("PatternByte(%d, %d) = 0; zero must be reserved for unwritten bytes", seed, off)
			}
		}
	}
	// And it actually varies, or torn detection would be vacuous.
	if PatternByte(1, 0) == PatternByte(1, 1) && PatternByte(1, 1) == PatternByte(1, 2) {
		t.Fatal("pattern is constant")
	}
}

// TestCrashPointProperty is the harness's core property: wherever the
// cut lands, the recovered file contains exactly the acknowledged
// prefix (intact), and nothing beyond the watermark except data the
// workload had actually written. Swept across the whole workload at
// two seeds and two fsync cadences.
func TestCrashPointProperty(t *testing.T) {
	for _, tc := range []struct {
		seed       int64
		fsyncEvery int
	}{
		{seed: 7, fsyncEvery: 256 << 10},
		{seed: 11, fsyncEvery: 0}, // only the final fsync: watermark stays 0
	} {
		w := Workload{RC: ufsclust.RunA(), FileMB: 2, FsyncEvery: tc.fsyncEvery, Seed: tc.seed}
		sr, err := Sweep(w, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Reports) != 10 {
			t.Fatalf("seed %d: %d reports, want 10", tc.seed, len(sr.Reports))
		}
		for _, r := range sr.Reports {
			if r.Outcome.Violation() {
				t.Errorf("seed %d cut %v (acked %d): %s: %s", tc.seed, r.Cut, r.Acked, r.Outcome, r.Detail)
			}
		}
		// The sweep must actually exercise mid-write cuts, not just
		// trivial before/after states.
		torn := 0
		for _, r := range sr.Reports {
			if r.Outcome == OutcomeTornTail {
				torn++
			}
		}
		if torn == 0 {
			t.Errorf("seed %d: no torn-tail outcome in %d cuts; sweep missed the interesting region", tc.seed, len(sr.Reports))
		}
	}
}

// TestSweepWriteCellAcceptance is the acceptance gate: at least 50 cut
// points across the full IObench sequential-write cell (16 MB), every
// recovery verified byte by byte, zero silent-corruption outcomes.
func TestSweepWriteCellAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("50-cut 16 MB sweep in -short mode")
	}
	w := Workload{RC: ufsclust.RunA(), FileMB: 16, FsyncEvery: 1 << 20, Seed: 42}
	sr, err := Sweep(w, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := sr.Violations(); len(v) != 0 {
		t.Fatalf("%d crash-consistency violations:\n%s", len(v), sr.Format())
	}
	t.Logf("\n%s", sr.Format())
}

func TestRecoverFlagsLostAcknowledgedData(t *testing.T) {
	// Corrupt the frozen image behind the harness's back: zero a
	// sector inside the acknowledged prefix. Recover must say
	// LOST-DATA, proving the verifier can actually fail.
	w := Workload{RC: ufsclust.RunA(), FileMB: 1, FsyncEvery: 256 << 10, Seed: 3}
	st, err := RunToCrash(w, fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Acked != w.Size() {
		t.Fatalf("uncut workload acked %d of %d", st.Acked, w.Size())
	}
	// Find a sector holding acknowledged data and wipe it. The file's
	// bytes are pattern (never zero), so scan the image for a sector
	// matching the start of the pattern.
	m, err := ufsclust.New(w.RC, ufsclust.WithImage(st.Image))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 512)
	for i := range want {
		want[i] = PatternByte(w.Seed, int64(i))
	}
	found := int64(-1)
	buf := make([]byte, 512)
	for s := int64(0); s < m.Disk.Geom().TotalSectors(); s++ {
		m.Disk.ReadImage(s, buf)
		if bytes.Equal(buf, want) {
			found = s
			break
		}
	}
	if found < 0 {
		t.Fatal("could not locate the file's first sector in the image")
	}
	m.Disk.WriteImage(found, make([]byte, 512))
	st.Image = m.Disk.Snapshot()
	m.Close()

	rep, _, err := Recover(w, st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeLostData {
		t.Fatalf("outcome = %s, want LOST-DATA (detail: %s)", rep.Outcome, rep.Detail)
	}
}

// faultEventStream runs a small fsync-heavy write workload under a
// plan that exercises all three fault event kinds — a transient media
// error (fault_inject), its retry (io_retry), and an event-anchored
// power cut (crash_cut) — and returns the machine's JSONL stream.
func faultEventStream(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	plan := fault.Plan{Rules: []fault.Rule{
		fault.FailNth(3, fault.Writes, 1),
		fault.CutAtEvent(telemetry.EvIOStart, 20),
	}}
	m, err := ufsclust.New(ufsclust.RunA(),
		ufsclust.WithSeed(99),
		ufsclust.WithTelemetry(&buf),
		ufsclust.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		chunk := make([]byte, 8192)
		for off := int64(0); off < 1<<20; off += int64(len(chunk)) {
			for i := range chunk {
				chunk[i] = PatternByte(99, off+int64(i))
			}
			if _, err := f.Write(p, off, chunk); err != nil {
				return // the cut may strand the write; fine
			}
			if (off+int64(len(chunk)))%(128<<10) == 0 {
				if err := f.Fsync(p); err != nil {
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Fault.Crashed() {
		t.Fatal("plan never cut power; the fixture must include a crash_cut")
	}
	return buf.String()
}

// TestFaultEventsDeterministicGolden locks the full event stream of a
// faulty run: same seed + same plan → byte-identical JSONL, matching
// the committed fixture, with every fault event kind present.
func TestFaultEventsDeterministicGolden(t *testing.T) {
	got := faultEventStream(t)
	if again := faultEventStream(t); again != got {
		t.Fatal("same seed, same plan produced different event streams")
	}
	for _, ev := range []string{`"ev":"fault_inject"`, `"ev":"io_retry"`, `"ev":"crash_cut"`} {
		if !strings.Contains(got, ev) {
			t.Errorf("stream is missing %s", ev)
		}
	}
	const path = "testdata/events_fault.golden"
	if *updateFaultEvents {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-fault-events)", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("event stream diverged from golden at line %d:\ngot:  %s\nwant: %s\n(regenerate with -update-fault-events)",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("event stream length %d lines, golden %d (regenerate with -update-fault-events)", len(gl), len(wl))
	}
}

func TestFormatListsViolations(t *testing.T) {
	sr := &SweepResult{
		Workload: Workload{RC: ufsclust.RunA(), FileMB: 2}.withDefaults(),
		Total:    sim.Second,
		Reports: []Report{
			{Outcome: OutcomeTornTail, Cut: sim.Millisecond},
			{Outcome: OutcomeLostData, Cut: 2 * sim.Millisecond, Acked: 4096, Detail: "acknowledged byte 17: got 0x00, want 0x5a"},
		},
	}
	out := sr.Format()
	if !strings.Contains(out, "torn-tail") || !strings.Contains(out, "LOST-DATA") {
		t.Fatalf("histogram incomplete:\n%s", out)
	}
	if !strings.Contains(out, "VIOLATION at cut") {
		t.Fatalf("violation line missing:\n%s", out)
	}
	if len(sr.Violations()) != 1 {
		t.Fatalf("violations = %d, want 1", len(sr.Violations()))
	}
}

func ExampleSweep() {
	w := Workload{RC: ufsclust.RunA(), FileMB: 1, FsyncEvery: 128 << 10, Seed: 1}
	sr, err := Sweep(w, 4, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(sr.Reports), "cuts,", len(sr.Violations()), "violations")
	// Output: 4 cuts, 0 violations
}
