package faultlab

import (
	"testing"

	"ufsclust"
	"ufsclust/internal/disk"
	"ufsclust/internal/fault"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
	"ufsclust/internal/vol"
	"ufsclust/internal/wal"
)

// TestJournaledCrashPointProperty is the journaled twin of the core
// crash-point property: wherever the cut lands, log replay alone (no
// full-image repair) must leave a consistent file system holding the
// acknowledged prefix intact — for both log write layouts.
func TestJournaledCrashPointProperty(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  wal.Config
	}{
		{"per-record", wal.Config{}},
		{"clustered", wal.Config{Clustered: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			w := Workload{RC: ufsclust.RunA(), FileMB: 2, FsyncEvery: 256 << 10, Seed: 7, Journal: &cfg}
			sr, err := Sweep(w, 10, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range sr.Reports {
				if r.Outcome.Violation() {
					t.Errorf("cut %v (acked %d): %s: %s", r.Cut, r.Acked, r.Outcome, r.Detail)
				}
				if r.RecoveryBound == 0 {
					t.Errorf("cut %v: no replay accounting on a journaled recovery", r.Cut)
				}
				if r.RecoverySectorsRead > r.RecoveryBound {
					t.Errorf("cut %v: recovery read %d sectors, bound %d", r.Cut, r.RecoverySectorsRead, r.RecoveryBound)
				}
			}
		})
	}
}

// TestJournaledSweepWriteCellAcceptance is the tentpole acceptance
// gate: 50 power cuts across the full 16 MB IObench write cell on a
// journaled machine — zero durability violations, and every recovery
// bounded by the log region size rather than the image size.
func TestJournaledSweepWriteCellAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("50-cut 16 MB journaled sweep in -short mode")
	}
	w := Workload{RC: ufsclust.RunA(), FileMB: 16, FsyncEvery: 1 << 20, Seed: 42, Journal: &wal.Config{}}
	sr, err := Sweep(w, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := sr.Violations(); len(v) != 0 {
		t.Fatalf("%d crash-consistency violations:\n%s", len(v), sr.Format())
	}
	for _, r := range sr.Reports {
		if r.RecoverySectorsRead > r.RecoveryBound {
			t.Errorf("cut %v: recovery read %d sectors, log is only %d", r.Cut, r.RecoverySectorsRead, r.RecoveryBound)
		}
	}
	t.Logf("\n%s", sr.Format())
}

// countingDev counts offline sector reads through a Device — the
// instrument for comparing recovery costs without wall clocks.
type countingDev struct {
	disk.Device
	reads int64
}

func (c *countingDev) ReadImage(sector int64, buf []byte) {
	c.reads += int64(len(buf)+disk.SectorSize-1) / disk.SectorSize
	c.Device.ReadImage(sector, buf)
}

// crashMidRun cuts the workload at roughly half its uncut duration and
// returns the frozen state.
func crashMidRun(t *testing.T, w Workload) *CrashState {
	t.Helper()
	base, err := RunToCrash(w, fault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunToCrash(w, fault.Plan{Rules: []fault.Rule{fault.CutAtTime(base.End / 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Crashed {
		t.Fatal("mid-run cut never fired")
	}
	return st
}

// TestJournaledRecoveryCostBounded pins the economics of the journal:
// replay reads at most the log region, the bound does not grow with
// the image, and on the 16 MB write cell replay reads strictly fewer
// sectors than the full-image ufs.Repair of the same crash.
func TestJournaledRecoveryCostBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("16 MB recovery-cost comparison in -short mode")
	}
	recoverAt := func(fileMB int) *Report {
		w := Workload{RC: ufsclust.RunA(), FileMB: fileMB, FsyncEvery: 1 << 20, Seed: 42, Journal: &wal.Config{}}
		st := crashMidRun(t, w)
		rep, _, err := Recover(w, st)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Outcome.Violation() {
			t.Fatalf("%d MB: %s: %s", fileMB, rep.Outcome, rep.Detail)
		}
		return rep
	}

	small, big := recoverAt(4), recoverAt(16)
	for _, rep := range []*Report{small, big} {
		if rep.RecoveryBound == 0 || rep.RecoverySectorsRead > rep.RecoveryBound {
			t.Fatalf("replay read %d sectors against bound %d", rep.RecoverySectorsRead, rep.RecoveryBound)
		}
	}
	// Image-size independence: quadrupling the file leaves the bound
	// untouched — it is a property of the log, not the image.
	if small.RecoveryBound != big.RecoveryBound {
		t.Fatalf("recovery bound moved with image size: %d at 4 MB, %d at 16 MB", small.RecoveryBound, big.RecoveryBound)
	}

	// The same 16 MB crash without a journal recovers by full-image
	// repair; count its reads through a wrapped device.
	wu := Workload{RC: ufsclust.RunA(), FileMB: 16, FsyncEvery: 1 << 20, Seed: 42}
	st := crashMidRun(t, wu)
	s := sim.New(1)
	defer s.Close()
	d := disk.New(s, "sd0", disk.DefaultParams())
	d.Restore(st.Image)
	cd := &countingDev{Device: d}
	if _, err := ufs.Repair(cd); err != nil {
		t.Fatal(err)
	}
	if big.RecoverySectorsRead >= cd.reads {
		t.Fatalf("journal replay read %d sectors, full-image repair read %d — replay must be strictly cheaper",
			big.RecoverySectorsRead, cd.reads)
	}
	t.Logf("replay read %d sectors (bound %d); ufs.Repair read %d", big.RecoverySectorsRead, big.RecoveryBound, cd.reads)
}

// TestJournaledDegradedMirrorSweep extends the sweep matrix to a
// journaled machine on an already-degraded two-way mirror: the dead
// spindle changes nothing about the durability contract or the replay
// bound.
func TestJournaledDegradedMirrorSweep(t *testing.T) {
	w := volWorkload(vol.Config{Level: vol.RAID1, Members: 2, Degraded: []int{1}})
	w.Journal = &wal.Config{}
	cuts := 10
	if !testing.Short() {
		cuts = 50
	}
	sr, err := Sweep(w, cuts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := sr.Violations(); len(v) != 0 {
		t.Fatalf("%d violations on journaled degraded mirror:\n%s", len(v), sr.Format())
	}
	for _, r := range sr.Reports {
		if r.RecoveryBound == 0 || r.RecoverySectorsRead > r.RecoveryBound {
			t.Errorf("cut %v: replay accounting %d/%d", r.Cut, r.RecoverySectorsRead, r.RecoveryBound)
		}
	}
}
