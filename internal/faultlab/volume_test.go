package faultlab

import (
	"testing"

	"ufsclust"
	"ufsclust/internal/disk"
	"ufsclust/internal/vol"
)

// volWorkload is the degraded-mode test workload: small members (50 MB)
// and a small file keep every round trip quick.
func volWorkload(cfg vol.Config) Workload {
	p := disk.DefaultParams()
	p.Geom = disk.UniformGeometry(200, 8, 64, 3600)
	cfg.Member = &p
	return Workload{
		RC:         ufsclust.RunA(),
		FileMB:     2,
		FsyncEvery: 256 << 10,
		Seed:       19,
		Volume:     &cfg,
	}
}

// TestDegradedMemberMirrorSurvives is the spindle-loss acceptance test
// on a mirror: a hard media fault on one member's first read must fail
// the member over with every byte intact (zero violations), and the
// harness must be able to rebuild the member and re-verify redundancy.
// The same loss on a stripe set has no second copy to serve from, so
// the only honest verdict is CORRUPT: acknowledged bytes are gone.
func TestDegradedMemberMirrorSurvives(t *testing.T) {
	for member := 0; member < 2; member++ {
		rep, err := RunDegradedMember(volWorkload(vol.Config{Level: vol.RAID1, Members: 2}), member)
		if err != nil {
			t.Fatalf("member %d: %v", member, err)
		}
		if rep.Outcome != OutcomeFull {
			t.Errorf("member %d: outcome %s (%s), want %s", member, rep.Outcome, rep.Detail, OutcomeFull)
		}
		if !rep.Failed {
			t.Errorf("member %d: volume never marked the faulted member dead", member)
		}
		if !rep.Rebuilt {
			t.Errorf("member %d: member not rebuilt after the degraded read", member)
		}
	}
}

func TestDegradedMemberRAID5Survives(t *testing.T) {
	rep, err := RunDegradedMember(volWorkload(vol.Config{Level: vol.RAID5, Members: 4}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeFull || !rep.Failed || !rep.Rebuilt {
		t.Fatalf("RAID-5 spindle loss: %+v, want full/failed/rebuilt", *rep)
	}
}

func TestDegradedMemberStripeCorrupts(t *testing.T) {
	rep, err := RunDegradedMember(volWorkload(vol.Config{Level: vol.RAID0, Members: 2}), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeCorrupt {
		t.Fatalf("RAID-0 spindle loss: outcome %s (%s), want %s — a stripe set has no copy to fail over to",
			rep.Outcome, rep.Detail, OutcomeCorrupt)
	}
	if rep.Failed {
		t.Fatal("RAID-0 marked a member failed; non-redundant levels must surface the error instead")
	}
}

// TestSweepDegradedMirrorAcceptance is the acceptance gate for crash
// consistency on an already-degraded array: 50 power cuts across the
// write cell on a two-way mirror whose second spindle is dead from
// boot. Every recovery must uphold the same durability contract as the
// single-drive sweep — the dead mirror side must never surface stale
// bytes or fail repair.
func TestSweepDegradedMirrorAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("50-cut degraded-mirror sweep in -short mode")
	}
	w := volWorkload(vol.Config{Level: vol.RAID1, Members: 2, Degraded: []int{1}})
	sr, err := Sweep(w, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Reports) != 50 {
		t.Fatalf("%d reports, want 50", len(sr.Reports))
	}
	if v := sr.Violations(); len(v) != 0 {
		for _, r := range v {
			t.Errorf("cut %v (acked %d): %s: %s", r.Cut, r.Acked, r.Outcome, r.Detail)
		}
	}
	torn := 0
	for _, r := range sr.Reports {
		if r.Outcome == OutcomeTornTail {
			torn++
		}
	}
	if torn == 0 {
		t.Error("no torn-tail outcome in 50 cuts; the sweep missed the mid-write region")
	}
}
