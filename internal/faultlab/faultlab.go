// Package faultlab is the crash-consistency harness: it runs a
// sequential write workload on a machine with a power-cut fault plan,
// freezes the platter at the cut, boots a fresh machine from the frozen
// image through repair (the reboot-and-fsck path), and verifies byte by
// byte that everything the workload had been told was durable is still
// there. A cut sweep repeats this at many instants across the workload
// and reports the outcome distribution; any LOST-DATA / CORRUPT /
// FSCK-DIRTY outcome is a crash-consistency bug in the file system.
package faultlab

import (
	"fmt"
	"sort"
	"strings"

	"ufsclust"
	"ufsclust/internal/disk"
	"ufsclust/internal/fault"
	"ufsclust/internal/runner"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/ufs"
	"ufsclust/internal/vol"
	"ufsclust/internal/wal"
)

// Workload is a sequential create-write-fsync job, the write cell of
// IObench with a durability watermark: every byte is a deterministic
// pattern of its offset, and the workload records how much the file
// system has acknowledged as durable (fsync returned) at any instant.
type Workload struct {
	RC         ufsclust.RunConfig
	FileMB     int   // file size in MB; default 16 (the paper's IObench file)
	IOSize     int   // bytes per write call; default 8192
	FsyncEvery int   // fsync after every N bytes written; 0 = only a final fsync
	Seed       int64 // machine seed
	MemBytes   int64 // machine memory; 0 = the paper's 8 MB
	Path       string

	// Volume, when non-nil, runs the workload on a composed volume
	// (internal/vol) instead of the single drive — including degraded
	// configurations (Volume.Degraded), so a cut sweep can prove the
	// durability contract holds with a spindle already dead.
	Volume *vol.Config

	// Journal, when non-nil, runs the workload on a journaled machine
	// (internal/wal): recovery after the cut is then a log replay whose
	// cost is bounded by the log region size, not the full-image repair
	// — under the same zero-violation bar. The report carries the
	// replay's sector accounting.
	Journal *wal.Config
}

// options assembles the machine options shared by every boot of this
// workload (seedOff keeps the builder, crash, and recovery machines on
// distinct seeds).
func (w Workload) options(seedOff int64, extra ...ufsclust.Option) []ufsclust.Option {
	opts := []ufsclust.Option{
		ufsclust.WithSeed(w.Seed + seedOff),
		ufsclust.WithMemBytes(w.MemBytes),
	}
	if w.Volume != nil {
		opts = append(opts, ufsclust.WithVolume(*w.Volume))
	}
	if w.Journal != nil {
		opts = append(opts, ufsclust.WithJournal(*w.Journal))
	}
	return append(opts, extra...)
}

func (w Workload) withDefaults() Workload {
	if w.FileMB == 0 {
		w.FileMB = 16
	}
	if w.IOSize == 0 {
		w.IOSize = 8192
	}
	if w.Path == "" {
		w.Path = "/faultlab"
	}
	return w
}

// Size returns the workload's total byte count.
func (w Workload) Size() int64 { return int64(w.FileMB) << 20 }

// PatternByte is the expected content of the workload file at offset
// off: deterministic, seed-dependent, and never zero — so an
// unwritten or torn-away sector (zeros) can never masquerade as data.
func PatternByte(seed, off int64) byte {
	x := uint64(off)*0x9E3779B97F4A7C15 + uint64(seed)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 29
	return byte(x%255) + 1
}

// CrashState is what survives a power cut: the frozen platter and the
// workload's durability watermark at the instant the lights went out.
type CrashState struct {
	Image *disk.Image
	// VolImages is the per-member platter set when the workload ran on
	// a volume (Image is then nil), in member order.
	VolImages []*disk.Image
	// Acked is the durability watermark: -1 until Create returned
	// (the file itself may not exist), then the number of leading
	// bytes fsync has acknowledged.
	Acked   int64
	Crashed bool
	Cut     sim.Time // cut instant (valid when Crashed)
	End     sim.Time // virtual time the workload finished (when !Crashed)
}

// RunToCrash executes the workload on a fresh machine under plan and
// returns the frozen aftermath. If the plan never cuts power the
// workload runs to completion and the state holds the final image with
// Acked == w.Size().
func RunToCrash(w Workload, plan fault.Plan) (*CrashState, error) {
	w = w.withDefaults()
	m, err := ufsclust.New(w.RC, w.options(1, ufsclust.WithFaultPlan(plan))...)
	if err != nil {
		return nil, err
	}
	defer m.Close()

	size := w.Size()
	acked := int64(-1)
	var runErr error
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, w.Path)
		if err != nil {
			runErr = err
			return
		}
		// Create writes the directory entry and inode synchronously, so
		// the file's existence is durable the moment it returns.
		acked = 0
		chunk := make([]byte, w.IOSize)
		since := 0
		for off := int64(0); off < size; off += int64(len(chunk)) {
			for i := range chunk {
				chunk[i] = PatternByte(w.Seed, off+int64(i))
			}
			if _, err := f.Write(p, off, chunk); err != nil {
				runErr = err
				return
			}
			since += len(chunk)
			if w.FsyncEvery > 0 && since >= w.FsyncEvery {
				if err := f.Fsync(p); err != nil {
					runErr = err
					return
				}
				acked = off + int64(len(chunk))
				since = 0
			}
		}
		if err := f.Fsync(p); err != nil {
			runErr = err
			return
		}
		acked = size
	})
	if err != nil {
		return nil, err
	}
	if runErr != nil && !m.Fault.Crashed() {
		return nil, fmt.Errorf("faultlab: workload failed without a crash: %w", runErr)
	}
	st := &CrashState{
		Acked:   acked,
		Crashed: m.Fault.Crashed(),
	}
	if m.Vol != nil {
		st.VolImages = m.Vol.Snapshot()
	} else {
		st.Image = m.Disk.Snapshot()
	}
	if st.Crashed {
		st.Cut = m.Fault.CrashTime()
	} else {
		st.End = m.Sim.Now()
	}
	return st, nil
}

// Outcome classifies one crash-recovery round trip.
type Outcome string

// Outcomes, benign first. The upper-case ones are file-system bugs.
const (
	OutcomeFull     Outcome = "full"       // entire file durable and intact
	OutcomeTornTail Outcome = "torn-tail"  // acked prefix intact, tail partially flushed
	OutcomeAbsent   Outcome = "absent"     // cut before create was durable; no file
	OutcomeLostData Outcome = "LOST-DATA"  // acknowledged bytes missing or wrong
	OutcomeCorrupt  Outcome = "CORRUPT"    // recovered bytes that were never written
	OutcomeDirty    Outcome = "FSCK-DIRTY" // repair left an inconsistent file system
)

// Violation reports whether the outcome is a crash-consistency bug.
func (o Outcome) Violation() bool {
	return o == OutcomeLostData || o == OutcomeCorrupt || o == OutcomeDirty
}

// Report is the verdict on one cut.
type Report struct {
	Outcome Outcome
	Cut     sim.Time // when power was cut (0: workload completed uncut)
	Acked   int64    // durability watermark at the cut
	Size    int64    // recovered file size (-1: file absent)
	Fixes   int      // repairs applied on reboot (full-image repair only)
	Detail  string   // first violation, for the violation outcomes

	// Journaled recovery accounting (journaled workloads only): the
	// boot replayed ReplayTxns committed transactions, reading
	// RecoverySectorsRead sectors against the structural bound
	// RecoveryBound (the log region size). The bound is independent of
	// the image size — the whole point of the journal.
	ReplayTxns          int
	RecoverySectorsRead int64
	RecoveryBound       int64
}

// Recover boots a fresh machine from the crash state's image through
// recovery — ufs.Repair classically, the journal replay that already
// ran at boot on a journaled image — reads the workload file back, and
// verifies the durability contract: every acknowledged byte intact,
// every byte beyond the watermark either the written pattern (made it
// to the platter before the cut) or zero (didn't) — anything else is
// corruption. The repair report of the recovery boot is returned
// alongside the verdict (nil on a journaled boot, which has no repair).
func Recover(w Workload, st *CrashState) (*Report, *ufs.RepairReport, error) {
	w = w.withDefaults()
	boot := ufsclust.WithRecovery(st.Image)
	if w.Volume != nil {
		boot = ufsclust.WithRecovery(st.VolImages...)
	}
	m, err := ufsclust.New(w.RC, w.options(2, boot)...)
	if err != nil {
		return nil, nil, err
	}
	defer m.Close()

	rep := &Report{Cut: st.Cut, Acked: st.Acked, Size: -1}
	rr := m.RepairLog
	if rl := m.ReplayLog; rl != nil {
		// Journaled boot: recovery was the log replay, already done and
		// accounted. The read-only Fsck here is the harness verifying
		// that replay alone left a consistent image — verification
		// cost, deliberately not folded into the recovery numbers.
		rep.ReplayTxns = rl.Txns
		rep.RecoverySectorsRead = rl.SectorsRead
		rep.RecoveryBound = rl.LogSectors
		chk, err := ufs.Fsck(m.Dev)
		if err != nil {
			return nil, nil, fmt.Errorf("faultlab: post-replay fsck: %w", err)
		}
		if !chk.Clean() {
			rep.Outcome = OutcomeDirty
			rep.Detail = strings.Join(chk.Problems, "; ")
			return rep, nil, nil
		}
	} else {
		rep.Fixes = len(rr.Fixes)
		if !rr.Clean() {
			rep.Outcome = OutcomeDirty
			rep.Detail = strings.Join(rr.Check.Problems, "; ")
			return rep, rr, nil
		}
	}

	var data []byte
	var openErr, readErr error
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Open(p, w.Path)
		if err != nil {
			openErr = err
			return
		}
		data = make([]byte, f.Size())
		if _, err := f.Read(p, 0, data); err != nil {
			readErr = err
		}
	})
	if err != nil {
		return nil, nil, err
	}
	if readErr != nil {
		return nil, nil, fmt.Errorf("faultlab: reading recovered file: %w", readErr)
	}
	if openErr != nil {
		if st.Acked < 0 {
			rep.Outcome = OutcomeAbsent
			return rep, rr, nil
		}
		rep.Outcome = OutcomeLostData
		rep.Detail = fmt.Sprintf("file lost after create was acknowledged: %v", openErr)
		return rep, rr, nil
	}
	rep.Size = int64(len(data))

	if rep.Size < st.Acked {
		rep.Outcome = OutcomeLostData
		rep.Detail = fmt.Sprintf("size %d < acknowledged %d", rep.Size, st.Acked)
		return rep, rr, nil
	}
	intact := true
	for off := int64(0); off < rep.Size; off++ {
		want := PatternByte(w.Seed, off)
		got := data[off]
		if got == want {
			continue
		}
		if off < st.Acked {
			rep.Outcome = OutcomeLostData
			rep.Detail = fmt.Sprintf("acknowledged byte %d: got %#02x, want %#02x", off, got, want)
			return rep, rr, nil
		}
		if got != 0 {
			rep.Outcome = OutcomeCorrupt
			rep.Detail = fmt.Sprintf("byte %d beyond watermark: got %#02x, want %#02x or 0", off, got, want)
			return rep, rr, nil
		}
		intact = false
	}
	if intact && rep.Size == w.Size() {
		rep.Outcome = OutcomeFull
	} else {
		rep.Outcome = OutcomeTornTail
	}
	return rep, rr, nil
}

// CrashAndRecover is one full round trip: run to the cut, reboot,
// repair, verify.
func CrashAndRecover(w Workload, plan fault.Plan) (*Report, error) {
	st, err := RunToCrash(w, plan)
	if err != nil {
		return nil, err
	}
	rep, _, err := Recover(w, st)
	return rep, err
}

// SweepResult is the outcome distribution of a cut sweep.
type SweepResult struct {
	Workload Workload
	Total    sim.Time // baseline (uncut) virtual duration of the workload
	Reports  []Report // one per cut, in cut-time order
}

// Violations returns the reports whose outcome is a bug.
func (sr *SweepResult) Violations() []Report {
	var out []Report
	for _, r := range sr.Reports {
		if r.Outcome.Violation() {
			out = append(out, r)
		}
	}
	return out
}

// Sweep runs the workload uncut to measure its virtual duration T,
// then crashes it at n instants evenly spaced across (0, T) and
// verifies every recovery, across workers host goroutines (0 means
// GOMAXPROCS, 1 serial). Every machine is seeded only by the workload,
// so the sweep is deterministic regardless of worker count.
func Sweep(w Workload, n, workers int) (*SweepResult, error) {
	w = w.withDefaults()
	base, err := RunToCrash(w, fault.Plan{})
	if err != nil {
		return nil, fmt.Errorf("faultlab: baseline: %w", err)
	}
	if base.Crashed || base.Acked != w.Size() {
		return nil, fmt.Errorf("faultlab: baseline did not complete (acked %d of %d)", base.Acked, w.Size())
	}
	sr := &SweepResult{Workload: w, Total: base.End}
	reports, err := runner.Map(n, runner.Options{Workers: workers}, func(i int) (Report, error) {
		cut := sim.Time(int64(base.End) * int64(i+1) / int64(n+1))
		plan := fault.Plan{Rules: []fault.Rule{fault.CutAtTime(cut)}}
		rep, err := CrashAndRecover(w, plan)
		if err != nil {
			return Report{}, fmt.Errorf("cut %d at %v: %w", i+1, cut, err)
		}
		return *rep, nil
	})
	if err != nil {
		return nil, err
	}
	sr.Reports = reports
	return sr, nil
}

// MemberReport is the verdict of a degraded-mode round trip: a spindle
// of a volume dies under read load, and the report says whether the
// file survived and whether the array was rebuilt back to health.
type MemberReport struct {
	Outcome Outcome
	Member  int    // the member the media fault was aimed at
	Failed  bool   // the volume marked the member dead
	Rebuilt bool   // member reconstructed and redundancy re-verified
	Detail  string // first violation / surfaced error
}

// RunDegradedMember is the spindle-loss round trip. It writes the
// workload to completion on a healthy volume, snapshots the member
// platters, reboots from them with a hard media fault armed on the
// given member's first read, and reads the whole file back.
//
// A redundant volume (mirror, RAID-5) must fail the member over and
// return every byte — zero violations — after which the member is
// rebuilt from the survivors and the redundancy invariant re-verified.
// A non-redundant volume (stripe set) must surface the loss as a read
// error: the CORRUPT verdict, because bytes the file system
// acknowledged are no longer servable.
func RunDegradedMember(w Workload, member int) (*MemberReport, error) {
	w = w.withDefaults()
	if w.Volume == nil {
		return nil, fmt.Errorf("faultlab: RunDegradedMember needs a volume workload")
	}
	if member < 0 || member >= w.Volume.Members {
		return nil, fmt.Errorf("faultlab: member %d out of range", member)
	}
	base, err := RunToCrash(w, fault.Plan{})
	if err != nil {
		return nil, fmt.Errorf("faultlab: building volume: %w", err)
	}
	if base.Crashed || base.Acked != w.Size() {
		return nil, fmt.Errorf("faultlab: build did not complete (acked %d of %d)", base.Acked, w.Size())
	}

	plan := fault.Plan{Rules: []fault.Rule{{
		Match: fault.Match{
			Event: telemetry.EvIOStart,
			Nth:   1,
			RW:    fault.Reads,
			Dev:   fmt.Sprintf("sd%d", member),
		},
		Kind: fault.MediaHard,
	}}}
	m, err := ufsclust.New(w.RC, w.options(3,
		ufsclust.WithVolumeImages(base.VolImages),
		ufsclust.WithFaultPlan(plan))...)
	if err != nil {
		return nil, err
	}
	defer m.Close()

	rep := &MemberReport{Member: member}
	var data []byte
	var ioErr error
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Open(p, w.Path)
		if err != nil {
			ioErr = err
			return
		}
		data = make([]byte, f.Size())
		if _, err := f.Read(p, 0, data); err != nil {
			ioErr = err
		}
	})
	if err != nil {
		return nil, err
	}
	for _, fm := range m.Vol.Failed() {
		if fm == member {
			rep.Failed = true
		}
	}
	if ioErr != nil {
		rep.Outcome = OutcomeCorrupt
		rep.Detail = fmt.Sprintf("read after member loss: %v", ioErr)
		return rep, nil
	}
	if int64(len(data)) != w.Size() {
		rep.Outcome = OutcomeLostData
		rep.Detail = fmt.Sprintf("size %d, want %d", len(data), w.Size())
		return rep, nil
	}
	for off, got := range data {
		if want := PatternByte(w.Seed, int64(off)); got != want {
			rep.Outcome = OutcomeLostData
			rep.Detail = fmt.Sprintf("byte %d: got %#02x, want %#02x", off, got, want)
			return rep, nil
		}
	}
	rep.Outcome = OutcomeFull

	if rep.Failed {
		if err := m.Vol.Rebuild(member); err != nil {
			rep.Outcome = OutcomeDirty
			rep.Detail = fmt.Sprintf("rebuild: %v", err)
			return rep, nil
		}
		if bad, first := m.Vol.CheckParity(); bad > 0 {
			rep.Outcome = OutcomeDirty
			rep.Detail = fmt.Sprintf("%d bad spans after rebuild: %v", bad, first)
			return rep, nil
		}
		rep.Rebuilt = true
	}
	return rep, nil
}

// Format renders the sweep: the outcome histogram in canonical order,
// then one line per violation.
func (sr *SweepResult) Format() string {
	counts := make(map[Outcome]int)
	for _, r := range sr.Reports {
		counts[r.Outcome]++
	}
	var sb strings.Builder
	tag := ""
	if sr.Workload.Journal != nil {
		tag = ", journaled"
	}
	fmt.Fprintf(&sb, "%d cuts over %v (%s, %d MB, fsync every %d bytes%s)\n",
		len(sr.Reports), sr.Total, sr.Workload.RC.Name, sr.Workload.FileMB, sr.Workload.FsyncEvery, tag)
	for _, o := range []Outcome{OutcomeFull, OutcomeTornTail, OutcomeAbsent, OutcomeLostData, OutcomeCorrupt, OutcomeDirty} {
		if counts[o] > 0 {
			fmt.Fprintf(&sb, "  %-10s %4d\n", o, counts[o])
			delete(counts, o)
		}
	}
	var rest []string
	for o := range counts {
		rest = append(rest, string(o))
	}
	sort.Strings(rest)
	for _, o := range rest {
		fmt.Fprintf(&sb, "  %-10s %4d\n", o, counts[Outcome(o)])
	}
	for _, r := range sr.Violations() {
		fmt.Fprintf(&sb, "  VIOLATION at cut %v (acked %d): %s: %s\n", r.Cut, r.Acked, r.Outcome, r.Detail)
	}
	return sb.String()
}
