package vol_test

import (
	"fmt"
	"testing"

	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/vol"
)

// xfer is one member transfer as observed on the telemetry bus.
type xfer struct {
	dev    string
	sector int64
	bytes  int64
	write  bool
}

func (x xfer) String() string {
	rw := "r"
	if x.write {
		rw = "w"
	}
	return fmt.Sprintf("%s %s %d+%d", x.dev, rw, x.sector, x.bytes)
}

// captureStraddle boots a volume, issues one 56 KB write at logical
// sector 0, and returns the member io_start transfers in issue order.
func captureStraddle(t *testing.T, cfg vol.Config) []xfer {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	cfg.Member = member()
	v, err := vol.New(s, "vol0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	v.AttachTelemetry(tel)
	var got []xfer
	tel.Bus.Subscribe(func(ev telemetry.Event) {
		if ev.Kind == telemetry.EvIOStart {
			got = append(got, xfer{ev.Dev, ev.Sector, ev.Bytes, ev.Write})
		}
	})
	data := make([]byte, 56<<10)
	fill(data, 1)
	run(t, s, func(p *sim.Proc) {
		if err := volIO(p, v, 0, data, true); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	return got
}

// TestStripeStraddleGolden pins the exact member decomposition of a
// 56 KB cluster write straddling a 32 KB stripe unit — count, order,
// addresses, and direction — so the split can never drift silently.
//
// RAID-0 x2: sectors [0,112) interleave in 64-sector chunks:
// chunk 0 -> sd0[0,64), chunk 1 -> sd1[0,64) but only 48 sectors of it
// are covered. Two writes, member order = first touch.
//
// RAID-5 x3: each parity row spans 2 data chunks = 128 sectors, so the
// 112-sector write is a partial row 0 and takes the read-modify-write
// path: phase 1 reads old data under both dirty chunks plus old parity
// (sd2 holds row 0's parity), phase 2 writes the same three extents.
func TestStripeStraddleGolden(t *testing.T) {
	for _, c := range []struct {
		name string
		cfg  vol.Config
		want []xfer
	}{
		{
			name: "raid0-x2",
			cfg:  vol.Config{Level: vol.RAID0, Members: 2, StripeKB: 32},
			want: []xfer{
				{"sd0", 0, 32 << 10, true},
				{"sd1", 0, 24 << 10, true},
			},
		},
		{
			name: "raid5-x3",
			cfg:  vol.Config{Level: vol.RAID5, Members: 3, StripeKB: 32},
			want: []xfer{
				{"sd0", 0, 32 << 10, false},
				{"sd1", 0, 24 << 10, false},
				{"sd2", 0, 32 << 10, false},
				{"sd0", 0, 32 << 10, true},
				{"sd1", 0, 24 << 10, true},
				{"sd2", 0, 32 << 10, true},
			},
		},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := captureStraddle(t, c.cfg)
			if len(got) != len(c.want) {
				t.Fatalf("%d member transfers %v, want %d %v", len(got), got, len(c.want), c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("transfer %d = %v, want %v (full sequence %v)", i, got[i], c.want[i], got)
				}
			}
		})
	}
}
