package vol_test

import (
	"fmt"
	"testing"

	"ufsclust/internal/disk"
	"ufsclust/internal/fault"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/vol"
)

// member returns a small drive template: 64 cyl x 2 heads x 32 spt =
// 4096 sectors = 2 MB per member, so whole-array scans stay cheap.
func member() *disk.Params {
	p := disk.DefaultParams()
	p.Geom = disk.UniformGeometry(64, 2, 32, 3600)
	return &p
}

func newVol(t *testing.T, seed int64, cfg vol.Config) (*sim.Sim, *vol.Volume) {
	t.Helper()
	s := sim.New(seed)
	t.Cleanup(s.Close)
	if cfg.Member == nil {
		cfg.Member = member()
	}
	v, err := vol.New(s, "vol0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, v
}

// volIO submits one request and blocks the calling process until it
// completes.
func volIO(p *sim.Proc, v *vol.Volume, sector int64, data []byte, write bool) error {
	r := &disk.Request{Sector: sector, Count: len(data) / disk.SectorSize, Write: write, Data: data}
	done := false
	var q sim.WaitQ
	r.Done = func() { done = true; q.WakeAll() }
	v.Submit(r)
	for !done {
		p.Block(&q)
	}
	return r.Err
}

func run(t *testing.T, s *sim.Sim, fn func(p *sim.Proc)) {
	t.Helper()
	s.Spawn("test", fn)
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// fill writes a deterministic nonzero pattern.
func fill(buf []byte, seed int64) {
	for i := range buf {
		buf[i] = byte((int64(i)*2654435761+seed)>>3) | 1
	}
}

func levels() []vol.Config {
	return []vol.Config{
		{Level: vol.Concat, Members: 2},
		{Level: vol.RAID0, Members: 3, StripeKB: 8},
		{Level: vol.RAID1, Members: 2},
		{Level: vol.RAID5, Members: 4, StripeKB: 8},
	}
}

// TestConfigValidation rejects senseless volumes.
func TestConfigValidation(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	bad := []vol.Config{
		{Level: vol.RAID5, Members: 2, Member: member()},                    // too few
		{Level: vol.RAID0, Members: 1, Member: member()},                    // too few
		{Level: vol.RAID0, Members: 2, StripeKB: 3, Member: member()},       // stripe does not divide capacity
		{Level: vol.RAID0, Members: 2, Degraded: []int{0}, Member: member()}, // no redundancy to degrade
		{Level: vol.RAID1, Members: 2, Degraded: []int{5}, Member: member()}, // member out of range
		{Level: vol.RAID5, Members: 3, Degraded: []int{0, 1}, Member: member()}, // beyond tolerance
	}
	for i, cfg := range bad {
		if _, err := vol.New(s, "bad", cfg); err == nil {
			t.Errorf("config %d (%s x%d) accepted, want error", i, cfg.Level, cfg.Members)
		}
	}
}

// TestGeometryAndChannels checks the synthetic geometry exposes exactly
// the data capacity and one service channel per spindle.
func TestGeometryAndChannels(t *testing.T) {
	msize := member().Geom.TotalSectors()
	want := map[vol.Level]int64{
		vol.Concat: 2 * msize,
		vol.RAID0:  3 * msize,
		vol.RAID1:  msize,
		vol.RAID5:  3 * msize, // 4 members, one chunk per row is parity
	}
	for _, cfg := range levels() {
		_, v := newVol(t, 1, cfg)
		if got := v.Geom().TotalSectors(); got != want[cfg.Level] {
			t.Errorf("%s: capacity %d sectors, want %d", cfg.Level, got, want[cfg.Level])
		}
		if v.Channels() != cfg.Members {
			t.Errorf("%s: %d channels, want %d", cfg.Level, v.Channels(), cfg.Members)
		}
	}
}

// TestLevelsReadBackWhatWasWritten is the shadow-model property test
// over every level: randomized online writes and reads, interleaved
// with offline image writes and reads, must always agree with a plain
// byte-array model of the volume — and on the redundant levels the
// redundancy invariant must hold after every acknowledged write.
func TestLevelsReadBackWhatWasWritten(t *testing.T) {
	for _, cfg := range levels() {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-x%d", cfg.Level, cfg.Members), func(t *testing.T) {
			s, v := newVol(t, 7, cfg)
			total := v.Geom().TotalSectors()
			shadow := make([]byte, total*disk.SectorSize)
			redundant := cfg.Level == vol.RAID1 || cfg.Level == vol.RAID5
			rnd := s.Rand
			run(t, s, func(p *sim.Proc) {
				for op := 0; op < 250; op++ {
					n := 1 + rnd.Int63n(64)
					sec := rnd.Int63n(total - n + 1)
					buf := make([]byte, n*disk.SectorSize)
					switch op % 4 {
					case 0, 1: // online write
						fill(buf, int64(op))
						if err := volIO(p, v, sec, buf, true); err != nil {
							t.Errorf("op %d: write: %v", op, err)
							return
						}
						copy(shadow[sec*disk.SectorSize:], buf)
					case 2: // offline write
						fill(buf, int64(op))
						v.WriteImage(sec, buf)
						copy(shadow[sec*disk.SectorSize:], buf)
					case 3: // read (online and offline agree with the shadow)
						if err := volIO(p, v, sec, buf, false); err != nil {
							t.Errorf("op %d: read: %v", op, err)
							return
						}
						if want := shadow[sec*disk.SectorSize : (sec+n)*disk.SectorSize]; !equal(buf, want) {
							t.Errorf("op %d: online read of [%d,%d) diverges from shadow", op, sec, sec+n)
							return
						}
					}
					if redundant {
						if bad, first := v.CheckParityRange(sec, n); bad > 0 {
							t.Errorf("op %d: redundancy violated after [%d,%d): %v", op, sec, sec+n, first)
							return
						}
					}
				}
			})
			// Whole-volume offline read against the shadow.
			img := make([]byte, len(shadow))
			v.ReadImage(0, img)
			if !equal(img, shadow) {
				t.Fatalf("%s: final image diverges from shadow", cfg.Level)
			}
			if redundant {
				if bad, first := v.CheckParity(); bad > 0 {
					t.Fatalf("%s: %d bad spans in final parity check: %v", cfg.Level, bad, first)
				}
			}
		})
	}
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRAID5ParityInvariant is the acceptance-criteria property test:
// over 1000 randomized writes (mixed sizes and alignments, so both the
// full-stripe and the read-modify-write paths fire constantly), the
// parity rows touched by every single acknowledged write must satisfy
// parity = XOR(data) the moment the write completes.
func TestRAID5ParityInvariant(t *testing.T) {
	cfg := vol.Config{Level: vol.RAID5, Members: 4, StripeKB: 8}
	s, v := newVol(t, 11, cfg)
	total := v.Geom().TotalSectors()
	rnd := s.Rand
	writes := 0
	run(t, s, func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			// Mix aligned full rows (stripe 16 sectors x 3 data chunks =
			// 48-sector rows) with arbitrary partial scribbles.
			var sec, n int64
			if i%5 == 0 {
				row := rnd.Int63n(total / 48)
				sec, n = row*48, 48
			} else {
				n = 1 + rnd.Int63n(96)
				sec = rnd.Int63n(total - n + 1)
			}
			buf := make([]byte, n*disk.SectorSize)
			fill(buf, int64(i))
			if err := volIO(p, v, sec, buf, true); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			writes++
			if bad, first := v.CheckParityRange(sec, n); bad > 0 {
				t.Errorf("write %d [%d,%d): parity invariant violated: %v", i, sec, sec+n, first)
				return
			}
		}
	})
	if writes != 1000 {
		t.Fatalf("completed %d writes, want 1000", writes)
	}
	if bad, first := v.CheckParity(); bad > 0 {
		t.Fatalf("%d bad spans in whole-array parity check: %v", bad, first)
	}
	if v.Stats.FullStripeWrites == 0 || v.Stats.ParityRMWRows == 0 {
		t.Fatalf("both write paths must fire: full-stripe=%d rmw=%d",
			v.Stats.FullStripeWrites, v.Stats.ParityRMWRows)
	}
}

// TestRAID5ConcurrentRMWKeepsParity drives overlapping partial-row
// writes from several concurrent processes — the shape a driver with
// one in-flight request per spindle produces naturally. Without the
// parity-row locks two read-modify-writes on one row both read the old
// parity and the later write-back erases the earlier delta; this test
// pins the serialization.
func TestRAID5ConcurrentRMWKeepsParity(t *testing.T) {
	cfg := vol.Config{Level: vol.RAID5, Members: 4, StripeKB: 8}
	s, v := newVol(t, 13, cfg)
	const writers = 6
	done := 0
	var wq sim.WaitQ
	for w := 0; w < writers; w++ {
		w := w
		s.Spawn(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
			// All writers hammer rows 0..3 (48 sectors each) with
			// unaligned 8-sector writes at distinct offsets.
			for i := 0; i < 40; i++ {
				sec := int64((w*8 + i*16) % 184)
				buf := make([]byte, 8*disk.SectorSize)
				fill(buf, int64(w*1000+i))
				if err := volIO(p, v, sec, buf, true); err != nil {
					t.Errorf("writer %d op %d: %v", w, i, err)
					return
				}
			}
			done++
			wq.WakeAll()
		})
	}
	s.Spawn("checker", func(p *sim.Proc) {
		for done < writers {
			p.Block(&wq)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if bad, first := v.CheckParity(); bad > 0 {
		t.Fatalf("%d bad parity spans after concurrent RMW storm: %v", bad, first)
	}
	if v.Stats.ParityRMWRows == 0 {
		t.Fatal("storm never took the RMW path")
	}
}

// TestDegradedReadEquivalence kills each member of a redundant volume
// in turn and byte-compares a full degraded read against the healthy
// content: reconstruction must be invisible to the reader.
func TestDegradedReadEquivalence(t *testing.T) {
	for _, cfg := range []vol.Config{
		{Level: vol.RAID1, Members: 2},
		{Level: vol.RAID5, Members: 4, StripeKB: 8},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-x%d", cfg.Level, cfg.Members), func(t *testing.T) {
			s, v := newVol(t, 3, cfg)
			total := v.Geom().TotalSectors()
			healthy := make([]byte, total*disk.SectorSize)
			fill(healthy, 99)
			run(t, s, func(p *sim.Proc) {
				if err := volIO(p, v, 0, healthy, true); err != nil {
					t.Errorf("fill: %v", err)
				}
			})
			imgs := v.Snapshot()
			for dead := 0; dead < cfg.Members; dead++ {
				dcfg := cfg
				dcfg.Degraded = []int{dead}
				s2, v2 := newVol(t, 5, dcfg)
				if err := v2.Restore(imgs); err != nil {
					t.Fatal(err)
				}
				got := make([]byte, len(healthy))
				run(t, s2, func(p *sim.Proc) {
					if err := volIO(p, v2, 0, got, false); err != nil {
						t.Errorf("degraded read with sd%d dead: %v", dead, err)
					}
				})
				if !equal(got, healthy) {
					t.Fatalf("degraded read with sd%d dead diverges from healthy content", dead)
				}
				if cfg.Level == vol.RAID5 && v2.Stats.DegradedReads == 0 {
					t.Fatalf("sd%d dead: read of the whole volume never reconstructed", dead)
				}
			}
		})
	}
}

// TestDegradedWritesAndRebuild writes through a degraded RAID-5 array
// (exercising the reconstruct-overlay-rewrite row path), verifies the
// content, rebuilds the dead member, and requires the parity invariant
// to hold array-wide again.
func TestDegradedWritesAndRebuild(t *testing.T) {
	cfg := vol.Config{Level: vol.RAID5, Members: 4, StripeKB: 8}
	s, v := newVol(t, 17, cfg)
	total := v.Geom().TotalSectors()
	shadow := make([]byte, total*disk.SectorSize)
	fill(shadow, 1)
	rnd := s.Rand
	run(t, s, func(p *sim.Proc) {
		if err := volIO(p, v, 0, shadow, true); err != nil {
			t.Errorf("fill: %v", err)
			return
		}
		v.FailMember(2)
		for i := 0; i < 100; i++ {
			n := 1 + rnd.Int63n(96)
			sec := rnd.Int63n(total - n + 1)
			buf := make([]byte, n*disk.SectorSize)
			fill(buf, int64(1000+i))
			if err := volIO(p, v, sec, buf, true); err != nil {
				t.Errorf("degraded write %d: %v", i, err)
				return
			}
			copy(shadow[sec*disk.SectorSize:], buf)
		}
		got := make([]byte, len(shadow))
		if err := volIO(p, v, 0, got, false); err != nil {
			t.Errorf("degraded read-all: %v", err)
			return
		}
		if !equal(got, shadow) {
			t.Errorf("degraded content diverges from shadow")
		}
	})
	if v.Stats.DegradedWrites == 0 {
		t.Fatal("no degraded writes counted")
	}
	if err := v.Rebuild(2); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if bad, first := v.CheckParity(); bad > 0 {
		t.Fatalf("%d bad spans after rebuild: %v", bad, first)
	}
	img := make([]byte, len(shadow))
	v.ReadImage(0, img)
	if !equal(img, shadow) {
		t.Fatal("content diverges from shadow after rebuild")
	}
}

// TestMirrorWritesAndReadRotor checks RAID-1 duplicates every write on
// both spindles and rotates reads across them.
func TestMirrorWritesAndReadRotor(t *testing.T) {
	s, v := newVol(t, 23, vol.Config{Level: vol.RAID1, Members: 2})
	data := make([]byte, 64*disk.SectorSize)
	fill(data, 8)
	run(t, s, func(p *sim.Proc) {
		if err := volIO(p, v, 100, data, true); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		buf := make([]byte, 8*disk.SectorSize)
		for i := 0; i < 4; i++ {
			if err := volIO(p, v, 100+int64(i)*8, buf, false); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
	})
	for i, d := range v.Members() {
		got := make([]byte, len(data))
		d.ReadImage(100, got)
		if !equal(got, data) {
			t.Errorf("mirror side sd%d diverges from written data", i)
		}
		if d.Stats.Reads == 0 {
			t.Errorf("read rotor never used sd%d (reads=0)", i)
		}
	}
	if bad, first := v.CheckParity(); bad > 0 {
		t.Fatalf("%d diverging mirror spans: %v", bad, first)
	}
}

// TestConcatPlacement checks a straddling concat write lands half on
// each member.
func TestConcatPlacement(t *testing.T) {
	s, v := newVol(t, 29, vol.Config{Level: vol.Concat, Members: 2})
	msize := member().Geom.TotalSectors()
	data := make([]byte, 16*disk.SectorSize)
	fill(data, 4)
	run(t, s, func(p *sim.Proc) {
		if err := volIO(p, v, msize-8, data, true); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	lo := make([]byte, 8*disk.SectorSize)
	hi := make([]byte, 8*disk.SectorSize)
	v.Members()[0].ReadImage(msize-8, lo)
	v.Members()[1].ReadImage(0, hi)
	if !equal(lo, data[:len(lo)]) || !equal(hi, data[len(lo):]) {
		t.Fatal("straddling concat write not split at the member boundary")
	}
}

// TestMemberFaultFailover injects a hard media fault on one mirror
// spindle's read path and requires the volume to fail the member over
// mid-request: the logical read succeeds, the member is marked dead,
// and the member_fail / degraded_read events reach the bus.
func TestMemberFaultFailover(t *testing.T) {
	s, v := newVol(t, 31, vol.Config{Level: vol.RAID1, Members: 2})
	tel := telemetry.New()
	v.AttachTelemetry(tel)
	var kinds []telemetry.EventKind
	tel.Bus.Subscribe(func(ev telemetry.Event) { kinds = append(kinds, ev.Kind) })
	inj, err := fault.NewInjector(s, fault.Plan{Rules: []fault.Rule{{
		Match: fault.Match{Event: telemetry.EvIOStart, Nth: 1, RW: fault.Reads, Dev: "sd0"},
		Kind:  fault.MediaHard,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	v.AttachFaults(inj)
	inj.AttachTelemetry(tel)

	data := make([]byte, 32*disk.SectorSize)
	fill(data, 2)
	run(t, s, func(p *sim.Proc) {
		if err := volIO(p, v, 0, data, true); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		got := make([]byte, len(data))
		if err := volIO(p, v, 0, got, false); err != nil {
			t.Errorf("read across member fault: %v", err)
			return
		}
		if !equal(got, data) {
			t.Error("failover read returned wrong bytes")
		}
	})
	if fd := v.Failed(); len(fd) != 1 || fd[0] != 0 {
		t.Fatalf("failed members %v, want [0]", fd)
	}
	if v.Stats.Failovers != 1 || v.Stats.MemberFails != 1 {
		t.Fatalf("failovers=%d member_fails=%d, want 1/1", v.Stats.Failovers, v.Stats.MemberFails)
	}
	saw := map[telemetry.EventKind]bool{}
	for _, k := range kinds {
		saw[k] = true
	}
	if !saw[telemetry.EvMemberFail] || !saw[telemetry.EvDegradedRead] {
		t.Fatalf("member_fail/degraded_read missing from the event stream: %v", saw)
	}
}

// TestBrokenVolumeReadsError pulls more members than the level
// tolerates and requires reads to surface the loss as an error rather
// than fabricated bytes.
func TestBrokenVolumeReadsError(t *testing.T) {
	s, v := newVol(t, 37, vol.Config{Level: vol.RAID5, Members: 3, StripeKB: 8})
	data := make([]byte, 64*disk.SectorSize)
	fill(data, 6)
	run(t, s, func(p *sim.Proc) {
		if err := volIO(p, v, 0, data, true); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		v.FailMember(0)
		v.FailMember(1)
		buf := make([]byte, len(data))
		if err := volIO(p, v, 0, buf, false); err == nil {
			t.Error("read on a two-dead-member RAID-5 succeeded, want error")
		}
	})
}
