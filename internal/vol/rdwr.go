package vol

import (
	"ufsclust/internal/disk"
	"ufsclust/internal/telemetry"
)

// piece is one logically contiguous run of sectors that also lands
// contiguously on a single member: request bytes
// [boff, boff+n*SectorSize) map to member sectors [msec, msec+n).
type piece struct {
	member int
	msec   int64 // member start sector
	boff   int64 // byte offset into the request's Data
	n      int64 // sectors
}

// memRun is a member-contiguous group of pieces issued as one member
// request — the volume's scatter/gather unit. RAID-0 folds a long
// request's every-Nth chunks into one streaming transfer per spindle;
// RAID-5 breaks runs where the parity rotation interrupts member-space
// contiguity.
type memRun struct {
	member int
	msec   int64
	n      int64
	pieces []piece
}

// volReq is the aggregation state for one logical request in flight:
// how many member operations remain, the first member error seen, and
// which member to blame for it.
type volReq struct {
	r       *disk.Request
	pending int
	err     error
	failMem int // member responsible for err; -1 when not a member fault

	// RAID-5 parity-row locks held by this request (see acquireRows):
	// rows [lockLo, nextRow) are held, nextRow is the one being waited
	// for while the request is parked on a rowWait list.
	locked         bool
	lockLo, lockHi int64
	nextRow        int64
}

// redundant reports whether the level can serve around a failed member.
func (v *Volume) redundant() bool {
	return v.cfg.Level == RAID1 || v.cfg.Level == RAID5
}

// Submit queues one logical request. A one-member concat forwards the
// request object untouched — the identity composition the golden-replay
// gate holds to byte-for-byte equality with a bare drive. Otherwise the
// request is split into member operations; completion is delivered
// through r.Done once every member operation (including any parity
// read-modify-write phases) has finished.
func (v *Volume) Submit(r *disk.Request) {
	if v.passthrough() {
		v.members[0].Submit(r)
		return
	}
	if r.Count <= 0 || r.Sector < 0 || r.Sector+int64(r.Count) > v.geom.TotalSectors() {
		panic("vol: request out of range") // simlint:invariant -- driver validates transfers before queueing
	}
	if len(r.Data) != r.Count*disk.SectorSize {
		panic("vol: request data length mismatch") // simlint:invariant -- driver validates transfers before queueing
	}
	v.issue(&volReq{r: r})
}

// issue starts (or, after a member failure, restarts) the member
// operations for q. RAID-5 writes — and every RAID-5 operation while a
// member is dead — first take the parity-row locks for the rows the
// request touches: the driver keeps one request in flight per spindle
// with no notion of rows, so two concurrent partial writes to the same
// row would both read the same old parity and the second write-back
// would erase the first one's delta. Reads of a healthy array touch no
// parity and proceed unlocked.
func (v *Volume) issue(q *volReq) {
	if v.cfg.Level == RAID5 && !q.locked && (q.r.Write || v.failedCount() > 0) {
		rowSpan := int64(len(v.members)-1) * v.ss
		q.lockLo = q.r.Sector / rowSpan
		q.lockHi = (q.r.Sector + int64(q.r.Count) - 1) / rowSpan
		q.locked = true
		q.nextRow = q.lockLo
		v.acquireRows(q)
		return
	}
	v.dispatch(q)
}

// dispatch splits q into member operations. The pending guard held
// across the dispatch keeps a fast-failing path from finishing the
// request before every member operation has been counted.
func (v *Volume) dispatch(q *volReq) {
	q.err, q.failMem = nil, -1
	q.pending = 1
	if q.r.Write {
		v.issueWrite(q)
	} else {
		v.issueRead(q)
	}
	v.done(q, nil, -1)
}

// acquireRows continues q's parity-row acquisition from q.nextRow up
// to q.lockHi, then dispatches it. Acquisition is strictly ascending
// and a holder never gives a row back while waiting for the next, so
// overlapping requests form a queue, never a cycle. A blocked request
// parks on the contended row's wait list and consumes no simulation
// process — unlockRows resumes it when the holder finishes.
func (v *Volume) acquireRows(q *volReq) {
	for ; q.nextRow <= q.lockHi; q.nextRow++ {
		if v.rowBusy[q.nextRow] {
			v.rowWait[q.nextRow] = append(v.rowWait[q.nextRow], q)
			return
		}
		v.rowBusy[q.nextRow] = true
	}
	v.dispatch(q)
}

// unlockRows releases rows [lo, hi]; each row with a waiter is handed
// over still locked, resuming that request's acquisition immediately.
func (v *Volume) unlockRows(lo, hi int64) {
	for row := lo; row <= hi; row++ {
		if ws := v.rowWait[row]; len(ws) > 0 {
			if v.rowWait[row] = ws[1:]; len(ws) == 1 {
				delete(v.rowWait, row)
			}
			w := ws[0]
			w.nextRow = row + 1
			v.acquireRows(w)
			continue
		}
		delete(v.rowBusy, row)
	}
}

// fail records a request-level error discovered at issue time.
func (v *Volume) fail(q *volReq, err error) {
	if q.err == nil {
		q.err = err
		q.failMem = -1
	}
}

// done retires one member operation (or the issue guard). The first
// error wins; the request completes when the count drains.
func (v *Volume) done(q *volReq, err error, member int) {
	if err != nil && q.err == nil {
		q.err, q.failMem = err, member
	}
	q.pending--
	if q.pending == 0 {
		v.finish(q)
	}
}

// finish completes the logical request — or, when a member fault hit a
// redundant volume that can still lose a spindle, fails that member and
// reissues the whole request against the survivors. Reissuing the
// logical operation (rather than patching the one member transfer) is
// what the latched fault identity in internal/fault is keyed for: the
// failover lands on a different spindle, so a hard fault on sd1 does
// not chase the data to sd2. Each failover removes a member, so the
// retry count is bounded by the member count.
func (v *Volume) finish(q *volReq) {
	if q.err != nil && q.failMem >= 0 && v.redundant() &&
		!v.failed[q.failMem] && v.failedCount() < v.tolerance() {
		v.FailMember(q.failMem)
		v.Stats.Failovers++
		if !q.r.Write {
			// The reissue serves this read around the dead member —
			// mirror failover, or parity reconstruction on the retry.
			v.Stats.DegradedReads++
			v.bus.Emit(telemetry.Event{
				T:      v.s.Now(),
				Kind:   telemetry.EvDegradedRead,
				Sector: q.r.Sector,
				Bytes:  int64(q.r.Count) * disk.SectorSize,
				Dev:    v.members[q.failMem].Name(),
			})
		}
		v.issue(q)
		return
	}
	if q.locked {
		// Release before delivery: a parked request waiting on these rows
		// resumes (and may issue member operations) ahead of the caller's
		// completion callback, exactly as a sleeping process is woken
		// before the interrupt handler returns.
		q.locked = false
		v.unlockRows(q.lockLo, q.lockHi)
	}
	q.r.Err = q.err
	if q.r.Done != nil {
		// Deliver in scheduler context like a drive interrupt, and never
		// synchronously inside Submit.
		v.s.After(0, q.r.Done)
	}
}

// subIO issues one member operation and wires its completion into q.
// hook, if set, runs before the operation is retired — phase chaining
// (parity RMW, reconstruction) uses it to add follow-on operations
// while q is still held open by the completing one.
func (v *Volume) subIO(q *volReq, member int, msec int64, data []byte, write bool, hook func(err error)) {
	q.pending++
	v.Stats.SubRequests++
	req := &disk.Request{
		Sector: msec,
		Count:  len(data) / disk.SectorSize,
		Write:  write,
		Data:   data,
	}
	req.Done = func() {
		if hook != nil {
			hook(req.Err)
		}
		v.done(q, req.Err, member)
	}
	v.members[member].Submit(req)
}

// --- address mapping -----------------------------------------------------

// mapData translates logical sectors [lsec, lsec+n) into member pieces,
// in logical order. boff is the byte offset of lsec within the
// request's Data.
func (v *Volume) mapData(lsec, n, boff int64) []piece {
	switch v.cfg.Level {
	case Concat:
		return v.mapConcat(lsec, n, boff)
	case RAID0:
		return v.mapRAID0(lsec, n, boff)
	case RAID5:
		return v.mapRAID5(lsec, n, boff)
	}
	// RAID-1 member addresses equal logical addresses; mirroring is
	// decided at issue time, not by the mapping.
	panic("vol: mapData on mirror") // simlint:invariant -- issueRead/issueWrite special-case RAID1
}

func (v *Volume) mapConcat(lsec, n, boff int64) []piece {
	var ps []piece
	for n > 0 {
		m := int(lsec / v.msize)
		o := lsec - v.cum[m]
		run := v.msize - o
		if run > n {
			run = n
		}
		ps = append(ps, piece{member: m, msec: o, boff: boff, n: run})
		lsec, n, boff = lsec+run, n-run, boff+run*disk.SectorSize
	}
	return ps
}

func (v *Volume) mapRAID0(lsec, n, boff int64) []piece {
	nm := int64(len(v.members))
	var ps []piece
	for n > 0 {
		t := lsec / v.ss // logical chunk index
		o := lsec % v.ss
		run := v.ss - o
		if run > n {
			run = n
		}
		ps = append(ps, piece{
			member: int(t % nm),
			msec:   (t/nm)*v.ss + o,
			boff:   boff,
			n:      run,
		})
		lsec, n, boff = lsec+run, n-run, boff+run*disk.SectorSize
	}
	return ps
}

// parityMember is the member holding row's parity chunk. The rotation
// is left-asymmetric: row 0 parks parity on the last member and each
// successive row moves it one member to the left, so large sequential
// transfers spread parity I/O across all spindles.
func (v *Volume) parityMember(row int64) int {
	nm := len(v.members)
	return nm - 1 - int(row%int64(nm))
}

// dataMember is the member holding data chunk d (0-based within the
// row) of row, skipping over the parity member.
func (v *Volume) dataMember(row int64, d int) int {
	if p := v.parityMember(row); d >= p {
		return d + 1
	}
	return d
}

func (v *Volume) mapRAID5(lsec, n, boff int64) []piece {
	dpr := int64(len(v.members) - 1) // data chunks per row
	var ps []piece
	for n > 0 {
		t := lsec / v.ss
		o := lsec % v.ss
		run := v.ss - o
		if run > n {
			run = n
		}
		row := t / dpr
		ps = append(ps, piece{
			member: v.dataMember(row, int(t%dpr)),
			msec:   row*v.ss + o,
			boff:   boff,
			n:      run,
		})
		lsec, n, boff = lsec+run, n-run, boff+run*disk.SectorSize
	}
	return ps
}

// buildRuns folds pieces into member-contiguous runs, preserving the
// order in which members first appear — the deterministic issue order
// the stripe-straddling golden test asserts.
func (v *Volume) buildRuns(pieces []piece) []memRun {
	var runs []memRun
	last := make([]int, len(v.members))
	for i := range last {
		last[i] = -1
	}
	for _, p := range pieces {
		if i := last[p.member]; i >= 0 && runs[i].msec+runs[i].n == p.msec {
			runs[i].n += p.n
			runs[i].pieces = append(runs[i].pieces, p)
			continue
		}
		runs = append(runs, memRun{member: p.member, msec: p.msec, n: p.n, pieces: []piece{p}})
		last[p.member] = len(runs) - 1
	}
	return runs
}

// submitRuns issues one member request per run. Single-piece runs use
// the request's own buffer slice; multi-piece runs gather (writes)
// or scatter (reads) through a bounce buffer.
func (v *Volume) submitRuns(q *volReq, runs []memRun, write bool) {
	data := q.r.Data
	for _, run := range runs {
		if len(run.pieces) == 1 {
			p := run.pieces[0]
			v.subIO(q, run.member, run.msec, data[p.boff:p.boff+p.n*disk.SectorSize], write, nil)
			continue
		}
		buf := make([]byte, run.n*disk.SectorSize)
		if write {
			off := int64(0)
			for _, p := range run.pieces {
				copy(buf[off:], data[p.boff:p.boff+p.n*disk.SectorSize])
				off += p.n * disk.SectorSize
			}
			v.subIO(q, run.member, run.msec, buf, true, nil)
			continue
		}
		pieces := run.pieces
		v.subIO(q, run.member, run.msec, buf, false, func(err error) {
			if err != nil {
				return
			}
			off := int64(0)
			for _, p := range pieces {
				copy(data[p.boff:p.boff+p.n*disk.SectorSize], buf[off:])
				off += p.n * disk.SectorSize
			}
		})
	}
}

// --- reads ---------------------------------------------------------------

func (v *Volume) issueRead(q *volReq) {
	r := q.r
	switch v.cfg.Level {
	case Concat, RAID0:
		v.submitRuns(q, v.buildRuns(v.mapData(r.Sector, int64(r.Count), 0)), false)
	case RAID1:
		m := v.pickMirror()
		if m < 0 {
			v.fail(q, disk.ErrMedia)
			return
		}
		v.subIO(q, m, r.Sector, r.Data, false, nil)
	case RAID5:
		for _, run := range v.buildRuns(v.mapData(r.Sector, int64(r.Count), 0)) {
			if v.failed[run.member] {
				v.reconstructRead(q, run)
			} else {
				v.submitRuns(q, []memRun{run}, false)
			}
		}
	}
}

// pickMirror rotates reads across the healthy mirror members so the
// spindles share the load; -1 when every member is dead.
func (v *Volume) pickMirror() int {
	nm := len(v.members)
	for i := 0; i < nm; i++ {
		m := (v.rr + i) % nm
		if !v.failed[m] {
			v.rr = (m + 1) % nm
			return m
		}
	}
	return -1
}

// reconstructRead serves a run addressed to a failed RAID-5 member by
// reading the same member-local range from every surviving spindle and
// XOR-folding them into the destination — the missing chunk is the
// parity equation solved for the dead member.
func (v *Volume) reconstructRead(q *volReq, run memRun) {
	v.Stats.DegradedReads++
	v.bus.Emit(telemetry.Event{
		T:      v.s.Now(),
		Kind:   telemetry.EvDegradedRead,
		Sector: run.msec,
		Bytes:  run.n * disk.SectorSize,
		Dev:    v.members[run.member].Name(),
	})
	rb := make([]byte, run.n*disk.SectorSize)
	rem := 0
	for m := range v.members {
		if m == run.member {
			continue
		}
		if v.failed[m] {
			// Second dead spindle: the row is unrecoverable.
			v.fail(q, disk.ErrMedia)
			return
		}
		rem++
	}
	pieces := run.pieces
	data := q.r.Data
	for m := range v.members {
		if m == run.member {
			continue
		}
		mb := make([]byte, run.n*disk.SectorSize)
		v.subIO(q, m, run.msec, mb, false, func(err error) {
			if err == nil {
				xorInto(rb, mb)
			}
			rem--
			if rem == 0 && q.err == nil {
				off := int64(0)
				for _, p := range pieces {
					copy(data[p.boff:p.boff+p.n*disk.SectorSize], rb[off:])
					off += p.n * disk.SectorSize
				}
			}
		})
	}
}

// --- writes --------------------------------------------------------------

func (v *Volume) issueWrite(q *volReq) {
	r := q.r
	switch v.cfg.Level {
	case Concat, RAID0:
		v.submitRuns(q, v.buildRuns(v.mapData(r.Sector, int64(r.Count), 0)), true)
	case RAID1:
		issued := 0
		for m := range v.members {
			if v.failed[m] {
				continue
			}
			// Members share the caller's buffer: writes only read it.
			v.subIO(q, m, r.Sector, r.Data, true, nil)
			issued++
		}
		if issued == 0 {
			v.fail(q, disk.ErrMedia)
		}
	case RAID5:
		dpr := int64(len(v.members) - 1)
		rowSpan := dpr * v.ss
		lsec, n := r.Sector, int64(r.Count)
		for row := lsec / rowSpan; row <= (lsec+n-1)/rowSpan; row++ {
			lo, hi := row*rowSpan, (row+1)*rowSpan
			if lo < lsec {
				lo = lsec
			}
			if hi > lsec+n {
				hi = lsec + n
			}
			v.writeRow(q, row, lo, hi-lo)
		}
	}
}

// writeRow issues the member operations for the part of one RAID-5
// stripe row covered by [lo, lo+cnt). Three disciplines:
//
//   - full row, all members healthy: compute parity from the request
//     data and write everything in one phase (no reads — the
//     full-stripe fast path).
//   - partial row, all members healthy: read-modify-write. Phase one
//     reads the old data under each written piece and the old parity
//     under their union; phase two XOR-folds old-data ⊕ new-data into
//     the parity and writes data plus parity.
//   - a member is dead: writes to survivors only. A dead parity member
//     costs nothing extra; a dead data member upgrades a partial write
//     to a whole-row read so the missing old chunk can be
//     reconstructed before the new parity is computed.
func (v *Volume) writeRow(q *volReq, row, lo, cnt int64) {
	dpr := int64(len(v.members) - 1)
	rowSpan := dpr * v.ss
	pm := v.parityMember(row)
	pieces := v.mapRAID5(lo, cnt, (lo-q.r.Sector)*disk.SectorSize)
	full := cnt == rowSpan
	cb := v.ss * disk.SectorSize // chunk bytes

	fi := -1 // failed member, if any (tolerance is 1)
	for m, f := range v.failed {
		if f {
			fi = m
			break
		}
	}

	switch {
	case fi == pm:
		// Parity spindle is dead: plain data writes, no redundancy to
		// maintain.
		v.Stats.DegradedWrites++
		for _, p := range pieces {
			v.subIO(q, p.member, p.msec, q.r.Data[p.boff:p.boff+p.n*disk.SectorSize], true, nil)
		}

	case full:
		// Whole row present in the request: parity is the XOR of the
		// new data, no reads needed even when a data member is dead.
		parity := make([]byte, cb)
		base := (lo - q.r.Sector) * disk.SectorSize
		for d := int64(0); d < dpr; d++ {
			xorInto(parity, q.r.Data[base+d*cb:base+(d+1)*cb])
		}
		if fi >= 0 {
			v.Stats.DegradedWrites++
		} else {
			v.Stats.FullStripeWrites++
		}
		for _, p := range pieces {
			if p.member == fi {
				continue // dead data member: its content lives in the parity
			}
			v.subIO(q, p.member, p.msec, q.r.Data[p.boff:p.boff+p.n*disk.SectorSize], true, nil)
		}
		v.subIO(q, pm, row*v.ss, parity, true, nil)

	case fi < 0:
		v.rmwRow(q, row, pieces)

	default:
		v.degradedRMWRow(q, row, pieces, fi)
	}
}

// rowUnion returns the within-chunk sector range [uo, uo+un) covered by
// any piece of the row.
func (v *Volume) rowUnion(row int64, pieces []piece) (uo, un int64) {
	lo, hi := v.ss, int64(0)
	for _, p := range pieces {
		o := p.msec - row*v.ss
		if o < lo {
			lo = o
		}
		if o+p.n > hi {
			hi = o + p.n
		}
	}
	return lo, hi - lo
}

// rmwRow is the healthy partial-row write: read old data and old
// parity, fold the deltas, write new data and new parity.
func (v *Volume) rmwRow(q *volReq, row int64, pieces []piece) {
	v.Stats.ParityRMWRows++
	v.bus.Emit(telemetry.Event{
		T:      v.s.Now(),
		Kind:   telemetry.EvParityRMW,
		Sector: row * int64(len(v.members)-1) * v.ss,
		Blocks: int64(len(pieces)),
	})
	pm := v.parityMember(row)
	uo, un := v.rowUnion(row, pieces)
	oldD := make([][]byte, len(pieces))
	oldP := make([]byte, un*disk.SectorSize)
	rem := len(pieces) + 1
	data := q.r.Data

	phase2 := func(err error) {
		// Runs inside the final phase-one completion, which still holds
		// one pending slot on q, so the writes issued here cannot race
		// the request's retirement.
		if rem--; rem > 0 || err != nil || q.err != nil {
			return
		}
		newP := oldP
		for i, p := range pieces {
			nd := data[p.boff : p.boff+p.n*disk.SectorSize]
			po := (p.msec - row*v.ss - uo) * disk.SectorSize
			for j := range nd {
				newP[po+int64(j)] ^= oldD[i][j] ^ nd[j]
			}
		}
		for _, p := range pieces {
			v.subIO(q, p.member, p.msec, data[p.boff:p.boff+p.n*disk.SectorSize], true, nil)
		}
		v.subIO(q, pm, row*v.ss+uo, newP, true, nil)
	}

	for i, p := range pieces {
		oldD[i] = make([]byte, p.n*disk.SectorSize)
		v.subIO(q, p.member, p.msec, oldD[i], false, phase2)
	}
	v.subIO(q, pm, row*v.ss+uo, oldP, false, phase2)
}

// degradedRMWRow writes a partial row while data member fi is dead:
// read the entire surviving row (data and parity), solve for the dead
// chunk, overlay the new data, and write survivors plus a freshly
// computed whole parity chunk.
func (v *Volume) degradedRMWRow(q *volReq, row int64, pieces []piece, fi int) {
	v.Stats.DegradedWrites++
	v.Stats.ParityRMWRows++
	v.bus.Emit(telemetry.Event{
		T:      v.s.Now(),
		Kind:   telemetry.EvParityRMW,
		Sector: row * int64(len(v.members)-1) * v.ss,
		Blocks: int64(len(pieces)),
		Dev:    v.members[fi].Name(),
	})
	nm := len(v.members)
	pm := v.parityMember(row)
	cb := v.ss * disk.SectorSize
	old := make([][]byte, nm) // whole old chunk per member, nil for fi
	rem := nm - 1
	data := q.r.Data

	phase2 := func(err error) {
		if rem--; rem > 0 || err != nil || q.err != nil {
			return
		}
		// Reconstruct the dead member's old chunk from the survivors.
		dead := make([]byte, cb)
		for m, b := range old {
			if m != fi {
				xorInto(dead, b)
			}
		}
		old[fi] = dead
		// Overlay the new data (the dead member's piece lands only in
		// this in-memory image — and thereby in the parity).
		for _, p := range pieces {
			copy(old[p.member][(p.msec-row*v.ss)*disk.SectorSize:], data[p.boff:p.boff+p.n*disk.SectorSize])
		}
		parity := make([]byte, cb)
		for m, b := range old {
			if m != pm {
				xorInto(parity, b)
			}
		}
		for _, p := range pieces {
			if p.member == fi {
				continue
			}
			v.subIO(q, p.member, p.msec, data[p.boff:p.boff+p.n*disk.SectorSize], true, nil)
		}
		v.subIO(q, pm, row*v.ss, parity, true, nil)
	}

	for m := 0; m < nm; m++ {
		if m == fi {
			continue
		}
		old[m] = make([]byte, cb)
		v.subIO(q, m, row*v.ss, old[m], false, phase2)
	}
}

// xorInto folds src into dst byte-wise; len(src) must not exceed
// len(dst).
func xorInto(dst, src []byte) {
	for i, b := range src {
		dst[i] ^= b
	}
}
