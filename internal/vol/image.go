package vol

import (
	"fmt"

	"ufsclust/internal/disk"
)

// Offline image access: the zero-time path mkfs, fsck, repair, and the
// crash-recovery harness use. It honors the same addressing, redundancy
// and degraded-mode semantics as the timed path — an offline metadata
// write keeps RAID-5 parity and mirrors coherent, and an offline read
// of a dead member's chunk reconstructs it — so a file system checked
// offline and a file system read through the driver see one device.

// ReadImage copies logical sectors without consuming simulated time.
func (v *Volume) ReadImage(sector int64, buf []byte) {
	if len(buf)%disk.SectorSize != 0 {
		panic("vol: image access not sector aligned") // simlint:invariant -- offline callers use block-multiple buffers
	}
	n := int64(len(buf) / disk.SectorSize)
	switch v.cfg.Level {
	case RAID1:
		m := v.firstHealthy()
		if m < 0 {
			panic("vol: image read with no live members") // simlint:invariant -- harnesses keep at least one mirror side
		}
		v.members[m].ReadImage(sector, buf)
	default:
		for _, p := range v.mapData(sector, n, 0) {
			dst := buf[p.boff : p.boff+p.n*disk.SectorSize]
			if v.failed[p.member] {
				v.reconstructImage(p.member, p.msec, dst)
			} else {
				v.members[p.member].ReadImage(p.msec, dst)
			}
		}
	}
}

// WriteImage stores logical sectors without consuming simulated time,
// maintaining mirrors and parity exactly as the timed path would.
func (v *Volume) WriteImage(sector int64, data []byte) {
	if len(data)%disk.SectorSize != 0 {
		panic("vol: image access not sector aligned") // simlint:invariant -- offline callers use block-multiple buffers
	}
	n := int64(len(data) / disk.SectorSize)
	switch v.cfg.Level {
	case RAID1:
		for m := range v.members {
			if !v.failed[m] {
				v.members[m].WriteImage(sector, data)
			}
		}
	case RAID5:
		dpr := int64(len(v.members) - 1)
		rowSpan := dpr * v.ss
		for row := sector / rowSpan; row <= (sector+n-1)/rowSpan; row++ {
			lo, hi := row*rowSpan, (row+1)*rowSpan
			if lo < sector {
				lo = sector
			}
			if hi > sector+n {
				hi = sector + n
			}
			v.writeImageRow(row, lo, hi-lo, sector, data)
		}
	default:
		for _, p := range v.mapData(sector, n, 0) {
			v.members[p.member].WriteImage(p.msec, data[p.boff:p.boff+p.n*disk.SectorSize])
		}
	}
}

// firstHealthy returns the lowest live member index, or -1.
func (v *Volume) firstHealthy() int {
	for m, f := range v.failed {
		if !f {
			return m
		}
	}
	return -1
}

// reconstructImage solves the parity equation for a dead member's range
// [msec, msec+len(dst)/SectorSize) by XOR-folding every survivor.
func (v *Volume) reconstructImage(dead int, msec int64, dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
	tmp := make([]byte, len(dst))
	for m := range v.members {
		if m == dead {
			continue
		}
		if v.failed[m] {
			panic("vol: image read with two dead members") // simlint:invariant -- construction caps failures at the level's tolerance
		}
		v.members[m].ReadImage(msec, tmp)
		xorInto(dst, tmp)
	}
}

// writeImageRow is the offline mirror of writeRow: synchronous, same
// three disciplines (full stripe, healthy RMW, degraded).
func (v *Volume) writeImageRow(row, lo, cnt, sector int64, data []byte) {
	dpr := int64(len(v.members) - 1)
	rowSpan := dpr * v.ss
	pm := v.parityMember(row)
	pieces := v.mapRAID5(lo, cnt, (lo-sector)*disk.SectorSize)
	cb := v.ss * disk.SectorSize
	fi := -1
	for m, f := range v.failed {
		if f {
			fi = m
			break
		}
	}

	switch {
	case fi == pm:
		for _, p := range pieces {
			v.members[p.member].WriteImage(p.msec, data[p.boff:p.boff+p.n*disk.SectorSize])
		}

	case cnt == rowSpan:
		parity := make([]byte, cb)
		base := (lo - sector) * disk.SectorSize
		for d := int64(0); d < dpr; d++ {
			xorInto(parity, data[base+d*cb:base+(d+1)*cb])
		}
		for _, p := range pieces {
			if p.member == fi {
				continue
			}
			v.members[p.member].WriteImage(p.msec, data[p.boff:p.boff+p.n*disk.SectorSize])
		}
		v.members[pm].WriteImage(row*v.ss, parity)

	case fi < 0:
		uo, un := v.rowUnion(row, pieces)
		newP := make([]byte, un*disk.SectorSize)
		v.members[pm].ReadImage(row*v.ss+uo, newP)
		old := make([]byte, 0, un*disk.SectorSize)
		for _, p := range pieces {
			old = old[:p.n*disk.SectorSize]
			v.members[p.member].ReadImage(p.msec, old)
			nd := data[p.boff : p.boff+p.n*disk.SectorSize]
			po := (p.msec - row*v.ss - uo) * disk.SectorSize
			for j := range nd {
				newP[po+int64(j)] ^= old[j] ^ nd[j]
			}
			v.members[p.member].WriteImage(p.msec, nd)
		}
		v.members[pm].WriteImage(row*v.ss+uo, newP)

	default:
		// Dead data member: reconstruct the whole old row, overlay, and
		// recompute the parity chunk outright.
		chunks := make([][]byte, len(v.members))
		for m := range v.members {
			chunks[m] = make([]byte, cb)
			if m != fi {
				v.members[m].ReadImage(row*v.ss, chunks[m])
			}
		}
		for m := range v.members {
			if m != fi {
				xorInto(chunks[fi], chunks[m])
			}
		}
		for _, p := range pieces {
			copy(chunks[p.member][(p.msec-row*v.ss)*disk.SectorSize:], data[p.boff:p.boff+p.n*disk.SectorSize])
		}
		parity := make([]byte, cb)
		for m := range v.members {
			if m != pm {
				xorInto(parity, chunks[m])
			}
		}
		for _, p := range pieces {
			if p.member == fi {
				continue
			}
			v.members[p.member].WriteImage(p.msec, data[p.boff:p.boff+p.n*disk.SectorSize])
		}
		v.members[pm].WriteImage(row*v.ss, parity)
	}
}

// --- snapshot / restore --------------------------------------------------

// Snapshot deep-copies every member's platter contents, in member
// order — the crash-state capture for volume machines.
func (v *Volume) Snapshot() []*disk.Image {
	imgs := make([]*disk.Image, len(v.members))
	for m, d := range v.members {
		imgs[m] = d.Snapshot()
	}
	return imgs
}

// Restore replaces every member's platter contents from a snapshot
// taken on an identically configured volume.
func (v *Volume) Restore(imgs []*disk.Image) error {
	if len(imgs) != len(v.members) {
		return fmt.Errorf("vol: restore of %d member images onto %d members", len(imgs), len(v.members))
	}
	for m, d := range v.members {
		d.Restore(imgs[m])
	}
	return nil
}

// --- rebuild and verification --------------------------------------------

// rebuildSpan is how many sectors Rebuild and CheckParity process per
// step: one image chunk's worth keeps the offline copies cheap.
const rebuildSpan = 128

// Rebuild reconstructs member i's entire contents from the survivors —
// the "replace the drive and resilver" operation — and returns it to
// service. RAID-1 copies a live mirror side; RAID-5 solves the parity
// equation per span. Every other member must be healthy.
func (v *Volume) Rebuild(i int) error {
	if i < 0 || i >= len(v.members) {
		return fmt.Errorf("vol: rebuild member %d out of range", i)
	}
	if !v.redundant() {
		return fmt.Errorf("vol: %s has no redundancy to rebuild from", v.cfg.Level)
	}
	for m, f := range v.failed {
		if f && m != i {
			return fmt.Errorf("vol: rebuild of sd%d with sd%d also dead", i, m)
		}
	}
	switch v.cfg.Level {
	case RAID1:
		src := -1
		for m := range v.members {
			if m != i && !v.failed[m] {
				src = m
				break
			}
		}
		if src < 0 {
			return fmt.Errorf("vol: no live mirror side to rebuild sd%d from", i)
		}
		buf := make([]byte, rebuildSpan*disk.SectorSize)
		for s := int64(0); s < v.msize; s += rebuildSpan {
			v.members[src].ReadImage(s, buf)
			v.members[i].WriteImage(s, buf)
		}
	case RAID5:
		buf := make([]byte, rebuildSpan*disk.SectorSize)
		tmp := make([]byte, rebuildSpan*disk.SectorSize)
		for s := int64(0); s < v.msize; s += rebuildSpan {
			for j := range buf {
				buf[j] = 0
			}
			for m := range v.members {
				if m == i {
					continue
				}
				v.members[m].ReadImage(s, tmp)
				xorInto(buf, tmp)
			}
			v.members[i].WriteImage(s, buf)
		}
	}
	v.failed[i] = false
	return nil
}

// CheckParity verifies the redundancy invariant across the whole
// array: every RAID-5 row's parity chunk equals the XOR of its data
// chunks; every RAID-1 member is byte-identical. It returns the number
// of violating spans and a description of the first. The volume must
// be fully healthy — a degraded array has nothing to check against.
func (v *Volume) CheckParity() (int, error) {
	if !v.redundant() {
		return 0, fmt.Errorf("vol: %s has no redundancy to check", v.cfg.Level)
	}
	if n := v.failedCount(); n > 0 {
		return 0, fmt.Errorf("vol: parity check on a degraded volume (%d dead members)", n)
	}
	return v.checkSpan(0, v.msize)
}

// CheckParityRange verifies only the redundancy covering logical
// sectors [lsec, lsec+n) — the per-write invariant probe the property
// battery runs after every acknowledged write.
func (v *Volume) CheckParityRange(lsec, n int64) (int, error) {
	if !v.redundant() {
		return 0, fmt.Errorf("vol: %s has no redundancy to check", v.cfg.Level)
	}
	if c := v.failedCount(); c > 0 {
		return 0, fmt.Errorf("vol: parity check on a degraded volume (%d dead members)", c)
	}
	var mlo, mhi int64
	switch v.cfg.Level {
	case RAID1:
		mlo, mhi = lsec, lsec+n
	case RAID5:
		dpr := int64(len(v.members) - 1)
		mlo = (lsec / (dpr * v.ss)) * v.ss
		mhi = ((lsec+n-1)/(dpr*v.ss) + 1) * v.ss
	}
	return v.checkSpan(mlo, mhi)
}

// checkSpan verifies member-local sectors [mlo, mhi). For RAID-1 the
// span is compared across members; for RAID-5 it is XOR-folded across
// all members, which must cancel to zero (data ⊕ parity = 0 per row,
// regardless of where the rotation put the parity chunk).
func (v *Volume) checkSpan(mlo, mhi int64) (int, error) {
	bad := 0
	var firstErr error
	note := func(s int64, form string, args ...any) {
		bad++
		if firstErr == nil {
			firstErr = fmt.Errorf("vol: %s span at member sector %d: %s", v.cfg.Level, s, fmt.Sprintf(form, args...))
		}
	}
	ref := make([]byte, rebuildSpan*disk.SectorSize)
	tmp := make([]byte, rebuildSpan*disk.SectorSize)
	for s := mlo; s < mhi; s += rebuildSpan {
		span := mhi - s
		if span > rebuildSpan {
			span = rebuildSpan
		}
		rb := ref[:span*disk.SectorSize]
		tb := tmp[:span*disk.SectorSize]
		switch v.cfg.Level {
		case RAID1:
			v.members[0].ReadImage(s, rb)
			for m := 1; m < len(v.members); m++ {
				v.members[m].ReadImage(s, tb)
				for j := range tb {
					if tb[j] != rb[j] {
						note(s, "sd%d diverges from sd0 at byte %d", m, j)
						break
					}
				}
			}
		case RAID5:
			for j := range rb {
				rb[j] = 0
			}
			for m := range v.members {
				v.members[m].ReadImage(s, tb)
				xorInto(rb, tb)
			}
			for j := range rb {
				if rb[j] != 0 {
					note(s, "parity equation violated at byte %d", j)
					break
				}
			}
		}
	}
	return bad, firstErr
}
