// Package vol composes N simulated drives into one logical block
// device: a concatenation, a stripe set (RAID-0), a mirror (RAID-1), or
// a rotating-parity array (RAID-5). A Volume implements the same
// disk.Device contract as a bare drive, so the driver, the file
// systems, and the offline tools (mkfs, fsck, repair) mount on it
// unchanged; the driver keeps one request in flight per member, so
// member seeks overlap — the ROADMAP's "more spindles = more scale".
//
// Addressing: the volume exposes a synthetic uniform geometry of the
// composed data capacity. RAID-0 and RAID-5 interleave fixed stripe
// units across the members; RAID-5 additionally rotates one parity
// chunk per stripe row (left-asymmetric), writes partial rows by
// read-modify-write and full rows by direct parity computation, and
// serves reads of a failed member by XOR reconstruction. RAID-1
// duplicates writes to every member and rotates reads across the
// healthy ones. A one-member concat is the identity composition:
// requests pass through untouched and the machine replays the
// pre-volume golden traces byte for byte.
//
// Failure model: a member transfer error (injected by a fault plan)
// fails that member permanently — the drive already models its internal
// retries — and a redundant volume fails over: the whole logical
// request is reissued against the survivors. Non-redundant levels
// propagate the error to the driver, whose retry/give-up machinery is
// unchanged. Rebuild reconstructs a replaced member offline;
// CheckParity verifies the redundancy invariant across the whole array.
package vol

import (
	"fmt"

	"ufsclust/internal/disk"
	"ufsclust/internal/fault"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// Level selects the composition discipline.
type Level uint8

// Composition levels.
const (
	// Concat appends the members' sector spaces end to end.
	Concat Level = iota
	// RAID0 interleaves stripe units across all members.
	RAID0
	// RAID1 mirrors every write to all members; reads rotate across
	// the healthy ones.
	RAID1
	// RAID5 interleaves stripe units with one rotating parity chunk
	// per row; survives any single member failure.
	RAID5
)

func (l Level) String() string {
	switch l {
	case Concat:
		return "concat"
	case RAID0:
		return "raid0"
	case RAID1:
		return "raid1"
	case RAID5:
		return "raid5"
	}
	return "unknown"
}

// ParseLevel maps a command-line level name to a Level.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "concat":
		return Concat, true
	case "raid0", "stripe":
		return RAID0, true
	case "raid1", "mirror":
		return RAID1, true
	case "raid5":
		return RAID5, true
	}
	return 0, false
}

// DefaultStripeKB is the stripe unit used when Config.StripeKB is zero.
const DefaultStripeKB = 32

// Config describes a volume. All members share one set of drive
// parameters: mixed-geometry arrays are not modeled (the striped levels
// would be limited by the smallest member anyway).
type Config struct {
	Level   Level
	Members int // member drive count

	// StripeKB is the stripe unit per member in KB (RAID-0/RAID-5);
	// 0 means DefaultStripeKB. Must divide the member capacity.
	StripeKB int

	// Member is the drive-parameter template for every member; nil
	// means disk.DefaultParams().
	Member *disk.Params

	// Degraded lists members that are failed from boot — the
	// "one spindle is already dead" configurations the degraded-mode
	// sweeps run. Redundant levels only.
	Degraded []int
}

// Stats counts volume-level activity. Member drive activity lives in
// each member's disk.Stats and is aggregated by AttachTelemetry.
type Stats struct {
	SubRequests      int64 // member requests issued (incl. parity I/O)
	FullStripeWrites int64 // RAID-5 rows written without a parity read
	ParityRMWRows    int64 // RAID-5 rows written read-modify-write
	DegradedReads    int64 // pieces served by reconstruction
	DegradedWrites   int64 // rows/requests written around a dead member
	MemberFails      int64 // members failed (fault or administrative)
	Failovers        int64 // whole requests reissued after a member fail
}

// Volume is a composed block device. It has no service process of its
// own: Submit translates each logical request into member requests
// (gathering, scattering, and computing parity in completion context)
// and the member drives' own service processes provide the overlap.
type Volume struct {
	name    string
	cfg     Config
	s       *sim.Sim
	members []*disk.Disk
	failed  []bool
	ss      int64 // stripe unit in sectors (striped levels)
	msize   int64 // per-member capacity in sectors
	cum     []int64 // concat: cumulative member start sectors, len N+1
	geom    *disk.Geometry
	rr      int // RAID-1 read rotor over healthy members

	// RAID-5 parity-row locks: rowBusy marks rows with an exclusive
	// holder, rowWait queues parked acquisitions (see acquireRows).
	rowBusy map[int64]bool
	rowWait map[int64][]*volReq

	Stats Stats

	// Telemetry; nil (and nil-safe) until AttachTelemetry.
	bus *telemetry.Bus
}

// New validates cfg, creates the member drives (named sd0..sdN-1, with
// their service processes on s), and returns the composed device.
func New(s *sim.Sim, name string, cfg Config) (*Volume, error) {
	if cfg.Members < 1 {
		return nil, fmt.Errorf("vol: %s: need at least one member", cfg.Level)
	}
	switch cfg.Level {
	case Concat:
	case RAID0, RAID1:
		if cfg.Members < 2 {
			return nil, fmt.Errorf("vol: %s: need >= 2 members", cfg.Level)
		}
	case RAID5:
		if cfg.Members < 3 {
			return nil, fmt.Errorf("vol: %s: need >= 3 members", cfg.Level)
		}
	default:
		return nil, fmt.Errorf("vol: unknown level %d", cfg.Level)
	}
	mp := disk.DefaultParams()
	if cfg.Member != nil {
		mp = *cfg.Member
	}
	if mp.Geom == nil {
		mp.Geom = disk.DefaultGeometry()
	}
	v := &Volume{
		name:    name,
		cfg:     cfg,
		s:       s,
		failed:  make([]bool, cfg.Members),
		msize:   mp.Geom.TotalSectors(),
		cum:     make([]int64, 0, cfg.Members+1),
		rowBusy: make(map[int64]bool),
		rowWait: make(map[int64][]*volReq),
	}
	striped := cfg.Level == RAID0 || cfg.Level == RAID5
	if striped {
		if cfg.StripeKB == 0 {
			cfg.StripeKB = DefaultStripeKB
			v.cfg.StripeKB = DefaultStripeKB
		}
		v.ss = int64(cfg.StripeKB) * 1024 / disk.SectorSize
		if int64(cfg.StripeKB)*1024%disk.SectorSize != 0 || v.ss <= 0 {
			return nil, fmt.Errorf("vol: stripe %d KB is not a positive sector multiple", cfg.StripeKB)
		}
		if v.msize%v.ss != 0 {
			return nil, fmt.Errorf("vol: member capacity %d sectors not a multiple of the %d-sector stripe unit", v.msize, v.ss)
		}
	}
	if cfg.Members > 1 && len(mp.Geom.Zones) != 1 {
		// The synthetic geometry is a single uniform zone; a zoned
		// member would make the composed address space lie about where
		// zone boundaries fall. A one-member concat passes the member
		// geometry through untouched, zones and all.
		return nil, fmt.Errorf("vol: composed volumes need uniform (single-zone) members")
	}
	for _, i := range cfg.Degraded {
		if i < 0 || i >= cfg.Members {
			return nil, fmt.Errorf("vol: degraded member %d out of range", i)
		}
		if cfg.Level != RAID1 && cfg.Level != RAID5 {
			return nil, fmt.Errorf("vol: %s cannot run degraded", cfg.Level)
		}
		v.failed[i] = true
	}
	if n := v.failedCount(); n > v.tolerance() {
		return nil, fmt.Errorf("vol: %s tolerates %d failed members, %d configured", cfg.Level, v.tolerance(), n)
	}

	for i := 0; i < cfg.Members; i++ {
		d := disk.New(s, fmt.Sprintf("sd%d", i), mp)
		if cfg.Members > 1 {
			d.SetEventLabel(d.Name())
		}
		v.members = append(v.members, d)
		v.cum = append(v.cum, int64(i)*v.msize)
	}
	v.cum = append(v.cum, int64(cfg.Members)*v.msize)

	if v.passthrough() {
		v.geom = mp.Geom
		return v, nil
	}
	g := mp.Geom
	dataCyl := g.Cylinders() * v.dataMembers()
	if cfg.Level == RAID1 {
		dataCyl = g.Cylinders()
	}
	geom, err := disk.NewGeometry(g.Heads, g.RPM, disk.Zone{Cylinders: dataCyl, SPT: g.Zones[0].SPT})
	if err != nil {
		return nil, fmt.Errorf("vol: synthetic geometry: %w", err)
	}
	v.geom = geom
	return v, nil
}

// passthrough reports the identity composition: a one-member concat,
// which forwards requests untouched.
func (v *Volume) passthrough() bool {
	return v.cfg.Level == Concat && len(v.members) == 1
}

// dataMembers is how many members' worth of capacity holds data.
func (v *Volume) dataMembers() int {
	switch v.cfg.Level {
	case RAID5:
		return v.cfg.Members - 1
	case RAID1:
		return 1
	}
	return v.cfg.Members
}

// tolerance is how many member failures the level survives.
func (v *Volume) tolerance() int {
	switch v.cfg.Level {
	case RAID1:
		return v.cfg.Members - 1
	case RAID5:
		return 1
	}
	return 0
}

func (v *Volume) failedCount() int {
	n := 0
	for _, f := range v.failed {
		if f {
			n++
		}
	}
	return n
}

// Name returns the volume's name.
func (v *Volume) Name() string { return v.name }

// Level returns the composition level.
func (v *Volume) Level() Level { return v.cfg.Level }

// Geom returns the synthetic data-capacity geometry (the member
// geometry itself for a one-member concat).
func (v *Volume) Geom() *disk.Geometry { return v.geom }

// Channels reports one service channel per member: the driver keeps
// that many requests in flight so the spindles seek concurrently.
func (v *Volume) Channels() int { return len(v.members) }

// Members returns the member drives, in member order. Callers must not
// submit to members directly while the volume is live.
func (v *Volume) Members() []*disk.Disk { return v.members }

// StripeSectors returns the stripe unit in sectors (0 for concat and
// RAID-1).
func (v *Volume) StripeSectors() int64 { return v.ss }

// Failed returns the indices of failed members, in order.
func (v *Volume) Failed() []int {
	var out []int
	for i, f := range v.failed {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// FailMember marks member i failed — the administrative "pull the
// drive" path; the fault-plan path arrives here too, via the failover
// logic. Failing a member beyond the level's tolerance is allowed (the
// volume is then broken; redundant reads start erroring), matching
// what pulling two drives from a RAID-5 does.
func (v *Volume) FailMember(i int) {
	if i < 0 || i >= len(v.members) {
		panic("vol: member index out of range") // simlint:invariant -- member indices come from the volume's own mapping
	}
	if v.failed[i] {
		return
	}
	v.failed[i] = true
	v.Stats.MemberFails++
	v.bus.Emit(telemetry.Event{
		T:     v.s.Now(),
		Kind:  telemetry.EvMemberFail,
		Depth: int64(i),
		Dev:   v.members[i].Name(),
	})
}

// AttachFaults connects the machine's fault injector to every member:
// member-scoped media rules (fault.Match.Dev) fail individual spindles,
// and a power cut freezes each member's torn transfer.
func (v *Volume) AttachFaults(inj *fault.Injector) {
	for _, d := range v.members {
		d.AttachFaults(inj)
	}
}

// AttachTelemetry registers the volume's counters and connects every
// member to the event bus. The aggregate disk.* names a bare-disk
// machine registers are preserved — summed across members — so
// existing consumers (simstat, the metrics manifest) read a volume
// machine unchanged; per-member activity appears under
// vol.<member>.*, and volume-level composition activity under vol.*.
func (v *Volume) AttachTelemetry(tel *telemetry.Telemetry) {
	v.bus = tel.Bus
	if v.passthrough() {
		// Identity composition: the single member registers the
		// standard disk.* names itself, exactly like a bare machine.
		v.members[0].AttachTelemetry(tel)
	} else {
		r := tel.Reg
		agg := func(get func(st *disk.Stats) int64) func() int64 {
			return func() int64 {
				var sum int64
				for _, d := range v.members {
					sum += get(&d.Stats)
				}
				return sum
			}
		}
		r.Counter("disk.reads", agg(func(st *disk.Stats) int64 { return st.Reads }))
		r.Counter("disk.writes", agg(func(st *disk.Stats) int64 { return st.Writes }))
		r.Counter("disk.sectors_read", agg(func(st *disk.Stats) int64 { return st.SectorsRead }))
		r.Counter("disk.sectors_written", agg(func(st *disk.Stats) int64 { return st.SectorsWritten }))
		r.Counter("disk.seeks", agg(func(st *disk.Stats) int64 { return st.SeekCount }))
		r.Counter("disk.seek_time_ns", agg(func(st *disk.Stats) int64 { return int64(st.SeekTime) }))
		r.Counter("disk.rot_wait_ns", agg(func(st *disk.Stats) int64 { return int64(st.RotWait) }))
		r.Counter("disk.xfer_time_ns", agg(func(st *disk.Stats) int64 { return int64(st.XferTime) }))
		r.Counter("disk.bus_time_ns", agg(func(st *disk.Stats) int64 { return int64(st.BusTime) }))
		r.Counter("disk.buf_hits", agg(func(st *disk.Stats) int64 { return st.BufHits }))
		r.Counter("disk.buf_misses", agg(func(st *disk.Stats) int64 { return st.BufMisses }))
		r.Counter("disk.busy_time_ns", agg(func(st *disk.Stats) int64 { return int64(st.BusyTime) }))
		r.Counter("disk.queue_wait_ns", agg(func(st *disk.Stats) int64 { return int64(st.QueueWait) }))
		r.Counter("disk.media_errors", agg(func(st *disk.Stats) int64 { return st.MediaErrors }))
		r.Gauge("disk.queue_len", func() int64 {
			var sum int64
			for _, d := range v.members {
				sum += int64(d.QueueLen())
			}
			return sum
		})
		seekH := r.Hist(telemetry.NewHistogram("disk.seek_ns", telemetry.UnitNs, telemetry.TimeBounds()))
		rotH := r.Hist(telemetry.NewHistogram("disk.rotate_ns", telemetry.UnitNs, telemetry.TimeBounds()))
		xferH := r.Hist(telemetry.NewHistogram("disk.transfer_ns", telemetry.UnitNs, telemetry.TimeBounds()))
		svcH := r.Hist(telemetry.NewHistogram("disk.service_ns", telemetry.UnitNs, telemetry.TimeBounds()))
		for _, d := range v.members {
			d.AttachMemberTelemetry(tel.Bus, seekH, rotH, xferH, svcH)
			md := d
			prefix := "vol." + d.Name() + "."
			r.Counter(prefix+"reads", func() int64 { return md.Stats.Reads })
			r.Counter(prefix+"writes", func() int64 { return md.Stats.Writes })
			r.Counter(prefix+"sectors_read", func() int64 { return md.Stats.SectorsRead })
			r.Counter(prefix+"sectors_written", func() int64 { return md.Stats.SectorsWritten })
			r.Counter(prefix+"seeks", func() int64 { return md.Stats.SeekCount })
			r.Counter(prefix+"busy_time_ns", func() int64 { return int64(md.Stats.BusyTime) })
			r.Counter(prefix+"queue_wait_ns", func() int64 { return int64(md.Stats.QueueWait) })
			r.Counter(prefix+"media_errors", func() int64 { return md.Stats.MediaErrors })
		}
	}
	r := tel.Reg
	r.Counter("vol.sub_requests", func() int64 { return v.Stats.SubRequests })
	r.Counter("vol.full_stripe_writes", func() int64 { return v.Stats.FullStripeWrites })
	r.Counter("vol.parity_rmw_rows", func() int64 { return v.Stats.ParityRMWRows })
	r.Counter("vol.degraded_reads", func() int64 { return v.Stats.DegradedReads })
	r.Counter("vol.degraded_writes", func() int64 { return v.Stats.DegradedWrites })
	r.Counter("vol.member_fails", func() int64 { return v.Stats.MemberFails })
	r.Counter("vol.failovers", func() int64 { return v.Stats.Failovers })
	r.Gauge("vol.failed_members", func() int64 { return int64(v.failedCount()) })
}
