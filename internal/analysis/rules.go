package analysis

import "strings"

// modulePath is the import-path root the rule scopes below are keyed
// on. The loader discovers the real module path from go.mod; these
// filters are written against this repository's layout.
const modulePath = "ufsclust"

// toolingPkgs are host-side developer tooling: they never run inside
// the simulation, so the determinism rules do not apply to them.
var toolingPkgs = map[string]bool{
	modulePath + "/internal/analysis": true,
	modulePath + "/internal/detsort":  true,
	// runner is the host-side parallel experiment orchestrator: its
	// worker goroutines run whole simulations, they never run inside
	// one, so the determinism and no-goroutine rules do not apply.
	modulePath + "/internal/runner": true,
}

// modelPkgs are the simulation-model packages: all concurrency in them
// must go through sim.Proc and the sim wait/semaphore primitives, never
// raw goroutines or channels. The sim kernel itself is the one place
// host goroutines and channels are allowed — that is the implementation
// of the cooperative scheduler.
var modelPkgs = map[string]bool{
	modulePath + "/internal/core":   true,
	modulePath + "/internal/ufs":    true,
	modulePath + "/internal/vm":     true,
	modulePath + "/internal/disk":   true,
	modulePath + "/internal/driver": true,
	modulePath + "/internal/extfs":  true,
	// telemetry runs inline on the model's hot paths (Emit and Observe
	// are called from disk service and driver strategy), so it is held
	// to the same no-goroutine discipline.
	modulePath + "/internal/telemetry": true,
	// fault injection is a bus subscriber executing inside the model's
	// emission sites; a stray goroutine there would desync replays.
	modulePath + "/internal/fault": true,
	// read-ahead policies run inline at getpage's trigger points; their
	// decisions feed the byte-identical event streams, so they obey the
	// same determinism rules as the engine that consults them.
	modulePath + "/internal/prefetch": true,
	// the volume layer translates requests and chains parity RMW phases
	// in completion context between the driver and the member drives —
	// squarely on the model's hot path.
	modulePath + "/internal/vol": true,
	// vec strategies run inline in Readv/Writev and their picks feed
	// the byte-identical event streams, like the prefetch policies.
	modulePath + "/internal/vec": true,
	// the journal's commit and checkpoint paths run in process context
	// between the file system and the driver; a stray goroutine or map
	// walk there would desync the log layout across replays.
	modulePath + "/internal/wal": true,
}

func isInternal(path string) bool {
	return strings.HasPrefix(path, modulePath+"/internal/")
}

// simScope is the scope of the determinism rules (detrand, maporder):
// everything under internal/ except host-side tooling.
func simScope(path string) bool {
	return isInternal(path) && !toolingPkgs[path]
}

// libScope is the scope of the library-hygiene rules (panicpath): all
// internal packages, tooling included.
func libScope(path string) bool {
	return isInternal(path)
}

// moduleScope covers every package in the module, commands included.
func moduleScope(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// The exported scope surface below is what layered analyzer packages
// (internal/analysis/simflow) key their AppliesTo and package-set
// checks on, so the repository's layout is encoded in one place.

// ModulePath returns the module import-path root the scopes are keyed on.
func ModulePath() string { return modulePath }

// ModuleScope reports whether path is inside the module (commands included).
func ModuleScope(path string) bool { return moduleScope(path) }

// SimScope reports whether the determinism rules are in force for path.
func SimScope(path string) bool { return simScope(path) }

// ToolingPackage reports whether path is host-side developer tooling.
func ToolingPackage(path string) bool { return toolingPkgs[path] }

// ModelPackage reports whether path is one of the simulation-model
// packages (core, ufs, vm, disk, driver, extfs, telemetry, fault,
// prefetch, vol, vec, wal).
func ModelPackage(path string) bool { return modelPkgs[path] }
