// Package analysis is a self-contained static-analysis framework for
// this repository, built only on the standard library (go/parser,
// go/ast, go/types). It exists to machine-check the properties the
// simulation's results depend on: the paper's throughput and CPU
// figures are reproduced as ratios from a deterministic discrete-event
// simulation, so host nondeterminism (wall-clock time, the global
// random source, map iteration order, raw goroutines) must never leak
// into simulated time or report output.
//
// The cmd/simlint CLI loads packages with Loader, runs the Analyzers
// registry, and prints file:line:col: [rule] message diagnostics.
// Individual findings are suppressed with a comment on the offending
// line or the line above:
//
//	// simlint:ignore rule1 rule2   (or bare "simlint:ignore" for all)
//	// simlint:invariant            (panicpath only: a genuine assertion)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// An Analyzer checks one rule over one type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo reports whether the rule is in force for the package
	// with the given import path. RunAnalyzer ignores it (tests run
	// analyzers on fixture packages directly); Run honours it.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer applies a single analyzer to a loaded package,
// unconditionally (AppliesTo is not consulted), and returns the
// surviving diagnostics after suppression comments are honoured.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{Analyzer: a, Pkg: pkg}
	a.Run(pass)
	var out []Diagnostic
	for _, d := range pass.diags {
		if !pkg.suppressed(d) {
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}

// Run loads the packages named by patterns (see Loader.Load) and
// applies every registered analyzer whose AppliesTo accepts the
// package. Diagnostics come back sorted by position.
func Run(l *Loader, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			out = append(out, RunAnalyzer(a, pkg)...)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Analyzers is the registry cmd/simlint runs by default.
var Analyzers = []*Analyzer{
	DetRand,
	MapOrder,
	NoGoroutine,
	PanicPath,
	UnitMix,
}

// FindAnalyzer returns the registered analyzer with the given name.
func FindAnalyzer(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// suppression is one simlint control comment.
type suppression struct {
	line  int
	rules []string // nil means all rules
}

// suppressed reports whether d is covered by a simlint:ignore (or
// simlint:invariant, for panicpath) comment on its line or the line
// immediately above.
func (p *Package) suppressed(d Diagnostic) bool {
	for _, s := range p.suppressions[d.Pos.Filename] {
		if s.line != d.Pos.Line && s.line != d.Pos.Line-1 {
			continue
		}
		if s.rules == nil {
			return true
		}
		for _, r := range s.rules {
			if r == d.Rule {
				return true
			}
		}
	}
	return false
}

// collectSuppressions scans a file's comments for simlint directives.
func collectSuppressions(fset *token.FileSet, f *ast.File, into map[string][]suppression) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			text = strings.TrimSpace(text)
			pos := fset.Position(c.Pos())
			if strings.HasPrefix(text, "simlint:invariant") {
				into[pos.Filename] = append(into[pos.Filename], suppression{
					line:  pos.Line,
					rules: []string{"panicpath"},
				})
				continue
			}
			if rest, ok := strings.CutPrefix(text, "simlint:ignore"); ok {
				s := suppression{line: pos.Line}
				// Anything after "--" (or nothing at all) is prose; bare
				// directives suppress every rule on the line.
				rest, _, _ = strings.Cut(rest, "--")
				if fields := strings.Fields(rest); len(fields) > 0 {
					s.rules = fields
				}
				into[pos.Filename] = append(into[pos.Filename], s)
			}
		}
	}
}
