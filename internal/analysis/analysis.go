// Package analysis is a self-contained static-analysis framework for
// this repository, built only on the standard library (go/parser,
// go/ast, go/types). It exists to machine-check the properties the
// simulation's results depend on: the paper's throughput and CPU
// figures are reproduced as ratios from a deterministic discrete-event
// simulation, so host nondeterminism (wall-clock time, the global
// random source, map iteration order, raw goroutines) must never leak
// into simulated time or report output.
//
// The cmd/simlint CLI loads packages with Loader, runs the Analyzers
// registry, and prints file:line:col: [rule] message diagnostics.
// Individual findings are suppressed with a comment on the offending
// line or the line above:
//
//	// simlint:ignore rule1 rule2   (or bare "simlint:ignore" for all)
//	// simlint:invariant            (panicpath only: a genuine assertion)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// An Analyzer checks one rule over one type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo reports whether the rule is in force for the package
	// with the given import path. RunAnalyzer ignores it (tests run
	// analyzers on fixture packages directly); Run honours it.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// A Module is the set of packages loaded for one analysis run, plus a
// cache of facts computed across them. Interprocedural analyzers (the
// simflow family) build whole-module structures — call graphs, summary
// facts — once per run and share them between analyzers and packages
// through Fact.
type Module struct {
	Pkgs  []*Package // sorted by import path
	facts map[string]any
}

// NewModule wraps loaded packages for analysis.
func NewModule(pkgs []*Package) *Module {
	return &Module{Pkgs: pkgs, facts: make(map[string]any)}
}

// Fact returns the cached module-wide fact under key, building it with
// build on first use. Analyzers use it to share expensive structures
// (one call graph per run, not one per analyzer per package).
func (m *Module) Fact(key string, build func(m *Module) any) any {
	if v, ok := m.facts[key]; ok {
		return v
	}
	v := build(m)
	m.facts[key] = v
	return v
}

// Package returns the module package with the given import path, or nil.
func (m *Module) Package(path string) *Package {
	for _, pkg := range m.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// A Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Module   *Module
	diags    []Diagnostic
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzer applies a single analyzer to a loaded package,
// unconditionally (AppliesTo is not consulted), and returns the
// surviving diagnostics after suppression comments are honoured. The
// package is wrapped in a single-package Module, so interprocedural
// analyzers see exactly the fixture package plus its type imports.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	return runAnalyzerIn(NewModule([]*Package{pkg}), a, pkg)
}

// runAnalyzerIn runs a on pkg within m, records that the rule was
// considered for pkg (for stalesuppress), and returns the diagnostics
// surviving suppression. Matching directives are marked used whether or
// not the finding survives elsewhere.
func runAnalyzerIn(m *Module, a *Analyzer, pkg *Package) []Diagnostic {
	pkg.ranRules[a.Name] = true
	pass := &Pass{Analyzer: a, Pkg: pkg, Module: m}
	a.Run(pass)
	var out []Diagnostic
	for _, d := range pass.diags {
		if !pkg.suppressed(d) {
			out = append(out, d)
		}
	}
	sortDiagnostics(out)
	return out
}

// Run loads the packages named by patterns (see Loader.Load) and
// applies every registered analyzer whose AppliesTo accepts the
// package. Diagnostics come back sorted by position.
//
// StaleSuppress, if selected, runs after every other analyzer on each
// package: only then is it known which directives suppressed something.
func Run(l *Loader, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	m := NewModule(pkgs)
	var out []Diagnostic
	var stale *Analyzer
	for _, a := range analyzers {
		if a.Name == StaleSuppress.Name {
			stale = a
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a == stale {
				continue
			}
			// A rule that is selected but out of scope still counts as
			// considered: it can never fire here, so a directive naming
			// it is stale.
			pkg.ranRules[a.Name] = true
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			out = append(out, runAnalyzerIn(m, a, pkg)...)
		}
		if stale != nil && (stale.AppliesTo == nil || stale.AppliesTo(pkg.Path)) {
			out = append(out, runAnalyzerIn(m, stale, pkg)...)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
}

// Analyzers is the registry cmd/simlint runs by default. Packages
// layered on top of this framework (internal/analysis/simflow) append
// their analyzers with Register from an init function; importing them
// for side effects is what arms the extra rules.
var Analyzers = []*Analyzer{
	DetRand,
	MapOrder,
	NoGoroutine,
	PanicPath,
	UnitMix,
	StaleSuppress,
}

// Register appends a to the default registry. Call from init; duplicate
// names are rejected so two packages cannot silently shadow a rule.
func Register(a *Analyzer) {
	if FindAnalyzer(a.Name) != nil {
		panic("analysis: duplicate analyzer " + a.Name) // simlint:invariant -- init-time registry misuse
	}
	Analyzers = append(Analyzers, a)
}

// FindAnalyzer returns the registered analyzer with the given name.
func FindAnalyzer(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// suppression is one simlint control comment. used flips when the
// directive actually suppresses a finding; stalesuppress reports
// directives that stay unused after every considered rule has run.
type suppression struct {
	pos       token.Position
	line      int
	rules     []string // nil means all rules
	invariant bool     // written as simlint:invariant
	used      bool
}

// suppressed reports whether d is covered by a simlint:ignore (or
// simlint:invariant, for panicpath) comment on its line or the line
// immediately above. Every matching directive is marked used, not just
// the first, so stacked directives age accurately.
func (p *Package) suppressed(d Diagnostic) bool {
	hit := false
	for _, s := range p.suppressions[d.Pos.Filename] {
		if s.line != d.Pos.Line && s.line != d.Pos.Line-1 {
			continue
		}
		if s.rules == nil {
			// A bare directive never silences the meta-rule: it would
			// suppress the staleness report about itself (its position is
			// in range of its own line), so stale bare directives could
			// never be aged out. Silencing stalesuppress requires naming
			// it.
			if d.Rule == StaleSuppress.Name {
				continue
			}
			s.used = true
			hit = true
			continue
		}
		for _, r := range s.rules {
			if r == d.Rule {
				s.used = true
				hit = true
			}
		}
	}
	return hit
}

// directiveSep reports whether the text following a directive token
// begins legitimately: end of comment, whitespace, or the prose marker.
// Prose that merely starts with the token ("simlint:invariant, for
// panicpath, ...") is not a directive.
func directiveSep(rest string) bool {
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || strings.HasPrefix(rest, "--")
}

// collectSuppressions scans a file's comments for simlint directives.
func collectSuppressions(fset *token.FileSet, f *ast.File, into map[string][]*suppression) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			text = strings.TrimSpace(text)
			pos := fset.Position(c.Pos())
			if rest, ok := strings.CutPrefix(text, "simlint:invariant"); ok && directiveSep(rest) {
				into[pos.Filename] = append(into[pos.Filename], &suppression{
					pos:       pos,
					line:      pos.Line,
					rules:     []string{"panicpath"},
					invariant: true,
				})
				continue
			}
			if rest, ok := strings.CutPrefix(text, "simlint:ignore"); ok && directiveSep(rest) {
				s := &suppression{pos: pos, line: pos.Line}
				// Anything after "--" (or nothing at all) is prose; bare
				// directives suppress every rule on the line.
				rest, _, _ = strings.Cut(rest, "--")
				if fields := strings.Fields(rest); len(fields) > 0 {
					s.rules = fields
				}
				into[pos.Filename] = append(into[pos.Filename], s)
			}
		}
	}
}
