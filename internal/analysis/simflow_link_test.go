// This file links the simflow analyzers into the analysis test binary:
// the blank import runs their Register calls, so TestGolden iterates
// their fixtures and TestRepositoryClean gates the tree on the same
// registry cmd/simlint ships.
package analysis_test

import (
	"testing"

	"ufsclust/internal/analysis"
	_ "ufsclust/internal/analysis/simflow"
)

func TestSimflowRegistered(t *testing.T) {
	for _, name := range []string{"blockpath", "buspure", "timeflow"} {
		if analysis.FindAnalyzer(name) == nil {
			t.Errorf("analyzer %q is not in the registry; simflow's Register init did not run", name)
		}
	}
}
