package analysis

import (
	"sort"
	"strings"
)

// StaleSuppress reports simlint control comments that no longer
// suppress anything. Suppressions rot: the code they excused moves or
// gets fixed, the directive stays behind, and a later real finding on
// that line is silently swallowed. The rule runs last (Run orders it
// after every other analyzer on each package) and reads the used marks
// left by suppression matching.
//
// A directive is stale when every rule it names has been considered for
// the package and it still suppressed no finding. A bare simlint:ignore
// is judged against the whole registry. Rules missing from the run so
// far are force-run here with their findings discarded, so the verdict
// never depends on which subset of analyzers the caller selected.
var StaleSuppress = &Analyzer{
	Name:      "stalesuppress",
	Doc:       "report simlint:ignore / simlint:invariant directives that no longer suppress a finding",
	AppliesTo: moduleScope,
}

// Run is attached here rather than in the literal: runStaleSuppress
// walks the Analyzers registry, which contains StaleSuppress, and a
// direct reference would be an initialization cycle.
func init() { StaleSuppress.Run = runStaleSuppress }

func runStaleSuppress(pass *Pass) {
	pkg := pass.Pkg
	// Consider every registered rule the caller did not already run, so
	// used marks are complete before judging. Findings are discarded —
	// this pass exists only to age the directives.
	for _, a := range Analyzers {
		if a.Name == pass.Analyzer.Name || pkg.ranRules[a.Name] {
			continue
		}
		pkg.ranRules[a.Name] = true
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		runAnalyzerIn(pass.Module, a, pkg)
	}

	files := make([]string, 0, len(pkg.suppressions))
	for f := range pkg.suppressions {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, s := range pkg.suppressions[f] {
			if s.used {
				continue
			}
			d := Diagnostic{Pos: s.pos, Rule: pass.Analyzer.Name}
			switch {
			case s.invariant:
				d.Msg = "stale simlint:invariant: no panicpath finding here; delete it or restore the assertion"
			case s.rules == nil:
				d.Msg = "stale simlint:ignore: suppresses nothing; delete the directive"
			default:
				var unknown []string
				for _, r := range s.rules {
					if FindAnalyzer(r) == nil {
						unknown = append(unknown, r)
					}
				}
				if len(unknown) > 0 {
					d.Msg = "stale simlint:ignore " + strings.Join(s.rules, " ") +
						": unknown rule " + strings.Join(unknown, ", ")
				} else {
					d.Msg = "stale simlint:ignore " + strings.Join(s.rules, " ") +
						": suppresses nothing; delete the directive"
				}
			}
			pass.diags = append(pass.diags, d)
		}
	}
}
