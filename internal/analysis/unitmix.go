package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitMix flags additive arithmetic mixing sim.Time with a bare
// untyped integer literal other than 0 or 1. sim.Time is nanoseconds;
// the codebase also traffics in block counts, fragment counts, sector
// counts, and byte offsets, all plain integers, so `t + 512` is as
// likely a block-count bug as a deliberate half-microsecond. Durations
// are built from the named units instead (3*sim.Millisecond), which
// scalar multiplication supports: `N * sim.Microsecond` stays legal,
// while `t + 100` and `t - 4096` are flagged. 0 (zero duration) and 1
// (one tick, and the idiom `t - 1` for "just before t") stay legal.
var UnitMix = &Analyzer{
	Name:      "unitmix",
	Doc:       "flag sim.Time +/- bare integer literals; build durations from sim.Nanosecond..sim.Second",
	AppliesTo: moduleScope,
	Run:       runUnitMix,
}

// assignOps maps the flagged op-assignment tokens to their operator.
var assignOps = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD,
	token.SUB_ASSIGN: token.SUB,
	token.QUO_ASSIGN: token.QUO,
	token.REM_ASSIGN: token.REM,
}

func runUnitMix(pass *Pass) {
	check := func(pos token.Pos, op token.Token, lit *ast.BasicLit, other ast.Expr) {
		if lit == nil || lit.Value == "0" || lit.Value == "1" {
			return
		}
		if !isSimTime(pass, other) {
			return
		}
		pass.Reportf(pos, "sim.Time %s bare literal %s mixes time with a unitless count; use the sim duration units", op, lit.Value)
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.QUO, token.REM:
				default:
					return true
				}
				if lit := bareIntLiteral(n.X); lit != nil {
					check(n.Pos(), n.Op, lit, n.Y)
				} else {
					check(n.Pos(), n.Op, bareIntLiteral(n.Y), n.X)
				}
			case *ast.AssignStmt:
				op, ok := assignOps[n.Tok]
				if !ok || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				check(n.Pos(), op, bareIntLiteral(n.Rhs[0]), n.Lhs[0])
			}
			return true
		})
	}
}

// bareIntLiteral unwraps parens and unary +/- and returns the integer
// literal underneath, or nil.
func bareIntLiteral(e ast.Expr) *ast.BasicLit {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.ADD && x.Op != token.SUB {
				return nil
			}
			e = x.X
		case *ast.BasicLit:
			if x.Kind == token.INT {
				return x
			}
			return nil
		default:
			return nil
		}
	}
}

// isSimTime reports whether e's type is the named type sim.Time.
func isSimTime(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info().Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil &&
		obj.Pkg().Path() == modulePath+"/internal/sim"
}
