package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. "ufsclust/internal/ufs"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	suppressions map[string][]*suppression // filename -> directives
	ranRules     map[string]bool           // analyzers considered for this package
}

// Loader parses and type-checks packages of the enclosing module using
// only the standard library. Imports within the module are resolved
// recursively from source; standard-library imports go through the
// go/importer source importer, so no compiled export data, GOPATH, or
// network access is needed.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string // absolute directory containing go.mod
	ModulePath string // module path from go.mod

	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle detection
}

// NewLoader locates the module root at or above dir and returns a
// loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModuleDir:  root,
		ModulePath: modPath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// moduleName extracts the module path from a go.mod file.
func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load resolves each pattern to package directories, loads them, and
// returns the packages sorted by import path. Patterns may be:
//
//	./...        every package under the module root
//	dir/...      every package under dir (relative to the module root)
//	./x, x/y     a single directory, relative to the module root
//	/abs/path    a single absolute directory
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.ModuleDir, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			if !filepath.IsAbs(base) {
				base = filepath.Join(l.ModuleDir, base)
			}
			if err := l.walk(base, dirs); err != nil {
				return nil, err
			}
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.ModuleDir, dir)
			}
			dirs[filepath.Clean(dir)] = true
		}
	}
	var out []*Package
	for _, dir := range sortedKeys(dirs) {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walk adds every directory under root that contains non-test Go files.
func (l *Loader) walk(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// importPathFor maps an absolute directory to its import path within
// the module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir. It returns
// (nil, nil) for directories with no non-test Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:         path,
		Dir:          dir,
		Fset:         l.Fset,
		Files:        files,
		Types:        tpkg,
		Info:         info,
		suppressions: make(map[string][]*suppression),
		ranRules:     make(map[string]bool),
	}
	for _, f := range files {
		collectSuppressions(l.Fset, f, pkg.suppressions)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter adapts Loader to types.ImporterFrom: module-internal
// imports load recursively from source, everything else (the standard
// library) goes through the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
