package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoGoroutine forbids host concurrency primitives — `go` statements,
// channel sends, channel receives, `select`, and ranging over a
// channel — in the simulation-model packages (core, ufs, vm, disk,
// driver, extfs). Model code runs under the cooperative sim scheduler:
// exactly one sim process executes at a time, handed control over the
// kernel's internal channels, so shared state needs no locking and
// event order is reproducible. A raw goroutine or channel in model
// code reintroduces the host scheduler into event ordering and breaks
// both guarantees. All concurrency goes through sim.Proc (Spawn,
// Sleep, Block) and the wait/semaphore primitives in internal/sim.
var NoGoroutine = &Analyzer{
	Name:      "nogoroutine",
	Doc:       "forbid go statements and raw channel operations in simulation-model packages; use sim.Proc",
	AppliesTo: func(path string) bool { return modelPkgs[path] },
	Run:       runNoGoroutine,
}

func runNoGoroutine(pass *Pass) {
	isChan := func(e ast.Expr) bool {
		tv, ok := pass.Info().Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		_, isc := tv.Type.Underlying().(*types.Chan)
		return isc
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in model code hands scheduling to the host; use Sim.Spawn")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in model code; use sim.WaitQ / sim.Semaphore")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select in model code; block on sim primitives instead")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in model code; use sim.WaitQ / sim.Semaphore")
				}
			case *ast.RangeStmt:
				if isChan(n.X) {
					pass.Reportf(n.Pos(), "range over channel in model code; use sim primitives")
				}
			}
			return true
		})
	}
}
