package analysis

import (
	"go/ast"
	"go/types"
)

// DetRand forbids ambient sources of host nondeterminism: wall-clock
// time and the process-global random source. Simulation code must get
// time from Sim.Now() (virtual nanoseconds) and randomness from
// Sim.Rand (seeded at construction), or every run of a workload would
// schedule differently and the paper's throughput ratios would not
// replay.
var DetRand = &Analyzer{
	Name:      "detrand",
	Doc:       "forbid time.Now/time.Since and global math/rand in simulation code; use Sim.Now()/Sim.Rand",
	AppliesTo: simScope,
	Run:       runDetRand,
}

// forbiddenTimeFuncs are package "time" functions that read the host
// clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Tick":  true,
	"After": true,
	"Sleep": true,
}

// allowedRandFuncs are the constructors of explicitly-seeded sources;
// everything else at package level in math/rand (Intn, Int63, Float64,
// Perm, Shuffle, Seed, ...) draws from the global source.
var allowedRandFuncs = map[string]map[string]bool{
	"math/rand":    {"New": true, "NewSource": true, "NewZipf": true},
	"math/rand/v2": {"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true},
}

func runDetRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info().Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. (*rand.Rand).Intn on Sim.Rand) are fine;
			// only package-level functions touch ambient state.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch pkgPath := fn.Pkg().Path(); pkgPath {
			case "time":
				if forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "time.%s reads the host clock; use Sim.Now() / Proc.Sleep for virtual time", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[pkgPath][fn.Name()] {
					pass.Reportf(sel.Pos(), "global rand.%s is seeded per-process; draw from Sim.Rand so runs replay", fn.Name())
				}
			}
			return true
		})
	}
}
