package analysis

import (
	"go/ast"
	"go/types"
)

// PanicPath flags panic(...) in library code. A panic that can be
// reached through the exported API tears down the whole simulation —
// including the deterministic replay a user may be in the middle of —
// where an error return would let the caller report and continue.
// Genuine invariant assertions (corruption checks that indicate a bug
// in this repository, not bad input) are annotated at the panic site:
//
//	panic("ufs: freeing free fragment") // simlint:invariant
//
// which suppresses this rule and documents the audit decision.
var PanicPath = &Analyzer{
	Name:      "panicpath",
	Doc:       "flag panic in library code; return an error, or annotate invariant assertions with // simlint:invariant",
	AppliesTo: libScope,
	Run:       runPanicPath,
}

func runPanicPath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if b, ok := pass.Info().Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			pass.Reportf(call.Pos(), "panic in library code; return an error, or mark a true assertion with // simlint:invariant")
			return true
		})
	}
}
