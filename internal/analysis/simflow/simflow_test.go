package simflow

import (
	"strings"
	"sync"
	"testing"

	"ufsclust/internal/analysis"
)

var (
	progOnce sync.Once
	prog     *Program
	progErr  error
)

// loadProgram builds one Program over the callgraph fixture package and
// caches it across the tests.
func loadProgram(t *testing.T) *Program {
	t.Helper()
	progOnce.Do(func() {
		l, err := analysis.NewLoader(".")
		if err != nil {
			progErr = err
			return
		}
		pkgs, err := l.Load("internal/analysis/testdata/src/callgraph")
		if err != nil {
			progErr = err
			return
		}
		m := analysis.NewModule(pkgs)
		pass := &analysis.Pass{Analyzer: BlockPath, Pkg: pkgs[0], Module: m}
		prog = ProgramFor(pass)
	})
	if progErr != nil {
		t.Fatalf("load callgraph fixture: %v", progErr)
	}
	return prog
}

// fn finds the unique program node whose name ends in suffix.
func fn(t *testing.T, pr *Program, suffix string) *Func {
	t.Helper()
	var found *Func
	for _, f := range pr.Funcs {
		if strings.HasSuffix(f.Name, suffix) {
			if found != nil {
				t.Fatalf("ambiguous suffix %q: %s and %s", suffix, found.Name, f.Name)
			}
			found = f
		}
	}
	if found == nil {
		t.Fatalf("no function with suffix %q", suffix)
	}
	return found
}

func TestInterfaceDispatch(t *testing.T) {
	pr := loadProgram(t)
	caller := fn(t, pr, ".viaInterface")
	if len(caller.Calls) != 1 {
		t.Fatalf("viaInterface: got %d calls, want 1", len(caller.Calls))
	}
	var names []string
	for _, target := range caller.Calls[0].Targets {
		names = append(names, shortName(target.Name))
	}
	got := strings.Join(names, ",")
	if !strings.Contains(got, "sleeper).do") || !strings.Contains(got, "noop).do") {
		t.Errorf("interface dispatch resolved to %q, want both sleeper.do and noop.do", got)
	}
	if !caller.MayBlock {
		t.Error("viaInterface must be may-block through sleeper.do")
	}
	if fn(t, pr, "sleeper).do").MayBlock != true {
		t.Error("sleeper.do must be may-block")
	}
	if fn(t, pr, "noop).do").MayBlock {
		t.Error("noop.do must not be may-block")
	}
}

func TestFunctionValueCall(t *testing.T) {
	pr := loadProgram(t)
	caller := fn(t, pr, ".viaValue")
	if !caller.MayBlock {
		t.Error("viaValue must be may-block through the f := blockFn binding")
	}
	path := pr.BlockPath(caller)
	if !strings.Contains(path, "blockFn") || !strings.Contains(path, "(*sim.Proc).Block") {
		t.Errorf("BlockPath(viaValue) = %q, want a path through blockFn to sim.Proc.Block", path)
	}
}

func TestRecursionFixedPoint(t *testing.T) {
	pr := loadProgram(t)
	if fn(t, pr, ".mutualA").MayBlock || fn(t, pr, ".mutualB").MayBlock {
		t.Error("non-blocking mutual recursion must stay clean")
	}
	if !fn(t, pr, ".recursiveWait").MayBlock {
		t.Error("recursiveWait blocks at the bottom of its recursion and must be may-block")
	}
}

func TestAppliesToScopes(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		pkg      string
		want     bool
	}{
		{BlockPath, "ufsclust/internal/ufs", true},
		{BlockPath, "ufsclust/internal/sim", false}, // the kernel implements the primitives
		{BlockPath, "ufsclust/internal/cpu", false}, // wrapping Resource.Use is its purpose
		{BlockPath, "ufsclust/internal/analysis", false},
		{BusPure, "ufsclust/internal/vm", true},
		{BusPure, "ufsclust/cmd/fsx", true},
		{BusPure, "ufsclust/internal/analysis", false},
		{TimeFlow, "ufsclust/internal/disk", true},
		{TimeFlow, "ufsclust/cmd/iobench", true},
		{TimeFlow, "othermodule/pkg", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkg); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}
