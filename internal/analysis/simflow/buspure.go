package simflow

import (
	"go/ast"

	"ufsclust/internal/analysis"
)

// BusPure checks telemetry bus subscribers for purity. Emit delivers
// events synchronously at the emission site, inside the model's hot
// paths; a subscriber that emits re-enters the bus and reorders the
// event stream (breaking byte-identical JSONL replay), one that blocks
// parks whatever process happened to be emitting, and one that calls
// back into a model package turns an observation hook into a hidden
// model edge whose work is attributed to arbitrary emission sites.
//
// Subscribers are the resolved arguments of (*telemetry.Bus).Subscribe
// call sites in the analyzed package; each violation reports the call
// path from the subscriber to the offending function.
var BusPure = &analysis.Analyzer{
	Name: "buspure",
	Doc:  "telemetry bus subscribers must not Emit, block, or call into model packages",
	AppliesTo: func(path string) bool {
		return analysis.ModuleScope(path) && !analysis.ToolingPackage(path)
	},
	Run: runBusPure,
}

func runBusPure(pass *analysis.Pass) {
	prog := ProgramFor(pass)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if staticCalleeKey(pass, call) != "ufsclust/internal/telemetry.Bus.Subscribe" || len(call.Args) != 1 {
				return true
			}
			for _, sub := range prog.ResolveValue(pass.Pkg, call.Args[0]) {
				checkSubscriber(pass, prog, call.Args[0], sub)
			}
			return true
		})
	}
}

// checkSubscriber reports the first instance of each violation class
// reachable from sub.
func checkSubscriber(pass *analysis.Pass, prog *Program, at ast.Expr, sub *Func) {
	if hit, path := prog.Reach(sub, func(f *Func) bool {
		return f.Obj != nil && FuncKey(f.Obj) == "ufsclust/internal/telemetry.Bus.Emit"
	}); hit != nil {
		pass.Reportf(at.Pos(), "bus subscriber %s re-enters Emit (event-stream order is no longer the emission order): %s",
			shortName(sub.Name), PathString(path))
	}
	if sub.MayBlock {
		pass.Reportf(at.Pos(), "bus subscriber %s may block the emitting process: %s",
			shortName(sub.Name), prog.BlockPath(sub))
	}
	if hit, path := prog.Reach(sub, func(f *Func) bool {
		return f.Obj != nil && f.Obj.Pkg() != nil && busModelPkgs[f.Obj.Pkg().Path()]
	}); hit != nil {
		pass.Reportf(at.Pos(), "bus subscriber %s calls into model package %s: %s",
			shortName(sub.Name), shortName(hit.Obj.Pkg().Path()), PathString(path))
	}
}

// busModelPkgs are the structural model packages a subscriber must not
// call back into. telemetry itself (histograms, formatting) and fault
// (whose injector is a subscriber by design) are deliberately absent:
// the former is the observation layer, the latter is scoped by its own
// annotations.
var busModelPkgs = map[string]bool{
	"ufsclust/internal/core":   true,
	"ufsclust/internal/ufs":    true,
	"ufsclust/internal/vm":     true,
	"ufsclust/internal/disk":   true,
	"ufsclust/internal/driver": true,
	"ufsclust/internal/extfs":  true,
}
