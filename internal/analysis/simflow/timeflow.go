package simflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ufsclust/internal/analysis"
)

// TimeFlow promotes unitmix from literal-only to flow-sensitive: it
// tracks count-valued data (block, sector, fragment, and byte counts —
// recognized from len/cap results and from the unit vocabulary in
// identifier names) through assignments, parameters, and function
// returns, and flags sim.Time conversions whose operand is a count.
// sim.Time measures duration; a count converted without scaling by a
// per-unit cost (the `t + toSectors(n)` shape) type-checks fine and
// silently corrupts virtual time.
//
// A conversion directly inside a multiplication or division is
// sanctioned — `sim.Time(n) * sim.Microsecond` is the scaling idiom,
// and `total / sim.Time(n)` is a mean. Values derived from sim.Time
// (`int64(t) / blockSize`) carry time taint, which dominates count, so
// splitting a duration into per-block shares stays clean.
var TimeFlow = &analysis.Analyzer{
	Name:      "timeflow",
	Doc:       "flow-sensitive unit taint: count-valued data must not convert to sim.Time unscaled",
	AppliesTo: analysis.ModuleScope,
	Run:       runTimeFlow,
}

type taint uint8

const (
	tNone taint = iota
	tCount
	tTime // dominates: arithmetic with time stays time
)

func mergeTaint(a, b taint) taint {
	if b > a {
		return b
	}
	return a
}

// countVocab decides whether an integer-typed name denotes a unit
// count. Substrings catch compounds (nblocks, sectPerTrack); the exact
// set catches the bare conventional names.
var countVocabSub = []string{"block", "blk", "frag", "sector", "sect", "lbn", "fsbn", "byte"}
var countVocabExact = map[string]bool{"n": true, "count": true, "size": true, "off": true, "offset": true}

func countName(name string) bool {
	lower := strings.ToLower(name)
	if countVocabExact[lower] {
		return true
	}
	for _, sub := range countVocabSub {
		if strings.Contains(lower, sub) {
			return true
		}
	}
	return false
}

// isSimTime reports whether t is (an alias of) sim.Time.
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == analysis.ModulePath()+"/internal/sim" && named.Obj().Name() == "Time"
}

// isIntegerish reports whether t can carry a count: any integer or
// float kind, basic or named — except sim.Time itself.
func isIntegerish(t types.Type) bool {
	if isSimTime(t) {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}

// computeReturnTaints summarizes, to a fixed point across the module,
// the taint of every single-result function's return value. The
// summaries feed call expressions in exprTaint, which is what carries
// a count through `toSectors(n)` to the conversion site that misuses
// it.
func (pr *Program) computeReturnTaints() {
	pr.returns = make(map[*types.Func]taint)
	for changed := true; changed; {
		changed = false
		for _, f := range pr.Funcs {
			if f.Decl == nil || f.Obj == nil || f.Decl.Body == nil {
				continue
			}
			sig := f.Obj.Type().(*types.Signature)
			if sig.Results().Len() != 1 || !isIntegerish(sig.Results().At(0).Type()) {
				continue
			}
			env := buildEnv(pr, f.Pkg, f.Decl)
			t := tNone
			ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // a literal's returns are not f's returns
				}
				if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
					t = mergeTaint(t, exprTaint(pr, f.Pkg, env, ret.Results[0]))
				}
				return true
			})
			if t > pr.returns[f.Obj] {
				pr.returns[f.Obj] = t
				changed = true
			}
		}
	}
}

// buildEnv computes the taint of each local variable of fd as the merge
// of everything assigned to it, plus count taint for vocabulary-named
// parameters. Two passes stabilize chained locals (a := n; b := a).
func buildEnv(pr *Program, pkg *analysis.Package, fd *ast.FuncDecl) map[types.Object]taint {
	env := make(map[types.Object]taint)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pkg.Info.Defs[name]
				if obj != nil && isIntegerish(obj.Type()) && countName(name.Name) {
					env[obj] = tCount
				}
			}
		}
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, l := range x.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := pkg.Info.Defs[id]
					if obj == nil {
						obj = pkg.Info.Uses[id]
					}
					if obj == nil || !isIntegerish(obj.Type()) {
						continue
					}
					env[obj] = mergeTaint(env[obj], exprTaint(pr, pkg, env, x.Rhs[i]))
				}
			case *ast.ValueSpec:
				if len(x.Names) != len(x.Values) {
					return true
				}
				for i, id := range x.Names {
					obj := pkg.Info.Defs[id]
					if obj == nil || !isIntegerish(obj.Type()) {
						continue
					}
					env[obj] = mergeTaint(env[obj], exprTaint(pr, pkg, env, x.Values[i]))
				}
			}
			return true
		})
	}
	return env
}

// exprTaint evaluates the unit taint of e under env. Time dominates
// count; division, shifts, and remainder keep the left operand's taint
// (dividing a count by a rate is still a count; dividing a time by a
// count is a per-unit time).
func exprTaint(pr *Program, pkg *analysis.Package, env map[types.Object]taint, e ast.Expr) taint {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil && isSimTime(tv.Type) {
		return tTime
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return exprTaint(pr, pkg, env, x.X)
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil {
			return tNone
		}
		if t, ok := env[obj]; ok {
			return t
		}
		if v, ok := obj.(*types.Var); ok && isIntegerish(v.Type()) && countName(x.Name) {
			return tCount
		}
		return tNone
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal &&
			isIntegerish(sel.Type()) && countName(x.Sel.Name) {
			return tCount
		}
		return tNone
	case *ast.CallExpr:
		fun := unparen(x.Fun)
		if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
			if len(x.Args) == 1 {
				return exprTaint(pr, pkg, env, x.Args[0]) // conversion is taint-transparent
			}
			return tNone
		}
		if id, ok := fun.(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
				if b.Name() == "len" || b.Name() == "cap" {
					return tCount
				}
				return tNone
			}
		}
		if tf := referencedFunc(pkg, fun); tf != nil {
			return pr.returns[tf]
		}
		return tNone
	case *ast.UnaryExpr:
		return exprTaint(pr, pkg, env, x.X)
	case *ast.StarExpr:
		return exprTaint(pr, pkg, env, x.X)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.QUO, token.REM, token.SHL, token.SHR:
			return exprTaint(pr, pkg, env, x.X)
		case token.ADD, token.SUB, token.MUL, token.AND, token.OR, token.XOR:
			return mergeTaint(exprTaint(pr, pkg, env, x.X), exprTaint(pr, pkg, env, x.Y))
		}
		return tNone
	}
	return tNone
}

func runTimeFlow(pass *analysis.Pass) {
	prog := ProgramFor(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			env := buildEnv(prog, pass.Pkg, fd)
			parents := make(map[ast.Node]ast.Node)
			var stack []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[unparen(call.Fun)]
				if !ok || !tv.IsType() || !isSimTime(tv.Type) {
					return true
				}
				if exprTaint(prog, pass.Pkg, env, call.Args[0]) != tCount {
					return true
				}
				if scalingContext(parents, call) {
					return true
				}
				pass.Reportf(call.Pos(), "count-valued expression converted to sim.Time without scaling; multiply by a per-unit duration (e.g. sim.Time(n) * sim.Microsecond)")
				return true
			})
		}
	}
}

// scalingContext reports whether the conversion sits directly inside a
// multiplication, division, or remainder — the contexts where a bare
// count legitimately meets sim.Time.
func scalingContext(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch x := p.(type) {
		case *ast.ParenExpr:
			continue
		case *ast.BinaryExpr:
			return x.Op == token.MUL || x.Op == token.QUO || x.Op == token.REM
		default:
			return false
		}
	}
	return false
}
