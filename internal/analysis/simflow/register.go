package simflow

import "ufsclust/internal/analysis"

// Importing simflow (cmd/simlint does, for side effects) arms the
// interprocedural rules in the framework's default registry.
func init() {
	analysis.Register(BlockPath)
	analysis.Register(BusPure)
	analysis.Register(TimeFlow)
}
