package simflow

import (
	"go/ast"
	"go/types"
	"sort"

	"ufsclust/internal/analysis"
)

// flushPending materializes the references collected in pass 1 now that
// every declared node exists: address-taken marks, signature index
// entries, and func-typed variable bindings.
func (b *builder) flushPending() {
	for _, pt := range b.pendingTaken {
		fn := b.funcFor(pt.tf)
		fn.AddrTaken = true
		b.addSig(typeKey(pt.typ), fn)
	}
	for _, pv := range b.pendingVarLits {
		if fn := b.prog.byLit[pv.lit]; fn != nil {
			b.prog.varFuncs[pv.obj] = append(b.prog.varFuncs[pv.obj], fn)
		}
	}
	for _, pv := range b.pendingVarRefs {
		b.prog.varFuncs[pv.obj] = append(b.prog.varFuncs[pv.obj], b.funcFor(pv.tf))
	}
}

func (b *builder) addSig(key string, fn *Func) {
	for _, existing := range b.prog.bySig[key] {
		if existing == fn {
			return
		}
	}
	b.prog.bySig[key] = append(b.prog.bySig[key], fn)
}

// funcFor returns the node for a declared module function, creating an
// external node when its source is not loaded.
func (b *builder) funcFor(tf *types.Func) *Func {
	if fn, ok := b.prog.byObj[tf]; ok {
		return fn
	}
	return b.external(tf)
}

// resolve walks n attaching a Call (with its resolved target set) to fn
// for every call expression. Literal bodies recurse with the literal's
// own node as fn; calls at package level outside any literal (var
// initializer expressions) have no carrier and are skipped.
func (b *builder) resolve(pkg *analysis.Package, fn *Func, n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			b.resolve(pkg, b.prog.byLit[x], x.Body)
			return false
		case *ast.CallExpr:
			if fn == nil {
				return true
			}
			targets := b.callTargets(pkg, x)
			if len(targets) > 0 {
				sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })
				c := &Call{Pos: x.Lparen, Targets: targets}
				fn.Calls = append(fn.Calls, c)
				b.prog.callsAt[x.Lparen] = c
			}
		}
		return true
	})
}

// callTargets resolves one call expression to the set of functions it
// may invoke. Conversions and builtins resolve to nothing; interface
// method calls resolve to every module type implementing the interface;
// calls through function values resolve to every address-taken function
// of identical signature.
func (b *builder) callTargets(pkg *analysis.Package, call *ast.CallExpr) []*Func {
	info := pkg.Info
	fun := unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil // conversion
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin, *types.TypeName, nil:
			return nil
		case *types.Func:
			return []*Func{b.funcFor(obj)}
		case *types.Var:
			if bound := b.prog.varFuncs[obj]; len(bound) > 0 {
				return append([]*Func(nil), bound...)
			}
			return b.dynamicTargets(info, fun)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				if tf, ok := sel.Obj().(*types.Func); ok {
					if types.IsInterface(sel.Recv()) {
						return b.interfaceTargets(sel.Recv(), tf.Name())
					}
					return []*Func{b.funcFor(tf)}
				}
			case types.FieldVal:
				return b.dynamicTargets(info, fun)
			}
			return nil
		}
		// Qualified reference: pkg.Func.
		if tf, ok := info.Uses[f.Sel].(*types.Func); ok {
			return []*Func{b.funcFor(tf)}
		}
		return nil
	}
	return b.dynamicTargets(info, fun)
}

// dynamicTargets matches a call through a function value against every
// address-taken function with the identical signature.
func (b *builder) dynamicTargets(info *types.Info, fun ast.Expr) []*Func {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isSig := tv.Type.Underlying().(*types.Signature); !isSig {
		return nil
	}
	return append([]*Func(nil), b.prog.bySig[typeKey(tv.Type)]...)
}

// interfaceTargets is class-hierarchy analysis: every named module type
// (or its pointer) implementing the interface contributes its method.
func (b *builder) interfaceTargets(iface types.Type, method string) []*Func {
	under, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Func
	seen := map[*Func]bool{}
	for _, named := range b.prog.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, under) && !types.Implements(ptr, under) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if tf, ok := obj.(*types.Func); ok {
			fn := b.funcFor(tf)
			if !seen[fn] {
				seen[fn] = true
				out = append(out, fn)
			}
		}
	}
	return out
}

// computeMayBlock seeds the blocking primitives (and the external
// summaries, for nodes with no loaded body) and propagates "may block"
// backwards over call edges to a fixed point. Iteration is in node-id
// order, so the first witness recorded for each function — and the
// diagnostic path built from it — is the same on every run.
func (pr *Program) computeMayBlock() {
	for _, f := range pr.Funcs {
		if f.Obj == nil {
			continue
		}
		key := FuncKey(f.Obj)
		if blockPrimitives[key] {
			f.MayBlock = true
		} else if f.Decl == nil && externBlock[key] {
			f.MayBlock = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range pr.Funcs {
			if f.MayBlock {
				continue
			}
			for _, c := range f.Calls {
				blocked := false
				for _, t := range c.Targets {
					if t.MayBlock {
						blocked = true
						break
					}
				}
				if blocked {
					f.MayBlock = true
					f.via = c
					changed = true
					break
				}
			}
		}
	}
}

// Reach walks the call graph from f (breadth-first, id order) and
// returns the first reached function satisfying pred, along with the
// call path from f to it inclusive. It returns (nil, nil) when nothing
// matches. f itself is not tested.
func (pr *Program) Reach(f *Func, pred func(*Func) bool) (*Func, []*Func) {
	type hop struct {
		fn   *Func
		from *hop
	}
	start := &hop{fn: f}
	queue := []*hop{start}
	visited := map[*Func]bool{f: true}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, c := range h.fn.Calls {
			for _, t := range c.Targets {
				if visited[t] {
					continue
				}
				visited[t] = true
				th := &hop{fn: t, from: h}
				if pred(t) {
					var path []*Func
					for x := th; x != nil; x = x.from {
						path = append(path, x.fn)
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return t, path
				}
				queue = append(queue, th)
			}
		}
	}
	return nil, nil
}

// PathString renders a Reach path for a diagnostic.
func PathString(path []*Func) string {
	parts := make([]string, len(path))
	for i, f := range path {
		parts[i] = shortName(f.Name)
	}
	return joinArrow(parts)
}

func joinArrow(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " -> "
		}
		out += p
	}
	return out
}

// ResolveValue resolves a function-valued expression at a registration
// site (callback argument, struct field value) to the functions it can
// denote: a literal, a direct function or method-value reference, or a
// variable with recorded bindings. Unresolvable expressions (a field
// read, a call result) return nil and the caller skips them — the
// documented soundness trade for a usable signal.
func (pr *Program) ResolveValue(pkg *analysis.Package, e ast.Expr) []*Func {
	switch x := unparen(e).(type) {
	case *ast.FuncLit:
		if fn := pr.byLit[x]; fn != nil {
			return []*Func{fn}
		}
	case *ast.Ident:
		switch obj := pkg.Info.Uses[x].(type) {
		case *types.Func:
			if fn := pr.byObj[obj]; fn != nil {
				return []*Func{fn}
			}
		case *types.Var:
			return append([]*Func(nil), pr.varFuncs[obj]...)
		}
	case *ast.SelectorExpr:
		if tf, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
			if fn := pr.byObj[tf]; fn != nil {
				return []*Func{fn}
			}
		}
	}
	return nil
}
