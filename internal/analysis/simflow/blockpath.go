package simflow

import (
	"go/ast"
	"go/types"

	"ufsclust/internal/analysis"
)

// BlockPath flags calls that may park the calling process made from
// contexts where there is no process to park, or while a metadata
// buffer is held:
//
//   - Callbacks registered with (*sim.Sim).After/At, metric getters
//     registered with (*telemetry.Registry).Counter/Gauge/CounterSource,
//     and I/O completion callbacks (driver.Buf.Iodone, disk.Request.Done)
//     all run in scheduler context. Blocking there corrupts the run: the
//     scheduler is not a Proc, so Sleep/Block would park the kernel.
//   - Between acquiring a buffer with Bcache.Bread/getblk and releasing
//     it (Brelse/Bwrite/Bdwrite/BwriteOrdered/metaWrite, or function
//     return), a call that may block and does not mention the buffer can
//     deadlock against another process waiting for that buffer, and at
//     best stretches the hold time nondeterministically relative to
//     other lock orders.
//
// Callback expressions that cannot be resolved (a field read, a call
// result) are skipped: the rule trades soundness at those few sites for
// zero-noise findings everywhere else. Buffer regions end at the first
// release or return after the acquire, so early-exit branches shorten
// rather than widen them.
var BlockPath = &analysis.Analyzer{
	Name: "blockpath",
	Doc:  "may-block calls from scheduler-context callbacks or while a metadata buffer is held",
	AppliesTo: func(path string) bool {
		// The sim kernel implements the blocking primitives; cpu wraps
		// Resource.Use as its whole purpose. Everything else under the
		// determinism scope is fair game.
		return analysis.SimScope(path) &&
			path != analysis.ModulePath()+"/internal/sim" &&
			path != analysis.ModulePath()+"/internal/cpu"
	},
	Run: runBlockPath,
}

// schedulerCallbackArg maps a registration function (by FuncKey) to the
// index of its callback argument.
var schedulerCallbackArg = map[string]int{
	"ufsclust/internal/sim.Sim.After":                    1,
	"ufsclust/internal/sim.Sim.At":                       1,
	"ufsclust/internal/telemetry.Registry.Counter":       1,
	"ufsclust/internal/telemetry.Registry.Gauge":         1,
	"ufsclust/internal/telemetry.Registry.CounterSource": 0,
}

// completionFields are struct fields whose value runs in scheduler
// (interrupt-delivery) context.
var completionFields = map[string]map[string]bool{
	"ufsclust/internal/driver.Buf":   {"Iodone": true},
	"ufsclust/internal/disk.Request": {"Done": true},
}

func runBlockPath(pass *analysis.Pass) {
	prog := ProgramFor(pass)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkSchedulerRegistration(pass, prog, x)
			case *ast.CompositeLit:
				checkCompletionLit(pass, prog, x)
			case *ast.AssignStmt:
				checkCompletionAssign(pass, prog, x)
			case *ast.FuncDecl:
				if x.Body != nil {
					checkBufferRegions(pass, prog, x)
				}
			}
			return true
		})
	}
}

// staticCalleeKey returns the FuncKey of a call's statically resolved
// callee, or "".
func staticCalleeKey(pass *analysis.Pass, call *ast.CallExpr) string {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		if tf, ok := pass.Pkg.Info.Uses[f].(*types.Func); ok {
			return FuncKey(tf)
		}
	case *ast.SelectorExpr:
		if tf, ok := pass.Pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return FuncKey(tf)
		}
	}
	return ""
}

func checkSchedulerRegistration(pass *analysis.Pass, prog *Program, call *ast.CallExpr) {
	key := staticCalleeKey(pass, call)
	idx, ok := schedulerCallbackArg[key]
	if !ok || idx >= len(call.Args) {
		return
	}
	reportBlockingCallback(pass, prog, call.Args[idx], "callback registered via "+shortName(key))
}

func checkCompletionLit(pass *analysis.Pass, prog *Program, lit *ast.CompositeLit) {
	fields := completionFieldsOf(pass, pass.Pkg.Info.Types[lit].Type)
	if fields == nil {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && fields[key.Name] {
			reportBlockingCallback(pass, prog, kv.Value, key.Name+" completion callback")
		}
	}
}

func checkCompletionAssign(pass *analysis.Pass, prog *Program, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		sel, ok := unparen(l).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		s, ok := pass.Pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			continue
		}
		fields := completionFieldsOf(pass, s.Recv())
		if fields != nil && fields[sel.Sel.Name] {
			reportBlockingCallback(pass, prog, as.Rhs[i], sel.Sel.Name+" completion callback")
		}
	}
}

// completionFieldsOf returns the watched field set when t (or *t) is a
// completion-carrying struct.
func completionFieldsOf(pass *analysis.Pass, t types.Type) map[string]bool {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	return completionFields[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

func reportBlockingCallback(pass *analysis.Pass, prog *Program, e ast.Expr, what string) {
	for _, fn := range prog.ResolveValue(pass.Pkg, e) {
		if fn.MayBlock {
			pass.Reportf(e.Pos(), "%s runs in scheduler context but may block: %s", what, prog.BlockPath(fn))
			return
		}
	}
}

// bufferReleases are the Bcache/Fs methods that unlock a buffer passed
// to them.
var bufferReleases = map[string]bool{
	"Brelse":        true,
	"Bdwrite":       true,
	"Bwrite":        true,
	"BwriteOrdered": true,
	"metaWrite":     true,
}

// checkBufferRegions scans one function for getblk/Bread acquisitions
// and flags may-block calls inside the held region that do not mention
// the buffer. A call that takes the buffer is presumed to be operating
// on (or releasing) it; one that does not, and can park the process,
// holds a locked buffer across an unrelated wait.
func checkBufferRegions(pass *analysis.Pass, prog *Program, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	type acquisition struct {
		obj   types.Object
		pos   int            // file offset order via token.Pos
		block *ast.BlockStmt // block the acquire statement lives in
	}
	var acquires []acquisition
	returnBlocks := make(map[*ast.ReturnStmt]*ast.BlockStmt)

	// One stack walk records each acquire and the innermost block of
	// every statement of interest: a return inside a nested block (an
	// if-branch) is conditional and must not close a region opened at
	// shallower depth — only a return at the acquire's own depth
	// certainly executes.
	var blocks []*ast.BlockStmt
	var depth []ast.Node
	innermost := func() *ast.BlockStmt {
		if len(blocks) == 0 {
			return nil
		}
		return blocks[len(blocks)-1]
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			top := depth[len(depth)-1]
			depth = depth[:len(depth)-1]
			if _, ok := top.(*ast.BlockStmt); ok {
				blocks = blocks[:len(blocks)-1]
			}
			return true
		}
		depth = append(depth, n)
		switch x := n.(type) {
		case *ast.BlockStmt:
			blocks = append(blocks, x)
		case *ast.ReturnStmt:
			returnBlocks[x] = innermost()
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			key := staticCalleeKey(pass, call)
			if key != "ufsclust/internal/ufs.Bcache.Bread" && key != "ufsclust/internal/ufs.Bcache.getblk" {
				return true
			}
			id, ok := x.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				acquires = append(acquires, acquisition{obj: obj, pos: int(call.End()), block: innermost()})
			}
		}
		return true
	})

	for _, acq := range acquires {
		end := int(fd.Body.End())
		// The region closes at the first release mentioning the buffer
		// or the first unconditional return after the acquire, whichever
		// comes first.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ReturnStmt:
				if returnBlocks[x] == acq.block && int(x.Pos()) > acq.pos && int(x.Pos()) < end {
					end = int(x.Pos())
				}
			case *ast.CallExpr:
				if int(x.Pos()) <= acq.pos || int(x.Pos()) >= end {
					return true
				}
				if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok &&
					bufferReleases[sel.Sel.Name] && mentionsObject(info, x, acq.obj) {
					if int(x.End()) < end {
						end = int(x.End())
					}
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || int(call.Pos()) <= acq.pos || int(call.Pos()) >= end {
				return true
			}
			if mentionsObject(info, call, acq.obj) {
				return true
			}
			if c := prog.CallAt(call.Lparen); c != nil {
				for _, fn := range c.Targets {
					if fn.MayBlock {
						pass.Reportf(call.Pos(), "call may block while buffer %q is held: %s",
							acq.obj.Name(), prog.BlockPath(fn))
						break
					}
				}
			}
			return true
		})
	}
}

// mentionsObject reports whether the expression tree references obj.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
