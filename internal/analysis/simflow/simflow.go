// Package simflow layers interprocedural analysis on the repository's
// stdlib-only analysis framework. It builds a module-wide call graph
// over go/types callees — static calls resolved exactly, interface
// calls by class-hierarchy analysis over the module's named types,
// function-value calls conservatively by signature against every
// address-taken function — and computes per-function summary facts
// (today: "may this function block the calling process?") to a fixed
// point over that graph.
//
// Three analyzers ride on the graph: blockpath (may-block calls from
// scheduler-context callbacks and while holding a metadata buffer),
// buspure (telemetry bus subscribers must stay pure), and timeflow
// (flow-sensitive unit taint into sim.Time conversions). They register
// themselves with the framework from init, so importing this package
// for side effects is what arms the rules in cmd/simlint.
package simflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ufsclust/internal/analysis"
)

// A Func is one node of the call graph: a declared function or method,
// a function literal, or an externally defined function the module
// calls but whose source is not loaded (standard library, or module
// packages imported only for types by a fixture run).
type Func struct {
	Obj  *types.Func       // nil for function literals
	Decl *ast.FuncDecl     // non-nil when declared with source
	Lit  *ast.FuncLit      // non-nil for literals
	Pkg  *analysis.Package // nil for external functions
	Name string            // stable display name

	Calls     []*Call
	AddrTaken bool

	// MayBlock is the transitive fact: this function can park the
	// calling process (reaches Proc.Sleep/Block/Yield, Semaphore.P, or
	// Resource.Acquire/Use). via records the first witnessing call for
	// diagnostic paths; nil on the base primitives themselves.
	MayBlock bool
	via      *Call

	id int
}

// A Call is one call site inside a Func, with every target it may
// reach. Targets are sorted by node id, so traversal order — and every
// diagnostic derived from it — is deterministic.
type Call struct {
	Pos     token.Pos
	Targets []*Func
}

// A Program is the module-wide call graph plus the fact tables the
// analyzers share. Build one per analysis run via ProgramFor.
type Program struct {
	Module *analysis.Module
	Funcs  []*Func // creation order: declared (by package, file, position), then literals, then externals

	byObj      map[*types.Func]*Func
	byLit      map[*ast.FuncLit]*Func
	bySig      map[string][]*Func       // address-taken nodes keyed by signature
	varFuncs   map[types.Object][]*Func // func-typed variables -> every function assigned to them
	callsAt    map[token.Pos]*Call      // resolved call sites keyed by Lparen
	namedTypes []*types.Named           // module named types, for interface dispatch
	returns    map[*types.Func]taint    // timeflow result summaries
}

// CallAt returns the resolved call at an Lparen position, or nil.
func (pr *Program) CallAt(pos token.Pos) *Call { return pr.callsAt[pos] }

// ProgramFor returns the call graph for the pass's module, building it
// on first use and sharing it across analyzers and packages.
func ProgramFor(pass *analysis.Pass) *Program {
	return pass.Module.Fact("simflow.program", func(m *analysis.Module) any {
		return buildProgram(m)
	}).(*Program)
}

// FuncOf returns the graph node for a declared function or method, or
// nil if obj is unknown.
func (pr *Program) FuncOf(obj *types.Func) *Func { return pr.byObj[obj] }

// blockPrimitives are the kernel operations that park a process. They
// are matched by key (package.Receiver.Method) rather than node
// identity so they hold whether the sim package is loaded from source
// or imported only for types.
var blockPrimitives = map[string]bool{
	"ufsclust/internal/sim.Proc.Sleep":       true,
	"ufsclust/internal/sim.Proc.Block":       true,
	"ufsclust/internal/sim.Proc.Yield":       true,
	"ufsclust/internal/sim.Semaphore.P":      true,
	"ufsclust/internal/sim.Resource.Acquire": true,
	"ufsclust/internal/sim.Resource.Use":     true,
}

// externBlock summarizes well-known module entry points that block, for
// runs (fixture tests) where the callee's source is not loaded and the
// fixed point cannot discover the fact itself.
var externBlock = map[string]bool{
	"ufsclust/internal/ufs.Bcache.Bread":   true,
	"ufsclust/internal/ufs.Bcache.Bwrite":  true,
	"ufsclust/internal/ufs.Bcache.Flush":   true,
	"ufsclust/internal/vm.Page.WaitUnbusy": true,
	"ufsclust/internal/vm.VM.Alloc":        true,
	"ufsclust/internal/driver.Driver.IO":   true,
	"ufsclust/internal/disk.Disk.IO":       true,
	"ufsclust/internal/cpu.Model.Use":      true,
}

// FuncKey renders a *types.Func as package.Receiver.Method (pointer
// receivers are stripped) or package.Function — the form the fact
// tables above are keyed by.
func FuncKey(tf *types.Func) string {
	sig, _ := tf.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + tf.Name()
		}
	}
	if tf.Pkg() != nil {
		return tf.Pkg().Path() + "." + tf.Name()
	}
	return tf.Name()
}

// shortName trims the module prefix from a node name for diagnostics.
func shortName(name string) string {
	return strings.ReplaceAll(name, analysis.ModulePath()+"/internal/", "")
}

// BlockPath renders the witness chain from f down to the blocking
// primitive, e.g. "ufs.Fs.Write -> ufs.Bcache.Bread -> sim.Proc.Block".
func (pr *Program) BlockPath(f *Func) string {
	var parts []string
	seen := map[*Func]bool{}
	for f != nil && !seen[f] {
		seen[f] = true
		parts = append(parts, shortName(f.Name))
		if f.via == nil || len(f.via.Targets) == 0 {
			break
		}
		next := (*Func)(nil)
		for _, t := range f.via.Targets {
			if t.MayBlock {
				next = t
				break
			}
		}
		f = next
	}
	return strings.Join(parts, " -> ")
}

type builder struct {
	prog    *Program
	nextID  int
	callPos map[ast.Expr]bool // expressions in call-operator position
	selSels map[*ast.Ident]bool

	pendingTaken   []pendingTaken
	pendingVarLits []pendingVarLit
	pendingVarRefs []pendingVarRef
}

type pendingTaken struct {
	tf  *types.Func
	typ types.Type
}

func buildProgram(m *analysis.Module) *Program {
	pr := &Program{
		Module:   m,
		byObj:    make(map[*types.Func]*Func),
		byLit:    make(map[*ast.FuncLit]*Func),
		bySig:    make(map[string][]*Func),
		varFuncs: make(map[types.Object][]*Func),
		callsAt:  make(map[token.Pos]*Call),
	}
	b := &builder{prog: pr, callPos: make(map[ast.Expr]bool), selSels: make(map[*ast.Ident]bool)}

	// Pass 0: named types of the whole module, for interface dispatch.
	// Scope names come back sorted, so the candidate order is stable.
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				pr.namedTypes = append(pr.namedTypes, named)
			}
		}
	}

	// Pass 1: create nodes for every declared function and literal, mark
	// address-taken references, and index func-typed variable bindings.
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					b.scanValueDecls(pkg, decl)
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fn := b.newFunc(obj, fd, nil, pkg, obj.FullName())
				if fd.Body != nil {
					b.discover(pkg, fn, fd.Body)
				}
			}
		}
	}

	b.flushPending()

	// Pass 2: resolve every call site. All address-taken candidates are
	// known now, so dynamic and interface calls see the full picture.
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj, _ := pkg.Info.Defs[fd.Name].(*types.Func); obj != nil {
						b.resolve(pkg, pr.byObj[obj], fd.Body)
					}
				} else if !ok {
					if gd, isGen := decl.(*ast.GenDecl); isGen {
						b.resolve(pkg, nil, gd)
					}
				}
			}
		}
	}

	pr.computeMayBlock()
	pr.computeReturnTaints()
	return pr
}

func (b *builder) newFunc(obj *types.Func, decl *ast.FuncDecl, lit *ast.FuncLit, pkg *analysis.Package, name string) *Func {
	fn := &Func{Obj: obj, Decl: decl, Lit: lit, Pkg: pkg, Name: name, id: b.nextID}
	b.nextID++
	b.prog.Funcs = append(b.prog.Funcs, fn)
	if obj != nil {
		b.prog.byObj[obj] = fn
	}
	if lit != nil {
		b.prog.byLit[lit] = fn
	}
	return fn
}

// external returns (creating on demand) the node for a function whose
// source is outside the loaded module.
func (b *builder) external(obj *types.Func) *Func {
	if fn, ok := b.prog.byObj[obj]; ok {
		return fn
	}
	return b.newFunc(obj, nil, nil, nil, obj.FullName())
}

// scanValueDecls walks package-level non-function declarations so that
// literals in var initializers (var hook = func() {...}) become nodes.
func (b *builder) scanValueDecls(pkg *analysis.Package, decl ast.Decl) {
	if gd, ok := decl.(*ast.GenDecl); ok {
		b.discover(pkg, nil, gd)
	}
}

// discover walks n creating literal nodes, recording call-position
// expressions, address-taken functions, and func-typed variable
// bindings. parent names nested literals; nil means a package-level
// initializer.
func (b *builder) discover(pkg *analysis.Package, parent *Func, n ast.Node) {
	litIndex := 0
	parentName := pkg.Path + ".init"
	if parent != nil {
		parentName = parent.Name
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			name := parentName + "$" + itoa(litIndex)
			litIndex++
			lit := b.newFunc(nil, nil, x, pkg, name)
			lit.AddrTaken = true
			b.indexBySig(pkg, lit, x)
			b.discover(pkg, lit, x.Body)
			return false
		case *ast.CallExpr:
			b.callPos[unparen(x.Fun)] = true
		case *ast.SelectorExpr:
			b.selSels[x.Sel] = true
			if !b.callPos[x] {
				if tf, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
					if tv, hasType := pkg.Info.Types[x]; hasType && tv.Type != nil {
						b.pendingTaken = append(b.pendingTaken, pendingTaken{tf, tv.Type})
					}
				}
			}
		case *ast.Ident:
			if !b.callPos[x] && !b.selSels[x] {
				if tf, ok := pkg.Info.Uses[x].(*types.Func); ok {
					if tv, hasType := pkg.Info.Types[x]; hasType && tv.Type != nil {
						b.pendingTaken = append(b.pendingTaken, pendingTaken{tf, tv.Type})
					}
				}
			}
		case *ast.AssignStmt:
			b.recordVarFuncs(pkg, x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			idents := make([]ast.Expr, len(x.Names))
			for i, id := range x.Names {
				idents[i] = id
			}
			b.recordVarFuncs(pkg, idents, x.Values)
		}
		return true
	})
}

// recordVarFuncs indexes `v := <func literal or reference>` bindings so
// registration sites passing a variable (fire := func(){...}; After(d,
// fire)) still resolve.
func (b *builder) recordVarFuncs(pkg *analysis.Package, lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		switch r := unparen(rhs[i]).(type) {
		case *ast.FuncLit:
			// The literal node may not exist yet (Inspect visits the
			// assignment before the literal); defer to resolution time
			// by keying on the literal.
			b.pendingVarLits = append(b.pendingVarLits, pendingVarLit{obj, r})
		case *ast.Ident, *ast.SelectorExpr:
			if tf := referencedFunc(pkg, r); tf != nil {
				b.pendingVarRefs = append(b.pendingVarRefs, pendingVarRef{obj, tf})
			}
		}
	}
}

type pendingVarLit struct {
	obj types.Object
	lit *ast.FuncLit
}

type pendingVarRef struct {
	obj types.Object
	tf  *types.Func
}

// referencedFunc returns the *types.Func an identifier or selector
// denotes, or nil.
func referencedFunc(pkg *analysis.Package, e ast.Expr) *types.Func {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		tf, _ := pkg.Info.Uses[x].(*types.Func)
		return tf
	case *ast.SelectorExpr:
		tf, _ := pkg.Info.Uses[x.Sel].(*types.Func)
		return tf
	}
	return nil
}

// indexBySig registers fn as an address-taken candidate under the type
// of the taking expression (for methods that is the receiver-stripped
// method-value signature).
func (b *builder) indexBySig(pkg *analysis.Package, fn *Func, e ast.Expr) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if _, isSig := tv.Type.Underlying().(*types.Signature); !isSig {
		return
	}
	key := typeKey(tv.Type)
	for _, existing := range b.prog.bySig[key] {
		if existing == fn {
			return
		}
	}
	b.prog.bySig[key] = append(b.prog.bySig[key], fn)
}

func typeKey(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Path() })
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
