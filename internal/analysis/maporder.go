package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` over a map in simulation code. Go
// randomizes map iteration order per run, so a map walk whose order
// reaches event scheduling, statistics, or report output makes runs
// unreproducible byte-for-byte. The sanctioned pattern is to collect
// the keys (or values) and sort them before acting — detsort.Keys, or
// a local collect-then-sort. A range loop is therefore exempt when a
// sorting call (from package sort, slices, or internal/detsort)
// follows it inside the same top-level function — the
// collect-then-sort idiom — and flagged otherwise.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Doc:       "forbid order-dependent map iteration in simulation code; collect keys and sort (detsort.Keys)",
	AppliesTo: simScope,
	Run:       runMapOrder,
}

// sortingPkgs are the packages whose calls sanction a preceding
// collect loop.
var sortingPkgs = map[string]bool{
	"sort":                           true,
	"slices":                         true,
	modulePath + "/internal/detsort": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	// Every sorting-call position in the function, so a collect loop
	// can be matched with the sort that follows it.
	var sortCalls []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info().Uses[sel.Sel].(*types.Func)
		if ok && fn.Pkg() != nil && sortingPkgs[fn.Pkg().Path()] {
			sortCalls = append(sortCalls, call)
		}
		return true
	})
	sortedAfter := func(rng *ast.RangeStmt) bool {
		for _, c := range sortCalls {
			if c.Pos() > rng.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info().Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if sortedAfter(rng) {
			return true
		}
		pass.Reportf(rng.Pos(), "map iteration order is nondeterministic; collect keys and sort (detsort.Keys) before use")
		return true
	})
}
