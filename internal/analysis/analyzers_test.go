package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// update regenerates the golden files from current analyzer output:
//
//	go test ./internal/analysis -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/*.golden from current output")

// sharedLoader caches one loader (and its type-checked standard
// library) across the golden subtests.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// loadFixture loads the fixture package for one analyzer.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l := testLoader(t)
	pkgs, err := l.Load(filepath.Join("internal", "analysis", "testdata", "src", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

// render formats diagnostics the way the golden files store them:
// basename:line:col: [rule] message.
func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
	}
	return b.String()
}

// TestGolden runs each analyzer over its fixture package and compares
// the diagnostics byte-for-byte with testdata/<name>.golden. Each
// fixture contains at least one true positive, at least one clean
// construct, and a suppression-comment path.
func TestGolden(t *testing.T) {
	for _, a := range Analyzers {
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadFixture(t, a.Name)
			got := render(RunAnalyzer(a, pkg))
			goldenPath := filepath.Join("testdata", a.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want (%s) ---\n%s", a.Name, got, goldenPath, want)
			}
			if !strings.Contains(got, "["+a.Name+"]") {
				t.Errorf("golden output for %s demonstrates no true positive", a.Name)
			}
		})
	}
}

// TestSuppressionPaths pins the two suppression spellings: a
// rule-scoped simlint:ignore and the panicpath simlint:invariant
// annotation, on the same line and on the line above.
func TestSuppressionPaths(t *testing.T) {
	pkg := loadFixture(t, "panicpath")
	diags := RunAnalyzer(PanicPath, pkg)
	if len(diags) != 1 {
		t.Fatalf("panicpath fixture: got %d diagnostics, want exactly 1 (both invariant spellings suppressed): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 9 {
		t.Errorf("surviving diagnostic at line %d, want the unannotated panic at line 9", diags[0].Pos.Line)
	}
}

func TestAppliesToScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkg      string
		want     bool
	}{
		{DetRand, "ufsclust/internal/core", true},
		{DetRand, "ufsclust/internal/sim", true},
		{DetRand, "ufsclust/internal/analysis", false},
		{DetRand, "ufsclust/internal/detsort", false},
		{DetRand, "ufsclust/internal/runner", false},
		{DetRand, "ufsclust/cmd/simlint", false},
		{MapOrder, "ufsclust/internal/ufs", true},
		{MapOrder, "ufsclust/internal/analysis", false},
		{MapOrder, "ufsclust/internal/runner", false},
		{NoGoroutine, "ufsclust/internal/core", true},
		{NoGoroutine, "ufsclust/internal/ufs", true},
		{NoGoroutine, "ufsclust/internal/sim", false},    // the kernel owns the real channels
		{NoGoroutine, "ufsclust/internal/runner", false}, // the runner's worker pool is host-side by design
		{NoGoroutine, "ufsclust/internal/iobench", false},
		{PanicPath, "ufsclust/internal/analysis", true},
		{PanicPath, "ufsclust/cmd/fsck", false},
		{UnitMix, "ufsclust/cmd/iobench", true},
		{UnitMix, "ufsclust/internal/disk", true},
		{UnitMix, "othermodule/pkg", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkg); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}

// TestRunnerToolingExemption pins internal/runner's registration as
// host-side tooling: the full analyzer suite over the real package must
// produce exactly the diagnostics in testdata/runner.golden — an empty
// file, because the runner's goroutines and sync primitives are exempt
// by scope, not by suppression comments. If the runner is ever dropped
// from toolingPkgs, nogoroutine findings appear here first.
func TestRunnerToolingExemption(t *testing.T) {
	l := testLoader(t)
	pkgs, err := l.Load("internal/runner")
	if err != nil {
		t.Fatalf("load internal/runner: %v", err)
	}
	var got string
	for _, pkg := range pkgs {
		for _, a := range Analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			got += render(RunAnalyzer(a, pkg))
		}
	}
	goldenPath := filepath.Join("testdata", "runner.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("runner diagnostics mismatch\n--- got ---\n%s--- want (%s) ---\n%s", got, goldenPath, want)
	}
}

func TestFindAnalyzer(t *testing.T) {
	for _, a := range Analyzers {
		if FindAnalyzer(a.Name) != a {
			t.Errorf("FindAnalyzer(%q) did not return the registered analyzer", a.Name)
		}
	}
	if FindAnalyzer("nosuchrule") != nil {
		t.Error("FindAnalyzer of unknown name should return nil")
	}
}

// TestRepositoryClean is the self-hosting gate: the repository must
// produce zero unsuppressed findings under its own linter, so later
// perf PRs inherit a tree where every determinism hazard is either
// fixed or explicitly annotated.
func TestRepositoryClean(t *testing.T) {
	l := testLoader(t)
	diags, err := Run(l, []string{"./..."}, Analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
}
