// Package fixture exercises the maporder rule: bare map iteration is
// flagged; the collect-then-sort idiom and explicit suppressions pass.
package fixture

import "sort"

func bad(m map[int]string) string {
	out := ""
	for _, v := range m {
		out += v
	}
	return out
}

func badNested(m map[string]int) int {
	total := 0
	if len(m) > 0 {
		for _, v := range m {
			total += v
		}
	}
	return total
}

func collectThenSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func suppressed(m map[int]string) int {
	n := 0
	// simlint:ignore maporder -- counting entries is order-insensitive
	for range m {
		n++
	}
	return n
}

func sliceIterationIsFine(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}
