// Package fixture exercises the buspure rule: telemetry bus
// subscribers must not re-enter Emit, block the emitting process, or
// call back into model packages; pure observers pass.
package fixture

import (
	"ufsclust/internal/disk"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

var last sim.Time

func badReemit(bus *telemetry.Bus) {
	bus.Subscribe(func(ev telemetry.Event) {
		bus.Emit(telemetry.Event{Kind: ev.Kind})
	})
}

func badBlocks(bus *telemetry.Bus, p *sim.Proc, q *sim.WaitQ) {
	bus.Subscribe(func(ev telemetry.Event) {
		p.Block(q)
	})
}

func badModelCall(bus *telemetry.Bus, dk *disk.Disk, r *disk.Request) {
	bus.Subscribe(func(ev telemetry.Event) {
		dk.Submit(r)
	})
}

func goodObserver(bus *telemetry.Bus) {
	bus.Subscribe(func(ev telemetry.Event) {
		last = ev.T
	})
}

func suppressedObserver(bus *telemetry.Bus, dk *disk.Disk, r *disk.Request) {
	// simlint:ignore buspure -- audited: replays the event into a scratch model
	bus.Subscribe(func(ev telemetry.Event) {
		dk.Submit(r)
	})
}
