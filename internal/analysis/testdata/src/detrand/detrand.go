// Package fixture exercises the detrand rule: ambient time and the
// global random source are forbidden; explicit seeded sources and
// methods on them are fine.
package fixture

import (
	"math/rand"
	"time"
)

func bad() time.Time {
	start := time.Now()
	_ = time.Since(start)
	_ = rand.Intn(6)
	rand.Shuffle(3, func(i, j int) {})
	time.Sleep(time.Millisecond)
	return start
}

func good() {
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(6)
	_ = r.Float64()
}

func suppressed() time.Time {
	return time.Now() // simlint:ignore detrand -- host-side timing utility, never in sim scope
}
