// Package fixture exercises the stalesuppress meta-rule: directives
// that no longer suppress a finding are reported (bare, named, unknown
// rule, and invariant spellings); a directive that still bites is not.
package fixture

// live: the maporder finding on this range really is suppressed, so
// the directive is used and must not be reported.
func live(m map[int]string) int {
	n := 0
	// simlint:ignore maporder -- counting entries is order-insensitive
	for range m {
		n++
	}
	return n
}

func stale() int {
	x := 1 + 1 // simlint:ignore -- nothing fires here any more
	y := x * 2 // simlint:ignore detrand -- the rand call this excused was removed
	z := y + 1 // simlint:ignore nosuchrule -- typo: no such rule was ever registered
	// simlint:invariant
	return z
}
