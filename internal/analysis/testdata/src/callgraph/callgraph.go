// Package fixture is the call-graph unit-test subject: interface
// dispatch, calls through function values, and recursion, each shaped
// so the may-block fixed point has something to discover (or to
// correctly not discover).
package fixture

import "ufsclust/internal/sim"

type doer interface{ do(p *sim.Proc) }

type sleeper struct{ q sim.WaitQ }

func (s *sleeper) do(p *sim.Proc) { p.Block(&s.q) }

type noop struct{}

func (noop) do(p *sim.Proc) {}

// viaInterface dispatches through the interface: class-hierarchy
// analysis must resolve both implementations, and sleeper's makes the
// caller may-block.
func viaInterface(d doer, p *sim.Proc) { d.do(p) }

func blockFn(p *sim.Proc, q *sim.WaitQ) { p.Block(q) }

// viaValue calls through a function-typed local bound to blockFn.
func viaValue(p *sim.Proc, q *sim.WaitQ) {
	f := blockFn
	f(p, q)
}

// mutualA and mutualB recurse into each other without ever blocking:
// the fixed point must terminate and leave both clean.
func mutualA(n int) int {
	if n <= 0 {
		return 0
	}
	return mutualB(n - 1)
}

func mutualB(n int) int {
	return mutualA(n - 1)
}

// recursiveWait blocks at the bottom of its own recursion.
func recursiveWait(p *sim.Proc, q *sim.WaitQ, n int) {
	if n == 0 {
		p.Block(q)
		return
	}
	recursiveWait(p, q, n-1)
}
