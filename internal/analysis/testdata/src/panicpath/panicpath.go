// Package fixture exercises the panicpath rule: panics in library code
// are flagged unless annotated as audited invariant assertions.
package fixture

import "errors"

func bad(x int) int {
	if x < 0 {
		panic("negative input")
	}
	return x * 2
}

func betterAsError(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative input")
	}
	return x * 2, nil
}

func invariantSameLine(state int) {
	if state != 0 {
		panic("corrupt internal state") // simlint:invariant -- callers cannot reach this
	}
}

func invariantLineAbove(state int) {
	if state != 0 {
		// simlint:invariant -- checked by construction in New
		panic("corrupt internal state")
	}
}
