// Package fixture exercises the unitmix rule: additive arithmetic
// mixing sim.Time with bare integer literals is flagged; named units,
// scalar multiplication, and 0/1 pass.
package fixture

import "ufsclust/internal/sim"

func bad(t sim.Time) sim.Time {
	t = t + 100
	d := t - 4096
	t += 250
	half := t / 2
	return t + d + half
}

func good(t sim.Time) sim.Time {
	t = t + 3*sim.Millisecond
	t = t + 1
	t = t - 0
	t += sim.Microsecond
	u := 10 * sim.Microsecond // scalar * unit is how durations are built
	blocks := int64(t) / 8192 // converted out of sim.Time first: a count
	return t + u + sim.Time(blocks)
}

func suppressed(t sim.Time) sim.Time {
	return t + 42 // simlint:ignore unitmix -- calibration fudge documented elsewhere
}
