// Package fixture exercises the nogoroutine rule: raw goroutines and
// channel operations are forbidden in simulation-model code.
package fixture

func bad(ch chan int, done chan struct{}) int {
	go func() { ch <- 1 }()
	v := <-ch
	select {
	case <-done:
	default:
	}
	for x := range ch {
		v += x
	}
	return v
}

func suppressed(ch chan int) {
	// simlint:ignore nogoroutine -- host-side bridge, documented exception
	ch <- 1
}

func plainControlFlowIsFine(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
