// Package fixture exercises the blockpath rule: callbacks that run in
// scheduler context (After timers, completion hooks) and calls made
// while a buffer is held must not reach the kernel's blocking
// primitives; pure callbacks and release-before-wait sequences pass.
package fixture

import (
	"ufsclust/internal/disk"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

// mayBlock parks the process; anything reaching it transitively may
// block, which the fixed point must discover through this indirection.
func mayBlock(p *sim.Proc, q *sim.WaitQ) {
	p.Block(q)
}

func badTimer(s *sim.Sim, p *sim.Proc, q *sim.WaitQ) {
	s.After(sim.Millisecond, func() { mayBlock(p, q) })
}

func badCompletion(p *sim.Proc, q *sim.WaitQ) *disk.Request {
	return &disk.Request{Done: func() { mayBlock(p, q) }}
}

func goodTimer(s *sim.Sim, n *int) {
	s.After(sim.Millisecond, func() { *n++ })
}

func badHold(p *sim.Proc, bc *ufs.Bcache, q *sim.WaitQ) error {
	b, err := bc.Bread(p, 7)
	if err != nil {
		return err
	}
	mayBlock(p, q) // waits on something unrelated while b is locked
	bc.Brelse(b)
	return nil
}

func goodHold(p *sim.Proc, bc *ufs.Bcache, q *sim.WaitQ) error {
	b, err := bc.Bread(p, 7)
	if err != nil {
		return err
	}
	bc.Brelse(b) // released first: the region is closed before the wait
	mayBlock(p, q)
	return nil
}

func suppressedHold(p *sim.Proc, bc *ufs.Bcache, q *sim.WaitQ) error {
	b, err := bc.Bread(p, 9)
	if err != nil {
		return err
	}
	// simlint:ignore blockpath -- audited: waiting for this buffer's own I/O
	mayBlock(p, q)
	bc.Brelse(b)
	return nil
}
