// Package fixture exercises the timeflow rule: count-valued data
// (vocabulary-named variables, len results, count-returning calls)
// must not convert to sim.Time without scaling; the multiplication
// idiom and time-derived values pass.
package fixture

import "ufsclust/internal/sim"

const perBlock = 200 * sim.Microsecond

// toSectors returns a sector count; the return-taint summary carries
// the count through the call in badThroughCall.
func toSectors(n int64) int64 {
	return n * 8
}

func bad(nblocks int64) sim.Time {
	return sim.Time(nblocks)
}

func badThroughCall(t sim.Time, n int64) sim.Time {
	return t + sim.Time(toSectors(n))
}

func badLen(data []byte) sim.Time {
	return sim.Time(len(data))
}

func goodScaled(nblocks int64) sim.Time {
	return sim.Time(nblocks) * perBlock
}

func goodTimeDerived(t sim.Time) sim.Time {
	blocks := int64(t) / 8192 // still time taint: division keeps the left operand
	return sim.Time(blocks)
}

func suppressed(n int64) sim.Time {
	return sim.Time(n) // simlint:ignore timeflow -- n is pre-scaled to tick units upstream
}
