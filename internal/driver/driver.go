// Package driver implements the SunOS-style block device driver layer:
// a strategy routine feeding a disksort-ordered queue, one request active
// at the drive at a time, completion interrupts, an optional
// driver-level clustering mode (the paper's rejected alternative), the
// 56 KB DMA limit that bounds cluster sizes ("there are still drivers
// out there with 16 bit limitations"), and the B_ORDER barrier flag the
// paper proposes in Further Work.
package driver

import (
	"fmt"

	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// DefaultMaxPhys is the classic 56 KB transfer limit.
const DefaultMaxPhys = 56 * 1024

// Retry defaults: a failed transfer is retried up to DefaultMaxRetries
// times, the first after DefaultRetryBackoff and each subsequent one
// after double the previous delay.
const (
	DefaultMaxRetries   = 3
	DefaultRetryBackoff = 5 * sim.Millisecond
)

// DevError is the typed error delivered through Buf.Err when the
// driver exhausts its retries for a transfer. It wraps the drive-level
// cause, so errors.Is(err, disk.ErrMedia) matches.
type DevError struct {
	Write    bool
	Sector   int64
	Attempts int // total attempts, including the first
	Err      error
}

func (e *DevError) Error() string {
	dir := "read"
	if e.Write {
		dir = "write"
	}
	return fmt.Sprintf("driver: %s at sector %d failed after %d attempts: %v", dir, e.Sector, e.Attempts, e.Err)
}

func (e *DevError) Unwrap() error { return e.Err }

// Buf is a block I/O request, after the BSD buf struct. Blkno counts
// 512-byte sectors on the underlying device.
type Buf struct {
	Blkno int64
	Data  []byte // length is the transfer size in bytes (sector multiple)
	Write bool
	// Order marks a barrier request: neither it nor requests queued
	// after it may be sorted ahead of requests queued before it.
	Order bool
	// Vec marks a transfer issued directly by the list-I/O vectored read
	// path (core's Readv). Sieving envelopes and vectored writes flow
	// through the shared demand-read and delayed-write machinery and are
	// not tagged, so driver.vec_queued counts list-read transfers only.
	Vec bool
	// Iodone is called in interrupt (scheduler) context at completion.
	Iodone func(*Buf)
	// Err is set before Iodone runs when the transfer failed for good
	// (a *DevError wrapping the drive's error). A coalesced cluster's
	// error is copied to every child.
	Err error

	queuedAt sim.Time
	parent   *clusterBuf
	attempts int // failed attempts so far
}

// Sectors returns the transfer length in sectors.
func (b *Buf) Sectors() int { return len(b.Data) / disk.SectorSize }

// End returns the sector just past the transfer.
func (b *Buf) End() int64 { return b.Blkno + int64(b.Sectors()) }

// clusterBuf is a driver-coalesced run of adjacent Bufs.
type clusterBuf struct {
	children []*Buf
}

// Stats counts driver-level activity.
type Stats struct {
	Queued      int64 // bufs accepted by Strategy
	Issued      int64 // requests sent to the drive (after coalescing)
	Coalesced   int64 // bufs absorbed into an existing queued request
	MaxQueue    int   // high-water queue depth
	QueueWait   sim.Time
	SortSkipped int64 // inserts pinned behind a B_ORDER barrier
	Retries     int64 // failed transfers rescheduled
	Giveups     int64 // transfers abandoned after exhausting retries
	VecQueued   int64 // bufs tagged by the vectored list-I/O read path
}

// Config selects driver behaviour.
type Config struct {
	MaxPhys int // maximum single transfer in bytes; 0 means DefaultMaxPhys
	// Sort enables disksort elevator ordering (some drivers rely on
	// intelligent controllers instead; the paper notes "not all drivers
	// call disksort").
	Sort bool
	// Coalesce enables driver-level clustering of adjacent queued
	// requests — the "driver clustering" alternative the paper rejects
	// because it only helps writes and still traverses the file system
	// per block.
	Coalesce bool
	// MaxRetries is how many times a failed transfer is reissued before
	// the driver gives up and delivers a *DevError. 0 means
	// DefaultMaxRetries; negative disables retries entirely.
	MaxRetries int
	// RetryBackoff is the delay before the first retry; it doubles on
	// each subsequent attempt (classic exponential backoff). 0 means
	// DefaultRetryBackoff.
	RetryBackoff sim.Time
	// Costs are charged per operation when a CPU model is attached.
	StrategyInstr  int64 // per Strategy call (queue insert + sort)
	InterruptInstr int64 // per completion interrupt
}

// DefaultConfig returns a sorting, non-coalescing driver with
// representative instruction costs.
func DefaultConfig() Config {
	return Config{
		MaxPhys:        DefaultMaxPhys,
		Sort:           true,
		MaxRetries:     DefaultMaxRetries,
		RetryBackoff:   DefaultRetryBackoff,
		StrategyInstr:  1500,
		InterruptInstr: 2500,
	}
}

// Driver glues the file system to one block device — a bare drive or a
// volume. It keeps up to Disk.Channels() requests in flight at once, so
// a multi-spindle volume overlaps member seeks; a single drive reports
// one channel and gets the classic one-request-at-the-device behaviour.
type Driver struct {
	Cfg  Config
	Disk disk.Device
	CPU  *cpu.Model // may be nil
	Sim  *sim.Sim

	queue    []*Buf // pending, in issue order (disksort-maintained)
	inflight int    // requests issued and not yet completed
	barrier  bool   // a B_ORDER request is in flight; issue nothing past it
	headAt   int64  // last issued block, the elevator position

	Stats Stats

	// Telemetry; all nil (and nil-safe) until AttachTelemetry.
	bus           *telemetry.Bus
	depthH, xferH *telemetry.Histogram
}

// AttachTelemetry registers the driver's counters, the queue-depth
// histogram (sampled on every enqueue and dequeue), and the per-issue
// transfer-size histogram — the cluster-size distribution the paper's
// throughput argument rests on.
func (dr *Driver) AttachTelemetry(tel *telemetry.Telemetry) {
	dr.bus = tel.Bus
	r := tel.Reg
	r.Counter("driver.queued", func() int64 { return dr.Stats.Queued })
	r.Counter("driver.issued", func() int64 { return dr.Stats.Issued })
	r.Counter("driver.coalesced", func() int64 { return dr.Stats.Coalesced })
	r.Counter("driver.sort_skipped", func() int64 { return dr.Stats.SortSkipped })
	r.Counter("driver.retries", func() int64 { return dr.Stats.Retries })
	r.Counter("driver.giveups", func() int64 { return dr.Stats.Giveups })
	r.Counter("driver.vec_queued", func() int64 { return dr.Stats.VecQueued })
	r.Counter("driver.queue_wait_ns", func() int64 { return int64(dr.Stats.QueueWait) })
	r.Gauge("driver.max_queue", func() int64 { return int64(dr.Stats.MaxQueue) })
	r.Gauge("driver.queue_len", func() int64 { return int64(len(dr.queue)) })
	dr.depthH = r.Hist(telemetry.NewHistogram("driver.qdepth", telemetry.UnitCount, telemetry.DepthBounds()))
	dr.xferH = r.Hist(telemetry.NewHistogram("driver.xfer_sectors", telemetry.UnitCount, telemetry.SizeBounds()))
}

// New returns a driver for d. cpuModel may be nil for untimed tests.
func New(s *sim.Sim, d disk.Device, cpuModel *cpu.Model, cfg Config) *Driver {
	if cfg.MaxPhys == 0 {
		cfg.MaxPhys = DefaultMaxPhys
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.MaxPhys%disk.SectorSize != 0 {
		panic("driver: MaxPhys not sector aligned") // simlint:invariant -- harness configuration assertion at construction
	}
	return &Driver{Cfg: cfg, Disk: d, CPU: cpuModel, Sim: s}
}

// MaxPhys returns the largest transfer the driver accepts, in bytes.
// File system clustering sizes its clusters to fit.
func (dr *Driver) MaxPhys() int { return dr.Cfg.MaxPhys }

// QueueLen returns the number of queued (not yet issued) requests.
func (dr *Driver) QueueLen() int { return len(dr.queue) }

// Strategy accepts a request, queues it, and starts the drive if idle.
// It does not block: completion is delivered through b.Iodone. The
// caller must be a simulation process (CPU is charged to it) or, with a
// nil proc, scheduler context (no CPU charge).
func (dr *Driver) Strategy(p *sim.Proc, b *Buf) {
	if len(b.Data) == 0 || len(b.Data)%disk.SectorSize != 0 {
		panic("driver: transfer not a positive sector multiple") // simlint:invariant -- callers construct block-aligned transfers
	}
	if len(b.Data) > dr.Cfg.MaxPhys {
		panic(fmt.Sprintf("driver: transfer %d exceeds maxphys %d", len(b.Data), dr.Cfg.MaxPhys)) // simlint:invariant -- core caps clusters at maxphys/bsize
	}
	if b.Blkno < 0 || b.End() > dr.Disk.Geom().TotalSectors() {
		panic("driver: transfer outside device") // simlint:invariant -- fs allocator never hands out blocks past the device
	}
	if dr.CPU != nil && p != nil {
		dr.CPU.Use(p, cpu.Driver, dr.Cfg.StrategyInstr)
	}
	b.queuedAt = dr.Sim.Now()
	dr.Stats.Queued++
	if b.Vec {
		dr.Stats.VecQueued++
	}

	if dr.Cfg.Coalesce && dr.tryCoalesce(b) {
		dr.Stats.Coalesced++
	} else {
		dr.insert(b)
	}
	if n := len(dr.queue); n > dr.Stats.MaxQueue {
		dr.Stats.MaxQueue = n
	}
	dr.depthH.Observe(int64(len(dr.queue)))
	dr.bus.Emit(telemetry.Event{
		T:      dr.Sim.Now(),
		Kind:   telemetry.EvIOQueue,
		Sector: b.Blkno,
		Bytes:  int64(len(b.Data)),
		Depth:  int64(len(dr.queue)),
		Write:  b.Write,
	})
	dr.start()
}

// insert places b in the queue using the disksort discipline: two
// ascending runs, the first at or beyond the current head position, the
// second behind it (the wrap). B_ORDER barriers pin the tail.
func (dr *Driver) insert(b *Buf) {
	if !dr.Cfg.Sort || b.Order {
		dr.queue = append(dr.queue, b)
		return
	}
	// Find the first slot we may sort into: after the last barrier.
	lo := 0
	for i := len(dr.queue) - 1; i >= 0; i-- {
		if dr.queue[i].Order {
			lo = i + 1
			break
		}
	}
	if lo > 0 {
		dr.Stats.SortSkipped++
	}
	pos := len(dr.queue)
	for i := lo; i < len(dr.queue); i++ {
		if dr.before(b, dr.queue[i]) {
			pos = i
			break
		}
	}
	dr.queue = append(dr.queue, nil)
	copy(dr.queue[pos+1:], dr.queue[pos:])
	dr.queue[pos] = b
}

// before reports whether a should be serviced ahead of b under a one-way
// elevator sweeping upward from the current head position.
func (dr *Driver) before(a, b *Buf) bool {
	h := dr.headAt
	aFwd, bFwd := a.Blkno >= h, b.Blkno >= h
	if aFwd != bFwd {
		return aFwd
	}
	return a.Blkno < b.Blkno
}

// tryCoalesce merges b into an adjacent queued request of the same
// direction if the combined transfer fits MaxPhys.
func (dr *Driver) tryCoalesce(b *Buf) bool {
	for i, q := range dr.queue {
		if q.Write != b.Write || q.Order || b.Order {
			continue
		}
		var merged *Buf
		switch {
		case q.End() == b.Blkno: // b extends q upward
			merged = dr.merge(q, b)
		case b.End() == q.Blkno: // b extends q downward
			merged = dr.merge(b, q)
		default:
			continue
		}
		if merged == nil {
			continue
		}
		dr.queue[i] = merged
		return true
	}
	return false
}

// merge combines lo followed by hi into one cluster buf, or returns nil
// if the result would exceed MaxPhys.
func (dr *Driver) merge(lo, hi *Buf) *Buf {
	total := len(lo.Data) + len(hi.Data)
	if total > dr.Cfg.MaxPhys {
		return nil
	}
	var children []*Buf
	for _, b := range []*Buf{lo, hi} {
		if b.parent != nil {
			children = append(children, b.parent.children...)
		} else {
			children = append(children, b)
		}
	}
	cl := &clusterBuf{children: children}
	m := &Buf{
		Blkno:    lo.Blkno,
		Data:     make([]byte, total),
		Write:    lo.Write,
		queuedAt: lo.queuedAt,
		parent:   cl,
	}
	if m.Write {
		// Gather child data now; it is already final.
		off := 0
		for _, c := range children {
			copy(m.Data[off:], c.Data)
			off += len(c.Data)
		}
	}
	return m
}

// start issues queued requests while the device has a free channel. A
// single drive has one channel, so at most one request is outstanding
// (the classic strategy/interrupt cycle); a volume has one per member,
// letting the elevator keep every spindle seeking at once. A B_ORDER
// barrier is never issued alongside other requests: it waits for the
// device to drain, and nothing is issued past it while it runs.
func (dr *Driver) start() {
	for !dr.barrier && len(dr.queue) > 0 && dr.inflight < dr.Disk.Channels() {
		b := dr.queue[0]
		if b.Order && dr.inflight > 0 {
			return // barrier: drain the device first
		}
		copy(dr.queue, dr.queue[1:])
		dr.queue = dr.queue[:len(dr.queue)-1]
		dr.inflight++
		dr.headAt = b.Blkno
		dr.Stats.Issued++
		dr.Stats.QueueWait += dr.Sim.Now() - b.queuedAt
		dr.depthH.Observe(int64(len(dr.queue)))
		dr.xferH.Observe(int64(b.Sectors()))
		req := &disk.Request{
			Sector: b.Blkno,
			Count:  b.Sectors(),
			Write:  b.Write,
			Data:   b.Data,
		}
		req.Done = func() { dr.complete(b, req.Err) }
		if b.Order {
			dr.barrier = true // nothing passes until it completes
		}
		dr.Disk.Submit(req)
	}
}

// complete runs in scheduler context: charge the interrupt, retry or
// give up on a failed transfer, scatter coalesced reads, deliver
// iodone callbacks, and start the next request.
func (dr *Driver) complete(b *Buf, devErr error) {
	if dr.CPU != nil {
		dr.CPU.ChargeInterrupt(cpu.Interrupt, dr.Cfg.InterruptInstr)
	}
	dr.inflight--
	if b.Order {
		dr.barrier = false
	}
	if devErr != nil && b.attempts < dr.Cfg.MaxRetries {
		// Transient-error path: back off (doubling per attempt), then
		// reissue at the head of the queue. The drive is released in
		// the meantime, so queued requests are not starved by the
		// backoff delay.
		b.attempts++
		dr.Stats.Retries++
		delay := dr.Cfg.RetryBackoff << (b.attempts - 1)
		dr.bus.Emit(telemetry.Event{
			T:      dr.Sim.Now(),
			Kind:   telemetry.EvIORetry,
			Sector: b.Blkno,
			Bytes:  int64(len(b.Data)),
			Depth:  int64(len(dr.queue)),
			Dur:    delay,
			Write:  b.Write,
		})
		dr.Sim.After(delay, func() { dr.requeue(b) })
		dr.start()
		return
	}
	if devErr != nil {
		dr.Stats.Giveups++
		b.Err = &DevError{Write: b.Write, Sector: b.Blkno, Attempts: b.attempts + 1, Err: devErr}
		dr.bus.Emit(telemetry.Event{
			T:      dr.Sim.Now(),
			Kind:   telemetry.EvIOGiveup,
			Sector: b.Blkno,
			Bytes:  int64(len(b.Data)),
			Depth:  int64(len(dr.queue)),
			Dur:    dr.Sim.Now() - b.queuedAt,
			Write:  b.Write,
		})
	}
	dr.bus.Emit(telemetry.Event{
		T:      dr.Sim.Now(),
		Kind:   telemetry.EvIODone,
		Sector: b.Blkno,
		Bytes:  int64(len(b.Data)),
		Depth:  int64(len(dr.queue)),
		Dur:    dr.Sim.Now() - b.queuedAt,
		Write:  b.Write,
	})
	if b.parent != nil {
		off := 0
		for _, c := range b.parent.children {
			c.Err = b.Err
			if !b.Write && b.Err == nil {
				copy(c.Data, b.Data[off:off+len(c.Data)])
			}
			off += len(c.Data)
			if c.Iodone != nil {
				c.Iodone(c)
			}
		}
	} else if b.Iodone != nil {
		b.Iodone(b)
	}
	dr.start()
}

// requeue reinserts a transfer at the head of the queue after its
// retry backoff: it was already the elevator's chosen request, so it
// keeps its turn (and its original queuedAt, making the final io_done
// latency cover all attempts).
func (dr *Driver) requeue(b *Buf) {
	dr.queue = append(dr.queue, nil)
	copy(dr.queue[1:], dr.queue)
	dr.queue[0] = b
	dr.start()
}

// IO is a synchronous convenience: Strategy plus wait for completion.
func (dr *Driver) IO(p *sim.Proc, b *Buf) {
	done := false
	var q sim.WaitQ
	prev := b.Iodone
	b.Iodone = func(bb *Buf) {
		done = true
		q.WakeAll()
		if prev != nil {
			prev(bb)
		}
	}
	dr.Strategy(p, b)
	for !done {
		p.Block(&q)
	}
}
