package driver

import (
	"bytes"
	"testing"

	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/sim"
)

func newRig(t *testing.T, coalesce bool) (*sim.Sim, *Driver, *disk.Disk) {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := disk.New(s, "d0", disk.DefaultParams())
	cfg := DefaultConfig()
	cfg.Coalesce = coalesce
	dr := New(s, d, cpu.New(s, 12), cfg)
	return s, dr, d
}

func TestSynchronousRoundTrip(t *testing.T) {
	s, dr, _ := newRig(t, false)
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i % 131)
	}
	got := make([]byte, 8192)
	s.Spawn("io", func(p *sim.Proc) {
		w := &Buf{Blkno: 320, Data: append([]byte(nil), data...), Write: true}
		dr.IO(p, w)
		dr.IO(p, &Buf{Blkno: 320, Data: got})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("driver round trip mismatch")
	}
	if dr.Stats.Issued != 2 {
		t.Fatalf("issued = %d, want 2", dr.Stats.Issued)
	}
}

func TestMaxPhysEnforced(t *testing.T) {
	s, dr, _ := newRig(t, false)
	s.Spawn("io", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("oversized transfer accepted")
			}
		}()
		dr.Strategy(p, &Buf{Blkno: 0, Data: make([]byte, DefaultMaxPhys+512)})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDisksortOrdersByBlock(t *testing.T) {
	// Queue far, near, middle while the drive is busy; service order
	// after the active request should be ascending.
	s, dr, _ := newRig(t, false)
	var order []int64
	mk := func(blk int64) *Buf {
		return &Buf{Blkno: blk, Data: make([]byte, 512), Iodone: func(b *Buf) { order = append(order, b.Blkno) }}
	}
	s.Spawn("io", func(p *sim.Proc) {
		dr.Strategy(p, mk(10)) // becomes active immediately
		dr.Strategy(p, mk(500000))
		dr.Strategy(p, mk(1000))
		dr.Strategy(p, mk(200000))
		p.Sleep(2 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 1000, 200000, 500000}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

func TestDisksortElevatorWrap(t *testing.T) {
	// Requests behind the head go in the second run: head at 200000,
	// inserts at 10 and 300000 → 300000 first, then wrap to 10.
	s, dr, _ := newRig(t, false)
	var order []int64
	mk := func(blk int64) *Buf {
		return &Buf{Blkno: blk, Data: make([]byte, 512), Iodone: func(b *Buf) { order = append(order, b.Blkno) }}
	}
	s.Spawn("io", func(p *sim.Proc) {
		dr.Strategy(p, mk(200000)) // active; head at 200000
		dr.Strategy(p, mk(10))
		dr.Strategy(p, mk(300000))
		p.Sleep(2 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{200000, 300000, 10}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

func TestNoSortFIFO(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := disk.New(s, "d0", disk.DefaultParams())
	cfg := DefaultConfig()
	cfg.Sort = false
	dr := New(s, d, nil, cfg)
	var order []int64
	mk := func(blk int64) *Buf {
		return &Buf{Blkno: blk, Data: make([]byte, 512), Iodone: func(b *Buf) { order = append(order, b.Blkno) }}
	}
	s.Spawn("io", func(p *sim.Proc) {
		dr.Strategy(p, mk(10))
		dr.Strategy(p, mk(500000))
		dr.Strategy(p, mk(1000))
		p.Sleep(2 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 500000, 1000}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v (FIFO)", order, want)
		}
	}
}

func TestOrderBarrierPreventsReorder(t *testing.T) {
	// A B_ORDER request pins everything queued after it, even blocks
	// that sort earlier.
	s, dr, _ := newRig(t, false)
	var order []int64
	mk := func(blk int64, ord bool) *Buf {
		return &Buf{Blkno: blk, Order: ord, Data: make([]byte, 512), Iodone: func(b *Buf) { order = append(order, b.Blkno) }}
	}
	s.Spawn("io", func(p *sim.Proc) {
		dr.Strategy(p, mk(10, false)) // active
		dr.Strategy(p, mk(600000, false))
		dr.Strategy(p, mk(500000, true)) // barrier
		dr.Strategy(p, mk(1000, false))  // would sort first without barrier
		p.Sleep(3 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 600000, 500000, 1000}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
	if dr.Stats.SortSkipped == 0 {
		t.Fatal("barrier never constrained an insert")
	}
}

func TestCoalesceAdjacentWrites(t *testing.T) {
	s, dr, d := newRig(t, true)
	const bsize = 8192
	nDone := 0
	s.Spawn("io", func(p *sim.Proc) {
		// Hold the drive busy with a far request so the adjacent writes
		// can meet in the queue.
		busy := &Buf{Blkno: 700000, Data: make([]byte, 512)}
		dr.Strategy(p, busy)
		for i := 0; i < 4; i++ {
			data := make([]byte, bsize)
			for j := range data {
				data[j] = byte(i)
			}
			b := &Buf{Blkno: int64(1000 + i*(bsize/512)), Data: data, Write: true,
				Iodone: func(*Buf) { nDone++ }}
			dr.Strategy(p, b)
		}
		p.Sleep(2 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if nDone != 4 {
		t.Fatalf("iodone count = %d, want 4", nDone)
	}
	if dr.Stats.Coalesced != 3 {
		t.Fatalf("coalesced = %d, want 3", dr.Stats.Coalesced)
	}
	// 1 busy + 1 merged write should have reached the drive.
	if got := d.Stats.Writes; got != 1 {
		t.Fatalf("disk write requests = %d, want 1 (merged)", got)
	}
	// Verify the merged data landed correctly.
	buf := make([]byte, bsize)
	for i := 0; i < 4; i++ {
		d.ReadImage(int64(1000+i*(bsize/512)), buf)
		for _, b := range buf {
			if b != byte(i) {
				t.Fatalf("block %d corrupted after coalesced write", i)
			}
		}
	}
}

func TestCoalesceScattersReads(t *testing.T) {
	s, dr, d := newRig(t, true)
	const bsize = 8192
	// Prepare distinct content.
	for i := 0; i < 3; i++ {
		data := make([]byte, bsize)
		for j := range data {
			data[j] = byte(100 + i)
		}
		d.WriteImage(int64(2000+i*(bsize/512)), data)
	}
	bufs := make([][]byte, 3)
	s.Spawn("io", func(p *sim.Proc) {
		busy := &Buf{Blkno: 700000, Data: make([]byte, 512)}
		dr.Strategy(p, busy)
		for i := 0; i < 3; i++ {
			bufs[i] = make([]byte, bsize)
			dr.Strategy(p, &Buf{Blkno: int64(2000 + i*(bsize/512)), Data: bufs[i]})
		}
		p.Sleep(2 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for _, b := range bufs[i] {
			if b != byte(100+i) {
				t.Fatalf("scattered read %d has wrong data %d", i, b)
			}
		}
	}
	if dr.Stats.Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", dr.Stats.Coalesced)
	}
}

func TestCoalesceRespectsMaxPhys(t *testing.T) {
	s, dr, d := newRig(t, true)
	const bsize = 8192
	n := DefaultMaxPhys/bsize + 2 // 9 blocks: 7 fit, 2 spill
	s.Spawn("io", func(p *sim.Proc) {
		busy := &Buf{Blkno: 700000, Data: make([]byte, 512)}
		dr.Strategy(p, busy)
		for i := 0; i < n; i++ {
			dr.Strategy(p, &Buf{Blkno: int64(3000 + i*(bsize/512)), Data: make([]byte, bsize), Write: true})
		}
		p.Sleep(2 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Every disk request must be within MaxPhys.
	if d.Stats.SectorsWritten != int64(n*bsize/512) {
		t.Fatalf("sectors written = %d, want %d", d.Stats.SectorsWritten, n*bsize/512)
	}
	if d.Stats.Writes < 2 {
		t.Fatalf("disk writes = %d; a single request would exceed maxphys", d.Stats.Writes)
	}
}

func TestDriverClusteringHelpsWritesNotReads(t *testing.T) {
	// The paper rejects driver clustering: "driver clustering helps
	// only writes ... reads are synchronous, so there can be at most
	// two [requests] in the queue at once."
	run := func(write bool) int64 {
		s, dr, d := newRig(t, true)
		const bsize = 8192
		const nblk = 24
		s.Spawn("io", func(p *sim.Proc) {
			if write {
				// Asynchronous writes: fire and forget.
				for i := 0; i < nblk; i++ {
					dr.Strategy(p, &Buf{Blkno: int64(5000 + i*(bsize/512)), Data: make([]byte, bsize), Write: true})
				}
				p.Sleep(2 * sim.Second)
			} else {
				// Synchronous reads: wait for each.
				for i := 0; i < nblk; i++ {
					dr.IO(p, &Buf{Blkno: int64(5000 + i*(bsize/512)), Data: make([]byte, bsize)})
				}
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if write {
			return d.Stats.Writes
		}
		return d.Stats.Reads
	}
	writes := run(true)
	reads := run(false)
	if writes >= int64(24) {
		t.Fatalf("async writes not coalesced: %d disk requests", writes)
	}
	if reads != 24 {
		t.Fatalf("sync reads coalesced (%d requests): impossible with one outstanding", reads)
	}
}

func TestStrategyChargesCPU(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := disk.New(s, "d0", disk.DefaultParams())
	m := cpu.New(s, 12)
	dr := New(s, d, m, DefaultConfig())
	s.Spawn("io", func(p *sim.Proc) {
		dr.IO(p, &Buf{Blkno: 0, Data: make([]byte, 512)})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	bk := m.Buckets()
	if bk[cpu.Driver].Count != 1 || bk[cpu.Driver].Instr == 0 {
		t.Fatalf("driver bucket = %+v, want one charged call", bk[cpu.Driver])
	}
	if bk[cpu.Interrupt].Count != 1 {
		t.Fatalf("interrupt bucket = %+v, want one charge", bk[cpu.Interrupt])
	}
}

func TestCoalesceSkipsOrderedRequests(t *testing.T) {
	// B_ORDER barriers must never be folded into a cluster: their
	// position in the queue is their meaning.
	s, dr, _ := newRig(t, true)
	const bsize = 8192
	s.Spawn("io", func(p *sim.Proc) {
		busy := &Buf{Blkno: 700000, Data: make([]byte, 512)}
		dr.Strategy(p, busy)
		dr.Strategy(p, &Buf{Blkno: 1000, Data: make([]byte, bsize), Write: true, Order: true})
		dr.Strategy(p, &Buf{Blkno: 1000 + bsize/512, Data: make([]byte, bsize), Write: true})
		p.Sleep(2 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if dr.Stats.Coalesced != 0 {
		t.Fatalf("coalesced = %d; ordered request was merged", dr.Stats.Coalesced)
	}
}

func TestQueueWaitAccounting(t *testing.T) {
	s, dr, _ := newRig(t, false)
	s.Spawn("io", func(p *sim.Proc) {
		dr.Strategy(p, &Buf{Blkno: 0, Data: make([]byte, 512)})
		dr.Strategy(p, &Buf{Blkno: 16, Data: make([]byte, 512)})
		p.Sleep(sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if dr.Stats.QueueWait <= 0 {
		t.Fatal("second request recorded no queue wait")
	}
	if dr.Stats.MaxQueue != 1 {
		t.Fatalf("maxQueue = %d, want 1", dr.Stats.MaxQueue)
	}
}

func TestIodoneRunsInSchedulerContext(t *testing.T) {
	// Completion callbacks come from an After(0) event, so they may
	// wake processes but must not be running as one.
	s, dr, _ := newRig(t, false)
	var sawCurrent bool
	s.Spawn("io", func(p *sim.Proc) {
		done := false
		var q sim.WaitQ
		dr.Strategy(p, &Buf{Blkno: 0, Data: make([]byte, 512), Iodone: func(*Buf) {
			sawCurrent = s.Current() != nil
			done = true
			q.WakeAll()
		}})
		for !done {
			p.Block(&q)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sawCurrent {
		t.Fatal("iodone ran in process context")
	}
}
