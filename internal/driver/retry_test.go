package driver

import (
	"bytes"
	"errors"
	"testing"

	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/fault"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// newFaultRig builds a sim + disk + driver with telemetry attached and
// a fault injector executing plan — the same wiring order as the root
// machine (injector last, so faults armed by an io_start are visible to
// the drive's TakeMedia before the emission returns).
func newFaultRig(t *testing.T, plan fault.Plan, coalesce bool) (*sim.Sim, *Driver, *disk.Disk, *telemetry.Telemetry) {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	tel := telemetry.New()
	d := disk.New(s, "d0", disk.DefaultParams())
	cfg := DefaultConfig()
	cfg.Coalesce = coalesce
	dr := New(s, d, cpu.New(s, 12), cfg)
	inj, err := fault.NewInjector(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	d.AttachFaults(inj)
	d.AttachTelemetry(tel)
	dr.AttachTelemetry(tel)
	inj.AttachTelemetry(tel)
	return s, dr, d, tel
}

func TestTransientStormDrains(t *testing.T) {
	// The first write fails twice (anchor + first retry), then the
	// drive recovers: the caller sees success, the data lands intact.
	s, dr, d, tel := newFaultRig(t, fault.Plan{Rules: []fault.Rule{fault.FailNth(1, fault.Writes, 2)}}, false)
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i % 251)
	}
	var b *Buf
	s.Spawn("io", func(p *sim.Proc) {
		b = &Buf{Blkno: 320, Data: append([]byte(nil), data...), Write: true}
		dr.IO(p, b)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Err != nil {
		t.Fatalf("transient storm surfaced an error: %v", b.Err)
	}
	got := make([]byte, len(data))
	d.ReadImage(320, got)
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted through the retry path")
	}
	if dr.Stats.Retries != 2 || dr.Stats.Giveups != 0 {
		t.Fatalf("retries=%d giveups=%d, want 2/0", dr.Stats.Retries, dr.Stats.Giveups)
	}
	if d.Stats.MediaErrors != 2 {
		t.Fatalf("disk media errors = %d, want 2", d.Stats.MediaErrors)
	}
	// Both queues drained: the gauges the root Snapshot exposes are 0.
	snap := tel.Reg.Snapshot(s.Now())
	if q := snap.Get("driver.queue_len"); q != 0 {
		t.Fatalf("driver.queue_len = %d after drain", q)
	}
	if q := snap.Get("disk.queue_len"); q != 0 {
		t.Fatalf("disk.queue_len = %d after drain", q)
	}
	if got := snap.Get("fault.media_injected"); got != 2 {
		t.Fatalf("fault.media_injected = %d, want 2", got)
	}
}

func TestGiveupDeliversTypedError(t *testing.T) {
	s, dr, _, tel := newFaultRig(t, fault.Plan{Rules: []fault.Rule{fault.FailNthHard(1, fault.Writes)}}, false)
	var b *Buf
	s.Spawn("io", func(p *sim.Proc) {
		b = &Buf{Blkno: 640, Data: make([]byte, 8192), Write: true}
		dr.IO(p, b)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Err == nil {
		t.Fatal("hard fault produced no error")
	}
	var de *DevError
	if !errors.As(b.Err, &de) {
		t.Fatalf("error is %T, want *DevError", b.Err)
	}
	if !errors.Is(b.Err, disk.ErrMedia) {
		t.Fatalf("error %v does not unwrap to disk.ErrMedia", b.Err)
	}
	if !de.Write || de.Sector != 640 || de.Attempts != DefaultMaxRetries+1 {
		t.Fatalf("DevError = %+v, want write sector 640 after %d attempts", de, DefaultMaxRetries+1)
	}
	if dr.Stats.Retries != int64(DefaultMaxRetries) || dr.Stats.Giveups != 1 {
		t.Fatalf("retries=%d giveups=%d, want %d/1", dr.Stats.Retries, dr.Stats.Giveups, DefaultMaxRetries)
	}
	snap := tel.Reg.Snapshot(s.Now())
	if q := snap.Get("driver.queue_len"); q != 0 {
		t.Fatalf("driver.queue_len = %d after give-up", q)
	}
	if got := snap.Get("driver.giveups"); got != 1 {
		t.Fatalf("driver.giveups = %d, want 1", got)
	}
}

func TestRetryBackoffDoubles(t *testing.T) {
	s, dr, _, tel := newFaultRig(t, fault.Plan{Rules: []fault.Rule{fault.FailNthHard(1, fault.Writes)}}, false)
	var delays []sim.Time
	tel.Bus.Subscribe(func(ev telemetry.Event) {
		if ev.Kind == telemetry.EvIORetry {
			delays = append(delays, ev.Dur)
		}
	})
	s.Spawn("io", func(p *sim.Proc) {
		dr.IO(p, &Buf{Blkno: 320, Data: make([]byte, 512), Write: true})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(delays) != DefaultMaxRetries {
		t.Fatalf("retry events = %d, want %d", len(delays), DefaultMaxRetries)
	}
	for i, d := range delays {
		if want := DefaultRetryBackoff << i; d != want {
			t.Fatalf("retry %d backoff = %v, want %v (doubling)", i+1, d, want)
		}
	}
}

func TestRetryDoesNotStarveQueue(t *testing.T) {
	// While the failed transfer sits in its backoff, the drive is
	// released and queued requests proceed.
	s, dr, _, _ := newFaultRig(t, fault.Plan{Rules: []fault.Rule{fault.FailNth(1, fault.Writes, 1)}}, false)
	var order []int64
	mk := func(blk int64, write bool) *Buf {
		return &Buf{Blkno: blk, Write: write, Data: make([]byte, 512),
			Iodone: func(b *Buf) { order = append(order, b.Blkno) }}
	}
	s.Spawn("io", func(p *sim.Proc) {
		dr.Strategy(p, mk(320, true)) // fails once, retries after backoff
		dr.Strategy(p, mk(1000, false))
		p.Sleep(2 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("iodones = %v, want both requests completed", order)
	}
	// The read completes before the retried write: the backoff did not
	// hold the drive.
	if order[0] != 1000 {
		t.Fatalf("completion order = %v; backoff starved the queue", order)
	}
	if dr.Stats.Retries != 1 || dr.Stats.Giveups != 0 {
		t.Fatalf("retries=%d giveups=%d, want 1/0", dr.Stats.Retries, dr.Stats.Giveups)
	}
}

func TestClusterChildrenInheritError(t *testing.T) {
	// A coalesced write that dies delivers the typed error to every
	// child buffer, not just the merged parent.
	s, dr, _, _ := newFaultRig(t, fault.Plan{Rules: []fault.Rule{fault.FailNthHard(2, fault.Writes)}}, true)
	const bsize = 8192
	var errs []error
	s.Spawn("io", func(p *sim.Proc) {
		// Hold the drive busy so the adjacent writes meet in the queue.
		dr.Strategy(p, &Buf{Blkno: 700000, Data: make([]byte, 512), Write: true})
		for i := 0; i < 3; i++ {
			dr.Strategy(p, &Buf{Blkno: int64(1000 + i*(bsize/512)), Data: make([]byte, bsize), Write: true,
				Iodone: func(b *Buf) { errs = append(errs, b.Err) }})
		}
		p.Sleep(2 * sim.Second)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if dr.Stats.Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", dr.Stats.Coalesced)
	}
	if len(errs) != 3 {
		t.Fatalf("child iodones = %d, want 3", len(errs))
	}
	for i, err := range errs {
		if !errors.Is(err, disk.ErrMedia) {
			t.Fatalf("child %d error = %v, want disk.ErrMedia", i, err)
		}
	}
}

func TestRetriesDisabled(t *testing.T) {
	// MaxRetries < 0 turns retries off: the first failure is final.
	s := sim.New(1)
	t.Cleanup(s.Close)
	tel := telemetry.New()
	d := disk.New(s, "d0", disk.DefaultParams())
	cfg := DefaultConfig()
	cfg.MaxRetries = -1
	dr := New(s, d, nil, cfg)
	inj, err := fault.NewInjector(s, fault.Plan{Rules: []fault.Rule{fault.FailNth(1, fault.Writes, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	d.AttachFaults(inj)
	d.AttachTelemetry(tel)
	dr.AttachTelemetry(tel)
	inj.AttachTelemetry(tel)
	var b *Buf
	s.Spawn("io", func(p *sim.Proc) {
		b = &Buf{Blkno: 320, Data: make([]byte, 512), Write: true}
		dr.IO(p, b)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Err == nil {
		t.Fatal("no error with retries disabled")
	}
	if dr.Stats.Retries != 0 || dr.Stats.Giveups != 1 {
		t.Fatalf("retries=%d giveups=%d, want 0/1", dr.Stats.Retries, dr.Stats.Giveups)
	}
}
