package fault

import (
	"strings"
	"testing"

	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string // "" = valid; else substring of the error
	}{
		{"empty", Plan{}, ""},
		{"transient", Plan{Rules: []Rule{FailNth(3, Writes, 2)}}, ""},
		{"hard", Plan{Rules: []Rule{FailNthHard(1, Any)}}, ""},
		{"cut-time", Plan{Rules: []Rule{CutAtTime(5 * sim.Millisecond)}}, ""},
		{"cut-event", Plan{Rules: []Rule{CutAtEvent(telemetry.EvClusterPush, 2)}}, ""},
		{"media-bad-anchor",
			Plan{Rules: []Rule{{Match: Match{Event: telemetry.EvIODone}, Kind: MediaTransient}}},
			"anchor on io_start"},
		{"media-with-at",
			Plan{Rules: []Rule{{Match: Match{Event: telemetry.EvIOStart}, Kind: MediaHard, At: 1}}},
			"power-cut only"},
		{"media-negative-fails",
			Plan{Rules: []Rule{{Match: Match{Event: telemetry.EvIOStart}, Kind: MediaTransient, Fails: -1}}},
			"negative Fails"},
		{"cut-negative-time", Plan{Rules: []Rule{{Kind: PowerCut, At: -1}}}, "negative cut time"},
		{"cut-with-fails", Plan{Rules: []Rule{{Kind: PowerCut, At: 1, Fails: 2}}}, "media only"},
		{"unknown-kind", Plan{Rules: []Rule{{Match: Match{Event: telemetry.EvIOStart}}}}, "unknown kind"},
		{"negative-nth",
			Plan{Rules: []Rule{{Match: Match{Event: telemetry.EvIOStart, Nth: -2}, Kind: MediaHard}}},
			"negative Nth"},
		{"inverted-window",
			Plan{Rules: []Rule{{Match: Match{Event: telemetry.EvIOStart, SectorLo: 9, SectorHi: 4}, Kind: MediaHard}}},
			"window inverted"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// rig is an injector wired to a bare sim and telemetry, with a recorder
// capturing everything emitted on the bus.
type rig struct {
	s      *sim.Sim
	tel    *telemetry.Telemetry
	inj    *Injector
	events []telemetry.Event
}

func newRig(t *testing.T, plan Plan) *rig {
	t.Helper()
	r := &rig{s: sim.New(1), tel: telemetry.New()}
	t.Cleanup(r.s.Close)
	inj, err := NewInjector(r.s, plan)
	if err != nil {
		t.Fatal(err)
	}
	r.inj = inj
	r.tel.Bus.Subscribe(func(ev telemetry.Event) { r.events = append(r.events, ev) })
	inj.AttachTelemetry(r.tel)
	return r
}

func (r *rig) ioStart(sector int64, write bool) {
	r.tel.Bus.Emit(telemetry.Event{T: r.s.Now(), Kind: telemetry.EvIOStart, Sector: sector, Write: write})
}

func (r *rig) kinds() []telemetry.EventKind {
	var out []telemetry.EventKind
	for _, ev := range r.events {
		out = append(out, ev.Kind)
	}
	return out
}

func TestMediaTransientLatchesAndDrains(t *testing.T) {
	// 2nd write fails twice (anchor + one retry), then recovers.
	r := newRig(t, Plan{Rules: []Rule{FailNth(2, Writes, 2)}})

	r.ioStart(100, false) // read: direction filter skips it
	if r.inj.TakeMedia() {
		t.Fatal("read transfer armed a Writes-only rule")
	}
	r.ioStart(100, true) // 1st write: not the anchor
	if r.inj.TakeMedia() {
		t.Fatal("1st write armed an Nth=2 rule")
	}
	r.ioStart(200, true) // 2nd write: anchor fires
	if !r.inj.TakeMedia() {
		t.Fatal("anchor transfer did not fail")
	}
	r.ioStart(300, true) // unrelated transfer while latched
	if r.inj.TakeMedia() {
		t.Fatal("latched rule failed an unrelated sector")
	}
	r.ioStart(200, true) // retry of the latched transfer: 2nd failure
	if !r.inj.TakeMedia() {
		t.Fatal("retry of latched transfer did not fail")
	}
	r.ioStart(200, true) // budget spent: the drive has "recovered"
	if r.inj.TakeMedia() {
		t.Fatal("transfer failed after the Fails budget was spent")
	}
	if got := r.inj.Stats.MediaInjected; got != 2 {
		t.Fatalf("MediaInjected = %d, want 2", got)
	}
	if r.inj.Crashed() {
		t.Fatal("media faults must not crash the machine")
	}
}

func TestMediaHardNeverHeals(t *testing.T) {
	r := newRig(t, Plan{Rules: []Rule{FailNthHard(1, Any)}})
	for i := 0; i < 5; i++ {
		r.ioStart(42, true)
		if !r.inj.TakeMedia() {
			t.Fatalf("attempt %d: hard fault healed", i+1)
		}
	}
	if got := r.inj.Stats.MediaInjected; got != 5 {
		t.Fatalf("MediaInjected = %d, want 5", got)
	}
}

func TestSectorWindowFilter(t *testing.T) {
	r := newRig(t, Plan{Rules: []Rule{{
		Match: Match{Event: telemetry.EvIOStart, SectorLo: 1000, SectorHi: 1999},
		Kind:  MediaHard,
	}}})
	r.ioStart(999, true)
	if r.inj.TakeMedia() {
		t.Fatal("sector below the window matched")
	}
	r.ioStart(2000, true)
	if r.inj.TakeMedia() {
		t.Fatal("sector above the window matched")
	}
	r.ioStart(1500, true)
	if !r.inj.TakeMedia() {
		t.Fatal("sector inside the window did not match")
	}
}

func TestTakeMediaWithoutPending(t *testing.T) {
	r := newRig(t, Plan{})
	r.ioStart(1, true)
	if r.inj.TakeMedia() {
		t.Fatal("empty plan injected a fault")
	}
	if r.inj.Stats.MediaInjected != 0 {
		t.Fatalf("MediaInjected = %d, want 0", r.inj.Stats.MediaInjected)
	}
}

func TestCutAtEvent(t *testing.T) {
	r := newRig(t, Plan{Rules: []Rule{CutAtEvent(telemetry.EvIOStart, 2)}})
	var hookCut sim.Time
	r.inj.OnCrash(func(cut sim.Time) { hookCut = cut })

	r.ioStart(1, true)
	if r.inj.Crashed() {
		t.Fatal("crashed on the 1st event of an Nth=2 rule")
	}
	r.ioStart(2, true)
	if !r.inj.Crashed() {
		t.Fatal("no crash on the anchor event")
	}
	if hookCut != r.inj.CrashTime() {
		t.Fatalf("hook saw cut %v, CrashTime %v", hookCut, r.inj.CrashTime())
	}
	if r.inj.Stats.Cuts != 1 {
		t.Fatalf("Cuts = %d, want 1", r.inj.Stats.Cuts)
	}
	// The cut joined the event stream, after its trigger.
	ks := r.kinds()
	if ks[len(ks)-1] != telemetry.EvCrashCut {
		t.Fatalf("last event = %v, want crash_cut (stream %v)", ks[len(ks)-1], ks)
	}
	// Post-crash the injector is inert: no more faults, no second cut.
	r.ioStart(3, true)
	if r.inj.TakeMedia() {
		t.Fatal("fault injected after the crash")
	}
	if r.inj.Stats.Cuts != 1 {
		t.Fatalf("Cuts = %d after extra events, want 1", r.inj.Stats.Cuts)
	}
}

func TestCutAtTimeStopsTheClock(t *testing.T) {
	const cut = 3 * sim.Millisecond
	r := newRig(t, Plan{Rules: []Rule{CutAtTime(cut)}})
	reached := false
	r.s.Spawn("w", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond) // before the cut
		reached = true
		p.Sleep(2 * sim.Millisecond) // straddles the cut; never returns
		t.Error("process survived the power cut")
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatal("work before the cut did not run")
	}
	if !r.inj.Crashed() || r.inj.CrashTime() != cut {
		t.Fatalf("Crashed=%v CrashTime=%v, want cut at %v", r.inj.Crashed(), r.inj.CrashTime(), cut)
	}
	if r.s.Now() != cut {
		t.Fatalf("clock stopped at %v, want %v", r.s.Now(), cut)
	}
}

func TestAfterFilter(t *testing.T) {
	r := newRig(t, Plan{Rules: []Rule{{
		Match: Match{Event: telemetry.EvIOStart, After: 5 * sim.Millisecond},
		Kind:  MediaHard,
	}}})
	r.tel.Bus.Emit(telemetry.Event{T: 1 * sim.Millisecond, Kind: telemetry.EvIOStart, Write: true})
	if r.inj.TakeMedia() {
		t.Fatal("event before After matched")
	}
	r.tel.Bus.Emit(telemetry.Event{T: 6 * sim.Millisecond, Kind: telemetry.EvIOStart, Write: true})
	if !r.inj.TakeMedia() {
		t.Fatal("event after After did not match")
	}
}
