// Package fault is the deterministic fault-injection layer: seed-free,
// plan-driven media errors and power-cut crashes keyed off the
// telemetry event stream. A Plan is a list of Rules; each rule anchors
// on an event match ("the 3rd io_start on this sector range", "the
// first cluster_push after time T") or, for power cuts, an absolute
// simulated time. The Injector subscribes to the machine's event bus,
// counts matching events, and arms the corresponding fault exactly
// when its anchor fires — same plan, same seed, same faults, every
// run.
//
// Media errors are consumed by internal/disk (the drive fails the
// transfer that the matched io_start began); power cuts stop the
// simulation clock dead and freeze the disk image with only the
// sectors physically written by then (a transfer in flight is torn at
// sector granularity — see disk.freezeTorn).
package fault

import (
	"fmt"

	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// RW filters an I/O event match by transfer direction.
type RW uint8

// Direction filters.
const (
	Any    RW = iota // match reads and writes
	Reads            // match only reads
	Writes           // match only writes
)

// Kind selects what the armed fault does.
type Kind uint8

// Fault kinds.
const (
	// MediaTransient fails the matched transfer (and its retries) for
	// Rule.Fails attempts, then lets it succeed — the drive "recovers".
	MediaTransient Kind = iota + 1
	// MediaHard fails the matched transfer and every retry of it,
	// forever: the driver's give-up path is the only way out.
	MediaHard
	// PowerCut stops the machine at the anchor (an event match, or the
	// absolute time Rule.At) and freezes the disk image as of that
	// instant.
	PowerCut
)

func (k Kind) String() string {
	switch k {
	case MediaTransient:
		return "media-transient"
	case MediaHard:
		return "media-hard"
	case PowerCut:
		return "power-cut"
	}
	return "unknown"
}

// Match is a rule's anchor: a predicate over the telemetry stream plus
// an occurrence count. The rule fires on the Nth event (1-based) that
// passes every filter.
type Match struct {
	Event EventKind // event kind to count (media rules: telemetry.EvIOStart)
	Nth   int64     // 1-based occurrence; 0 means 1
	RW    RW        // direction filter (I/O events carry a direction)

	// SectorLo/SectorHi restrict the match to events whose Sector lies
	// in [SectorLo, SectorHi]. SectorHi == 0 disables the filter. Use
	// disk geometry / ufs layout helpers to aim at a cylinder group.
	// On a volume machine the Sector of a member's io_start is
	// member-local; combine with Dev to aim at a spindle region.
	SectorLo, SectorHi int64

	// Dev restricts the match to events tagged with this member device
	// label ("sd1" — see internal/vol). Empty matches any device,
	// including the unlabeled bare drive.
	Dev string

	// After ignores events before this simulated time.
	After sim.Time
}

// EventKind aliases the telemetry kind so plan literals read naturally
// without importing telemetry at every call site.
type EventKind = telemetry.EventKind

// Rule is one planned fault.
type Rule struct {
	Match Match
	Kind  Kind

	// Fails is, for MediaTransient, how many attempts (the anchored
	// transfer plus its retries) fail before the drive recovers.
	// 0 means 1.
	Fails int

	// At, for PowerCut only, cuts power at an absolute simulated time
	// instead of an event match. When At > 0 the Match is ignored.
	At sim.Time
}

// Plan is a complete fault schedule. The zero value injects nothing.
type Plan struct {
	Rules []Rule
}

// Validate rejects rules the injector cannot honor deterministically.
func (pl Plan) Validate() error {
	for i, r := range pl.Rules {
		switch r.Kind {
		case MediaTransient, MediaHard:
			// The media decision is taken by the drive as it begins
			// service, so the anchor must be the service-start event:
			// any other anchor would leave the fault pending with no
			// transfer to fail.
			if r.Match.Event != telemetry.EvIOStart {
				return fmt.Errorf("fault: rule %d: media faults anchor on io_start, not %v", i, r.Match.Event)
			}
			if r.At != 0 {
				return fmt.Errorf("fault: rule %d: At is power-cut only", i)
			}
			if r.Fails < 0 {
				return fmt.Errorf("fault: rule %d: negative Fails", i)
			}
		case PowerCut:
			if r.At < 0 {
				return fmt.Errorf("fault: rule %d: negative cut time", i)
			}
			if r.Fails != 0 {
				return fmt.Errorf("fault: rule %d: Fails is media only", i)
			}
		default:
			return fmt.Errorf("fault: rule %d: unknown kind %d", i, r.Kind)
		}
		if r.Match.Nth < 0 {
			return fmt.Errorf("fault: rule %d: negative Nth", i)
		}
		if r.Match.SectorHi != 0 && r.Match.SectorHi < r.Match.SectorLo {
			return fmt.Errorf("fault: rule %d: sector window inverted", i)
		}
	}
	return nil
}

// FailNth fails the nth transfer in direction rw for fails attempts
// (transient: the transfer succeeds once the budget is spent).
func FailNth(nth int64, rw RW, fails int) Rule {
	return Rule{
		Match: Match{Event: telemetry.EvIOStart, Nth: nth, RW: rw},
		Kind:  MediaTransient,
		Fails: fails,
	}
}

// FailNthHard fails the nth transfer in direction rw and every retry
// of it, permanently.
func FailNthHard(nth int64, rw RW) Rule {
	return Rule{
		Match: Match{Event: telemetry.EvIOStart, Nth: nth, RW: rw},
		Kind:  MediaHard,
	}
}

// CutAtTime cuts power at absolute simulated time t.
func CutAtTime(t sim.Time) Rule {
	return Rule{Kind: PowerCut, At: t}
}

// CutAtEvent cuts power at the nth occurrence of ev.
func CutAtEvent(ev EventKind, nth int64) Rule {
	return Rule{Match: Match{Event: ev, Nth: nth}, Kind: PowerCut}
}
