package fault

import (
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// Stats counts injector activity. Covered by the root registry as
// fault.* counters; measure intervals with Snapshot/Delta.
type Stats struct {
	MediaInjected int64 // failed transfer attempts delivered to the drive
	Cuts          int64 // power cuts delivered (0 or 1 per machine)
}

// ruleState is one rule's live matching state. A media rule, once its
// anchor fires, latches onto the identity of the transfer it failed
// (sector, direction) so that the driver's retries of that same
// transfer keep failing until the rule's budget is spent — without the
// latch, the retry's own io_start would not be "the nth" anymore and a
// hard error would heal itself.
type ruleState struct {
	r       Rule
	seen    int64 // matching events observed so far
	latched bool  // media rule armed on a transfer identity
	sector  int64
	write   bool
	dev     string // member device of the latched transfer
	fails   int    // failed attempts delivered so far
	done    bool   // rule exhausted
}

func (rs *ruleState) match(ev telemetry.Event) bool {
	m := rs.r.Match
	if ev.Kind != m.Event {
		return false
	}
	if m.After > 0 && ev.T < m.After {
		return false
	}
	if m.Dev != "" && ev.Dev != m.Dev {
		return false
	}
	switch m.RW {
	case Reads:
		if ev.Write {
			return false
		}
	case Writes:
		if !ev.Write {
			return false
		}
	}
	if m.SectorHi != 0 && (ev.Sector < m.SectorLo || ev.Sector > m.SectorHi) {
		return false
	}
	rs.seen++
	nth := m.Nth
	if nth < 1 {
		nth = 1
	}
	return rs.seen == nth
}

// Injector executes a Plan against one machine. It observes the
// telemetry bus (subscribers run synchronously at the emission site,
// so by the time the drive's io_start Emit returns, any media fault it
// triggered is already armed for TakeMedia), and it owns the crash
// state: once a power cut fires, the sim is stopped and Crashed
// reports true.
type Injector struct {
	sim     *sim.Sim
	rules   []*ruleState
	pending *ruleState // media rule armed for the transfer now starting
	crashed bool
	cutAt   sim.Time
	onCrash []func(cut sim.Time)
	bus     *telemetry.Bus

	Stats Stats
}

// NewInjector validates the plan and builds its injector. Time-based
// power cuts are scheduled on s immediately; event-based rules arm
// once AttachTelemetry subscribes the injector to the bus.
func NewInjector(s *sim.Sim, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{sim: s}
	for _, r := range plan.Rules {
		rs := &ruleState{r: r}
		in.rules = append(in.rules, rs)
		if r.Kind == PowerCut && r.At > 0 {
			rs.done = true // consumed by the timer below
			at := r.At
			s.At(at, func() {
				in.crash(at)
			})
		}
	}
	return in, nil
}

// AttachTelemetry registers the fault.* counters and subscribes the
// injector to the event stream. The crash_cut for an event-triggered
// power cut is deferred behind the triggering event (see Bus.Defer),
// so subscription order no longer affects the stream.
func (in *Injector) AttachTelemetry(tel *telemetry.Telemetry) {
	in.bus = tel.Bus
	tel.Reg.Counter("fault.media_injected", func() int64 { return in.Stats.MediaInjected })
	tel.Reg.Counter("fault.cuts", func() int64 { return in.Stats.Cuts })
	// simlint:ignore buspure -- crash freeze hooks reach into the disk by design: they must capture the torn transfer at cut time, and mutate only the crash image
	tel.Bus.Subscribe(in.observe)
}

// OnCrash registers a hook that runs when a power cut fires, before
// the sim is stopped — the disk uses it to freeze torn transfers.
func (in *Injector) OnCrash(fn func(cut sim.Time)) {
	in.onCrash = append(in.onCrash, fn)
}

// observe is the bus subscriber: it advances every live rule's match
// state and arms or fires faults.
func (in *Injector) observe(ev telemetry.Event) {
	if in.crashed {
		return
	}
	for _, rs := range in.rules {
		if rs.done {
			continue
		}
		switch rs.r.Kind {
		case MediaTransient, MediaHard:
			if rs.latched {
				// A retry of the latched transfer is starting: keep
				// failing it until the budget runs out. The member
				// label is part of the transfer's identity: a volume
				// reissuing the same member-local sector on another
				// spindle (mirror failover) must not re-trip the rule.
				if ev.Kind == telemetry.EvIOStart && ev.Sector == rs.sector && ev.Write == rs.write && ev.Dev == rs.dev {
					in.pending = rs
				}
				continue
			}
			if rs.match(ev) {
				rs.latched, rs.sector, rs.write, rs.dev = true, ev.Sector, ev.Write, ev.Dev
				in.pending = rs
			}
		case PowerCut:
			if rs.match(ev) {
				rs.done = true
				in.crash(ev.T)
				return
			}
		}
	}
}

// TakeMedia is called by the drive immediately after it emits io_start
// for a transfer: it reports whether that transfer must fail, and
// consumes one failure from the armed rule's budget.
func (in *Injector) TakeMedia() bool {
	rs := in.pending
	if rs == nil {
		return false
	}
	in.pending = nil
	rs.fails++
	in.Stats.MediaInjected++
	if rs.r.Kind == MediaTransient {
		budget := rs.r.Fails
		if budget < 1 {
			budget = 1
		}
		if rs.fails >= budget {
			rs.done = true
		}
	}
	return true
}

// crash executes a power cut: freeze hooks run first (they see the cut
// time and the pre-stop disk state), then the clock stops and the cut
// joins the event stream.
func (in *Injector) crash(t sim.Time) {
	if in.crashed {
		return
	}
	in.crashed = true
	in.cutAt = t
	in.Stats.Cuts++
	for _, fn := range in.onCrash {
		fn(t)
	}
	in.sim.Stop()
	// Defer, not Emit: event-rule cuts fire from inside the triggering
	// event's fan-out, and the cut must join the stream behind that
	// event for every subscriber, not just the ones subscribed after
	// the injector.
	in.bus.Defer(telemetry.Event{T: t, Kind: telemetry.EvCrashCut})
}

// Crashed reports whether a power cut has fired.
func (in *Injector) Crashed() bool { return in.crashed }

// CrashTime returns the simulated time of the power cut (0 if none).
func (in *Injector) CrashTime() sim.Time { return in.cutAt }
