package core

import (
	"bytes"
	"testing"

	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
	"ufsclust/internal/vm"
)

type rig struct {
	s   *sim.Sim
	d   *disk.Disk
	dr  *driver.Driver
	fs  *ufs.Fs
	v   *vm.VM
	eng *Engine
}

func newRig(t *testing.T, mkfs ufs.MkfsOpts, cfg Config, writeLimit int64) *rig {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	cm := cpu.New(s, 12)
	dp := disk.DefaultParams()
	dp.Geom = disk.UniformGeometry(96, 8, 64, 3600) // ~25 MB
	d := disk.New(s, "d0", dp)
	dc := driver.DefaultConfig()
	dc.MaxPhys = 128 << 10
	dr := driver.New(s, d, cm, dc)
	if _, err := ufs.Mkfs(d, mkfs); err != nil {
		t.Fatal(err)
	}
	fs, err := ufs.Mount(s, cm, dr, ufs.MountOpts{WriteLimit: writeLimit})
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(s, cm, vm.Config{MemBytes: 8 << 20})
	eng := NewEngine(s, cm, v, fs, cfg)
	return &rig{s: s, d: d, dr: dr, fs: fs, v: v, eng: eng}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.s.Spawn("test", fn)
	if err := r.s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func clusteredOpts() (ufs.MkfsOpts, Config) {
	return ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 15}, ConfigA()
}

func legacyOpts() (ufs.MkfsOpts, Config) {
	return ufs.MkfsOpts{Rotdelay: 4, Maxcontig: 1}, ConfigD()
}

// pattern fills buf with a position-dependent byte sequence.
func pattern(buf []byte, seed int64) {
	for i := range buf {
		buf[i] = byte((int64(i)*2654435761 + seed) >> 3)
	}
}

func testWriteReadBack(t *testing.T, mk ufs.MkfsOpts, cfg Config, size int) {
	t.Helper()
	r := newRig(t, mk, cfg, 240<<10)
	data := make([]byte, size)
	pattern(data, 42)
	r.run(t, func(p *sim.Proc) {
		f, err := r.eng.Create(p, "/f")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// Write in 8 KB chunks like IObench.
		for off := 0; off < size; off += 8192 {
			n := 8192
			if off+n > size {
				n = size - off
			}
			if _, err := f.Write(p, int64(off), data[off:off+n]); err != nil {
				t.Errorf("write at %d: %v", off, err)
				return
			}
		}
		f.Fsync(p)
		// Read back through the cache.
		got := make([]byte, size)
		for off := 0; off < size; off += 8192 {
			n := 8192
			if off+n > size {
				n = size - off
			}
			if _, err := f.Read(p, int64(off), got[off:off+n]); err != nil {
				t.Errorf("read at %d: %v", off, err)
				return
			}
		}
		if !bytes.Equal(got, data) {
			t.Error("cached read-back mismatch")
		}
	})
	// Verify the bits on the platter by remounting cold.
	r.fs.SyncImage()
	rep, err := ufs.Fsck(r.d)
	if err != nil || !rep.Clean() {
		t.Fatalf("fsck: %v %v", err, rep.Problems)
	}
	s2 := sim.New(9)
	defer s2.Close()
	d2 := r.d // same image; fresh everything else
	dr2 := driver.New(s2, d2, nil, driver.DefaultConfig())
	_ = dr2
	// Cold read: rebuild the whole stack over the same disk object is
	// not possible (the disk belongs to r.s), so verify via the image:
	// walk the file's blocks offline.
	verifyFileImage(t, r, "/f", data)
}

// verifyFileImage reads a file's content straight from the platter.
func verifyFileImage(t *testing.T, r *rig, path string, want []byte) {
	t.Helper()
	r.fs.SyncImage()
	var ip *ufs.Inode
	r.s.Spawn("verify", func(p *sim.Proc) {
		var err error
		ip, err = r.fs.Namei(p, path)
		if err != nil {
			t.Errorf("namei: %v", err)
			return
		}
		sb := r.fs.SB
		got := make([]byte, 0, len(want))
		blk := make([]byte, sb.Bsize)
		for lbn := int64(0); lbn*int64(sb.Bsize) < ip.D.Size; lbn++ {
			fsbn, _, err := r.fs.Bmap(p, ip, lbn)
			if err != nil {
				t.Errorf("bmap: %v", err)
				return
			}
			n := sb.BlkSize(ip.D.Size, lbn)
			want8 := blk[:((n+511)/512)*512]
			if fsbn == 0 {
				for i := range want8 {
					want8[i] = 0
				}
			} else {
				r.d.ReadImage(sb.FsbToDb(fsbn), want8)
			}
			end := ip.D.Size - lbn*int64(sb.Bsize)
			if end > int64(sb.Bsize) {
				end = int64(sb.Bsize)
			}
			got = append(got, want8[:end]...)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("platter content mismatch for %s", path)
		}
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadBackClustered(t *testing.T) {
	mk, cfg := clusteredOpts()
	testWriteReadBack(t, mk, cfg, 1<<20)
}

func TestWriteReadBackLegacy(t *testing.T) {
	mk, cfg := legacyOpts()
	testWriteReadBack(t, mk, cfg, 1<<20)
}

func TestWriteReadBackUnalignedSizes(t *testing.T) {
	mk, cfg := clusteredOpts()
	testWriteReadBack(t, mk, cfg, 1<<20+3000) // fragment tail beyond direct range? no: >12 blocks -> full blocks
}

func TestWriteReadBackSmallFile(t *testing.T) {
	mk, cfg := clusteredOpts()
	testWriteReadBack(t, mk, cfg, 5000) // fragment tail
}

func TestPartialOverwrite(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		base := make([]byte, 64<<10)
		pattern(base, 1)
		f.Write(p, 0, base)
		f.Fsync(p)
		// Overwrite 100 bytes straddling a block boundary.
		patch := make([]byte, 100)
		pattern(patch, 2)
		off := int64(8192 - 50)
		f.Write(p, off, patch)
		f.Fsync(p)
		copy(base[off:], patch)
		got := make([]byte, len(base))
		f.Read(p, 0, got)
		if !bytes.Equal(got, base) {
			t.Error("partial overwrite corrupted data")
		}
	})
	verifyOK(t, r)
}

func verifyOK(t *testing.T, r *rig) {
	t.Helper()
	r.fs.SyncImage()
	rep, err := ufs.Fsck(r.d)
	if err != nil || !rep.Clean() {
		t.Fatalf("fsck: %v %v", err, rep.Problems)
	}
}

func TestSparseFileReadsZeros(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/sparse")
		one := make([]byte, 8192)
		pattern(one, 3)
		// Write only block 5.
		f.Write(p, 5*8192, one)
		f.Fsync(p)
		got := make([]byte, 8192)
		f.Read(p, 0, got) // hole
		for _, b := range got {
			if b != 0 {
				t.Error("hole read nonzero")
				return
			}
		}
		f.Read(p, 5*8192, got)
		if !bytes.Equal(got, one) {
			t.Error("block 5 mismatch")
		}
		if r.eng.Stats.ZeroFills == 0 {
			t.Error("no zero-fill recorded for the hole")
		}
	})
	verifyOK(t, r)
}

// --- Figure 3: legacy read-ahead pattern ---------------------------------

func TestFigure3LegacyReadAheadPattern(t *testing.T) {
	mk, cfg := legacyOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		data := make([]byte, 64<<10)
		f.Write(p, 0, data)
		f.Purge(p)
		r.eng.Stats = Stats{}
		buf := make([]byte, 8192)
		// Fault pages 0,1,2 sequentially.
		for i := int64(0); i < 3; i++ {
			f.Read(p, i*8192, buf)
		}
		// Figure 3: each fault issues one sync-or-hit plus one async
		// read-ahead: page 0 -> sync 0 + async 1; page 1 -> hit +
		// async 2; page 2 -> hit + async 3.
		if r.eng.Stats.SyncReads != 1 {
			t.Errorf("sync reads = %d, want 1", r.eng.Stats.SyncReads)
		}
		if r.eng.Stats.AsyncReads != 3 {
			t.Errorf("async read-aheads = %d, want 3", r.eng.Stats.AsyncReads)
		}
		if r.eng.Stats.CacheHits < 2 {
			t.Errorf("cache hits = %d, want >= 2 (read-ahead worked)", r.eng.Stats.CacheHits)
		}
		if f.vn.IP.Nextr != 3 {
			t.Errorf("nextr = %d, want 3", f.vn.IP.Nextr)
		}
	})
}

func TestLegacyRandomReadNoReadAhead(t *testing.T) {
	mk, cfg := legacyOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		data := make([]byte, 256<<10)
		f.Write(p, 0, data)
		f.Purge(p)
		r.eng.Stats = Stats{}
		buf := make([]byte, 8192)
		// Random, non-sequential faults (descending, so never lbn==nextr).
		for _, lbn := range []int64{20, 7, 15, 3, 11} {
			f.Read(p, lbn*8192, buf)
		}
		if r.eng.Stats.AsyncReads != 0 {
			t.Errorf("random reads triggered %d read-aheads", r.eng.Stats.AsyncReads)
		}
		if r.eng.Stats.SyncReads != 5 {
			t.Errorf("sync reads = %d, want 5", r.eng.Stats.SyncReads)
		}
	})
}

// --- Figure 6: clustered read-ahead pattern ------------------------------

func TestFigure6ClusterReadPattern(t *testing.T) {
	// maxcontig=3 exactly as in the figure.
	r := newRig(t, ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 3}, ConfigA(), 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		data := make([]byte, 24*8192)
		f.Write(p, 0, data)
		f.Purge(p)
		r.eng.Stats = Stats{}
		buf := make([]byte, 8192)

		type step struct {
			sync, async int64
			nextrio     int64
		}
		var got []step
		for i := int64(0); i < 7; i++ {
			f.Read(p, i*8192, buf)
			got = append(got, step{r.eng.Stats.SyncReads, r.eng.Stats.AsyncReads, f.vn.IP.Nextrio})
		}
		// Page 0: sync cluster 0-2, async 3-5, nextrio=6.
		if got[0].sync != 1 || got[0].async != 1 || got[0].nextrio != 6 {
			t.Errorf("page 0: %+v, want sync=1 async=1 nextrio=6", got[0])
		}
		// Pages 1,2: nothing.
		if got[2].sync != 1 || got[2].async != 1 {
			t.Errorf("pages 1-2 issued I/O: %+v", got[2])
		}
		// Page 3: prefetch 6-8, nextrio=9.
		if got[3].async != 2 || got[3].nextrio != 9 {
			t.Errorf("page 3: %+v, want async=2 nextrio=9", got[3])
		}
		// Pages 4,5: nothing. Page 6: prefetch 9-11, nextrio=12.
		if got[6].async != 3 || got[6].nextrio != 12 {
			t.Errorf("page 6: %+v, want async=3 nextrio=12", got[6])
		}
		if got[6].sync != 1 {
			t.Errorf("sync reads = %d after 7 pages, want 1 (everything else prefetched)", got[6].sync)
		}
	})
}

func TestClusteredReadMovesWholeClusters(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		const size = 960 << 10 // 120 blocks = 8 full 15-block clusters
		data := make([]byte, size)
		f.Write(p, 0, data)
		f.Purge(p)
		r.d.Stats = disk.Stats{}
		buf := make([]byte, 8192)
		for off := int64(0); off < size; off += 8192 {
			f.Read(p, off, buf)
		}
		// 120 blocks in 15-block clusters: ~8-10 disk reads, not 120.
		if r.d.Stats.Reads > 16 {
			t.Errorf("disk reads = %d for 120 blocks, want ~8 (clustered)", r.d.Stats.Reads)
		}
	})
}

func TestLegacyReadIsBlockAtATime(t *testing.T) {
	mk, cfg := legacyOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		const size = 480 << 10 // 60 blocks
		data := make([]byte, size)
		f.Write(p, 0, data)
		f.Purge(p)
		r.d.Stats = disk.Stats{}
		buf := make([]byte, 8192)
		for off := int64(0); off < size; off += 8192 {
			f.Read(p, off, buf)
		}
		if r.d.Stats.Reads < 60 {
			t.Errorf("disk reads = %d for 60 blocks, want >= 60 (block at a time)", r.d.Stats.Reads)
		}
	})
}

// --- Figure 7: clustered write pattern -----------------------------------

func TestFigure7ClusterWritePattern(t *testing.T) {
	r := newRig(t, ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 3}, ConfigA(), 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		buf := make([]byte, 8192)
		var ios []int64
		for i := int64(0); i < 6; i++ {
			f.Write(p, i*8192, buf)
			ios = append(ios, r.eng.Stats.WriteIOs)
		}
		// Figure 7: lie, lie, push 0-2, lie, lie, push 3-5.
		want := []int64{0, 0, 1, 1, 1, 2}
		for i, w := range want {
			if ios[i] != w {
				t.Errorf("after page %d: %d write IOs, want %d (pattern %v)", i, ios[i], w, ios)
				break
			}
		}
		if r.eng.Stats.Lies != 6 {
			t.Errorf("lies = %d, want 6", r.eng.Stats.Lies)
		}
	})
}

func TestRandomWritesFlushPreviousWindow(t *testing.T) {
	r := newRig(t, ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 8}, ConfigA(), 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		// Preallocate so random updates have backing store.
		f.Write(p, 0, make([]byte, 256<<10))
		f.Purge(p)
		r.eng.Stats = Stats{}
		buf := make([]byte, 8192)
		// Random (non-adjacent) writes: each breaks sequentiality and
		// must flush the previous single page.
		for _, lbn := range []int64{9, 2, 17, 5, 23} {
			f.Write(p, lbn*8192, buf)
		}
		if r.eng.Stats.Pushes < 4 {
			t.Errorf("pushes = %d, want >= 4 (each random write flushes the last)", r.eng.Stats.Pushes)
		}
		f.Fsync(p)
	})
	verifyOK(t, r)
}

func TestClusteredWriteMovesWholeClusters(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		const size = 960 << 10
		data := make([]byte, size)
		pattern(data, 7)
		for off := 0; off < size; off += 8192 {
			f.Write(p, int64(off), data[off:off+8192])
		}
		f.Fsync(p)
		if r.d.Stats.Writes > 20 {
			t.Errorf("disk writes = %d for 120 blocks, want ~9 (clustered)", r.d.Stats.Writes)
		}
	})
	verifyOK(t, r)
}

func TestLegacyWriteIsBlockAtATime(t *testing.T) {
	mk, cfg := legacyOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		const size = 480 << 10
		for off := 0; off < size; off += 8192 {
			f.Write(p, int64(off), make([]byte, 8192))
		}
		f.Fsync(p)
		if r.d.Stats.Writes < 60 {
			t.Errorf("disk writes = %d for 60 blocks, want >= 60", r.d.Stats.Writes)
		}
	})
}

// --- write limit -----------------------------------------------------------

func TestWriteLimitBoundsQueue(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 240<<10)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		// Pour 4 MB in as fast as possible; the limit must stall us.
		for off := 0; off < 4<<20; off += 8192 {
			f.Write(p, int64(off), make([]byte, 8192))
		}
		f.Fsync(p)
		if r.eng.Stats.WriteStalls == 0 {
			t.Error("4MB burst never stalled on the 240KB write limit")
		}
	})
	// The driver queue should never have exceeded the limit by much.
	maxQueued := int64(r.dr.Stats.MaxQueue) * (120 << 10)
	_ = maxQueued // depth in requests; limit is in bytes per file
}

func TestNoWriteLimitNoStalls(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		for off := 0; off < 2<<20; off += 8192 {
			f.Write(p, int64(off), make([]byte, 8192))
		}
		f.Fsync(p)
		if r.eng.Stats.WriteStalls != 0 {
			t.Errorf("stalls = %d with no limit", r.eng.Stats.WriteStalls)
		}
	})
}

// --- free-behind -----------------------------------------------------------

func TestFreeBehindRecyclesPages(t *testing.T) {
	// Stream a file larger than memory with free-behind on: the
	// process should free its own pages, and the daemon should barely
	// run.
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 0)
	const size = 12 << 20 // > 8 MB memory
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/big")
		chunk := make([]byte, 64<<10)
		for off := 0; off < size; off += len(chunk) {
			f.Write(p, int64(off), chunk)
		}
		f.Purge(p)
		r.eng.Stats = Stats{}
		r.v.Stats = vm.Stats{}
		buf := make([]byte, 8192)
		for off := int64(0); off < size; off += 8192 {
			f.Read(p, off, buf)
		}
		if r.eng.Stats.FreeBehinds == 0 {
			t.Error("free-behind never triggered on a >memory sequential read")
		}
		if r.v.Stats.FreeBehind == 0 {
			t.Error("vm never saw front-freed pages")
		}
	})
}

func TestNoFreeBehindDaemonMustRun(t *testing.T) {
	mk, _ := clusteredOpts()
	cfg := ConfigA()
	cfg.FreeBehind = false
	r := newRig(t, mk, cfg, 0)
	const size = 12 << 20
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/big")
		chunk := make([]byte, 64<<10)
		for off := 0; off < size; off += len(chunk) {
			f.Write(p, int64(off), chunk)
		}
		f.Purge(p)
		r.v.Stats = vm.Stats{}
		buf := make([]byte, 8192)
		for off := int64(0); off < size; off += 8192 {
			f.Read(p, off, buf)
		}
		if r.v.Stats.DaemonRuns == 0 {
			t.Error("pageout daemon never ran without free-behind on a >memory read")
		}
	})
}

// --- mmap path -------------------------------------------------------------

func TestReadMmapSkipsCopyCost(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		f.Write(p, 0, make([]byte, 1<<20))
		f.Purge(p)
		r.eng.CPU.Reset()
		if err := f.ReadMmap(p, 0, 1<<20); err != nil {
			t.Errorf("mmap read: %v", err)
		}
		bk := r.eng.CPU.Buckets()
		if bk[cpu.Copy].Instr != 0 {
			t.Errorf("mmap read charged %d copy instructions", bk[cpu.Copy].Instr)
		}
		if bk[cpu.Fault].Count != 128 {
			t.Errorf("mmap read faulted %d times, want 128", bk[cpu.Fault].Count)
		}
	})
}

// --- truncate + engine ------------------------------------------------------

func TestTruncateDropsCachedPages(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		data := make([]byte, 256<<10)
		pattern(data, 11)
		f.Write(p, 0, data)
		f.Fsync(p)
		if err := f.Truncate(p, 8192); err != nil {
			t.Errorf("truncate: %v", err)
		}
		if f.Size() != 8192 {
			t.Errorf("size = %d", f.Size())
		}
		got := make([]byte, 8192)
		n, _ := f.Read(p, 0, got)
		if n != 8192 || !bytes.Equal(got, data[:8192]) {
			t.Error("first block lost by truncate")
		}
		n, _ = f.Read(p, 8192, got)
		if n != 0 {
			t.Errorf("read past truncated EOF returned %d bytes", n)
		}
	})
	verifyOK(t, r)
}

// --- run B degrades gracefully ----------------------------------------------

func TestRunBClusterOfOneBlock(t *testing.T) {
	// Clustered code on an old-format fs (rotdelay placement) must see
	// bmap runs of 1 and behave like the legacy engine: "an old file
	// system will always send back a cluster of one block."
	cfg := ConfigA() // clustering engine
	r := newRig(t, ufs.MkfsOpts{Rotdelay: 4, Maxcontig: 1}, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		const size = 240 << 10 // 30 blocks
		f.Write(p, 0, make([]byte, size))
		f.Fsync(p)
		if r.d.Stats.Writes < 30 {
			t.Errorf("writes = %d; clusters should degrade to single blocks", r.d.Stats.Writes)
		}
		f.Purge(p)
		r.d.Stats = disk.Stats{}
		buf := make([]byte, 8192)
		for off := int64(0); off < size; off += 8192 {
			f.Read(p, off, buf)
		}
		if r.d.Stats.Reads < 30 {
			t.Errorf("reads = %d; want block-at-a-time on old format", r.d.Stats.Reads)
		}
	})
	verifyOK(t, r)
}

func TestConcurrentStreamsDataIntact(t *testing.T) {
	// Three processes work simultaneously — two sequential streams and
	// one random updater on separate files — exercising page locking,
	// shared CPU, disksort interleaving, and the write limit together.
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 240<<10)
	const fsize = 1 << 20
	datasets := make([][]byte, 3)
	for i := range datasets {
		datasets[i] = make([]byte, fsize)
		pattern(datasets[i], int64(100+i))
	}
	files := make([]*File, 3)
	r.run(t, func(p *sim.Proc) {
		for i := range files {
			f, err := r.eng.Create(p, "/stream"+itoa(i))
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			files[i] = f
		}
		done := 0
		var q sim.WaitQ
		for i := range files {
			i := i
			r.s.Spawn("worker", func(wp *sim.Proc) {
				f, data := files[i], datasets[i]
				for off := 0; off < fsize; off += 8192 {
					f.Write(wp, int64(off), data[off:off+8192])
				}
				f.Fsync(wp)
				// Random rewrites of our own file.
				for j := 0; j < 20; j++ {
					off := r.s.Rand.Int63n(fsize/8192) * 8192
					f.Write(wp, off, data[off:off+8192])
				}
				f.Fsync(wp)
				done++
				q.WakeAll()
			})
		}
		for done < 3 {
			p.Block(&q)
		}
		// Verify everything cold.
		for i, f := range files {
			f.Purge(p)
			got := make([]byte, fsize)
			f.Read(p, 0, got)
			if !bytes.Equal(got, datasets[i]) {
				t.Errorf("stream %d corrupted under concurrency", i)
			}
		}
	})
	verifyOK(t, r)
}

func itoa(i int) string {
	return string(rune('0' + i))
}
