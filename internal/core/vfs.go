package core

import (
	"ufsclust/internal/sim"
	"ufsclust/internal/vfs"
	"ufsclust/internal/vm"
)

// Compile-time proof of the paper's architectural point: both engine
// configurations present exactly the vnode interfaces — no interface
// change was needed for clustering.
var (
	_ vfs.File  = (*File)(nil)
	_ vm.Object = (*Vnode)(nil)
)

// vfsAdapter exposes the engine as a vfs.FS.
type vfsAdapter struct{ e *Engine }

// VFS returns the engine's vnode-layer interface.
func (e *Engine) VFS() vfs.FS { return vfsAdapter{e} }

// Open implements vfs.FS.
func (a vfsAdapter) Open(p *sim.Proc, path string) (vfs.File, error) {
	f, err := a.e.Open(p, path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Create implements vfs.FS.
func (a vfsAdapter) Create(p *sim.Proc, path string) (vfs.File, error) {
	f, err := a.e.Create(p, path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Remove implements vfs.FS.
func (a vfsAdapter) Remove(p *sim.Proc, path string) error {
	return a.e.Remove(p, path)
}
