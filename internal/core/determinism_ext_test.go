// Byte-identical replay gates for the full workloads, complementing the
// engine-level gate in determinism_test.go. These run a complete
// iobench cell and a complete musbus mix twice each, capturing the
// scheduler trace, and require the two traces to match byte for byte.
// The fast-path kernel (value-heap event queue, ring ready queue,
// hand-off dispatch) must be invisible here: host-side speed may change,
// the dispatch sequence may not.
package core_test

import (
	"bytes"
	"testing"

	"ufsclust"
	"ufsclust/internal/iobench"
	"ufsclust/internal/musbus"
	"ufsclust/internal/sim"
)

func TestIobenchReplayByteIdentical(t *testing.T) {
	run := func() ([]byte, iobench.Result) {
		var tw bytes.Buffer
		prm := iobench.Params{FileMB: 1, RandomOps: 16, Seed: 3, TraceW: &tw}
		res, err := iobench.Run(ufsclust.RunD(), iobench.FSW, prm)
		if err != nil {
			t.Fatal(err)
		}
		return tw.Bytes(), res
	}
	t1, r1 := run()
	t2, r2 := run()
	if len(t1) == 0 {
		t.Fatal("empty scheduler trace: TraceW not wired through iobench")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatalf("iobench FSW traces differ between identical runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if r1 != r2 {
		t.Fatalf("iobench FSW results differ between identical runs:\n%+v\n%+v", r1, r2)
	}
}

func TestMusbusReplayByteIdentical(t *testing.T) {
	run := func() ([]byte, musbus.Result) {
		var tw bytes.Buffer
		prm := musbus.Params{Users: 3, Duration: 20 * sim.Second, Seed: 9, TraceW: &tw}
		res, err := musbus.Run(ufsclust.RunA(), prm)
		if err != nil {
			t.Fatal(err)
		}
		return tw.Bytes(), res
	}
	t1, r1 := run()
	t2, r2 := run()
	if len(t1) == 0 {
		t.Fatal("empty scheduler trace: TraceW not wired through musbus")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatalf("musbus traces differ between identical runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if r1 != r2 {
		t.Fatalf("musbus results differ between identical runs:\n%+v\n%+v", r1, r2)
	}
}
