package core

import (
	"bytes"
	"testing"

	"ufsclust/internal/disk"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

// --- Further Work: UFS_HOLE (skip bmap on cache hit) ----------------------

func TestSkipBmapOnHitReducesBmapCalls(t *testing.T) {
	mk, cfg := clusteredOpts()
	cfg.SkipBmapOnHit = true
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		data := make([]byte, 256<<10)
		pattern(data, 5)
		f.Write(p, 0, data)
		f.Fsync(p)
		// Re-read random cached blocks: every one should skip bmap.
		calls := r.fs.BmapCalls
		buf := make([]byte, 8192)
		for _, lbn := range []int64{20, 7, 15, 3, 11, 28, 9} {
			f.Read(p, lbn*8192, buf)
		}
		if r.eng.Stats.BmapSkips < 7 {
			t.Errorf("bmapSkips = %d, want >= 7", r.eng.Stats.BmapSkips)
		}
		if r.fs.BmapCalls != calls {
			t.Errorf("bmap called %d more times on cached hole-free reads", r.fs.BmapCalls-calls)
		}
		// Data is still correct.
		got := make([]byte, len(data))
		f.Read(p, 0, got)
		if !bytes.Equal(got, data) {
			t.Error("skip-bmap path corrupted data")
		}
	})
}

func TestSkipBmapNotAppliedToSparseFiles(t *testing.T) {
	mk, cfg := clusteredOpts()
	cfg.SkipBmapOnHit = true
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/sparse")
		f.Write(p, 5*8192, make([]byte, 8192)) // hole in blocks 0-4
		f.Fsync(p)
		buf := make([]byte, 8192)
		f.Read(p, 0, buf) // hole read: must consult bmap
		f.Read(p, 0, buf) // cached hole page: still may not skip
		if r.eng.Stats.BmapSkips != 0 {
			t.Errorf("bmapSkips = %d on a sparse file, want 0", r.eng.Stats.BmapSkips)
		}
	})
}

// --- Further Work: random clustering ---------------------------------------

func TestRandomClusteringHint(t *testing.T) {
	// "Certain access patterns, such as random reads of 20KB segments
	// of a file, will not receive the full benefits of clustering"
	// without the hint; with it the request size drives the transfer.
	mk, _ := clusteredOpts()
	prep := func(hint bool) (*rig, *File) {
		cfg := ConfigA()
		cfg.RandomClustering = hint
		r := newRig(t, mk, cfg, 0)
		var f *File
		r.run(t, func(p *sim.Proc) {
			f, _ = r.eng.Create(p, "/f")
			f.Write(p, 0, make([]byte, 2<<20))
			f.Purge(p)
			r.d.Stats = disk.Stats{}
			// Random 56KB reads at descending, non-sequential offsets.
			buf := make([]byte, 56<<10)
			for _, lbn := range []int64{200, 50, 150, 100, 10} {
				f.Read(p, lbn*8192, buf)
			}
		})
		return r, f
	}
	rOff, _ := prep(false)
	rOn, _ := prep(true)
	if rOn.eng.Stats.HintClusters == 0 {
		t.Fatal("hint never engaged")
	}
	if rOn.d.Stats.Reads >= rOff.d.Stats.Reads {
		t.Errorf("hinted random reads used %d disk I/Os, unhinted %d: no clustering benefit",
			rOn.d.Stats.Reads, rOff.d.Stats.Reads)
	}
}

func TestRandomClusteringDataIntact(t *testing.T) {
	mk, _ := clusteredOpts()
	cfg := ConfigA()
	cfg.RandomClustering = true
	r := newRig(t, mk, cfg, 0)
	data := make([]byte, 1<<20)
	pattern(data, 9)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		f.Write(p, 0, data)
		f.Purge(p)
		got := make([]byte, 40<<10)
		for _, off := range []int64{640 << 10, 128 << 10, 896 << 10, 0} {
			f.Read(p, off, got)
			if !bytes.Equal(got, data[off:off+int64(len(got))]) {
				t.Errorf("hinted read at %d corrupted data", off)
				return
			}
		}
	})
}

// --- Further Work: bmap cache (ufs-level, exercised through the engine) ----

func TestBmapCacheSpeedsLargeFileReads(t *testing.T) {
	mk, cfg := clusteredOpts()
	run := func(cache bool) (*rig, int64) {
		r := newRigOpts(t, mk, cfg, ufs.MountOpts{BmapCache: cache})
		var cpuTime sim.Time
		r.run(t, func(p *sim.Proc) {
			f, _ := r.eng.Create(p, "/big")
			// Past the direct range so translations need the indirect
			// block.
			f.Write(p, 0, make([]byte, 2<<20))
			f.Purge(p)
			r.eng.CPU.Reset()
			buf := make([]byte, 8192)
			for off := int64(0); off < 2<<20; off += 8192 {
				f.Read(p, off, buf)
			}
			cpuTime = r.eng.CPU.SystemTime()
		})
		return r, int64(cpuTime)
	}
	rOff, tOff := run(false)
	rOn, tOn := run(true)
	if rOn.fs.BmapCacheHits == 0 {
		t.Fatal("bmap cache never hit")
	}
	if rOff.fs.BmapCacheHits != 0 {
		t.Fatal("bmap cache hit while disabled")
	}
	if tOn >= tOff {
		t.Errorf("bmap cache did not reduce CPU: %d vs %d", tOn, tOff)
	}
}

func TestBmapCacheInvalidatedByReallocation(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRigOpts(t, mk, cfg, ufs.MountOpts{BmapCache: true})
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		data := make([]byte, 128<<10)
		pattern(data, 3)
		f.Write(p, 0, data)
		f.Fsync(p)
		buf := make([]byte, 8192)
		f.Read(p, 0, buf) // populate the cache
		// Truncate and rewrite different content: stale translations
		// must not survive.
		f.Truncate(p, 0)
		pattern(data, 4)
		f.Write(p, 0, data)
		f.Purge(p)
		got := make([]byte, len(data))
		f.Read(p, 0, got)
		if !bytes.Equal(got, data) {
			t.Error("stale bmap cache served old translation")
		}
	})
	verifyOK(t, r)
}

// newRigOpts is newRig with explicit mount options.
func newRigOpts(t *testing.T, mkfs ufs.MkfsOpts, cfg Config, mo ufs.MountOpts) *rig {
	t.Helper()
	r := newRig(t, mkfs, cfg, mo.WriteLimit)
	fs, err := ufs.Mount(r.s, r.eng.CPU, r.dr, mo)
	if err != nil {
		t.Fatal(err)
	}
	r.fs = fs
	r.eng = NewEngine(r.s, r.eng.CPU, r.v, fs, cfg)
	return r
}

// --- Further Work: data in the inode ----------------------------------------

func TestInodeDataCacheServesSmallFiles(t *testing.T) {
	mk, _ := clusteredOpts()
	cfg := ConfigA()
	cfg.InodeDataCache = true
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/small")
		data := make([]byte, 1500)
		pattern(data, 13)
		f.Write(p, 0, data)
		f.Fsync(p)
		got := make([]byte, len(data))
		f.Read(p, 0, got) // populates the cache
		faults := r.eng.Stats.GetPages
		for i := 0; i < 10; i++ {
			f.Read(p, 0, got)
		}
		if r.eng.Stats.GetPages != faults {
			t.Errorf("%d extra getpage calls for inode-cached reads", r.eng.Stats.GetPages-faults)
		}
		if r.eng.Stats.InodeDataHits < 10 {
			t.Errorf("inodeDataHits = %d, want >= 10", r.eng.Stats.InodeDataHits)
		}
		if !bytes.Equal(got, data) {
			t.Error("inode data cache corrupted content")
		}
		// A write invalidates it.
		patch := []byte{0xAA, 0xBB}
		f.Write(p, 10, patch)
		f.Fsync(p)
		copy(data[10:], patch)
		f.Read(p, 0, got)
		if !bytes.Equal(got, data) {
			t.Error("stale inode data served after write")
		}
	})
}

func TestInodeDataCacheIgnoresLargeFiles(t *testing.T) {
	mk, _ := clusteredOpts()
	cfg := ConfigA()
	cfg.InodeDataCache = true
	r := newRig(t, mk, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/big")
		f.Write(p, 0, make([]byte, 64<<10))
		f.Fsync(p)
		buf := make([]byte, 8192)
		for i := 0; i < 5; i++ {
			f.Read(p, 0, buf)
		}
		if r.eng.Stats.InodeDataHits != 0 {
			t.Errorf("inode cache engaged for a %dKB file", 64)
		}
	})
}
