// Package core implements the paper's contribution: the UFS data path
// (rdwr / getpage / putpage) in two selectable forms — the legacy SunOS
// 4.1 block-at-a-time engine with one-block read-ahead, and the SunOS
// 4.1.1 clustering engine that transfers maxcontig-sized clusters,
// delays writes until a cluster accumulates (or sequentiality breaks),
// frees pages behind large sequential reads, and bounds per-file write
// queueing with a counting semaphore. The two engines run over the same
// on-disk format; only this code path differs, exactly as in the paper.
package core

// Costs is the instruction-count model for the kernel code path,
// consumed by the cpu.Model. The defaults are calibrated so that, on the
// default 12-MIPS machine, the legacy engine reproduces the paper's
// intro claim ("about half of a 12MIPS CPU ... half of the bandwidth of
// a 1.5MB/second disk") and the mmap CPU comparison of Figure 12 lands
// near 3.4s vs 2.6s for a 16 MB read.
type Costs struct {
	Syscall     int64 // per read/write entry (uio setup, vnode dispatch)
	MapBlock    int64 // per block map+unmap of the kernel window
	Fault       int64 // page fault handling (as_fault through segmap)
	GetPage     int64 // ufs_getpage body, excluding bmap
	PutPage     int64 // ufs_putpage body
	PageLookup  int64 // page cache hash lookup or insert
	CopyPerByte int64 // kernel<->user copy, instructions per byte
	ZeroPerByte int64 // page zero-fill for holes
}

// DefaultCosts returns the calibrated model.
func DefaultCosts() Costs {
	return Costs{
		Syscall:     3000,
		MapBlock:    2000,
		Fault:       7000,
		GetPage:     5000,
		PutPage:     3500,
		PageLookup:  400,
		CopyPerByte: 3,
		ZeroPerByte: 1,
	}
}
