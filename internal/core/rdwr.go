package core

import (
	"fmt"

	"ufsclust/internal/cpu"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/ufs"
	"ufsclust/internal/vm"
)

// Read is the ufs_rdwr read path: break the request into blocks, map
// each block into the kernel window (faulting through GetPage), copy to
// the caller, and unmap — applying free-behind on the unmap when the
// engine is configured for it.
func (f *File) Read(p *sim.Proc, off int64, buf []byte) (int, error) {
	e, vn := f.eng, f.vn
	sb := e.FS.SB
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset")
	}
	if err := vn.Err(); err != nil {
		return 0, err
	}
	e.charge(p, cpu.Syscall, e.Cfg.Costs.Syscall)

	// Further Work, "data in the inode": serve small files from the
	// in-core inode copy, skipping the map/fault/page machinery.
	if e.Cfg.InodeDataCache && vn.IP.D.Size <= InodeDataMax {
		if vn.inodeData == nil {
			// First touch: fill the cache through the normal path.
			pg, err := e.GetPage(p, vn, 0)
			if err != nil {
				return 0, err
			}
			if err := vn.Err(); err != nil {
				return 0, err
			}
			vn.inodeData = append([]byte(nil), pg.Data[:vn.IP.D.Size]...)
		} else {
			e.Stats.InodeDataHits++
		}
		if off >= vn.IP.D.Size {
			return 0, nil
		}
		n := copy(buf, vn.inodeData[off:])
		e.charge(p, cpu.Copy, e.Cfg.Costs.CopyPerByte*int64(n))
		return n, nil
	}

	total := 0
	for len(buf) > 0 && off < vn.IP.D.Size {
		boff := sb.Blkoff(off)
		n := int(sb.Bsize) - boff
		if n > len(buf) {
			n = len(buf)
		}
		if rem := vn.IP.D.Size - off; int64(n) > rem {
			n = int(rem)
		}

		// Map the block; the first touch faults. The request's total
		// remaining span travels down as the random-clustering hint.
		e.charge(p, cpu.Syscall, e.Cfg.Costs.MapBlock)
		e.charge(p, cpu.Fault, e.Cfg.Costs.Fault)
		hint := (boff + len(buf) + int(sb.Bsize) - 1) / int(sb.Bsize)
		pg, err := e.GetPageHint(p, vn, off-int64(boff), hint)
		if err != nil {
			return total, err
		}
		// The demand read for this page has completed (GetPage waits):
		// if it failed, the vnode error is latched by now.
		if err := vn.Err(); err != nil {
			return total, err
		}
		pg.Touch()

		e.charge(p, cpu.Copy, e.Cfg.Costs.CopyPerByte*int64(n))
		copy(buf[:n], pg.Data[boff:boff+n])

		// Unmap; free-behind triggers here: "if the file is in
		// sequential read mode, at a large enough offset, and free
		// memory is close to the low water mark".
		if e.Cfg.FreeBehind && vn.seq && boff+n == int(sb.Bsize) &&
			off >= e.Cfg.FreeBehindMin && e.VM.MemoryLow() &&
			!pg.Dirty() && !pg.Busy() {
			e.VM.Free(pg, true)
			e.Stats.FreeBehinds++
			e.Bus.Emit(telemetry.Event{T: e.Sim.Now(), Kind: telemetry.EvFreeBehind, LBN: pg.Off / int64(sb.Bsize), Blocks: 1})
		}

		buf = buf[n:]
		off += int64(n)
		total += n
	}
	return total, nil
}

// segPager adapts the engine's getpage to the VM segment driver: the
// fault chain of the paper's Background section terminates here.
type segPager struct{ e *Engine }

// Fault implements vm.SegPager.
func (sp segPager) Fault(p *sim.Proc, obj vm.Object, off int64) (*vm.Page, error) {
	vn := obj.(*Vnode)
	sp.e.charge(p, cpu.Fault, sp.e.Cfg.Costs.Fault)
	return sp.e.GetPage(p, vn, off)
}

// Mmap maps the whole file at address 0 of a fresh address space, as
// the Figure 12 benchmark program would.
func (f *File) Mmap(p *sim.Proc) (*vm.AddressSpace, *vm.Seg, error) {
	as := vm.NewAddressSpace(f.eng.VM)
	length := (f.vn.IP.D.Size + vm.PageSize - 1) &^ (vm.PageSize - 1)
	if length == 0 {
		length = vm.PageSize
	}
	seg, err := as.Map(0, length, f.vn, 0, segPager{f.eng})
	if err != nil {
		return nil, nil, err
	}
	return as, seg, nil
}

// ReadMmap is the mmap read path used by the Figure 12 CPU benchmark:
// map the file, touch every page through the address-space fault chain
// — no per-call syscall, no kernel window management, no copy out.
func (f *File) ReadMmap(p *sim.Proc, off int64, length int64) error {
	e, vn := f.eng, f.vn
	sb := e.FS.SB
	as, _, err := f.Mmap(p)
	if err != nil {
		return err
	}
	for length > 0 && off < vn.IP.D.Size {
		boff := sb.Blkoff(off)
		n := int64(int(sb.Bsize) - boff)
		if n > length {
			n = length
		}
		pg, err := as.Touch(p, off-int64(boff))
		if err != nil {
			return err
		}
		if e.Cfg.FreeBehind && vn.seq && boff+int(n) == int(sb.Bsize) &&
			off >= e.Cfg.FreeBehindMin && e.VM.MemoryLow() &&
			!pg.Dirty() && !pg.Busy() {
			e.VM.Free(pg, true)
			e.Stats.FreeBehinds++
			e.Bus.Emit(telemetry.Event{T: e.Sim.Now(), Kind: telemetry.EvFreeBehind, LBN: pg.Off / int64(sb.Bsize), Blocks: 1})
		}
		off += n
		length -= n
	}
	return nil
}

// Write is the ufs_rdwr write path: allocate backing store, get the
// block's page (reading the old contents only for partial overwrites),
// copy the caller's data in, and hand the page to PutPage on unmap.
func (f *File) Write(p *sim.Proc, off int64, data []byte) (int, error) {
	e, vn := f.eng, f.vn
	sb := e.FS.SB
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset")
	}
	if err := vn.Err(); err != nil {
		return 0, err
	}
	e.charge(p, cpu.Syscall, e.Cfg.Costs.Syscall)
	vn.inodeData = nil // writes invalidate the inode data cache

	// FFS keeps fragments only in a file's last block: extending the
	// file past a fragmented tail must first expand that tail to a full
	// block (reading its current contents in, since the expansion may
	// relocate it).
	if oldSize := vn.IP.D.Size; oldSize > 0 && off+int64(len(data)) > oldSize {
		lastLbn := (oldSize - 1) / int64(sb.Bsize)
		tail := sb.BlkSize(oldSize, lastLbn)
		if lastLbn < ufs.NDADDR && tail < int(sb.Bsize) &&
			off+int64(len(data)) > (lastLbn+1)*int64(sb.Bsize) {
			e.charge(p, cpu.Fault, e.Cfg.Costs.Fault)
			pg, err := e.GetPage(p, vn, lastLbn*int64(sb.Bsize))
			if err != nil {
				return 0, err
			}
			if _, err := e.FS.BmapAlloc(p, vn.IP, lastLbn, int(sb.Bsize)); err != nil {
				return 0, err
			}
			// The block is whole now; round the size up to the block
			// boundary (the new bytes are zeros, about to be
			// overwritten or legitimately zero) so later allocations
			// see a full tail.
			vn.IP.D.Size = (lastLbn + 1) * int64(sb.Bsize)
			vn.IP.MarkDirty()
			pg.SetDirty()
			e.PutPage(p, vn, lastLbn*int64(sb.Bsize))
		}
	}

	total := 0
	for len(data) > 0 {
		boff := sb.Blkoff(off)
		n := int(sb.Bsize) - boff
		if n > len(data) {
			n = len(data)
		}
		lbn := sb.Lblkno(off)
		blockStart := off - int64(boff)

		// Size the allocation for this block: whole blocks everywhere
		// except a direct-range tail.
		endInBlock := boff + n
		allocSize := int(sb.Bsize)
		newEOF := off + int64(n)
		if newEOF >= vn.IP.D.Size && lbn < ufs.NDADDR && newEOF < (lbn+1)*int64(sb.Bsize) {
			if old := sb.BlkSize(vn.IP.D.Size, lbn); old > endInBlock {
				allocSize = old
			} else {
				allocSize = endInBlock
			}
		}
		fsbn, err := e.FS.BmapAlloc(p, vn.IP, lbn, allocSize)
		if err != nil {
			return total, err
		}
		_ = fsbn

		e.charge(p, cpu.Syscall, e.Cfg.Costs.MapBlock)
		e.charge(p, cpu.Fault, e.Cfg.Costs.Fault)

		// Partial overwrite of existing data needs the old contents;
		// a full-block write (or a write wholly beyond the old EOF)
		// does not.
		page, cached := e.VM.Lookup(vn, blockStart)
		e.charge(p, cpu.PageCache, e.Cfg.Costs.PageLookup)
		needOld := (boff != 0 || n != int(sb.Bsize)) && blockStart < vn.IP.D.Size
		if cached {
			page.WaitUnbusy(p)
			e.Stats.CacheHits++
			if page.TakeRA() {
				e.Stats.RAHits++
			}
		} else if needOld {
			page, err = e.GetPage(p, vn, blockStart)
			if err != nil {
				return total, err
			}
		} else {
			page = e.VM.Alloc(p, vn, blockStart)
			for i := range page.Data {
				page.Data[i] = 0
			}
			page.Unbusy()
		}

		e.charge(p, cpu.Copy, e.Cfg.Costs.CopyPerByte*int64(n))
		copy(page.Data[boff:boff+n], data[:n])
		page.SetDirty()
		page.Touch()

		if newEOF > vn.IP.D.Size {
			vn.IP.D.Size = newEOF
			vn.IP.MarkDirty()
		}

		// Unmap: ufs_putpage is called to start the I/O.
		e.PutPage(p, vn, blockStart)

		data = data[n:]
		off += int64(n)
		total += n
	}
	return total, nil
}
