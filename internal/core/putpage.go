package core

import (
	"ufsclust/internal/cpu"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/vm"
)

// PutPage is called when a written block is unmapped: hand the dirty
// page at byte offset off to the I/O system. The legacy engine starts
// the write immediately; the clustering engine "handles writes by
// assuming sequential I/O and pretending that the I/O completed
// immediately (in other words, do nothing)" until a cluster accumulates
// or the sequentiality assumption breaks (Figures 7 and 8).
func (e *Engine) PutPage(p *sim.Proc, vn *Vnode, off int64) {
	e.Stats.PutPages++
	e.charge(p, cpu.PutPage, e.Cfg.Costs.PutPage)
	if !e.Cfg.Clustered {
		e.push(p, vn, off, int64(e.FS.SB.Bsize), true)
		return
	}
	bsize := int64(e.FS.SB.Bsize)
	maxBytes := int64(e.maxClusterBlocks()) * bsize

	ip := vn.IP
	if ip.Delaylen == 0 || ip.Delayoff+ip.Delaylen == off {
		// Sequential (or first): lie.
		if ip.Delaylen == 0 {
			ip.Delayoff = off
		}
		ip.Delaylen += bsize
		e.Stats.Lies++
		e.Bus.Emit(telemetry.Event{T: e.Sim.Now(), Kind: telemetry.EvWriteLie, LBN: off / bsize, Blocks: 1})
		if ip.Delaylen >= maxBytes {
			e.push(p, vn, ip.Delayoff, ip.Delaylen, true)
			ip.Delayoff, ip.Delaylen = 0, 0
		}
		return
	}
	// Sequentiality assumption was wrong: flush the old window and
	// start over with the current page.
	e.push(p, vn, ip.Delayoff, ip.Delaylen, true)
	ip.Delayoff, ip.Delaylen = off, bsize
}

// push writes out the dirty cached pages in [off, off+length), grouping
// physically contiguous runs into single transfers (the while loop of
// Figure 8: "we do not know if the file is allocated contiguously until
// we try to write out the cluster"). limit applies the per-file write
// limit; the pageout daemon passes false so it can always make progress.
func (e *Engine) push(p *sim.Proc, vn *Vnode, off, length int64, limit bool) {
	sb := e.FS.SB
	bsize := int64(sb.Bsize)
	e.Stats.Pushes++

	lbn := off / bsize
	end := (off + length + bsize - 1) / bsize
	for lbn < end {
		// Find the next dirty, unlocked, cached page.
		e.charge(p, cpu.PageCache, e.Cfg.Costs.PageLookup)
		pg, ok := e.VM.Lookup(vn, lbn*bsize)
		if !ok || !pg.Dirty() || pg.Busy() {
			lbn++
			continue
		}
		fsbn, contig, err := e.FS.Bmap(p, vn.IP, lbn)
		if err != nil {
			// An indirect block could not be read: the page's backing
			// location is unknowable. Latch the error and drop the page's
			// dirty bit — leaving it dirty would spin the pageout daemon
			// against the same failure forever.
			vn.recordErr(err)
			pg.ClearDirty()
			lbn++
			continue
		}
		if fsbn == 0 {
			panic("core: dirty page over a hole") // simlint:invariant -- writes allocate backing before dirtying
		}
		if !e.Cfg.Clustered {
			contig = 1
		}
		if max := e.maxClusterBlocks(); contig > max {
			contig = max
		}
		// A single transfer may never exceed the per-file write limit,
		// or its semaphore P could not be satisfied even by an empty
		// queue.
		if limit && vn.IP.WriteSem != nil {
			if lim := int(e.FS.WriteLimit / bsize); lim >= 1 && contig > lim {
				contig = lim
			}
		}
		if rem := int(end - lbn); contig > rem {
			contig = rem
		}
		// Gather the dirty run within the contiguous extent.
		var pages []*vm.Page
		var sizes []int
		bytes := 0
		for i := 0; i < contig; i++ {
			bl := lbn + int64(i)
			var q *vm.Page
			if i == 0 {
				q = pg
			} else {
				var ok2 bool
				q, ok2 = e.VM.Lookup(vn, bl*bsize)
				if !ok2 || !q.Dirty() || q.Busy() {
					break
				}
			}
			n := sb.BlkSize(vn.IP.D.Size, bl)
			if n <= 0 {
				break
			}
			q.SetBusy()
			pages = append(pages, q)
			sizes = append(sizes, n)
			bytes += n
		}
		if len(pages) == 0 {
			lbn++
			continue
		}

		xfer := make([]byte, bytes)
		o := 0
		for i, q := range pages {
			copy(xfer[o:], q.Data[:sizes[i]])
			o += sizes[i]
		}
		if limit {
			vn.writeStarted(p, int64(bytes))
		} else {
			vn.pending += int64(bytes)
		}
		e.Bus.Emit(telemetry.Event{
			T:      e.Sim.Now(),
			Kind:   telemetry.EvClusterPush,
			LBN:    lbn,
			Blocks: int64(len(pages)),
			Bytes:  int64(bytes),
			Write:  true,
		})
		e.Stats.WriteIOs++
		e.Stats.WriteBlocks += int64(len(pages))
		pgs := pages
		nbytes := int64(bytes)
		limited := limit
		e.FS.Drv.Strategy(p, &driver.Buf{
			Blkno: sb.FsbToDb(fsbn),
			Data:  xfer,
			Write: true,
			Iodone: func(b *driver.Buf) {
				if b.Err != nil {
					// Data never reached the platter: latch the error so
					// Fsync reports it. The pages still unbusy and drop
					// their dirty bits — repushing would only refail.
					vn.recordErr(b.Err)
				}
				for _, q := range pgs {
					q.ClearDirty()
					q.Unbusy()
				}
				if limited {
					vn.writeDone(nbytes)
				} else {
					vn.pending -= nbytes
					if vn.pending == 0 {
						vn.pendingWait.WakeAll()
					}
				}
			},
		})
		lbn += int64(len(pages))
	}
}

// PageOut implements vm.Object: the pageout daemon found this dirty
// page while laundering memory. The engine clusters around it when
// clustering is on (and removes the written range from the delayed
// window so a later putpage does not double-push it).
func (vn *Vnode) PageOut(p *sim.Proc, pg *vm.Page) {
	e := vn.eng
	e.Stats.DaemonPushes++
	// The daemon marked pg busy to claim it; release that claim and let
	// push's own locking take over.
	pg.Unbusy()
	bsize := int64(e.FS.SB.Bsize)
	length := bsize
	if e.Cfg.Clustered {
		length = int64(e.maxClusterBlocks()) * bsize
	}
	// Trim the delayed window if we are writing part of it.
	ip := vn.IP
	if ip.Delaylen > 0 && pg.Off >= ip.Delayoff && pg.Off < ip.Delayoff+ip.Delaylen {
		ip.Delaylen = pg.Off - ip.Delayoff
	}
	e.push(p, vn, pg.Off, length, false)
}
