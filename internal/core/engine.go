package core

import (
	"fmt"

	"ufsclust/internal/cpu"
	"ufsclust/internal/prefetch"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/ufs"
	"ufsclust/internal/vec"
	"ufsclust/internal/vm"
)

// Config selects which engine behaviours are active, mirroring the
// paper's Figure 9 run matrix. The on-disk tuning (rotdelay, maxcontig)
// lives in the superblock; these switches are the code-path half.
type Config struct {
	// Clustered selects the new getpage/putpage implementation. With
	// maxcontig=1 in the superblock it degrades gracefully to one-block
	// clusters (the paper's run B).
	Clustered bool
	// ReadAhead enables prefetching on detected sequential access (both
	// engines have it; disabling isolates its effect in ablations).
	ReadAhead bool
	// Prefetch selects the clustered engine's read-ahead policy: how
	// many clusters to issue at each trigger. nil selects the fixed
	// one-cluster policy (the paper's nextrio behaviour, byte-identical
	// to the pre-policy engine); prefetch.NewAdaptive gives the
	// confidence-driven ramping window. The legacy block-at-a-time
	// engine keeps its hardwired one-block read-ahead regardless.
	Prefetch prefetch.Policy
	// Vec selects the vectored-I/O strategy Readv/Writev dispatch
	// through: data sieving vs. true list I/O (see internal/vec). nil
	// selects the density-threshold vec.Auto policy. Single-element
	// vectors bypass the strategy entirely and take the scalar paths.
	Vec vec.Strategy
	// FreeBehind releases pages behind large sequential reads when
	// memory is low, turning LRU into MRU for streaming I/O.
	FreeBehind bool
	// FreeBehindMin is the file offset after which free-behind may
	// engage ("at a large enough offset").
	FreeBehindMin int64

	// SkipBmapOnHit enables the Further Work "UFS_HOLE" optimization:
	// when the requested page is already cached and the file has no
	// holes, skip the bmap call that getpage otherwise makes purely to
	// detect unbacked pages.
	SkipBmapOnHit bool
	// RandomClustering enables the Further Work idea of passing the
	// request size down to getpage "as a hint to turn on clustering
	// for what is apparently random access".
	RandomClustering bool
	// InodeDataCache enables the Further Work "data in the inode"
	// idea: files smaller than InodeDataMax are cached in the in-core
	// inode, so "the system could satisfy many requests directly from
	// the inode instead of the page cache" — avoiding per-page
	// fragmentation for the many files under 2 KB. In-core only; the
	// on-disk format is untouched.
	InodeDataCache bool

	// Costs is the CPU model; zero value means DefaultCosts.
	Costs Costs
}

// ConfigA..ConfigD return the code-path halves of the paper's Figure 9
// runs. (The matching mkfs tunings are: A rotdelay 0 maxcontig 15; B-D
// rotdelay 4ms maxcontig 1. The write limit is a mount option.)
func ConfigA() Config {
	return Config{Clustered: true, ReadAhead: true, FreeBehind: true, Costs: DefaultCosts()}
}

// ConfigB is the legacy SunOS 4.1 code plus the free-behind and
// write-limit heuristics.
func ConfigB() Config {
	return Config{Clustered: false, ReadAhead: true, FreeBehind: true, Costs: DefaultCosts()}
}

// ConfigC is the legacy code plus only the write limit (set at mount).
func ConfigC() Config {
	return Config{Clustered: false, ReadAhead: true, FreeBehind: false, Costs: DefaultCosts()}
}

// ConfigD approximates stock SunOS 4.1.
func ConfigD() Config { return ConfigC() }

// Stats counts engine events.
type Stats struct {
	GetPages      int64 // getpage calls (faults reaching the file system)
	PutPages      int64 // putpage calls
	CacheHits     int64 // getpage satisfied without I/O
	SyncReads     int64 // demand reads issued
	AsyncReads    int64 // read-ahead reads issued
	ReadBlocks    int64 // blocks moved by reads
	WriteIOs      int64 // write requests issued
	WriteBlocks   int64 // blocks moved by writes
	Lies          int64 // delayed ("lied about") putpages
	Pushes        int64 // delayed-window flushes
	FreeBehinds   int64
	ZeroFills     int64 // hole reads
	WriteStalls   int64 // writes blocked on the per-file limit
	DaemonPushes  int64 // pageouts initiated by the VM daemon
	BmapSkips     int64 // bmap calls avoided by SkipBmapOnHit
	HintClusters  int64 // random reads clustered via the size hint
	InodeDataHits int64 // small-file reads served from the inode cache
	RAHits        int64 // demand accesses satisfied by a read-ahead page
	RATriggers    int64 // read-ahead trigger points reached
	RACollapses   int64 // policy collapses on a random seek
	RAClampMem    int64 // windows reduced by the free-memory clamp
	RAClampSem    int64 // windows reduced by the write-limit clamp
	VecCalls      int64 // multi-element Readv/Writev calls dispatched
	VecRuns       int64 // merged runs across all vectored calls
	VecCoalesced  int64 // vector elements absorbed into a shared run
	SieveWaste    int64 // sieving overhead bytes (gap transfer + RMW read-back)
}

// InodeDataMax is the size cap for the inode data cache ("many files
// are small, less than 2KB").
const InodeDataMax = 2048

// Engine binds the data path to a mounted file system and VM system.
type Engine struct {
	Sim *sim.Sim
	CPU *cpu.Model // may be nil (untimed tests)
	VM  *vm.VM
	FS  *ufs.Fs
	Cfg Config

	vnodes map[int32]*Vnode
	Stats  Stats

	// Bus receives the engine's structured events (EvSyncRead,
	// EvReadAhead, EvWriteLie, EvClusterPush, EvFreeBehind); nil (and
	// nil-safe) until AttachTelemetry. The figure tracer
	// (internal/trace) subscribes to it to render the paper's
	// access-pattern tables from live execution.
	Bus *telemetry.Bus

	// raWindow distributes the blocks issued per read-ahead trigger
	// (0 = an armed-but-empty window); nil (and nil-safe) until
	// AttachTelemetry.
	raWindow *telemetry.Histogram
}

// AttachTelemetry registers the engine's counters and connects it to
// the event bus.
func (e *Engine) AttachTelemetry(tel *telemetry.Telemetry) {
	e.Bus = tel.Bus
	r := tel.Reg
	r.Counter("core.getpages", func() int64 { return e.Stats.GetPages })
	r.Counter("core.putpages", func() int64 { return e.Stats.PutPages })
	r.Counter("core.cache_hits", func() int64 { return e.Stats.CacheHits })
	r.Counter("core.sync_reads", func() int64 { return e.Stats.SyncReads })
	r.Counter("core.async_reads", func() int64 { return e.Stats.AsyncReads })
	r.Counter("core.read_blocks", func() int64 { return e.Stats.ReadBlocks })
	r.Counter("core.write_ios", func() int64 { return e.Stats.WriteIOs })
	r.Counter("core.write_blocks", func() int64 { return e.Stats.WriteBlocks })
	r.Counter("core.lies", func() int64 { return e.Stats.Lies })
	r.Counter("core.pushes", func() int64 { return e.Stats.Pushes })
	r.Counter("core.free_behinds", func() int64 { return e.Stats.FreeBehinds })
	r.Counter("core.zero_fills", func() int64 { return e.Stats.ZeroFills })
	r.Counter("core.write_stalls", func() int64 { return e.Stats.WriteStalls })
	r.Counter("core.daemon_pushes", func() int64 { return e.Stats.DaemonPushes })
	r.Counter("core.bmap_skips", func() int64 { return e.Stats.BmapSkips })
	r.Counter("core.hint_clusters", func() int64 { return e.Stats.HintClusters })
	r.Counter("core.inode_data_hits", func() int64 { return e.Stats.InodeDataHits })
	r.Counter("core.ra_hits", func() int64 { return e.Stats.RAHits })
	r.Counter("core.ra_triggers", func() int64 { return e.Stats.RATriggers })
	r.Counter("core.ra_collapses", func() int64 { return e.Stats.RACollapses })
	r.Counter("core.ra_clamp_mem", func() int64 { return e.Stats.RAClampMem })
	r.Counter("core.ra_clamp_sem", func() int64 { return e.Stats.RAClampSem })
	r.Counter("core.vec_calls", func() int64 { return e.Stats.VecCalls })
	r.Counter("core.vec_runs", func() int64 { return e.Stats.VecRuns })
	r.Counter("core.vec_coalesced", func() int64 { return e.Stats.VecCoalesced })
	r.Counter("core.sieve_waste", func() int64 { return e.Stats.SieveWaste })
	e.raWindow = r.Hist(telemetry.NewHistogram("core.ra_window", telemetry.UnitCount, telemetry.DepthBounds()))
}

// NewEngine wires up an engine. The cluster size is the superblock's
// maxcontig capped by the driver's maxphys.
func NewEngine(s *sim.Sim, cpuModel *cpu.Model, vmSys *vm.VM, fs *ufs.Fs, cfg Config) *Engine {
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.FreeBehindMin == 0 {
		cfg.FreeBehindMin = 128 << 10
	}
	return &Engine{Sim: s, CPU: cpuModel, VM: vmSys, FS: fs, Cfg: cfg, vnodes: make(map[int32]*Vnode)}
}

// maxClusterBlocks returns the effective cluster size in blocks.
func (e *Engine) maxClusterBlocks() int {
	mc := int(e.FS.SB.Maxcontig)
	if mc < 1 {
		mc = 1
	}
	if byPhys := e.FS.Drv.MaxPhys() / int(e.FS.SB.Bsize); mc > byPhys {
		mc = byPhys
	}
	return mc
}

// fixedPolicy is the default read-ahead policy, shared safely across
// engines because it is stateless.
var fixedPolicy = prefetch.NewFixed()

// policy returns the configured read-ahead policy, defaulting to the
// paper's fixed one-cluster behaviour.
func (e *Engine) policy() prefetch.Policy {
	if e.Cfg.Prefetch != nil {
		return e.Cfg.Prefetch
	}
	return fixedPolicy
}

// autoVec is the default vectored-I/O strategy, shared safely across
// engines because it is stateless.
var autoVec = vec.Auto(0)

// vecStrategy returns the configured vectored-I/O strategy, defaulting
// to the density-threshold auto policy.
func (e *Engine) vecStrategy() vec.Strategy {
	if e.Cfg.Vec != nil {
		return e.Cfg.Vec
	}
	return autoVec
}

func (e *Engine) charge(p *sim.Proc, c cpu.Category, instr int64) {
	if e.CPU != nil && p != nil && instr > 0 {
		e.CPU.Use(p, c, instr)
	}
}

// Vnode is the per-file object: the ufs inode plus engine state. It
// implements vm.Object so the pageout daemon can write its dirty pages.
type Vnode struct {
	eng *Engine
	IP  *ufs.Inode

	// pending counts bytes of write I/O in flight for this file.
	pending     int64
	pendingWait sim.WaitQ

	// seq tracks whether the current read pattern looks sequential.
	seq bool

	// inodeData caches the whole contents of a small file (<=
	// InodeDataMax) when Config.InodeDataCache is on; nil otherwise or
	// after invalidation.
	inodeData []byte

	// ioErr is the vnode's sticky I/O error: the first device error seen
	// by any of this file's transfers (including asynchronous ones whose
	// initiating call already returned). Once set, Read, Write and Fsync
	// fail with it — the classic "EIO until the file is closed" contract.
	ioErr error
}

// recordErr latches the vnode's first I/O error.
func (vn *Vnode) recordErr(err error) {
	if vn.ioErr == nil && err != nil {
		vn.ioErr = err
	}
}

// Err returns the vnode's sticky I/O error, if any.
func (vn *Vnode) Err() error { return vn.ioErr }

// vnode returns (creating if needed) the vnode for an inode.
func (e *Engine) vnode(ip *ufs.Inode) *Vnode {
	if vn, ok := e.vnodes[ip.Ino]; ok {
		return vn
	}
	vn := &Vnode{eng: e, IP: ip}
	vn.pendingWait.Name = fmt.Sprintf("vnode.%d.pending", ip.Ino)
	e.vnodes[ip.Ino] = vn
	return vn
}

// File is an open file handle.
type File struct {
	eng *Engine
	vn  *Vnode
}

// Open resolves path and returns a handle.
func (e *Engine) Open(p *sim.Proc, path string) (*File, error) {
	ip, err := e.FS.Namei(p, path)
	if err != nil {
		return nil, err
	}
	return &File{eng: e, vn: e.vnode(ip)}, nil
}

// Create makes a new file and returns a handle.
func (e *Engine) Create(p *sim.Proc, path string) (*File, error) {
	ip, err := e.FS.Create(p, path)
	if err != nil {
		return nil, err
	}
	return &File{eng: e, vn: e.vnode(ip)}, nil
}

// Remove unlinks path, first flushing and discarding any engine state
// (delayed writes, cached pages) so a later file reusing the inode
// number starts clean.
func (e *Engine) Remove(p *sim.Proc, path string) error {
	ip, err := e.FS.Namei(p, path)
	if err != nil {
		return err
	}
	if vn, ok := e.vnodes[ip.Ino]; ok {
		f := &File{eng: e, vn: vn}
		f.Purge(p)
		delete(e.vnodes, ip.Ino)
	}
	e.FS.Iput(p, ip)
	return e.FS.Remove(p, path)
}

// Size returns the current file length.
func (f *File) Size() int64 { return f.vn.IP.D.Size }

// Inode exposes the underlying inode (benchmarks inspect layout).
func (f *File) Inode() *ufs.Inode { return f.vn.IP }

// Fsync pushes any delayed writes, waits for all of this file's write
// I/O to reach the platter, and then writes the file's metadata (the
// indirect blocks and the inode itself) synchronously. Only when Fsync
// returns nil is the file's data durable: a power cut after that point
// loses nothing that was written before the call.
func (f *File) Fsync(p *sim.Proc) error {
	vn := f.vn
	if vn.IP.Delaylen > 0 {
		f.eng.push(p, vn, vn.IP.Delayoff, vn.IP.Delaylen, true)
		vn.IP.Delayoff, vn.IP.Delaylen = 0, 0
	}
	for vn.pending > 0 {
		p.Block(&vn.pendingWait)
	}
	if err := f.eng.FS.SyncInode(p, vn.IP); err != nil {
		vn.recordErr(err)
	}
	if err := vn.Err(); err != nil {
		return err
	}
	// A metadata write that failed with no caller to report to (an
	// eviction, a delayed bitmap write) is sticky on the file system.
	return f.eng.FS.IOErr()
}

// Purge flushes delayed writes and evicts every cached page of the
// file: the "cold cache" primitive benchmarks use between a file's
// creation and its measured read. It also resets the read predictors.
func (f *File) Purge(p *sim.Proc) error {
	err := f.Fsync(p)
	for _, pg := range f.eng.VM.ObjectPages(f.vn) {
		pg.WaitUnbusy(p)
		f.eng.VM.Destroy(pg)
	}
	f.vn.IP.Nextr, f.vn.IP.Nextrio = 0, 0
	f.vn.seq = false
	f.vn.inodeData = nil
	f.eng.policy().Forget(f.vn.IP.Ino)
	return err
}

// Truncate resizes the file, invalidating cached pages past the end.
func (f *File) Truncate(p *sim.Proc, size int64) error {
	f.vn.inodeData = nil
	if err := f.Fsync(p); err != nil {
		return err
	}
	for _, pg := range f.eng.VM.ObjectPages(f.vn) {
		if pg.Off >= size {
			pg.WaitUnbusy(p)
			f.eng.VM.Destroy(pg)
		}
	}
	return f.eng.FS.Truncate(p, f.vn.IP, size)
}

// writeStarted accounts n bytes of write I/O entering the queue,
// stalling on the per-file limit if one is set.
func (vn *Vnode) writeStarted(p *sim.Proc, n int64) {
	if vn.IP.WriteSem != nil {
		if vn.IP.WriteSem.Value() < n {
			vn.eng.Stats.WriteStalls++
		}
		vn.IP.WriteSem.P(p, n)
	}
	vn.pending += n
}

// writeDone releases the accounting from interrupt context.
func (vn *Vnode) writeDone(n int64) {
	if vn.IP.WriteSem != nil {
		vn.IP.WriteSem.V(n)
	}
	vn.pending -= n
	if vn.pending == 0 {
		vn.pendingWait.WakeAll()
	}
}
