package core

import (
	"bytes"
	"fmt"
	"testing"

	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
	"ufsclust/internal/vm"
	"ufsclust/internal/vol"
)

// newVolRig is newRig with the single drive replaced by a composed
// volume: the engine, file system, and driver are wired identically,
// but requests fan out across member spindles whose service processes
// interleave in the scheduler — exactly the extra concurrency the
// determinism gate must prove reproducible.
func newVolRig(t *testing.T, mkfs ufs.MkfsOpts, cfg Config, writeLimit int64, vc vol.Config) (*rig, *vol.Volume) {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	cm := cpu.New(s, 12)
	if vc.Member == nil {
		dp := disk.DefaultParams()
		dp.Geom = disk.UniformGeometry(96, 8, 64, 3600) // ~25 MB per member
		vc.Member = &dp
	}
	vl, err := vol.New(s, "vol0", vc)
	if err != nil {
		t.Fatal(err)
	}
	dc := driver.DefaultConfig()
	dc.MaxPhys = 128 << 10
	dr := driver.New(s, vl, cm, dc)
	if _, err := ufs.Mkfs(vl, mkfs); err != nil {
		t.Fatal(err)
	}
	fs, err := ufs.Mount(s, cm, dr, ufs.MountOpts{WriteLimit: writeLimit})
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(s, cm, vm.Config{MemBytes: 8 << 20})
	eng := NewEngine(s, cm, v, fs, cfg)
	return &rig{s: s, dr: dr, fs: fs, v: v, eng: eng}, vl
}

// traceVolRun is traceRun on a volume-backed rig.
func traceVolRun(t *testing.T, vc vol.Config) (trace string, stats Stats, now sim.Time, fsck string) {
	t.Helper()
	mk, cfg := clusteredOpts()
	r, vl := newVolRig(t, mk, cfg, 240<<10, vc)
	var tw bytes.Buffer
	r.s.TraceW = &tw
	determinismWorkload(t, r)
	r.fs.SyncImage()
	rep, err := ufs.Fsck(vl)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("workload left an inconsistent file system: %v", rep.Problems)
	}
	return tw.String(), r.eng.Stats, r.s.Now(), fmt.Sprintf("%+v", *rep)
}

// TestSameSeedReplaysByteIdenticalOnVolumes extends the determinism
// gate over composed devices. A volume machine runs one service
// process per spindle plus parity read-modify-write phase chains in
// completion context, so any ordering leak in the volume layer (map
// iteration over members, unkeyed completion fan-in, ambient time)
// surfaces here as a trace divergence between same-seed runs.
func TestSameSeedReplaysByteIdenticalOnVolumes(t *testing.T) {
	for _, vc := range []vol.Config{
		{Level: vol.RAID0, Members: 3},
		{Level: vol.RAID1, Members: 2},
	} {
		vc := vc
		t.Run(fmt.Sprintf("%s-x%d", vc.Level, vc.Members), func(t *testing.T) {
			trace1, stats1, now1, fsck1 := traceVolRun(t, vc)
			trace2, stats2, now2, fsck2 := traceVolRun(t, vc)
			if trace1 == "" {
				t.Fatal("empty scheduler trace: TraceW is not capturing")
			}
			if trace1 != trace2 {
				t.Errorf("scheduler traces diverge: %s", firstDiff(trace1, trace2))
			}
			if stats1 != stats2 {
				t.Errorf("engine stats diverge:\nrun1: %+v\nrun2: %+v", stats1, stats2)
			}
			if now1 != now2 {
				t.Errorf("final virtual time diverges: %v vs %v", now1, now2)
			}
			if fsck1 != fsck2 {
				t.Errorf("fsck reports diverge: %s", firstDiff(fsck1, fsck2))
			}
		})
	}
}
