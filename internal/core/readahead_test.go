package core

import (
	"testing"

	"ufsclust/internal/prefetch"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

// raStep is one observation of the read-ahead state after a page read.
type raStep struct {
	sync, async int64
	nextrio     int64
}

// readTrace reads the first n pages of f sequentially and records the
// engine's read-ahead state after each one.
func readTrace(p *sim.Proc, r *rig, f *File, n int64) []raStep {
	buf := make([]byte, 8192)
	var got []raStep
	for i := int64(0); i < n; i++ {
		f.Read(p, i*8192, buf)
		got = append(got, raStep{r.eng.Stats.SyncReads, r.eng.Stats.AsyncReads, f.vn.IP.Nextrio})
	}
	return got
}

// TestAdaptiveRampAtEngineLevel walks the Figure 6 geometry (maxcontig=3)
// under the adaptive policy and pins the full ramp: the first trigger
// arms without issuing, the second issues one cluster, and each
// confirmed window doubles the next.
func TestAdaptiveRampAtEngineLevel(t *testing.T) {
	cfg := ConfigA()
	cfg.Prefetch = prefetch.NewAdaptive(prefetch.AdaptiveConfig{})
	r := newRig(t, ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 3}, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		data := make([]byte, 24*8192)
		f.Write(p, 0, data)
		f.Purge(p)
		r.eng.Stats = Stats{}

		got := readTrace(p, r, f, 10)
		// Page 0: sync cluster 0-2, but the unconfirmed detector only
		// arms — no prefetch yet (the burst defence), cursor at the
		// demand cluster's end.
		if got[0].sync != 1 || got[0].async != 0 || got[0].nextrio != 3 {
			t.Errorf("page 0: %+v, want sync=1 async=0 nextrio=3 (armed, nothing issued)", got[0])
		}
		// Page 1 (cached): the stream is confirmed; one cluster 3-5.
		if got[1].async != 1 || got[1].nextrio != 6 {
			t.Errorf("page 1: %+v, want async=1 nextrio=6 (first window: one cluster)", got[1])
		}
		// Page 3: trigger at the prefetched cluster; window doubles to
		// two clusters 6-11.
		if got[3].async != 3 || got[3].nextrio != 12 {
			t.Errorf("page 3: %+v, want async=3 nextrio=12 (doubled: two clusters)", got[3])
		}
		// Page 9: doubles again to four clusters 12-23 (end of file).
		if got[9].async != 7 || got[9].nextrio != 24 {
			t.Errorf("page 9: %+v, want async=7 nextrio=24 (doubled: four clusters)", got[9])
		}
		if got[9].sync != 1 {
			t.Errorf("sync reads = %d after 10 pages, want 1 (everything past page 0 prefetched)", got[9].sync)
		}

		// Finish the file: every remaining page was prefetched.
		buf := make([]byte, 8192)
		for i := int64(10); i < 24; i++ {
			f.Read(p, i*8192, buf)
		}
		if r.eng.Stats.SyncReads != 1 {
			t.Errorf("sync reads = %d over the whole file, want 1", r.eng.Stats.SyncReads)
		}
		if r.eng.Stats.RAHits != 21 {
			t.Errorf("ra hits = %d, want 21 (pages 3-23 prefetched)", r.eng.Stats.RAHits)
		}
	})
}

// TestAdaptiveCollapseAndReconfirm seeks away from a ramped stream and
// verifies the window collapses, then re-confirms where the reader
// resumed: arm on the first sequential access, prefetch again on the
// second. The fixed policy cannot do this — after the collapse resets
// the cursor, its exact-match trigger goes dead on a contiguous layout.
func TestAdaptiveCollapseAndReconfirm(t *testing.T) {
	ad := prefetch.NewAdaptive(prefetch.AdaptiveConfig{})
	cfg := ConfigA()
	cfg.Prefetch = ad
	r := newRig(t, ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 3}, cfg, 0)
	r.run(t, func(p *sim.Proc) {
		f, _ := r.eng.Create(p, "/f")
		data := make([]byte, 48*8192)
		f.Write(p, 0, data)
		f.Purge(p)
		r.eng.Stats = Stats{}
		ino := f.vn.IP.Ino
		buf := make([]byte, 8192)

		// Ramp up over the first ten pages (prefetch reaches block 24).
		readTrace(p, r, f, 10)
		if c := ad.Confidence(ino); c < 3 {
			t.Fatalf("confidence %d after sequential ramp, want >= 3", c)
		}

		// Random seek to an uncached block: the window collapses.
		f.Read(p, 30*8192, buf)
		if c := ad.Confidence(ino); c != 0 {
			t.Errorf("confidence %d after random seek, want 0 (collapsed)", c)
		}
		if r.eng.Stats.RACollapses != 1 {
			t.Errorf("collapses = %d, want 1", r.eng.Stats.RACollapses)
		}

		// Resume sequentially at the seek target: the first access arms,
		// the second issues a window again.
		async := r.eng.Stats.AsyncReads
		f.Read(p, 31*8192, buf) // seq miss: arms, no prefetch
		if r.eng.Stats.AsyncReads != async {
			t.Errorf("async reads grew on the arming access (%d -> %d)", async, r.eng.Stats.AsyncReads)
		}
		f.Read(p, 32*8192, buf) // confirmed: prefetch resumes
		if r.eng.Stats.AsyncReads <= async {
			t.Error("prefetch did not resume on the re-confirmed stream")
		}
		if c := ad.Confidence(ino); c < 2 {
			t.Errorf("confidence %d after re-confirmation, want >= 2", c)
		}
	})
}

// TestFixedPolicyMatchesDefault runs the Figure 6 trace twice — once
// with the default nil policy, once with an explicit NewFixed() — and
// requires identical per-page engine state. The policy seam must be
// invisible when the policy is the paper's.
func TestFixedPolicyMatchesDefault(t *testing.T) {
	trace := func(cfg Config) []raStep {
		r := newRig(t, ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 3}, cfg, 0)
		var got []raStep
		r.run(t, func(p *sim.Proc) {
			f, _ := r.eng.Create(p, "/f")
			data := make([]byte, 24*8192)
			f.Write(p, 0, data)
			f.Purge(p)
			r.eng.Stats = Stats{}
			got = readTrace(p, r, f, 24)
		})
		return got
	}
	def := trace(ConfigA())
	cfg := ConfigA()
	cfg.Prefetch = prefetch.NewFixed()
	fix := trace(cfg)
	if len(def) != len(fix) {
		t.Fatalf("trace lengths differ: %d vs %d", len(def), len(fix))
	}
	for i := range def {
		if def[i] != fix[i] {
			t.Fatalf("page %d: default %+v, explicit fixed %+v", i, def[i], fix[i])
		}
	}
}
