package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

// Property: through the full stack (engine + VM + UFS + driver + disk),
// any interleaving of writes, reads, fsyncs, and cache purges behaves
// exactly like a flat byte array. This is the strongest data-integrity
// statement in the repository: clustering, read-ahead, delayed writes,
// free-behind, and the pageout daemon may reorder and batch I/O
// arbitrarily, but never its semantics.
func TestPropertyFileIsAFlatArray(t *testing.T) {
	for _, variant := range []struct {
		name string
		mk   ufs.MkfsOpts
		cfg  Config
	}{
		{"clustered", ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 15}, ConfigA()},
		{"legacy", ufs.MkfsOpts{Rotdelay: 4, Maxcontig: 1}, ConfigD()},
	} {
		variant := variant
		t.Run(variant.name, func(t *testing.T) {
			f := func(seed int64, opsRaw []uint32) bool {
				if len(opsRaw) > 30 {
					opsRaw = opsRaw[:30]
				}
				r := newRig(t, variant.mk, variant.cfg, 240<<10)
				rng := rand.New(rand.NewSource(seed))
				const maxSize = 1 << 20
				shadow := make([]byte, maxSize)
				var size int64
				ok := true
				r.run(t, func(p *sim.Proc) {
					f, err := r.eng.Create(p, "/prop")
					if err != nil {
						ok = false
						return
					}
					for _, op := range opsRaw {
						off := int64(op) % maxSize
						n := rng.Intn(48<<10) + 1
						if off+int64(n) > maxSize {
							n = int(maxSize - off)
						}
						switch op % 5 {
						case 0, 1, 2: // write
							data := make([]byte, n)
							rng.Read(data)
							if _, err := f.Write(p, off, data); err != nil {
								ok = false
								return
							}
							copy(shadow[off:], data)
							if end := off + int64(n); end > size {
								size = end
							}
						case 3: // read and compare
							if size == 0 {
								continue
							}
							roff := off % size
							got := make([]byte, n)
							m, err := f.Read(p, roff, got)
							if err != nil {
								ok = false
								return
							}
							want := int64(n)
							if roff+want > size {
								want = size - roff
							}
							if int64(m) != want || !bytes.Equal(got[:m], shadow[roff:roff+int64(m)]) {
								t.Logf("read at %d/%d mismatch", roff, size)
								ok = false
								return
							}
						case 4: // fsync or purge
							if op%2 == 0 {
								f.Fsync(p)
							} else {
								f.Purge(p)
							}
						}
					}
					// Final full verification, cold.
					f.Purge(p)
					got := make([]byte, size)
					m, err := f.Read(p, 0, got)
					if err != nil || int64(m) != size {
						ok = false
						return
					}
					if !bytes.Equal(got, shadow[:size]) {
						t.Log("final cold read mismatch")
						ok = false
					}
				})
				if !ok {
					return false
				}
				r.fs.SyncImage()
				rep, err := ufs.Fsck(r.d)
				if err != nil || !rep.Clean() {
					t.Logf("fsck: %v %v", err, rep.Problems)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashLosesOnlyUnsyncedData models the durability contract the
// paper's footnote insists on ("a promise was made that the data was
// safe"): after a crash — all in-memory state discarded — fsynced data
// is intact, unsynced delayed writes may be lost, and the file system
// is structurally consistent.
func TestCrashLosesOnlyUnsyncedData(t *testing.T) {
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 0)
	durable := make([]byte, 256<<10)
	pattern(durable, 21)
	volatileData := make([]byte, 128<<10)
	pattern(volatileData, 22)
	r.run(t, func(p *sim.Proc) {
		f, err := r.eng.Create(p, "/durable")
		if err != nil {
			t.Error(err)
			return
		}
		f.Write(p, 0, durable)
		f.Fsync(p) // promised safe
		// Metadata made durable too (size, block pointers).
		r.fs.Sync(p)

		g, err := r.eng.Create(p, "/volatile")
		if err != nil {
			t.Error(err)
			return
		}
		r.fs.Sync(p)                // name and metadata durable...
		g.Write(p, 0, volatileData) // ...but the data is delayed, never synced
	})

	// CRASH: throw away every in-memory structure; remount from the
	// platter. (Metadata buffers and dirty pages die with the machine.)
	rep, err := ufs.Fsck(r.d)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		t.Errorf("post-crash fsck: %s", p)
	}

	// A fresh machine boots from a copy of the platter.
	s2 := sim.New(99)
	t.Cleanup(s2.Close)
	var img bytes.Buffer
	if err := r.d.DumpImage(&img); err != nil {
		t.Fatal(err)
	}
	dp := disk.DefaultParams()
	d2 := disk.New(s2, "d1", dp)
	if err := d2.LoadImage(&img); err != nil {
		t.Fatal(err)
	}
	dr2 := driver.New(s2, d2, nil, driver.DefaultConfig())
	fs2, err := ufs.Mount(s2, nil, dr2, ufs.MountOpts{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Spawn("check", func(p *sim.Proc) {
		ip, err := fs2.Namei(p, "/durable")
		if err != nil {
			t.Errorf("durable file lost: %v", err)
			return
		}
		if ip.D.Size != int64(len(durable)) {
			t.Errorf("durable size = %d, want %d", ip.D.Size, len(durable))
		}
		// Read the durable bytes straight off the platter.
		sb := fs2.SB
		buf := make([]byte, sb.Bsize)
		for lbn := int64(0); lbn*int64(sb.Bsize) < ip.D.Size; lbn++ {
			fsbn, _, err := fs2.Bmap(p, ip, lbn)
			if err != nil || fsbn == 0 {
				t.Errorf("durable block %d missing after crash", lbn)
				return
			}
			d2.ReadImage(sb.FsbToDb(fsbn), buf)
			end := ip.D.Size - lbn*int64(sb.Bsize)
			if end > int64(sb.Bsize) {
				end = int64(sb.Bsize)
			}
			if !bytes.Equal(buf[:end], durable[lbn*int64(sb.Bsize):lbn*int64(sb.Bsize)+end]) {
				t.Errorf("durable block %d corrupted after crash", lbn)
				return
			}
		}
		// The volatile file exists (its create was synchronous) but its
		// unsynced data did not reach the disk: size is still zero.
		vip, err := fs2.Namei(p, "/volatile")
		if err != nil {
			t.Errorf("volatile file's name lost: %v", err)
			return
		}
		if vip.D.Size != 0 {
			t.Errorf("volatile file claims %d bytes after crash; delayed data should be lost", vip.D.Size)
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
}
