package core

import (
	"fmt"

	"ufsclust/internal/cpu"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/vec"
)

// This file is the vectored-I/O half of the rdwr layer: Readv/Writev
// over offset–length lists, dispatched through a vec.Strategy to one of
// the three classic implementations (naive per-piece, data sieving,
// true list I/O — see internal/vec). The scalar paths in rdwr.go keep
// the mechanism: page cache, cluster reads, the delayed-write window.
//
// Buffer convention: the flat buffer is laid out by the vector, element
// i occupying buf[sum(len_0..len_{i-1}) : ... + len_i] regardless of
// how much of it EOF lets a read deliver — the POSIX iovec list
// flattened. The returned count is the bytes actually moved.
//
// Degeneration contract: a vector with exactly one non-zero-length
// element is serviced by the scalar Read/Write before any vectored
// accounting, charging, or events — so single-element vectored
// workloads replay the pre-vec golden streams byte-for-byte.

// segOffsets returns each element's start offset in the flat buffer.
func segOffsets(v []vec.Ext) []int64 {
	segs := make([]int64, len(v))
	var off int64
	for i, el := range v {
		segs[i] = off
		off += el.Len
	}
	return segs
}

// vecShape validates v against the flat buffer and classifies the
// request: live is the number of non-zero-length elements, solo the
// index of the only one (when live == 1) and soloOff its start in the
// flat buffer.
func vecShape(v []vec.Ext, flat int) (live, solo int, soloOff int64, err error) {
	var payload int64
	solo = -1
	for i, el := range v {
		if el.Off < 0 || el.Len < 0 {
			return 0, 0, 0, fmt.Errorf("core: vector element %d has negative offset or length (%d,%d)", i, el.Off, el.Len)
		}
		if el.Len > 0 {
			live++
			solo, soloOff = i, payload
		}
		payload += el.Len
	}
	if int64(flat) < payload {
		return 0, 0, 0, fmt.Errorf("core: buffer is %d bytes, vector payload is %d", flat, payload)
	}
	return live, solo, soloOff, nil
}

// Readv reads the vector's extents into buf (laid out per the buffer
// convention above) and returns the bytes delivered. Holes read as
// zeros; extents at or past EOF deliver nothing. The configured
// vec.Strategy picks the mechanism per call.
func (f *File) Readv(p *sim.Proc, v []vec.Ext, buf []byte) (int, error) {
	e, vn := f.eng, f.vn
	live, solo, soloOff, err := vecShape(v, len(buf))
	if err != nil {
		return 0, err
	}
	if live == 0 {
		return 0, vn.Err()
	}
	if live == 1 {
		// Single-element degeneration: exactly the scalar path, with no
		// vec accounting or events in front of it.
		return f.Read(p, v[solo].Off, buf[soloOff:soloOff+v[solo].Len])
	}
	if err := vn.Err(); err != nil {
		return 0, err
	}
	e.charge(p, cpu.Syscall, e.Cfg.Costs.Syscall)
	nm, err := vec.Normalize(v)
	if err != nil {
		return 0, err
	}
	m := e.vecStrategy().Pick(nm, false)
	f.vecAccount(nm, m, false)
	segs := segOffsets(v)
	switch m {
	case vec.Sieve:
		return f.readvSieve(p, v, segs, buf, nm)
	case vec.List:
		return f.readvList(p, v, segs, buf, nm)
	default:
		return f.readvNaive(p, v, segs, buf)
	}
}

// Writev writes the vector's extents from data (same buffer layout)
// and returns the payload bytes consumed. Overlapping elements apply
// in vector order: the later element wins, whatever the mechanism.
func (f *File) Writev(p *sim.Proc, v []vec.Ext, data []byte) (int, error) {
	e, vn := f.eng, f.vn
	live, solo, soloOff, err := vecShape(v, len(data))
	if err != nil {
		return 0, err
	}
	if live == 0 {
		return 0, vn.Err()
	}
	if live == 1 {
		return f.Write(p, v[solo].Off, data[soloOff:soloOff+v[solo].Len])
	}
	if err := vn.Err(); err != nil {
		return 0, err
	}
	e.charge(p, cpu.Syscall, e.Cfg.Costs.Syscall)
	nm, err := vec.Normalize(v)
	if err != nil {
		return 0, err
	}
	m := e.vecStrategy().Pick(nm, true)
	f.vecAccount(nm, m, true)
	segs := segOffsets(v)
	switch m {
	case vec.Sieve:
		return f.writevSieve(p, v, segs, data, nm)
	case vec.List:
		return f.writevList(p, v, segs, data, nm)
	default:
		return f.writevNaive(p, v, segs, data)
	}
}

// vecAccount records one dispatched vectored call: the counters and the
// single vec_io event (emitted once per call, so same-seed streams
// replay byte-identically).
func (f *File) vecAccount(n vec.Norm, m vec.Method, write bool) {
	e := f.eng
	e.Stats.VecCalls++
	e.Stats.VecRuns += int64(len(n.Runs))
	e.Stats.VecCoalesced += int64(n.Coalesced)
	e.Bus.Emit(telemetry.Event{
		T:      e.Sim.Now(),
		Kind:   telemetry.EvVecIO,
		LBN:    e.FS.SB.Lblkno(n.Lo),
		Bytes:  n.Payload,
		Blocks: int64(len(n.Runs)),
		Depth:  int64(m),
		Write:  write,
	})
}

// readvNaive services each element with its own scalar Read, in vector
// order — the per-piece baseline, paying a full syscall per element.
func (f *File) readvNaive(p *sim.Proc, v []vec.Ext, segs []int64, buf []byte) (int, error) {
	total := 0
	for i, el := range v {
		if el.Len == 0 {
			continue
		}
		n, err := f.Read(p, el.Off, buf[segs[i]:segs[i]+el.Len])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// readvSieve reads the covering envelope once and scatters the elements
// out of it in memory. The envelope read goes through the scalar Read,
// so it clusters, prefetches, and free-behinds like any sequential
// scan; the price is the gap bytes it drags along, counted as
// sieve_waste.
func (f *File) readvSieve(p *sim.Proc, v []vec.Ext, segs []int64, buf []byte, n vec.Norm) (int, error) {
	e, vn := f.eng, f.vn
	env := make([]byte, n.Span)
	got, err := f.Read(p, n.Lo, env)
	if err != nil {
		return 0, err
	}
	// Waste = envelope bytes moved beyond the distinct payload the file
	// could supply (the gaps between runs, clipped at EOF like the read).
	lim := n.Lo + int64(got)
	var covered int64
	for _, r := range n.Runs {
		end := min(r.End(), lim)
		if end > r.Off {
			covered += end - r.Off
		}
	}
	if w := int64(got) - covered; w > 0 {
		e.Stats.SieveWaste += w
	}
	// Scatter: the second memory copy is sieving's real CPU cost.
	total := 0
	for i, el := range v {
		if el.Len == 0 || el.Off >= lim {
			continue
		}
		nn := min(el.Len, lim-el.Off)
		e.charge(p, cpu.Copy, e.Cfg.Costs.CopyPerByte*nn)
		copy(buf[segs[i]:segs[i]+nn], env[el.Off-n.Lo:el.Off-n.Lo+nn])
		total += int(nn)
	}
	return total, vn.Err()
}

// readvList is true list I/O: issue one demand transfer per merged
// run's bmap extents — none of them waiting, so the whole request is in
// the driver queue before the first copy blocks and the elevator sweeps
// it in one pass — then gather per element once the pages land. The
// envelope's gaps are never transferred.
func (f *File) readvList(p *sim.Proc, v []vec.Ext, segs []int64, buf []byte, n vec.Norm) (int, error) {
	e, vn := f.eng, f.vn
	sb := e.FS.SB
	bs := int64(sb.Bsize)
	size := vn.IP.D.Size

	// Issue phase: walk each run in offset order, one bmap per disk
	// extent, capping transfers at the cluster limit. startReadTagged
	// skips cached blocks and marks the bufs for driver accounting.
	// planned tracks the first block no run has covered yet: two runs
	// split by a sub-block gap share a block, which must be issued once.
	var planned int64
	for _, r := range n.Runs {
		if r.Off >= size {
			break // runs are sorted; everything further is past EOF
		}
		lbn := max(sb.Lblkno(r.Off), planned)
		end := sb.Lblkno(min(r.End(), size)-1) + 1
		if end <= lbn {
			continue
		}
		for lbn < end {
			e.charge(p, cpu.Syscall, e.Cfg.Costs.MapBlock)
			fsbn, contig, err := e.FS.Bmap(p, vn.IP, lbn)
			if err != nil {
				vn.recordErr(err)
				return 0, err
			}
			nb := int(end - lbn)
			if fsbn == 0 {
				// A hole zero-fills block by block; skip cached pages so
				// the allocation below never collides.
				if e.VM.Cached(vn, lbn*bs) {
					lbn++
					continue
				}
				nb = 1
			} else {
				if contig < nb {
					nb = contig
				}
				if max := e.maxClusterBlocks(); nb > max {
					nb = max
				}
			}
			e.startReadTagged(p, vn, lbn, fsbn, nb, false, true)
			lbn += int64(nb)
		}
		planned = end
	}

	// Gather phase: per element, wait on each page and copy out. A page
	// evicted between issue and gather (memory pressure) faults back in
	// through the ordinary path.
	total := 0
	for i, el := range v {
		if el.Len == 0 || el.Off >= size {
			continue
		}
		avail := min(el.Len, size-el.Off)
		seg := buf[segs[i] : segs[i]+avail]
		var done int64
		for done < avail {
			off := el.Off + done
			boff := off % bs
			nn := min(bs-boff, avail-done)
			e.charge(p, cpu.PageCache, e.Cfg.Costs.PageLookup)
			pg, ok := e.VM.Lookup(vn, off-boff)
			if !ok {
				var err error
				pg, err = e.GetPage(p, vn, off-boff)
				if err != nil {
					return total, err
				}
			}
			pg.WaitUnbusy(p)
			if err := vn.Err(); err != nil {
				return total, err
			}
			pg.Touch()
			e.charge(p, cpu.Copy, e.Cfg.Costs.CopyPerByte*nn)
			copy(seg[done:done+nn], pg.Data[boff:boff+nn])
			done += nn
			total += int(nn)
		}
	}
	return total, vn.Err()
}

// writevNaive services each element with its own scalar Write, in
// vector order.
func (f *File) writevNaive(p *sim.Proc, v []vec.Ext, segs []int64, data []byte) (int, error) {
	total := 0
	for i, el := range v {
		if el.Len == 0 {
			continue
		}
		n, err := f.Write(p, el.Off, data[segs[i]:segs[i]+el.Len])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// writevSieve is the read-modify-write form of data sieving: read the
// envelope's existing bytes back, overlay the elements in vector order,
// and write the whole envelope in one sequential sweep. Gaps inside the
// envelope that lie beyond EOF are written as zeros — the result is
// contents-equivalent to the other mechanisms but fills what they would
// have left as holes (see DESIGN.md "Vectored I/O" for the equivalence
// rules). Both the read-back and the gap bytes count as sieve_waste.
func (f *File) writevSieve(p *sim.Proc, v []vec.Ext, segs []int64, data []byte, n vec.Norm) (int, error) {
	e, vn := f.eng, f.vn
	env := make([]byte, n.Span)
	if size := vn.IP.D.Size; n.Lo < size {
		got, err := f.Read(p, n.Lo, env[:min(n.Span, size-n.Lo)])
		if err != nil {
			return 0, err
		}
		e.Stats.SieveWaste += int64(got)
	}
	var distinct int64
	for _, r := range n.Runs {
		distinct += r.Len
	}
	e.Stats.SieveWaste += n.Span - distinct
	// Overlay: the gather copy is sieving's extra CPU cost.
	for i, el := range v {
		if el.Len == 0 {
			continue
		}
		e.charge(p, cpu.Copy, e.Cfg.Costs.CopyPerByte*el.Len)
		copy(env[el.Off-n.Lo:], data[segs[i]:segs[i]+el.Len])
	}
	if _, err := f.Write(p, n.Lo, env); err != nil {
		return 0, err
	}
	return int(n.Payload), nil
}

// writevList writes each merged run with one scalar Write, assembling
// the run's bytes from its member elements first (ascending vector
// order, so later elements win overlaps). Runs have no interior gaps by
// construction, so nothing beyond the payload touches the disk; the
// delayed-write window coalesces the runs into cluster pushes exactly
// as it does for scalar writes.
func (f *File) writevList(p *sim.Proc, v []vec.Ext, segs []int64, data []byte, n vec.Norm) (int, error) {
	for _, r := range n.Runs {
		run := data[segs[r.Members[0]] : segs[r.Members[0]]+r.Len]
		if len(r.Members) > 1 {
			// Assemble overlapping/abutting members into one scratch run.
			// The gather itself is bookkeeping for the page list the
			// hardware would chain — no simulated cost; the real copy is
			// charged inside Write.
			run = make([]byte, r.Len)
			for _, mi := range r.Members {
				el := v[mi]
				copy(run[el.Off-r.Off:], data[segs[mi]:segs[mi]+el.Len])
			}
		}
		if _, err := f.Write(p, r.Off, run); err != nil {
			return 0, err
		}
	}
	return int(n.Payload), nil
}
