package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

// determinismWorkload drives the full data path — allocation, clustered
// writes, fsync, random and sequential reads, purge, remove, metadata
// sync — drawing every "random" choice from the sim's seeded source.
func determinismWorkload(t *testing.T, r *rig) {
	t.Helper()
	r.run(t, func(p *sim.Proc) {
		rnd := r.s.Rand
		buf := make([]byte, 8192)
		sizes := make([]int, 3)
		for i := range sizes {
			name := fmt.Sprintf("/f%d", i)
			f, err := r.eng.Create(p, name)
			if err != nil {
				t.Errorf("create %s: %v", name, err)
				return
			}
			size := 64<<10 + rnd.Intn(5)*8192
			sizes[i] = size
			data := make([]byte, size)
			pattern(data, int64(i))
			for off := 0; off < size; off += 8192 {
				end := off + 8192
				if end > size {
					end = size
				}
				if _, err := f.Write(p, int64(off), data[off:end]); err != nil {
					t.Errorf("write %s @%d: %v", name, off, err)
					return
				}
			}
			f.Fsync(p)
		}
		f, err := r.eng.Open(p, "/f0")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			off := int64(rnd.Intn(sizes[0]/8192)) * 8192
			if _, err := f.Read(p, off, buf); err != nil {
				t.Errorf("random read @%d: %v", off, err)
				return
			}
		}
		f.Purge(p)
		for off := int64(0); off < f.Size(); off += 8192 {
			if _, err := f.Read(p, off, buf); err != nil {
				t.Errorf("sequential read @%d: %v", off, err)
				return
			}
		}
		if err := r.eng.Remove(p, "/f1"); err != nil {
			t.Errorf("remove: %v", err)
			return
		}
		r.fs.Sync(p)
	})
}

// traceRun executes the workload on a fresh rig with the scheduler
// trace captured, then checks the image offline, returning everything
// that must be reproducible: the scheduling trace, the engine's event
// counters, the final virtual time, and the fsck report text.
func traceRun(t *testing.T) (trace string, stats Stats, now sim.Time, fsck string) {
	t.Helper()
	mk, cfg := clusteredOpts()
	r := newRig(t, mk, cfg, 240<<10)
	var tw bytes.Buffer
	r.s.TraceW = &tw
	determinismWorkload(t, r)
	r.fs.SyncImage()
	rep, err := ufs.Fsck(r.d)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("workload left an inconsistent file system: %v", rep.Problems)
	}
	return tw.String(), r.eng.Stats, r.s.Now(), fmt.Sprintf("%+v", *rep)
}

// firstDiff returns the first line index (1-based) where a and b
// differ, with the differing lines, for a readable failure message.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestSameSeedReplaysByteIdentical is the determinism regression gate:
// two runs of the same workload from the same seed must make exactly
// the same scheduling decisions at exactly the same virtual times and
// leave exactly the same report text behind. Everything the simlint
// rules guard (map order, ambient time, raw goroutines) shows up here
// first as a trace divergence.
func TestSameSeedReplaysByteIdentical(t *testing.T) {
	trace1, stats1, now1, fsck1 := traceRun(t)
	trace2, stats2, now2, fsck2 := traceRun(t)
	if trace1 == "" {
		t.Fatal("empty scheduler trace: TraceW is not capturing")
	}
	if trace1 != trace2 {
		t.Errorf("scheduler traces diverge: %s", firstDiff(trace1, trace2))
	}
	if stats1 != stats2 {
		t.Errorf("engine stats diverge:\nrun1: %+v\nrun2: %+v", stats1, stats2)
	}
	if now1 != now2 {
		t.Errorf("final virtual time diverges: %v vs %v", now1, now2)
	}
	if fsck1 != fsck2 {
		t.Errorf("fsck reports diverge: %s", firstDiff(fsck1, fsck2))
	}
}
