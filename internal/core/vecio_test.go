package core

import (
	"bytes"
	"testing"

	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/vec"
)

// vecStrategies enumerates the mechanisms every semantic test runs
// under: whatever the strategy picks, the bytes must come out the same.
var vecStrategies = []struct {
	name string
	s    vec.Strategy
}{
	{"naive", vec.UseNaive()},
	{"sieve", vec.UseSieve()},
	{"list", vec.UseList()},
	{"auto", vec.Auto(0)},
}

// newVecRig builds a clustered rig with the given vectored-I/O
// strategy installed.
func newVecRig(t *testing.T, s vec.Strategy) *rig {
	t.Helper()
	mk, cfg := clusteredOpts()
	cfg.Vec = s
	return newRig(t, mk, cfg, 240<<10)
}

// vecFill creates /v holding size patterned bytes and purges the cache,
// returning the handle and the shadow contents.
func vecFill(t *testing.T, r *rig, p *sim.Proc, size int) (*File, []byte) {
	t.Helper()
	f, err := r.eng.Create(p, "/v")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	shadow := make([]byte, size)
	pattern(shadow, 7)
	for off := 0; off < size; off += 8192 {
		end := min(off+8192, size)
		if _, err := f.Write(p, int64(off), shadow[off:end]); err != nil {
			t.Fatalf("write @%d: %v", off, err)
		}
	}
	if err := f.Purge(p); err != nil {
		t.Fatalf("purge: %v", err)
	}
	return f, shadow
}

// vecExpect extracts what a Readv of v over shadow must deliver into a
// flat buffer pre-filled with fill, and the byte count.
func vecExpect(v []vec.Ext, shadow []byte, flat int, fill byte) ([]byte, int) {
	want := bytes.Repeat([]byte{fill}, flat)
	total := 0
	var boff int64
	for _, el := range v {
		if avail := int64(len(shadow)) - el.Off; avail > 0 && el.Len > 0 {
			n := min(el.Len, avail)
			copy(want[boff:boff+n], shadow[el.Off:el.Off+n])
			total += int(n)
		}
		boff += el.Len
	}
	return want, total
}

func TestReadvEdgeCases(t *testing.T) {
	const size = 200*1024 + 300 // EOF off any block boundary
	cases := []struct {
		name string
		v    []vec.Ext
	}{
		{"empty", nil},
		{"all_zero_length", []vec.Ext{{Off: 0, Len: 0}, {Off: 8192, Len: 0}}},
		{"zero_length_mixed", []vec.Ext{{Off: 0, Len: 0}, {Off: 100, Len: 64}, {Off: 9000, Len: 0}, {Off: 50000, Len: 128}}},
		{"unsorted", []vec.Ext{{Off: 90000, Len: 4000}, {Off: 0, Len: 4000}, {Off: 40000, Len: 4000}}},
		{"adjacent_merge", []vec.Ext{{Off: 8192, Len: 8192}, {Off: 0, Len: 8192}, {Off: 16384, Len: 8192}}},
		{"overlapping", []vec.Ext{{Off: 1000, Len: 9000}, {Off: 4000, Len: 9000}, {Off: 4000, Len: 100}}},
		{"sub_block_gap", []vec.Ext{{Off: 0, Len: 100}, {Off: 8000, Len: 400}}},
		{"eof_straddle", []vec.Ext{{Off: size - 5000, Len: 9000}, {Off: 0, Len: 64}}},
		{"past_eof", []vec.Ext{{Off: int64(size) + 8192, Len: 4096}, {Off: 0, Len: 64}}},
		{"sparse", []vec.Ext{{Off: 0, Len: 1024}, {Off: 65536, Len: 1024}, {Off: 131072, Len: 1024}}},
	}
	for _, st := range vecStrategies {
		for _, tc := range cases {
			t.Run(st.name+"/"+tc.name, func(t *testing.T) {
				r := newVecRig(t, st.s)
				r.run(t, func(p *sim.Proc) {
					f, shadow := vecFill(t, r, p, size)
					var flat int64
					for _, el := range tc.v {
						flat += el.Len
					}
					buf := bytes.Repeat([]byte{0xEE}, int(flat))
					n, err := f.Readv(p, tc.v, buf)
					if err != nil {
						t.Errorf("readv: %v", err)
						return
					}
					want, wantN := vecExpect(tc.v, shadow, int(flat), 0xEE)
					if n != wantN {
						t.Errorf("readv = %d bytes, want %d", n, wantN)
					}
					if !bytes.Equal(buf, want) {
						t.Error("readv contents mismatch")
					}
				})
			})
		}
	}
}

func TestReadvHoles(t *testing.T) {
	for _, st := range vecStrategies {
		t.Run(st.name, func(t *testing.T) {
			r := newVecRig(t, st.s)
			r.run(t, func(p *sim.Proc) {
				f, err := r.eng.Create(p, "/holey")
				if err != nil {
					t.Fatalf("create: %v", err)
				}
				// Data at block 0 and block 8; blocks 1..7 are a hole.
				head := make([]byte, 8192)
				tail := make([]byte, 8192)
				pattern(head, 1)
				pattern(tail, 2)
				f.Write(p, 0, head)
				f.Write(p, 8*8192, tail)
				if err := f.Purge(p); err != nil {
					t.Fatalf("purge: %v", err)
				}
				v := []vec.Ext{
					{Off: 4000, Len: 8192},     // straddles data → hole
					{Off: 3 * 8192, Len: 4096}, // pure hole
					{Off: 8*8192 + 100, Len: 2000},
				}
				buf := bytes.Repeat([]byte{0xEE}, 8192+4096+2000)
				n, err := f.Readv(p, v, buf)
				if err != nil {
					t.Errorf("readv: %v", err)
					return
				}
				if n != len(buf) {
					t.Errorf("readv = %d, want %d", n, len(buf))
				}
				want := make([]byte, len(buf))
				copy(want, head[4000:]) // 4192 data bytes, rest zeros
				copy(want[8192+4096:], tail[100:2100])
				if !bytes.Equal(buf, want) {
					t.Error("hole read mismatch: holes must deliver zeros")
				}
			})
		})
	}
}

func TestReadvValidation(t *testing.T) {
	r := newVecRig(t, vec.Auto(0))
	r.run(t, func(p *sim.Proc) {
		f, _ := vecFill(t, r, p, 16384)
		if _, err := f.Readv(p, []vec.Ext{{Off: -1, Len: 8}}, make([]byte, 8)); err == nil {
			t.Error("negative offset accepted")
		}
		if _, err := f.Readv(p, []vec.Ext{{Off: 0, Len: -8}}, make([]byte, 8)); err == nil {
			t.Error("negative length accepted")
		}
		if _, err := f.Readv(p, []vec.Ext{{Off: 0, Len: 64}}, make([]byte, 32)); err == nil {
			t.Error("short buffer accepted")
		}
		if _, err := f.Writev(p, []vec.Ext{{Off: 0, Len: 64}}, make([]byte, 32)); err == nil {
			t.Error("short writev buffer accepted")
		}
	})
}

func TestWritevEdgeCases(t *testing.T) {
	const size = 96 * 1024
	cases := []struct {
		name string
		v    []vec.Ext
	}{
		{"empty", nil},
		{"unsorted", []vec.Ext{{Off: 70000, Len: 3000}, {Off: 100, Len: 3000}, {Off: 30000, Len: 3000}}},
		{"adjacent_merge", []vec.Ext{{Off: 8192, Len: 8192}, {Off: 0, Len: 8192}}},
		{"overlapping", []vec.Ext{{Off: 1000, Len: 9000}, {Off: 4000, Len: 9000}}},
		{"same_offset_twice", []vec.Ext{{Off: 2000, Len: 500}, {Off: 2000, Len: 500}}},
		{"extend_past_eof", []vec.Ext{{Off: size - 100, Len: 300}, {Off: int64(size) + 5000, Len: 700}}},
		{"sub_block_gap", []vec.Ext{{Off: 0, Len: 100}, {Off: 8000, Len: 400}}},
	}
	for _, st := range vecStrategies {
		for _, tc := range cases {
			t.Run(st.name+"/"+tc.name, func(t *testing.T) {
				r := newVecRig(t, st.s)
				r.run(t, func(p *sim.Proc) {
					f, shadow := vecFill(t, r, p, size)
					var flat int64
					for _, el := range tc.v {
						flat += el.Len
					}
					data := make([]byte, flat)
					pattern(data, 99)
					n, err := f.Writev(p, tc.v, data)
					if err != nil {
						t.Errorf("writev: %v", err)
						return
					}
					if n != int(flat) {
						t.Errorf("writev = %d, want payload %d", n, flat)
					}
					// Apply the vector to the shadow in vector order:
					// later elements win overlaps, extensions grow it.
					var boff int64
					for _, el := range tc.v {
						for int64(len(shadow)) < el.End() {
							shadow = append(shadow, 0)
						}
						copy(shadow[el.Off:el.End()], data[boff:boff+el.Len])
						boff += el.Len
					}
					if got := f.Size(); got < int64(len(shadow)) {
						t.Errorf("size = %d, want >= %d", got, len(shadow))
					}
					got := make([]byte, len(shadow))
					for off := 0; off < len(shadow); off += 8192 {
						end := min(off+8192, len(shadow))
						if _, err := f.Read(p, int64(off), got[off:end]); err != nil {
							t.Errorf("read-back @%d: %v", off, err)
							return
						}
					}
					if !bytes.Equal(got, shadow) {
						t.Error("writev read-back mismatch")
					}
				})
			})
		}
	}
}

// TestVecSingleElementDegeneration pins the degeneration contract at
// the engine level: a one-element vector goes down the scalar path with
// no vectored accounting and no vec_io event. (The byte-for-byte golden
// replay against the pre-vec fixtures lives in internal/iobench.)
func TestVecSingleElementDegeneration(t *testing.T) {
	r := newVecRig(t, vec.Auto(0))
	tel := telemetry.New()
	r.eng.AttachTelemetry(tel)
	var vecEvents int
	tel.Bus.Subscribe(func(ev telemetry.Event) {
		if ev.Kind == telemetry.EvVecIO {
			vecEvents++
		}
	})
	r.run(t, func(p *sim.Proc) {
		f, shadow := vecFill(t, r, p, 64<<10)
		buf := make([]byte, 8192)
		if _, err := f.Readv(p, []vec.Ext{{Off: 8192, Len: 8192}}, buf); err != nil {
			t.Errorf("readv: %v", err)
			return
		}
		if !bytes.Equal(buf, shadow[8192:16384]) {
			t.Error("single-element readv mismatch")
		}
		// Zero-length padding must not disturb the degeneration.
		if _, err := f.Readv(p, []vec.Ext{{Off: 0, Len: 0}, {Off: 0, Len: 8192}, {Off: 99, Len: 0}}, buf); err != nil {
			t.Errorf("padded readv: %v", err)
			return
		}
		if !bytes.Equal(buf, shadow[:8192]) {
			t.Error("padded single-element readv mismatch")
		}
		data := make([]byte, 4096)
		pattern(data, 5)
		if _, err := f.Writev(p, []vec.Ext{{Off: 1000, Len: 4096}}, data); err != nil {
			t.Errorf("writev: %v", err)
		}
	})
	if r.eng.Stats.VecCalls != 0 || r.eng.Stats.VecRuns != 0 {
		t.Errorf("single-element vectors reached the vec path: %+v", r.eng.Stats)
	}
	if vecEvents != 0 {
		t.Errorf("%d vec_io events from single-element vectors, want 0", vecEvents)
	}
	if r.dr.Stats.VecQueued != 0 {
		t.Errorf("driver saw %d vec-tagged bufs from scalar paths, want 0", r.dr.Stats.VecQueued)
	}
}

// TestVecAccounting checks the new counters move as designed: runs and
// coalesced elements from the planner, sieve_waste only under sieving,
// driver vec_queued only under list reads.
func TestVecAccounting(t *testing.T) {
	v := []vec.Ext{{Off: 0, Len: 1024}, {Off: 1024, Len: 1024}, {Off: 65536, Len: 1024}}
	t.Run("list", func(t *testing.T) {
		r := newVecRig(t, vec.UseList())
		r.run(t, func(p *sim.Proc) {
			f, _ := vecFill(t, r, p, 128<<10)
			if _, err := f.Readv(p, v, make([]byte, 3*1024)); err != nil {
				t.Errorf("readv: %v", err)
			}
		})
		st := r.eng.Stats
		if st.VecCalls != 1 || st.VecRuns != 2 || st.VecCoalesced != 1 {
			t.Errorf("calls/runs/coalesced = %d/%d/%d, want 1/2/1", st.VecCalls, st.VecRuns, st.VecCoalesced)
		}
		if st.SieveWaste != 0 {
			t.Errorf("list read recorded sieve_waste %d", st.SieveWaste)
		}
		if r.dr.Stats.VecQueued == 0 {
			t.Error("list read queued no vec-tagged transfers")
		}
	})
	t.Run("sieve", func(t *testing.T) {
		r := newVecRig(t, vec.UseSieve())
		r.run(t, func(p *sim.Proc) {
			f, _ := vecFill(t, r, p, 128<<10)
			if _, err := f.Readv(p, v, make([]byte, 3*1024)); err != nil {
				t.Errorf("readv: %v", err)
			}
		})
		st := r.eng.Stats
		// Envelope 0..66560 carries 66560-3072 gap bytes.
		if want := int64(66560 - 3072); st.SieveWaste != want {
			t.Errorf("sieve_waste = %d, want %d", st.SieveWaste, want)
		}
		if r.dr.Stats.VecQueued != 0 {
			t.Errorf("sieve tagged %d driver bufs, want 0 (flows through the scalar read)", r.dr.Stats.VecQueued)
		}
	})
}

// vecDeterminismWorkload drives Readv/Writev under the auto strategy
// with seeded-random vectors: the vectored extension of the same-seed
// replay gate.
func vecDeterminismWorkload(t *testing.T, r *rig) {
	t.Helper()
	r.run(t, func(p *sim.Proc) {
		rnd := r.s.Rand
		f, err := r.eng.Create(p, "/vd")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		base := make([]byte, 256<<10)
		pattern(base, 3)
		for off := 0; off < len(base); off += 8192 {
			if _, err := f.Write(p, int64(off), base[off:off+8192]); err != nil {
				t.Errorf("write @%d: %v", off, err)
				return
			}
		}
		if err := f.Purge(p); err != nil {
			t.Errorf("purge: %v", err)
			return
		}
		for round := 0; round < 6; round++ {
			nv := 2 + rnd.Intn(6)
			v := make([]vec.Ext, nv)
			var flat int64
			for i := range v {
				v[i] = vec.Ext{Off: int64(rnd.Intn(32)) * 8192, Len: int64(1 + rnd.Intn(8192))}
				flat += v[i].Len
			}
			buf := make([]byte, flat)
			if round%2 == 0 {
				if _, err := f.Readv(p, v, buf); err != nil {
					t.Errorf("readv round %d: %v", round, err)
					return
				}
			} else {
				pattern(buf, int64(round))
				if _, err := f.Writev(p, v, buf); err != nil {
					t.Errorf("writev round %d: %v", round, err)
					return
				}
			}
		}
		if err := f.Fsync(p); err != nil {
			t.Errorf("fsync: %v", err)
		}
	})
}

// vecTraceRun is traceRun for the vectored workload.
func vecTraceRun(t *testing.T) (trace string, stats Stats, now sim.Time) {
	t.Helper()
	mk, cfg := clusteredOpts()
	cfg.Vec = vec.Auto(0)
	r := newRig(t, mk, cfg, 240<<10)
	var tw bytes.Buffer
	r.s.TraceW = &tw
	vecDeterminismWorkload(t, r)
	return tw.String(), r.eng.Stats, r.s.Now()
}

// TestVecSameSeedReplaysByteIdentical extends the determinism gate to
// vectored I/O: the run-merge sort, the strategy pick, and both
// mechanisms' issue orders must be pure functions of the seed.
func TestVecSameSeedReplaysByteIdentical(t *testing.T) {
	trace1, stats1, now1 := vecTraceRun(t)
	trace2, stats2, now2 := vecTraceRun(t)
	if trace1 == "" {
		t.Fatal("empty scheduler trace: TraceW is not capturing")
	}
	if trace1 != trace2 {
		t.Errorf("scheduler traces diverge: %s", firstDiff(trace1, trace2))
	}
	if stats1 != stats2 {
		t.Errorf("engine stats diverge:\nrun1: %+v\nrun2: %+v", stats1, stats2)
	}
	if stats1.VecCalls == 0 {
		t.Error("vectored workload never reached the vec path")
	}
	if now1 != now2 {
		t.Errorf("final virtual time diverges: %v vs %v", now1, now2)
	}
}
