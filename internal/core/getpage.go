package core

import (
	"ufsclust/internal/cpu"
	"ufsclust/internal/driver"
	"ufsclust/internal/prefetch"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/vm"
)

// GetPage is the fault path: return the page at byte offset off of vn,
// reading (and possibly reading ahead) as the configured engine
// dictates. The returned page is not busy and holds valid data. A
// metadata read error (bmap could not reach an indirect block) is
// returned directly; a data read error is latched on the vnode by the
// completion handler — callers check vn.Err after waiting.
func (e *Engine) GetPage(p *sim.Proc, vn *Vnode, off int64) (*vm.Page, error) {
	return e.GetPageHint(p, vn, off, 1)
}

// GetPageHint is GetPage with the caller's total request size (in
// blocks from off) passed down — the Further Work "random clustering"
// hint, used only when Config.RandomClustering is on.
func (e *Engine) GetPageHint(p *sim.Proc, vn *Vnode, off int64, hintBlocks int) (*vm.Page, error) {
	e.Stats.GetPages++
	e.charge(p, cpu.GetPage, e.Cfg.Costs.GetPage)
	if e.Cfg.Clustered {
		return e.getpageClustered(p, vn, off, hintBlocks)
	}
	return e.getpageLegacy(p, vn, off)
}

// noHoles conservatively reports whether the file certainly has no
// holes: it holds at least as many fragments as its size needs.
func noHoles(e *Engine, vn *Vnode) bool {
	need := (vn.IP.D.Size + int64(e.FS.SB.Fsize) - 1) / int64(e.FS.SB.Fsize)
	return int64(vn.IP.D.Blocks) >= need
}

// getpageLegacy is Figure 2: block-at-a-time with one-block read-ahead
// driven by the nextr prediction.
func (e *Engine) getpageLegacy(p *sim.Proc, vn *Vnode, off int64) (*vm.Page, error) {
	sb := e.FS.SB
	lbn := sb.Lblkno(off)

	// bmap() to find disk location — called even for cached pages (the
	// UFS_HOLE problem), unless the Further Work optimization knows the
	// file has no holes.
	var fsbn int32
	var pg *vm.Page
	var cached bool
	if e.Cfg.SkipBmapOnHit && noHoles(e, vn) {
		e.charge(p, cpu.PageCache, e.Cfg.Costs.PageLookup)
		pg, cached = e.VM.Lookup(vn, lbn*int64(sb.Bsize))
		if cached {
			e.Stats.BmapSkips++
		}
	}
	if !cached {
		var err error
		fsbn, _, err = e.FS.Bmap(p, vn.IP, lbn)
		if err != nil {
			vn.recordErr(err)
			return nil, err
		}
		e.charge(p, cpu.PageCache, e.Cfg.Costs.PageLookup)
		pg, cached = e.VM.Lookup(vn, lbn*int64(sb.Bsize))
	}
	if cached {
		e.Stats.CacheHits++
		if pg.TakeRA() {
			e.Stats.RAHits++
		}
	} else {
		pg = e.startRead(p, vn, lbn, fsbn, 1, false)
	}

	// if (sequential I/O) start I/O for next page.
	seq := lbn == vn.IP.Nextr
	vn.seq = seq
	if seq && e.Cfg.ReadAhead {
		nlbn := lbn + 1
		if nlbn*int64(sb.Bsize) < vn.IP.D.Size {
			e.charge(p, cpu.PageCache, e.Cfg.Costs.PageLookup)
			if _, ok := e.VM.Lookup(vn, nlbn*int64(sb.Bsize)); !ok {
				// do another bmap() if necessary.
				nfsbn, _, err := e.FS.Bmap(p, vn.IP, nlbn)
				if err == nil && nfsbn != 0 {
					e.startRead(p, vn, nlbn, nfsbn, 1, true)
				}
			}
		}
	}

	// if (first page was not in cache) wait for I/O to finish.
	pg.WaitUnbusy(p)
	// predict next I/O location.
	vn.IP.Nextr = lbn + 1
	return pg, nil
}

// getpageClustered is Figure 6: transfer whole clusters and read ahead a
// cluster at a time, tracked by nextrio.
func (e *Engine) getpageClustered(p *sim.Proc, vn *Vnode, off int64, hintBlocks int) (*vm.Page, error) {
	sb := e.FS.SB
	lbn := sb.Lblkno(off)

	seq := lbn == vn.IP.Nextr
	// The UFS_HOLE fast path: a cached page in a hole-free file needs
	// no bmap at all. (Read-ahead decisions still work from nextrio.)
	if e.Cfg.SkipBmapOnHit && !seq && noHoles(e, vn) {
		e.charge(p, cpu.PageCache, e.Cfg.Costs.PageLookup)
		if pg, ok := e.VM.Lookup(vn, lbn*int64(sb.Bsize)); ok {
			e.Stats.BmapSkips++
			e.Stats.CacheHits++
			if pg.TakeRA() {
				e.Stats.RAHits++
			}
			vn.seq = false
			pg.WaitUnbusy(p)
			vn.IP.Nextr = lbn + 1
			return pg, nil
		}
	}

	fsbn, contig, err := e.FS.Bmap(p, vn.IP, lbn)
	if err != nil {
		vn.recordErr(err)
		return nil, err
	}
	// The transfer must fit the driver: a cluster is at most
	// min(maxcontig, maxphys/bsize) blocks.
	if max := e.maxClusterBlocks(); contig > max {
		contig = max
	}

	e.charge(p, cpu.PageCache, e.Cfg.Costs.PageLookup)
	vn.seq = seq
	pg, cached := e.VM.Lookup(vn, lbn*int64(sb.Bsize))
	// edge is the first block past what this access is known to cover:
	// the demand cluster on a miss, just this block on a cache hit. A
	// loose-triggered window starts here so it never skips uncovered
	// blocks (the bmap run can reach past what demand actually read).
	edge := lbn + 1
	if cached {
		e.Stats.CacheHits++
		if pg.TakeRA() {
			e.Stats.RAHits++
		}
	} else {
		// Demand-read the effective cluster when the access pattern is
		// sequential; a random miss reads one block ("clustering is
		// currently enabled only when sequential access is detected"),
		// unless the random-clustering hint says the caller wants more.
		n := contig
		if !seq && lbn != 0 {
			n = 1
			if e.Cfg.RandomClustering && hintBlocks > 1 {
				n = hintBlocks
				if n > contig {
					n = contig
				}
				e.Stats.HintClusters++
			}
		}
		pg = e.startRead(p, vn, lbn, fsbn, n, false)
		edge = lbn + int64(n)
	}
	if e.Cfg.ReadAhead {
		// The paper's exact trigger: the demand cluster ends precisely
		// at the nextrio cursor (or we are at the start of the file).
		exact := lbn+int64(contig) == vn.IP.Nextrio || (lbn == 0 && vn.IP.Nextrio == 0)
		switch {
		case !cached && !seq && lbn != 0:
			// Random miss: collapse the policy's window and restart
			// the read-ahead trigger past this cluster.
			e.raCollapse(vn, lbn)
			vn.IP.Nextrio = lbn + int64(contig)
		case exact || (e.raVerbose() && lbn+int64(contig) > vn.IP.Nextrio):
			// We are at the start of the last prefetched cluster (or
			// at the very beginning): the read-ahead trigger point.
			// The policy sizes the window; the engine issues it. "It
			// remembers where to start the next read ahead by setting
			// nextrio to the current location plus the size of the
			// current cluster."
			//
			// The exact condition has a blind spot on contiguous
			// layouts: bmap runs are maxcontig long from any offset,
			// so after a random seek resets the cursor, lbn+contig
			// sweeps permanently ahead of it and read-ahead stays dead
			// until the next seek. Non-fixed policies therefore also
			// fire on the runway form — the demand cluster reaching or
			// passing the cursor — and their own detector, not cursor
			// luck, decides whether anything is issued.
			e.raTrigger(p, vn, lbn, contig, seq, edge, exact)
		}
	}

	pg.WaitUnbusy(p)
	vn.IP.Nextr = lbn + 1
	return pg, nil
}

// raVerbose reports whether the configured policy gets its decisions
// emitted as ra_window events. The fixed default stays silent so
// default-policy event streams replay the pre-policy fixtures
// byte-for-byte.
func (e *Engine) raVerbose() bool {
	return e.Cfg.Prefetch != nil && e.Cfg.Prefetch.Name() != "fixed"
}

// raCollapse tells the policy the reader seeked away from the detected
// stream.
func (e *Engine) raCollapse(vn *Vnode, lbn int64) {
	e.Stats.RACollapses++
	e.policy().Random(vn.IP.Ino)
	if e.raVerbose() {
		e.Bus.Emit(telemetry.Event{T: e.Sim.Now(), Kind: telemetry.EvRAWindow, LBN: lbn})
	}
}

// raTrigger runs one read-ahead decision at the trigger point: consult
// the policy with the live resource limits, then issue the granted
// window cluster by cluster from the nextrio cursor. With the fixed
// policy this is instruction-for-instruction the paper's one-cluster
// prefetch. edge is the first block past what the triggering access
// covered; exact reports which form of the trigger predicate matched.
func (e *Engine) raTrigger(p *sim.Proc, vn *Vnode, lbn int64, contig int, seq bool, edge int64, exact bool) {
	sb := e.FS.SB
	e.Stats.RATriggers++
	lim := prefetch.Limits{
		ClusterBlocks: e.maxClusterBlocks(),
		BlockBytes:    int(sb.Bsize),
		FreePages:     e.VM.FreeMem(),
		MemLow:        e.VM.MemoryLow(),
		WriteHeadroom: -1,
	}
	if vn.IP.WriteSem != nil {
		lim.WriteHeadroom = vn.IP.WriteSem.Value()
	}
	dec := e.policy().Trigger(vn.IP.Ino, seq, lim)
	if dec.ClampedMem {
		e.Stats.RAClampMem++
	}
	if dec.ClampedSem {
		e.Stats.RAClampSem++
	}

	// The window starts where the runway ends. An exact-match trigger
	// uses the paper's formula — the cursor, or the demand cluster's end
	// at the start of the file — unchanged from the pre-policy engine. A
	// loose trigger starts at the covered edge instead: the bmap run can
	// reach past what demand actually read (a cached trigger read
	// nothing), and starting at lbn+contig there would skip blocks the
	// reader still needs. The issue walk skips any cached prefix, so a
	// conservative edge costs lookups, never duplicate I/O.
	start := vn.IP.Nextrio
	if exact {
		if end := lbn + int64(contig); end > start {
			start = end
		}
	} else if edge > start {
		start = edge
	}
	if dec.Clusters == 0 {
		// Nothing granted (unconfirmed stream, or a non-sequential
		// access that happened to reach the trigger). Re-arm the cursor
		// at the runway edge for a confirmed-sequential caller; the
		// runway predicate keeps the trigger reachable either way. The
		// fixed policy never grants zero, so this branch never runs for
		// the default engine.
		if seq {
			vn.IP.Nextrio = start
		}
		e.raWindow.Observe(0)
		return
	}
	if e.raVerbose() {
		e.Bus.Emit(telemetry.Event{T: e.Sim.Now(), Kind: telemetry.EvRAWindow,
			LBN: start, Blocks: int64(dec.Clusters * lim.ClusterBlocks), Depth: int64(dec.Confidence)})
	}
	issued := 0
	for c := 0; c < dec.Clusters; c++ {
		if start*int64(sb.Bsize) >= vn.IP.D.Size {
			break
		}
		rfsbn, rcontig, err := e.FS.Bmap(p, vn.IP, start)
		if max := e.maxClusterBlocks(); rcontig > max {
			rcontig = max
		}
		if err != nil || rfsbn == 0 {
			break
		}
		e.startRead(p, vn, start, rfsbn, rcontig, true)
		start += int64(rcontig)
		vn.IP.Nextrio = start
		issued += rcontig
	}
	e.raWindow.Observe(int64(issued))
}

// startRead allocates pages for blocks [lbn, lbn+nblocks) that are not
// already cached and issues read I/O for them, splitting at cache hits
// and at the end of the file. It returns the (busy) page for lbn; with
// async true it does not wait for anything. Holes zero-fill without I/O.
func (e *Engine) startRead(p *sim.Proc, vn *Vnode, lbn int64, fsbn int32, nblocks int, async bool) *vm.Page {
	return e.startReadTagged(p, vn, lbn, fsbn, nblocks, async, false)
}

// startReadTagged is startRead with the transfers' driver-level vec tag
// under caller control: the vectored list-I/O read path marks its bufs
// so driver accounting can attribute them. The tag travels as a
// parameter, not engine state — Bmap and page allocation can block
// mid-issue, so concurrent processes interleave here.
func (e *Engine) startReadTagged(p *sim.Proc, vn *Vnode, lbn int64, fsbn int32, nblocks int, async, vtag bool) *vm.Page {
	sb := e.FS.SB
	if async {
		e.Stats.AsyncReads++
		// Report only what this prefetch will actually put on the wire:
		// the walk below skips cached blocks and stops at EOF, so a
		// read_ahead event sized by the requested span would overstate
		// the issued I/O. The pre-count uses the side-effect-free cache
		// peek — the walk's own Lookups (which reclaim and count) are
		// unchanged. A fully cached span emits nothing.
		issue := 0
		for i := 0; i < nblocks; i++ {
			bl := lbn + int64(i)
			if sb.BlkSize(vn.IP.D.Size, bl) <= 0 {
				break
			}
			if !e.VM.Cached(vn, bl*int64(sb.Bsize)) {
				issue++
			}
		}
		if issue > 0 {
			e.Bus.Emit(telemetry.Event{T: e.Sim.Now(), Kind: telemetry.EvReadAhead, LBN: lbn, Blocks: int64(issue)})
		}
	} else {
		e.Stats.SyncReads++
		e.Bus.Emit(telemetry.Event{T: e.Sim.Now(), Kind: telemetry.EvSyncRead, LBN: lbn, Blocks: int64(nblocks)})
	}

	if fsbn == 0 {
		// A hole: supply zeros, no backing I/O.
		e.Stats.ZeroFills++
		pg := e.VM.Alloc(p, vn, lbn*int64(sb.Bsize))
		e.charge(p, cpu.PageCache, e.Cfg.Costs.PageLookup)
		e.charge(p, cpu.Copy, e.Cfg.Costs.ZeroPerByte*int64(sb.Bsize))
		for i := range pg.Data {
			pg.Data[i] = 0
		}
		pg.Unbusy()
		return pg
	}

	// Walk the extent, grouping consecutive uncached blocks into runs
	// and issuing one transfer per run. Cached blocks (e.g. left over
	// from the write that created the file, or from an overlapping
	// prefetch) are skipped.
	var first *vm.Page
	var pages []*vm.Page
	var sizes []int
	runStart := -1
	bytes := 0
	flush := func() {
		if len(pages) == 0 {
			return
		}
		// One transfer for the run, scattered to the pages at
		// completion (the hardware would use a page list; the copy in
		// the handler is simulation bookkeeping with no simulated
		// cost).
		xfer := make([]byte, bytes)
		e.Stats.ReadBlocks += int64(len(pages))
		pgs, szs := pages, sizes
		e.FS.Drv.Strategy(p, &driver.Buf{
			Blkno: sb.FsbToDb(fsbn + int32(runStart)*sb.Frag),
			Data:  xfer,
			Vec:   vtag,
			Iodone: func(b *driver.Buf) {
				if b.Err != nil {
					// The transfer never produced data: latch the error
					// on the vnode and release the pages zeroed, so the
					// waiters unblock and Read reports the failure.
					vn.recordErr(b.Err)
					for _, pg := range pgs {
						for j := range pg.Data {
							pg.Data[j] = 0
						}
						pg.ClearDirty()
						pg.Unbusy()
					}
					return
				}
				off := 0
				for i, pg := range pgs {
					n := szs[i]
					copy(pg.Data[:n], b.Data[off:off+n])
					for j := n; j < len(pg.Data); j++ {
						pg.Data[j] = 0
					}
					off += n
					pg.ClearDirty()
					pg.Unbusy()
				}
			},
		})
		pages, sizes, bytes, runStart = nil, nil, 0, -1
	}
	for i := 0; i < nblocks; i++ {
		bl := lbn + int64(i)
		bsize := sb.BlkSize(vn.IP.D.Size, bl)
		if bsize <= 0 {
			break
		}
		if pg, ok := e.VM.Lookup(vn, bl*int64(sb.Bsize)); ok {
			if i == 0 {
				first = pg
			}
			flush()
			continue
		}
		pg := e.VM.Alloc(p, vn, bl*int64(sb.Bsize))
		if async {
			// Tag the page so telemetry can tell a prefetch hit
			// (TakeRA at the demand sites) from prefetch waste (the
			// VM counts tagged pages it recycles unreferenced).
			pg.MarkRA()
		}
		if i == 0 {
			first = pg
		}
		if runStart < 0 {
			runStart = i
		}
		pages = append(pages, pg)
		sizes = append(sizes, bsize)
		bytes += bsize
	}
	flush()
	return first
}
