// Package extfs implements a small extent-based file system — the
// alternative the paper considers and rejects ("Replace UFS with a new
// file system type, an extent based file system"). Files are allocated
// in large physically-contiguous extents whose size the *user* chooses
// per file; the on-disk inode stores <physical block, length> tuples and
// most I/O is done in units of an extent.
//
// It exists for the ablation benchmarks: it demonstrates that clustering
// gets extent-like sequential performance without a new on-disk format,
// and it exhibits the paper's criticism — a fixed, user-chosen extent
// size is wrong somewhere on every disk and under fragmentation the
// promised contiguity silently degrades.
package extfs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
)

// Layout constants. Allocation is in 8 KB units ("blocks").
const (
	Magic     = 0x0EF5
	BlockSize = 8192
	// NExtents is the number of extent slots per inode.
	NExtents = 12
	// MaxName bounds file names in the flat root directory.
	MaxName = 27
	// NFiles is the size of the root directory / inode table.
	NFiles = 128
)

// ErrNoSpace mirrors ufs.ErrNoSpace.
var ErrNoSpace = errors.New("extfs: no contiguous extent available")

// ErrNotFound is returned for missing names.
var ErrNotFound = errors.New("extfs: file not found")

// Extent is one contiguous run of blocks.
type Extent struct {
	Pbn int32 // block address (BlockSize units)
	Len int32 // blocks
}

// inode is the on-disk per-file record.
type inode struct {
	Used       int32
	Size       int64
	ExtentSize int32 // user-requested extent size in blocks
	Name       [MaxName + 1]byte
	Extents    [NExtents]Extent
}

// super is the on-disk superblock.
type super struct {
	Magic       int32
	TotalBlocks int32
	DataStart   int32 // first allocatable block
}

// Fs is a mounted extent file system.
type Fs struct {
	Sim *sim.Sim
	CPU *cpu.Model // may be nil
	Drv *driver.Driver

	sb     super
	inodes [NFiles]inode
	bitmap []bool // in-core allocation map (1 = used)

	// Costs are charged per operation; they mirror the UFS engine's
	// costs so comparisons isolate the I/O pattern, not bookkeeping.
	SyscallInstr int64
	PerIOInstr   int64
	CopyPerByte  int64

	// Stats
	Reads, Writes int64
	ExtentsAlloc  int64
	ShortAllocs   int64 // extents granted smaller than requested
}

// Mkfs formats the disk image for extfs (offline).
func Mkfs(d disk.Device) error {
	total := d.Geom().TotalBytes() / BlockSize
	meta := int64(1 + (NFiles*int64(binary.Size(inode{}))+BlockSize-1)/BlockSize)
	sb := super{Magic: Magic, TotalBlocks: int32(total), DataStart: int32(meta)}
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, &sb); err != nil {
		return err
	}
	blk := make([]byte, BlockSize)
	copy(blk, buf.Bytes())
	d.WriteImage(0, blk)
	// Zero the inode table.
	zero := make([]byte, BlockSize)
	for b := int64(1); b < meta; b++ {
		d.WriteImage(b*(BlockSize/disk.SectorSize), zero)
	}
	return nil
}

// Mount loads the file system.
func Mount(s *sim.Sim, cpuModel *cpu.Model, drv *driver.Driver) (*Fs, error) {
	fs := &Fs{
		Sim: s, CPU: cpuModel, Drv: drv,
		SyscallInstr: 3000,
		PerIOInstr:   9000, // fault+getpage-equivalent per extent I/O
		CopyPerByte:  3,
	}
	blk := make([]byte, BlockSize)
	drv.Disk.ReadImage(0, blk)
	if err := binary.Read(bytes.NewReader(blk), binary.LittleEndian, &fs.sb); err != nil {
		return nil, err
	}
	if fs.sb.Magic != Magic {
		return nil, fmt.Errorf("extfs: bad magic %#x", fs.sb.Magic)
	}
	isize := binary.Size(inode{})
	itab := make([]byte, (NFiles*isize+BlockSize-1)/BlockSize*BlockSize)
	drv.Disk.ReadImage(BlockSize/disk.SectorSize, itab)
	for i := range fs.inodes {
		r := bytes.NewReader(itab[i*isize:])
		if err := binary.Read(r, binary.LittleEndian, &fs.inodes[i]); err != nil {
			return nil, err
		}
	}
	fs.bitmap = make([]bool, fs.sb.TotalBlocks)
	for b := int32(0); b < fs.sb.DataStart; b++ {
		fs.bitmap[b] = true
	}
	for i := range fs.inodes {
		if fs.inodes[i].Used == 0 {
			continue
		}
		for _, e := range fs.inodes[i].Extents {
			for b := e.Pbn; b < e.Pbn+e.Len; b++ {
				fs.bitmap[b] = true
			}
		}
	}
	return fs, nil
}

// SyncImage writes the inode table back to the image (offline).
func (fs *Fs) SyncImage() {
	isize := binary.Size(inode{})
	itab := make([]byte, (NFiles*isize+BlockSize-1)/BlockSize*BlockSize)
	for i := range fs.inodes {
		var buf bytes.Buffer
		binary.Write(&buf, binary.LittleEndian, &fs.inodes[i])
		copy(itab[i*isize:], buf.Bytes())
	}
	fs.Drv.Disk.WriteImage(BlockSize/disk.SectorSize, itab)
}

// File is an open extfs file.
type File struct {
	fs  *Fs
	ino int
}

// Create makes a file with the given per-file extent size in blocks —
// the knob the paper argues users cannot set correctly.
func (fs *Fs) Create(name string, extentBlocks int) (*File, error) {
	if len(name) == 0 || len(name) > MaxName {
		return nil, fmt.Errorf("extfs: bad name %q", name)
	}
	if extentBlocks < 1 {
		return nil, fmt.Errorf("extfs: extent size must be positive")
	}
	if _, err := fs.lookup(name); err == nil {
		return nil, fmt.Errorf("extfs: %q exists", name)
	}
	for i := range fs.inodes {
		if fs.inodes[i].Used != 0 {
			continue
		}
		fs.inodes[i] = inode{Used: 1, ExtentSize: int32(extentBlocks)}
		copy(fs.inodes[i].Name[:], name)
		return &File{fs: fs, ino: i}, nil
	}
	return nil, errors.New("extfs: inode table full")
}

func (fs *Fs) lookup(name string) (int, error) {
	for i := range fs.inodes {
		if fs.inodes[i].Used == 0 {
			continue
		}
		n := bytes.IndexByte(fs.inodes[i].Name[:], 0)
		if n < 0 {
			n = len(fs.inodes[i].Name)
		}
		if string(fs.inodes[i].Name[:n]) == name {
			return i, nil
		}
	}
	return 0, ErrNotFound
}

// Open returns a handle for an existing file.
func (fs *Fs) Open(name string) (*File, error) {
	i, err := fs.lookup(name)
	if err != nil {
		return nil, err
	}
	return &File{fs: fs, ino: i}, nil
}

// Size returns the file length.
func (f *File) Size() int64 { return f.fs.inodes[f.ino].Size }

// Extents returns a copy of the file's extent list.
func (f *File) Extents() []Extent {
	var out []Extent
	for _, e := range f.fs.inodes[f.ino].Extents {
		if e.Len > 0 {
			out = append(out, e)
		}
	}
	return out
}

// allocExtent finds `want` contiguous blocks, or the largest available
// run if the full request cannot be honored (classic extent-fs
// degradation under fragmentation).
func (fs *Fs) allocExtent(want int32) (Extent, error) {
	bestStart, bestLen := int32(-1), int32(0)
	run, start := int32(0), int32(0)
	for b := fs.sb.DataStart; b < fs.sb.TotalBlocks; b++ {
		if fs.bitmap[b] {
			run = 0
			continue
		}
		if run == 0 {
			start = b
		}
		run++
		if run >= want {
			bestStart, bestLen = start, want
			break
		}
		if run > bestLen {
			bestStart, bestLen = start, run
		}
	}
	if bestStart < 0 || bestLen == 0 {
		return Extent{}, ErrNoSpace
	}
	for b := bestStart; b < bestStart+bestLen; b++ {
		fs.bitmap[b] = true
	}
	fs.ExtentsAlloc++
	if bestLen < want {
		fs.ShortAllocs++
	}
	return Extent{Pbn: bestStart, Len: bestLen}, nil
}

// mapOffset finds the extent and in-extent block for a byte offset,
// allocating through the end of the offset when alloc is true.
func (f *File) mapOffset(off int64, alloc bool) (pbn int32, contig int32, err error) {
	ip := &f.fs.inodes[f.ino]
	lbn := int32(off / BlockSize)
	var covered int32
	for i := range ip.Extents {
		e := &ip.Extents[i]
		if e.Len == 0 {
			if !alloc {
				return 0, 0, fmt.Errorf("extfs: offset %d beyond allocation", off)
			}
			ne, aerr := f.fs.allocExtent(ip.ExtentSize)
			if aerr != nil {
				return 0, 0, aerr
			}
			*e = ne
		}
		if lbn < covered+e.Len {
			rel := lbn - covered
			return e.Pbn + rel, e.Len - rel, nil
		}
		covered += e.Len
	}
	return 0, 0, fmt.Errorf("extfs: file exceeds %d extents", NExtents)
}

// io moves one extent-bounded span through the driver synchronously.
func (f *File) io(p *sim.Proc, pbn int32, buf []byte, write bool) {
	fs := f.fs
	if fs.CPU != nil {
		fs.CPU.Use(p, cpu.GetPage, fs.PerIOInstr)
	}
	done := false
	var q sim.WaitQ
	fs.Drv.Strategy(p, &driver.Buf{
		Blkno: int64(pbn) * (BlockSize / disk.SectorSize),
		Data:  buf,
		Write: write,
		Iodone: func(*driver.Buf) {
			done = true
			q.WakeAll()
		},
	})
	for !done {
		p.Block(&q)
	}
	if write {
		fs.Writes++
	} else {
		fs.Reads++
	}
}

// span computes the largest transfer starting at off: bounded by the
// extent, maxphys, and n.
func (f *File) span(off int64, n int, alloc bool) (pbn int32, bytes int, err error) {
	pbn, contig, err := f.mapOffset(off, alloc)
	if err != nil {
		return 0, 0, err
	}
	max := int(contig) * BlockSize
	if mp := f.fs.Drv.MaxPhys(); max > mp {
		max = mp
	}
	if n < max {
		max = n
	}
	return pbn, max, nil
}

// Write appends or overwrites data at off, in extent-sized transfers.
// Offsets and lengths must be block-aligned except at EOF (this is a
// benchmark substrate, not a general-purpose fs).
func (f *File) Write(p *sim.Proc, off int64, data []byte) error {
	fs := f.fs
	if fs.CPU != nil {
		fs.CPU.Use(p, cpu.Syscall, fs.SyscallInstr)
	}
	if off%BlockSize != 0 {
		return errors.New("extfs: unaligned write")
	}
	for len(data) > 0 {
		n := len(data)
		if pad := n % BlockSize; pad != 0 {
			n += BlockSize - pad // round the tail up to a block
		}
		pbn, nb, err := f.span(off, n, true)
		if err != nil {
			return err
		}
		chunk := data
		if len(chunk) > nb {
			chunk = chunk[:nb]
		}
		xfer := make([]byte, nb)
		copy(xfer, chunk)
		if fs.CPU != nil {
			fs.CPU.Use(p, cpu.Copy, fs.CopyPerByte*int64(len(chunk)))
		}
		f.io(p, pbn, xfer, true)
		off += int64(len(chunk))
		if end := off; end > fs.inodes[f.ino].Size {
			fs.inodes[f.ino].Size = end
		}
		data = data[len(chunk):]
	}
	return nil
}

// Read fills buf from off, in extent-sized transfers.
func (f *File) Read(p *sim.Proc, off int64, buf []byte) (int, error) {
	fs := f.fs
	if fs.CPU != nil {
		fs.CPU.Use(p, cpu.Syscall, fs.SyscallInstr)
	}
	size := fs.inodes[f.ino].Size
	total := 0
	for len(buf) > 0 && off < size {
		want := len(buf)
		if rem := size - off; int64(want) > rem {
			want = int(rem)
		}
		aligned := (want + BlockSize - 1) / BlockSize * BlockSize
		boff := int(off % BlockSize)
		pbn, nb, err := f.span(off-int64(boff), aligned+boff, false)
		if err != nil {
			return total, err
		}
		xfer := make([]byte, nb)
		f.io(p, pbn, xfer, false)
		n := nb - boff
		if n > want {
			n = want
		}
		copy(buf[:n], xfer[boff:boff+n])
		if fs.CPU != nil {
			fs.CPU.Use(p, cpu.Copy, fs.CopyPerByte*int64(n))
		}
		off += int64(n)
		buf = buf[n:]
		total += n
	}
	return total, nil
}

// Preallocate reserves extents to cover size bytes up front — the
// extent-fs feature the paper found unnecessary in UFS because the FFS
// allocator already "thinks ahead".
func (f *File) Preallocate(size int64) error {
	blocks := (size + BlockSize - 1) / BlockSize
	ip := &f.fs.inodes[f.ino]
	var covered int64
	for i := range ip.Extents {
		if covered >= blocks {
			return nil
		}
		if ip.Extents[i].Len == 0 {
			e, err := f.fs.allocExtent(ip.ExtentSize)
			if err != nil {
				return err
			}
			ip.Extents[i] = e
		}
		covered += int64(ip.Extents[i].Len)
	}
	if covered < blocks {
		return fmt.Errorf("extfs: %d extents cannot cover %d bytes", NExtents, size)
	}
	return nil
}
