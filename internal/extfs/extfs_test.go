package extfs

import (
	"bytes"
	"testing"

	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
)

func newFs(t *testing.T) (*sim.Sim, *Fs, *disk.Disk) {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	dp := disk.DefaultParams()
	dp.Geom = disk.UniformGeometry(96, 8, 64, 3600)
	d := disk.New(s, "d0", dp)
	if err := Mkfs(d); err != nil {
		t.Fatal(err)
	}
	dc := driver.DefaultConfig()
	dc.MaxPhys = 128 << 10
	dr := driver.New(s, d, cpu.New(s, 12), dc)
	fs, err := Mount(s, nil, dr)
	if err != nil {
		t.Fatal(err)
	}
	return s, fs, d
}

func TestCreateOpenRoundTrip(t *testing.T) {
	s, fs, _ := newFs(t)
	data := make([]byte, 100<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	s.Spawn("io", func(p *sim.Proc) {
		f, err := fs.Create("video.dat", 16)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := f.Write(p, 0, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		g, err := fs.Open("video.dat")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if g.Size() != int64(len(data)) {
			t.Errorf("size = %d, want %d", g.Size(), len(data))
		}
		got := make([]byte, len(data))
		n, err := g.Read(p, 0, got)
		if err != nil || n != len(data) {
			t.Errorf("read: n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("round trip mismatch")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExtentsAreContiguous(t *testing.T) {
	s, fs, _ := newFs(t)
	s.Spawn("io", func(p *sim.Proc) {
		f, _ := fs.Create("f", 32)
		f.Write(p, 0, make([]byte, 512<<10)) // 64 blocks = 2 extents
		exts := f.Extents()
		if len(exts) != 2 {
			t.Errorf("extents = %d, want 2", len(exts))
			return
		}
		for _, e := range exts {
			if e.Len != 32 {
				t.Errorf("extent len = %d, want 32", e.Len)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentationShortensExtents(t *testing.T) {
	// Checkerboard the disk with small files, then ask for a big
	// extent: the fs silently hands back a shorter one (the degradation
	// the paper holds against user-chosen extent sizes).
	s, fs, _ := newFs(t)
	s.Spawn("io", func(p *sim.Proc) {
		// Fill with 1-block files, then free every other one by
		// clearing bitmap runs (simulating deletions).
		var singles []Extent
		for {
			e, err := fs.allocExtent(1)
			if err != nil {
				break
			}
			singles = append(singles, e)
		}
		for i, e := range singles {
			if i%2 == 0 {
				fs.bitmap[e.Pbn] = false
			}
		}
		f, _ := fs.Create("big", 64)
		// 12 single-block extents is the most a checkerboarded disk can
		// give this inode: write just under that.
		if err := f.Write(p, 0, make([]byte, 12*BlockSize)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if fs.ShortAllocs == 0 {
			t.Error("fragmented disk granted full-size extents")
		}
		for _, e := range f.Extents() {
			if e.Len > 1 {
				t.Errorf("extent len %d on a checkerboarded disk", e.Len)
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPreallocate(t *testing.T) {
	s, fs, _ := newFs(t)
	s.Spawn("io", func(p *sim.Proc) {
		f, _ := fs.Create("pre", 16)
		if err := f.Preallocate(1 << 20); err != nil {
			t.Errorf("preallocate: %v", err)
			return
		}
		if got := len(f.Extents()); got != 8 { // 128 blocks / 16
			t.Errorf("extents after prealloc = %d, want 8", got)
		}
		allocs := fs.ExtentsAlloc
		// Writing into preallocated space must not allocate more.
		f.Write(p, 0, make([]byte, 1<<20))
		if fs.ExtentsAlloc != allocs {
			t.Error("write into preallocated file allocated extents")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMountRebuildsState(t *testing.T) {
	s, fs, d := newFs(t)
	s.Spawn("io", func(p *sim.Proc) {
		f, _ := fs.Create("persist", 8)
		f.Write(p, 0, make([]byte, 64<<10))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	fs.SyncImage()
	// Remount on a fresh sim sharing the image.
	s2 := sim.New(2)
	t.Cleanup(s2.Close)
	_ = s2
	dr2 := driver.New(fs.Sim, d, nil, driver.DefaultConfig())
	fs2, err := Mount(fs.Sim, nil, dr2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open("persist")
	if err != nil {
		t.Fatalf("open after remount: %v", err)
	}
	if g.Size() != 64<<10 {
		t.Fatalf("size after remount = %d", g.Size())
	}
	// The remounted bitmap must cover the file's extents.
	for _, e := range g.Extents() {
		for b := e.Pbn; b < e.Pbn+e.Len; b++ {
			if !fs2.bitmap[b] {
				t.Fatal("remounted bitmap lost an allocated block")
			}
		}
	}
}

func TestExtentSizeTooSmallForFile(t *testing.T) {
	s, fs, _ := newFs(t)
	s.Spawn("io", func(p *sim.Proc) {
		f, _ := fs.Create("tiny-extents", 1)
		// 12 extents x 1 block = 96 KB max.
		err := f.Write(p, 0, make([]byte, 200<<10))
		if err == nil {
			t.Error("write beyond 12 extents succeeded")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestVariableGeometryBreaksFixedExtentSizes demonstrates the paper's
// argument against user-chosen extents: on a zoned drive the same
// extent covers different amounts of rotation at different radii, so
// there is no single "right" extent size. We measure the raw transfer
// rate for the same-sized file placed in the outermost and innermost
// zones.
func TestVariableGeometryBreaksFixedExtentSizes(t *testing.T) {
	rate := func(startFrac float64) float64 {
		s := sim.New(1)
		t.Cleanup(s.Close)
		dp := disk.DefaultParams()
		dp.Geom = disk.ZonedGeometry()
		dp.TrackBuffer = false
		d := disk.New(s, "d0", dp)
		dc := driver.DefaultConfig()
		dc.MaxPhys = 128 << 10
		dr := driver.New(s, d, nil, dc)
		const size = 2 << 20
		start := int64(float64(d.Geom().TotalSectors())*startFrac) / 16 * 16
		var elapsed sim.Time
		s.Spawn("reader", func(p *sim.Proc) {
			buf := make([]byte, 120<<10)
			done := 0
			t0 := p.Now()
			for done < size {
				n := len(buf)
				if done+n > size {
					n = size - done
				}
				req := &driver.Buf{Blkno: start + int64(done/512), Data: buf[:n]}
				doneCh := false
				var q sim.WaitQ
				req.Iodone = func(*driver.Buf) { doneCh = true; q.WakeAll() }
				dr.Strategy(p, req)
				for !doneCh {
					p.Block(&q)
				}
				done += n
			}
			elapsed = p.Now() - t0
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(size) / 1024 / elapsed.Seconds()
	}
	outer := rate(0.02) // zone 0: 72 sectors/track
	inner := rate(0.95) // zone 2: 48 sectors/track
	if outer <= inner {
		t.Fatalf("outer zone (%.0f KB/s) not faster than inner (%.0f KB/s)", outer, inner)
	}
	ratio := outer / inner
	if ratio < 1.2 {
		t.Errorf("zone rate ratio %.2f too small to matter (geometry 72/48 spt)", ratio)
	}
	t.Logf("same extent, different radii: outer %.0f KB/s vs inner %.0f KB/s (%.2fx) — no single correct extent size", outer, inner, ratio)
}
