// Package cpubench reproduces Figure 12, the system-CPU comparison:
// read a 16 MB file through the mmap interface — chosen because "the
// IObench CPU times are dominated by the copy time"; mmap avoids the
// copy so the file system's own overhead shows — and report the CPU
// seconds consumed. The paper measured 3.4 s for the 4.1 UFS with
// rotdelays and 2.6 s for the 4.1.1 clustering UFS without, a ~25 %
// saving. It also reproduces the intro's sizing claim: "about half of a
// 12MIPS CPU was used to get half of the disk bandwidth of a
// 1.5MB/second disk" for the legacy read path with copies.
package cpubench

import (
	"fmt"
	"sort"
	"strings"

	"ufsclust"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// Result is one row of Figure 12.
type Result struct {
	Label    string
	FileMB   int
	CPUTime  sim.Time // system CPU charged
	Elapsed  sim.Time
	RateKBs  float64
	CPUShare float64 // CPUTime / Elapsed
	Report   string  // per-category breakdown
}

// cpuReport reconstructs the per-category CPU breakdown (the format of
// cpu.Model.Report) from an interval's cpu.<category>.{ns,instr,calls}
// delta entries. Categories untouched during the interval delta to
// all-zero rows and are dropped — which is exactly what the old
// ResetStats-then-Report dance achieved by destroying the counters.
func cpuReport(d telemetry.Snapshot) string {
	type row struct {
		cat              string
		ns, instr, calls int64
	}
	byCat := map[string]*row{}
	var order []string
	for _, e := range d.Entries {
		rest, ok := strings.CutPrefix(e.Name, "cpu.")
		if !ok {
			continue
		}
		cat, field, ok := strings.Cut(rest, ".")
		if !ok {
			continue // cpu.system_ns / cpu.intr_ns totals
		}
		r := byCat[cat]
		if r == nil {
			r = &row{cat: cat}
			byCat[cat] = r
			order = append(order, cat)
		}
		switch field {
		case "ns":
			r.ns = e.Value
		case "instr":
			r.instr = e.Value
		case "calls":
			r.calls = e.Value
		}
	}
	rows := make([]*row, 0, len(order))
	for _, cat := range order {
		if r := byCat[cat]; r.ns != 0 || r.instr != 0 || r.calls != 0 {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ns != rows[j].ns {
			return rows[i].ns > rows[j].ns
		}
		return rows[i].cat < rows[j].cat
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %12s %10s %8s\n", "category", "instructions", "cpu", "calls")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %12d %10v %8d\n", r.cat, r.instr, sim.Time(r.ns), r.calls)
	}
	fmt.Fprintf(&sb, "%-12s %12s %10v\n", "total", "", sim.Time(d.Get("cpu.system_ns")))
	return sb.String()
}

// MmapRead runs the Figure 12 measurement for one configuration.
func MmapRead(rc ufsclust.RunConfig, fileMB int) (Result, error) {
	m, err := ufsclust.New(rc)
	if err != nil {
		return Result{}, err
	}
	defer m.Close()
	size := int64(fileMB) << 20
	res := Result{Label: rc.Name, FileMB: fileMB}
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/mmapbench")
		if err != nil {
			return
		}
		chunk := make([]byte, 64<<10)
		for off := int64(0); off < size; off += int64(len(chunk)) {
			f.Write(p, off, chunk)
		}
		f.Purge(p)
		pre := m.Snapshot()
		t0 := p.Now()
		f.ReadMmap(p, 0, size)
		res.Elapsed = p.Now() - t0
		delta := m.Snapshot().Delta(pre)
		res.CPUTime = sim.Time(delta.Get("cpu.system_ns"))
		res.Report = cpuReport(delta)
	})
	if err != nil {
		return Result{}, err
	}
	res.RateKBs = float64(size) / 1024 / res.Elapsed.Seconds()
	res.CPUShare = float64(res.CPUTime) / float64(res.Elapsed)
	return res, nil
}

// ReadWithCopy runs the sequential read through the normal read(2) path
// (copies included) and reports CPU share — the intro's "half of a
// 12MIPS CPU" observation for the legacy system.
func ReadWithCopy(rc ufsclust.RunConfig, fileMB int) (Result, error) {
	m, err := ufsclust.New(rc)
	if err != nil {
		return Result{}, err
	}
	defer m.Close()
	size := int64(fileMB) << 20
	res := Result{Label: rc.Name, FileMB: fileMB}
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/readbench")
		if err != nil {
			return
		}
		chunk := make([]byte, 64<<10)
		for off := int64(0); off < size; off += int64(len(chunk)) {
			f.Write(p, off, chunk)
		}
		f.Purge(p)
		pre := m.Snapshot()
		t0 := p.Now()
		buf := make([]byte, 8192)
		for off := int64(0); off < size; off += 8192 {
			f.Read(p, off, buf)
		}
		res.Elapsed = p.Now() - t0
		delta := m.Snapshot().Delta(pre)
		res.CPUTime = sim.Time(delta.Get("cpu.system_ns"))
		res.Report = cpuReport(delta)
	})
	if err != nil {
		return Result{}, err
	}
	res.RateKBs = float64(size) / 1024 / res.Elapsed.Seconds()
	res.CPUShare = float64(res.CPUTime) / float64(res.Elapsed)
	return res, nil
}

// Figure12 runs both rows of the figure and returns (new, old).
func Figure12(fileMB int) (Result, Result, error) {
	newRes, err := MmapRead(ufsclust.RunA(), fileMB)
	if err != nil {
		return Result{}, Result{}, err
	}
	oldRes, err := MmapRead(ufsclust.RunD(), fileMB)
	if err != nil {
		return Result{}, Result{}, err
	}
	newRes.Label = "4.1.1 UFS, no rotdelays, mmap read"
	oldRes.Label = "4.1 UFS, rotdelays, mmap read"
	return newRes, oldRes, nil
}

// Format renders the two rows like the paper's figure.
func Format(newRes, oldRes Result) string {
	return fmt.Sprintf("%-6s %s\n%5.1fs %s\n%5.1fs %s\n(new/old CPU ratio %.2f; paper: 2.6/3.4 = 0.76)\n",
		"CPU", "Notes",
		newRes.CPUTime.Seconds(), newRes.Label+fmt.Sprintf(", %dMB", newRes.FileMB),
		oldRes.CPUTime.Seconds(), oldRes.Label+fmt.Sprintf(", %dMB", oldRes.FileMB),
		float64(newRes.CPUTime)/float64(oldRes.CPUTime))
}
