package cpubench

import (
	"strings"
	"testing"

	"ufsclust"
)

func TestFigure12Shape(t *testing.T) {
	newRes, oldRes, err := Figure12(16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", Format(newRes, oldRes))
	t.Logf("new breakdown:\n%s", newRes.Report)
	t.Logf("old breakdown:\n%s", oldRes.Report)
	// Paper: 2.6s vs 3.4s — the clustering UFS uses ~25% less CPU.
	ratio := float64(newRes.CPUTime) / float64(oldRes.CPUTime)
	if ratio >= 0.95 {
		t.Errorf("CPU ratio new/old = %.2f, want < 0.95 (paper 0.76)", ratio)
	}
	if ratio < 0.5 {
		t.Errorf("CPU ratio new/old = %.2f implausibly low (paper 0.76)", ratio)
	}
	// Absolute CPU seconds should be within ~2x of the paper's 2.6/3.4.
	if s := oldRes.CPUTime.Seconds(); s < 1.7 || s > 6.8 {
		t.Errorf("old CPU = %.2fs, want ~3.4s", s)
	}
	if s := newRes.CPUTime.Seconds(); s < 1.3 || s > 5.2 {
		t.Errorf("new CPU = %.2fs, want ~2.6s", s)
	}
}

func TestIntroHalfCPUHalfBandwidth(t *testing.T) {
	// "Measuring the existing UFS showed that about half of a 12MIPS
	// CPU was used to get half of the disk bandwidth of a 1.5MB/second
	// disk."
	res, err := ReadWithCopy(ufsclust.RunD(), 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("legacy read: %.0f KB/s at %.0f%% CPU", res.RateKBs, res.CPUShare*100)
	if res.RateKBs < 600 || res.RateKBs > 1000 {
		t.Errorf("legacy rate = %.0f KB/s, want ~750 (half of ~1.5MB/s)", res.RateKBs)
	}
	if res.CPUShare < 0.25 || res.CPUShare > 0.75 {
		t.Errorf("legacy CPU share = %.2f, want ~0.5", res.CPUShare)
	}
}

func TestClusteredReadUsesLessCPUPerByte(t *testing.T) {
	newRes, err := ReadWithCopy(ufsclust.RunA(), 8)
	if err != nil {
		t.Fatal(err)
	}
	oldRes, err := ReadWithCopy(ufsclust.RunD(), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Same bytes moved; the clustered engine must charge less CPU.
	if newRes.CPUTime >= oldRes.CPUTime {
		t.Errorf("clustered CPU %v >= legacy %v for the same bytes", newRes.CPUTime, oldRes.CPUTime)
	}
}

func TestReportHasBreakdown(t *testing.T) {
	res, err := MmapRead(ufsclust.RunA(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, cat := range []string{"fault", "getpage", "total"} {
		if !strings.Contains(res.Report, cat) {
			t.Errorf("report missing %q:\n%s", cat, res.Report)
		}
	}
	// The mmap path must not copy.
	if strings.Contains(res.Report, "copy") {
		t.Errorf("mmap read charged copy time:\n%s", res.Report)
	}
}
