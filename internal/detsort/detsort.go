// Package detsort provides deterministic-iteration helpers for maps.
//
// Go randomizes map iteration order on purpose, which is exactly wrong
// for a deterministic simulation: any map walk whose order can reach
// event scheduling, statistics, or report output makes runs
// unreproducible. Simulation code that must visit every entry of a map
// collects the keys with these helpers and iterates the sorted slice
// instead. The simlint "maporder" rule (internal/analysis) enforces the
// convention.
package detsort

import (
	"cmp"
	"slices"
)

// Keys returns the keys of m sorted in ascending order.
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// KeysFunc returns the keys of m sorted by the given comparison
// function, for key types that are not cmp.Ordered (structs, pointers).
func KeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, less)
	return keys
}
