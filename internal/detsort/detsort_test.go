package detsort

import (
	"cmp"
	"reflect"
	"testing"
)

func TestKeys(t *testing.T) {
	m := map[int32]string{9: "i", 1: "a", 4: "d", -3: "n"}
	for try := 0; try < 8; try++ {
		got := Keys(m)
		want := []int32{-3, 1, 4, 9}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	if got := Keys(map[string]int(nil)); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v, want empty", got)
	}
}

func TestKeysFunc(t *testing.T) {
	type pt struct{ x, y int }
	m := map[pt]bool{{2, 1}: true, {1, 9}: true, {1, 2}: true}
	got := KeysFunc(m, func(a, b pt) int {
		if c := cmp.Compare(a.x, b.x); c != 0 {
			return c
		}
		return cmp.Compare(a.y, b.y)
	})
	want := []pt{{1, 2}, {1, 9}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KeysFunc = %v, want %v", got, want)
	}
}
