// Package prefetch implements the engine's read-ahead policies: the
// decision half of getpage's prefetch path. A Policy watches each
// file's access pattern at the read-ahead trigger points and answers
// one question — how many clusters to issue ahead of the reader — while
// the engine keeps the mechanism (bmap, startRead, nextrio bookkeeping).
//
// Three policies exist:
//
//   - Fixed (the default, the paper's nextrio behaviour): one cluster
//     ahead, always. Byte-identical to the pre-policy engine.
//   - Adaptive: a per-file sequentiality-confidence detector feeding a
//     ramping window — arm on the first sequential trigger, issue one
//     cluster on the second, double on each further confirmed trigger
//     up to a ceiling, collapse to zero on a random seek, and clamp by
//     free memory and the per-file write-limit headroom so prefetch
//     never starves demand I/O.
//   - Off: no read-ahead at all (WithReadAhead(prefetch.Off())).
//
// Policies are deterministic state machines over simulated inputs only:
// same access stream, same decisions, same telemetry — the ra_window
// event stream replays byte-identically across same-seed runs.
package prefetch

// Limits carries the resource state a policy may clamp its window
// against. The engine fills it from live machine state at each trigger.
type Limits struct {
	// ClusterBlocks is the effective cluster size in blocks (maxcontig
	// capped by the driver's maxphys).
	ClusterBlocks int
	// BlockBytes is the file system block size.
	BlockBytes int
	// FreePages is the VM free-list length in pages.
	FreePages int
	// MemLow reports free memory near the pageout threshold (the same
	// predicate that gates free-behind).
	MemLow bool
	// WriteHeadroom is the file's write-limit semaphore headroom in
	// bytes, or -1 when no write limit is mounted. Prefetch competes
	// with demand writes for the disk queue; a policy that respects the
	// headroom cannot queue more speculative bytes than the mount lets
	// one file queue deliberately.
	WriteHeadroom int64
}

// Decision is a policy's answer at a read-ahead trigger.
type Decision struct {
	// Clusters is how many clusters to issue, starting at the window
	// cursor (nextrio). Zero means arm the trigger but issue nothing.
	Clusters int
	// Confidence is the detector's sequentiality confidence (consecutive
	// confirmed sequential triggers); fixed policies report 0.
	Confidence int
	// ClampedMem and ClampedSem report that the window was reduced by
	// the free-memory or write-limit clamp (telemetry).
	ClampedMem bool
	ClampedSem bool
}

// Policy decides the prefetch window at each read-ahead trigger. The
// engine consults it only when Config.ReadAhead is on and the engine is
// clustered; implementations must be deterministic and must not touch
// simulated time or scheduling.
type Policy interface {
	// Name returns the policy's wire name ("fixed", "adaptive").
	Name() string
	// Trigger is consulted when the access stream reaches the read-ahead
	// trigger point: the start of the last prefetched cluster, or the
	// start of the file. seq reports whether the access matched the
	// block-level predictor (lbn == nextr).
	Trigger(ino int32, seq bool, lim Limits) Decision
	// Random informs the policy of a non-sequential cache miss — the
	// signal that the reader seeked away from the detected stream.
	Random(ino int32)
	// Forget drops any per-file state (purge, truncate, remove).
	Forget(ino int32)
}

// Off returns the nil policy: WithReadAhead(prefetch.Off()) disables
// read-ahead entirely (the engine's ReadAhead switch turns off).
func Off() Policy { return nil }

// fixed is the paper's policy: one cluster ahead on every trigger,
// no per-file state, no clamps — exactly the pre-policy nextrio code.
type fixed struct{}

// NewFixed returns the default one-cluster policy.
func NewFixed() Policy { return fixed{} }

func (fixed) Name() string { return "fixed" }

// Trigger always asks for one cluster; the legacy behaviour never
// clamps, so a machine with no telemetry attached behaves bit-for-bit
// like the pre-policy engine.
func (fixed) Trigger(ino int32, seq bool, lim Limits) Decision {
	return Decision{Clusters: 1}
}

func (fixed) Random(ino int32) {}
func (fixed) Forget(ino int32) {}

// AdaptiveConfig tunes the adaptive policy. The zero value selects the
// defaults below.
type AdaptiveConfig struct {
	// StartClusters is the window issued on the first confirmed
	// sequential trigger (the second sequential trigger since the last
	// collapse). Default 1.
	StartClusters int
	// MaxClusters is the ramp ceiling. Default 8 (120 blocks ahead at
	// the paper's 15-block clusters).
	MaxClusters int
	// MemDivisor caps the window at FreePages/MemDivisor pages so a
	// deep window cannot flush the cache; when memory is low the window
	// additionally collapses to at most one cluster. Default 4.
	MemDivisor int
	// ConfidenceCap saturates the confidence counter (and therefore the
	// ramp exponent). Default 16.
	ConfidenceCap int
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.StartClusters <= 0 {
		c.StartClusters = 1
	}
	if c.MaxClusters <= 0 {
		c.MaxClusters = 8
	}
	if c.MemDivisor <= 0 {
		c.MemDivisor = 4
	}
	if c.ConfidenceCap <= 0 {
		c.ConfidenceCap = 16
	}
	return c
}

// Adaptive is the confidence-driven policy: per-file detectors keyed by
// inode number. Detectors are looked up, never iterated, so the map
// leaks no host ordering into the simulation.
type Adaptive struct {
	cfg   AdaptiveConfig
	files map[int32]*detector
}

// detector is one file's sequentiality state: the count of consecutive
// confirmed sequential triggers since the last random seek.
type detector struct {
	hits int
}

// NewAdaptive returns an adaptive policy with the given tuning.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	return &Adaptive{cfg: cfg.withDefaults(), files: make(map[int32]*detector)}
}

func (a *Adaptive) Name() string { return "adaptive" }

func (a *Adaptive) file(ino int32) *detector {
	d, ok := a.files[ino]
	if !ok {
		d = &detector{}
		a.files[ino] = d
	}
	return d
}

// Trigger ramps the window: the first sequential trigger after a
// collapse arms the detector without issuing (a single accidental
// next-block touch — the head of a two-block random burst — must not
// pay a full cluster), the second issues StartClusters, and each
// further *granted* window doubles the next one up to MaxClusters —
// confidence steps once per window issued, not once per consulted
// block, so a freshly confirmed stream cannot leap straight to the
// ceiling and overshoot. A trigger whose access did not match the
// predictor neither ramps nor issues.
func (a *Adaptive) Trigger(ino int32, seq bool, lim Limits) Decision {
	d := a.file(ino)
	if !seq {
		return Decision{Clusters: 0, Confidence: d.hits}
	}
	if d.hits == 0 {
		d.hits = 1
		return Decision{Clusters: 0, Confidence: 1}
	}
	want := a.cfg.StartClusters
	for i := 1; i < d.hits && want < a.cfg.MaxClusters; i++ {
		want *= 2
	}
	if want > a.cfg.MaxClusters {
		want = a.cfg.MaxClusters
	}
	dec := clamp(Decision{Clusters: want, Confidence: d.hits}, a.cfg, lim)
	if dec.Clusters > 0 && d.hits < a.cfg.ConfidenceCap {
		d.hits++
	}
	return dec
}

// clamp applies the resource limits to a desired window.
func clamp(dec Decision, cfg AdaptiveConfig, lim Limits) Decision {
	cb := lim.ClusterBlocks
	if cb < 1 {
		cb = 1
	}
	// Free-memory clamp: the window may use at most a MemDivisor'th of
	// free memory, and at most one cluster when memory is already low.
	maxBlocks := lim.FreePages / cfg.MemDivisor
	if lim.MemLow && maxBlocks > cb {
		maxBlocks = cb
	}
	if byMem := maxBlocks / cb; dec.Clusters > byMem {
		dec.Clusters = byMem
		dec.ClampedMem = true
	}
	// Write-limit clamp: never queue more speculative bytes than the
	// per-file write limit would let a writer queue deliberately.
	if lim.WriteHeadroom >= 0 && lim.BlockBytes > 0 {
		bySem := int(lim.WriteHeadroom / int64(cb*lim.BlockBytes))
		if dec.Clusters > bySem {
			dec.Clusters = bySem
			dec.ClampedSem = true
		}
	}
	// A confirmed sequential stream never drops below one cluster: that
	// is the fixed baseline, and the fixed policy prefetches one cluster
	// into LRU-stolen pages regardless of free-list length. Clamping a
	// confirmed stream to zero would make adaptive strictly worse than
	// fixed whenever memory is tight — exactly when the steady-state
	// free list is short.
	if dec.Clusters < 1 {
		dec.Clusters = 1
	}
	return dec
}

// Random collapses the file's window to zero: the next sequential run
// must re-confirm before prefetch resumes.
func (a *Adaptive) Random(ino int32) {
	if d, ok := a.files[ino]; ok {
		d.hits = 0
	}
}

// Forget drops the file's detector (purge, truncate, remove).
func (a *Adaptive) Forget(ino int32) {
	delete(a.files, ino)
}

// Confidence exposes a file's current confidence (tests and tools).
func (a *Adaptive) Confidence(ino int32) int {
	if d, ok := a.files[ino]; ok {
		return d.hits
	}
	return 0
}
