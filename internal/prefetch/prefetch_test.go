package prefetch

import "testing"

// roomy is a Limits with nothing scarce: no clamp should ever fire.
func roomy() Limits {
	return Limits{ClusterBlocks: 8, BlockBytes: 8192, FreePages: 1 << 20, WriteHeadroom: -1}
}

func TestFixedAlwaysOneCluster(t *testing.T) {
	p := NewFixed()
	if p.Name() != "fixed" {
		t.Fatalf("Name() = %q, want fixed", p.Name())
	}
	for i := 0; i < 5; i++ {
		for _, seq := range []bool{true, false} {
			dec := p.Trigger(1, seq, roomy())
			if dec.Clusters != 1 || dec.Confidence != 0 || dec.ClampedMem || dec.ClampedSem {
				t.Fatalf("fixed Trigger(seq=%v) = %+v, want exactly one unclamped cluster", seq, dec)
			}
		}
	}
	p.Random(1)
	p.Forget(1)
	if dec := p.Trigger(1, true, Limits{}); dec.Clusters != 1 {
		t.Fatalf("fixed after Random/Forget = %+v", dec)
	}
}

func TestOffIsNil(t *testing.T) {
	if Off() != nil {
		t.Fatal("Off() must be the nil policy")
	}
}

// TestAdaptiveRamp walks the doubling schedule: arm on the first
// sequential trigger, one cluster on the second, then 2, 4, 8, and
// saturation at MaxClusters.
func TestAdaptiveRamp(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{})
	want := []int{0, 1, 2, 4, 8, 8, 8}
	for i, w := range want {
		dec := a.Trigger(7, true, roomy())
		if dec.Clusters != w {
			t.Fatalf("trigger %d: granted %d clusters, want %d", i+1, dec.Clusters, w)
		}
		if w == 0 && dec.Confidence != 1 {
			t.Fatalf("arm trigger: confidence %d, want 1", dec.Confidence)
		}
	}
	if c := a.Confidence(7); c < 2 {
		t.Fatalf("confidence %d after sustained stream, want ramped", c)
	}
}

// TestAdaptiveConfidenceCap pins the saturation: confidence stops at
// ConfidenceCap no matter how long the stream runs.
func TestAdaptiveConfidenceCap(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{ConfidenceCap: 5})
	for i := 0; i < 40; i++ {
		a.Trigger(3, true, roomy())
	}
	if c := a.Confidence(3); c != 5 {
		t.Fatalf("confidence %d, want capped at 5", c)
	}
}

// TestAdaptiveCollapse verifies a random seek zeroes the window: the
// next sequential trigger arms again instead of continuing the ramp.
func TestAdaptiveCollapse(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{})
	for i := 0; i < 4; i++ {
		a.Trigger(9, true, roomy())
	}
	a.Random(9)
	if c := a.Confidence(9); c != 0 {
		t.Fatalf("confidence %d after Random, want 0", c)
	}
	if dec := a.Trigger(9, true, roomy()); dec.Clusters != 0 {
		t.Fatalf("first trigger after collapse granted %d clusters, want 0 (arm)", dec.Clusters)
	}
	if dec := a.Trigger(9, true, roomy()); dec.Clusters != 1 {
		t.Fatalf("second trigger after collapse granted %d clusters, want 1", dec.Clusters)
	}
}

// TestAdaptiveNonSequentialNeverIssues pins the burst defence: a
// non-sequential access reaching the trigger gets nothing and does not
// advance the detector.
func TestAdaptiveNonSequentialNeverIssues(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{})
	for i := 0; i < 10; i++ {
		if dec := a.Trigger(4, false, roomy()); dec.Clusters != 0 {
			t.Fatalf("non-sequential trigger granted %d clusters", dec.Clusters)
		}
	}
	if c := a.Confidence(4); c != 0 {
		t.Fatalf("confidence %d after random triggers, want 0", c)
	}
}

// ramped returns an adaptive policy whose file ino wants MaxClusters.
func ramped(ino int32) *Adaptive {
	a := NewAdaptive(AdaptiveConfig{})
	for i := 0; i < 8; i++ {
		a.Trigger(ino, true, roomy())
	}
	return a
}

func TestAdaptiveMemClamp(t *testing.T) {
	a := ramped(1)
	// 64 free pages / MemDivisor 4 = 16 blocks = 2 clusters of 8.
	lim := roomy()
	lim.FreePages = 64
	dec := a.Trigger(1, true, lim)
	if dec.Clusters != 2 || !dec.ClampedMem {
		t.Fatalf("mem clamp: %+v, want 2 clusters with ClampedMem", dec)
	}
	// Low memory caps at one cluster even with a longer free list.
	lim.FreePages = 1 << 20
	lim.MemLow = true
	dec = a.Trigger(1, true, lim)
	if dec.Clusters != 1 || !dec.ClampedMem {
		t.Fatalf("memlow clamp: %+v, want 1 cluster with ClampedMem", dec)
	}
	// A confirmed stream never drops below the fixed baseline of one
	// cluster, even with an empty free list.
	lim.FreePages = 0
	dec = a.Trigger(1, true, lim)
	if dec.Clusters != 1 {
		t.Fatalf("empty free list: %+v, want floor of 1 cluster", dec)
	}
}

func TestAdaptiveSemClamp(t *testing.T) {
	a := ramped(2)
	lim := roomy()
	// Headroom for exactly three clusters of 8 blocks x 8 KB.
	lim.WriteHeadroom = 3 * 8 * 8192
	dec := a.Trigger(2, true, lim)
	if dec.Clusters != 3 || !dec.ClampedSem {
		t.Fatalf("sem clamp: %+v, want 3 clusters with ClampedSem", dec)
	}
	// -1 means no limit mounted: no clamp.
	lim.WriteHeadroom = -1
	dec = a.Trigger(2, true, lim)
	if dec.Clusters != 8 || dec.ClampedSem {
		t.Fatalf("no write limit: %+v, want unclamped 8", dec)
	}
}

// TestAdaptiveForget drops per-file state without touching other files.
func TestAdaptiveForget(t *testing.T) {
	a := ramped(5)
	ramped(6) // unrelated instance; a's ino 6 stays cold
	for i := 0; i < 8; i++ {
		a.Trigger(6, true, roomy())
	}
	a.Forget(5)
	if c := a.Confidence(5); c != 0 {
		t.Fatalf("confidence %d after Forget, want 0", c)
	}
	if c := a.Confidence(6); c == 0 {
		t.Fatal("Forget(5) dropped ino 6's state")
	}
	if dec := a.Trigger(5, true, roomy()); dec.Clusters != 0 {
		t.Fatalf("forgotten file's first trigger granted %d clusters, want arm", dec.Clusters)
	}
}

// TestAdaptiveDeterministic replays the same mixed call sequence on two
// instances and requires identical decisions — the policy half of the
// byte-identical replay contract.
func TestAdaptiveDeterministic(t *testing.T) {
	run := func() []Decision {
		a := NewAdaptive(AdaptiveConfig{})
		var out []Decision
		lim := roomy()
		lim.FreePages = 100
		for i := 0; i < 32; i++ {
			seq := i%5 != 0
			if i%11 == 0 {
				a.Random(2)
			}
			out = append(out, a.Trigger(2, seq, lim))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
