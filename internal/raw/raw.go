// Package raw is the "act of desperation" baseline: direct access to
// the disk through the driver with no file system at all — "no file
// abstraction, no read ahead, no caching, in short, none of the features
// that are expected of a file system" — just the permission-check-level
// CPU cost and the user's own blocking.
package raw

import (
	"errors"

	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
)

// Device is an open raw disk.
type Device struct {
	Drv *driver.Driver
	CPU *cpu.Model // may be nil

	// SyscallInstr is charged per call: the syscall plus "a few
	// permission checks".
	SyscallInstr int64
	// CopyPerByte is the kernel<->user copy cost (raw I/O still
	// copies unless the driver maps user pages; we model the copy).
	CopyPerByte int64
}

// Open returns a raw device over the driver.
func Open(drv *driver.Driver, cpuModel *cpu.Model) *Device {
	return &Device{Drv: drv, CPU: cpuModel, SyscallInstr: 2500, CopyPerByte: 3}
}

func (d *Device) xfer(p *sim.Proc, off int64, buf []byte, write bool) (int, error) {
	if off%disk.SectorSize != 0 || len(buf)%disk.SectorSize != 0 {
		return 0, errors.New("raw: unaligned transfer")
	}
	if d.CPU != nil {
		d.CPU.Use(p, cpu.Syscall, d.SyscallInstr)
	}
	total := 0
	for len(buf) > 0 {
		n := len(buf)
		if mp := d.Drv.MaxPhys(); n > mp {
			n = mp
		}
		if d.CPU != nil {
			d.CPU.Use(p, cpu.Copy, d.CopyPerByte*int64(n))
		}
		done := false
		var q sim.WaitQ
		d.Drv.Strategy(p, &driver.Buf{
			Blkno: off / disk.SectorSize,
			Data:  buf[:n],
			Write: write,
			Iodone: func(*driver.Buf) {
				done = true
				q.WakeAll()
			},
		})
		for !done {
			p.Block(&q)
		}
		off += int64(n)
		buf = buf[n:]
		total += n
	}
	return total, nil
}

// ReadAt reads sector-aligned data synchronously.
func (d *Device) ReadAt(p *sim.Proc, off int64, buf []byte) (int, error) {
	return d.xfer(p, off, buf, false)
}

// WriteAt writes sector-aligned data synchronously.
func (d *Device) WriteAt(p *sim.Proc, off int64, buf []byte) (int, error) {
	return d.xfer(p, off, buf, true)
}
