package raw

import (
	"bytes"
	"testing"

	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
)

func TestRawRoundTrip(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := disk.New(s, "d0", disk.DefaultParams())
	dev := Open(driver.New(s, d, cpu.New(s, 12), driver.DefaultConfig()), cpu.New(s, 12))
	data := make([]byte, 32<<10)
	for i := range data {
		data[i] = byte(i % 97)
	}
	got := make([]byte, len(data))
	s.Spawn("io", func(p *sim.Proc) {
		if _, err := dev.WriteAt(p, 1<<20, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if _, err := dev.ReadAt(p, 1<<20, got); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("raw round trip mismatch")
	}
}

func TestRawSplitsAtMaxPhys(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := disk.New(s, "d0", disk.DefaultParams())
	dev := Open(driver.New(s, d, nil, driver.DefaultConfig()), nil)
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, driver.DefaultMaxPhys*2+512)
		if _, err := dev.WriteAt(p, 0, buf); err != nil {
			t.Errorf("write: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Writes != 3 {
		t.Fatalf("disk writes = %d, want 3 (split at maxphys)", d.Stats.Writes)
	}
}

func TestRawRejectsUnaligned(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	d := disk.New(s, "d0", disk.DefaultParams())
	dev := Open(driver.New(s, d, nil, driver.DefaultConfig()), nil)
	s.Spawn("io", func(p *sim.Proc) {
		if _, err := dev.ReadAt(p, 100, make([]byte, 512)); err == nil {
			t.Error("unaligned offset accepted")
		}
		if _, err := dev.ReadAt(p, 512, make([]byte, 100)); err == nil {
			t.Error("unaligned length accepted")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
