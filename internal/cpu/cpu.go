// Package cpu models a single processor with an instruction-cost
// accounting scheme. The paper's efficiency claims are CPU claims
// ("about half of a 12MIPS CPU was used to get half of the disk
// bandwidth", "the new UFS is approximately 25% more efficient in terms
// of CPU cycles"), so every traversal of the simulated kernel charges
// instructions here, and the benchmarks report the accumulated system
// time exactly as Figure 12 does.
package cpu

import (
	"fmt"
	"sort"
	"strings"

	"ufsclust/internal/detsort"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// Category labels where CPU time is spent, mirroring the subsystems the
// paper discusses.
type Category string

// Accounting categories.
const (
	Syscall    Category = "syscall"    // read/write entry and uio setup
	Copy       Category = "copy"       // kernel<->user data copying
	MapUnmap   Category = "map"        // kernel address space map/unmap per block
	Fault      Category = "fault"      // page fault handling
	GetPage    Category = "getpage"    // ufs_getpage body
	PutPage    Category = "putpage"    // ufs_putpage body
	Bmap       Category = "bmap"       // logical->physical translation
	Alloc      Category = "alloc"      // block allocation
	PageCache  Category = "pagecache"  // page lookup/insert/free
	Driver     Category = "driver"     // strategy routine + disksort
	Interrupt  Category = "interrupt"  // I/O completion handling
	PageDaemon Category = "pagedaemon" // two-handed clock scanning
	Misc       Category = "misc"
)

// Bucket accumulates charges for one category.
type Bucket struct {
	Instr int64
	Time  sim.Time
	Count int64
}

// Model is a single simulated CPU. Process-context charges serialize on
// the processor; interrupt-context charges are accounted but, as an
// approximation, do not preempt the running process.
type Model struct {
	MIPS float64
	Sim  *sim.Sim

	res     *sim.Resource
	buckets map[Category]*Bucket
	intr    sim.Time // interrupt time (accounted, not serialized)
}

// New returns a model rated at mips million instructions per second.
func New(s *sim.Sim, mips float64) *Model {
	if mips <= 0 {
		panic("cpu: non-positive MIPS") // simlint:invariant -- harness configuration assertion at construction
	}
	return &Model{
		MIPS:    mips,
		Sim:     s,
		res:     sim.NewResource(s, "cpu"),
		buckets: make(map[Category]*Bucket),
	}
}

// InstrTime converts an instruction count to execution time.
func (m *Model) InstrTime(instr int64) sim.Time {
	return sim.Time(float64(instr) / m.MIPS * 1e3) // instr / (MIPS*1e6) s → ns
}

func (m *Model) bucket(c Category) *Bucket {
	b := m.buckets[c]
	if b == nil {
		b = &Bucket{}
		m.buckets[c] = b
	}
	return b
}

// Use charges instr instructions to category c in process context: the
// calling process acquires the CPU for the computed duration.
func (m *Model) Use(p *sim.Proc, c Category, instr int64) {
	d := m.InstrTime(instr)
	m.res.Use(p, d)
	b := m.bucket(c)
	b.Instr += instr
	b.Time += d
	b.Count++
}

// ChargeInterrupt accounts instr instructions of interrupt-context work
// (I/O completion). Interrupt time is added to the system total but does
// not serialize with process execution — an approximation that keeps
// completion callbacks non-blocking.
func (m *Model) ChargeInterrupt(c Category, instr int64) {
	d := m.InstrTime(instr)
	b := m.bucket(c)
	b.Instr += instr
	b.Time += d
	b.Count++
	m.intr += d
}

// SystemTime returns total charged CPU time (process + interrupt).
func (m *Model) SystemTime() sim.Time {
	var t sim.Time
	for _, c := range detsort.Keys(m.buckets) {
		t += m.buckets[c].Time
	}
	return t
}

// AttachTelemetry registers the CPU totals plus a dynamic source for
// the per-category breakdown. Categories are created on first use (and
// workloads invent their own, e.g. "musbus-cmd"), so they register as
// a CounterSource read at snapshot time rather than as fixed metrics.
// The buckets map is re-read through the method on every snapshot —
// Reset replaces it wholesale, so the source must not capture it.
func (m *Model) AttachTelemetry(tel *telemetry.Telemetry) {
	r := tel.Reg
	r.Counter("cpu.system_ns", func() int64 { return int64(m.SystemTime()) })
	r.Counter("cpu.intr_ns", func() int64 { return int64(m.intr) })
	r.CounterSource(func(add func(name string, v int64)) {
		for _, c := range detsort.Keys(m.buckets) {
			b := m.buckets[c]
			add("cpu."+string(c)+".ns", int64(b.Time))
			add("cpu."+string(c)+".instr", b.Instr)
			add("cpu."+string(c)+".calls", b.Count)
		}
	})
}

// Utilization returns charged CPU time over elapsed virtual time.
func (m *Model) Utilization() float64 {
	if m.Sim.Now() == 0 {
		return 0
	}
	return float64(m.SystemTime()) / float64(m.Sim.Now())
}

// Buckets returns a copy of the per-category accounting.
func (m *Model) Buckets() map[Category]Bucket {
	out := make(map[Category]Bucket, len(m.buckets))
	// simlint:ignore maporder -- copying into a map is order-insensitive.
	for c, b := range m.buckets {
		out[c] = *b
	}
	return out
}

// Report formats a per-category breakdown, largest first.
func (m *Model) Report() string {
	type row struct {
		c Category
		b Bucket
	}
	rows := make([]row, 0, len(m.buckets))
	for c, b := range m.buckets {
		rows = append(rows, row{c, *b})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].b.Time != rows[j].b.Time {
			return rows[i].b.Time > rows[j].b.Time
		}
		return rows[i].c < rows[j].c // tie-break so reports are byte-stable
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %12s %10s %8s\n", "category", "instructions", "cpu", "calls")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %12d %10v %8d\n", r.c, r.b.Instr, r.b.Time, r.b.Count)
	}
	fmt.Fprintf(&sb, "%-12s %12s %10v\n", "total", "", m.SystemTime())
	return sb.String()
}

// Reset clears all accounting (the CPU resource's utilization history is
// retained by the sim).
func (m *Model) Reset() {
	m.buckets = make(map[Category]*Bucket)
	m.intr = 0
}
