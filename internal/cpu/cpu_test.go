package cpu

import (
	"strings"
	"testing"

	"ufsclust/internal/sim"
)

func TestInstrTime(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	m := New(s, 12) // 12 MIPS
	// 12 million instructions = 1 second.
	if got := m.InstrTime(12_000_000); got != sim.Second {
		t.Fatalf("InstrTime(12M) = %v, want 1s", got)
	}
	if got := m.InstrTime(12_000); got != sim.Millisecond {
		t.Fatalf("InstrTime(12k) = %v, want 1ms", got)
	}
}

func TestUseAdvancesClockAndAccounts(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	m := New(s, 12)
	s.Spawn("p", func(p *sim.Proc) {
		m.Use(p, Copy, 24_000)
		m.Use(p, Copy, 12_000)
		m.Use(p, Bmap, 12_000)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 4*sim.Millisecond {
		t.Fatalf("clock = %v, want 4ms", s.Now())
	}
	bk := m.Buckets()
	if bk[Copy].Count != 2 || bk[Copy].Instr != 36_000 {
		t.Fatalf("copy bucket %+v", bk[Copy])
	}
	if m.SystemTime() != 4*sim.Millisecond {
		t.Fatalf("system time = %v", m.SystemTime())
	}
}

func TestSingleCPUSerializes(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	m := New(s, 12)
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		s.Spawn("p", func(p *sim.Proc) {
			m.Use(p, Misc, 12_000) // 1ms
			ends = append(ends, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != sim.Millisecond || ends[1] != 2*sim.Millisecond {
		t.Fatalf("ends = %v; CPU did not serialize", ends)
	}
}

func TestInterruptChargeDoesNotBlock(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	m := New(s, 12)
	s.Spawn("p", func(p *sim.Proc) {
		m.ChargeInterrupt(Interrupt, 12_000)
		if p.Now() != 0 {
			t.Error("interrupt charge advanced the caller's clock")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if m.SystemTime() != sim.Millisecond {
		t.Fatalf("system time = %v, want 1ms", m.SystemTime())
	}
}

func TestUtilization(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	m := New(s, 12)
	s.Spawn("p", func(p *sim.Proc) {
		m.Use(p, Misc, 12_000) // 1ms busy
		p.Sleep(3 * sim.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if u := m.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestReportAndReset(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	m := New(s, 12)
	s.Spawn("p", func(p *sim.Proc) {
		m.Use(p, GetPage, 5000)
		m.Use(p, Copy, 50000)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if !strings.Contains(rep, "copy") || !strings.Contains(rep, "getpage") {
		t.Fatalf("report missing categories:\n%s", rep)
	}
	// Largest first.
	if strings.Index(rep, "copy") > strings.Index(rep, "getpage") {
		t.Fatalf("report not sorted by time:\n%s", rep)
	}
	m.Reset()
	if m.SystemTime() != 0 {
		t.Fatal("reset did not clear accounting")
	}
}
