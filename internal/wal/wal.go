// Package wal is the write-ahead metadata journal: a fixed on-disk log
// region (reserved past the last cylinder group by ufs.Mkfs), filled
// with checksummed, transaction-framed copies of the metadata blocks
// each operation dirtied. The file system stops writing metadata in
// place; instead every operation's dirty blocks are staged and made
// durable by one sequential log write (group commit), and the blocks
// only go home — again sequentially batched — when a checkpoint resets
// the log. Crash recovery is then Recover: replay the committed prefix
// of the log over the image, discard the torn tail by checksum, and
// done — O(log size) sectors instead of the O(disk) sweep ufs.Repair
// performs.
//
// The package is file-system-agnostic: records are (sector, block)
// pairs. internal/ufs drives it through the ufs.MetaJournal interface
// and installs the Flush callback that stages dirty metadata at commit
// time, so wal never imports ufs.
//
// On-disk format (all sectors 512 bytes, little-endian):
//
//	sector 0     log superblock: magic, epoch, checksum. One sector,
//	             so the power-cut model applies it atomically.
//	sector 1...  transactions, back to back. Each is:
//	               descriptor sector(s): magic, epoch, index, nblocks,
//	                 first, then up to 60 home-sector addresses
//	               data: nblocks × (block size) raw block images
//	               commit sector: magic, epoch, index, nblocks, and a
//	                 checksum over the descriptor and data bytes
//
// A transaction replays only if its descriptor chain parses, its epoch
// and running index match, and the commit checksum verifies — so any
// torn combination of its sectors discards the whole transaction, and
// scanning stops there (later transactions may depend on earlier ones).
// Checkpoint bumps the epoch in the log superblock, which atomically
// invalidates every record still sitting in the region.
package wal

import (
	"encoding/binary"
	"fmt"

	"ufsclust/internal/detsort"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// Record magics. Distinct values per record role so a data block that
// happens to land where a descriptor is expected cannot parse as one.
const (
	logMagic    uint64 = 0x5546_5357_414c_7631 // "UFSWALv1"
	descMagic   uint64 = 0x5741_4c44_4553_4331 // "WALDESC1"
	commitMagic uint64 = 0x5741_4c43_4d54_5231 // "WALCMTR1"
)

const (
	// descHdrBytes is the descriptor sector header: magic, epoch,
	// index, nblocks, first.
	descHdrBytes = 8 + 8 + 8 + 4 + 4
	// addrsPerDesc is how many 8-byte home-sector addresses follow the
	// header in one descriptor sector.
	addrsPerDesc = (disk.SectorSize - descHdrBytes) / 8
)

// DefaultLogBlocks sizes the log region when Config.LogBlocks is zero:
// 64 file-system blocks = 512 KB, roomy against the handful of blocks
// a metadata transaction carries.
const DefaultLogBlocks = 64

// Config tunes the journal.
type Config struct {
	// LogBlocks is the on-disk log region size in file-system blocks,
	// reserved by Mkfs. Zero picks DefaultLogBlocks.
	LogBlocks int
	// Clustered issues each commit as maxphys-sized contiguous
	// transfers (the paper's write-clustering applied to the log
	// itself) instead of one transfer per record. Both layouts are
	// byte-identical on disk; only the request stream differs.
	Clustered bool
}

// Blocks returns the configured log size with the default applied.
func (c Config) Blocks() int {
	if c.LogBlocks <= 0 {
		return DefaultLogBlocks
	}
	return c.LogBlocks
}

// checksum is FNV-1a 64 over the given bytes — content protection for
// torn-write detection, not cryptographic.
func checksum(parts ...[]byte) uint64 {
	sum := uint64(14695981039346656037)
	for _, p := range parts {
		for _, b := range p {
			sum ^= uint64(b)
			sum *= 1099511628211
		}
	}
	return sum
}

// stagedBlock is one metadata block captured for the open transaction.
type stagedBlock struct {
	sector int64  // home address
	data   []byte // private copy, block-sized
}

// Log is the journal runtime attached to a mounted file system.
type Log struct {
	Sim *sim.Sim
	Drv *driver.Driver

	base       int64 // first sector of the log region
	sectors    int64 // region length in sectors
	blockBytes int   // file-system block size
	clustered  bool

	// Flush is installed by the file system: called at commit time in
	// process context, it stages (via Stage) every dirty metadata
	// block the commit must make durable.
	Flush func(p *sim.Proc) error

	epoch uint64
	head  int64  // next free sector offset within the region
	index uint64 // next transaction index within the epoch

	// Transaction framing. frames tracks each process's open-frame
	// depth (nested operations — Remove calling Truncate — ride their
	// own outer frame and must not wait on it); open counts processes
	// with at least one frame open. The End that drops open to zero
	// commits everything staged; a top-level End that leaves other
	// frames open blocks until the commit that covers it — group
	// commit across processes.
	frames       map[*sim.Proc]int
	open         int
	busy         bool // a commit or checkpoint is in progress
	openSeq      uint64
	committedSeq uint64
	commitErr    error
	commitQ      sim.WaitQ
	busyQ        sim.WaitQ

	staged   []stagedBlock
	stagedAt map[int64]int // home sector → index into staged
	// ckpt holds the committed image of every block whose home copy is
	// stale: written at checkpoint, consulted by Peek so cache misses
	// never read a stale home copy.
	ckpt map[int64][]byte

	err error // sticky first journal I/O error

	bus *telemetry.Bus

	// Stats
	Commits, CommitBlocks, CommitSectors int64
	EmptyCommits, OverflowCommits        int64
	Checkpoints, CheckpointBlocks        int64
	PeekFills                            int64
}

// New attaches a log runtime to the formatted (or just recovered) log
// region at base. It validates the log superblock and starts a fresh
// transaction stream at its epoch; both Format and Recover leave the
// region empty, so head starts at sector 1.
func New(s *sim.Sim, drv *driver.Driver, base, sectors int64, blockBytes int, cfg Config) (*Log, error) {
	if sectors < 4+int64(blockBytes/disk.SectorSize) {
		return nil, fmt.Errorf("wal: log region too small (%d sectors)", sectors)
	}
	buf := make([]byte, disk.SectorSize)
	drv.Disk.ReadImage(base, buf)
	if binary.LittleEndian.Uint64(buf[0:]) != logMagic {
		return nil, fmt.Errorf("wal: bad log superblock magic %#x", binary.LittleEndian.Uint64(buf[0:]))
	}
	if binary.LittleEndian.Uint64(buf[16:]) != checksum(buf[:16]) {
		return nil, fmt.Errorf("wal: log superblock checksum mismatch")
	}
	return &Log{
		Sim:        s,
		Drv:        drv,
		base:       base,
		sectors:    sectors,
		blockBytes: blockBytes,
		clustered:  cfg.Clustered,
		epoch:      binary.LittleEndian.Uint64(buf[8:]),
		head:       1,
		frames:     make(map[*sim.Proc]int),
		stagedAt:   make(map[int64]int),
		ckpt:       make(map[int64][]byte),
	}, nil
}

// Err returns the journal's sticky first I/O error, if any.
func (l *Log) Err() error { return l.err }

func (l *Log) recordErr(err error) {
	if l.err == nil && err != nil {
		l.err = err
	}
}

// Begin opens (or nests into) a transaction frame for p. A process
// opening its first frame waits out any commit or checkpoint in
// progress, so a new operation cannot mutate metadata that is being
// staged; nested Begins never wait (a commit cannot be running while
// this process already holds a frame).
func (l *Log) Begin(p *sim.Proc) {
	if l.frames[p] == 0 {
		for l.busy {
			p.Block(&l.busyQ)
		}
		if l.open == 0 {
			l.openSeq++
		}
		l.open++
	}
	l.frames[p]++
}

// End closes p's innermost frame. A nested End returns immediately —
// durability comes from the outer frame's commit. Closing the last
// open frame of all stages all dirty metadata (the Flush callback)
// and commits it with one log write; closing p's top-level frame
// while other processes still hold frames blocks until the commit
// that covers this operation lands — group commit. Either way a
// top-level End returns with its operation durable.
func (l *Log) End(p *sim.Proc) error {
	l.frames[p]--
	if l.frames[p] > 0 {
		return nil
	}
	delete(l.frames, p)
	l.open--
	seq := l.openSeq
	if l.open > 0 {
		for l.committedSeq < seq {
			p.Block(&l.commitQ)
		}
		return l.commitErr
	}
	l.busy = true
	err := l.commit(p)
	l.commitErr = err
	l.committedSeq = seq
	l.busy = false
	l.commitQ.WakeAll()
	l.busyQ.WakeAll()
	return err
}

// Stage records one block image for the open commit. The data is
// copied; staging the same home sector again within a transaction
// overwrites the earlier copy.
func (l *Log) Stage(sector int64, data []byte) {
	if i, ok := l.stagedAt[sector]; ok {
		copy(l.staged[i].data, data)
		return
	}
	l.stagedAt[sector] = len(l.staged)
	l.staged = append(l.staged, stagedBlock{sector: sector, data: append([]byte(nil), data...)})
}

// Peek returns the journal's committed (or currently staged) image of
// the block at the given home sector, or nil if the home copy on disk
// is current. The buffer cache consults it on every miss: a block that
// was committed but not yet checkpointed has a stale home copy.
func (l *Log) Peek(sector int64) []byte {
	if i, ok := l.stagedAt[sector]; ok {
		l.PeekFills++
		return l.staged[i].data
	}
	if data, ok := l.ckpt[sector]; ok {
		l.PeekFills++
		return data
	}
	return nil
}

// txnSectors returns the on-log footprint of an n-block transaction.
func (l *Log) txnSectors(n int) int64 {
	nd := (n + addrsPerDesc - 1) / addrsPerDesc
	return int64(nd) + int64(n)*int64(l.blockBytes/disk.SectorSize) + 1
}

// commit stages dirty metadata via Flush and writes the transaction.
// Caller holds busy.
func (l *Log) commit(p *sim.Proc) error {
	var flushErr error
	if l.Flush != nil {
		flushErr = l.Flush(p)
		l.recordErr(flushErr)
	}
	if len(l.staged) == 0 {
		l.EmptyCommits++
		return flushErr
	}
	need := l.txnSectors(len(l.staged))
	if l.head+need > l.sectors {
		// Log full: write the committed blocks home and reset.
		if err := l.checkpoint(p); err != nil {
			return err
		}
	}
	if l.head+need > l.sectors {
		// The transaction alone outgrows the log. Degrade to writing
		// its blocks home directly (a checkpoint of the transaction):
		// consistent if no crash intervenes, torn-window exposed if
		// one does — the log was provisioned too small.
		l.OverflowCommits++
		l.moveStagedToCkpt()
		err := l.checkpoint(p)
		if flushErr == nil {
			flushErr = err
		}
		return flushErr
	}
	img := l.buildTxn()
	err := l.writeLog(p, l.base+l.head, img)
	if l.bus.Active() {
		l.bus.Emit(telemetry.Event{
			T: l.Sim.Now(), Kind: telemetry.EvLogCommit, Write: true,
			Sector: l.base + l.head, Bytes: int64(len(img)), Blocks: int64(len(l.staged)),
		})
	}
	l.Commits++
	l.CommitBlocks += int64(len(l.staged))
	l.CommitSectors += int64(len(img) / disk.SectorSize)
	l.head += int64(len(img) / disk.SectorSize)
	l.index++
	l.moveStagedToCkpt()
	if flushErr == nil {
		flushErr = err
	}
	return flushErr
}

// moveStagedToCkpt promotes the staged copies to committed ones.
func (l *Log) moveStagedToCkpt() {
	for _, sb := range l.staged {
		l.ckpt[sb.sector] = sb.data
	}
	l.staged = l.staged[:0]
	clear(l.stagedAt)
}

// buildTxn renders the staged blocks as one contiguous transaction
// image: descriptor sector(s), data, commit sector.
func (l *Log) buildTxn() []byte {
	n := len(l.staged)
	nd := (n + addrsPerDesc - 1) / addrsPerDesc
	img := make([]byte, (nd+1)*disk.SectorSize+n*l.blockBytes)
	for d := 0; d < nd; d++ {
		s := img[d*disk.SectorSize:]
		binary.LittleEndian.PutUint64(s[0:], descMagic)
		binary.LittleEndian.PutUint64(s[8:], l.epoch)
		binary.LittleEndian.PutUint64(s[16:], l.index)
		binary.LittleEndian.PutUint32(s[24:], uint32(n))
		binary.LittleEndian.PutUint32(s[28:], uint32(d*addrsPerDesc))
		for i := d * addrsPerDesc; i < n && i < (d+1)*addrsPerDesc; i++ {
			binary.LittleEndian.PutUint64(s[descHdrBytes+(i-d*addrsPerDesc)*8:], uint64(l.staged[i].sector))
		}
	}
	data := img[nd*disk.SectorSize:]
	for i, sb := range l.staged {
		copy(data[i*l.blockBytes:], sb.data)
	}
	c := img[len(img)-disk.SectorSize:]
	binary.LittleEndian.PutUint64(c[0:], commitMagic)
	binary.LittleEndian.PutUint64(c[8:], l.epoch)
	binary.LittleEndian.PutUint64(c[16:], l.index)
	binary.LittleEndian.PutUint32(c[24:], uint32(n))
	binary.LittleEndian.PutUint64(c[32:], checksum(img[:len(img)-disk.SectorSize]))
	return img
}

// writeLog issues the transaction image at the given absolute sector.
// Clustered: maxphys-sized contiguous transfers. Unclustered: one
// transfer per record (each descriptor sector, each block, the commit
// sector), modeling a journal that never learned to cluster. Either
// way all transfers are issued together and waited for once — the
// commit checksum, not write ordering, provides atomicity.
func (l *Log) writeLog(p *sim.Proc, sector int64, img []byte) error {
	var spans [][2]int // byte ranges of img
	if l.clustered {
		maxphys := l.Drv.MaxPhys()
		for off := 0; off < len(img); off += maxphys {
			end := off + maxphys
			if end > len(img) {
				end = len(img)
			}
			spans = append(spans, [2]int{off, end})
		}
	} else {
		n := len(l.staged)
		nd := (n + addrsPerDesc - 1) / addrsPerDesc
		off := 0
		for d := 0; d < nd; d++ {
			spans = append(spans, [2]int{off, off + disk.SectorSize})
			off += disk.SectorSize
		}
		for i := 0; i < n; i++ {
			spans = append(spans, [2]int{off, off + l.blockBytes})
			off += l.blockBytes
		}
		spans = append(spans, [2]int{off, off + disk.SectorSize})
	}
	outstanding := len(spans)
	var firstErr error
	var q sim.WaitQ
	for _, sp := range spans {
		l.Drv.Strategy(p, &driver.Buf{
			Blkno: sector + int64(sp[0]/disk.SectorSize),
			Data:  img[sp[0]:sp[1]],
			Write: true,
			Iodone: func(db *driver.Buf) {
				if firstErr == nil {
					firstErr = db.Err
				}
				outstanding--
				if outstanding == 0 {
					q.WakeAll()
				}
			},
		})
	}
	for outstanding > 0 {
		p.Block(&q)
	}
	l.recordErr(firstErr)
	return firstErr
}

// Checkpoint writes every committed block home and resets the log. The
// file system calls it on sync/unmount; commit calls the internal form
// when the log fills.
func (l *Log) Checkpoint(p *sim.Proc) error {
	for l.busy {
		p.Block(&l.busyQ)
	}
	l.busy = true
	err := l.checkpoint(p)
	l.busy = false
	l.busyQ.WakeAll()
	return err
}

// checkpoint does the work: in-place writes of the committed copies
// (never live cache buffers — a concurrent mutation must not leak into
// the checkpoint), then a log superblock with the next epoch, which
// atomically retires every transaction still in the region. Caller
// holds busy. A crash anywhere inside is safe: the old-epoch log
// replays idempotently over a partial checkpoint.
func (l *Log) checkpoint(p *sim.Proc) error {
	if len(l.ckpt) == 0 && l.head == 1 {
		return nil
	}
	sectors := detsort.Keys(l.ckpt)
	outstanding := len(sectors)
	var firstErr error
	var q sim.WaitQ
	for _, sector := range sectors {
		l.Drv.Strategy(p, &driver.Buf{
			Blkno: sector,
			Data:  l.ckpt[sector],
			Write: true,
			Iodone: func(db *driver.Buf) {
				if firstErr == nil {
					firstErr = db.Err
				}
				outstanding--
				if outstanding == 0 {
					q.WakeAll()
				}
			},
		})
	}
	for outstanding > 0 {
		p.Block(&q)
	}
	if firstErr != nil {
		// The home copies are not all durable; keep the log as is so
		// recovery can still replay them.
		l.recordErr(firstErr)
		return firstErr
	}
	done := false
	l.Drv.Strategy(p, &driver.Buf{
		Blkno: l.base,
		Data:  logSuperblock(l.epoch + 1),
		Write: true,
		Iodone: func(db *driver.Buf) {
			firstErr = db.Err
			done = true
			q.WakeAll()
		},
	})
	for !done {
		p.Block(&q)
	}
	l.recordErr(firstErr)
	if firstErr != nil {
		return firstErr
	}
	l.epoch++
	l.head = 1
	l.index = 0
	n := int64(len(l.ckpt))
	clear(l.ckpt)
	l.Checkpoints++
	l.CheckpointBlocks += n
	if l.bus.Active() {
		l.bus.Emit(telemetry.Event{
			T: l.Sim.Now(), Kind: telemetry.EvLogCheckpoint, Write: true,
			Blocks: n, Depth: int64(l.epoch),
		})
	}
	return nil
}

// CheckpointImage is the offline checkpoint: spill every committed and
// staged copy straight to the image with no simulated time, then reset
// the log. The file system's SyncImage calls it before spilling its
// own caches, so offline fsck of a live journaled machine sees a
// current image.
func (l *Log) CheckpointImage() {
	for _, sector := range detsort.Keys(l.ckpt) {
		l.Drv.Disk.WriteImage(sector, l.ckpt[sector])
		delete(l.ckpt, sector)
	}
	for _, sb := range l.staged {
		l.Drv.Disk.WriteImage(sb.sector, sb.data)
	}
	l.staged = l.staged[:0]
	clear(l.stagedAt)
	l.epoch++
	l.head = 1
	l.index = 0
	l.Drv.Disk.WriteImage(l.base, logSuperblock(l.epoch))
}

// logSuperblock renders a log superblock sector for the given epoch.
func logSuperblock(epoch uint64) []byte {
	buf := make([]byte, disk.SectorSize)
	binary.LittleEndian.PutUint64(buf[0:], logMagic)
	binary.LittleEndian.PutUint64(buf[8:], epoch)
	binary.LittleEndian.PutUint64(buf[16:], checksum(buf[:16]))
	return buf
}

// Format initializes the log region: an empty epoch-1 log. Runs
// offline (mkfs time).
func Format(d disk.Device, base int64) {
	d.WriteImage(base, logSuperblock(1))
}

// AttachTelemetry registers the journal's counters and hooks the event
// bus. Only journaled machines carry a Log, so default machines'
// metric manifests are untouched.
func (l *Log) AttachTelemetry(tel *telemetry.Telemetry) {
	r := tel.Reg
	r.Counter("wal.commits", func() int64 { return l.Commits })
	r.Counter("wal.commit_blocks", func() int64 { return l.CommitBlocks })
	r.Counter("wal.commit_sectors", func() int64 { return l.CommitSectors })
	r.Counter("wal.empty_commits", func() int64 { return l.EmptyCommits })
	r.Counter("wal.overflow_commits", func() int64 { return l.OverflowCommits })
	r.Counter("wal.checkpoints", func() int64 { return l.Checkpoints })
	r.Counter("wal.checkpoint_blocks", func() int64 { return l.CheckpointBlocks })
	r.Counter("wal.peek_fills", func() int64 { return l.PeekFills })
	r.Gauge("wal.epoch", func() int64 { return int64(l.epoch) })
	r.Gauge("wal.head_sectors", func() int64 { return l.head })
	r.Gauge("wal.pending_blocks", func() int64 { return int64(len(l.ckpt)) })
	l.bus = tel.Bus
}
