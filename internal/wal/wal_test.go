package wal

import (
	"bytes"
	"testing"

	"ufsclust/internal/detsort"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
)

const (
	testBase  = 4096 // log region start sector; home addresses stay below
	testBlock = 8192
)

// blockSec is the per-block sector footprint at the test block size.
const blockSec = testBlock / disk.SectorSize

// walRig is a raw log on a bare disk — the journal is file-system
// agnostic, so the tests drive Stage/Begin/End directly.
type walRig struct {
	s  *sim.Sim
	d  *disk.Disk
	dr *driver.Driver
	l  *Log
}

func newWalRig(t *testing.T, logBlocks int, cfg Config) *walRig {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	p := disk.DefaultParams()
	p.Geom = disk.UniformGeometry(64, 8, 64, 3600) // 16 MB
	d := disk.New(s, "d0", p)
	dr := driver.New(s, d, nil, driver.DefaultConfig())
	Format(d, testBase)
	l, err := New(s, dr, testBase, int64(logBlocks)*blockSec, testBlock, cfg)
	if err != nil {
		t.Fatalf("wal.New: %v", err)
	}
	return &walRig{s: s, d: d, dr: dr, l: l}
}

func (r *walRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.s.Spawn("test", fn)
	if err := r.s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// commit stages the given (sector, fill) pairs in one transaction, in
// sector order so the log layout is identical run to run.
func (r *walRig) commit(t *testing.T, blocks map[int64]byte) {
	t.Helper()
	r.run(t, func(p *sim.Proc) {
		r.l.Begin(p)
		for _, sector := range detsort.Keys(blocks) {
			r.l.Stage(sector, mkBlock(blocks[sector]))
		}
		if err := r.l.End(p); err != nil {
			t.Errorf("End: %v", err)
		}
	})
}

func mkBlock(fill byte) []byte {
	b := make([]byte, testBlock)
	for i := range b {
		b[i] = fill ^ byte(i)
	}
	return b
}

func (r *walRig) homeBlock(sector int64) []byte {
	buf := make([]byte, testBlock)
	r.d.ReadImage(sector, buf)
	return buf
}

func TestFormatNewRoundTrip(t *testing.T) {
	r := newWalRig(t, 64, Config{})
	if r.l.epoch != 1 {
		t.Fatalf("fresh log epoch = %d, want 1", r.l.epoch)
	}
	// An unformatted region is refused.
	if _, err := New(r.s, r.dr, testBase+8192, 64*blockSec, testBlock, Config{}); err == nil {
		t.Fatal("New accepted an unformatted region")
	}
	// So is a region too small to hold one transaction.
	if _, err := New(r.s, r.dr, testBase, 4, testBlock, Config{}); err == nil {
		t.Fatal("New accepted a too-small region")
	}
}

func TestCommitIsWriteAhead(t *testing.T) {
	r := newWalRig(t, 64, Config{})
	r.commit(t, map[int64]byte{100: 0xA1, 100 + blockSec: 0xA2})
	if r.l.Commits != 1 || r.l.CommitBlocks != 2 {
		t.Fatalf("commits=%d blocks=%d, want 1 and 2", r.l.Commits, r.l.CommitBlocks)
	}
	// Write-ahead: the home copies are untouched until checkpoint...
	if bytes.Equal(r.homeBlock(100), mkBlock(0xA1)) {
		t.Fatal("commit wrote the home copy in place")
	}
	// ...but Peek serves the committed image, so readers never see the
	// stale home copy.
	if !bytes.Equal(r.l.Peek(100), mkBlock(0xA1)) {
		t.Fatal("Peek does not serve the committed image")
	}
	// Recovery replays it home.
	rep, err := Recover(r.d, testBase, r.l.sectors, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Txns != 1 || rep.Blocks != 2 || rep.TornTail {
		t.Fatalf("recover: %v", rep)
	}
	if !bytes.Equal(r.homeBlock(100), mkBlock(0xA1)) || !bytes.Equal(r.homeBlock(100+blockSec), mkBlock(0xA2)) {
		t.Fatal("replay did not restore the committed blocks")
	}
	if rep.SectorsRead > rep.LogSectors {
		t.Fatalf("recovery read %d sectors from a %d-sector log", rep.SectorsRead, rep.LogSectors)
	}
	// The replay reset the log: a second recovery finds nothing.
	rep2, err := Recover(r.d, testBase, r.l.sectors, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Txns != 0 || rep2.TornTail {
		t.Fatalf("second recover not empty: %v", rep2)
	}
}

func TestStageDedupsWithinTransaction(t *testing.T) {
	r := newWalRig(t, 64, Config{})
	r.run(t, func(p *sim.Proc) {
		r.l.Begin(p)
		r.l.Stage(100, mkBlock(0x01))
		r.l.Stage(100, mkBlock(0x02)) // second image of the same block wins
		if err := r.l.End(p); err != nil {
			t.Errorf("End: %v", err)
		}
	})
	if r.l.CommitBlocks != 1 {
		t.Fatalf("CommitBlocks = %d, want 1", r.l.CommitBlocks)
	}
	if !bytes.Equal(r.l.Peek(100), mkBlock(0x02)) {
		t.Fatal("dedup kept the older image")
	}
}

func TestEmptyCommit(t *testing.T) {
	r := newWalRig(t, 64, Config{})
	r.run(t, func(p *sim.Proc) {
		r.l.Begin(p)
		if err := r.l.End(p); err != nil {
			t.Errorf("End: %v", err)
		}
	})
	if r.l.Commits != 0 || r.l.EmptyCommits != 1 {
		t.Fatalf("commits=%d empty=%d, want 0 and 1", r.l.Commits, r.l.EmptyCommits)
	}
	if r.l.head != 1 {
		t.Fatal("empty commit consumed log space")
	}
}

func TestNestedFramesCommitOnce(t *testing.T) {
	// Remove calling Truncate opens a nested frame on the same process;
	// only the outermost End commits.
	r := newWalRig(t, 64, Config{})
	r.run(t, func(p *sim.Proc) {
		r.l.Begin(p)
		r.l.Stage(100, mkBlock(0x01))
		r.l.Begin(p) // nested
		r.l.Stage(100+blockSec, mkBlock(0x02))
		if err := r.l.End(p); err != nil { // closes the nested frame: no commit
			t.Errorf("nested End: %v", err)
		}
		if r.l.Commits != 0 {
			t.Error("nested End committed")
		}
		if err := r.l.End(p); err != nil {
			t.Errorf("End: %v", err)
		}
	})
	if r.l.Commits != 1 || r.l.CommitBlocks != 2 {
		t.Fatalf("commits=%d blocks=%d, want 1 and 2", r.l.Commits, r.l.CommitBlocks)
	}
}

func TestGroupCommitAcrossProcesses(t *testing.T) {
	// Two processes with overlapping frames share one commit; the one
	// that closes first blocks until the covering commit lands.
	r := newWalRig(t, 64, Config{})
	var firstDone, secondDone bool
	r.s.Spawn("first", func(p *sim.Proc) {
		r.l.Begin(p)
		r.l.Stage(100, mkBlock(0x01))
		p.Sleep(sim.Millisecond)
		if err := r.l.End(p); err != nil { // second still open: waits for its commit
			t.Errorf("first End: %v", err)
		}
		firstDone = true
		if !secondDone {
			t.Error("first End returned before the covering commit")
		}
	})
	r.s.Spawn("second", func(p *sim.Proc) {
		r.l.Begin(p)
		r.l.Stage(100+blockSec, mkBlock(0x02))
		p.Sleep(5 * sim.Millisecond)
		if err := r.l.End(p); err != nil { // last frame out: commits both
			t.Errorf("second End: %v", err)
		}
		secondDone = true
	})
	if err := r.s.Run(); err != nil {
		t.Fatal(err)
	}
	if !firstDone || !secondDone {
		t.Fatal("a process never finished")
	}
	if r.l.Commits != 1 || r.l.CommitBlocks != 2 {
		t.Fatalf("commits=%d blocks=%d, want one group commit of 2 blocks", r.l.Commits, r.l.CommitBlocks)
	}
}

func TestLogFullTriggersCheckpoint(t *testing.T) {
	// 5 blocks of log = 80 sectors; a 1-block transaction is 18 (one
	// descriptor, 16 data sectors, one commit). Four fit (head 1 → 19 →
	// 37 → 55 → 73); the fifth forces a checkpoint and log reset.
	r := newWalRig(t, 5, Config{})
	for i := 0; i < 6; i++ {
		r.commit(t, map[int64]byte{100 + int64(i)*blockSec: byte(0x10 + i)})
	}
	if r.l.Checkpoints == 0 {
		t.Fatal("log never checkpointed")
	}
	if r.l.epoch < 2 {
		t.Fatalf("epoch = %d after wrap, want bumped", r.l.epoch)
	}
	// Checkpointed blocks are home; everything still in the log replays
	// on top. Either way every committed block must be durable.
	if _, err := Recover(r.d, testBase, r.l.sectors, testBlock); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if !bytes.Equal(r.homeBlock(100+int64(i)*blockSec), mkBlock(byte(0x10+i))) {
			t.Fatalf("block %d lost across checkpoint + replay", i)
		}
	}
}

func TestCheckpointWritesHomeAndResets(t *testing.T) {
	r := newWalRig(t, 64, Config{})
	r.commit(t, map[int64]byte{100: 0xC1})
	r.run(t, func(p *sim.Proc) {
		if err := r.l.Checkpoint(p); err != nil {
			t.Errorf("Checkpoint: %v", err)
		}
	})
	if !bytes.Equal(r.homeBlock(100), mkBlock(0xC1)) {
		t.Fatal("checkpoint did not write the block home")
	}
	if r.l.Peek(100) != nil {
		t.Fatal("Peek still serving after checkpoint: home copy is current")
	}
	if r.l.head != 1 || len(r.l.ckpt) != 0 {
		t.Fatal("checkpoint did not reset the log")
	}
	// The epoch bump retired the old transactions.
	rep, err := Recover(r.d, testBase, r.l.sectors, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Txns != 0 {
		t.Fatalf("retired transactions replayed: %v", rep)
	}
}

func TestOverflowCommitDegradesToDirectWrite(t *testing.T) {
	// A transaction bigger than the whole log cannot be journaled; it
	// degrades to writing the blocks home directly.
	r := newWalRig(t, 2, Config{}) // 32-sector log; a 2-block txn is 34
	r.commit(t, map[int64]byte{100: 0x01, 100 + blockSec: 0x02})
	if r.l.OverflowCommits != 1 {
		t.Fatalf("OverflowCommits = %d, want 1", r.l.OverflowCommits)
	}
	if !bytes.Equal(r.homeBlock(100), mkBlock(0x01)) {
		t.Fatal("overflow commit did not write home")
	}
}

func TestClusteredAndUnclusteredLayoutIdentical(t *testing.T) {
	// Clustered changes the request stream, never the bytes: both modes
	// must leave the identical log region image.
	regions := make([][]byte, 2)
	for i, clustered := range []bool{false, true} {
		r := newWalRig(t, 64, Config{Clustered: clustered})
		r.commit(t, map[int64]byte{100: 0xD1, 100 + blockSec: 0xD2, 100 + 2*blockSec: 0xD3})
		buf := make([]byte, r.l.sectors*disk.SectorSize)
		r.d.ReadImage(testBase, buf)
		regions[i] = buf
	}
	if !bytes.Equal(regions[0], regions[1]) {
		t.Fatal("clustered and unclustered log writes differ on disk")
	}
}

func TestCheckpointImageSpillsEverything(t *testing.T) {
	r := newWalRig(t, 64, Config{})
	r.commit(t, map[int64]byte{100: 0xE1}) // committed, in ckpt
	r.l.Stage(100+blockSec, mkBlock(0xE2)) // staged, uncommitted
	r.l.CheckpointImage()
	if !bytes.Equal(r.homeBlock(100), mkBlock(0xE1)) || !bytes.Equal(r.homeBlock(100+blockSec), mkBlock(0xE2)) {
		t.Fatal("CheckpointImage lost state")
	}
	rep, err := Recover(r.d, testBase, r.l.sectors, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Txns != 0 {
		t.Fatal("CheckpointImage left live transactions behind")
	}
}

// TestTornTailPrefixTruncation is the torn-log-tail property test: for
// EVERY prefix-truncation point of a committed transaction's on-log
// image, recovery replays the whole transaction or none of it —
// verified against a shadow model of the home blocks. This is the
// atomicity guarantee the commit checksum provides: no write ordering
// inside the transaction image matters, because any torn combination
// fails the checksum and discards the whole record.
func TestTornTailPrefixTruncation(t *testing.T) {
	r := newWalRig(t, 64, Config{})
	logSectors := r.l.sectors

	// Shadow model: home sector → content before B, content after B.
	const sA1, sA2 = 100, 100 + blockSec // txn A's blocks
	const sB2, sB3 = 200, 200 + blockSec // txn B's fresh blocks
	blkA1, blkA2 := mkBlock(0xA1), mkBlock(0xA2)
	blkB1, blkB2, blkB3 := mkBlock(0xB1), mkBlock(0xB2), mkBlock(0xB3)

	// Transaction A commits, then the platter is snapshotted: the state
	// a crash strictly before B's log write would leave.
	r.commit(t, map[int64]byte{sA1: 0xA1, sA2: 0xA2})
	headA := r.l.head
	preB := r.d.Snapshot()

	// Transaction B: overwrites A's first block, adds two more.
	r.commit(t, map[int64]byte{sA1: 0xB1, sB2: 0xB2, sB3: 0xB3})
	txnB := r.l.head - headA
	regionB := make([]byte, txnB*disk.SectorSize)
	r.d.ReadImage(testBase+headA, regionB)

	for cut := int64(0); cut <= txnB; cut++ {
		// Reconstruct the crash image: everything up to A plus the
		// first cut sectors of B's transaction image.
		r.d.Restore(preB)
		if cut > 0 {
			r.d.WriteImage(testBase+headA, regionB[:cut*disk.SectorSize])
		}
		rep, err := Recover(r.d, testBase, logSectors, testBlock)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if rep.SectorsRead > logSectors {
			t.Fatalf("cut %d: recovery read %d sectors from a %d-sector log", cut, rep.SectorsRead, logSectors)
		}
		wantB := cut == txnB // only the complete image replays B
		if wantB {
			if rep.Txns != 2 || rep.TornTail {
				t.Fatalf("cut %d (complete): %v", cut, rep)
			}
		} else if rep.Txns != 1 {
			t.Fatalf("cut %d: replayed %d txns, want A only", cut, rep.Txns)
		}
		// The shadow model: A's blocks always land; B's land all
		// together or not at all.
		check := func(sector int64, want []byte) {
			if !bytes.Equal(r.homeBlock(sector), want) {
				t.Fatalf("cut %d: home block at %d has wrong content", cut, sector)
			}
		}
		check(sA2, blkA2)
		if wantB {
			check(sA1, blkB1)
			check(sB2, blkB2)
			check(sB3, blkB3)
		} else {
			check(sA1, blkA1)
			// B's fresh blocks must be untouched (all-zero platter).
			zero := make([]byte, testBlock)
			check(sB2, zero)
			check(sB3, zero)
		}
	}
}
