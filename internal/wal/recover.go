package wal

import (
	"encoding/binary"
	"fmt"

	"ufsclust/internal/disk"
)

// RecoverReport is the accounting of one log replay. SectorsRead is
// the recovery cost the test battery bounds: it can never exceed the
// log region size, however large the image is, because recovery only
// ever reads log sectors.
type RecoverReport struct {
	Txns     int   // transactions replayed
	Blocks   int   // metadata blocks written home
	TornTail bool  // scanning stopped at a torn (partially written) transaction
	Epoch    uint64 // log epoch that was replayed

	SectorsRead    int64 // log sectors read during the scan
	SectorsWritten int64 // image sectors written during replay (incl. the log reset)
	LogSectors     int64 // region size, the structural bound on SectorsRead
}

// String formats the report for harness output.
func (r *RecoverReport) String() string {
	tail := "clean tail"
	if r.TornTail {
		tail = "torn tail discarded"
	}
	return fmt.Sprintf("replayed %d txns (%d blocks), %s; read %d/%d log sectors, wrote %d",
		r.Txns, r.Blocks, tail, r.SectorsRead, r.LogSectors, r.SectorsWritten)
}

// Recover replays the journal at [base, base+sectors) over d's image:
// the committed transaction prefix is applied in order, the first
// transaction that fails to parse or checksum ends the scan (torn
// tail — all later transactions may depend on it), and the log is
// reset to a fresh epoch so the following mount starts empty. It runs
// offline (boot time, no simulated time); the report carries the
// sector accounting.
func Recover(d disk.Device, base, sectors int64, blockBytes int) (*RecoverReport, error) {
	rep := &RecoverReport{LogSectors: sectors}
	readSectors := func(off, n int64) []byte {
		buf := make([]byte, n*disk.SectorSize)
		d.ReadImage(base+off, buf)
		rep.SectorsRead += n
		return buf
	}

	sbuf := readSectors(0, 1)
	if binary.LittleEndian.Uint64(sbuf[0:]) != logMagic {
		return nil, fmt.Errorf("wal: bad log superblock magic %#x", binary.LittleEndian.Uint64(sbuf[0:]))
	}
	if binary.LittleEndian.Uint64(sbuf[16:]) != checksum(sbuf[:16]) {
		return nil, fmt.Errorf("wal: log superblock checksum mismatch")
	}
	epoch := binary.LittleEndian.Uint64(sbuf[8:])
	rep.Epoch = epoch

	blockSectors := int64(blockBytes / disk.SectorSize)
	pos := int64(1)
	index := uint64(0)
scan:
	for pos < sectors {
		// Descriptor chain. The first sector tells us the shape; a
		// mismatch here is the normal end of the log (old-epoch or
		// never-written sectors), not a torn transaction.
		first := readSectors(pos, 1)
		if binary.LittleEndian.Uint64(first[0:]) != descMagic ||
			binary.LittleEndian.Uint64(first[8:]) != epoch ||
			binary.LittleEndian.Uint64(first[16:]) != index ||
			binary.LittleEndian.Uint32(first[28:]) != 0 {
			break
		}
		n := int(binary.LittleEndian.Uint32(first[24:]))
		if n <= 0 {
			rep.TornTail = true
			break
		}
		nd := (n + addrsPerDesc - 1) / addrsPerDesc
		txn := int64(nd) + int64(n)*blockSectors + 1
		if pos+txn > sectors {
			rep.TornTail = true
			break
		}
		desc := make([]byte, 0, nd*disk.SectorSize)
		desc = append(desc, first...)
		if nd > 1 {
			desc = append(desc, readSectors(pos+1, int64(nd-1))...)
		}
		addrs := make([]int64, 0, n)
		for dsec := 0; dsec < nd; dsec++ {
			s := desc[dsec*disk.SectorSize:]
			if binary.LittleEndian.Uint64(s[0:]) != descMagic ||
				binary.LittleEndian.Uint64(s[8:]) != epoch ||
				binary.LittleEndian.Uint64(s[16:]) != index ||
				binary.LittleEndian.Uint32(s[24:]) != uint32(n) ||
				binary.LittleEndian.Uint32(s[28:]) != uint32(dsec*addrsPerDesc) {
				rep.TornTail = true
				break scan
			}
			for i := dsec * addrsPerDesc; i < n && i < (dsec+1)*addrsPerDesc; i++ {
				addr := int64(binary.LittleEndian.Uint64(s[descHdrBytes+(i-dsec*addrsPerDesc)*8:]))
				if addr < 0 || addr+blockSectors > base {
					// A committed record only addresses metadata below
					// the log region; anything else is corruption.
					rep.TornTail = true
					break scan
				}
				addrs = append(addrs, addr)
			}
		}
		data := readSectors(pos+int64(nd), int64(n)*blockSectors)
		commit := readSectors(pos+txn-1, 1)
		if binary.LittleEndian.Uint64(commit[0:]) != commitMagic ||
			binary.LittleEndian.Uint64(commit[8:]) != epoch ||
			binary.LittleEndian.Uint64(commit[16:]) != index ||
			binary.LittleEndian.Uint32(commit[24:]) != uint32(n) ||
			binary.LittleEndian.Uint64(commit[32:]) != checksum(desc, data) {
			rep.TornTail = true
			break
		}
		// Committed: write every block home, in record order (a later
		// transaction's copy of the same block overwrites an earlier
		// one, so replay converges on the last committed state).
		for i, addr := range addrs {
			d.WriteImage(addr, data[int64(i)*int64(blockBytes):int64(i+1)*int64(blockBytes)])
			rep.SectorsWritten += blockSectors
		}
		rep.Txns++
		rep.Blocks += n
		pos += txn
		index++
	}

	// Reset: a fresh epoch retires everything still in the region, so
	// the next mount — and a second Recover — starts from nothing.
	d.WriteImage(base, logSuperblock(epoch+1))
	rep.SectorsWritten++
	return rep, nil
}
