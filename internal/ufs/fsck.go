package ufs

import (
	"fmt"

	"ufsclust/internal/detsort"
	"ufsclust/internal/disk"
)

// FsckReport is the result of an offline consistency check.
type FsckReport struct {
	Problems  []string
	Files     int
	Dirs      int
	UsedFrags int64
	FreeFrags int64
}

// Clean reports whether no problems were found.
func (r *FsckReport) Clean() bool { return len(r.Problems) == 0 }

func (r *FsckReport) addf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck checks the file system on d's image: superblock sanity, inode
// block accounting, duplicate and out-of-range block references,
// directory structure and link counts, bitmap consistency, and summary
// totals. It is how the repository demonstrates the paper's headline
// constraint — the clustered engine leaves images byte-compatible with
// the legacy one.
func Fsck(d disk.Device) (*FsckReport, error) {
	r := &FsckReport{}
	sb, err := ReadSuperblock(d)
	if err != nil {
		return nil, err
	}

	// Shadow fragment map: 0 free, 1 metadata, 2 data.
	shadow := make([]byte, sb.Size)
	markMeta := func(fsbn, n int32, what string) {
		for i := fsbn; i < fsbn+n; i++ {
			if i < 0 || i >= sb.Size {
				r.addf("%s: fragment %d out of range", what, i)
				return
			}
			shadow[i] = 1
		}
	}
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		markMeta(sb.CgBase(cgx), sb.MetaFrags(), "group metadata")
	}

	readBlk := func(fsbn int32) []byte {
		buf := make([]byte, sb.Bsize)
		d.ReadImage(sb.FsbToDb(fsbn), buf)
		return buf
	}

	// claim marks a data fragment used by an inode.
	claim := func(ino int32, fsbn, n int32) {
		for i := fsbn; i < fsbn+n; i++ {
			if i < 0 || i >= sb.Size {
				r.addf("ino %d: fragment %d out of range", ino, i)
				return
			}
			switch shadow[i] {
			case 0:
				shadow[i] = 2
			case 1:
				r.addf("ino %d: fragment %d overlaps metadata", ino, i)
			default:
				r.addf("ino %d: fragment %d multiply claimed", ino, i)
			}
		}
	}

	// Pass 1: inodes and block pointers.
	nindir := sb.NindirPerBlock()
	type inodeInfo struct {
		di    Dinode
		links int16 // directory references found in pass 2
	}
	inodes := make(map[int32]*inodeInfo)
	for ino := int32(0); ino < sb.Ncg*sb.Ipg; ino++ {
		blk := readBlk(sb.InoToFsba(ino))
		di := UnmarshalDinode(blk[sb.InoBlockOff(ino) : sb.InoBlockOff(ino)+DinodeSize])
		if !di.Allocated() {
			continue
		}
		if ino < RootIno {
			r.addf("reserved inode %d is allocated", ino)
			continue
		}
		switch di.Mode & ModeFmt {
		case ModeReg:
			r.Files++
		case ModeDir:
			r.Dirs++
		case ModeLink:
		default:
			r.addf("ino %d: unknown mode %#x", ino, di.Mode)
			continue
		}
		info := &inodeInfo{di: di}
		inodes[ino] = info

		if di.Mode&ModeFmt == ModeLink {
			// Fast symlink: the pointer area holds the target string,
			// not block addresses; it owns no fragments.
			if di.Blocks != 0 {
				r.addf("symlink ino %d claims %d fragments", ino, di.Blocks)
			}
			continue
		}

		nblocks := (di.Size + int64(sb.Bsize) - 1) / int64(sb.Bsize)
		var frags int32
		countData := func(lbn int64, fsbn int32) {
			n := sb.Frag
			if lbn < NDADDR {
				if f := int32(sb.BlkSize(di.Size, lbn)) / sb.Fsize; f > 0 {
					n = f
				}
			}
			claim(ino, fsbn, n)
			frags += n
		}
		for lbn := int64(0); lbn < NDADDR && lbn < nblocks; lbn++ {
			if di.DB[lbn] != 0 {
				countData(lbn, di.DB[lbn])
			}
		}
		if di.IB[0] != 0 {
			claim(ino, di.IB[0], sb.Frag)
			frags += sb.Frag
			ib := readBlk(di.IB[0])
			for i := int64(0); i < nindir && NDADDR+i < nblocks; i++ {
				if a := getIndir(ib, i); a != 0 {
					countData(NDADDR+i, a)
				}
			}
		}
		if di.IB[1] != 0 {
			claim(ino, di.IB[1], sb.Frag)
			frags += sb.Frag
			ib1 := readBlk(di.IB[1])
			for i := int64(0); i < nindir; i++ {
				l2 := getIndir(ib1, i)
				if l2 == 0 {
					continue
				}
				claim(ino, l2, sb.Frag)
				frags += sb.Frag
				ib2 := readBlk(l2)
				for j := int64(0); j < nindir; j++ {
					lbn := NDADDR + nindir + i*nindir + j
					if a := getIndir(ib2, j); a != 0 {
						if lbn >= nblocks {
							r.addf("ino %d: block %d beyond size %d", ino, lbn, di.Size)
						}
						countData(lbn, a)
					}
				}
			}
		}
		if frags != di.Blocks {
			r.addf("ino %d: holds %d fragments but di_blocks says %d", ino, frags, di.Blocks)
		}
	}

	// Pass 2: directory structure from the root.
	if ri, ok := inodes[RootIno]; !ok || !ri.di.IsDir() {
		r.addf("root inode missing or not a directory")
		return r, nil
	}
	var walk func(ino int32, parent int32, depth int)
	visited := make(map[int32]bool)
	walk = func(ino, parent int32, depth int) {
		if depth > 64 {
			r.addf("directory nesting too deep at ino %d", ino)
			return
		}
		if visited[ino] {
			r.addf("directory ino %d reached twice", ino)
			return
		}
		visited[ino] = true
		info := inodes[ino]
		di := info.di
		if di.Size%int64(sb.Bsize) != 0 {
			r.addf("dir ino %d: size %d not a block multiple", ino, di.Size)
		}
		nblocks := di.Size / int64(sb.Bsize)
		sawDot, sawDotDot := false, false
		for lbn := int64(0); lbn < nblocks; lbn++ {
			var fsbn int32
			if lbn < NDADDR {
				fsbn = di.DB[lbn]
			} else if di.IB[0] != 0 && lbn-NDADDR < nindir {
				fsbn = getIndir(readBlk(di.IB[0]), lbn-NDADDR)
			}
			if fsbn == 0 {
				r.addf("dir ino %d: hole at block %d", ino, lbn)
				continue
			}
			ents, err := parseDirents(readBlk(fsbn))
			if err != nil {
				r.addf("dir ino %d block %d: %v", ino, lbn, err)
				continue
			}
			for _, e := range ents {
				if e.Ino == 0 {
					continue
				}
				ti, ok := inodes[e.Ino]
				if !ok {
					r.addf("dir ino %d: entry %q points to unallocated ino %d", ino, e.Name, e.Ino)
					continue
				}
				switch e.Name {
				case ".":
					sawDot = true
					if e.Ino != ino {
						r.addf("dir ino %d: \".\" points to %d", ino, e.Ino)
					}
					ti.links++
				case "..":
					sawDotDot = true
					if e.Ino != parent {
						r.addf("dir ino %d: \"..\" points to %d, want %d", ino, e.Ino, parent)
					}
					ti.links++
				default:
					ti.links++
					if ti.di.IsDir() {
						walk(e.Ino, ino, depth+1)
					}
				}
			}
		}
		if !sawDot || !sawDotDot {
			r.addf("dir ino %d: missing \".\" or \"..\"", ino)
		}
	}
	walk(RootIno, RootIno, 0)

	// Walk inodes in ascending order so the report is byte-stable: a
	// map-order walk here would shuffle problem lines between runs.
	for _, ino := range detsort.Keys(inodes) {
		info := inodes[ino]
		if info.links != info.di.Nlink {
			r.addf("ino %d: link count %d, found %d references", ino, info.di.Nlink, info.links)
		}
		if info.di.IsDir() && !visited[ino] {
			r.addf("orphan directory ino %d", ino)
		}
	}

	// Pass 3: bitmaps and summaries.
	var nbfree, nffree, nifree, ndir int32
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		raw := readBlk(sb.CgHeader(cgx))
		cg, err := UnmarshalCG(sb, raw)
		if err != nil {
			r.addf("cg %d: %v", cgx, err)
			continue
		}
		base := sb.CgBase(cgx)
		var cgNb, cgNf, cgNi int32
		for f := int32(0); f < sb.Fpg; f++ {
			free := cg.FragFree(f)
			used := shadow[base+f] != 0
			if free && used {
				r.addf("cg %d: fragment %d free in bitmap but in use", cgx, base+f)
			}
			if !free && !used {
				r.addf("cg %d: fragment %d allocated in bitmap but unreferenced", cgx, base+f)
			}
			if used {
				r.UsedFrags++
			} else {
				r.FreeFrags++
			}
		}
		for f := int32(0); f+sb.Frag <= sb.Fpg; f += sb.Frag {
			if cg.BlockFree(f, sb.Frag) {
				cgNb++
			} else {
				for i := int32(0); i < sb.Frag; i++ {
					if cg.FragFree(f + i) {
						cgNf++
					}
				}
			}
		}
		for i := int32(0); i < sb.Ipg; i++ {
			ino := cgx*sb.Ipg + i
			used := cg.InodeUsed(i)
			_, allocated := inodes[ino]
			if ino < RootIno {
				allocated = true // reserved inodes are marked used
			}
			if used && !allocated {
				r.addf("cg %d: inode %d marked used but unallocated", cgx, ino)
			}
			if !used && allocated {
				r.addf("cg %d: inode %d allocated but marked free", cgx, ino)
			}
			if !used {
				cgNi++
			}
		}
		if cgNb != cg.Nbfree {
			r.addf("cg %d: nbfree %d, counted %d", cgx, cg.Nbfree, cgNb)
		}
		if cgNf != cg.Nffree {
			r.addf("cg %d: nffree %d, counted %d", cgx, cg.Nffree, cgNf)
		}
		if cgNi != cg.Nifree {
			r.addf("cg %d: nifree %d, counted %d", cgx, cg.Nifree, cgNi)
		}
		nbfree += cgNb
		nffree += cgNf
		nifree += cgNi
		ndir += cg.Ndir
	}
	if nbfree != sb.CsNbfree {
		r.addf("superblock: nbfree %d, counted %d", sb.CsNbfree, nbfree)
	}
	if nffree != sb.CsNffree {
		r.addf("superblock: nffree %d, counted %d", sb.CsNffree, nffree)
	}
	if nifree != sb.CsNifree {
		r.addf("superblock: nifree %d, counted %d", sb.CsNifree, nifree)
	}
	if ndir != sb.CsNdir {
		r.addf("superblock: ndir %d, counted %d", sb.CsNdir, ndir)
	}
	if int32(r.Dirs) != ndir {
		r.addf("directory count %d != cg ndir total %d", r.Dirs, ndir)
	}
	return r, nil
}
