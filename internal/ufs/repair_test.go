package ufs

import (
	"bytes"
	"strings"
	"testing"

	"ufsclust/internal/sim"
)

// repairRig is a testRig plus offline helpers for mutating the image
// between SyncImage and Repair.
func (r *testRig) repair(t *testing.T) *RepairReport {
	t.Helper()
	rep, err := Repair(r.d)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	return rep
}

// readDinode reads one on-image dinode.
func (r *testRig) readDinode(ino int32) Dinode {
	blk := make([]byte, r.sb.Bsize)
	r.d.ReadImage(r.sb.FsbToDb(r.sb.InoToFsba(ino)), blk)
	return UnmarshalDinode(blk[r.sb.InoBlockOff(ino) : r.sb.InoBlockOff(ino)+DinodeSize])
}

// writeDinode writes one on-image dinode.
func (r *testRig) writeDinode(ino int32, di Dinode) {
	fsba := r.sb.InoToFsba(ino)
	blk := make([]byte, r.sb.Bsize)
	r.d.ReadImage(r.sb.FsbToDb(fsba), blk)
	di.MarshalInto(blk[r.sb.InoBlockOff(ino) : r.sb.InoBlockOff(ino)+DinodeSize])
	r.d.WriteImage(r.sb.FsbToDb(fsba), blk)
}

// findReg returns the first nth (0-based) allocated regular inode.
func (r *testRig) findReg(t *testing.T, nth int) int32 {
	t.Helper()
	for ino := int32(RootIno + 1); ino < r.sb.Ncg*r.sb.Ipg; ino++ {
		di := r.readDinode(ino)
		if di.Allocated() && di.Mode&ModeFmt == ModeReg {
			if nth == 0 {
				return ino
			}
			nth--
		}
	}
	t.Fatal("regular inode not found on image")
	return -1
}

// mkFileWithData creates path holding one block of pattern bytes and
// flushes the image.
func (r *testRig) mkFileWithData(t *testing.T, path string, pat byte) {
	t.Helper()
	r.run(t, func(p *sim.Proc) {
		ip, err := r.fs.Create(p, path)
		if err != nil {
			t.Errorf("create %s: %v", path, err)
			return
		}
		if _, err := r.fs.BmapAlloc(p, ip, 0, int(r.sb.Bsize)); err != nil {
			t.Errorf("alloc %s: %v", path, err)
			return
		}
		ip.D.Size = int64(r.sb.Bsize)
		ip.MarkDirty()
	})
	r.fs.SyncImage()
	ino := r.findReg(t, 0)
	di := r.readDinode(ino)
	data := bytes.Repeat([]byte{pat}, int(r.sb.Bsize))
	r.d.WriteImage(r.sb.FsbToDb(di.DB[0]), data)
}

func TestRepairCleanImageNoFixes(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.mkFileWithData(t, "/f", 0xA5)
	ino := r.findReg(t, 0)
	before := r.readDinode(ino)

	rep := r.repair(t)
	if !rep.Clean() {
		t.Fatalf("repaired clean image not clean: %v", rep.Check.Problems)
	}
	if len(rep.Fixes) != 0 {
		t.Fatalf("repair of a clean image applied fixes: %v", rep.Fixes)
	}
	// The file and its data survived untouched.
	after := r.readDinode(ino)
	if after.DB[0] != before.DB[0] || after.Size != before.Size {
		t.Fatalf("clean repair disturbed the inode: %+v -> %+v", before, after)
	}
	buf := make([]byte, r.sb.Bsize)
	r.d.ReadImage(r.sb.FsbToDb(after.DB[0]), buf)
	if buf[0] != 0xA5 || buf[len(buf)-1] != 0xA5 {
		t.Fatal("clean repair disturbed file data")
	}
}

func TestRepairZeroesPointerIntoMetadata(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.mkFileWithData(t, "/f", 0x11)
	ino := r.findReg(t, 0)
	di := r.readDinode(ino)
	di.DB[0] = r.sb.CgHeader(0) // metadata!
	r.writeDinode(ino, di)

	rep := r.repair(t)
	if !rep.Clean() {
		t.Fatalf("not clean after repair: %v", rep.Check.Problems)
	}
	if got := r.readDinode(ino); got.DB[0] != 0 {
		t.Fatalf("metadata pointer survived repair: DB[0]=%d", got.DB[0])
	}
	found := false
	for _, f := range rep.Fixes {
		if strings.Contains(f, "bad or duplicate block pointer") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fix log missing the pointer repair: %v", rep.Fixes)
	}
}

func TestRepairResolvesDuplicateClaimForLowerInode(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		a, err := r.fs.Create(p, "/a")
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := r.fs.BmapAlloc(p, a, 0, int(r.sb.Bsize)); err != nil {
			t.Error(err)
			return
		}
		a.D.Size = int64(r.sb.Bsize)
		a.MarkDirty()
		b, err := r.fs.Create(p, "/b")
		if err != nil {
			t.Error(err)
			return
		}
		// Corrupt: /b claims /a's block.
		b.D.DB[0] = a.D.DB[0]
		b.D.Size = int64(r.sb.Bsize)
		b.D.Blocks = r.sb.Frag
		b.MarkDirty()
	})
	r.fs.SyncImage()
	inoA, inoB := r.findReg(t, 0), r.findReg(t, 1)
	if inoA >= inoB {
		inoA, inoB = inoB, inoA
	}
	shared := r.readDinode(inoA).DB[0]

	rep := r.repair(t)
	if !rep.Clean() {
		t.Fatalf("not clean after repair: %v", rep.Check.Problems)
	}
	if got := r.readDinode(inoA).DB[0]; got != shared {
		t.Fatalf("lower inode lost its block: DB[0]=%d, want %d", got, shared)
	}
	if got := r.readDinode(inoB).DB[0]; got != 0 {
		t.Fatalf("higher inode kept the duplicate claim: DB[0]=%d", got)
	}
}

func TestRepairFixesLinkCount(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, err := r.fs.Create(p, "/f")
		if err != nil {
			t.Error(err)
			return
		}
		ip.D.Nlink = 5 // lie
		ip.MarkDirty()
	})
	r.fs.SyncImage()
	ino := r.findReg(t, 0)

	rep := r.repair(t)
	if !rep.Clean() {
		t.Fatalf("not clean after repair: %v", rep.Check.Problems)
	}
	if got := r.readDinode(ino).Nlink; got != 1 {
		t.Fatalf("Nlink = %d after repair, want 1", got)
	}
}

func TestRepairClearsOrphans(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Mkdir(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		if _, err := r.fs.Create(p, "/f"); err != nil {
			t.Error(err)
			return
		}
		// Orphan both: names removed, inodes left allocated.
		root := mustIget(t, r, p, RootIno)
		if _, err := r.fs.DirRemove(p, root, "d"); err != nil {
			t.Error(err)
		}
		if _, err := r.fs.DirRemove(p, root, "f"); err != nil {
			t.Error(err)
		}
	})
	r.fs.SyncImage()

	rep := r.repair(t)
	if !rep.Clean() {
		t.Fatalf("not clean after repair: %v", rep.Check.Problems)
	}
	if rep.Check.Files != 0 || rep.Check.Dirs != 1 {
		t.Fatalf("post-repair tree has %d files %d dirs, want 0/1", rep.Check.Files, rep.Check.Dirs)
	}
}

func TestRepairRebuildsCorruptDirBlock(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Create(p, "/x"); err != nil {
			t.Error(err)
		}
	})
	r.fs.SyncImage()
	// Smash the root directory block's reclen chain.
	rootDi := r.readDinode(RootIno)
	blk := make([]byte, r.sb.Bsize)
	r.d.ReadImage(r.sb.FsbToDb(rootDi.DB[0]), blk)
	blk[4], blk[5] = 3, 0 // reclen 3: not 4-aligned, below minimum
	r.d.WriteImage(r.sb.FsbToDb(rootDi.DB[0]), blk)

	rep := r.repair(t)
	if !rep.Clean() {
		t.Fatalf("not clean after repair: %v", rep.Check.Problems)
	}
	rebuilt := false
	for _, f := range rep.Fixes {
		if strings.Contains(f, "unparseable") {
			rebuilt = true
		}
	}
	if !rebuilt {
		t.Fatalf("fix log missing the dir rebuild: %v", rep.Fixes)
	}
}

func TestRepairRestoresSuperblockFromBackup(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.mkFileWithData(t, "/f", 0x3C)
	// Wipe the primary superblock.
	r.d.WriteImage(r.sb.FsbToDb(r.sb.CgSBlock(0)), make([]byte, SBSize))

	rep := r.repair(t)
	if !rep.Clean() {
		t.Fatalf("not clean after repair: %v", rep.Check.Problems)
	}
	if len(rep.Fixes) == 0 || !strings.Contains(rep.Fixes[0], "restored from a backup") {
		t.Fatalf("fix log missing the superblock restore: %v", rep.Fixes)
	}
	// The primary is back and the file survived.
	if _, err := ReadSuperblock(r.d); err != nil {
		t.Fatalf("primary superblock still unreadable: %v", err)
	}
	ino := r.findReg(t, 0)
	buf := make([]byte, r.sb.Bsize)
	r.d.ReadImage(r.sb.FsbToDb(r.readDinode(ino).DB[0]), buf)
	if buf[0] != 0x3C {
		t.Fatal("file data lost across superblock recovery")
	}
}

func TestRepairRebuildsSmashedGroupHeader(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.mkFileWithData(t, "/f", 0x77)
	// Zero an entire cylinder-group header (bitmaps included).
	r.d.WriteImage(r.sb.FsbToDb(r.sb.CgHeader(0)), make([]byte, r.sb.Bsize))

	rep := r.repair(t)
	if !rep.Clean() {
		t.Fatalf("not clean after repair: %v", rep.Check.Problems)
	}
	if rep.Check.Files != 1 {
		t.Fatalf("post-repair tree has %d files, want 1", rep.Check.Files)
	}
}

func TestRepairClearsInsaneInodes(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Create(p, "/f"); err != nil {
			t.Error(err)
		}
	})
	r.fs.SyncImage()
	ino := r.findReg(t, 0)
	di := r.readDinode(ino)
	di.Size = -1
	r.writeDinode(ino, di)

	rep := r.repair(t)
	if !rep.Clean() {
		t.Fatalf("not clean after repair: %v", rep.Check.Problems)
	}
	if got := r.readDinode(ino); got.Allocated() {
		t.Fatalf("inode with impossible size survived: %+v", got)
	}
}

// TestRepairIsIdempotent runs Repair twice over a corrupted image; the
// second pass must find a clean file system and change nothing.
func TestRepairIsIdempotent(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.mkFileWithData(t, "/f", 0x5A)
	ino := r.findReg(t, 0)
	di := r.readDinode(ino)
	di.DB[1] = di.DB[0] // duplicate claim inside one inode
	r.writeDinode(ino, di)

	first := r.repair(t)
	if !first.Clean() {
		t.Fatalf("first repair not clean: %v", first.Check.Problems)
	}
	second := r.repair(t)
	if !second.Clean() {
		t.Fatalf("second repair not clean: %v", second.Check.Problems)
	}
	if len(second.Fixes) != 0 {
		t.Fatalf("second repair applied fixes: %v", second.Fixes)
	}
}
