package ufs

import "ufsclust/internal/telemetry"

// AttachTelemetry registers the file system's allocator and metadata
// counters — the stats the late ResetStats shim historically forgot to
// zero, which is why they live in the registry now: Snapshot/Delta
// measurement needs no zeroing at all.
func (fs *Fs) AttachTelemetry(tel *telemetry.Telemetry) {
	r := tel.Reg
	r.Counter("fs.bmap_calls", func() int64 { return fs.BmapCalls })
	r.Counter("fs.alloc_calls", func() int64 { return fs.AllocCalls })
	r.Counter("fs.frag_allocs", func() int64 { return fs.FragAllocs })
	r.Counter("fs.realloc_frags", func() int64 { return fs.ReallocFrags })
	r.Counter("fs.bmap_cache_hits", func() int64 { return fs.BmapCacheHits })
	r.Counter("fs.sync_meta_writes", func() int64 { return fs.SyncMetaWrites })
	r.Counter("fs.ordered_meta_writes", func() int64 { return fs.OrderedMetaWrites })
	r.Counter("fs.bc_hits", func() int64 { return fs.BC.Hits })
	r.Counter("fs.bc_misses", func() int64 { return fs.BC.Misses })
	r.Counter("fs.bc_evictions", func() int64 { return fs.BC.Evictions })
	r.Counter("fs.bc_writes", func() int64 { return fs.BC.Writes })
}
