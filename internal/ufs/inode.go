package ufs

import (
	"fmt"

	"ufsclust/internal/cpu"
	"ufsclust/internal/detsort"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
)

// Fs is a mounted file system instance (the vfs object).
type Fs struct {
	Sim *sim.Sim
	CPU *cpu.Model // may be nil
	Drv *driver.Driver
	SB  *Superblock
	BC  *Bcache

	itable map[int32]*Inode
	cgs    map[int32]*CG
	// csum is the in-core free-block count per group (the fs_csp
	// summary array UFS loads at mount), used by pickCg without I/O.
	csum []int32

	// WriteLimit is the per-file cap on bytes outstanding in the disk
	// queue (the paper's fairness semaphore); 0 disables the limit.
	WriteLimit int64

	// BmapCache enables the per-inode translation cache (Further Work:
	// "Bmap cache"). Off by default to match the paper's measured
	// system.
	BmapCache bool

	// OrderedWrites replaces the synchronous metadata writes that UFS
	// uses for on-disk ordering with asynchronous B_ORDER-flagged
	// writes the driver may not reorder (Further Work: "B_ORDER").
	OrderedWrites bool

	// J, when non-nil, is the attached write-ahead metadata journal
	// (see MetaJournal in journal.go): metadata writes become delayed
	// writes committed by transaction, and Sync checkpoints the log.
	J MetaJournal

	// Stats for the future-work features.
	BmapCacheHits                     int64
	SyncMetaWrites, OrderedMetaWrites int64
	JournalMetaWrites                 int64

	// rotor for cylinder-group selection of new files.
	cgRotor int32

	// Stats
	BmapCalls, AllocCalls, FragAllocs, ReallocFrags int64
}

// MountOpts tunes a mount.
type MountOpts struct {
	Nbuf       int   // metadata buffer count; default 64
	WriteLimit int64 // bytes; 0 = unlimited
	// BmapCache and OrderedWrites enable the corresponding Further Work
	// features (see the Fs fields of the same names).
	BmapCache     bool
	OrderedWrites bool
}

// Mount reads the superblock and returns a usable file system.
func Mount(s *sim.Sim, cpuModel *cpu.Model, drv *driver.Driver, opts MountOpts) (*Fs, error) {
	sb, err := ReadSuperblock(drv.Disk)
	if err != nil {
		return nil, err
	}
	fs := &Fs{
		Sim:           s,
		CPU:           cpuModel,
		Drv:           drv,
		SB:            sb,
		itable:        make(map[int32]*Inode),
		cgs:           make(map[int32]*CG),
		WriteLimit:    opts.WriteLimit,
		BmapCache:     opts.BmapCache,
		OrderedWrites: opts.OrderedWrites,
	}
	fs.BC = NewBcache(s, cpuModel, drv, sb, opts.Nbuf)
	// Load the per-group summary (mount-time work, untimed like the
	// superblock read).
	fs.csum = make([]int32, sb.Ncg)
	blk := make([]byte, sb.Bsize)
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		readFrags(drv.Disk, sb, sb.CgHeader(cgx), blk)
		cg, err := UnmarshalCG(sb, blk)
		if err != nil {
			return nil, fmt.Errorf("mount: cg %d: %w", cgx, err)
		}
		fs.csum[cgx] = cg.Nbfree
	}
	return fs, nil
}

// Inode is the in-core inode: the on-disk dinode plus the fields the
// paper's algorithms live in.
type Inode struct {
	Fs  *Fs
	Ino int32
	D   Dinode

	dirty bool
	refs  int

	// Nextr is the predicted logical block of the next read; read-ahead
	// triggers when a fault matches it (figure 3).
	Nextr int64
	// Nextrio is the logical block where the next cluster read-ahead
	// should begin (figure 6).
	Nextrio int64
	// Delayoff/Delaylen describe the run of delayed ("lied about")
	// write pages not yet pushed (figures 7 and 8). Byte units.
	Delayoff int64
	Delaylen int64

	// WriteSem implements the per-file write limit: bytes of I/O this
	// file may have in the disk queue. Nil when the limit is off.
	WriteSem *sim.Semaphore

	// bmapCache holds the most recent translation run when the mount
	// enables the paper's "bmap cache" future-work idea: "A small cache
	// in the inode could reduce the cost of bmap substantially."
	bmapCache struct {
		valid bool
		lbn   int64 // first logical block of the cached run
		fsbn  int32 // its fragment address
		run   int32 // blocks in the run
	}
}

// InvalidateBmapCache drops the cached translation; callers that change
// the block map (allocation, truncation) must invoke it.
func (ip *Inode) InvalidateBmapCache() { ip.bmapCache.valid = false }

// Size returns the file length in bytes.
func (ip *Inode) Size() int64 { return ip.D.Size }

// MarkDirty notes that the dinode must be written back.
func (ip *Inode) MarkDirty() { ip.dirty = true }

// Iget returns the in-core inode for ino, reading it if necessary.
func (fs *Fs) Iget(p *sim.Proc, ino int32) (*Inode, error) {
	if ino < 0 || ino >= fs.SB.Ncg*fs.SB.Ipg {
		return nil, fmt.Errorf("ufs: inode %d out of range", ino)
	}
	if ip, ok := fs.itable[ino]; ok {
		ip.refs++
		return ip, nil
	}
	b, err := fs.BC.Bread(p, fs.SB.InoToFsba(ino))
	if err != nil {
		return nil, err
	}
	off := fs.SB.InoBlockOff(ino)
	di := UnmarshalDinode(b.Data[off : off+DinodeSize])
	fs.BC.Brelse(b)
	ip := &Inode{Fs: fs, Ino: ino, D: di, refs: 1}
	if fs.WriteLimit > 0 {
		ip.WriteSem = sim.NewSemaphore(fmt.Sprintf("wlimit.%d", ino), fs.WriteLimit)
	}
	fs.itable[ino] = ip
	return ip, nil
}

// Iput releases a reference, writing the inode back if dirty. The
// in-core inode stays in the table (there is no cache pressure on it in
// the simulation). A failed write-back has no caller to report to; it
// lands in the cache's sticky error (see Bcache.Err).
func (fs *Fs) Iput(p *sim.Proc, ip *Inode) {
	ip.refs--
	if ip.dirty {
		if err := fs.IUpdate(p, ip, false); err != nil {
			fs.BC.recordErr(err)
		}
	}
}

// IUpdate writes the dinode to its inode block; sync forces the update
// to be ordered on disk before dependent operations — by waiting for a
// synchronous write, or, with OrderedWrites, by an asynchronous
// B_ORDER write the driver may not reorder.
func (fs *Fs) IUpdate(p *sim.Proc, ip *Inode, sync bool) error {
	b, err := fs.BC.Bread(p, fs.SB.InoToFsba(ip.Ino))
	if err != nil {
		return err
	}
	ip.D.MarshalInto(b.Data[fs.SB.InoBlockOff(ip.Ino) : fs.SB.InoBlockOff(ip.Ino)+DinodeSize])
	if sync {
		err = fs.metaWrite(p, b)
	} else {
		fs.BC.Bdwrite(b)
	}
	ip.dirty = false
	return err
}

// loadCG returns the in-core cylinder group, reading it on first touch.
func (fs *Fs) loadCG(p *sim.Proc, cgx int32) (*CG, error) {
	if cg, ok := fs.cgs[cgx]; ok {
		return cg, nil
	}
	b, err := fs.BC.Bread(p, fs.SB.CgHeader(cgx))
	if err != nil {
		return nil, err
	}
	cg, err := UnmarshalCG(fs.SB, b.Data)
	fs.BC.Brelse(b)
	if err != nil {
		return nil, fmt.Errorf("ufs: cg %d: %w", cgx, err)
	}
	fs.cgs[cgx] = cg
	return cg, nil
}

// storeCG pushes the in-core group back through the buffer cache as a
// delayed write.
func (fs *Fs) storeCG(p *sim.Proc, cg *CG) error {
	b, err := fs.BC.Bread(p, fs.SB.CgHeader(cg.Cgx))
	if err != nil {
		return err
	}
	copy(b.Data, cg.Marshal(fs.SB))
	fs.BC.Bdwrite(b)
	return nil
}

// Sync writes back every dirty inode, cylinder group, the superblock,
// and flushes the metadata cache. Inodes and groups are visited in
// ascending number order so the resulting I/O sequence — and therefore
// virtual time — is identical on every run. Like update(8), it keeps
// going past failures and returns the first error.
func (fs *Fs) Sync(p *sim.Proc) error {
	if fs.J != nil {
		// Journaled: one commit captures every dirty inode, buffer,
		// and the superblock (StageCommit sweeps them all), then the
		// checkpoint writes the committed blocks home and resets the
		// log — after Sync the image itself is current.
		fs.J.Begin(p)
		err := fs.J.End(p)
		if cerr := fs.J.Checkpoint(p); err == nil {
			err = cerr
		}
		return err
	}
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	for _, ino := range detsort.Keys(fs.itable) {
		if ip := fs.itable[ino]; ip.dirty {
			keep(fs.IUpdate(p, ip, false))
		}
	}
	for _, cgx := range detsort.Keys(fs.cgs) {
		keep(fs.storeCG(p, fs.cgs[cgx]))
	}
	b := fs.BC.getblk(p, sbFragOffset)
	if !b.valid {
		b.valid = true
	}
	copy(b.Data, sbBlockImage(fs.SB))
	fs.BC.Bdwrite(b)
	keep(fs.BC.Flush(p))
	return firstErr
}

// SyncInode makes everything fsync promises durable for one file whose
// data pages have already been written: the inode (size, block
// pointers) and any dirty indirect blocks. Pointer blocks go out
// before the inode that makes them reachable, mirroring the data-
// before-pointers ordering the caller already provided.
func (fs *Fs) SyncInode(p *sim.Proc, ip *Inode) error {
	if fs.J != nil {
		// Journaled fsync: the commit's single sequential log write
		// carries the inode, its indirect blocks, the bitmaps, and the
		// superblock atomically — the data-before-pointers sequencing
		// below exists only to order in-place writes, which no longer
		// happen.
		fs.J.Begin(p)
		return fs.J.End(p)
	}
	if ib := ip.D.IB[1]; ib != 0 {
		b, err := fs.BC.Bread(p, ib)
		if err != nil {
			return err
		}
		nindir := fs.SB.NindirPerBlock()
		var l2s []int32
		for i := int64(0); i < nindir; i++ {
			if l2 := getIndir(b.Data, i); l2 != 0 {
				l2s = append(l2s, l2)
			}
		}
		fs.BC.Brelse(b)
		for _, l2 := range l2s {
			if err := fs.BC.FlushBlock(p, l2); err != nil {
				return err
			}
		}
		if err := fs.BC.FlushBlock(p, ib); err != nil {
			return err
		}
	}
	if ib := ip.D.IB[0]; ib != 0 {
		if err := fs.BC.FlushBlock(p, ib); err != nil {
			return err
		}
	}
	if ip.dirty {
		return fs.IUpdate(p, ip, true)
	}
	// The last update may still be sitting in the cache as a delayed
	// write; push the inode block itself.
	return fs.BC.FlushBlock(p, fs.SB.InoToFsba(ip.Ino))
}

// IOErr returns the file system's sticky first I/O error, if any:
// failures with no synchronous caller (delayed metadata write-back,
// ordered writes, evictions) are reported here and by the next fsync.
func (fs *Fs) IOErr() error { return fs.BC.Err() }

// SyncImage is the offline equivalent of Sync: spill all state to the
// image with no simulated time, so fsck and direct image inspection see
// a consistent file system.
func (fs *Fs) SyncImage() {
	if fs.J != nil {
		// Write the journal's committed copies home first (clean cache
		// buffers may have been staged and dropped, so the cache alone
		// no longer covers them); the spill below then overwrites with
		// any newer in-memory state, and the log comes back empty.
		fs.J.CheckpointImage()
	}
	for _, ino := range detsort.Keys(fs.itable) {
		ip := fs.itable[ino]
		b := make([]byte, fs.SB.Bsize)
		fsba := fs.SB.InoToFsba(ip.Ino)
		// Merge through the buffer cache if the block is cached there.
		if mb, ok := fs.BC.bufs[fs.BC.align(fsba)]; ok && mb.valid {
			copy(b, mb.Data)
			ip.D.MarshalInto(b[fs.SB.InoBlockOff(ip.Ino) : fs.SB.InoBlockOff(ip.Ino)+DinodeSize])
			copy(mb.Data, b)
			mb.dirty = true
		} else {
			readFrags(fs.Drv.Disk, fs.SB, fsba, b)
			ip.D.MarshalInto(b[fs.SB.InoBlockOff(ip.Ino) : fs.SB.InoBlockOff(ip.Ino)+DinodeSize])
			writeFrags(fs.Drv.Disk, fs.SB, fsba, b)
		}
		ip.dirty = false
	}
	fs.BC.FlushImage()
	for _, cgx := range detsort.Keys(fs.cgs) {
		cg := fs.cgs[cgx]
		writeFrags(fs.Drv.Disk, fs.SB, fs.SB.CgHeader(cg.Cgx), cg.Marshal(fs.SB))
	}
	writeFrags(fs.Drv.Disk, fs.SB, sbFragOffset, fs.SB.Marshal())
}

// sbBlockImage renders the superblock into a block-sized buffer (its
// block also holds nothing else).
func sbBlockImage(sb *Superblock) []byte {
	out := make([]byte, sb.Bsize)
	copy(out, sb.Marshal())
	return out
}

// chargeCPU charges instructions if a CPU model is attached.
func (fs *Fs) chargeCPU(p *sim.Proc, c cpu.Category, instr int64) {
	if fs.CPU != nil && p != nil {
		fs.CPU.Use(p, c, instr)
	}
}

// Driver returns the underlying driver (for raw access in benchmarks).
func (fs *Fs) Driver() *driver.Driver { return fs.Drv }

// CsumForTest exposes the in-core free-block summary for diagnostics.
func (fs *Fs) CsumForTest() []int32 { return fs.csum }
