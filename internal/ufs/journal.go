package ufs

import (
	"ufsclust/internal/detsort"
	"ufsclust/internal/sim"
)

// MetaJournal is the seam the write-ahead metadata log (internal/wal)
// plugs into. When a journal is attached, metadata writes stop going
// in place: metaWrite degrades to a delayed write, top-level
// operations run inside Begin/End frames, and the End that closes the
// outermost frame calls back into StageCommit to capture every dirty
// metadata block for one sequential log write. The interface lives
// here so ufs never imports wal.
type MetaJournal interface {
	// Begin opens (or nests into) a transaction frame.
	Begin(p *sim.Proc)
	// End closes a frame; closing the outermost frame commits all
	// staged metadata and blocks until it is durable.
	End(p *sim.Proc) error
	// Stage records one block image (by home sector) for the open
	// commit; the journal copies the data.
	Stage(sector int64, data []byte)
	// Peek returns the journal's committed-but-not-yet-checkpointed
	// image of the block at the given home sector, or nil if the home
	// copy is current. The buffer cache consults it on every miss.
	Peek(sector int64) []byte
	// Checkpoint writes every committed block home and resets the log.
	Checkpoint(p *sim.Proc) error
	// CheckpointImage is the offline checkpoint (no simulated time),
	// used by SyncImage before fsck-style image inspection.
	CheckpointImage()
}

// AttachJournal installs the journal on a mounted file system. The
// caller (the machine builder) must also install StageCommit as the
// journal's flush callback, so commits capture the dirty metadata.
func (fs *Fs) AttachJournal(j MetaJournal) {
	fs.J = j
	fs.BC.journal = j
}

// jBegin opens a transaction frame if a journal is attached.
func (fs *Fs) jBegin(p *sim.Proc) {
	if fs.J != nil {
		fs.J.Begin(p)
	}
}

// jEnd closes the frame, folding a commit error into *errp if the
// operation itself succeeded.
func (fs *Fs) jEnd(p *sim.Proc, errp *error) {
	if fs.J == nil {
		return
	}
	if err := fs.J.End(p); err != nil && *errp == nil {
		*errp = err
	}
}

// StageCommit is the journal's flush callback: it captures everything
// a commit must make durable. Dirty in-core inodes are folded into
// their blocks first (their mutations — size, pointers — otherwise
// live only in the inode table), then every dirty non-busy cache
// buffer is staged in ascending block order and marked clean (its
// content is durable in the log once the commit lands; Peek serves it
// to cache misses until a checkpoint writes it home). The superblock
// rides along whenever anything else does, because its summary totals
// mutate in memory on every allocation and fsck cross-checks them
// against the bitmaps.
func (fs *Fs) StageCommit(p *sim.Proc) error {
	var firstErr error
	for _, ino := range detsort.Keys(fs.itable) {
		if ip := fs.itable[ino]; ip.dirty {
			if err := fs.IUpdate(p, ip, false); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	staged := 0
	for _, fsbn := range detsort.Keys(fs.BC.bufs) {
		b, ok := fs.BC.bufs[fsbn]
		if !ok || !b.dirty || b.busy {
			continue
		}
		fs.J.Stage(fs.SB.FsbToDb(b.Fsbn), b.Data)
		b.dirty = false
		staged++
	}
	if staged > 0 {
		fs.J.Stage(fs.SB.FsbToDb(sbFragOffset), sbBlockImage(fs.SB))
	}
	return firstErr
}
