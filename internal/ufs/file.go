package ufs

import (
	"fmt"
	"strings"

	"ufsclust/internal/sim"
)

// Namei resolves an absolute path ("/a/b/c") to an inode, holding a
// reference on the result. Symbolic links are followed, with a loop
// bound.
func (fs *Fs) Namei(p *sim.Proc, path string) (*Inode, error) {
	return fs.namei(p, path, 0)
}

func (fs *Fs) namei(p *sim.Proc, path string, depth int) (*Inode, error) {
	if depth > 8 {
		return nil, fmt.Errorf("ufs: too many levels of symbolic links in %q", path)
	}
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("ufs: path %q not absolute", path)
	}
	ip, err := fs.Iget(p, RootIno)
	if err != nil {
		return nil, err
	}
	for _, comp := range splitPath(path) {
		if !ip.D.IsDir() {
			fs.Iput(p, ip)
			return nil, ErrNotDir
		}
		ino, err := fs.DirLookup(p, ip, comp)
		fs.Iput(p, ip)
		if err != nil {
			return nil, err
		}
		if ip, err = fs.Iget(p, ino); err != nil {
			return nil, err
		}
		if ip.D.Mode&ModeFmt == ModeLink {
			// Follow (absolute targets only; the reproduction keeps
			// path semantics simple).
			target, err := fs.Readlink(ip)
			fs.Iput(p, ip)
			if err != nil {
				return nil, err
			}
			if !strings.HasPrefix(target, "/") {
				return nil, fmt.Errorf("ufs: relative symlink target %q unsupported", target)
			}
			if ip, err = fs.namei(p, target, depth+1); err != nil {
				return nil, err
			}
		}
	}
	return ip, nil
}

func splitPath(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

// lookupParent resolves the parent directory of path and returns it with
// the leaf name.
func (fs *Fs) lookupParent(p *sim.Proc, path string) (*Inode, string, error) {
	comps := splitPath(path)
	if len(comps) == 0 {
		return nil, "", fmt.Errorf("ufs: empty path %q", path)
	}
	dir := "/" + strings.Join(comps[:len(comps)-1], "/")
	dip, err := fs.Namei(p, dir)
	if err != nil {
		return nil, "", err
	}
	if !dip.D.IsDir() {
		fs.Iput(p, dip)
		return nil, "", ErrNotDir
	}
	return dip, comps[len(comps)-1], nil
}

// Create makes a new regular file and returns its inode (referenced).
// Like every top-level namespace operation it runs inside a journal
// transaction frame when a journal is attached: the synchronous
// metadata writes below degrade to delayed ones and the closing jEnd
// commits them all with one sequential log write.
func (fs *Fs) Create(p *sim.Proc, path string) (*Inode, error) {
	fs.jBegin(p)
	ip, err := fs.create(p, path)
	fs.jEnd(p, &err)
	return ip, err
}

func (fs *Fs) create(p *sim.Proc, path string) (*Inode, error) {
	dip, name, err := fs.lookupParent(p, path)
	if err != nil {
		return nil, err
	}
	defer fs.Iput(p, dip)
	if _, err := fs.DirLookup(p, dip, name); err == nil {
		return nil, ErrExists
	} else if err != ErrNotFound {
		return nil, err
	}
	ino, err := fs.IAlloc(p, dip, false)
	if err != nil {
		return nil, err
	}
	ip, err := fs.Iget(p, ino)
	if err != nil {
		return nil, err
	}
	ip.D = Dinode{Mode: ModeReg | 0o644, Nlink: 1}
	ip.MarkDirty()
	if err := fs.DirEnter(p, dip, name, ino); err != nil {
		fs.Iput(p, ip)
		return nil, err
	}
	// UFS writes the new inode synchronously so the name never points
	// at garbage after a crash — one of the ordering costs B_ORDER
	// would remove.
	if err := fs.IUpdate(p, ip, true); err != nil {
		fs.Iput(p, ip)
		return nil, err
	}
	return ip, nil
}

// Mkdir creates a directory.
func (fs *Fs) Mkdir(p *sim.Proc, path string) (*Inode, error) {
	fs.jBegin(p)
	ip, err := fs.mkdir(p, path)
	fs.jEnd(p, &err)
	return ip, err
}

func (fs *Fs) mkdir(p *sim.Proc, path string) (*Inode, error) {
	dip, name, err := fs.lookupParent(p, path)
	if err != nil {
		return nil, err
	}
	defer fs.Iput(p, dip)
	if _, err := fs.DirLookup(p, dip, name); err == nil {
		return nil, ErrExists
	} else if err != ErrNotFound {
		return nil, err
	}
	ino, err := fs.IAlloc(p, dip, true)
	if err != nil {
		return nil, err
	}
	ip, err := fs.Iget(p, ino)
	if err != nil {
		return nil, err
	}
	ip.D = Dinode{Mode: ModeDir | 0o755, Nlink: 2}
	fsbn, err := fs.BmapAlloc(p, ip, 0, int(fs.SB.Bsize))
	if err != nil {
		fs.Iput(p, ip)
		return nil, err
	}
	b := fs.BC.getblk(p, fsbn)
	for i := range b.Data {
		b.Data[i] = 0
	}
	b.valid = true
	n := putDirent(b.Data, ino, ".")
	putDirentLast(b.Data[n:], dip.Ino, "..", int(fs.SB.Bsize)-n)
	fs.BC.Bdwrite(b)
	ip.D.Size = int64(fs.SB.Bsize)
	ip.MarkDirty()
	if err := fs.DirEnter(p, dip, name, ino); err != nil {
		fs.Iput(p, ip)
		return nil, err
	}
	dip.D.Nlink++ // the child's ".."
	dip.MarkDirty()
	if err := fs.IUpdate(p, ip, true); err != nil {
		fs.Iput(p, ip)
		return nil, err
	}
	return ip, nil
}

// Remove unlinks a file or empty directory and frees its storage when
// the link count reaches zero.
func (fs *Fs) Remove(p *sim.Proc, path string) error {
	fs.jBegin(p)
	err := fs.remove(p, path)
	fs.jEnd(p, &err)
	return err
}

func (fs *Fs) remove(p *sim.Proc, path string) error {
	dip, name, err := fs.lookupParent(p, path)
	if err != nil {
		return err
	}
	defer fs.Iput(p, dip)
	if name == "." || name == ".." {
		return fmt.Errorf("ufs: cannot remove %q", name)
	}
	ino, err := fs.DirLookup(p, dip, name)
	if err != nil {
		return err
	}
	ip, err := fs.Iget(p, ino)
	if err != nil {
		return err
	}
	defer fs.Iput(p, ip)
	wasDir := ip.D.IsDir()
	if wasDir {
		empty, err := fs.DirIsEmpty(p, ip)
		if err != nil {
			return err
		}
		if !empty {
			return ErrNotEmpty
		}
	}
	if _, err := fs.DirRemove(p, dip, name); err != nil {
		return err
	}
	ip.D.Nlink--
	if wasDir {
		ip.D.Nlink-- // its "."
		dip.D.Nlink--
		dip.MarkDirty()
	}
	if ip.D.Nlink <= 0 {
		if err := fs.Truncate(p, ip, 0); err != nil {
			return err
		}
		mode := ip.D.Mode
		ip.D = Dinode{}
		// Synchronous inode clear before freeing the number: the
		// ordering discipline the paper's rm benchmark pays for.
		if err := fs.IUpdate(p, ip, true); err != nil {
			return err
		}
		if err := fs.IFree(p, ino, mode&ModeFmt == ModeDir); err != nil {
			return err
		}
		delete(fs.itable, ino)
	} else {
		ip.MarkDirty()
	}
	return nil
}

// Truncate shrinks (or zero-extends) ip to size bytes, freeing whole
// blocks past the new end. Growing just updates the length: UFS files
// are sparse by default.
func (fs *Fs) Truncate(p *sim.Proc, ip *Inode, size int64) error {
	fs.jBegin(p)
	err := fs.truncate(p, ip, size)
	fs.jEnd(p, &err)
	return err
}

func (fs *Fs) truncate(p *sim.Proc, ip *Inode, size int64) error {
	if size < 0 {
		return fmt.Errorf("ufs: negative truncate")
	}
	ip.InvalidateBmapCache()
	if size >= ip.D.Size {
		ip.D.Size = size
		ip.MarkDirty()
		return nil
	}
	oldBlocks := (ip.D.Size + int64(fs.SB.Bsize) - 1) / int64(fs.SB.Bsize)
	newBlocks := (size + int64(fs.SB.Bsize) - 1) / int64(fs.SB.Bsize)

	// Free data blocks past the new end, walking backwards.
	for lbn := oldBlocks - 1; lbn >= newBlocks; lbn-- {
		fsbn, _, err := fs.Bmap(p, ip, lbn)
		if err != nil {
			return err
		}
		if fsbn == 0 {
			continue
		}
		// Fragments exist only in the direct range; indirect-range
		// blocks are always whole even when the size ends mid-block.
		frags := fs.SB.Frag
		if lbn < NDADDR {
			if f := int32(fs.SB.BlkSize(ip.D.Size, lbn)) / fs.SB.Fsize; f > 0 {
				frags = f
			}
		}
		if err := fs.FreeFrags(p, fsbn, frags); err != nil {
			return err
		}
		ip.D.Blocks -= frags
		if err := fs.clearBlockPtr(p, ip, lbn); err != nil {
			return err
		}
	}
	// Free indirect blocks that became empty.
	nindir := fs.SB.NindirPerBlock()
	if newBlocks <= NDADDR && ip.D.IB[0] != 0 {
		if err := fs.FreeFrags(p, ip.D.IB[0], fs.SB.Frag); err != nil {
			return err
		}
		ip.D.Blocks -= fs.SB.Frag
		ip.D.IB[0] = 0
	}
	if newBlocks <= NDADDR+nindir && ip.D.IB[1] != 0 {
		// Copy the level-2 pointers out and release the level-1 buffer
		// before freeing anything: FreeFrags reads cylinder-group
		// blocks through the cache, and holding b across that sweep
		// would pin a locked buffer over unrelated waits. The frees
		// run in the same order as before, so the I/O trace is
		// unchanged.
		b, err := fs.BC.Bread(p, ip.D.IB[1])
		if err != nil {
			return err
		}
		l2s := make([]int32, 0, nindir)
		for i := int64(0); i < nindir; i++ {
			if l2 := getIndir(b.Data, i); l2 != 0 {
				l2s = append(l2s, l2)
			}
		}
		fs.BC.Brelse(b)
		for _, l2 := range l2s {
			if err := fs.FreeFrags(p, l2, fs.SB.Frag); err != nil {
				return err
			}
			ip.D.Blocks -= fs.SB.Frag
		}
		if err := fs.FreeFrags(p, ip.D.IB[1], fs.SB.Frag); err != nil {
			return err
		}
		ip.D.Blocks -= fs.SB.Frag
		ip.D.IB[1] = 0
	}
	// Shrink the new tail block to fragments where the direct range
	// allows it, as FFS truncate does; otherwise di_blocks and the
	// bitmaps disagree with the new size.
	if size%int64(fs.SB.Bsize) != 0 {
		lastLbn := size / int64(fs.SB.Bsize)
		if lastLbn < NDADDR && ip.D.DB[lastLbn] != 0 {
			oldFrags := int32(fs.SB.BlkSize(ip.D.Size, lastLbn)) / fs.SB.Fsize
			newFrags := int32(fs.SB.BlkSize(size, lastLbn)) / fs.SB.Fsize
			if newFrags < oldFrags {
				if err := fs.FreeFrags(p, ip.D.DB[lastLbn]+newFrags, oldFrags-newFrags); err != nil {
					return err
				}
				ip.D.Blocks -= oldFrags - newFrags
			}
		}
	}
	ip.D.Size = size
	ip.MarkDirty()
	return nil
}

// clearBlockPtr zeroes the pointer to logical block lbn.
func (fs *Fs) clearBlockPtr(p *sim.Proc, ip *Inode, lbn int64) error {
	if lbn < NDADDR {
		ip.D.DB[lbn] = 0
		ip.MarkDirty()
		return nil
	}
	nindir := fs.SB.NindirPerBlock()
	rel := lbn - NDADDR
	if rel < nindir {
		if ip.D.IB[0] == 0 {
			return nil
		}
		b, err := fs.BC.Bread(p, ip.D.IB[0])
		if err != nil {
			return err
		}
		putIndir(b.Data, rel, 0)
		fs.BC.Bdwrite(b)
		return nil
	}
	rel -= nindir
	if ip.D.IB[1] == 0 {
		return nil
	}
	b1, err := fs.BC.Bread(p, ip.D.IB[1])
	if err != nil {
		return err
	}
	l2 := getIndir(b1.Data, rel/nindir)
	fs.BC.Brelse(b1)
	if l2 == 0 {
		return nil
	}
	b2, err := fs.BC.Bread(p, l2)
	if err != nil {
		return err
	}
	putIndir(b2.Data, rel%nindir, 0)
	fs.BC.Bdwrite(b2)
	return nil
}

// MaxFastLink is the longest symlink target stored directly in the
// inode's block-pointer area — the paper's precedent for data-in-inode:
// "this is already done for symbolic links if the link is small enough
// (the space normally used for block pointers is filled with the
// symlink data)".
const MaxFastLink = (NDADDR + NIADDR) * 4

// Symlink creates a symbolic link at path pointing to target. Targets
// up to MaxFastLink bytes live in the inode itself (a "fast symlink");
// longer targets are unsupported in this reproduction.
func (fs *Fs) Symlink(p *sim.Proc, path, target string) error {
	fs.jBegin(p)
	err := fs.symlink(p, path, target)
	fs.jEnd(p, &err)
	return err
}

func (fs *Fs) symlink(p *sim.Proc, path, target string) error {
	if len(target) == 0 || len(target) > MaxFastLink {
		return fmt.Errorf("ufs: symlink target length %d unsupported (max %d)", len(target), MaxFastLink)
	}
	dip, name, err := fs.lookupParent(p, path)
	if err != nil {
		return err
	}
	defer fs.Iput(p, dip)
	if _, err := fs.DirLookup(p, dip, name); err == nil {
		return ErrExists
	} else if err != ErrNotFound {
		return err
	}
	ino, err := fs.IAlloc(p, dip, false)
	if err != nil {
		return err
	}
	ip, err := fs.Iget(p, ino)
	if err != nil {
		return err
	}
	ip.D = Dinode{Mode: ModeLink | 0o777, Nlink: 1, Size: int64(len(target))}
	// Pack the target into the pointer area.
	var raw [MaxFastLink]byte
	copy(raw[:], target)
	for i := 0; i < NDADDR; i++ {
		ip.D.DB[i] = int32(uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 |
			uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24)
	}
	for i := 0; i < NIADDR; i++ {
		o := (NDADDR + i) * 4
		ip.D.IB[i] = int32(uint32(raw[o]) | uint32(raw[o+1])<<8 |
			uint32(raw[o+2])<<16 | uint32(raw[o+3])<<24)
	}
	ip.MarkDirty()
	if err := fs.DirEnter(p, dip, name, ino); err != nil {
		fs.Iput(p, ip)
		return err
	}
	err = fs.IUpdate(p, ip, true)
	fs.Iput(p, ip)
	return err
}

// Readlink returns a symlink's target, served entirely from the inode —
// no data I/O, which is the point the paper generalizes from.
func (fs *Fs) Readlink(ip *Inode) (string, error) {
	if ip.D.Mode&ModeFmt != ModeLink {
		return "", fmt.Errorf("ufs: inode %d is not a symlink", ip.Ino)
	}
	var raw [MaxFastLink]byte
	for i := 0; i < NDADDR; i++ {
		v := uint32(ip.D.DB[i])
		raw[i*4], raw[i*4+1], raw[i*4+2], raw[i*4+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	for i := 0; i < NIADDR; i++ {
		v := uint32(ip.D.IB[i])
		o := (NDADDR + i) * 4
		raw[o], raw[o+1], raw[o+2], raw[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	return string(raw[:ip.D.Size]), nil
}

// Rename moves oldPath to newPath (files or empty-target semantics: an
// existing regular file at newPath is replaced).
func (fs *Fs) Rename(p *sim.Proc, oldPath, newPath string) error {
	fs.jBegin(p)
	err := fs.rename(p, oldPath, newPath)
	fs.jEnd(p, &err)
	return err
}

func (fs *Fs) rename(p *sim.Proc, oldPath, newPath string) error {
	odip, oname, err := fs.lookupParent(p, oldPath)
	if err != nil {
		return err
	}
	defer fs.Iput(p, odip)
	ino, err := fs.DirLookup(p, odip, oname)
	if err != nil {
		return err
	}
	ndip, nname, err := fs.lookupParent(p, newPath)
	if err != nil {
		return err
	}
	defer fs.Iput(p, ndip)
	ip, err := fs.Iget(p, ino)
	if err != nil {
		return err
	}
	defer fs.Iput(p, ip)
	if ip.D.IsDir() && odip.Ino != ndip.Ino {
		return fmt.Errorf("ufs: directory rename across directories unsupported")
	}
	if existing, err := fs.DirLookup(p, ndip, nname); err == nil {
		if existing == ino {
			return nil
		}
		eip, err := fs.Iget(p, existing)
		if err != nil {
			return err
		}
		isDir := eip.D.IsDir()
		fs.Iput(p, eip)
		if isDir {
			return ErrExists
		}
		if err := fs.Remove(p, newPath); err != nil {
			return err
		}
	} else if err != ErrNotFound {
		return err
	}
	if err := fs.DirEnter(p, ndip, nname, ino); err != nil {
		return err
	}
	if _, err := fs.DirRemove(p, odip, oname); err != nil {
		return err
	}
	return nil
}
