package ufs

import (
	"fmt"

	"ufsclust/internal/cpu"
	"ufsclust/internal/sim"
)

const bmapInstr = 1100 // CPU instructions per bmap translation

// Bmap translates logical block lbn of ip to its fragment address. It
// also returns the length, in blocks, of the contiguous run starting at
// lbn — the paper's one interface change: "We modified it to return a
// length as well as the physical block number... The length returned is
// at most maxcontig blocks long and is used as the effective cluster
// size by the caller."
//
// A hole returns fsbn 0 with length 1. Indirect blocks are fetched
// through the metadata cache and cost simulated I/O time, which is why
// the paper's Further Work wants a bmap cache.
func (fs *Fs) Bmap(p *sim.Proc, ip *Inode, lbn int64) (int32, int, error) {
	if lbn < 0 || lbn >= fs.SB.MaxFileBlocks() {
		return 0, 0, fmt.Errorf("ufs: lbn %d out of range", lbn)
	}
	// The Further Work bmap cache: serve from the inode's last
	// translation run without touching pointer blocks.
	if fs.BmapCache && ip.bmapCache.valid &&
		lbn >= ip.bmapCache.lbn && lbn < ip.bmapCache.lbn+int64(ip.bmapCache.run) {
		fs.chargeCPU(p, cpu.Bmap, bmapInstr/8)
		fs.BmapCacheHits++
		off := int32(lbn - ip.bmapCache.lbn)
		return ip.bmapCache.fsbn + off*fs.SB.Frag, int(ip.bmapCache.run - off), nil
	}
	fs.chargeCPU(p, cpu.Bmap, bmapInstr)
	fs.BmapCalls++
	fsbn, run, err := fs.bmapSlow(p, ip, lbn)
	if err == nil && fs.BmapCache && fsbn != 0 {
		ip.bmapCache.valid = true
		ip.bmapCache.lbn = lbn
		ip.bmapCache.fsbn = fsbn
		ip.bmapCache.run = int32(run)
	}
	return fsbn, run, err
}

// bmapSlow walks the block pointers.
func (fs *Fs) bmapSlow(p *sim.Proc, ip *Inode, lbn int64) (int32, int, error) {
	maxc := int(fs.SB.Maxcontig)
	if maxc < 1 {
		maxc = 1
	}
	// Never report a run past the end of the file.
	lastLbn := (ip.D.Size + int64(fs.SB.Bsize) - 1) / int64(fs.SB.Bsize)
	limitRun := func(run int) int {
		if max := int(lastLbn - lbn); run > max && max >= 1 {
			run = max
		}
		if run < 1 {
			run = 1
		}
		if run > maxc {
			run = maxc
		}
		return run
	}

	if lbn < NDADDR {
		addr := ip.D.DB[lbn]
		if addr == 0 {
			return 0, 1, nil
		}
		run := 1
		for int64(run)+lbn < NDADDR && run < maxc {
			if ip.D.DB[lbn+int64(run)] != addr+int32(run)*fs.SB.Frag {
				break
			}
			run++
		}
		return addr, limitRun(run), nil
	}

	nindir := fs.SB.NindirPerBlock()
	rel := lbn - NDADDR
	if rel < nindir {
		if ip.D.IB[0] == 0 {
			return 0, 1, nil
		}
		b, err := fs.BC.Bread(p, ip.D.IB[0])
		if err != nil {
			return 0, 0, err
		}
		defer fs.BC.Brelse(b)
		addr := getIndir(b.Data, rel)
		if addr == 0 {
			return 0, 1, nil
		}
		run := 1
		for int64(run)+rel < nindir && run < maxc {
			if getIndir(b.Data, rel+int64(run)) != addr+int32(run)*fs.SB.Frag {
				break
			}
			run++
		}
		return addr, limitRun(run), nil
	}

	rel -= nindir
	if rel >= nindir*nindir {
		return 0, 0, fmt.Errorf("ufs: lbn %d beyond double-indirect range", lbn)
	}
	if ip.D.IB[1] == 0 {
		return 0, 1, nil
	}
	b1, err := fs.BC.Bread(p, ip.D.IB[1])
	if err != nil {
		return 0, 0, err
	}
	l1 := getIndir(b1.Data, rel/nindir)
	fs.BC.Brelse(b1)
	if l1 == 0 {
		return 0, 1, nil
	}
	b2, err := fs.BC.Bread(p, l1)
	if err != nil {
		return 0, 0, err
	}
	defer fs.BC.Brelse(b2)
	idx := rel % nindir
	addr := getIndir(b2.Data, idx)
	if addr == 0 {
		return 0, 1, nil
	}
	run := 1
	for int64(run)+idx < nindir && run < maxc {
		if getIndir(b2.Data, idx+int64(run)) != addr+int32(run)*fs.SB.Frag {
			break
		}
		run++
	}
	return addr, limitRun(run), nil
}

func getIndir(data []byte, i int64) int32 {
	off := i * 4
	return int32(uint32(data[off]) | uint32(data[off+1])<<8 |
		uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
}

func putIndir(data []byte, i int64, v int32) {
	off := i * 4
	data[off] = byte(v)
	data[off+1] = byte(v >> 8)
	data[off+2] = byte(v >> 16)
	data[off+3] = byte(v >> 24)
}

// prevAddr returns the fragment address of lbn-1 if it is allocated and
// cheaply reachable (same pointer block), else 0.
func (fs *Fs) prevAddr(p *sim.Proc, ip *Inode, lbn int64) int32 {
	if lbn == 0 {
		return 0
	}
	prev := lbn - 1
	if prev < NDADDR {
		return ip.D.DB[prev]
	}
	fsbn, _, err := fs.Bmap(p, ip, prev)
	if err != nil {
		return 0
	}
	return fsbn
}

// BmapAlloc ensures logical block lbn of ip has backing store for size
// bytes (a full block, or a fragment tail when lbn is in the direct
// range), allocating data blocks, growing tails in place when possible,
// and allocating indirect blocks on demand. Callers must invoke it
// BEFORE updating ip.D.Size, so the old tail size is still computable.
// It returns the (possibly new) fragment address.
func (fs *Fs) BmapAlloc(p *sim.Proc, ip *Inode, lbn int64, size int) (int32, error) {
	ip.InvalidateBmapCache()
	fs.chargeCPU(p, cpu.Bmap, bmapInstr)
	if size <= 0 || size > int(fs.SB.Bsize) {
		panic("ufs: BmapAlloc size out of range") // simlint:invariant -- write path sizes requests from the superblock
	}
	needFrags := (int32(size) + fs.SB.Fsize - 1) / fs.SB.Fsize
	if lbn >= NDADDR {
		needFrags = fs.SB.Frag // fragments live only in the direct range
	}

	if lbn < NDADDR {
		old := ip.D.DB[lbn]
		if old != 0 {
			oldFrags := int32(fs.SB.BlkSize(ip.D.Size, lbn)) / fs.SB.Fsize
			if oldFrags == 0 {
				oldFrags = needFrags // size not yet set; treat as exact
			}
			if needFrags <= oldFrags {
				return old, nil
			}
			// Grow the tail: extend in place, or move it.
			if oldFrags < fs.SB.Frag {
				ok, err := fs.ExtendFrags(p, ip, old, oldFrags, needFrags)
				if err == nil && ok {
					return old, nil
				}
				var fsbn int32
				pref := fs.BlkPref(ip, lbn, fs.prevAddr(p, ip, lbn))
				if needFrags == fs.SB.Frag {
					fsbn, err = fs.AllocBlock(p, ip, pref)
				} else {
					fsbn, err = fs.AllocFrags(p, ip, pref, needFrags)
				}
				if err != nil {
					return 0, err
				}
				if ferr := fs.FreeFrags(p, old, oldFrags); ferr != nil {
					return 0, ferr
				}
				ip.D.Blocks -= oldFrags
				ip.D.DB[lbn] = fsbn
				ip.MarkDirty()
				return fsbn, nil
			}
			return old, nil
		}
		pref := fs.BlkPref(ip, lbn, fs.prevAddr(p, ip, lbn))
		var fsbn int32
		var err error
		if needFrags == fs.SB.Frag {
			fsbn, err = fs.AllocBlock(p, ip, pref)
		} else {
			fsbn, err = fs.AllocFrags(p, ip, pref, needFrags)
		}
		if err != nil {
			return 0, err
		}
		ip.D.DB[lbn] = fsbn
		ip.MarkDirty()
		return fsbn, nil
	}

	// Indirect ranges: walk/grow the pointer chain.
	nindir := fs.SB.NindirPerBlock()
	rel := lbn - NDADDR
	if rel < nindir {
		ib, err := fs.ensureIndir(p, ip, &ip.D.IB[0])
		if err != nil {
			return 0, err
		}
		return fs.allocInIndir(p, ip, ib, rel, lbn)
	}
	rel -= nindir
	if rel >= nindir*nindir {
		return 0, fmt.Errorf("ufs: lbn %d beyond double-indirect range", lbn)
	}
	ib1, err := fs.ensureIndir(p, ip, &ip.D.IB[1])
	if err != nil {
		return 0, err
	}
	// Level-1 entry points to a level-2 indirect block.
	b1, err := fs.BC.Bread(p, ib1)
	if err != nil {
		return 0, err
	}
	l2 := getIndir(b1.Data, rel/nindir)
	fs.BC.Brelse(b1)
	if l2 == 0 {
		// Allocate with the level-1 buffer released: allocMetaBlock
		// acquires cylinder-group buffers, and holding b1 across that
		// would pin a locked buffer over an unrelated wait. Re-reading
		// to install the pointer is a cache hit — b1 was just released,
		// so it cannot have been the eviction victim — and the inode
		// lock keeps the slot ours in between.
		l2, err = fs.allocMetaBlock(p, ip)
		if err != nil {
			return 0, err
		}
		if b1, err = fs.BC.Bread(p, ib1); err != nil {
			return 0, err
		}
		putIndir(b1.Data, rel/nindir, l2)
		fs.BC.Bdwrite(b1)
	}
	return fs.allocInIndir(p, ip, l2, rel%nindir, lbn)
}

// ensureIndir allocates (zeroed) the indirect block *slot if missing and
// returns its address.
func (fs *Fs) ensureIndir(p *sim.Proc, ip *Inode, slot *int32) (int32, error) {
	if *slot != 0 {
		return *slot, nil
	}
	fsbn, err := fs.allocMetaBlock(p, ip)
	if err != nil {
		return 0, err
	}
	*slot = fsbn
	ip.MarkDirty()
	return fsbn, nil
}

// allocMetaBlock allocates and zeroes a pointer block.
func (fs *Fs) allocMetaBlock(p *sim.Proc, ip *Inode) (int32, error) {
	fsbn, err := fs.AllocBlock(p, ip, fs.BlkPref(ip, 0, 0))
	if err != nil {
		return 0, err
	}
	b := fs.BC.getblk(p, fsbn)
	for i := range b.Data {
		b.Data[i] = 0
	}
	b.valid = true
	fs.BC.Bdwrite(b)
	return fsbn, nil
}

// allocInIndir ensures entry idx of the indirect block at ib points to a
// data block, allocating one if needed.
func (fs *Fs) allocInIndir(p *sim.Proc, ip *Inode, ib int32, idx int64, lbn int64) (int32, error) {
	b, err := fs.BC.Bread(p, ib)
	if err != nil {
		return 0, err
	}
	addr := getIndir(b.Data, idx)
	if addr != 0 {
		fs.BC.Brelse(b)
		return addr, nil
	}
	var prev int32
	if idx > 0 {
		prev = getIndir(b.Data, idx-1)
	} else {
		prev = fs.prevAddr(p, ip, lbn)
	}
	fsbn, err := fs.AllocBlock(p, ip, fs.BlkPref(ip, lbn, prev))
	if err != nil {
		fs.BC.Brelse(b)
		return 0, err
	}
	putIndir(b.Data, idx, fsbn)
	fs.BC.Bdwrite(b)
	return fsbn, nil
}
