package ufs

import (
	"errors"
	"fmt"
	"strings"

	"ufsclust/internal/sim"
)

// Directory entries use the FFS "direct" format: inode number, record
// length, name length, then the name padded to a 4-byte boundary. Record
// lengths within one block always sum to the block size; deleting an
// entry merges its record into its predecessor.

// MaxNameLen bounds a single path component.
const MaxNameLen = 255

// ErrNotFound is returned by lookups that find nothing.
var ErrNotFound = errors.New("ufs: no such file or directory")

// ErrExists is returned when creating over an existing name.
var ErrExists = errors.New("ufs: file exists")

// ErrNotDir is returned when a path component is not a directory.
var ErrNotDir = errors.New("ufs: not a directory")

// ErrNotEmpty is returned when removing a non-empty directory.
var ErrNotEmpty = errors.New("ufs: directory not empty")

// direntSize returns the record size needed for a name (header + name +
// NUL, rounded to 4).
func direntSize(name string) int {
	return 8 + (len(name)+1+3)&^3
}

// putDirent writes an entry with a tight record length; returns it.
func putDirent(buf []byte, ino int32, name string) int {
	return putDirentLast(buf, ino, name, direntSize(name))
}

// putDirentLast writes an entry with an explicit record length.
func putDirentLast(buf []byte, ino int32, name string, reclen int) int {
	if len(name) == 0 || len(name) > MaxNameLen {
		panic("ufs: bad dirent name") // simlint:invariant -- DirEnter validates names before this point
	}
	putIndir(buf, 0, ino) // same little-endian u32 encoding
	buf[4] = byte(reclen)
	buf[5] = byte(reclen >> 8)
	buf[6] = byte(len(name))
	buf[7] = byte(len(name) >> 8)
	copy(buf[8:], name)
	buf[8+len(name)] = 0
	return reclen
}

// Dirent is a decoded directory entry.
type Dirent struct {
	Ino    int32
	Name   string
	off    int // byte offset within the directory block
	reclen int
}

// parseDirents decodes one directory block.
func parseDirents(blk []byte) ([]Dirent, error) {
	var out []Dirent
	off := 0
	for off < len(blk) {
		i := int32(uint32(blk[off]) | uint32(blk[off+1])<<8 | uint32(blk[off+2])<<16 | uint32(blk[off+3])<<24)
		reclen := int(blk[off+4]) | int(blk[off+5])<<8
		namlen := int(blk[off+6]) | int(blk[off+7])<<8
		if reclen < 8 || off+reclen > len(blk) || (reclen&3) != 0 {
			return nil, fmt.Errorf("ufs: corrupt dirent at offset %d (reclen %d)", off, reclen)
		}
		if namlen > reclen-8 {
			return nil, fmt.Errorf("ufs: corrupt dirent name at offset %d", off)
		}
		if i != 0 {
			out = append(out, Dirent{
				Ino:    i,
				Name:   string(blk[off+8 : off+8+namlen]),
				off:    off,
				reclen: reclen,
			})
		} else {
			out = append(out, Dirent{Ino: 0, off: off, reclen: reclen})
		}
		off += reclen
	}
	if off != len(blk) {
		return nil, errors.New("ufs: directory block reclens do not sum to block size")
	}
	return out, nil
}

// dirBlocks iterates the data blocks of directory dip, calling fn with
// each block's buffer (held busy). fn returns whether it modified the
// block and whether to stop.
func (fs *Fs) dirBlocks(p *sim.Proc, dip *Inode, fn func(b *MBuf) (dirty, stop bool, err error)) error {
	if !dip.D.IsDir() {
		return ErrNotDir
	}
	nblocks := (dip.D.Size + int64(fs.SB.Bsize) - 1) / int64(fs.SB.Bsize)
	for lbn := int64(0); lbn < nblocks; lbn++ {
		fsbn, _, err := fs.Bmap(p, dip, lbn)
		if err != nil {
			return err
		}
		if fsbn == 0 {
			return errors.New("ufs: hole in directory")
		}
		b, err := fs.BC.Bread(p, fsbn)
		if err != nil {
			return err
		}
		dirty, stop, err := fn(b)
		if dirty {
			// Directory modifications follow UFS's ordering discipline
			// (synchronous, or B_ORDER with OrderedWrites) so the name
			// space on disk is always consistent.
			if werr := fs.metaWrite(p, b); werr != nil && err == nil {
				err = werr
			}
		} else {
			fs.BC.Brelse(b)
		}
		if err != nil || stop {
			return err
		}
	}
	return nil
}

// DirLookup finds name in directory dip.
func (fs *Fs) DirLookup(p *sim.Proc, dip *Inode, name string) (int32, error) {
	var found int32
	err := fs.dirBlocks(p, dip, func(b *MBuf) (bool, bool, error) {
		ents, err := parseDirents(b.Data)
		if err != nil {
			return false, true, err
		}
		for _, e := range ents {
			if e.Ino != 0 && e.Name == name {
				found = e.Ino
				return false, true, nil
			}
		}
		return false, false, nil
	})
	if err != nil {
		return 0, err
	}
	if found == 0 {
		return 0, ErrNotFound
	}
	return found, nil
}

// DirEnter links name -> ino into directory dip, reusing slack space in
// existing records or growing the directory by one block.
func (fs *Fs) DirEnter(p *sim.Proc, dip *Inode, name string, ino int32) error {
	if len(name) == 0 || len(name) > MaxNameLen || strings.Contains(name, "/") {
		return fmt.Errorf("ufs: invalid name %q", name)
	}
	need := direntSize(name)
	inserted := false
	err := fs.dirBlocks(p, dip, func(b *MBuf) (bool, bool, error) {
		ents, err := parseDirents(b.Data)
		if err != nil {
			return false, true, err
		}
		for _, e := range ents {
			if e.Ino != 0 && e.Name == name {
				return false, true, ErrExists
			}
		}
		for _, e := range ents {
			var slack, used int
			if e.Ino == 0 {
				slack, used = e.reclen, 0
			} else {
				used = direntSize(e.Name)
				slack = e.reclen - used
			}
			if slack < need {
				continue
			}
			// Shrink the existing record and append the new one.
			if e.Ino != 0 {
				b.Data[e.off+4] = byte(used)
				b.Data[e.off+5] = byte(used >> 8)
			}
			putDirentLast(b.Data[e.off+used:], ino, name, e.reclen-used)
			inserted = true
			return true, true, nil
		}
		return false, false, nil
	})
	if err != nil {
		return err
	}
	if inserted {
		return nil
	}
	// Grow the directory by one block holding just this entry.
	lbn := dip.D.Size / int64(fs.SB.Bsize)
	fsbn, err := fs.BmapAlloc(p, dip, lbn, int(fs.SB.Bsize))
	if err != nil {
		return err
	}
	b := fs.BC.getblk(p, fsbn)
	for i := range b.Data {
		b.Data[i] = 0
	}
	b.valid = true
	putDirentLast(b.Data, ino, name, int(fs.SB.Bsize))
	if err := fs.metaWrite(p, b); err != nil {
		return err
	}
	dip.D.Size += int64(fs.SB.Bsize)
	dip.MarkDirty()
	return nil
}

// DirRemove unlinks name from dip, merging the freed record into its
// predecessor (or zeroing its inode if it leads the block).
func (fs *Fs) DirRemove(p *sim.Proc, dip *Inode, name string) (int32, error) {
	var removed int32
	err := fs.dirBlocks(p, dip, func(b *MBuf) (bool, bool, error) {
		ents, err := parseDirents(b.Data)
		if err != nil {
			return false, true, err
		}
		for i, e := range ents {
			if e.Ino == 0 || e.Name != name {
				continue
			}
			removed = e.Ino
			if i > 0 && ents[i-1].off+ents[i-1].reclen == e.off {
				// Merge into predecessor.
				nr := ents[i-1].reclen + e.reclen
				b.Data[ents[i-1].off+4] = byte(nr)
				b.Data[ents[i-1].off+5] = byte(nr >> 8)
			} else {
				putIndir(b.Data[e.off:], 0, 0) // zero the inode field
			}
			return true, true, nil
		}
		return false, false, nil
	})
	if err != nil {
		return 0, err
	}
	if removed == 0 {
		return 0, ErrNotFound
	}
	return removed, nil
}

// DirIsEmpty reports whether dip contains only "." and "..".
func (fs *Fs) DirIsEmpty(p *sim.Proc, dip *Inode) (bool, error) {
	empty := true
	err := fs.dirBlocks(p, dip, func(b *MBuf) (bool, bool, error) {
		ents, err := parseDirents(b.Data)
		if err != nil {
			return false, true, err
		}
		for _, e := range ents {
			if e.Ino != 0 && e.Name != "." && e.Name != ".." {
				empty = false
				return false, true, nil
			}
		}
		return false, false, nil
	})
	return empty, err
}

// ReadDir lists the live entries of dip.
func (fs *Fs) ReadDir(p *sim.Proc, dip *Inode) ([]Dirent, error) {
	var out []Dirent
	err := fs.dirBlocks(p, dip, func(b *MBuf) (bool, bool, error) {
		ents, err := parseDirents(b.Data)
		if err != nil {
			return false, true, err
		}
		for _, e := range ents {
			if e.Ino != 0 {
				out = append(out, e)
			}
		}
		return false, false, nil
	})
	return out, err
}
