package ufs

import (
	"fmt"

	"ufsclust/internal/disk"
)

// MkfsOpts parameterizes file system creation. The zero value gets the
// paper's defaults: 8 KB blocks, 1 KB fragments, 10% minfree, and the
// legacy rotdelay=4ms / maxcontig=1 tuning (run D). The clustered
// configurations retune rotdelay/maxcontig — which, deliberately, does
// not change the on-disk format.
type MkfsOpts struct {
	Bsize     int
	Fsize     int
	Cpg       int // cylinders per group
	Ipg       int // inodes per group (rounded up to a block of inodes)
	Minfree   int // percent
	Rotdelay  int // milliseconds between successive blocks
	Maxcontig int // blocks per cluster when Rotdelay is 0
	Maxbpg    int // blocks per file per group; default half a group

	// LogBlocks reserves a metadata-journal region of that many blocks
	// past the last cylinder group (0 = no journal; the image is then
	// byte-identical to a pre-journal Mkfs). The region is recorded in
	// Superblock.LogStart/LogFrags and consumed by internal/wal.
	LogBlocks int
}

func (o MkfsOpts) withDefaults() MkfsOpts {
	if o.Bsize == 0 {
		o.Bsize = 8192
	}
	if o.Fsize == 0 {
		o.Fsize = 1024
	}
	if o.Cpg == 0 {
		o.Cpg = 16
	}
	if o.Ipg == 0 {
		o.Ipg = 512
	}
	if o.Minfree == 0 {
		o.Minfree = 10
	}
	if o.Maxcontig == 0 {
		o.Maxcontig = 1
	}
	return o
}

// Mkfs lays a fresh file system onto d's image. It runs "offline" (no
// simulated time passes) and returns the superblock it wrote.
func Mkfs(d disk.Device, opts MkfsOpts) (*Superblock, error) {
	o := opts.withDefaults()
	if o.Bsize%o.Fsize != 0 || o.Bsize/o.Fsize > 8 {
		return nil, fmt.Errorf("ufs: bad bsize/fsize %d/%d", o.Bsize, o.Fsize)
	}
	if o.Fsize != 1024 {
		// The superblock lives at the fixed byte offset 8 KB == fragment
		// 8; this implementation pins the FFS default fragment size.
		return nil, fmt.Errorf("ufs: unsupported fsize %d (must be 1024)", o.Fsize)
	}
	g := d.Geom()
	nsect := g.Zones[0].SPT
	ntrak := g.Heads
	spc := nsect * ntrak

	sb := &Superblock{
		FsMagic:   Magic,
		Bsize:     int32(o.Bsize),
		Fsize:     int32(o.Fsize),
		Frag:      int32(o.Bsize / o.Fsize),
		Cpg:       int32(o.Cpg),
		Minfree:   int32(o.Minfree),
		Rotdelay:  int32(o.Rotdelay),
		Maxcontig: int32(o.Maxcontig),
		Nsect:     int32(nsect),
		Ntrak:     int32(ntrak),
		Spc:       int32(spc),
		Rps:       int32(g.RPM / 60),
	}
	ipb := int32(o.Bsize / DinodeSize)
	sb.Ipg = (int32(o.Ipg) + ipb - 1) / ipb * ipb

	totalFrags := g.TotalBytes() / int64(o.Fsize)
	logFrags := int64(o.LogBlocks) * int64(sb.Frag)
	sb.Fpg = int32(o.Cpg) * int32(spc) * disk.SectorSize / int32(o.Fsize)
	sb.Ncg = int32((totalFrags - logFrags) / int64(sb.Fpg))
	if sb.Ncg < 1 {
		return nil, fmt.Errorf("ufs: disk too small (%d frags/group, %d total, %d log)", sb.Fpg, totalFrags, logFrags)
	}
	sb.Size = sb.Ncg * sb.Fpg
	if logFrags > 0 {
		// The journal claims the fragments immediately past the last
		// group. Fsck and Repair bound their shadow maps at Size, so
		// the region cannot be claimed by files or flagged as lost.
		sb.LogStart = sb.Size
		sb.LogFrags = int32(logFrags)
	}
	if sb.MetaFrags() >= sb.Fpg {
		return nil, fmt.Errorf("ufs: group metadata (%d frags) exceeds group size (%d)", sb.MetaFrags(), sb.Fpg)
	}
	sb.Dsize = sb.Ncg * (sb.Fpg - sb.MetaFrags())
	if o.Maxbpg == 0 {
		o.Maxbpg = int(sb.Fpg / sb.Frag / 2)
	}
	sb.Maxbpg = int32(o.Maxbpg)

	// Build each cylinder group: everything free except metadata.
	dataBlocksPerGroup := (sb.Fpg - sb.MetaFrags()) / sb.Frag
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		cg := NewCG(sb, cgx)
		cg.Ndblk = sb.Fpg - sb.MetaFrags()
		cg.Nifree = sb.Ipg
		cg.Nbfree = dataBlocksPerGroup
		for f := sb.MetaFrags(); f < sb.Fpg; f++ {
			setBit(cg.Blksfree, f)
		}
		if cgx == 0 {
			// Reserve inodes 0 and 1, allocate 2 for the root
			// directory, and give it the group's first data block.
			setBit(cg.Inosused, 0)
			setBit(cg.Inosused, 1)
			setBit(cg.Inosused, RootIno)
			cg.Nifree -= 3
			rootFsbn := sb.CgDmin(0)
			for i := int32(0); i < sb.Frag; i++ {
				clrBit(cg.Blksfree, sb.MetaFrags()+i)
			}
			cg.Nbfree--
			cg.Ndir = 1

			// Root directory data: "." and "..".
			blk := make([]byte, sb.Bsize)
			n := putDirent(blk, RootIno, ".")
			putDirentLast(blk[n:], RootIno, "..", int(sb.Bsize)-n)
			writeFrags(d, sb, rootFsbn, blk)

			// Root dinode.
			var di Dinode
			di.Mode = ModeDir | 0o755
			di.Nlink = 2
			di.Size = int64(sb.Bsize)
			di.DB[0] = rootFsbn
			di.Blocks = sb.Frag
			iblk := make([]byte, sb.Bsize)
			readFrags(d, sb, sb.InoToFsba(RootIno), iblk)
			di.MarshalInto(iblk[sb.InoBlockOff(RootIno):])
			writeFrags(d, sb, sb.InoToFsba(RootIno), iblk)

			sb.CsNdir = 1
		}
		sb.CsNbfree += cg.Nbfree
		sb.CsNifree += cg.Nifree
		writeFrags(d, sb, sb.CgHeader(cgx), cg.Marshal(sb))
	}

	sb.Clean = 1
	// Primary superblock plus a copy in every group's reserve area.
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		writeFrags(d, sb, sb.CgSBlock(cgx), sb.Marshal())
	}
	return sb, nil
}

// writeFrags writes fragment-aligned data straight to the image.
func writeFrags(d disk.Device, sb *Superblock, fsbn int32, data []byte) {
	if len(data)%int(sb.Fsize) != 0 {
		panic("ufs: unaligned metadata write") // simlint:invariant -- layout computes block-aligned addresses
	}
	d.WriteImage(sb.FsbToDb(fsbn), data)
}

// readFrags reads fragment-aligned data straight from the image.
func readFrags(d disk.Device, sb *Superblock, fsbn int32, data []byte) {
	if len(data)%int(sb.Fsize) != 0 {
		panic("ufs: unaligned metadata read") // simlint:invariant -- layout computes block-aligned addresses
	}
	d.ReadImage(sb.FsbToDb(fsbn), data)
}

// ReadSuperblock loads and validates the primary superblock from d.
func ReadSuperblock(d disk.Device) (*Superblock, error) {
	buf := make([]byte, SBSize)
	d.ReadImage(int64(sbFragOffset*SBSize)/disk.SectorSize, buf)
	return UnmarshalSuperblock(buf)
}
