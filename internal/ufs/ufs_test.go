package ufs

import (
	"strings"
	"testing"

	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
)

// testRig assembles a small disk + driver + mounted fs.
type testRig struct {
	s  *sim.Sim
	d  *disk.Disk
	dr *driver.Driver
	fs *Fs
	sb *Superblock
}

// smallDisk is ~25 MB so tests run fast: 96 cyls x 8 heads x 64 spt.
func smallGeom() *disk.Geometry { return disk.UniformGeometry(96, 8, 64, 3600) }

func newRig(t *testing.T, opts MkfsOpts) *testRig {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	p := disk.DefaultParams()
	p.Geom = smallGeom()
	d := disk.New(s, "d0", p)
	sb, err := Mkfs(d, opts)
	if err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	dr := driver.New(s, d, nil, driver.DefaultConfig())
	fs, err := Mount(s, nil, dr, MountOpts{})
	if err != nil {
		t.Fatalf("mount: %v", err)
	}
	_ = sb
	// Share the mounted superblock so tests observe live accounting.
	return &testRig{s: s, d: d, dr: dr, fs: fs, sb: fs.SB}
}

// run executes fn as a simulated process and drives the sim to quiet.
func (r *testRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.s.Spawn("test", fn)
	if err := r.s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// fsck flushes state and checks the image.
func (r *testRig) fsck(t *testing.T) *FsckReport {
	t.Helper()
	r.fs.SyncImage()
	rep, err := Fsck(r.d)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	return rep
}

func TestMkfsProducesCleanFs(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	rep := r.fsck(t)
	if !rep.Clean() {
		t.Fatalf("fresh fs not clean: %v", rep.Problems)
	}
	if rep.Dirs != 1 || rep.Files != 0 {
		t.Fatalf("fresh fs has %d dirs %d files", rep.Dirs, rep.Files)
	}
}

func TestSuperblockRoundTrip(t *testing.T) {
	r := newRig(t, MkfsOpts{Rotdelay: 4, Maxcontig: 1})
	sb2, err := ReadSuperblock(r.d)
	if err != nil {
		t.Fatal(err)
	}
	if *sb2 != *r.sb {
		t.Fatalf("superblock round trip mismatch:\n%+v\n%+v", r.sb, sb2)
	}
	if sb2.Rotdelay != 4 || sb2.Maxcontig != 1 {
		t.Fatal("tuning fields lost")
	}
}

func TestSuperblockReplicasWritten(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	for cgx := int32(0); cgx < r.sb.Ncg; cgx++ {
		buf := make([]byte, SBSize)
		r.d.ReadImage(r.sb.FsbToDb(r.sb.CgSBlock(cgx)), buf)
		sb, err := UnmarshalSuperblock(buf)
		if err != nil {
			t.Fatalf("cg %d replica: %v", cgx, err)
		}
		if sb.Size != r.sb.Size {
			t.Fatalf("cg %d replica differs", cgx)
		}
	}
}

func TestDinodeMarshalRoundTrip(t *testing.T) {
	d := Dinode{
		Mode: ModeReg | 0o644, Nlink: 3, UID: 7, GID: 8,
		Size: 123456789, Atime: 1, Mtime: 2, Ctime: 3,
		Flags: 9, Blocks: 88, Gen: 4,
	}
	for i := range d.DB {
		d.DB[i] = int32(1000 + i)
	}
	d.IB[0], d.IB[1] = 5000, 6000
	var buf [DinodeSize]byte
	d.MarshalInto(buf[:])
	got := UnmarshalDinode(buf[:])
	if got != d {
		t.Fatalf("dinode round trip:\n%+v\n%+v", d, got)
	}
}

func TestCGMarshalRoundTrip(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	cg := NewCG(r.sb, 3)
	cg.Nbfree = 42
	cg.Nffree = 7
	cg.Nifree = 500
	cg.Rotor = 96
	setBit(cg.Blksfree, 100)
	setBit(cg.Inosused, 5)
	got, err := UnmarshalCG(r.sb, cg.Marshal(r.sb))
	if err != nil {
		t.Fatal(err)
	}
	if got.CgHdr != cg.CgHdr {
		t.Fatalf("cg header round trip: %+v vs %+v", cg.CgHdr, got.CgHdr)
	}
	if !got.FragFree(100) || got.FragFree(101) {
		t.Fatal("blksfree bitmap lost")
	}
	if !got.InodeUsed(5) || got.InodeUsed(6) {
		t.Fatal("inosused bitmap lost")
	}
}

func TestCreateLookupFile(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, err := r.fs.Create(p, "/hello")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if !ip.D.IsReg() || ip.D.Nlink != 1 {
			t.Errorf("bad new inode %+v", ip.D)
		}
		got, err := r.fs.Namei(p, "/hello")
		if err != nil || got.Ino != ip.Ino {
			t.Errorf("namei: %v (ino %d vs %d)", err, got.Ino, ip.Ino)
		}
		if _, err := r.fs.Create(p, "/hello"); err != ErrExists {
			t.Errorf("duplicate create: %v, want ErrExists", err)
		}
		if _, err := r.fs.Namei(p, "/absent"); err != ErrNotFound {
			t.Errorf("missing lookup: %v, want ErrNotFound", err)
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestMkdirNested(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.fs.Mkdir(p, "/a"); err != nil {
			t.Errorf("mkdir /a: %v", err)
		}
		if _, err := r.fs.Mkdir(p, "/a/b"); err != nil {
			t.Errorf("mkdir /a/b: %v", err)
		}
		if _, err := r.fs.Create(p, "/a/b/f"); err != nil {
			t.Errorf("create: %v", err)
		}
		ip, err := r.fs.Namei(p, "/a/b/f")
		if err != nil || !ip.D.IsReg() {
			t.Errorf("namei /a/b/f: %v", err)
		}
		// Parent link counts: root has "." + /a's ".." = 3 with one subdir.
		root, _ := r.fs.Iget(p, RootIno)
		if root.D.Nlink != 3 {
			t.Errorf("root nlink = %d, want 3", root.D.Nlink)
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestRemoveFileFreesEverything(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	freeBefore := r.sb.CsNbfree
	r.run(t, func(p *sim.Proc) {
		ip, err := r.fs.Create(p, "/f")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// Give it 20 blocks (into the indirect range).
		for lbn := int64(0); lbn < 20; lbn++ {
			if _, err := r.fs.BmapAlloc(p, ip, lbn, int(r.sb.Bsize)); err != nil {
				t.Errorf("alloc lbn %d: %v", lbn, err)
				return
			}
			ip.D.Size = (lbn + 1) * int64(r.sb.Bsize)
		}
		ip.MarkDirty()
		if err := r.fs.Remove(p, "/f"); err != nil {
			t.Errorf("remove: %v", err)
		}
		if _, err := r.fs.Namei(p, "/f"); err != ErrNotFound {
			t.Errorf("lookup after remove: %v", err)
		}
	})
	rep := r.fsck(t)
	if !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
	if r.sb.CsNbfree != freeBefore {
		t.Fatalf("blocks leaked: %d free, was %d", r.sb.CsNbfree, freeBefore)
	}
}

func TestRemoveDirRules(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		r.fs.Mkdir(p, "/d")
		r.fs.Create(p, "/d/f")
		if err := r.fs.Remove(p, "/d"); err != ErrNotEmpty {
			t.Errorf("remove non-empty dir: %v, want ErrNotEmpty", err)
		}
		if err := r.fs.Remove(p, "/d/f"); err != nil {
			t.Errorf("remove file: %v", err)
		}
		if err := r.fs.Remove(p, "/d"); err != nil {
			t.Errorf("remove empty dir: %v", err)
		}
		root, _ := r.fs.Iget(p, RootIno)
		if root.D.Nlink != 2 {
			t.Errorf("root nlink = %d after rmdir, want 2", root.D.Nlink)
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestManyFilesInDirectory(t *testing.T) {
	// Force directory growth past one block and exercise slot reuse.
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		names := make([]string, 0, 400)
		for i := 0; i < 400; i++ {
			name := "/file-with-a-longish-name-" + itoa(i)
			names = append(names, name)
			if _, err := r.fs.Create(p, name); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
		root, _ := r.fs.Iget(p, RootIno)
		if root.D.Size <= int64(r.sb.Bsize) {
			t.Error("directory did not grow past one block")
		}
		// Remove every third, then re-create (slot reuse).
		for i := 0; i < 400; i += 3 {
			if err := r.fs.Remove(p, names[i]); err != nil {
				t.Errorf("remove %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 400; i += 3 {
			if _, err := r.fs.Create(p, names[i]); err != nil {
				t.Errorf("re-create %d: %v", i, err)
				return
			}
		}
		ents, err := r.fs.ReadDir(p, root)
		if err != nil {
			t.Errorf("readdir: %v", err)
		}
		if len(ents) != 402 { // 400 files + . + ..
			t.Errorf("readdir count = %d, want 402", len(ents))
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestContiguousAllocationWhenRotdelayZero(t *testing.T) {
	// rotdelay=0 (figure 5): successive blocks of a file are adjacent.
	r := newRig(t, MkfsOpts{Rotdelay: 0, Maxcontig: 7})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/f")
		var prev int32
		breaks := 0
		for lbn := int64(0); lbn < 64; lbn++ {
			fsbn, err := r.fs.BmapAlloc(p, ip, lbn, int(r.sb.Bsize))
			if err != nil {
				t.Errorf("alloc: %v", err)
				return
			}
			ip.D.Size = (lbn + 1) * int64(r.sb.Bsize)
			if lbn > 0 && fsbn != prev+r.sb.Frag {
				breaks++
			}
			prev = fsbn
		}
		// One break is expected where the single-indirect pointer block
		// is allocated in line (after lbn 11); anything more means the
		// allocator failed to lay the file out contiguously.
		if breaks > 1 {
			t.Errorf("%d extent breaks in 64 blocks on an empty fs, want <= 1", breaks)
		}
	})
}

func TestInterleavedAllocationWhenRotdelaySet(t *testing.T) {
	// rotdelay=4ms (figure 4): one-block gaps between successive blocks.
	r := newRig(t, MkfsOpts{Rotdelay: 4, Maxcontig: 1})
	gap := r.sb.GapBlocks()
	if gap != 1 {
		t.Fatalf("gapBlocks = %d, want 1 for 4ms on this geometry", gap)
	}
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/f")
		var prev int32
		for lbn := int64(0); lbn < 32; lbn++ {
			fsbn, err := r.fs.BmapAlloc(p, ip, lbn, int(r.sb.Bsize))
			if err != nil {
				t.Errorf("alloc: %v", err)
				return
			}
			ip.D.Size = (lbn + 1) * int64(r.sb.Bsize)
			if lbn > 0 && fsbn != prev+2*r.sb.Frag {
				t.Errorf("block %d at %d, want %d (one-block gap)", lbn, fsbn, prev+2*r.sb.Frag)
				return
			}
			prev = fsbn
		}
	})
}

func TestBmapReturnsContigLength(t *testing.T) {
	r := newRig(t, MkfsOpts{Rotdelay: 0, Maxcontig: 7})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/f")
		for lbn := int64(0); lbn < 32; lbn++ {
			if _, err := r.fs.BmapAlloc(p, ip, lbn, int(r.sb.Bsize)); err != nil {
				t.Errorf("alloc: %v", err)
				return
			}
			ip.D.Size = (lbn + 1) * int64(r.sb.Bsize)
		}
		fsbn, contig, err := r.fs.Bmap(p, ip, 0)
		if err != nil || fsbn == 0 {
			t.Errorf("bmap: %v", err)
		}
		if contig != 7 {
			t.Errorf("contig = %d, want maxcontig 7", contig)
		}
		// Near the end of the file the run is clipped.
		_, contig, _ = r.fs.Bmap(p, ip, 30)
		if contig != 2 {
			t.Errorf("contig at lbn 30 = %d, want 2 (file ends)", contig)
		}
	})
}

func TestBmapContigStopsAtGap(t *testing.T) {
	// With rotdelay placement every block is its own extent: bmap must
	// report runs of exactly 1 ("an old file system will always send
	// back a cluster of one block").
	r := newRig(t, MkfsOpts{Rotdelay: 4, Maxcontig: 7})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/f")
		for lbn := int64(0); lbn < 16; lbn++ {
			r.fs.BmapAlloc(p, ip, lbn, int(r.sb.Bsize))
			ip.D.Size = (lbn + 1) * int64(r.sb.Bsize)
		}
		for lbn := int64(0); lbn < 15; lbn++ {
			_, contig, _ := r.fs.Bmap(p, ip, lbn)
			if contig != 1 {
				t.Errorf("lbn %d contig = %d, want 1", lbn, contig)
				return
			}
		}
	})
}

func TestBmapHole(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/sparse")
		// Allocate only block 5.
		r.fs.BmapAlloc(p, ip, 5, int(r.sb.Bsize))
		ip.D.Size = 6 * int64(r.sb.Bsize)
		ip.MarkDirty()
		fsbn, _, err := r.fs.Bmap(p, ip, 2)
		if err != nil || fsbn != 0 {
			t.Errorf("hole bmap = %d, %v; want 0", fsbn, err)
		}
		fsbn, _, _ = r.fs.Bmap(p, ip, 5)
		if fsbn == 0 {
			t.Error("allocated block reads as hole")
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestIndirectBlocks(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	nindir := r.sb.NindirPerBlock()
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/big")
		// One block in each range: direct, single indirect, double.
		lbns := []int64{0, NDADDR, NDADDR + 5, NDADDR + nindir, NDADDR + nindir + nindir + 3}
		for _, lbn := range lbns {
			if _, err := r.fs.BmapAlloc(p, ip, lbn, int(r.sb.Bsize)); err != nil {
				t.Errorf("alloc lbn %d: %v", lbn, err)
				return
			}
			if end := (lbn + 1) * int64(r.sb.Bsize); end > ip.D.Size {
				ip.D.Size = end
			}
		}
		ip.MarkDirty()
		for _, lbn := range lbns {
			fsbn, _, err := r.fs.Bmap(p, ip, lbn)
			if err != nil || fsbn == 0 {
				t.Errorf("bmap lbn %d: fsbn %d err %v", lbn, fsbn, err)
			}
		}
		if ip.D.IB[0] == 0 || ip.D.IB[1] == 0 {
			t.Error("indirect blocks not allocated")
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestFragmentTailAllocation(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/small")
		// A 3000-byte file needs 3 fragments.
		fsbn, err := r.fs.BmapAlloc(p, ip, 0, 3000)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		ip.D.Size = 3000
		ip.MarkDirty()
		if ip.D.Blocks != 3 {
			t.Errorf("blocks = %d, want 3 fragments", ip.D.Blocks)
		}
		_ = fsbn
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestFragmentTailGrowsInPlace(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/grow")
		a, _ := r.fs.BmapAlloc(p, ip, 0, 1024)
		ip.D.Size = 1024
		b, err := r.fs.BmapAlloc(p, ip, 0, 4096)
		if err != nil {
			t.Errorf("grow: %v", err)
			return
		}
		ip.D.Size = 4096
		ip.MarkDirty()
		if a != b {
			t.Errorf("tail moved from %d to %d despite free space", a, b)
		}
		if ip.D.Blocks != 4 {
			t.Errorf("blocks = %d, want 4", ip.D.Blocks)
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestFragmentTailRelocatesWhenBlocked(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/a")
		a, _ := r.fs.BmapAlloc(p, ip, 0, 1024)
		ip.D.Size = 1024
		ip.MarkDirty()
		// A second file grabs the rest of that block's fragments.
		ip2, _ := r.fs.Create(p, "/b")
		b, err := r.fs.AllocFrags(p, ip2, a, 7)
		if err != nil || b != a+1 {
			t.Errorf("neighbour frags at %d (err %v), want %d", b, err, a+1)
			return
		}
		ip2.D.DB[0] = b
		ip2.D.Size = 7 * 1024
		ip2.MarkDirty()
		// Growing /a's tail must now relocate it.
		c, err := r.fs.BmapAlloc(p, ip, 0, 3000)
		if err != nil {
			t.Errorf("grow: %v", err)
			return
		}
		ip.D.Size = 3000
		ip.MarkDirty()
		if c == a {
			t.Error("tail did not relocate out of a blocked fragment run")
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestTruncatePartial(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/t")
		for lbn := int64(0); lbn < 30; lbn++ {
			r.fs.BmapAlloc(p, ip, lbn, int(r.sb.Bsize))
			ip.D.Size = (lbn + 1) * int64(r.sb.Bsize)
		}
		ip.MarkDirty()
		if err := r.fs.Truncate(p, ip, 5*int64(r.sb.Bsize)); err != nil {
			t.Errorf("truncate: %v", err)
		}
		if ip.D.Size != 5*int64(r.sb.Bsize) {
			t.Errorf("size = %d", ip.D.Size)
		}
		fsbn, _, _ := r.fs.Bmap(p, ip, 10)
		if fsbn != 0 {
			t.Error("truncated block still mapped")
		}
		if ip.D.IB[0] != 0 {
			t.Error("indirect block survived truncate below direct range")
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestMinfreeReserveEnforced(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/hog")
		var lbn int64
		for {
			_, err := r.fs.BmapAlloc(p, ip, lbn, int(r.sb.Bsize))
			if err == ErrNoSpace {
				break
			}
			if err != nil {
				t.Errorf("alloc: %v", err)
				return
			}
			ip.D.Size = (lbn + 1) * int64(r.sb.Bsize)
			lbn++
		}
		free := float64(r.fs.freeFragsTotal()) / float64(r.sb.Dsize)
		if free < 0.08 || free > 0.13 {
			t.Errorf("free fraction at ENOSPC = %.3f, want ~0.10 (minfree)", free)
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestIAllocExhaustion(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		seen := make(map[int32]bool)
		for {
			ino, err := r.fs.IAlloc(p, nil, false)
			if err == ErrNoInodes {
				break
			}
			if err != nil {
				t.Errorf("ialloc: %v", err)
				return
			}
			if seen[ino] {
				t.Errorf("inode %d allocated twice", ino)
				return
			}
			seen[ino] = true
		}
		want := int(r.sb.Ncg*r.sb.Ipg) - 3 // minus 0, 1, root
		if len(seen) != want {
			t.Errorf("allocated %d inodes, want %d", len(seen), want)
		}
	})
}

func TestSyncSurvivesRemount(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/persist")
		r.fs.BmapAlloc(p, ip, 0, int(r.sb.Bsize))
		ip.D.Size = int64(r.sb.Bsize)
		ip.MarkDirty()
		r.fs.Sync(p)
	})
	// Remount from the image and look the file up.
	s2 := sim.New(2)
	t.Cleanup(s2.Close)
	p2 := disk.DefaultParams()
	p2.Geom = smallGeom()
	d2 := disk.New(s2, "d0", p2)
	// Copy the image across by reading/writing sectors.
	buf := make([]byte, 64*512)
	for sec := int64(0); sec < r.d.Geom().TotalSectors(); sec += 64 {
		r.d.ReadImage(sec, buf)
		d2.WriteImage(sec, buf)
	}
	dr2 := driver.New(s2, d2, nil, driver.DefaultConfig())
	fs2, err := Mount(s2, nil, dr2, MountOpts{})
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	s2.Spawn("check", func(p *sim.Proc) {
		ip, err := fs2.Namei(p, "/persist")
		if err != nil {
			t.Errorf("namei after remount: %v", err)
			return
		}
		if ip.D.Size != int64(fs2.SB.Bsize) {
			t.Errorf("size after remount = %d", ip.D.Size)
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGapBlocksComputation(t *testing.T) {
	r := newRig(t, MkfsOpts{Rotdelay: 4})
	if g := r.sb.GapBlocks(); g != 1 {
		t.Errorf("4ms gap = %d blocks, want 1", g)
	}
	r.sb.Rotdelay = 0
	if g := r.sb.GapBlocks(); g != 0 {
		t.Errorf("0ms gap = %d, want 0", g)
	}
	r.sb.Rotdelay = 9
	if g := r.sb.GapBlocks(); g != 3 {
		t.Errorf("9ms gap = %d blocks, want 3", g)
	}
}

func TestBlkSize(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	sb := r.sb
	cases := []struct {
		size int64
		lbn  int64
		want int
	}{
		{16384, 0, 8192},
		{16384, 1, 8192},
		{9000, 1, 1024},  // 808 bytes -> 1 frag
		{12000, 1, 4096}, // 3808 bytes -> 4 frags
		{8192, 0, 8192},
		{100, 0, 1024},
	}
	for _, c := range cases {
		if got := sb.BlkSize(c.size, c.lbn); got != c.want {
			t.Errorf("BlkSize(%d, %d) = %d, want %d", c.size, c.lbn, got, c.want)
		}
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/f")
		r.fs.BmapAlloc(p, ip, 0, int(r.sb.Bsize))
		ip.D.Size = int64(r.sb.Bsize)
		ip.MarkDirty()
	})
	r.fs.SyncImage()
	// Corrupt: point the file's first block into metadata.
	blk := make([]byte, r.sb.Bsize)
	fsba := r.sb.InoToFsba(RootIno + 1)
	r.d.ReadImage(r.sb.FsbToDb(fsba), blk)
	// Find the file inode (first non-reserved allocated after root).
	var target int32 = -1
	for ino := int32(RootIno + 1); ino < r.sb.Ipg; ino++ {
		di := UnmarshalDinode(blk[r.sb.InoBlockOff(ino) : r.sb.InoBlockOff(ino)+DinodeSize])
		if di.Allocated() {
			target = ino
			di.DB[0] = r.sb.CgHeader(0) // metadata!
			di.MarshalInto(blk[r.sb.InoBlockOff(ino) : r.sb.InoBlockOff(ino)+DinodeSize])
			break
		}
	}
	if target < 0 {
		t.Fatal("could not find test inode")
	}
	r.d.WriteImage(r.sb.FsbToDb(fsba), blk)
	rep, err := Fsck(r.d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed a block pointer into metadata")
	}
}

func TestBufferCacheHitAvoidsIO(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		b, _ := r.fs.BC.Bread(p, r.sb.CgHeader(1))
		r.fs.BC.Brelse(b)
		miss := r.fs.BC.Misses
		b, _ = r.fs.BC.Bread(p, r.sb.CgHeader(1))
		r.fs.BC.Brelse(b)
		if r.fs.BC.Misses != miss {
			t.Error("second bread missed")
		}
		if r.fs.BC.Hits == 0 {
			t.Error("no hits recorded")
		}
	})
}

func TestBufferCacheEvictsLRUAndWritesDirty(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	// Tiny cache to force eviction.
	r.fs.BC = NewBcache(r.s, nil, r.dr, r.sb, 4)
	r.run(t, func(p *sim.Proc) {
		b, _ := r.fs.BC.Bread(p, r.sb.CgHeader(0))
		b.Data[100] = 99
		r.fs.BC.Bdwrite(b)
		// Touch enough other blocks to evict it.
		for cg := int32(1); cg <= 4; cg++ {
			bb, _ := r.fs.BC.Bread(p, r.sb.CgHeader(cg))
			r.fs.BC.Brelse(bb)
		}
		if r.fs.BC.Evictions == 0 {
			t.Error("nothing evicted from a 4-buffer cache")
		}
		// The dirty data must have reached the image.
		blk := make([]byte, r.sb.Bsize)
		r.d.ReadImage(r.sb.FsbToDb(r.sb.CgHeader(0)), blk)
		if blk[100] != 99 {
			t.Error("evicted dirty buffer lost its data")
		}
	})
}

func TestFsckDetectsDuplicateClaims(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		a, _ := r.fs.Create(p, "/a")
		r.fs.BmapAlloc(p, a, 0, int(r.sb.Bsize))
		a.D.Size = int64(r.sb.Bsize)
		a.MarkDirty()
		b, _ := r.fs.Create(p, "/b")
		// Corrupt: /b points at /a's block.
		b.D.DB[0] = a.D.DB[0]
		b.D.Size = int64(r.sb.Bsize)
		b.D.Blocks = r.sb.Frag
		b.MarkDirty()
	})
	r.fs.SyncImage()
	rep, err := Fsck(r.d)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "multiply claimed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck missed a duplicate block claim: %v", rep.Problems)
	}
}

func TestFsckDetectsBadLinkCount(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/f")
		ip.D.Nlink = 5 // lie
		ip.MarkDirty()
	})
	r.fs.SyncImage()
	rep, err := Fsck(r.d)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "link count") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck missed a bad link count: %v", rep.Problems)
	}
}

func TestFsckDetectsOrphanDirectory(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		dip, _ := r.fs.Mkdir(p, "/d")
		// Corrupt: remove the name but keep the inode allocated.
		if _, err := r.fs.DirRemove(p, mustIget(t, r, p, RootIno), "d"); err != nil {
			t.Errorf("dirremove: %v", err)
		}
		_ = dip
	})
	r.fs.SyncImage()
	rep, err := Fsck(r.d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed an orphan directory")
	}
}

func mustIget(t *testing.T, r *testRig, p *sim.Proc, ino int32) *Inode {
	t.Helper()
	ip, err := r.fs.Iget(p, ino)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestFsckDetectsCorruptDirent(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		r.fs.Create(p, "/x")
	})
	r.fs.SyncImage()
	// Smash the root directory block's reclen.
	root := r.sb.CgDmin(0)
	blk := make([]byte, r.sb.Bsize)
	r.d.ReadImage(r.sb.FsbToDb(root), blk)
	blk[4], blk[5] = 3, 0 // reclen 3: not 4-aligned, below minimum
	r.d.WriteImage(r.sb.FsbToDb(root), blk)
	rep, err := Fsck(r.d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed a corrupt directory entry")
	}
}
