// Package ufs implements Sun's UNIX File System — the BSD Fast File
// System under the vnode architecture — at the byte level: superblock,
// cylinder groups with fragment/inode bitmaps, 128-byte dinodes with
// direct and indirect block pointers, FFS directories, the FFS block
// allocator with rotdelay/maxcontig placement, and bmap extended to
// return the contiguous run length (the paper's one allocator-facing
// change).
//
// The headline constraint of the paper is that the on-disk format does
// not change: the legacy block-at-a-time engine and the clustering
// engine in internal/core both run over images produced by this
// package's Mkfs, and cmd/fsck verifies them.
package ufs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"ufsclust/internal/disk"
)

// Fundamental sizes. The fragment is the unit of allocation addressing
// (fsbn = fragment number); the block is the unit of I/O.
const (
	MinBlockSize = 4096
	MaxBlockSize = 8192

	// DinodeSize is the on-disk inode size in bytes.
	DinodeSize = 128

	// NDADDR and NIADDR are the direct and indirect pointer counts.
	NDADDR = 12
	NIADDR = 2

	// RootIno is the root directory's inode number; inode 0 is reserved
	// as the "no inode" sentinel and 1 was historically for bad blocks.
	RootIno = 2

	// Magic marks a valid superblock.
	Magic = 0x011954 // FFS's historic magic

	// CGMagic marks a valid cylinder group header.
	CGMagic = 0x090255

	// sbFrag is the fragment address of the primary superblock
	// (byte offset 8 KB, after the boot area).
	sbFragOffset = 8 // within a cylinder group, in 1 KB fragments

	// groupReserve is the per-group reserved area before the cg header:
	// 16 fragments (boot area in group 0, superblock copy space in all
	// groups).
	groupReserve = 16
)

// Superblock is the on-disk file system description. All fields are
// fixed-size so it marshals with encoding/binary.
type Superblock struct {
	FsMagic int32
	Bsize   int32 // block size, bytes
	Fsize   int32 // fragment size, bytes
	Frag    int32 // fragments per block

	Size  int32 // total fragments
	Dsize int32 // data fragments
	Ncg   int32 // cylinder groups
	Fpg   int32 // fragments per group
	Ipg   int32 // inodes per group (multiple of inodes-per-block)
	Cpg   int32 // cylinders per group

	Minfree int32 // percent of space held back from users

	// Rotdelay is the expected head-turnaround time in milliseconds;
	// the allocator leaves this much gap between successive blocks.
	// Zero means allocate contiguously.
	Rotdelay int32
	// Maxcontig: with Rotdelay zero, the desired cluster size in
	// blocks ("now it always indicates cluster size").
	Maxcontig int32
	// Maxbpg caps the blocks one file may allocate in a cylinder group
	// before the allocator moves it to a fresh group — FFS's defense
	// against a single file exhausting a group. It is why even the
	// best-case extents in the paper's experiment average ~1.5 MB
	// rather than a whole group.
	Maxbpg int32

	// Geometry as mkfs saw it.
	Nsect int32 // sectors per track
	Ntrak int32 // tracks (heads) per cylinder
	Spc   int32 // sectors per cylinder
	Rps   int32 // revolutions per second

	// Summary totals.
	CsNdir   int32
	CsNbfree int32 // free blocks
	CsNifree int32
	CsNffree int32 // free fragments in partial blocks

	Time  int64 // last update
	Clean int32 // clean-unmount flag
	Fmod  int32 // superblock modified flag

	// Metadata journal region (zero on unjournaled images — the fields
	// were appended to the layout, so pre-journal superblocks decode
	// with LogFrags == 0 and nothing changes for them). The log lives
	// in the fragments [LogStart, LogStart+LogFrags), placed beyond
	// Size so it is structurally invisible to Fsck and Repair, whose
	// fragment maps are bounded by Size.
	LogStart int32 // first fragment of the log region
	LogFrags int32 // log region length in fragments (0 = no journal)
}

// SBSize is the marshaled superblock size budget (one fragment).
const SBSize = 1024

// FragsPerBlock returns Frag as int.
func (sb *Superblock) FragsPerBlock() int { return int(sb.Frag) }

// InodesPerBlock returns how many dinodes fit one block.
func (sb *Superblock) InodesPerBlock() int { return int(sb.Bsize) / DinodeSize }

// FsbToDb converts a fragment address to a 512-byte sector address.
func (sb *Superblock) FsbToDb(fsbn int32) int64 {
	return int64(fsbn) * int64(sb.Fsize) / disk.SectorSize
}

// CgBase returns the first fragment of cylinder group cg.
func (sb *Superblock) CgBase(cg int32) int32 { return cg * sb.Fpg }

// CgSBlock returns the fragment address of group cg's superblock copy
// (the primary superblock for group 0).
func (sb *Superblock) CgSBlock(cg int32) int32 { return sb.CgBase(cg) + sbFragOffset }

// CgHeader returns the fragment address of group cg's header block.
func (sb *Superblock) CgHeader(cg int32) int32 { return sb.CgBase(cg) + groupReserve }

// CgIblock returns the fragment address of group cg's first inode block.
func (sb *Superblock) CgIblock(cg int32) int32 { return sb.CgHeader(cg) + sb.Frag }

// InodeBlocks returns the number of blocks holding inodes per group.
func (sb *Superblock) InodeBlocks() int32 {
	return (sb.Ipg + int32(sb.InodesPerBlock()) - 1) / int32(sb.InodesPerBlock())
}

// CgDmin returns the first data fragment of group cg.
func (sb *Superblock) CgDmin(cg int32) int32 {
	return sb.CgIblock(cg) + sb.InodeBlocks()*sb.Frag
}

// MetaFrags returns the per-group fragment count reserved for metadata.
func (sb *Superblock) MetaFrags() int32 {
	return groupReserve + sb.Frag + sb.InodeBlocks()*sb.Frag
}

// InoToCg returns the group holding inode ino.
func (sb *Superblock) InoToCg(ino int32) int32 { return ino / sb.Ipg }

// InoToFsba returns the fragment address of the block containing ino.
func (sb *Superblock) InoToFsba(ino int32) int32 {
	cg := sb.InoToCg(ino)
	blk := (ino % sb.Ipg) / int32(sb.InodesPerBlock())
	return sb.CgIblock(cg) + blk*sb.Frag
}

// InoBlockOff returns ino's byte offset within its inode block.
func (sb *Superblock) InoBlockOff(ino int32) int {
	return int(ino%sb.Ipg) % sb.InodesPerBlock() * DinodeSize
}

// DtoCg returns the group holding fragment fsbn.
func (sb *Superblock) DtoCg(fsbn int32) int32 { return fsbn / sb.Fpg }

// Lblkno returns the logical block holding byte offset off.
func (sb *Superblock) Lblkno(off int64) int64 { return off / int64(sb.Bsize) }

// Blkoff returns off's offset within its block.
func (sb *Superblock) Blkoff(off int64) int { return int(off % int64(sb.Bsize)) }

// BlkSize returns the valid data size of logical block lbn of a file of
// the given length: a full block, or the fragment-rounded tail.
func (sb *Superblock) BlkSize(size int64, lbn int64) int {
	if (lbn+1)*int64(sb.Bsize) <= size {
		return int(sb.Bsize)
	}
	tail := size - lbn*int64(sb.Bsize)
	if tail <= 0 {
		return 0
	}
	// Round up to fragments.
	f := int64(sb.Fsize)
	return int((tail + f - 1) / f * f)
}

// NindirPerBlock returns how many block addresses one indirect block
// holds.
func (sb *Superblock) NindirPerBlock() int64 { return int64(sb.Bsize) / 4 }

// MaxFileBlocks returns the largest addressable logical block count.
func (sb *Superblock) MaxFileBlocks() int64 {
	n := sb.NindirPerBlock()
	return NDADDR + n + n*n
}

// Marshal encodes the superblock into a fragment-sized buffer.
func (sb *Superblock) Marshal() []byte {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, sb); err != nil {
		panic(err) // simlint:invariant -- bytes.Buffer writes cannot fail
	}
	out := make([]byte, SBSize)
	copy(out, buf.Bytes())
	return out
}

// UnmarshalSuperblock decodes and validates a superblock.
func UnmarshalSuperblock(data []byte) (*Superblock, error) {
	sb := new(Superblock)
	if err := binary.Read(bytes.NewReader(data), binary.LittleEndian, sb); err != nil {
		return nil, err
	}
	if sb.FsMagic != Magic {
		return nil, fmt.Errorf("ufs: bad superblock magic %#x", sb.FsMagic)
	}
	if sb.Bsize < MinBlockSize || sb.Bsize > MaxBlockSize || sb.Fsize <= 0 ||
		sb.Frag != sb.Bsize/sb.Fsize || sb.Ncg <= 0 || sb.Fpg <= 0 || sb.Ipg <= 0 {
		return nil, errors.New("ufs: inconsistent superblock")
	}
	return sb, nil
}

// Dinode is the on-disk inode.
type Dinode struct {
	Mode   uint16
	Nlink  int16
	UID    uint32
	GID    uint32
	Size   int64
	Atime  int64
	Mtime  int64
	Ctime  int64
	DB     [NDADDR]int32 // direct fragment addresses (0 = hole)
	IB     [NIADDR]int32 // single, double indirect
	Flags  uint32
	Blocks int32 // fragments held, for du/quota and fsck
	Gen    uint32
	Spare  [3]uint32
}

// Mode bits.
const (
	ModeFmt  uint16 = 0xF000
	ModeDir  uint16 = 0x4000
	ModeReg  uint16 = 0x8000
	ModeLink uint16 = 0xA000
)

// IsDir reports whether the inode is a directory.
func (d *Dinode) IsDir() bool { return d.Mode&ModeFmt == ModeDir }

// IsReg reports whether the inode is a regular file.
func (d *Dinode) IsReg() bool { return d.Mode&ModeFmt == ModeReg }

// Allocated reports whether the inode is in use.
func (d *Dinode) Allocated() bool { return d.Mode != 0 }

// MarshalInto encodes the dinode into dst (DinodeSize bytes).
func (d *Dinode) MarshalInto(dst []byte) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, d); err != nil {
		panic(err) // simlint:invariant -- bytes.Buffer writes cannot fail
	}
	if buf.Len() > DinodeSize {
		panic(fmt.Sprintf("ufs: dinode marshals to %d bytes", buf.Len())) // simlint:invariant -- marshal size is fixed by the layout
	}
	for i := range dst[:DinodeSize] {
		dst[i] = 0
	}
	copy(dst, buf.Bytes())
}

// UnmarshalDinode decodes a dinode.
func UnmarshalDinode(src []byte) Dinode {
	var d Dinode
	if err := binary.Read(bytes.NewReader(src), binary.LittleEndian, &d); err != nil {
		panic(err) // simlint:invariant -- bytes.Buffer writes cannot fail
	}
	return d
}

// CgHdr is the fixed part of an on-disk cylinder group header; the
// inode and fragment bitmaps follow it in the header block.
type CgHdr struct {
	Magic  int32
	Cgx    int32 // group index
	Ndblk  int32 // data fragments in this group
	Nbfree int32 // free full blocks
	Nifree int32
	Nffree int32 // free frags (in partial blocks)
	Ndir   int32
	Rotor  int32 // next-block search rotor (fragment, group-relative)
	Frotor int32 // fragment search rotor
	Irotor int32 // inode search rotor
}

// cgHdrSize is the marshaled CgHdr size.
var cgHdrSize = binary.Size(CgHdr{})

// CG is an in-memory cylinder group: header plus bitmaps. The inosused
// bitmap has 1 = allocated; the blksfree bitmap has 1 = free (matching
// FFS conventions).
type CG struct {
	CgHdr
	Inosused []byte // ipg bits
	Blksfree []byte // fpg bits
}

// NewCG builds an empty group for mkfs.
func NewCG(sb *Superblock, cgx int32) *CG {
	cg := &CG{
		CgHdr:    CgHdr{Magic: CGMagic, Cgx: cgx},
		Inosused: make([]byte, (sb.Ipg+7)/8),
		Blksfree: make([]byte, (sb.Fpg+7)/8),
	}
	return cg
}

// Marshal encodes the group into a block-sized buffer.
func (cg *CG) Marshal(sb *Superblock) []byte {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, &cg.CgHdr); err != nil {
		panic(err) // simlint:invariant -- bytes.Buffer writes cannot fail
	}
	buf.Write(cg.Inosused)
	buf.Write(cg.Blksfree)
	if buf.Len() > int(sb.Bsize) {
		panic("ufs: cylinder group overflows header block") // simlint:invariant -- mkfs sizes groups to fit the header block
	}
	out := make([]byte, sb.Bsize)
	copy(out, buf.Bytes())
	return out
}

// UnmarshalCG decodes a group read from disk.
func UnmarshalCG(sb *Superblock, data []byte) (*CG, error) {
	cg := new(CG)
	r := bytes.NewReader(data)
	if err := binary.Read(r, binary.LittleEndian, &cg.CgHdr); err != nil {
		return nil, err
	}
	if cg.Magic != CGMagic {
		return nil, fmt.Errorf("ufs: bad cylinder group magic %#x", cg.Magic)
	}
	off := cgHdrSize
	ni := int((sb.Ipg + 7) / 8)
	nb := int((sb.Fpg + 7) / 8)
	if off+ni+nb > len(data) {
		return nil, errors.New("ufs: cylinder group truncated")
	}
	cg.Inosused = append([]byte(nil), data[off:off+ni]...)
	cg.Blksfree = append([]byte(nil), data[off+ni:off+ni+nb]...)
	return cg, nil
}

// --- bitmap helpers -------------------------------------------------------

// bitSet reports bit i of bm.
func bitSet(bm []byte, i int32) bool { return bm[i>>3]&(1<<(i&7)) != 0 }

// setBit sets bit i.
func setBit(bm []byte, i int32) { bm[i>>3] |= 1 << (i & 7) }

// clrBit clears bit i.
func clrBit(bm []byte, i int32) { bm[i>>3] &^= 1 << (i & 7) }

// FragFree reports whether group-relative fragment f is free.
func (cg *CG) FragFree(f int32) bool { return bitSet(cg.Blksfree, f) }

// BlockFree reports whether the whole block starting at group-relative
// fragment f is free.
func (cg *CG) BlockFree(f int32, frag int32) bool {
	for i := int32(0); i < frag; i++ {
		if !bitSet(cg.Blksfree, f+i) {
			return false
		}
	}
	return true
}

// InodeUsed reports whether group-relative inode i is allocated.
func (cg *CG) InodeUsed(i int32) bool { return bitSet(cg.Inosused, i) }
