package ufs

import (
	"fmt"
	"strings"
	"testing"

	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
)

func newRigOpts(t *testing.T, mkfs MkfsOpts, mo MountOpts) *testRig {
	t.Helper()
	r := newRig(t, mkfs)
	fs, err := Mount(r.s, nil, r.dr, mo)
	if err != nil {
		t.Fatal(err)
	}
	r.fs = fs
	r.sb = fs.SB
	return r
}

func TestOrderedWritesReplaceSyncMeta(t *testing.T) {
	r := newRigOpts(t, MkfsOpts{}, MountOpts{OrderedWrites: true})
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := r.fs.Create(p, fmt.Sprintf("/f%d", i)); err != nil {
				t.Errorf("create: %v", err)
				return
			}
		}
	})
	if r.fs.SyncMetaWrites != 0 {
		t.Errorf("sync metadata writes = %d with B_ORDER enabled", r.fs.SyncMetaWrites)
	}
	if r.fs.OrderedMetaWrites < 5 {
		t.Errorf("ordered metadata writes = %d, want >= 5", r.fs.OrderedMetaWrites)
	}
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck after ordered-write workload: %v", rep.Problems)
	}
}

func TestOrderedWritesFasterRmStar(t *testing.T) {
	// Further Work, B_ORDER: "If the I/O were flushed to disk ... the
	// file system would be able to do many operations asynchronously.
	// The performance of commands like rm * would improve
	// substantially."
	const nfiles = 60
	workload := func(mo MountOpts) sim.Time {
		r := newRigOpts(t, MkfsOpts{}, mo)
		var elapsed sim.Time
		r.run(t, func(p *sim.Proc) {
			for i := 0; i < nfiles; i++ {
				ip, err := r.fs.Create(p, fmt.Sprintf("/f%d", i))
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if _, err := r.fs.BmapAlloc(p, ip, 0, int(r.sb.Bsize)); err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				ip.D.Size = int64(r.sb.Bsize)
				ip.MarkDirty()
			}
			t0 := p.Now()
			// rm *
			for i := 0; i < nfiles; i++ {
				if err := r.fs.Remove(p, fmt.Sprintf("/f%d", i)); err != nil {
					t.Errorf("remove: %v", err)
					return
				}
			}
			elapsed = p.Now() - t0
		})
		if rep := r.fsck(t); !rep.Clean() {
			t.Fatalf("fsck: %v", rep.Problems)
		}
		return elapsed
	}
	syncTime := workload(MountOpts{})
	orderedTime := workload(MountOpts{OrderedWrites: true})
	t.Logf("rm * of %d files: sync %v, ordered %v", nfiles, syncTime, orderedTime)
	// "The performance of commands like rm * would improve
	// substantially": the user-visible latency must at least halve.
	// (With no CPU model attached it collapses to the queueing cost.)
	if orderedTime > syncTime/2 {
		t.Errorf("rm * with B_ORDER = %v, want < half of synchronous %v", orderedTime, syncTime)
	}
}

func TestOrderedWritesKeepDriverOrder(t *testing.T) {
	// The ordered metadata writes must reach the drive in issue order
	// even when disksort would prefer otherwise.
	r := newRigOpts(t, MkfsOpts{}, MountOpts{OrderedWrites: true})
	var completions []int64
	r.run(t, func(p *sim.Proc) {
		// Hold the drive busy, then issue ordered writes at descending
		// addresses (disksort would reverse them).
		busy := &driver.Buf{Blkno: 40000, Data: make([]byte, 512)}
		r.dr.Strategy(p, busy)
		for i := 3; i >= 1; i-- {
			blk := int64(i * 10000)
			r.dr.Strategy(p, &driver.Buf{
				Blkno: blk, Data: make([]byte, 512), Write: true, Order: true,
				Iodone: func(b *driver.Buf) { completions = append(completions, b.Blkno) },
			})
		}
		p.Sleep(2 * sim.Second)
	})
	want := []int64{30000, 20000, 10000}
	if len(completions) != 3 {
		t.Fatalf("completions = %v", completions)
	}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("ordered writes completed as %v, want %v", completions, want)
		}
	}
}

func TestBmapCacheConsistencyUnderGrowth(t *testing.T) {
	r := newRigOpts(t, MkfsOpts{Rotdelay: 0, Maxcontig: 15}, MountOpts{BmapCache: true})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/grow")
		for lbn := int64(0); lbn < 40; lbn++ {
			if _, err := r.fs.BmapAlloc(p, ip, lbn, int(r.sb.Bsize)); err != nil {
				t.Errorf("alloc: %v", err)
				return
			}
			ip.D.Size = (lbn + 1) * int64(r.sb.Bsize)
			// Interleave lookups so the cache is hot during growth.
			fsbnCached, _, err := r.fs.Bmap(p, ip, lbn)
			if err != nil {
				t.Errorf("bmap: %v", err)
				return
			}
			// Compare with the uncached truth.
			r.fs.BmapCache = false
			ip.InvalidateBmapCache()
			fsbnTrue, _, _ := r.fs.Bmap(p, ip, lbn)
			r.fs.BmapCache = true
			if fsbnCached != fsbnTrue {
				t.Errorf("lbn %d: cached %d != true %d", lbn, fsbnCached, fsbnTrue)
				return
			}
		}
	})
}

// --- Symlinks (the precedent the paper cites for data-in-inode) -------------

func TestFastSymlink(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, err := r.fs.Create(p, "/realfile")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		_ = ip
		if err := r.fs.Symlink(p, "/link", "/realfile"); err != nil {
			t.Errorf("symlink: %v", err)
			return
		}
		// Readlink serves from the inode: no buffer-cache reads needed
		// beyond the inode block itself.
		lip, err := r.fs.Iget(p, mustLookup(t, r, p, "/link"))
		if err != nil {
			t.Errorf("iget: %v", err)
			return
		}
		target, err := r.fs.Readlink(lip)
		if err != nil || target != "/realfile" {
			t.Errorf("readlink = %q, %v", target, err)
		}
		if lip.D.Blocks != 0 {
			t.Errorf("fast symlink holds %d fragments", lip.D.Blocks)
		}
		// Namei follows it.
		got, err := r.fs.Namei(p, "/link")
		if err != nil || !got.D.IsReg() {
			t.Errorf("namei through link: %v", err)
		}
		// Loops are bounded.
		r.fs.Symlink(p, "/loopA", "/loopB")
		r.fs.Symlink(p, "/loopB", "/loopA")
		if _, err := r.fs.Namei(p, "/loopA"); err == nil {
			t.Error("symlink loop resolved")
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

// mustLookup returns the inode number for a direct (non-followed) name.
func mustLookup(t *testing.T, r *testRig, p *sim.Proc, path string) int32 {
	t.Helper()
	root, err := r.fs.Iget(p, RootIno)
	if err != nil {
		t.Fatal(err)
	}
	ino, err := r.fs.DirLookup(p, root, path[1:])
	if err != nil {
		t.Fatal(err)
	}
	return ino
}

func TestSymlinkTargetTooLong(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		long := "/" + strings.Repeat("x", MaxFastLink)
		if err := r.fs.Symlink(p, "/l", long); err == nil {
			t.Error("oversized symlink target accepted")
		}
	})
}

// --- Rename ------------------------------------------------------------------

func TestRenameBasic(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		ip, _ := r.fs.Create(p, "/old")
		r.fs.BmapAlloc(p, ip, 0, 1024)
		ip.D.Size = 1024
		ip.MarkDirty()
		if err := r.fs.Rename(p, "/old", "/new"); err != nil {
			t.Errorf("rename: %v", err)
			return
		}
		if _, err := r.fs.Namei(p, "/old"); err != ErrNotFound {
			t.Errorf("old name survives: %v", err)
		}
		got, err := r.fs.Namei(p, "/new")
		if err != nil || got.Ino != ip.Ino {
			t.Errorf("new name: %v", err)
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestRenameAcrossDirectoriesReplacingTarget(t *testing.T) {
	r := newRig(t, MkfsOpts{})
	r.run(t, func(p *sim.Proc) {
		r.fs.Mkdir(p, "/a")
		r.fs.Mkdir(p, "/b")
		src, _ := r.fs.Create(p, "/a/f")
		victim, _ := r.fs.Create(p, "/b/f")
		r.fs.BmapAlloc(p, victim, 0, int(r.sb.Bsize))
		victim.D.Size = int64(r.sb.Bsize)
		victim.MarkDirty()
		free0 := r.sb.CsNbfree
		if err := r.fs.Rename(p, "/a/f", "/b/f"); err != nil {
			t.Errorf("rename: %v", err)
			return
		}
		got, err := r.fs.Namei(p, "/b/f")
		if err != nil || got.Ino != src.Ino {
			t.Errorf("target not replaced: %v", err)
		}
		if r.sb.CsNbfree != free0+1 {
			t.Errorf("victim's block not freed (%d -> %d)", free0, r.sb.CsNbfree)
		}
	})
	if rep := r.fsck(t); !rep.Clean() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}
