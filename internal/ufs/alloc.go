package ufs

import (
	"errors"

	"ufsclust/internal/cpu"
	"ufsclust/internal/sim"
)

// ErrNoSpace is returned when an allocation would eat into the minfree
// reserve — the slack that, per the paper, is what lets the allocator
// "think ahead enough that it has a good chance of being able to
// allocate blocks in the desired location".
var ErrNoSpace = errors.New("ufs: file system full")

// ErrNoInodes is returned when no inode is free.
var ErrNoInodes = errors.New("ufs: out of inodes")

const allocInstr = 1800 // CPU instructions charged per allocator call

// GapBlocks returns how many blocks the allocator leaves between
// consecutive logical blocks: the software-maintained rotational delay
// of figure 4. Zero when rotdelay is zero (figure 5).
func (sb *Superblock) GapBlocks() int32 {
	if sb.Rotdelay <= 0 {
		return 0
	}
	// Sectors passing per millisecond, times the delay, rounded up to
	// blocks.
	sectorsPerBlock := sb.Bsize / 512
	sectors := sb.Rotdelay * sb.Nsect * sb.Rps / 1000
	g := (sectors + sectorsPerBlock - 1) / sectorsPerBlock
	if g < 1 {
		g = 1
	}
	return g
}

// BlkPref computes the preferred location for logical block lbn of ip,
// given the fragment address of the previous allocated block (0 if
// none). This is where rotdelay placement happens: with a gap of g
// blocks the preference is prev + (1+g) blocks. Every maxbpg blocks the
// preference jumps to a cylinder group with above-average free space,
// so one file cannot exhaust a group.
func (fs *Fs) BlkPref(ip *Inode, lbn int64, prev int32) int32 {
	if prev > 0 {
		if mb := int64(fs.SB.Maxbpg); mb > 0 && lbn > 0 && lbn%mb == 0 {
			return fs.SB.CgDmin(fs.pickCg(fs.SB.DtoCg(prev)))
		}
		return prev + (1+fs.SB.GapBlocks())*fs.SB.Frag
	}
	// First block (or after a hole): start in the inode's group.
	cg := fs.SB.InoToCg(ip.Ino)
	return fs.SB.CgDmin(cg)
}

// pickCg returns the next cylinder group after cur with at least the
// average number of free blocks, using the in-core per-group summary
// (the fs_csp array UFS keeps from mount).
func (fs *Fs) pickCg(cur int32) int32 {
	avg := fs.SB.CsNbfree / fs.SB.Ncg
	for i := int32(1); i <= fs.SB.Ncg; i++ {
		cg := (cur + i) % fs.SB.Ncg
		if fs.csum[cg] >= avg {
			return cg
		}
	}
	return (cur + 1) % fs.SB.Ncg
}

// freeFragsTotal returns free space in fragments.
func (fs *Fs) freeFragsTotal() int64 {
	return int64(fs.SB.CsNbfree)*int64(fs.SB.Frag) + int64(fs.SB.CsNffree)
}

// reserveFrags returns the minfree holdback in fragments.
func (fs *Fs) reserveFrags() int64 {
	return int64(fs.SB.Dsize) * int64(fs.SB.Minfree) / 100
}

// AllocBlock allocates one full block, trying pref first, then the rest
// of pref's cylinder group, then the other groups round-robin. It
// returns the fragment address of the block.
func (fs *Fs) AllocBlock(p *sim.Proc, ip *Inode, pref int32) (int32, error) {
	fs.chargeCPU(p, cpu.Alloc, allocInstr)
	fs.AllocCalls++
	if fs.freeFragsTotal()-int64(fs.SB.Frag) < fs.reserveFrags() {
		return 0, ErrNoSpace
	}
	startCg := fs.SB.DtoCg(clampFsbn(fs.SB, pref))
	for i := int32(0); i < fs.SB.Ncg; i++ {
		cgx := (startCg + i) % fs.SB.Ncg
		cgPref := int32(0)
		if i == 0 {
			cgPref = pref
		}
		fsbn, ok, err := fs.alloccgBlock(p, cgx, cgPref)
		if err != nil {
			return 0, err
		}
		if ok {
			if ip != nil {
				ip.D.Blocks += fs.SB.Frag
				ip.MarkDirty()
			}
			return fsbn, nil
		}
	}
	return 0, ErrNoSpace
}

func clampFsbn(sb *Superblock, fsbn int32) int32 {
	if fsbn < 0 {
		return 0
	}
	if fsbn >= sb.Size {
		return sb.Size - 1
	}
	return fsbn
}

// alloccgBlock allocates a block within group cgx, preferring the
// absolute fragment address pref when it falls inside the group.
func (fs *Fs) alloccgBlock(p *sim.Proc, cgx int32, pref int32) (int32, bool, error) {
	cg, err := fs.loadCG(p, cgx)
	if err != nil {
		return 0, false, err
	}
	if cg.Nbfree == 0 {
		return 0, false, nil
	}
	base := fs.SB.CgBase(cgx)
	dmin := fs.SB.MetaFrags()
	frag := fs.SB.Frag
	start := cg.Rotor
	if pref >= base && pref < base+fs.SB.Fpg {
		start = (pref - base) / frag * frag
	}
	if start < dmin {
		start = dmin
	}
	// Forward scan from the preference, then wrap.
	for rel := start; rel+frag <= fs.SB.Fpg; rel += frag {
		if cg.BlockFree(rel, frag) {
			return fs.takeBlock(p, cg, rel), true, nil
		}
	}
	for rel := dmin; rel < start; rel += frag {
		if cg.BlockFree(rel, frag) {
			return fs.takeBlock(p, cg, rel), true, nil
		}
	}
	return 0, false, nil
}

// takeBlock marks the block at group-relative fragment rel allocated.
func (fs *Fs) takeBlock(p *sim.Proc, cg *CG, rel int32) int32 {
	for i := int32(0); i < fs.SB.Frag; i++ {
		clrBit(cg.Blksfree, rel+i)
	}
	cg.Nbfree--
	cg.Rotor = rel + fs.SB.Frag
	if cg.Rotor+fs.SB.Frag > fs.SB.Fpg {
		cg.Rotor = fs.SB.MetaFrags()
	}
	fs.SB.CsNbfree--
	fs.csum[cg.Cgx]--
	fs.storeCG(p, cg)
	return fs.SB.CgBase(cg.Cgx) + rel
}

// AllocFrags allocates nfrags contiguous fragments (a file tail),
// preferring to split already-fragmented blocks before breaking a free
// one. nfrags must be in [1, frag).
func (fs *Fs) AllocFrags(p *sim.Proc, ip *Inode, pref int32, nfrags int32) (int32, error) {
	if nfrags <= 0 || nfrags >= fs.SB.Frag {
		panic("ufs: AllocFrags wants a partial block") // simlint:invariant -- callers pre-round to fragment policy
	}
	fs.chargeCPU(p, cpu.Alloc, allocInstr)
	fs.FragAllocs++
	if fs.freeFragsTotal()-int64(nfrags) < fs.reserveFrags() {
		return 0, ErrNoSpace
	}
	startCg := fs.SB.DtoCg(clampFsbn(fs.SB, pref))
	for i := int32(0); i < fs.SB.Ncg; i++ {
		cgx := (startCg + i) % fs.SB.Ncg
		fsbn, ok, err := fs.alloccgFrags(p, cgx, nfrags)
		if err != nil {
			return 0, err
		}
		if ok {
			if ip != nil {
				ip.D.Blocks += nfrags
				ip.MarkDirty()
			}
			return fsbn, nil
		}
	}
	return 0, ErrNoSpace
}

// alloccgFrags finds nfrags contiguous free fragments within one block
// of group cgx.
func (fs *Fs) alloccgFrags(p *sim.Proc, cgx int32, nfrags int32) (int32, bool, error) {
	cg, err := fs.loadCG(p, cgx)
	if err != nil {
		return 0, false, err
	}
	frag := fs.SB.Frag
	dmin := fs.SB.MetaFrags()
	// Pass 1: a run inside a partially-allocated block.
	if cg.Nffree >= nfrags {
		for rel := dmin; rel+frag <= fs.SB.Fpg; rel += frag {
			if cg.BlockFree(rel, frag) {
				continue // keep whole blocks whole in this pass
			}
			if off, ok := fragRun(cg, rel, frag, nfrags); ok {
				for i := int32(0); i < nfrags; i++ {
					clrBit(cg.Blksfree, off+i)
				}
				cg.Nffree -= nfrags
				fs.SB.CsNffree -= nfrags
				fs.storeCG(p, cg)
				return fs.SB.CgBase(cgx) + off, true, nil
			}
		}
	}
	// Pass 2: split a free block.
	if cg.Nbfree > 0 {
		for rel := dmin; rel+frag <= fs.SB.Fpg; rel += frag {
			if !cg.BlockFree(rel, frag) {
				continue
			}
			for i := int32(0); i < nfrags; i++ {
				clrBit(cg.Blksfree, rel+i)
			}
			cg.Nbfree--
			cg.Nffree += frag - nfrags
			fs.SB.CsNbfree--
			fs.csum[cgx]--
			fs.SB.CsNffree += frag - nfrags
			fs.storeCG(p, cg)
			return fs.SB.CgBase(cgx) + rel, true, nil
		}
	}
	return 0, false, nil
}

// fragRun searches block [rel, rel+frag) for nfrags contiguous free
// fragments, returning the group-relative start.
func fragRun(cg *CG, rel, frag, nfrags int32) (int32, bool) {
	run := int32(0)
	for i := int32(0); i < frag; i++ {
		if bitSet(cg.Blksfree, rel+i) {
			run++
			if run == nfrags {
				return rel + i - nfrags + 1, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// ExtendFrags tries to grow a tail allocation of oldFrags fragments at
// fsbn to newFrags in place. It reports whether it succeeded; on
// failure the caller reallocates.
func (fs *Fs) ExtendFrags(p *sim.Proc, ip *Inode, fsbn int32, oldFrags, newFrags int32) (bool, error) {
	if newFrags <= oldFrags || newFrags > fs.SB.Frag {
		panic("ufs: bad ExtendFrags request") // simlint:invariant -- write path computes in-range extensions
	}
	fs.chargeCPU(p, cpu.Alloc, allocInstr/2)
	need := newFrags - oldFrags
	if fs.freeFragsTotal()-int64(need) < fs.reserveFrags() {
		return false, ErrNoSpace
	}
	cgx := fs.SB.DtoCg(fsbn)
	cg, err := fs.loadCG(p, cgx)
	if err != nil {
		return false, err
	}
	rel := fsbn - fs.SB.CgBase(cgx)
	blockStart := rel / fs.SB.Frag * fs.SB.Frag
	if rel+newFrags > blockStart+fs.SB.Frag {
		return false, nil // would cross a block boundary
	}
	for i := oldFrags; i < newFrags; i++ {
		if !bitSet(cg.Blksfree, rel+i) {
			return false, nil
		}
	}
	wasWhole := cg.BlockFree(blockStart, fs.SB.Frag)
	for i := oldFrags; i < newFrags; i++ {
		clrBit(cg.Blksfree, rel+i)
	}
	if wasWhole {
		// We just broke a whole free block (the tail frags sat at its
		// start... impossible: old frags were allocated). Defensive.
		panic("ufs: ExtendFrags on a free block") // simlint:invariant -- bitmap corruption assertion
	}
	cg.Nffree -= need
	fs.SB.CsNffree -= need
	if err := fs.storeCG(p, cg); err != nil {
		return false, err
	}
	if ip != nil {
		ip.D.Blocks += need
		ip.MarkDirty()
	}
	fs.ReallocFrags++
	return true, nil
}

// FreeFrags releases nfrags fragments starting at fsbn, coalescing them
// into a whole free block when possible.
func (fs *Fs) FreeFrags(p *sim.Proc, fsbn int32, nfrags int32) error {
	if nfrags <= 0 || nfrags > fs.SB.Frag {
		panic("ufs: bad FreeFrags count") // simlint:invariant -- callers free what Alloc returned
	}
	cgx := fs.SB.DtoCg(fsbn)
	cg, err := fs.loadCG(p, cgx)
	if err != nil {
		return err
	}
	rel := fsbn - fs.SB.CgBase(cgx)
	frag := fs.SB.Frag
	for i := int32(0); i < nfrags; i++ {
		if bitSet(cg.Blksfree, rel+i) {
			panic("ufs: freeing free fragment") // simlint:invariant -- bitmap corruption assertion
		}
		setBit(cg.Blksfree, rel+i)
	}
	if nfrags == frag && rel%frag == 0 {
		cg.Nbfree++
		fs.SB.CsNbfree++
		fs.csum[cgx]++
	} else {
		cg.Nffree += nfrags
		fs.SB.CsNffree += nfrags
		// Coalesce: if the enclosing block is now entirely free,
		// promote its fragments to a free block.
		blockStart := rel / frag * frag
		if cg.BlockFree(blockStart, frag) {
			cg.Nffree -= frag
			fs.SB.CsNffree -= frag
			cg.Nbfree++
			fs.SB.CsNbfree++
			fs.csum[cgx]++
		}
	}
	return fs.storeCG(p, cg)
}

// IAlloc allocates an inode, preferring the group of the parent
// directory (spreading directories themselves across groups).
func (fs *Fs) IAlloc(p *sim.Proc, parent *Inode, isDir bool) (int32, error) {
	fs.chargeCPU(p, cpu.Alloc, allocInstr)
	if fs.SB.CsNifree == 0 {
		return 0, ErrNoInodes
	}
	startCg := int32(0)
	if parent != nil && !isDir {
		startCg = fs.SB.InoToCg(parent.Ino)
	} else if isDir {
		// New directories go to the group with most free inodes —
		// approximated by a rotor.
		startCg = fs.cgRotor
		fs.cgRotor = (fs.cgRotor + 1) % fs.SB.Ncg
	}
	for i := int32(0); i < fs.SB.Ncg; i++ {
		cgx := (startCg + i) % fs.SB.Ncg
		cg, err := fs.loadCG(p, cgx)
		if err != nil {
			return 0, err
		}
		if cg.Nifree == 0 {
			continue
		}
		for rel := int32(0); rel < fs.SB.Ipg; rel++ {
			idx := (cg.Irotor + rel) % fs.SB.Ipg
			if !bitSet(cg.Inosused, idx) {
				setBit(cg.Inosused, idx)
				cg.Nifree--
				cg.Irotor = (idx + 1) % fs.SB.Ipg
				if isDir {
					cg.Ndir++
					fs.SB.CsNdir++
				}
				fs.SB.CsNifree--
				fs.storeCG(p, cg)
				return cgx*fs.SB.Ipg + idx, nil
			}
		}
	}
	return 0, ErrNoInodes
}

// IFree releases an inode number.
func (fs *Fs) IFree(p *sim.Proc, ino int32, wasDir bool) error {
	cgx := fs.SB.InoToCg(ino)
	cg, err := fs.loadCG(p, cgx)
	if err != nil {
		return err
	}
	rel := ino % fs.SB.Ipg
	if !bitSet(cg.Inosused, rel) {
		panic("ufs: freeing free inode") // simlint:invariant -- bitmap corruption assertion
	}
	clrBit(cg.Inosused, rel)
	cg.Nifree++
	fs.SB.CsNifree++
	if wasDir {
		cg.Ndir--
		fs.SB.CsNdir--
	}
	return fs.storeCG(p, cg)
}
