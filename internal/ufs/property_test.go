package ufs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ufsclust/internal/sim"
)

// Property: any sequence of block/fragment allocations and frees leaves
// the bitmaps, per-group counters, and superblock totals consistent
// (verified by fsck), and never hands out overlapping space.
func TestPropertyAllocatorConsistency(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		if len(opsRaw) > 60 {
			opsRaw = opsRaw[:60]
		}
		r := newRig(t, MkfsOpts{})
		rng := rand.New(rand.NewSource(seed))
		type hold struct {
			fsbn  int32
			frags int32
		}
		var held []hold
		owned := make(map[int32]bool) // fragment -> held by us
		ok := true
		r.run(t, func(p *sim.Proc) {
			ip, err := r.fs.Create(p, "/propfile")
			if err != nil {
				ok = false
				return
			}
			for _, op := range opsRaw {
				switch {
				case op%3 != 0 || len(held) == 0: // allocate
					var h hold
					if op%2 == 0 {
						fsbn, err := r.fs.AllocBlock(p, ip, int32(rng.Intn(int(r.sb.Size))))
						if err != nil {
							continue // ENOSPC acceptable
						}
						h = hold{fsbn, r.sb.Frag}
					} else {
						n := int32(rng.Intn(int(r.sb.Frag)-1)) + 1
						fsbn, err := r.fs.AllocFrags(p, ip, int32(rng.Intn(int(r.sb.Size))), n)
						if err != nil {
							continue
						}
						h = hold{fsbn, n}
					}
					for i := int32(0); i < h.frags; i++ {
						if owned[h.fsbn+i] {
							t.Logf("fragment %d double-allocated", h.fsbn+i)
							ok = false
							return
						}
						owned[h.fsbn+i] = true
					}
					held = append(held, h)
				default: // free a random holding
					i := rng.Intn(len(held))
					h := held[i]
					if err := r.fs.FreeFrags(p, h.fsbn, h.frags); err != nil {
						ok = false
						return
					}
					for j := int32(0); j < h.frags; j++ {
						delete(owned, h.fsbn+j)
					}
					ip.D.Blocks -= h.frags
					ip.MarkDirty()
					held[i] = held[len(held)-1]
					held = held[:len(held)-1]
				}
			}
			// Free the rest so fsck sees a consistent file (the test
			// file itself holds no blocks).
			for _, h := range held {
				if err := r.fs.FreeFrags(p, h.fsbn, h.frags); err != nil {
					ok = false
					return
				}
				ip.D.Blocks -= h.frags
			}
			ip.MarkDirty()
		})
		if !ok {
			return false
		}
		rep := r.fsck(t)
		if !rep.Clean() {
			t.Logf("fsck: %v", rep.Problems[:min(len(rep.Problems), 5)])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: a directory behaves as a map under any sequence of
// create/remove/lookup operations.
func TestPropertyDirectoryIsAMap(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		if len(opsRaw) > 80 {
			opsRaw = opsRaw[:80]
		}
		r := newRig(t, MkfsOpts{})
		rng := rand.New(rand.NewSource(seed))
		shadow := make(map[string]bool)
		names := make([]string, 40)
		for i := range names {
			names[i] = fmt.Sprintf("file-%d-%d", i, rng.Intn(10))
		}
		ok := true
		r.run(t, func(p *sim.Proc) {
			for _, op := range opsRaw {
				name := names[int(op)%len(names)]
				switch op % 3 {
				case 0: // create
					_, err := r.fs.Create(p, "/"+name)
					if shadow[name] && err != ErrExists {
						t.Logf("create existing %q: %v", name, err)
						ok = false
						return
					}
					if !shadow[name] {
						if err != nil {
							ok = false
							return
						}
						shadow[name] = true
					}
				case 1: // remove
					err := r.fs.Remove(p, "/"+name)
					if shadow[name] && err != nil {
						ok = false
						return
					}
					if !shadow[name] && err != ErrNotFound {
						ok = false
						return
					}
					delete(shadow, name)
				case 2: // lookup
					_, err := r.fs.Namei(p, "/"+name)
					if shadow[name] != (err == nil) {
						t.Logf("lookup %q: shadow=%v err=%v", name, shadow[name], err)
						ok = false
						return
					}
				}
			}
			// Final: directory listing matches the shadow exactly.
			root, _ := r.fs.Iget(p, RootIno)
			ents, err := r.fs.ReadDir(p, root)
			if err != nil {
				ok = false
				return
			}
			live := 0
			for _, e := range ents {
				if e.Name == "." || e.Name == ".." {
					continue
				}
				if !shadow[e.Name] {
					t.Logf("ghost entry %q", e.Name)
					ok = false
					return
				}
				live++
			}
			if live != len(shadow) {
				t.Logf("entry count %d != shadow %d", live, len(shadow))
				ok = false
			}
		})
		if !ok {
			return false
		}
		return r.fsck(t).Clean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: grow/truncate sequences keep di_blocks exact and fsck clean.
func TestPropertyGrowTruncate(t *testing.T) {
	f := func(seed int64, sizesRaw []uint16) bool {
		if len(sizesRaw) > 12 {
			sizesRaw = sizesRaw[:12]
		}
		r := newRig(t, MkfsOpts{})
		ok := true
		r.run(t, func(p *sim.Proc) {
			ip, err := r.fs.Create(p, "/gt")
			if err != nil {
				ok = false
				return
			}
			for _, sz := range sizesRaw {
				target := int64(sz) * 97 // up to ~6.3MB
				if target > ip.D.Size {
					// Grow by allocating every block (no holes).
					bsize := int64(r.sb.Bsize)
					for off := ip.D.Size / bsize * bsize; off < target; off += bsize {
						n := bsize
						if off+n > target {
							n = target - off
						}
						if _, err := r.fs.BmapAlloc(p, ip, off/bsize, int(n)); err != nil {
							ok = err == ErrNoSpace
							return
						}
						ip.D.Size = off + n
					}
					ip.D.Size = target
					ip.MarkDirty()
				} else {
					if err := r.fs.Truncate(p, ip, target); err != nil {
						ok = false
						return
					}
				}
			}
		})
		if !ok {
			return false
		}
		return r.fsck(t).Clean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
