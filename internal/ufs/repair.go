package ufs

import (
	"fmt"

	"ufsclust/internal/disk"
)

// This file is the offline crash-recovery half of fsck: where Fsck only
// reports inconsistencies, Repair rewrites the image until none remain.
// It exists for the fault-injection harness (internal/fault,
// internal/faultlab): a power cut freezes the disk with only the
// acknowledged-durable sectors applied, and Repair must bring that
// torn image back to a mountable, Fsck-clean state without losing any
// byte the machine had acknowledged as durable.
//
// The durability contract it leans on (see core.File.Fsync and
// Fs.SyncInode): data pages, indirect blocks, and the inode are written
// before an fsync returns, in that order, and directory entries are
// written synchronously at create time. Bitmaps, cylinder-group headers
// and superblock totals are NOT kept durable — Repair rebuilds all of
// them from the inodes, which are the single source of truth.

// RepairReport records what Repair changed, plus the post-repair check.
type RepairReport struct {
	Fixes []string    // one line per change applied, deterministic order
	Check *FsckReport // Fsck of the repaired image
}

// Clean reports whether the repaired image passed its final check.
func (r *RepairReport) Clean() bool { return r.Check != nil && r.Check.Clean() }

func (r *RepairReport) fixf(format string, args ...any) {
	r.Fixes = append(r.Fixes, fmt.Sprintf(format, args...))
}

// repairer carries the working state of one Repair run.
type repairer struct {
	d      disk.Device
	sb     *Superblock
	r      *RepairReport
	dinode []Dinode // indexed by ino; cleared entries are the zero value
	owner  []int32  // fragment -> claiming ino; 0 free, -1 metadata
}

const metaOwner = int32(-1)

// Repair fixes the file system on d's image in place and returns what
// it did. It fails only when no superblock can be recovered; every
// other inconsistency is repaired, destructively if necessary (an
// unreachable or structurally hopeless inode is cleared, a duplicate
// block claim is resolved in favor of the lower-numbered inode).
func Repair(d disk.Device) (*RepairReport, error) {
	rep := &RepairReport{}
	sb, err := ReadSuperblock(d)
	if err != nil {
		sb, err = findAltSuperblock(d)
		if err != nil {
			return nil, fmt.Errorf("ufs: repair: no usable superblock: %w", err)
		}
		rep.fixf("superblock: primary unreadable, restored from a backup copy")
	}
	rp := &repairer{d: d, sb: sb, r: rep}

	rp.loadInodes()
	rp.sanitizeInodes()
	rp.fixPointers()
	rp.ensureRoot()
	rp.walkDirectories()
	rp.rebuildMaps()

	check, err := Fsck(d)
	if err != nil {
		return rep, err
	}
	rep.Check = check
	return rep, nil
}

// findAltSuperblock scans the image for a backup superblock copy when
// the primary is gone. Copies live at fragment CgSBlock(cg) of every
// group; the scan accepts the first candidate that decodes, fits the
// disk, and sits where its own geometry says a copy belongs.
func findAltSuperblock(d disk.Device) (*Superblock, error) {
	totalFrags := d.Geom().TotalBytes() / SBSize
	buf := make([]byte, SBSize)
	for f := int64(0); f < totalFrags; f++ {
		d.ReadImage(f*SBSize/disk.SectorSize, buf)
		sb, err := UnmarshalSuperblock(buf)
		if err != nil {
			continue
		}
		if int64(sb.Size)*int64(sb.Fsize) > d.Geom().TotalBytes() {
			continue
		}
		if sb.Fpg <= 0 || f < sbFragOffset || (f-sbFragOffset)%int64(sb.Fpg) != 0 {
			continue
		}
		return sb, nil
	}
	return nil, fmt.Errorf("ufs: no superblock copy found in %d fragments", totalFrags)
}

func (rp *repairer) readBlk(fsbn int32) []byte {
	buf := make([]byte, rp.sb.Bsize)
	rp.d.ReadImage(rp.sb.FsbToDb(fsbn), buf)
	return buf
}

func (rp *repairer) writeBlk(fsbn int32, data []byte) {
	rp.d.WriteImage(rp.sb.FsbToDb(fsbn), data)
}

// loadInodes reads every dinode into memory; all fixes operate on this
// copy and rebuildMaps writes every inode block back.
func (rp *repairer) loadInodes() {
	sb := rp.sb
	rp.dinode = make([]Dinode, sb.Ncg*sb.Ipg)
	for ino := int32(0); ino < sb.Ncg*sb.Ipg; ino++ {
		blk := rp.readBlk(sb.InoToFsba(ino))
		rp.dinode[ino] = UnmarshalDinode(blk[sb.InoBlockOff(ino) : sb.InoBlockOff(ino)+DinodeSize])
	}
}

// clear wipes an inode (and logs why).
func (rp *repairer) clear(ino int32, why string) {
	rp.dinode[ino] = Dinode{}
	rp.r.fixf("ino %d: cleared (%s)", ino, why)
}

// sanitizeInodes drops inodes whose fixed fields are beyond salvage and
// normalizes the ones worth keeping.
func (rp *repairer) sanitizeInodes() {
	sb := rp.sb
	maxSize := sb.MaxFileBlocks() * int64(sb.Bsize)
	for ino := range rp.dinode {
		di := &rp.dinode[ino]
		if !di.Allocated() {
			continue
		}
		if int32(ino) < RootIno {
			rp.clear(int32(ino), "reserved inode")
			continue
		}
		switch di.Mode & ModeFmt {
		case ModeReg, ModeDir, ModeLink:
		default:
			rp.clear(int32(ino), fmt.Sprintf("unknown mode %#x", di.Mode))
			continue
		}
		if di.Size < 0 || di.Size > maxSize {
			rp.clear(int32(ino), fmt.Sprintf("impossible size %d", di.Size))
			continue
		}
		if di.Mode&ModeFmt == ModeLink && di.Blocks != 0 {
			rp.r.fixf("ino %d: symlink claimed %d fragments, zeroed", ino, di.Blocks)
			di.Blocks = 0
		}
		if di.IsDir() && di.Size%int64(sb.Bsize) != 0 {
			fixed := di.Size / int64(sb.Bsize) * int64(sb.Bsize)
			rp.r.fixf("ino %d: dir size %d not a block multiple, truncated to %d", ino, di.Size, fixed)
			di.Size = fixed
		}
		if di.IsDir() && di.Size == 0 {
			rp.clear(int32(ino), "directory with no blocks")
		}
	}
}

// rangeOK reports whether [fsbn, fsbn+n) lies entirely in some group's
// data area.
func (rp *repairer) rangeOK(fsbn, n int32) bool {
	if fsbn <= 0 || fsbn+n > rp.sb.Size {
		return false
	}
	for i := fsbn; i < fsbn+n; i++ {
		if i%rp.sb.Fpg < rp.sb.MetaFrags() {
			return false
		}
	}
	return true
}

// claim records ino as the owner of [fsbn, fsbn+n); it fails without
// side effects if any fragment is out of range, metadata, or already
// owned.
func (rp *repairer) claim(ino, fsbn, n int32) bool {
	if !rp.rangeOK(fsbn, n) {
		return false
	}
	for i := fsbn; i < fsbn+n; i++ {
		if rp.owner[i] != 0 {
			return false
		}
	}
	for i := fsbn; i < fsbn+n; i++ {
		rp.owner[i] = ino
	}
	return true
}

// newOwnerMap returns a fragment owner map with metadata pre-marked.
func (rp *repairer) newOwnerMap() []int32 {
	sb := rp.sb
	owner := make([]int32, sb.Size)
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		base := sb.CgBase(cgx)
		for i := int32(0); i < sb.MetaFrags(); i++ {
			owner[base+i] = metaOwner
		}
	}
	return owner
}

// dataFrags returns how many fragments logical block lbn of a file of
// the given size occupies.
func (rp *repairer) dataFrags(size, lbn int64) int32 {
	n := rp.sb.Frag
	if lbn < NDADDR {
		if f := int32(rp.sb.BlkSize(size, lbn)) / rp.sb.Fsize; f > 0 {
			n = f
		}
	}
	return n
}

// fixPointers walks every surviving inode's block pointers in ascending
// inode order, zeroing the ones that are out of range, point into
// metadata, duplicate an earlier claim, or lie beyond the file size.
// Directories additionally may not contain holes: a directory is
// truncated at its first missing block, and cleared outright if that
// block is block 0.
func (rp *repairer) fixPointers() {
	sb := rp.sb
	nindir := sb.NindirPerBlock()
	rp.owner = rp.newOwnerMap()
	for inoInt := range rp.dinode {
		ino := int32(inoInt)
		di := &rp.dinode[ino]
		if !di.Allocated() || di.Mode&ModeFmt == ModeLink {
			continue
		}
		nblocks := (di.Size + int64(sb.Bsize) - 1) / int64(sb.Bsize)
		dirHole := int64(-1)

		// checkData validates and claims the data block at lbn; on any
		// problem it zeroes *pp and notes a directory hole.
		checkData := func(lbn int64, pp *int32) {
			fsbn := *pp
			if fsbn == 0 {
				if di.IsDir() && lbn < nblocks && (dirHole < 0 || lbn < dirHole) {
					dirHole = lbn
				}
				return
			}
			if lbn >= nblocks {
				rp.r.fixf("ino %d: zeroed block pointer %d beyond size %d", ino, lbn, di.Size)
				*pp = 0
				return
			}
			if !rp.claim(ino, fsbn, rp.dataFrags(di.Size, lbn)) {
				rp.r.fixf("ino %d: zeroed bad or duplicate block pointer at lbn %d (fsbn %d)", ino, lbn, fsbn)
				*pp = 0
				if di.IsDir() && (dirHole < 0 || lbn < dirHole) {
					dirHole = lbn
				}
			}
		}

		for lbn := int64(0); lbn < NDADDR; lbn++ {
			checkData(lbn, &di.DB[lbn])
		}
		if di.IB[0] != 0 {
			if nblocks <= NDADDR || !rp.claim(ino, di.IB[0], sb.Frag) {
				rp.r.fixf("ino %d: zeroed bad indirect pointer IB[0] (fsbn %d)", ino, di.IB[0])
				di.IB[0] = 0
			} else {
				ib := rp.readBlk(di.IB[0])
				changed := false
				for i := int64(0); i < nindir; i++ {
					a := getIndir(ib, i)
					if a == 0 && di.IsDir() && NDADDR+i < nblocks && (dirHole < 0 || NDADDR+i < dirHole) {
						dirHole = NDADDR + i
					}
					if a == 0 {
						continue
					}
					p := a
					checkData(NDADDR+i, &p)
					if p != a {
						putIndir(ib, i, p)
						changed = true
					}
				}
				if changed {
					rp.writeBlk(di.IB[0], ib)
				}
			}
		}
		if di.IB[1] != 0 {
			if nblocks <= NDADDR+nindir || !rp.claim(ino, di.IB[1], sb.Frag) {
				rp.r.fixf("ino %d: zeroed bad indirect pointer IB[1] (fsbn %d)", ino, di.IB[1])
				di.IB[1] = 0
			} else {
				ib1 := rp.readBlk(di.IB[1])
				l1changed := false
				for i := int64(0); i < nindir; i++ {
					l2 := getIndir(ib1, i)
					if l2 == 0 {
						continue
					}
					if NDADDR+nindir+i*nindir >= nblocks || !rp.claim(ino, l2, sb.Frag) {
						rp.r.fixf("ino %d: zeroed bad second-level indirect pointer (fsbn %d)", ino, l2)
						putIndir(ib1, i, 0)
						l1changed = true
						continue
					}
					ib2 := rp.readBlk(l2)
					l2changed := false
					for j := int64(0); j < nindir; j++ {
						a := getIndir(ib2, j)
						if a == 0 {
							continue
						}
						p := a
						checkData(NDADDR+nindir+i*nindir+j, &p)
						if p != a {
							putIndir(ib2, j, p)
							l2changed = true
						}
					}
					if l2changed {
						rp.writeBlk(l2, ib2)
					}
				}
				if l1changed {
					rp.writeBlk(di.IB[1], ib1)
				}
			}
		}

		if di.IsDir() && dirHole >= 0 {
			if dirHole == 0 {
				rp.clear(ino, "directory lost its first block")
				continue
			}
			rp.r.fixf("ino %d: directory has a hole at block %d, truncated from %d to %d bytes",
				ino, dirHole, di.Size, dirHole*int64(sb.Bsize))
			di.Size = dirHole * int64(sb.Bsize)
			// Pointers past the hole (already claimed above) become
			// beyond-size; the final claim sweep in rebuildMaps drops
			// them, so just zero them here.
			rp.zeroFrom(di, dirHole)
		}
	}
}

// zeroFrom zeroes every block pointer of di at logical block >= from.
func (rp *repairer) zeroFrom(di *Dinode, from int64) {
	sb := rp.sb
	nindir := sb.NindirPerBlock()
	for lbn := from; lbn < NDADDR; lbn++ {
		di.DB[lbn] = 0
	}
	if di.IB[0] != 0 {
		if from <= NDADDR {
			di.IB[0] = 0
		} else {
			ib := rp.readBlk(di.IB[0])
			changed := false
			for i := from - NDADDR; i < nindir; i++ {
				if getIndir(ib, i) != 0 {
					putIndir(ib, i, 0)
					changed = true
				}
			}
			if changed {
				rp.writeBlk(di.IB[0], ib)
			}
		}
	}
	if di.IB[1] != 0 && from <= NDADDR+nindir {
		// Directories never grow into double-indirect range in this
		// repository's workloads; a hole before that range just drops
		// the whole subtree.
		di.IB[1] = 0
	}
}

// ensureRoot guarantees a usable root directory, rebuilding an empty
// one from a free block when the original is gone. Everything that hung
// off a lost root becomes unreachable and is cleared by the walk.
func (rp *repairer) ensureRoot() {
	sb := rp.sb
	di := &rp.dinode[RootIno]
	if di.IsDir() && di.DB[0] != 0 {
		return
	}
	fsbn := rp.findFreeBlock()
	if fsbn == 0 {
		// A full disk with no root is unrecoverable space-wise; leave
		// the problem for the final Fsck to report.
		rp.r.fixf("root inode unusable and no free block to rebuild it")
		return
	}
	rp.owner[fsbn] = RootIno
	for i := int32(1); i < sb.Frag; i++ {
		rp.owner[fsbn+i] = RootIno
	}
	blk := make([]byte, sb.Bsize)
	n := putDirent(blk, RootIno, ".")
	putDirentLast(blk[n:], RootIno, "..", int(sb.Bsize)-n)
	rp.writeBlk(fsbn, blk)
	*di = Dinode{Mode: ModeDir | 0o755, Nlink: 2, Size: int64(sb.Bsize), Blocks: sb.Frag}
	di.DB[0] = fsbn
	rp.r.fixf("root directory rebuilt empty at fsbn %d", fsbn)
}

// findFreeBlock returns the first group-relative block-aligned run of
// Frag unclaimed data fragments, or 0. (Block alignment is relative to
// the group base, matching the allocator and fsck.)
func (rp *repairer) findFreeBlock() int32 {
	sb := rp.sb
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		base := sb.CgBase(cgx)
		for f := sb.MetaFrags(); f+sb.Frag <= sb.Fpg; f += sb.Frag {
			free := true
			for i := int32(0); i < sb.Frag; i++ {
				if rp.owner[base+f+i] != 0 {
					free = false
					break
				}
			}
			if free {
				return base + f
			}
		}
	}
	return 0
}

// dirBlockFsbn returns the fragment address of directory block lbn, or
// 0 (repair keeps directories within direct + single-indirect range,
// like Fsck).
func (rp *repairer) dirBlockFsbn(di *Dinode, lbn int64) int32 {
	if lbn < NDADDR {
		return di.DB[lbn]
	}
	if di.IB[0] != 0 && lbn-NDADDR < rp.sb.NindirPerBlock() {
		return getIndir(rp.readBlk(di.IB[0]), lbn-NDADDR)
	}
	return 0
}

// buildDirBlock packs entries into one directory block, the last record
// absorbing the slack; with no entries the block is one free record.
func (rp *repairer) buildDirBlock(ents []Dirent) []byte {
	bsize := int(rp.sb.Bsize)
	blk := make([]byte, bsize)
	off := 0
	for i, e := range ents {
		if off+direntSize(e.Name) > bsize {
			rp.r.fixf("dir block overflow: dropped entry %q", e.Name)
			continue
		}
		if i == len(ents)-1 {
			putDirentLast(blk[off:], e.Ino, e.Name, bsize-off)
			off = bsize
		} else {
			off += putDirent(blk[off:], e.Ino, e.Name)
		}
	}
	if off < bsize {
		// Terminate with one free record spanning the remainder.
		rem := bsize - off
		blk[off+4] = byte(rem)
		blk[off+5] = byte(rem >> 8)
	}
	return blk
}

// walkDirectories checks the tree from the root: every entry must point
// at a live inode, "." and ".." at self and parent, and each directory
// may be referenced once. Broken entries are dropped (the block is
// rewritten), link counts are recomputed, and everything the walk never
// reaches is cleared.
func (rp *repairer) walkDirectories() {
	sb := rp.sb
	if !rp.dinode[RootIno].IsDir() {
		return // ensureRoot already logged the hopeless case
	}
	links := make([]int16, len(rp.dinode))
	visited := make([]bool, len(rp.dinode))
	// claimed marks a directory already referenced by a kept entry; a
	// second name for it (hard-linked directory) is dropped at sight,
	// before the child is ever popped from the walk stack.
	claimed := make([]bool, len(rp.dinode))
	claimed[RootIno] = true

	type frame struct{ ino, parent int32 }
	stack := []frame{{RootIno, RootIno}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[fr.ino] {
			continue
		}
		visited[fr.ino] = true
		di := &rp.dinode[fr.ino]
		nblocks := di.Size / int64(sb.Bsize)
		var children []frame
		for lbn := int64(0); lbn < nblocks; lbn++ {
			fsbn := rp.dirBlockFsbn(di, lbn)
			if fsbn == 0 {
				continue // fixPointers already truncated holes; defensive
			}
			raw := rp.readBlk(fsbn)
			ents, err := parseDirents(raw)
			rebuilt := false
			if err != nil {
				rp.r.fixf("ino %d: directory block %d unparseable (%v), rebuilt", fr.ino, lbn, err)
				ents, rebuilt = nil, true
			}
			var keep []Dirent
			sawDot, sawDotDot := false, false
			for _, e := range ents {
				switch {
				case lbn == 0 && e.Name == ".":
					if e.Ino != fr.ino {
						rp.r.fixf("ino %d: \".\" pointed to %d, fixed", fr.ino, e.Ino)
						e.Ino = fr.ino
						rebuilt = true
					}
					sawDot = true
				case lbn == 0 && e.Name == "..":
					if e.Ino != fr.parent {
						rp.r.fixf("ino %d: \"..\" pointed to %d, fixed to %d", fr.ino, e.Ino, fr.parent)
						e.Ino = fr.parent
						rebuilt = true
					}
					sawDotDot = true
				default:
					if e.Ino < RootIno || e.Ino >= int32(len(rp.dinode)) || !rp.dinode[e.Ino].Allocated() {
						rp.r.fixf("ino %d: dropped entry %q -> dead ino %d", fr.ino, e.Name, e.Ino)
						rebuilt = true
						continue
					}
					if rp.dinode[e.Ino].IsDir() {
						if claimed[e.Ino] {
							rp.r.fixf("ino %d: dropped duplicate directory link %q -> %d", fr.ino, e.Name, e.Ino)
							rebuilt = true
							continue
						}
						claimed[e.Ino] = true
						children = append(children, frame{e.Ino, fr.ino})
					}
				}
				keep = append(keep, e)
			}
			if lbn == 0 && (!sawDot || !sawDotDot) {
				rp.r.fixf("ino %d: restored missing \".\"/\"..\"", fr.ino)
				var rest []Dirent
				for _, e := range keep {
					if e.Name != "." && e.Name != ".." {
						rest = append(rest, e)
					}
				}
				keep = append([]Dirent{{Ino: fr.ino, Name: "."}, {Ino: fr.parent, Name: ".."}}, rest...)
				rebuilt = true
				sawDot, sawDotDot = true, true
			}
			if rebuilt {
				rp.writeBlk(fsbn, rp.buildDirBlock(keep))
			}
			for _, e := range keep {
				switch e.Name {
				case ".":
					links[fr.ino]++
				case "..":
					links[fr.parent]++
				default:
					links[e.Ino]++
				}
			}
		}
		// Push children in reverse so the walk visits them in directory
		// order — keeps the fix log deterministic.
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}

	for inoInt := range rp.dinode {
		ino := int32(inoInt)
		di := &rp.dinode[ino]
		if !di.Allocated() || ino < RootIno {
			continue
		}
		if di.IsDir() && !visited[ino] {
			rp.clear(ino, "unreachable directory")
			continue
		}
		if !di.IsDir() && links[ino] == 0 {
			rp.clear(ino, "unreferenced inode")
			continue
		}
		if di.Nlink != links[ino] {
			rp.r.fixf("ino %d: link count %d, counted %d", ino, di.Nlink, links[ino])
			di.Nlink = links[ino]
		}
	}
}

// rebuildMaps re-derives everything below the inodes: a fresh claim
// sweep fixes each survivor's di_blocks, then bitmaps, cylinder-group
// headers and superblock totals are rebuilt from scratch and every
// piece of metadata — inode blocks included — is written back.
func (rp *repairer) rebuildMaps() {
	sb := rp.sb
	nindir := sb.NindirPerBlock()
	rp.owner = rp.newOwnerMap()
	for inoInt := range rp.dinode {
		ino := int32(inoInt)
		di := &rp.dinode[ino]
		if !di.Allocated() || di.Mode&ModeFmt == ModeLink {
			continue
		}
		var frags int32
		take := func(lbn int64, fsbn int32) {
			n := rp.dataFrags(di.Size, lbn)
			if rp.claim(ino, fsbn, n) {
				frags += n
			}
		}
		for lbn := int64(0); lbn < NDADDR; lbn++ {
			if di.DB[lbn] != 0 {
				take(lbn, di.DB[lbn])
			}
		}
		if di.IB[0] != 0 && rp.claim(ino, di.IB[0], sb.Frag) {
			frags += sb.Frag
			ib := rp.readBlk(di.IB[0])
			for i := int64(0); i < nindir; i++ {
				if a := getIndir(ib, i); a != 0 {
					take(NDADDR+i, a)
				}
			}
		}
		if di.IB[1] != 0 && rp.claim(ino, di.IB[1], sb.Frag) {
			frags += sb.Frag
			ib1 := rp.readBlk(di.IB[1])
			for i := int64(0); i < nindir; i++ {
				l2 := getIndir(ib1, i)
				if l2 == 0 || !rp.claim(ino, l2, sb.Frag) {
					continue
				}
				frags += sb.Frag
				ib2 := rp.readBlk(l2)
				for j := int64(0); j < nindir; j++ {
					if a := getIndir(ib2, j); a != 0 {
						take(NDADDR+nindir+i*nindir+j, a)
					}
				}
			}
		}
		if di.Blocks != frags {
			rp.r.fixf("ino %d: di_blocks %d, holds %d fragments", ino, di.Blocks, frags)
			di.Blocks = frags
		}
	}

	// Write every inode block back.
	ipb := int32(sb.InodesPerBlock())
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		for blk := int32(0); blk < sb.InodeBlocks(); blk++ {
			buf := make([]byte, sb.Bsize)
			for k := int32(0); k < ipb; k++ {
				ino := cgx*sb.Ipg + blk*ipb + k
				if ino < int32(len(rp.dinode)) {
					rp.dinode[ino].MarshalInto(buf[k*DinodeSize:])
				}
			}
			rp.writeBlk(sb.CgIblock(cgx)+blk*sb.Frag, buf)
		}
	}

	// Rebuild every cylinder group from the claims and inode table.
	sb.CsNdir, sb.CsNbfree, sb.CsNifree, sb.CsNffree = 0, 0, 0, 0
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		cg := NewCG(sb, cgx)
		cg.Ndblk = sb.Fpg - sb.MetaFrags()
		base := sb.CgBase(cgx)
		for f := int32(sb.MetaFrags()); f < sb.Fpg; f++ {
			if rp.owner[base+f] == 0 {
				setBit(cg.Blksfree, f)
			}
		}
		for f := int32(0); f+sb.Frag <= sb.Fpg; f += sb.Frag {
			if cg.BlockFree(f, sb.Frag) {
				cg.Nbfree++
			} else {
				for i := int32(0); i < sb.Frag; i++ {
					if cg.FragFree(f + i) {
						cg.Nffree++
					}
				}
			}
		}
		for i := int32(0); i < sb.Ipg; i++ {
			ino := cgx*sb.Ipg + i
			di := &rp.dinode[ino]
			if di.Allocated() || ino < RootIno {
				setBit(cg.Inosused, i)
				if di.IsDir() {
					cg.Ndir++
				}
			} else {
				cg.Nifree++
			}
		}
		sb.CsNdir += cg.Ndir
		sb.CsNbfree += cg.Nbfree
		sb.CsNifree += cg.Nifree
		sb.CsNffree += cg.Nffree
		rp.writeBlk(sb.CgHeader(cgx), cg.Marshal(sb))
	}

	// Fresh superblock everywhere, marked clean.
	sb.Clean = 1
	sb.Fmod = 0
	for cgx := int32(0); cgx < sb.Ncg; cgx++ {
		rp.d.WriteImage(sb.FsbToDb(sb.CgSBlock(cgx)), sb.Marshal())
	}
}
