package ufs

import (
	"ufsclust/internal/cpu"
	"ufsclust/internal/detsort"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
)

// MBuf is a metadata buffer: one file system block of superblock copies,
// cylinder group headers, inode blocks, indirect blocks, or directory
// data. SunOS kept the old buffer cache for exactly this metadata while
// file data moved to the page cache; so do we.
type MBuf struct {
	Fsbn  int32 // block-aligned fragment address
	Data  []byte
	dirty bool
	busy  bool
	valid bool

	// orderedPending marks a B_ORDER write queued but possibly not yet
	// taken by the drive. Further ordered writes of the same buffer
	// coalesce onto the queued request — the mechanism that makes
	// "rm *" fast: sixty inode updates become one ordered disk write.
	orderedPending bool

	wanted sim.WaitQ
	lru    int64 // last-release sequence for eviction
}

// Bcache is the metadata buffer cache.
type Bcache struct {
	Sim *sim.Sim
	CPU *cpu.Model // may be nil
	Drv *driver.Driver
	sb  *Superblock

	bufs map[int32]*MBuf
	nbuf int
	seq  int64

	// journal, when attached, pins dirty buffers in memory (the next
	// commit stages them; writing them in place would publish
	// uncommitted state) and backfills cache misses whose home copy on
	// disk is stale (committed but not yet checkpointed).
	journal MetaJournal

	// err is the sticky first I/O error: every failed metadata
	// transfer records here, including ones with no caller to return
	// to (evictions, ordered-write completions, delayed writes).
	err error

	// Stats
	Hits, Misses, Evictions, Writes int64
}

// Err returns the first metadata I/O error seen by the cache, if any.
func (bc *Bcache) Err() error { return bc.err }

// recordErr keeps the first error.
func (bc *Bcache) recordErr(err error) {
	if bc.err == nil && err != nil {
		bc.err = err
	}
}

// NewBcache builds a cache of nbuf block buffers (default 64 = 512 KB).
func NewBcache(s *sim.Sim, cpuModel *cpu.Model, drv *driver.Driver, sb *Superblock, nbuf int) *Bcache {
	if nbuf <= 0 {
		nbuf = 64
	}
	return &Bcache{Sim: s, CPU: cpuModel, Drv: drv, sb: sb, bufs: make(map[int32]*MBuf), nbuf: nbuf}
}

// align rounds a fragment address down to its block start.
func (bc *Bcache) align(fsbn int32) int32 { return fsbn / bc.sb.Frag * bc.sb.Frag }

// getblk finds or creates the buffer for the block containing fsbn,
// returning it busy (locked). The contents are valid only if the buffer
// was already cached; Bread fills invalid buffers.
func (bc *Bcache) getblk(p *sim.Proc, fsbn int32) *MBuf {
	key := bc.align(fsbn)
	for {
		b, ok := bc.bufs[key]
		if !ok {
			break
		}
		if !b.busy {
			b.busy = true
			return b
		}
		b.waitUnlock(p)
		// Re-check: the buffer may have been evicted while we slept.
	}
	// Miss: evict if full.
	for len(bc.bufs) >= bc.nbuf {
		victim := bc.evictable()
		if victim == nil {
			if bc.journal != nil {
				// Every buffer is busy or dirty. Dirty buffers stay
				// pinned until the next commit stages them, so grow
				// past nbuf instead of writing uncommitted metadata
				// in place; the commit drains the overshoot.
				break
			}
			// Everything busy; wait for any release. Crude but rare.
			p.Sleep(sim.Millisecond)
			continue
		}
		victim.busy = true
		if victim.dirty {
			bc.iowrite(p, victim)
			victim.dirty = false
		}
		delete(bc.bufs, victim.Fsbn)
		bc.Evictions++
		victim.busy = false
		victim.wanted.WakeAll()
	}
	b := &MBuf{Fsbn: key, Data: make([]byte, bc.sb.Bsize), busy: true}
	bc.bufs[key] = b
	return b
}

// evictable picks the least-recently released non-busy buffer. The
// walk visits buffers in block order so that an lru tie (possible when
// buffers are installed without ever being released) picks the same
// victim on every run.
func (bc *Bcache) evictable() *MBuf {
	var victim *MBuf
	for _, fsbn := range detsort.Keys(bc.bufs) {
		b := bc.bufs[fsbn]
		if b.busy || (bc.journal != nil && b.dirty) {
			continue
		}
		if victim == nil || b.lru < victim.lru {
			victim = b
		}
	}
	return victim
}

func (b *MBuf) waitUnlock(p *sim.Proc) {
	for b.busy {
		p.Block(&b.wanted)
	}
}

// Bread returns the buffer for the block containing fsbn, reading it
// from disk if necessary. The buffer is returned locked; release with
// Brelse, Bdwrite, or Bwrite. On a media error the buffer is released
// invalid (a later Bread retries the read) and the error is returned
// and recorded in the cache's sticky error.
func (bc *Bcache) Bread(p *sim.Proc, fsbn int32) (*MBuf, error) {
	b := bc.getblk(p, fsbn)
	if b.valid {
		bc.Hits++
		return b, nil
	}
	bc.Misses++
	if bc.journal != nil {
		if data := bc.journal.Peek(bc.sb.FsbToDb(b.Fsbn)); data != nil {
			// The home copy on disk is stale: the block was committed
			// to the log but not yet checkpointed. Fill from the
			// journal's committed image instead of reading the disk.
			copy(b.Data, data)
			b.valid = true
			return b, nil
		}
	}
	done := false
	var ioErr error
	var q sim.WaitQ
	bc.Drv.Strategy(p, &driver.Buf{
		Blkno: bc.sb.FsbToDb(b.Fsbn),
		Data:  b.Data,
		Iodone: func(db *driver.Buf) {
			ioErr = db.Err
			done = true
			q.WakeAll()
		},
	})
	for !done {
		// simlint:ignore blockpath -- waiting for this buffer's own read: b must stay locked until its data lands
		p.Block(&q)
	}
	if ioErr != nil {
		bc.recordErr(ioErr)
		bc.Brelse(b)
		return nil, ioErr
	}
	b.valid = true
	return b, nil
}

// Brelse unlocks a buffer without changing its dirty state.
func (bc *Bcache) Brelse(b *MBuf) {
	bc.seq++
	b.lru = bc.seq
	b.busy = false
	b.wanted.WakeAll()
}

// Bdwrite marks the buffer dirty and releases it (a delayed write: the
// data goes out on eviction or Flush).
func (bc *Bcache) Bdwrite(b *MBuf) {
	b.dirty = true
	bc.Brelse(b)
}

// Bwrite writes the buffer synchronously and releases it. UFS uses
// synchronous metadata writes where ordering matters (the cost the
// paper's B_ORDER proposal would remove).
func (bc *Bcache) Bwrite(p *sim.Proc, b *MBuf) error {
	b.dirty = false
	err := bc.iowrite(p, b)
	bc.Brelse(b)
	return err
}

// BwriteOrdered starts an asynchronous write carrying the B_ORDER flag
// — the driver (and anything below it) may not reorder the request —
// and releases the buffer immediately. It gives the on-disk ordering
// that UFS otherwise buys with synchronous writes, without making the
// caller wait: the paper's Further Work proposal. Ordered writes of a
// buffer whose previous ordered write is still queued coalesce onto it
// (the queued request carries the buffer's live contents), so bursts of
// metadata updates to one block cost one transfer.
func (bc *Bcache) BwriteOrdered(p *sim.Proc, b *MBuf) {
	b.dirty = false
	if b.orderedPending {
		bc.Brelse(b)
		return
	}
	b.orderedPending = true
	bc.Drv.Strategy(p, &driver.Buf{
		Blkno: bc.sb.FsbToDb(b.Fsbn),
		Data:  b.Data,
		Write: true,
		Order: true,
		Iodone: func(db *driver.Buf) {
			// Asynchronous: there is no caller left to take the error,
			// so a failed ordered write lands in the sticky error.
			bc.recordErr(db.Err)
			bc.Writes++
			b.orderedPending = false
		},
	})
	bc.Brelse(b)
}

// metaWrite applies the mount's ordering discipline to a modified
// metadata buffer: a blocking synchronous write classically, an ordered
// asynchronous one with OrderedWrites.
//
// Caveat (known simplification): coalescing a later update onto a
// still-queued ordered write can, across a crash, publish that update
// ahead of intervening writes to other blocks — full correctness needs
// the dependency tracking soft updates later developed. The paper only
// sketches B_ORDER; we implement the sketch.
func (fs *Fs) metaWrite(p *sim.Proc, b *MBuf) error {
	if fs.J != nil {
		// Journaled: ordering and durability come from the commit that
		// closes the enclosing transaction frame, so the write is just
		// a delayed one — the commit stages it into the log.
		fs.JournalMetaWrites++
		fs.BC.Bdwrite(b)
		return nil
	}
	if fs.OrderedWrites {
		fs.OrderedMetaWrites++
		fs.BC.BwriteOrdered(p, b)
		return nil
	}
	fs.SyncMetaWrites++
	return fs.BC.Bwrite(p, b)
}

// iowrite performs the timed write of b. A give-up from the driver is
// returned and recorded in the sticky error.
func (bc *Bcache) iowrite(p *sim.Proc, b *MBuf) error {
	done := false
	var ioErr error
	var q sim.WaitQ
	bc.Drv.Strategy(p, &driver.Buf{
		Blkno: bc.sb.FsbToDb(b.Fsbn),
		Data:  b.Data,
		Write: true,
		Iodone: func(db *driver.Buf) {
			ioErr = db.Err
			done = true
			q.WakeAll()
		},
	})
	for !done {
		p.Block(&q)
	}
	bc.Writes++
	bc.recordErr(ioErr)
	return ioErr
}

// Flush writes every dirty buffer (sync/unmount path) in ascending
// block order, so the sequence of simulated writes — and therefore
// virtual time — replays identically run to run. It keeps going past
// a failed write (best effort, like update(8)) and returns the first
// error.
func (bc *Bcache) Flush(p *sim.Proc) error {
	var firstErr error
	for _, fsbn := range detsort.Keys(bc.bufs) {
		b := bc.bufs[fsbn]
		if b.dirty && !b.busy {
			b.busy = true
			b.dirty = false
			if err := bc.iowrite(p, b); err != nil && firstErr == nil {
				firstErr = err
			}
			b.busy = false
			b.wanted.WakeAll()
		}
	}
	return firstErr
}

// FlushBlock synchronously writes the cached block containing fsbn if
// it is dirty. It is the fsync path for indirect blocks: data and
// pointer blocks must be durable before the inode that references
// them is written.
func (bc *Bcache) FlushBlock(p *sim.Proc, fsbn int32) error {
	b, ok := bc.bufs[bc.align(fsbn)]
	if !ok || !b.dirty {
		return nil
	}
	b.waitUnlock(p)
	if !b.dirty {
		return nil
	}
	b.busy = true
	b.dirty = false
	err := bc.iowrite(p, b)
	bc.Brelse(b)
	return err
}

// FlushImage spills every dirty buffer straight to the image with no
// simulated time: the offline path used before fsck in tests.
func (bc *Bcache) FlushImage() {
	for _, fsbn := range detsort.Keys(bc.bufs) {
		b := bc.bufs[fsbn]
		if b.dirty {
			bc.Drv.Disk.WriteImage(bc.sb.FsbToDb(b.Fsbn), b.Data)
			b.dirty = false
		}
	}
}
