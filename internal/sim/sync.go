package sim

// WaitQ is a FIFO queue of blocked processes: the simulation kernel's
// condition variable. The zero value is ready to use; Name is optional
// and only improves deadlock diagnostics.
type WaitQ struct {
	Name  string
	procs []*Proc
}

// Len reports how many processes are parked on the queue.
func (q *WaitQ) Len() int { return len(q.procs) }

// WakeOne makes the longest-waiting process runnable. It reports whether
// a process was woken. Safe from process or scheduler context.
func (q *WaitQ) WakeOne() bool {
	for len(q.procs) > 0 {
		p := q.procs[0]
		copy(q.procs, q.procs[1:])
		q.procs = q.procs[:len(q.procs)-1]
		if p.state != stateBlocked {
			continue
		}
		p.state = stateReady
		p.sim.readyPush(p)
		return true
	}
	return false
}

// WakeAll makes every parked process runnable.
func (q *WaitQ) WakeAll() {
	for q.WakeOne() {
	}
}

// Semaphore is a counting semaphore in virtual time. Unlike a classic
// semaphore its count may be consumed in arbitrary units, which models
// the paper's per-file write limit: "essentially a counting semaphore in
// the inode" measured in bytes of outstanding write I/O.
type Semaphore struct {
	n int64
	q WaitQ
}

// NewSemaphore returns a semaphore holding n units.
func NewSemaphore(name string, n int64) *Semaphore {
	return &Semaphore{n: n, q: WaitQ{Name: name}}
}

// Value returns the units currently available.
func (sem *Semaphore) Value() int64 { return sem.n }

// P acquires n units, blocking the calling process until available.
func (sem *Semaphore) P(p *Proc, n int64) {
	for sem.n < n {
		p.Block(&sem.q)
	}
	sem.n -= n
}

// V releases n units and wakes all waiters to re-check. It is safe from
// scheduler context (e.g. an I/O-completion callback).
func (sem *Semaphore) V(n int64) {
	sem.n += n
	sem.q.WakeAll()
}

// Resource is a single-owner resource (a CPU, a disk arm) with FIFO
// queueing and utilization accounting.
type Resource struct {
	Name string
	busy bool
	q    WaitQ

	acquiredAt Time
	busyTime   Time
	sim        *Sim
	uses       int64
}

// NewResource returns an idle resource.
func NewResource(s *Sim, name string) *Resource {
	return &Resource{Name: name, sim: s, q: WaitQ{Name: name}}
}

// Acquire takes exclusive ownership, blocking while another process holds
// the resource.
func (r *Resource) Acquire(p *Proc) {
	for r.busy {
		p.Block(&r.q)
	}
	r.busy = true
	r.acquiredAt = r.sim.now
	r.uses++
}

// Release gives up ownership and wakes the next waiter.
func (r *Resource) Release() {
	r.busyTime += r.sim.now - r.acquiredAt
	r.busy = false
	r.q.WakeOne()
}

// Use acquires the resource, holds it for d of virtual time, and releases
// it: the basic "consume CPU" primitive.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// BusyTime returns the cumulative time the resource has been held.
func (r *Resource) BusyTime() Time { return r.busyTime }

// Uses returns how many times the resource has been acquired.
func (r *Resource) Uses() int64 { return r.uses }

// Utilization returns busy time as a fraction of the interval [0, now].
func (r *Resource) Utilization() float64 {
	if r.sim.now == 0 {
		return 0
	}
	return float64(r.busyTime) / float64(r.sim.now)
}
