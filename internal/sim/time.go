// Package sim provides a deterministic discrete-event simulation kernel.
//
// A Sim owns a virtual clock and a set of cooperative processes (Proc).
// Exactly one process runs at a time; a process gives up control only by
// calling a blocking primitive (Sleep, Block, or a primitive built on
// them), at which point the scheduler resumes the next runnable process
// or advances the clock to the next timed event. Execution is therefore
// fully deterministic: the same program produces the same event order and
// the same virtual timings on every run, independent of the host
// scheduler or garbage collector.
//
// The kernel is the substrate for the reproduction of McVoy & Kleiman,
// "Extent-like Performance from a UNIX File System" (USENIX Winter 1991):
// the disk, driver, VM daemon, and benchmark workloads all run as sim
// processes, and every reported throughput or CPU figure is measured in
// virtual time.
package sim

import "fmt"

// Time is a point in virtual time or a duration, in nanoseconds.
// The simulation starts at Time 0.
type Time int64

// Convenient duration units, mirroring time.Duration.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit, e.g. "4.2ms" or "1.61s".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}
