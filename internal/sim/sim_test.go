package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New(1)
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	s := New(1)
	var at Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*Millisecond {
		t.Fatalf("woke at %v, want 5ms", at)
	}
}

func TestSequentialSleeps(t *testing.T) {
	s := New(1)
	var at Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(Millisecond)
		p.Sleep(2 * Millisecond)
		p.Sleep(3 * Millisecond)
		at = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 6*Millisecond {
		t.Fatalf("woke at %v, want 6ms", at)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("a", func(p *Proc) {
		p.Sleep(Millisecond)
		order = append(order, "a1")
		p.Sleep(2 * Millisecond) // wakes at 3ms
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		order = append(order, "b1")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New(1)
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			p.Sleep(Millisecond)
			order = append(order, name)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("equal-time wakeups out of spawn order: %v", order)
	}
}

func TestAfterCallback(t *testing.T) {
	s := New(1)
	var fired Time = -1
	s.Spawn("main", func(p *Proc) {
		p.Sleep(10 * Millisecond)
	})
	s.After(4*Millisecond, func() { fired = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 4*Millisecond {
		t.Fatalf("callback at %v, want 4ms", fired)
	}
}

func TestBlockAndWake(t *testing.T) {
	s := New(1)
	var q WaitQ
	done := false
	s.Spawn("waiter", func(p *Proc) {
		for !done {
			p.Block(&q)
		}
		if p.Now() != 7*Millisecond {
			t.Errorf("woke at %v, want 7ms", p.Now())
		}
	})
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(7 * Millisecond)
		done = true
		q.WakeAll()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("waker never ran")
	}
}

func TestWakeOneIsFIFO(t *testing.T) {
	s := New(1)
	var q WaitQ
	var woke []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			p.Block(&q)
			woke = append(woke, name)
		})
	}
	s.Spawn("waker", func(p *Proc) {
		p.Sleep(Millisecond)
		q.WakeOne()
		p.Sleep(Millisecond)
		q.WakeOne()
		p.Sleep(Millisecond)
		q.WakeOne()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 || woke[0] != "w1" || woke[1] != "w2" || woke[2] != "w3" {
		t.Fatalf("wake order = %v, want [w1 w2 w3]", woke)
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New(1)
	var q WaitQ
	s.Spawn("stuck", func(p *Proc) {
		p.Block(&q)
	})
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("blocked = %v, want [stuck]", de.Blocked)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	s := New(1)
	ticks := 0
	s.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(Second)
			ticks++
		}
	})
	if err := s.RunUntil(10*Second + Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	// Resume: the pending event must still fire.
	if err := s.RunUntil(11*Second + Millisecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 11 {
		t.Fatalf("after resume ticks = %d, want 11", ticks)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	s.Spawn("worker", func(p *Proc) {
		for {
			p.Sleep(Millisecond)
			n++
			if n == 5 {
				s.Stop()
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestSemaphoreBlocksUntilV(t *testing.T) {
	s := New(1)
	sem := NewSemaphore("wl", 3)
	var got Time = -1
	s.Spawn("taker", func(p *Proc) {
		sem.P(p, 2)
		sem.P(p, 2) // must block: only 1 left
		got = p.Now()
	})
	s.Spawn("giver", func(p *Proc) {
		p.Sleep(9 * Millisecond)
		sem.V(1)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 9*Millisecond {
		t.Fatalf("second P completed at %v, want 9ms", got)
	}
	if sem.Value() != 0 {
		t.Fatalf("value = %d, want 0", sem.Value())
	}
}

func TestSemaphoreVFromSchedulerContext(t *testing.T) {
	s := New(1)
	sem := NewSemaphore("io", 0)
	s.Spawn("waiter", func(p *Proc) {
		sem.P(p, 1)
		if p.Now() != 3*Millisecond {
			t.Errorf("P returned at %v, want 3ms", p.Now())
		}
	})
	s.After(3*Millisecond, func() { sem.V(1) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New(1)
	cpu := NewResource(s, "cpu")
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Spawn("user", func(p *Proc) {
			cpu.Use(p, 10*Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if cpu.BusyTime() != 30*Millisecond {
		t.Fatalf("busy = %v, want 30ms", cpu.BusyTime())
	}
	if u := cpu.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
	if cpu.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", cpu.Uses())
	}
}

func TestResourceIdleUtilization(t *testing.T) {
	s := New(1)
	cpu := NewResource(s, "cpu")
	s.Spawn("p", func(p *Proc) {
		cpu.Use(p, 10*Millisecond)
		p.Sleep(30 * Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if u := cpu.Utilization(); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestYieldRunsOthersFirst(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a-start")
		p.Yield()
		order = append(order, "a-end")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a-start", "b", "a-end"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnDuringRun(t *testing.T) {
	s := New(1)
	childRan := false
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(Millisecond)
		s.Spawn("child", func(c *Proc) {
			c.Sleep(Millisecond)
			childRan = true
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		s := New(42)
		var trace []Time
		for i := 0; i < 4; i++ {
			s.Spawn("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Sleep(Time(s.Rand.Intn(1000)) * Microsecond)
					trace = append(trace, p.Now())
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	s := New(1)
	s.Spawn("p", func(p *Proc) {
		p.Sleep(-Millisecond)
		if p.Now() != 0 {
			t.Errorf("Now = %v after negative sleep, want 0", p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{5 * Microsecond, "5.00us"},
		{4200 * Microsecond, "4.20ms"},
		{1610 * Millisecond, "1.610s"},
		{-Millisecond, "-1.00ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: for any set of sleep durations, processes wake in global
// time order and the final clock equals the max per-process sum.
func TestPropertySleepOrdering(t *testing.T) {
	f := func(durs [][]uint16) bool {
		if len(durs) == 0 || len(durs) > 8 {
			return true
		}
		s := New(7)
		var wakes []Time
		var maxSum Time
		any := false
		for _, ds := range durs {
			if len(ds) > 16 {
				ds = ds[:16]
			}
			if len(ds) == 0 {
				continue
			}
			any = true
			var sum Time
			for _, d := range ds {
				sum += Time(d) * Microsecond
			}
			if sum > maxSum {
				maxSum = sum
			}
			ds := ds
			s.Spawn("p", func(p *Proc) {
				for _, d := range ds {
					p.Sleep(Time(d) * Microsecond)
					wakes = append(wakes, p.Now())
				}
			})
		}
		if !any {
			return true
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(wakes); i++ {
			if wakes[i] < wakes[i-1] {
				return false
			}
		}
		return s.Now() == maxSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a semaphore never goes negative and always ends with
// initial + sum(V) - sum(P) units.
func TestPropertySemaphoreConservation(t *testing.T) {
	f := func(takes []uint8) bool {
		if len(takes) == 0 || len(takes) > 20 {
			return true
		}
		s := New(3)
		var total int64
		for _, v := range takes {
			total += int64(v%16) + 1
		}
		sem := NewSemaphore("s", 4)
		for _, v := range takes {
			n := int64(v%16) + 1
			s.Spawn("taker", func(p *Proc) {
				sem.P(p, n)
				if sem.Value() < 0 {
					t.Error("semaphore went negative")
				}
				p.Sleep(Time(n) * Microsecond)
				sem.V(n)
			})
		}
		if err := s.Run(); err != nil {
			// Takers wanting more than the 4+released units available
			// at once can deadlock only if a single take exceeds the
			// total; with cap 16 vs initial 4 that is possible.
			_, isDeadlock := err.(*DeadlockError)
			return isDeadlock
		}
		return sem.Value() == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
