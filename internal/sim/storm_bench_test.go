package sim

import "testing"

func BenchmarkTimerStorm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		const lanes = 64
		remaining := int64(1 << 18)
		for l := 0; l < lanes; l++ {
			period := Time(l%7+1) * Microsecond
			var fire func()
			fire = func() {
				if remaining <= 0 {
					return
				}
				remaining--
				s.After(period, fire)
			}
			s.After(period, fire)
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}
