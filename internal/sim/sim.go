package sim

import (
	"container/heap"
	"fmt"
	"io"
	"math/rand"
)

// event is a scheduled occurrence: either a process wakeup or an inline
// callback. Events at equal times fire in scheduling order (seq).
type event struct {
	t   Time
	seq int64
	p   *Proc  // wake this process, or
	fn  func() // run this callback inline in scheduler context
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. Create one with New, add processes
// with Spawn, then call Run.
type Sim struct {
	now      Time
	seq      int64
	events   eventHeap
	ready    []*Proc
	yielded  chan struct{}
	current  *Proc
	live     int // spawned processes that have not yet exited
	stopped  bool
	limit    Time // run-until bound; 0 means none
	allProcs []*Proc

	// Rand is a deterministic source seeded at construction. Workloads
	// should draw from it so runs replay exactly.
	Rand *rand.Rand

	// TraceW, when non-nil, receives a line per scheduling decision.
	// Intended for debugging and for the figure-trace tooling.
	TraceW io.Writer
}

// New returns a simulator with its clock at zero and a deterministic
// random source derived from seed.
func New(seed int64) *Sim {
	return &Sim{
		yielded: make(chan struct{}),
		Rand:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// schedule enqueues ev at time t (clamped to now).
func (s *Sim) schedule(t Time, p *Proc, fn func()) *event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &event{t: t, seq: s.seq, p: p, fn: fn}
	heap.Push(&s.events, ev)
	return ev
}

// After runs fn in scheduler context d from now. fn must not block; it may
// wake processes, mutate state, and schedule further events. It models
// things like interrupt delivery.
func (s *Sim) After(d Time, fn func()) {
	s.schedule(s.now+d, nil, fn)
}

// At runs fn in scheduler context at absolute time t (or now, if t is past).
func (s *Sim) At(t Time, fn func()) {
	s.schedule(t, nil, fn)
}

// Stop ends the run; Run returns once the current process yields.
func (s *Sim) Stop() { s.stopped = true }

// DeadlockError is returned by Run when no event is pending but live
// processes remain blocked.
type DeadlockError struct {
	At      Time
	Blocked []string // names of blocked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked %v", e.At, len(e.Blocked), e.Blocked)
}

// Run executes the simulation until no runnable process or pending event
// remains, Stop is called, or (if RunUntil was used) the time bound is
// reached. It returns a *DeadlockError if live processes remain blocked
// with no pending event, and nil otherwise.
func (s *Sim) Run() error {
	for !s.stopped {
		if len(s.ready) == 0 {
			if s.events.Len() == 0 {
				break
			}
			ev := heap.Pop(&s.events).(*event)
			if s.limit > 0 && ev.t > s.limit {
				heap.Push(&s.events, ev)
				break
			}
			s.now = ev.t
			if ev.fn != nil {
				ev.fn()
			} else if ev.p != nil && ev.p.state == stateSleeping {
				ev.p.state = stateReady
				s.ready = append(s.ready, ev.p)
			}
			continue
		}
		p := s.ready[0]
		copy(s.ready, s.ready[1:])
		s.ready = s.ready[:len(s.ready)-1]
		if p.state != stateReady {
			continue
		}
		s.runProc(p)
	}
	if !s.stopped && s.limit == 0 && s.live > 0 {
		var blocked []string
		for _, p := range s.allProcs {
			if p.daemon {
				continue
			}
			if p.state == stateBlocked || p.state == stateSleeping {
				blocked = append(blocked, p.name)
			}
		}
		if len(blocked) > 0 {
			return &DeadlockError{At: s.now, Blocked: blocked}
		}
	}
	return nil
}

// RunUntil executes the simulation like Run but stops advancing the clock
// past t. Events scheduled after t remain pending; a subsequent RunUntil
// or Run resumes them.
func (s *Sim) RunUntil(t Time) error {
	s.limit = t
	err := s.Run()
	s.limit = 0
	if s.now < t && !s.stopped {
		s.now = t
	}
	return err
}

// runProc hands control to p and waits for it to yield back.
func (s *Sim) runProc(p *Proc) {
	p.state = stateRunning
	s.current = p
	if s.TraceW != nil {
		fmt.Fprintf(s.TraceW, "%v run %s\n", s.now, p.name)
	}
	p.wake <- struct{}{}
	<-s.yielded
	s.current = nil
}

// Current returns the running process, or nil when called from scheduler
// context (an After/At callback).
func (s *Sim) Current() *Proc { return s.current }
