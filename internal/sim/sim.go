package sim

import (
	"fmt"
	"io"
	"math/rand"
)

// event is a scheduled occurrence: a callback run in scheduler context.
// Process wakeups use the proc's prebuilt wakeFn closure, so a single
// fn field covers both kinds and events stay 24 bytes — the heap sift
// loops move nothing else. Events at equal times fire in scheduling
// order (seq). Events are plain values inside the Sim's heap slice:
// scheduling one allocates nothing (the slice grows amortized), and
// comparisons read the key straight from the slice instead of chasing
// a pointer.
type event struct {
	t   Time
	seq int64
	fn  func()
}

// Sim is a discrete-event simulator. Create one with New, add processes
// with Spawn, then call Run, and Close when done with the instance.
type Sim struct {
	now Time
	seq int64

	// events is a binary min-heap on (t, seq), managed by pushEvent and
	// popEvent. A hand-rolled value heap (rather than container/heap)
	// keeps the hot path free of allocation, interface boxing, and
	// indirect calls; pop order is fully determined by the unique
	// (t, seq) key, so the heap layout cannot influence event order.
	// The heap occupies events[:elen]; the slice itself is kept at
	// capacity so push and pop never reslice.
	events []event
	elen   int

	// ready is a power-of-two ring buffer of runnable processes:
	// FIFO push/pop in O(1), replacing the copy()-per-dispatch slice.
	ready     []*Proc
	readyHead int
	readyLen  int

	yielded  chan struct{}
	current  *Proc
	live     int // spawned processes that have not yet exited
	stopped  bool
	closed   bool
	limit    Time // run-until bound; 0 means none
	allProcs []*Proc

	// Rand is a deterministic source seeded at construction. Workloads
	// should draw from it so runs replay exactly.
	Rand *rand.Rand

	// TraceW, when non-nil, receives a line per scheduling decision.
	// Intended for debugging and for the figure-trace tooling.
	TraceW io.Writer
}

// New returns a simulator with its clock at zero and a deterministic
// random source derived from seed.
func New(seed int64) *Sim {
	return &Sim{
		yielded: make(chan struct{}, 1),
		Rand:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// schedule enqueues a callback at time t (clamped to now).
func (s *Sim) schedule(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.pushEvent(event{t: t, seq: s.seq, fn: fn})
}

// eventBefore is the heap order: time, then scheduling order.
func eventBefore(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// pushEvent sifts ev up into the min-heap, moving the hole instead of
// swapping (one write per level plus the final placement). The heap
// occupies events[:elen] of a slice kept at capacity, so a push in the
// steady state is a plain indexed store, not an append.
func (s *Sim) pushEvent(ev event) {
	i := s.elen
	if i == len(s.events) {
		s.events = append(s.events, ev)
	}
	s.elen++
	h := s.events
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// popEvent removes and returns the earliest event. It uses bottom-up
// deletion: the root hole walks down along min-child links with a single
// comparison per level (never comparing against the displaced last leaf),
// and the leaf is then sifted up from the bottom. Because the displaced
// leaf nearly always belongs near the bottom again, the sift-up is
// usually zero or one step, cutting the dominant cost of a pop — the
// two-comparisons-per-level classic sift-down — almost in half.
func (s *Sim) popEvent() event {
	h := s.events
	ev := h[0]
	n := s.elen - 1
	s.elen = n
	last := h[n]
	// The vacated slot keeps its stale value; it is overwritten by the
	// next push, and retention is bounded by the queue's high-water mark.
	if n > 0 {
		i := 0
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			if r := l + 1; r < n && eventBefore(&h[r], &h[l]) {
				l = r
			}
			h[i] = h[l]
			i = l
		}
		for i > 0 {
			parent := (i - 1) / 2
			if !eventBefore(&last, &h[parent]) {
				break
			}
			h[i] = h[parent]
			i = parent
		}
		h[i] = last
	}
	return ev
}

// readyPush appends p to the FIFO ready ring.
func (s *Sim) readyPush(p *Proc) {
	if s.readyLen == len(s.ready) {
		n := len(s.ready) * 2
		if n == 0 {
			n = 8
		}
		buf := make([]*Proc, n)
		for i := 0; i < s.readyLen; i++ {
			buf[i] = s.ready[(s.readyHead+i)&(len(s.ready)-1)]
		}
		s.ready = buf
		s.readyHead = 0
	}
	s.ready[(s.readyHead+s.readyLen)&(len(s.ready)-1)] = p
	s.readyLen++
}

// readyPop removes the longest-queued ready process.
func (s *Sim) readyPop() *Proc {
	p := s.ready[s.readyHead]
	s.ready[s.readyHead] = nil
	s.readyHead = (s.readyHead + 1) & (len(s.ready) - 1)
	s.readyLen--
	return p
}

// After runs fn in scheduler context d from now. fn must not block; it may
// wake processes, mutate state, and schedule further events. It models
// things like interrupt delivery.
func (s *Sim) After(d Time, fn func()) {
	s.schedule(s.now+d, fn)
}

// At runs fn in scheduler context at absolute time t (or now, if t is past).
func (s *Sim) At(t Time, fn func()) {
	s.schedule(t, fn)
}

// Stop ends the run; Run returns once the current process yields.
func (s *Sim) Stop() { s.stopped = true }

// procKilled is the panic value used to unwind a process goroutine when
// the simulation is closed. Deferred cleanup in the process body runs
// during the unwind; the spawn wrapper recovers it.
type procKilled struct{}

// Close terminates the simulation and unwinds every process goroutine
// that is still parked (sleeping, blocked, or stopped mid-run). Without
// it, a Sim abandoned after Stop or RunUntil leaks one host goroutine
// per live process — fatal for a runner executing thousands of sims in
// one process. Close must be called from host context, after Run or
// RunUntil has returned; it is idempotent, and the Sim must not be used
// afterwards.
func (s *Sim) Close() {
	if s.closed {
		return
	}
	if s.current != nil {
		// simlint:invariant -- API misuse: Close from inside the simulation.
		panic("sim: Close called from inside the simulation")
	}
	s.closed = true
	for _, p := range s.allProcs {
		if p.state == stateDead {
			continue
		}
		// Every live process goroutine is parked on <-p.wake; the wake
		// is the poison (park sees closed and panics procKilled), and
		// the wrapper acknowledges on yielded once unwound.
		p.wake <- struct{}{}
		<-s.yielded
	}
}

// DeadlockError is returned by Run when no event is pending but live
// processes remain blocked.
type DeadlockError struct {
	At      Time
	Blocked []string // names of blocked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked %v", e.At, len(e.Blocked), e.Blocked)
}

// next advances the simulation to the next dispatch: it drains due
// callbacks inline (no goroutine round-trip) and promotes due sleeper
// wakeups until a runnable process emerges. It returns nil when the run
// is over — Stop was called, the RunUntil bound was reached, or no work
// remains.
func (s *Sim) next() *Proc {
	for {
		if s.stopped {
			return nil
		}
		if s.readyLen > 0 {
			p := s.readyPop()
			if p.state != stateReady {
				continue
			}
			return p
		}
		if s.elen == 0 {
			return nil
		}
		if s.limit > 0 && s.events[0].t > s.limit {
			return nil
		}
		ev := s.popEvent()
		s.now = ev.t
		ev.fn()
	}
}

// dispatchTo records the scheduling decision: p becomes the running
// process and the trace line is emitted. The caller transfers control —
// by waking p's goroutine, or by simply returning when p is the caller
// (the switchless fast path).
func (s *Sim) dispatchTo(p *Proc) {
	p.state = stateRunning
	s.current = p
	if s.TraceW != nil {
		fmt.Fprintf(s.TraceW, "%v run %s\n", s.now, p.name)
	}
}

// Run executes the simulation until no runnable process or pending event
// remains, Stop is called, or (if RunUntil was used) the time bound is
// reached. It returns a *DeadlockError if live processes remain blocked
// with no pending event, and nil otherwise.
//
// Scheduling is hand-off style: the kernel runs on whichever goroutine
// holds control, so a context switch from one process to the next costs
// a single channel hand-off (the yielding goroutine selects the next
// process itself and wakes it directly) instead of a round-trip through
// a dedicated scheduler goroutine. Run only parks until some process
// goroutine reports the run complete on the yielded channel.
func (s *Sim) Run() error {
	if p := s.next(); p != nil {
		s.dispatchTo(p)
		p.wake <- struct{}{}
		<-s.yielded
	}
	s.current = nil
	if !s.stopped && s.limit == 0 && s.live > 0 {
		var blocked []string
		for _, p := range s.allProcs {
			if p.daemon {
				continue
			}
			if p.state == stateBlocked || p.state == stateSleeping {
				blocked = append(blocked, p.name)
			}
		}
		if len(blocked) > 0 {
			return &DeadlockError{At: s.now, Blocked: blocked}
		}
	}
	return nil
}

// RunUntil executes the simulation like Run but stops advancing the clock
// past t. Events scheduled after t remain pending; a subsequent RunUntil
// or Run resumes them.
func (s *Sim) RunUntil(t Time) error {
	s.limit = t
	err := s.Run()
	s.limit = 0
	if s.now < t && !s.stopped {
		s.now = t
	}
	return err
}

// Current returns the running process, or nil when called from scheduler
// context (an After/At callback).
func (s *Sim) Current() *Proc { return s.current }
