package sim

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateSleeping
	stateBlocked
	stateDead
)

// Proc is a simulated thread of control. Its body function runs on a
// dedicated goroutine, but the kernel guarantees that at most one process
// (or the scheduler) executes at any instant, handing control back and
// forth over unbuffered channels. Shared simulation state therefore needs
// no locking.
type Proc struct {
	sim   *Sim
	name  string
	wake  chan struct{}
	state procState

	// daemon processes (device service loops, the pageout daemon) are
	// expected to block forever and are excluded from deadlock
	// detection and run-completion accounting.
	daemon bool

	// blockedOn names the wait queue the process is parked on, for
	// deadlock diagnostics.
	blockedOn string
}

// Spawn creates a process named name running fn and makes it runnable at
// the current virtual time. It may be called before Run or from any
// process or scheduler context during the run.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, wake: make(chan struct{}), state: stateReady}
	s.live++
	s.allProcs = append(s.allProcs, p)
	go func() {
		<-p.wake
		fn(p)
		p.state = stateDead
		s.live--
		s.yielded <- struct{}{}
	}()
	s.ready = append(s.ready, p)
	return p
}

// SpawnDaemon creates a process like Spawn but marks it as a daemon:
// it may block forever without being reported as deadlocked.
func (s *Sim) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	p := s.Spawn(name, fn)
	p.daemon = true
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// yield hands control back to the scheduler and blocks until rewoken.
func (p *Proc) yield() {
	p.sim.yielded <- struct{}{}
	<-p.wake
	p.state = stateRunning
}

// Sleep suspends the process for d of virtual time. A non-positive d
// still yields the processor, letting other ready processes run first.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.state = stateSleeping
	p.sim.schedule(p.sim.now+d, p, nil)
	p.yield()
}

// Yield makes the process runnable again after all currently-ready
// processes have run, without advancing the clock.
func (p *Proc) Yield() {
	p.state = stateReady
	p.sim.ready = append(p.sim.ready, p)
	p.yield()
}

// Block parks the process on q until some other party calls q.WakeOne or
// q.WakeAll. Callers almost always re-check their predicate in a loop:
//
//	for !cond() {
//		p.Block(&q)
//	}
func (p *Proc) Block(q *WaitQ) {
	p.state = stateBlocked
	p.blockedOn = q.Name
	q.procs = append(q.procs, p)
	p.yield()
	p.blockedOn = ""
}
