package sim

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateSleeping
	stateBlocked
	stateDead
)

// Proc is a simulated thread of control. Its body function runs on a
// dedicated goroutine, but the kernel guarantees that at most one process
// (or the scheduler) executes at any instant, handing control over
// channels in a strict token-passing chain. Shared simulation state
// therefore needs no locking.
type Proc struct {
	sim   *Sim
	name  string
	wake  chan struct{}
	state procState

	// wakeFn is the prebuilt timer-expiry closure for this process,
	// allocated once at Spawn so Sleep schedules a plain event with no
	// per-call allocation. A stale wakeup (the process was already woken
	// through a wait queue) is a no-op thanks to the state check.
	wakeFn func()

	// daemon processes (device service loops, the pageout daemon) are
	// expected to block forever and are excluded from deadlock
	// detection and run-completion accounting.
	daemon bool

	// blockedOn names the wait queue the process is parked on, for
	// deadlock diagnostics.
	blockedOn string
}

// Spawn creates a process named name running fn and makes it runnable at
// the current virtual time. It may be called before Run or from any
// process or scheduler context during the run.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	// The wake channel is buffered so a dispatcher handing control to a
	// freshly spawned process does not stall until its goroutine first
	// reaches park; the token protocol guarantees at most one
	// outstanding wake per process.
	p := &Proc{sim: s, name: name, wake: make(chan struct{}, 1), state: stateReady}
	p.wakeFn = func() {
		if p.state == stateSleeping {
			p.state = stateReady
			s.readyPush(p)
		}
	}
	s.live++
	s.allProcs = append(s.allProcs, p)
	go func() {
		defer func() {
			p.state = stateDead
			s.live--
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					// A genuine panic in the process body: re-raise it.
					// simlint:invariant -- propagating the body's own panic.
					panic(r)
				}
				s.yielded <- struct{}{} // acknowledge Close
				return
			}
			// The process finished: continue the dispatch chain from
			// here, or report the run complete.
			s.current = nil
			if q := s.next(); q != nil {
				s.dispatchTo(q)
				q.wake <- struct{}{}
			} else {
				s.yielded <- struct{}{}
			}
		}()
		p.park()
		fn(p)
	}()
	s.readyPush(p)
	return p
}

// SpawnDaemon creates a process like Spawn but marks it as a daemon:
// it may block forever without being reported as deadlocked.
func (s *Sim) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	p := s.Spawn(name, fn)
	p.daemon = true
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulator the process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// park blocks until a dispatcher (or Close) hands the token back. A
// wake received after Close is poison: it unwinds the goroutine.
func (p *Proc) park() {
	<-p.wake
	if p.sim.closed {
		// simlint:invariant -- controlled unwind of a poisoned process; recovered in Spawn.
		panic(procKilled{})
	}
}

// yield hands the processor over after the caller has queued itself
// (or an event) for later resumption. The yielding goroutine runs the
// scheduler itself: it drains due callbacks, picks the next process,
// and wakes that goroutine directly — one hand-off per context switch.
// If the next runnable process is the caller itself, control never
// leaves this goroutine (the switchless fast path). If the run is over,
// control returns to Run via the yielded channel and the caller parks.
func (p *Proc) yield() {
	s := p.sim
	if s.closed {
		// A deferred cleanup called a blocking primitive while the
		// goroutine unwinds from Close; keep unwinding.
		// simlint:invariant -- controlled unwind of a poisoned process; recovered in Spawn.
		panic(procKilled{})
	}
	s.current = nil
	q := s.next()
	switch {
	case q == p:
		s.dispatchTo(p)
	case q != nil:
		s.dispatchTo(q)
		q.wake <- struct{}{}
		p.park()
	default:
		s.yielded <- struct{}{}
		p.park()
	}
}

// Sleep suspends the process for d of virtual time. A non-positive d
// still yields the processor, letting other ready processes run first.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.state = stateSleeping
	p.sim.schedule(p.sim.now+d, p.wakeFn)
	p.yield()
}

// Yield makes the process runnable again after all currently-ready
// processes have run, without advancing the clock.
func (p *Proc) Yield() {
	p.state = stateReady
	p.sim.readyPush(p)
	p.yield()
}

// Block parks the process on q until some other party calls q.WakeOne or
// q.WakeAll. Callers almost always re-check their predicate in a loop:
//
//	for !cond() {
//		p.Block(&q)
//	}
func (p *Proc) Block(q *WaitQ) {
	p.state = stateBlocked
	p.blockedOn = q.Name
	q.procs = append(q.procs, p)
	p.yield()
	p.blockedOn = ""
}
