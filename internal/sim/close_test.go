package sim

import (
	"runtime"
	"testing"
	"time"
)

// goroutinesSettled polls until the goroutine count drops to want (the
// unwind is asynchronous only in that the dead goroutines may not have
// been reaped the instant Close returns).
func goroutinesSettled(want int) bool {
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= want {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// TestCloseUnwindsParkedGoroutines is the goroutine-leak gate: a sim
// abandoned after RunUntil holds one parked goroutine per live process,
// and Close must release every one of them.
func TestCloseUnwindsParkedGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(1)
	for i := 0; i < 8; i++ {
		s.SpawnDaemon("d", func(p *Proc) {
			var q WaitQ
			for {
				p.Block(&q) // parked forever
			}
		})
	}
	s.Spawn("worker", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(Millisecond)
		}
	})
	if err := s.RunUntil(2 * Millisecond); err != nil {
		t.Fatal(err)
	}
	// The worker is mid-run (sleeping) and the daemons are blocked:
	// nine goroutines are parked right now.
	if n := runtime.NumGoroutine(); n < before+9 {
		t.Fatalf("expected >= %d goroutines while parked, have %d", before+9, n)
	}
	s.Close()
	if !goroutinesSettled(before) {
		t.Fatalf("goroutines leaked after Close: %d, want <= %d", runtime.NumGoroutine(), before)
	}
}

// TestCloseRunsDeferredCleanup pins the unwind semantics: deferred
// cleanup in a process body runs during Close, and may even call a
// blocking primitive (which re-poisons and keeps unwinding).
func TestCloseRunsDeferredCleanup(t *testing.T) {
	s := New(1)
	cleaned := 0
	s.SpawnDaemon("d", func(p *Proc) {
		defer func() {
			cleaned++
			p.Sleep(Second) // must not hang: poisoned sim keeps unwinding
		}()
		var q WaitQ
		p.Block(&q)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if cleaned != 1 {
		t.Fatalf("deferred cleanup ran %d times, want 1", cleaned)
	}
}

func TestCloseIdempotentAndAfterCompletion(t *testing.T) {
	s := New(1)
	s.Spawn("p", func(p *Proc) { p.Sleep(Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // second Close is a no-op
}

func TestCloseAfterStop(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(1)
	s.Spawn("stopper", func(p *Proc) {
		p.Sleep(Microsecond)
		s.Stop()
	})
	s.Spawn("sleeper", func(p *Proc) { p.Sleep(Second) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !goroutinesSettled(before) {
		t.Fatalf("goroutines leaked after Stop+Close: %d, want <= %d", runtime.NumGoroutine(), before)
	}
}
