package musbus

import (
	"testing"

	"ufsclust"
	"ufsclust/internal/sim"
)

func TestRunCompletesIterations(t *testing.T) {
	res, err := Run(ufsclust.RunD(), Params{Users: 4, Duration: 60 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 10 {
		t.Fatalf("only %d iterations in a simulated minute", res.Iterations)
	}
	if res.Throughput() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestTimeSharingImprovesOnlySlightly(t *testing.T) {
	// The paper's negative result: "the time-sharing benchmarks
	// improved only slightly" because MusBus moves no substantial data.
	prm := Params{Users: 4, Duration: 120 * sim.Second}
	a, err := Run(ufsclust.RunA(), prm)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(ufsclust.RunD(), prm)
	if err != nil {
		t.Fatal(err)
	}
	ratio := a.Throughput() / d.Throughput()
	if ratio < 0.9 || ratio > 1.35 {
		t.Errorf("MusBus A/D throughput = %.2f (A=%.1f D=%.1f iter/min); clustering should change little",
			ratio, a.Throughput(), d.Throughput())
	}
}

func TestDeterministic(t *testing.T) {
	prm := Params{Users: 2, Duration: 30 * sim.Second}
	r1, err := Run(ufsclust.RunB(), prm)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(ufsclust.RunB(), prm)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations != r2.Iterations || r1.CPUTime != r2.CPUTime {
		t.Fatalf("not reproducible: %+v vs %+v", r1, r2)
	}
}
