// Package musbus approximates MusBus, the multi-user time-sharing
// benchmark the paper used to check that ordinary interactive work
// neither benefits from nor is hurt by clustering: "the benchmark was
// spending most of its time sleeping and the rest of the time running
// small programs ... The largest I/O transfer done by MusBus was around
// 8KB which is the file system block size. In other words, MusBus
// didn't move any substantial amount of data."
package musbus

import (
	"fmt"
	"io"

	"ufsclust"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// Params sizes a run.
type Params struct {
	Users    int      // concurrent simulated users; default 8
	Duration sim.Time // virtual time to run; default 5 minutes
	Seed     int64

	// TraceW, when non-nil, receives the machine's scheduler trace
	// (sim.Sim.TraceW). Only meaningful for a single Run.
	TraceW io.Writer
}

func (p Params) withDefaults() Params {
	if p.Users == 0 {
		p.Users = 8
	}
	if p.Duration == 0 {
		p.Duration = 5 * 60 * sim.Second
	}
	return p
}

// Result reports one run.
type Result struct {
	Run        string
	Users      int
	Duration   sim.Time
	Iterations int64 // completed user-script iterations
	CPUTime    sim.Time
}

// Throughput returns script iterations per virtual minute.
func (r Result) Throughput() float64 {
	if r.Duration == 0 {
		return 0
	}
	return float64(r.Iterations) / (r.Duration.Seconds() / 60)
}

// Run executes the workload under one paper configuration.
func Run(rc ufsclust.RunConfig, prm Params) (Result, error) {
	res, _, err := RunMeasured(rc, prm)
	return res, err
}

// RunMeasured is Run plus a telemetry Snapshot delta spanning the
// timed interval (machine assembly excluded).
func RunMeasured(rc ufsclust.RunConfig, prm Params) (Result, telemetry.Snapshot, error) {
	prm = prm.withDefaults()
	m, err := ufsclust.New(rc, ufsclust.WithSeed(prm.Seed+77))
	if err != nil {
		return Result{}, telemetry.Snapshot{}, err
	}
	defer m.Close()
	m.Sim.TraceW = prm.TraceW
	res := Result{Run: rc.Name, Users: prm.Users, Duration: prm.Duration}

	var setupErr error
	m.Sim.Spawn("setup", func(p *sim.Proc) {
		if _, err := m.FS.Mkdir(p, "/home"); err != nil {
			setupErr = err
			return
		}
		for u := 0; u < prm.Users; u++ {
			if _, err := m.FS.Mkdir(p, fmt.Sprintf("/home/u%d", u)); err != nil {
				setupErr = err
				return
			}
		}
		for u := 0; u < prm.Users; u++ {
			user := u
			m.Sim.SpawnDaemon(fmt.Sprintf("user%d", user), func(up *sim.Proc) {
				runUser(m, up, user, &res.Iterations)
			})
		}
	})
	pre := m.Snapshot()
	if err := m.Sim.RunUntil(prm.Duration); err != nil {
		return Result{}, telemetry.Snapshot{}, err
	}
	if setupErr != nil {
		return Result{}, telemetry.Snapshot{}, setupErr
	}
	snap := m.Snapshot().Delta(pre)
	res.CPUTime = sim.Time(snap.Get("cpu.system_ns"))
	return res, snap, nil
}

// runUser loops a small interactive script forever: think, run a small
// command (pure CPU), edit a file (create, write <= 8 KB, read it back,
// remove), list the directory.
func runUser(m *ufsclust.Machine, p *sim.Proc, user int, iters *int64) {
	rng := m.Sim.Rand
	dir := fmt.Sprintf("/home/u%d", user)
	buf := make([]byte, 8192)
	n := 0
	for {
		// Think time: "spending most of its time sleeping".
		p.Sleep(sim.Time(500+rng.Intn(2000)) * sim.Millisecond)

		// Small programs (date, ls): short CPU bursts.
		for i := 0; i < 3; i++ {
			m.CPU.Use(p, "musbus-cmd", int64(20000+rng.Intn(80000)))
		}

		// Edit cycle: the largest transfer is one block.
		name := fmt.Sprintf("%s/f%d", dir, n)
		n++
		f, err := m.Engine.Create(p, name)
		if err != nil {
			continue
		}
		size := 512 + rng.Intn(8192-512)
		f.Write(p, 0, buf[:size])
		f.Fsync(p)
		f.Read(p, 0, buf[:size])
		if err := m.Engine.Remove(p, name); err != nil {
			continue
		}

		// ls: read the directory.
		if dip, err := m.FS.Namei(p, dir); err == nil {
			m.FS.ReadDir(p, dip)
		}
		*iters++
	}
}
