package iobench

import (
	"os"
	"strings"
	"testing"

	"ufsclust"
)

// smallParams keeps unit tests quick; the full 16 MB paper configuration
// runs in the benchmark harness (bench_test.go, cmd/iobench).
func smallParams() Params {
	return Params{FileMB: 8, RandomOps: 192, MemBytes: 8 << 20}
}

func TestKindsOrder(t *testing.T) {
	want := []Kind{FSR, FSU, FSW, FRR, FRU}
	got := Kinds()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds() = %v", got)
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.FileMB != 16 || p.IOSize != 8192 || p.RandomOps != 2048 {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestRunProducesPositiveRate(t *testing.T) {
	res, err := Run(ufsclust.RunA(), FSR, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.RateKBs() <= 0 || res.Elapsed <= 0 || res.Bytes != 8<<20 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.CPUTime <= 0 {
		t.Fatal("no CPU time accounted")
	}
}

func TestSequentialClusteringWins(t *testing.T) {
	// The paper's headline: "Predictably, the sequential I/O rates
	// improved about a factor of two."
	prm := smallParams()
	for _, kind := range []Kind{FSR, FSU, FSW} {
		a, err := Run(ufsclust.RunA(), kind, prm)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Run(ufsclust.RunD(), kind, prm)
		if err != nil {
			t.Fatal(err)
		}
		ratio := a.RateKBs() / d.RateKBs()
		if ratio < 1.4 || ratio > 2.6 {
			t.Errorf("%s A/D = %.2f, want ~1.7-2.2 (A=%.0f D=%.0f KB/s)",
				kind, ratio, a.RateKBs(), d.RateKBs())
		}
	}
}

func TestRandomReadsUnaffected(t *testing.T) {
	// Figure 11: FRR ratios are ~1.04-1.05 — clustering neither helps
	// nor hurts random reads.
	prm := smallParams()
	a, err := Run(ufsclust.RunA(), FRR, prm)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(ufsclust.RunD(), FRR, prm)
	if err != nil {
		t.Fatal(err)
	}
	ratio := a.RateKBs() / d.RateKBs()
	if ratio < 0.85 || ratio > 1.25 {
		t.Errorf("FRR A/D = %.2f, want ~1.0", ratio)
	}
}

func TestRandomUpdateFairnessCost(t *testing.T) {
	// Figure 11's one sub-1.0 cell: FRU A/D = 0.83 — the write limit
	// trades random-update throughput for fairness. We reproduce the
	// direction (A <= D within noise), though our seek model recovers
	// less of disksort's deep-queue advantage than the 1991 hardware.
	prm := smallParams()
	prm.RandomOps = 512
	a, err := Run(ufsclust.RunA(), FRU, prm)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(ufsclust.RunD(), FRU, prm)
	if err != nil {
		t.Fatal(err)
	}
	ratio := a.RateKBs() / d.RateKBs()
	if ratio > 1.05 {
		t.Errorf("FRU A/D = %.2f, want <= ~1.0 (the fairness tradeoff)", ratio)
	}
}

func TestAbsoluteRatesPlausible(t *testing.T) {
	// Sanity-band the absolute KB/s against the hardware model:
	// media rate is ~1.9 MB/s, so run A sequential must land between
	// 1.0 and 1.92 MB/s and legacy runs near half of it.
	prm := smallParams()
	a, _ := Run(ufsclust.RunA(), FSR, prm)
	if r := a.RateKBs(); r < 1100 || r > 1966 {
		t.Errorf("A FSR = %.0f KB/s, outside [1100, 1966]", r)
	}
	d, _ := Run(ufsclust.RunD(), FSR, prm)
	if r := d.RateKBs(); r < 600 || r > 1050 {
		t.Errorf("D FSR = %.0f KB/s, outside [600, 1050]", r)
	}
}

func TestWriteLimitStallsOnlyLimitedRuns(t *testing.T) {
	prm := smallParams()
	// Run A has the 240KB limit; stalls expected on sequential write.
	resA, err := Run(ufsclust.RunA(), FSW, prm)
	if err != nil {
		t.Fatal(err)
	}
	_ = resA
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Cells: map[string]map[Kind]Result{
			"A": {FSR: {Run: "A", Kind: FSR, Bytes: 1 << 20, Elapsed: 1e9}},
			"D": {FSR: {Run: "D", Kind: FSR, Bytes: 1 << 20, Elapsed: 2e9}},
		},
		Order: []string{"A", "D"},
	}
	rates := tab.FormatRates([]Kind{FSR})
	if !strings.Contains(rates, "1024") || !strings.Contains(rates, "512") {
		t.Errorf("rates table wrong:\n%s", rates)
	}
	ratios := tab.FormatRatios([]Kind{FSR})
	if !strings.Contains(ratios, "2.00") {
		t.Errorf("ratios table wrong:\n%s", ratios)
	}
	if tab.Ratio("A", "D", FSR) != 2.0 {
		t.Errorf("Ratio = %v", tab.Ratio("A", "D", FSR))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	prm := smallParams()
	r1, err := Run(ufsclust.RunB(), FSR, prm)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(ufsclust.RunB(), FSR, prm)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed != r2.Elapsed || r1.CPUTime != r2.CPUTime {
		t.Fatalf("benchmark not reproducible: %v/%v vs %v/%v",
			r1.Elapsed, r1.CPUTime, r2.Elapsed, r2.CPUTime)
	}
}

// TestParallelTableMatchesSerial pins the parallel sweep contract at the
// table level: the run×kind matrix computed on many host workers renders
// byte-identically to the serial one.
func TestParallelTableMatchesSerial(t *testing.T) {
	runs := []ufsclust.RunConfig{ufsclust.RunA(), ufsclust.RunD()}
	prm := Params{FileMB: 1, RandomOps: 16}
	serial, err := RunAll(runs, Kinds(), prm)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllParallel(runs, Kinds(), prm, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.FormatRates(Kinds()), par.FormatRates(Kinds()); s != p {
		t.Fatalf("parallel table differs from serial\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
	if s, p := serial.FormatRatios(Kinds()), par.FormatRatios(Kinds()); s != p {
		t.Fatalf("parallel ratios differ from serial\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
	if _, err := RunAllParallel(runs, Kinds(), Params{FileMB: 1, RandomOps: 16, TraceW: os.Stderr}, 2); err == nil {
		t.Fatal("RunAllParallel accepted a TraceW with workers > 1; traces would interleave")
	}
}
