// Package iobench reimplements the paper's IObench workload: sequential
// and random reads, writes, and updates of a large file through the file
// system, reported in KB/second of virtual time. The five I/O types are
// named as in Figure 10: the first letter means File system, the second
// Sequential or Random, the third Read, Write, or Update ("in the update
// case the file's blocks have already been allocated").
package iobench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ufsclust"
	"ufsclust/internal/prefetch"
	"ufsclust/internal/runner"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/vec"
	"ufsclust/internal/vol"
	"ufsclust/internal/wal"
)

// Kind is one IObench I/O type.
type Kind string

// The five I/O types of Figure 10, plus the mixed cell this
// reproduction adds for the read-ahead policy work.
const (
	FSR Kind = "FSR" // sequential read
	FSU Kind = "FSU" // sequential update
	FSW Kind = "FSW" // sequential write (fresh allocation)
	FRR Kind = "FRR" // random read
	FRU Kind = "FRU" // random update

	// FMX interleaves sequential and random read phases over one file:
	// the file is streamed in MixedPhases contiguous segments, and after
	// each segment the reader issues RandomOps/MixedPhases random
	// two-block bursts anywhere in the file. It is the workload the
	// paper's pure-sequential/pure-random matrix cannot express — the
	// one where a fixed always-on prefetch pollutes the random phase and
	// a fixed-off run starves the sequential phase, so an adaptive
	// policy must beat both.
	FMX Kind = "FMX" // mixed sequential/random read

	// FSTR is the strided vectored-read cell: Readv calls of VecBatch
	// Record-sized pieces whose starts are Stride bytes apart. Density
	// (Record/Stride) is the cell's real parameter — dense strides favour
	// data sieving (one envelope read, some waste), sparse strides favour
	// true list I/O (per-run transfers, no waste) — so sweeping Stride
	// with each vec strategy reproduces the sieve/list crossover of
	// Ching et al.'s noncontiguous-I/O study.
	FSTR Kind = "FSTR" // strided vectored read
)

// Kinds returns the paper's column order.
func Kinds() []Kind { return []Kind{FSR, FSU, FSW, FRR, FRU} }

// AllKinds returns every supported I/O type: the paper's five plus the
// mixed read cell and the strided vectored-read cell.
func AllKinds() []Kind { return []Kind{FSR, FSU, FSW, FRR, FRU, FMX, FSTR} }

// MixedPhases is the number of sequential/random phase pairs in an FMX
// run.
const MixedPhases = 4

// MixedBurstBlocks is the length, in blocks, of one random-phase burst:
// a short sequential run at a random offset, the record-crossing access
// shape that baits an eager prefetcher into issuing a full cluster.
const MixedBurstBlocks = 2

// PolicyFactory maps a command-line policy name to a Params.Policy
// factory: "fixed" is nil (the run configuration's default), "adaptive"
// builds a fresh default-tuned adaptive policy per machine, and "off"
// disables read-ahead. The second result is false for unknown names.
func PolicyFactory(name string) (func() prefetch.Policy, bool) {
	switch strings.ToLower(name) {
	case "fixed", "":
		return nil, true
	case "adaptive":
		return func() prefetch.Policy { return prefetch.NewAdaptive(prefetch.AdaptiveConfig{}) }, true
	case "off":
		return func() prefetch.Policy { return prefetch.Off() }, true
	}
	return nil, false
}

// VecFactory maps a command-line vec-strategy name to a Params.Vec
// factory: "auto" is nil (the engine's density-threshold default), and
// "naive"/"sieve"/"list" force one method for every multi-element
// vector. The second result is false for unknown names.
func VecFactory(name string) (func() vec.Strategy, bool) {
	switch strings.ToLower(name) {
	case "auto", "":
		return nil, true
	case "naive":
		return func() vec.Strategy { return vec.UseNaive() }, true
	case "sieve":
		return func() vec.Strategy { return vec.UseSieve() }, true
	case "list":
		return func() vec.Strategy { return vec.UseList() }, true
	}
	return nil, false
}

// Params sizes a benchmark run. The defaults are the paper's hardware
// constraints: a 16 MB file (twice physical memory) moved 8 KB at a
// time.
type Params struct {
	FileMB    int   // file size; default 16
	IOSize    int   // bytes per read/write call; default 8192
	RandomOps int   // operations in random phases; default file/IOSize
	Seed      int64 // workload RNG seed
	MemBytes  int64 // machine memory; default 8 MB

	// TraceW, when non-nil, receives the machine's scheduler trace
	// (sim.Sim.TraceW). Only meaningful for a single Run: feeding one
	// writer to concurrent runs would interleave their traces.
	TraceW io.Writer

	// EventW, when non-nil, receives the measured phase's telemetry
	// events as JSON lines (setup I/O is excluded). Same-seed runs
	// produce byte-identical streams. Single Run only, like TraceW.
	EventW io.Writer

	// Policy, when non-nil, is called once per machine to build that
	// machine's read-ahead policy (see ufsclust.WithReadAhead). It is a
	// factory rather than an instance because policies carry per-file
	// detector state that must not be shared across machines. nil keeps
	// the run configuration's default (the paper's fixed one-cluster
	// read-ahead).
	Policy func() prefetch.Policy

	// Volume, when non-nil, runs the benchmark on a composed volume
	// (ufsclust.WithVolume) instead of the single sd0 — the -volmatrix
	// sweep's cell configuration.
	Volume *vol.Config

	// Journal, when non-nil, runs the benchmark on a journaled machine
	// (ufsclust.WithJournal) — the -jmatrix sweep's cell configuration
	// for measuring the log's steady-state write amplification.
	Journal *wal.Config

	// Record and Stride shape the FSTR cell: each vector element reads
	// Record bytes, element starts are Stride bytes apart. Defaults:
	// Record = IOSize, Stride = 4*Record. Ignored by other kinds.
	Record int
	Stride int

	// VecBatch is the number of elements per Readv call in FSTR;
	// default 32.
	VecBatch int

	// Vec, when non-nil, is called once per machine to build that
	// machine's Readv/Writev strategy (see ufsclust.WithVecStrategy).
	// nil keeps the engine's density-threshold auto pick. A factory for
	// symmetry with Policy, though today's strategies are stateless.
	Vec func() vec.Strategy

	// VecSingle, when set, routes every scalar Read/Write of the
	// measured phase through a single-element Readv/Writev instead.
	// Single-element vectors must degenerate to the scalar paths
	// byte-for-byte, so a VecSingle run's trace and event stream must
	// equal the plain run's — the golden-replay gate for the vectored
	// entry points.
	VecSingle bool
}

func (p Params) withDefaults() Params {
	if p.FileMB == 0 {
		p.FileMB = 16
	}
	if p.IOSize == 0 {
		p.IOSize = 8192
	}
	if p.RandomOps == 0 {
		p.RandomOps = p.FileMB << 20 / p.IOSize
	}
	if p.Record == 0 {
		p.Record = p.IOSize
	}
	if p.Stride == 0 {
		p.Stride = 4 * p.Record
	}
	if p.VecBatch == 0 {
		p.VecBatch = 32
	}
	return p
}

// Result is one cell of Figure 10.
type Result struct {
	Run     string
	Kind    Kind
	Bytes   int64
	Elapsed sim.Time
	CPUTime sim.Time
}

// RateKBs returns the transfer rate in KB/second (the paper's unit).
func (r Result) RateKBs() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Bytes) / 1024 / r.Elapsed.Seconds()
}

// Run executes one I/O type under one run configuration on a fresh
// machine and returns the measured cell.
func Run(rc ufsclust.RunConfig, kind Kind, prm Params) (Result, error) {
	res, _, err := RunMeasured(rc, kind, prm)
	return res, err
}

// RunMeasured is Run plus the full telemetry of the measured phase: a
// Snapshot delta spanning exactly the timed I/O loop, with setup
// (preallocation, cache purge) excluded. Result stays a comparable
// value for the determinism gates; callers who want disk seek
// histograms or driver queue depths read them from the snapshot.
func RunMeasured(rc ufsclust.RunConfig, kind Kind, prm Params) (Result, telemetry.Snapshot, error) {
	prm = prm.withDefaults()
	opts := []ufsclust.Option{
		ufsclust.WithSeed(prm.Seed + 1),
		ufsclust.WithMemBytes(prm.MemBytes),
	}
	if prm.Policy != nil {
		opts = append(opts, ufsclust.WithReadAhead(prm.Policy()))
	}
	if prm.Volume != nil {
		opts = append(opts, ufsclust.WithVolume(*prm.Volume))
	}
	if prm.Journal != nil {
		opts = append(opts, ufsclust.WithJournal(*prm.Journal))
	}
	if prm.Vec != nil {
		opts = append(opts, ufsclust.WithVecStrategy(prm.Vec()))
	}
	m, err := ufsclust.New(rc, opts...)
	if err != nil {
		return Result{}, telemetry.Snapshot{}, err
	}
	defer m.Close()
	m.Sim.TraceW = prm.TraceW
	size := int64(prm.FileMB) << 20
	res := Result{Run: rc.Name, Kind: kind}
	var snap telemetry.Snapshot

	var runErr error
	err = m.Run(func(p *sim.Proc) {
		rng := m.Sim.Rand
		chunk := make([]byte, prm.IOSize)
		for i := range chunk {
			chunk[i] = byte(i)
		}

		// Setup: all kinds except FSW need a preallocated file.
		var f *ufsclust.File
		if kind == FSW {
			f, runErr = m.Engine.Create(p, "/iobench")
			if runErr != nil {
				return
			}
		} else {
			f, runErr = m.Engine.Create(p, "/iobench")
			if runErr != nil {
				return
			}
			for off := int64(0); off < size; off += int64(prm.IOSize) {
				if _, runErr = f.Write(p, off, chunk); runErr != nil {
					return
				}
			}
			if runErr = f.Purge(p); runErr != nil {
				return
			}
		}
		if prm.EventW != nil {
			m.Tel.Bus.Subscribe(telemetry.NewJSONL(prm.EventW).Write)
		}

		// The measured phase's scalar ops, optionally rerouted through
		// single-element vectors (the degeneration gate — see VecSingle).
		read := func(off int64, b []byte) (int, error) { return f.Read(p, off, b) }
		write := func(off int64, b []byte) (int, error) { return f.Write(p, off, b) }
		if prm.VecSingle {
			read = func(off int64, b []byte) (int, error) {
				return f.Readv(p, []ufsclust.Ext{{Off: off, Len: int64(len(b))}}, b)
			}
			write = func(off int64, b []byte) (int, error) {
				return f.Writev(p, []ufsclust.Ext{{Off: off, Len: int64(len(b))}}, b)
			}
		}

		pre := m.Snapshot()
		t0 := p.Now()

		switch kind {
		case FSR:
			for off := int64(0); off < size; off += int64(prm.IOSize) {
				if _, runErr = read(off, chunk); runErr != nil {
					return
				}
			}
			res.Bytes = size
		case FSU, FSW:
			for off := int64(0); off < size; off += int64(prm.IOSize) {
				if _, runErr = write(off, chunk); runErr != nil {
					return
				}
			}
			if runErr = f.Fsync(p); runErr != nil {
				return
			}
			res.Bytes = size
		case FRR:
			nblocks := size / int64(prm.IOSize)
			for i := 0; i < prm.RandomOps; i++ {
				off := rng.Int63n(nblocks) * int64(prm.IOSize)
				if _, runErr = read(off, chunk); runErr != nil {
					return
				}
			}
			res.Bytes = int64(prm.RandomOps) * int64(prm.IOSize)
		case FRU:
			nblocks := size / int64(prm.IOSize)
			for i := 0; i < prm.RandomOps; i++ {
				off := rng.Int63n(nblocks) * int64(prm.IOSize)
				if _, runErr = write(off, chunk); runErr != nil {
					return
				}
			}
			if runErr = f.Fsync(p); runErr != nil {
				return
			}
			res.Bytes = int64(prm.RandomOps) * int64(prm.IOSize)
		case FMX:
			// Alternate MixedPhases times between streaming one
			// contiguous segment of the file and a burst-random phase.
			// Each burst is MixedBurstBlocks consecutive IOSize reads at
			// a random block-aligned offset: long enough to look briefly
			// sequential, short enough that prefetching past it is pure
			// waste.
			nblocks := size / int64(prm.IOSize)
			seg := size / MixedPhases
			burstsPerPhase := prm.RandomOps / MixedPhases
			var moved int64
			for ph := 0; ph < MixedPhases; ph++ {
				lo := int64(ph) * seg
				hi := lo + seg
				if ph == MixedPhases-1 {
					hi = size
				}
				for off := lo; off < hi; off += int64(prm.IOSize) {
					if _, runErr = read(off, chunk); runErr != nil {
						return
					}
					moved += int64(prm.IOSize)
				}
				for i := 0; i < burstsPerPhase; i++ {
					base := rng.Int63n(nblocks) * int64(prm.IOSize)
					for b := 0; b < MixedBurstBlocks; b++ {
						off := base + int64(b)*int64(prm.IOSize)
						if off >= size {
							break
						}
						if _, runErr = read(off, chunk); runErr != nil {
							return
						}
						moved += int64(prm.IOSize)
					}
				}
			}
			res.Bytes = moved
		case FSTR:
			// Strided vectored read: VecBatch Record-sized pieces per
			// Readv, starts Stride bytes apart, walking the whole file.
			record := int64(prm.Record)
			stride := int64(prm.Stride)
			v := make([]ufsclust.Ext, 0, prm.VecBatch)
			buf := make([]byte, record*int64(prm.VecBatch))
			var moved int64
			flush := func() bool {
				if len(v) == 0 {
					return true
				}
				n, err := f.Readv(p, v, buf[:record*int64(len(v))])
				if err != nil {
					runErr = err
					return false
				}
				moved += int64(n)
				v = v[:0]
				return true
			}
			for off := int64(0); off+record <= size; off += stride {
				v = append(v, ufsclust.Ext{Off: off, Len: record})
				if len(v) == prm.VecBatch && !flush() {
					return
				}
			}
			if !flush() {
				return
			}
			res.Bytes = moved
		default:
			runErr = fmt.Errorf("iobench: unknown kind %q", kind)
			return
		}
		res.Elapsed = p.Now() - t0
		snap = m.Snapshot().Delta(pre)
		res.CPUTime = sim.Time(snap.Get("cpu.system_ns"))
	})
	if err != nil {
		return Result{}, telemetry.Snapshot{}, err
	}
	if runErr != nil {
		return Result{}, telemetry.Snapshot{}, runErr
	}
	return res, snap, nil
}

// Table is a full Figure 10: rows are runs, columns I/O types.
type Table struct {
	Cells map[string]map[Kind]Result
	Order []string
}

// RunAll executes every (run, kind) pair.
func RunAll(runs []ufsclust.RunConfig, kinds []Kind, prm Params) (*Table, error) {
	return RunAllParallel(runs, kinds, prm, 1)
}

// RunAllParallel executes every (run, kind) pair across workers host
// goroutines (0 means GOMAXPROCS, 1 means serial). Each cell is an
// independent machine seeded only by its Params, so the resulting table
// — and anything formatted from it — is byte-identical to the serial
// table no matter how many workers ran it.
func RunAllParallel(runs []ufsclust.RunConfig, kinds []Kind, prm Params, workers int) (*Table, error) {
	if (prm.TraceW != nil || prm.EventW != nil) && workers != 1 {
		return nil, fmt.Errorf("iobench: TraceW/EventW require serial execution (workers=1)")
	}
	type job struct {
		rc   ufsclust.RunConfig
		kind Kind
	}
	var jobs []job
	for _, rc := range runs {
		for _, k := range kinds {
			jobs = append(jobs, job{rc, k})
		}
	}
	cells, err := runner.Map(len(jobs), runner.Options{Workers: workers}, func(i int) (Result, error) {
		res, err := Run(jobs[i].rc, jobs[i].kind, prm)
		if err != nil {
			return Result{}, fmt.Errorf("run %s %s: %w", jobs[i].rc.Name, jobs[i].kind, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	t := &Table{Cells: make(map[string]map[Kind]Result)}
	for _, rc := range runs {
		t.Order = append(t.Order, rc.Name)
		t.Cells[rc.Name] = make(map[Kind]Result)
	}
	for i, res := range cells {
		t.Cells[jobs[i].rc.Name][jobs[i].kind] = res
	}
	return t, nil
}

// FormatRates renders the Figure 10 table (KB/second).
func (t *Table) FormatRates(kinds []Kind) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s", "")
	for _, k := range kinds {
		fmt.Fprintf(&sb, "%8s", k)
	}
	sb.WriteByte('\n')
	for _, run := range t.Order {
		fmt.Fprintf(&sb, "%-4s", run)
		for _, k := range kinds {
			fmt.Fprintf(&sb, "%8.0f", t.Cells[run][k].RateKBs())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatRatios renders the Figure 11 table (other runs relative to the
// first run in Order, typically A/B, A/C, A/D).
func (t *Table) FormatRatios(kinds []Kind) string {
	if len(t.Order) < 2 {
		return ""
	}
	base := t.Order[0]
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s", "")
	for _, k := range kinds {
		fmt.Fprintf(&sb, "%8s", k)
	}
	sb.WriteByte('\n')
	for _, run := range t.Order[1:] {
		fmt.Fprintf(&sb, "%s/%-4s", base, run)
		for _, k := range kinds {
			b := t.Cells[run][k].RateKBs()
			a := t.Cells[base][k].RateKBs()
			r := 0.0
			if b > 0 {
				r = a / b
			}
			fmt.Fprintf(&sb, "%8.2f", r)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Ratio returns rate(runA)/rate(runB) for a kind.
func (t *Table) Ratio(runA, runB string, k Kind) float64 {
	b := t.Cells[runB][k].RateKBs()
	if b == 0 {
		return 0
	}
	return t.Cells[runA][k].RateKBs() / b
}

// SortedKinds returns kinds in canonical order for deterministic output.
func SortedKinds(m map[Kind]Result) []Kind {
	var out []Kind
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
