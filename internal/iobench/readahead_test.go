package iobench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ufsclust"
	"ufsclust/internal/prefetch"
)

// runKindStream runs one 1 MB run-A cell with the given policy factory
// (nil = the run configuration's default fixed read-ahead) and returns
// the measured phase's JSONL event stream.
func runKindStream(t *testing.T, kind Kind, pol func() prefetch.Policy) []byte {
	t.Helper()
	var ew bytes.Buffer
	prm := Params{FileMB: 1, RandomOps: 16, EventW: &ew, Policy: pol}
	if _, _, err := RunMeasured(ufsclust.RunA(), kind, prm); err != nil {
		t.Fatal(err)
	}
	return ew.Bytes()
}

func checkGolden(t *testing.T, got []byte, name string) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateEvents {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("event stream diverges from %s at line %d:\n  got:  %s\n  want: %s", name, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("event stream length differs from %s: got %d lines, want %d", name, len(gl), len(wl))
}

// TestFixedPolicyGoldens pins the default (fixed one-cluster) policy's
// event streams for the pure-sequential and pure-random read cells.
// Both fixtures were generated before the policy interface existed, so
// they prove the refactored engine is byte-identical to the hardwired
// nextrio read-ahead — the "default behavior unchanged" half of the
// read-ahead policy contract.
func TestFixedPolicyGoldens(t *testing.T) {
	checkGolden(t, runKindStream(t, FSR, nil), "events_fsr_runA.golden")
	checkGolden(t, runKindStream(t, FRR, nil), "events_frr_runA.golden")
}

// TestAdaptiveEventStreamDeterministic is the replay contract for the
// adaptive policy: same seed, same byte stream — including the
// ra_window events only this policy emits.
func TestAdaptiveEventStreamDeterministic(t *testing.T) {
	adaptive := func() prefetch.Policy { return prefetch.NewAdaptive(prefetch.AdaptiveConfig{}) }
	a := runKindStream(t, FMX, adaptive)
	b := runKindStream(t, FMX, adaptive)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed adaptive event streams differ (%d vs %d bytes)", len(a), len(b))
	}
	if !bytes.Contains(a, []byte(`"ra_window"`)) {
		t.Fatal("adaptive mixed run emitted no ra_window events")
	}
	checkGolden(t, a, "events_fmx_adaptive_runA.golden")
}

// pressureCell runs one cell under memory pressure (file twice physical
// memory, like the paper's 16 MB / 8 MB setup but scaled down) and
// returns the rate plus the read-ahead hit/waste counters.
func pressureCell(t *testing.T, kind Kind, ops int, pol func() prefetch.Policy) (rate float64, hits, waste int64) {
	t.Helper()
	prm := Params{FileMB: 2, RandomOps: ops, MemBytes: 1 << 20, Policy: pol}
	res, snap, err := RunMeasured(ufsclust.RunA(), kind, prm)
	if err != nil {
		t.Fatal(err)
	}
	return res.RateKBs(), snap.Get("core.ra_hits"), snap.Get("vm.ra_waste")
}

// TestAdaptiveBeatsFixedOnMixed is the acceptance test for the adaptive
// window, three cells under the same memory pressure:
//
//   - FSR: adaptive must hold the fixed policy's sequential throughput
//     (within 2%) — the ramp-up delay is the only cost it may pay.
//   - FMX: adaptive must beat both fixed-on and fixed-off. Fixed's
//     exact-match cursor goes dead after random interruptions, off never
//     prefetches; the adaptive detector re-confirms each resumed stream.
//   - FRR: adaptive must waste strictly fewer prefetched blocks than
//     fixed. Fixed fires on any access that reaches the trigger
//     condition — on pure random traffic those accidental matches each
//     cost a cluster of dead prefetch — while the adaptive detector
//     refuses to issue without two confirmed sequential accesses.
func TestAdaptiveBeatsFixedOnMixed(t *testing.T) {
	adaptive := func() prefetch.Policy { return prefetch.NewAdaptive(prefetch.AdaptiveConfig{}) }
	off := func() prefetch.Policy { return prefetch.Off() }

	fixedSeq, _, _ := pressureCell(t, FSR, 0, nil)
	adptSeq, _, _ := pressureCell(t, FSR, 0, adaptive)
	t.Logf("FSR rate KB/s: fixed=%.0f adaptive=%.0f", fixedSeq, adptSeq)
	if adptSeq < fixedSeq*0.98 {
		t.Errorf("adaptive FSR rate %.1f KB/s below 98%% of fixed %.1f KB/s", adptSeq, fixedSeq)
	}

	fixedMix, fixedHits, _ := pressureCell(t, FMX, 16, nil)
	adptMix, adptHits, _ := pressureCell(t, FMX, 16, adaptive)
	offMix, _, _ := pressureCell(t, FMX, 16, off)
	t.Logf("FMX rate KB/s: fixed=%.0f adaptive=%.0f off=%.0f (hits fixed=%d adaptive=%d)",
		fixedMix, adptMix, offMix, fixedHits, adptHits)
	if adptMix <= fixedMix {
		t.Errorf("adaptive FMX rate %.1f not above fixed %.1f", adptMix, fixedMix)
	}
	if adptMix <= offMix {
		t.Errorf("adaptive FMX rate %.1f not above off %.1f", adptMix, offMix)
	}

	_, _, fixedWaste := pressureCell(t, FRR, 512, nil)
	_, _, adptWaste := pressureCell(t, FRR, 512, adaptive)
	t.Logf("FRR waste blocks: fixed=%d adaptive=%d", fixedWaste, adptWaste)
	if fixedWaste == 0 {
		t.Fatal("fixed policy wasted no prefetches on the random cell; workload not exercising the failure mode")
	}
	if adptWaste >= fixedWaste {
		t.Errorf("adaptive wasted %d prefetched blocks, fixed wasted %d; want strictly fewer", adptWaste, fixedWaste)
	}
}
