package iobench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ufsclust"
	"ufsclust/internal/vol"
)

// TestVolumePassthroughMatchesGoldens proves the volume layer's
// identity composition: the 1 MB FSW run-A cell on a one-member concat
// volume must replay the bare-disk golden fixtures — the scheduler
// trace and the JSONL event stream — byte for byte. The volume adds no
// simulation processes, no events, no labels, and no translation for a
// single member, so if this test fails the layer has leaked into the
// machine's behaviour and every pre-volume measurement is suspect.
//
// There is deliberately no -update flag here: the fixtures belong to
// the bare-disk tests, and this test only ever consumes them.
func TestVolumePassthroughMatchesGoldens(t *testing.T) {
	var tw, ew bytes.Buffer
	prm := Params{
		FileMB:    1,
		RandomOps: 16,
		TraceW:    &tw,
		EventW:    &ew,
		Volume:    &vol.Config{Level: vol.Concat, Members: 1},
	}
	if _, _, err := RunMeasured(ufsclust.RunA(), FSW, prm); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name   string
		golden string
		got    []byte
	}{
		{"trace", "trace_fsw_runA.golden", tw.Bytes()},
		{"events", "events_fsw_runA.golden", ew.Bytes()},
	} {
		want, err := os.ReadFile(filepath.Join("testdata", c.golden))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(c.got, want) {
			continue
		}
		gl := bytes.Split(c.got, []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("%s: 1-member concat diverges from the bare-disk golden at line %d:\n  got:  %q\n  want: %q",
					c.name, i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("%s: length differs from golden: got %d lines, want %d", c.name, len(gl), len(wl))
	}
}
