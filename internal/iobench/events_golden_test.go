package iobench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ufsclust"
)

var updateEvents = flag.Bool("update-events", false, "rewrite the golden JSONL event stream")

func runEventStream(t *testing.T) []byte {
	t.Helper()
	var ew bytes.Buffer
	prm := Params{FileMB: 1, RandomOps: 16, EventW: &ew}
	if _, _, err := RunMeasured(ufsclust.RunA(), FSW, prm); err != nil {
		t.Fatal(err)
	}
	return ew.Bytes()
}

// TestEventStreamDeterministic is the telemetry half of the
// byte-identical-replay contract: two same-seed runs must export the
// same JSONL event stream down to the byte.
func TestEventStreamDeterministic(t *testing.T) {
	a := runEventStream(t)
	b := runEventStream(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed event streams differ (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("measured phase emitted no events")
	}
}

// TestEventStreamMatchesGolden pins the structured event stream of the
// 1 MB FSW run-A cell to a committed fixture, the same way the
// scheduler trace is pinned: any change to emission sites, event
// ordering, or the JSONL encoding fails here.
//
// Regenerate only for intentional behaviour or format changes:
//
//	go test ./internal/iobench -run EventStreamMatchesGolden -update-events
func TestEventStreamMatchesGolden(t *testing.T) {
	got := runEventStream(t)
	golden := filepath.Join("testdata", "events_fsw_runA.golden")
	if *updateEvents {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("event stream diverges from golden at line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("event stream length differs from golden: got %d lines, want %d", len(gl), len(wl))
}
