package iobench

import (
	"bytes"
	"testing"

	"ufsclust"
)

// runVecSingleStream is runKindStream with every scalar Read/Write of
// the measured phase rerouted through a single-element Readv/Writev.
func runVecSingleStream(t *testing.T, kind Kind) []byte {
	t.Helper()
	var ew bytes.Buffer
	prm := Params{FileMB: 1, RandomOps: 16, EventW: &ew, VecSingle: true}
	if _, _, err := RunMeasured(ufsclust.RunA(), kind, prm); err != nil {
		t.Fatal(err)
	}
	return ew.Bytes()
}

// TestVecSingleReplaysGoldens is the degeneration gate for the vectored
// entry points: the FSR and FSW cells, run entirely through
// single-element Readv/Writev, must replay the committed pre-vec event
// streams byte for byte. Both fixtures were generated before Readv and
// Writev existed, so any charge, counter, or event the vectored paths
// add to the single-element case fails here.
func TestVecSingleReplaysGoldens(t *testing.T) {
	checkGolden(t, runVecSingleStream(t, FSR), "events_fsr_runA.golden")
	checkGolden(t, runVecSingleStream(t, FSW), "events_fsw_runA.golden")
}

// TestStridedCell checks the FSTR workload's accounting: every strategy
// moves exactly the strided payload, and the forced-list run queues
// vec-tagged transfers while the forced-sieve run queues none.
func TestStridedCell(t *testing.T) {
	prm := Params{FileMB: 1, Record: 2048, Stride: 8192, VecBatch: 8}
	var want int64
	size := int64(prm.FileMB) << 20
	for off := int64(0); off+int64(prm.Record) <= size; off += int64(prm.Stride) {
		want += int64(prm.Record)
	}
	for _, name := range []string{"auto", "naive", "sieve", "list"} {
		fac, ok := VecFactory(name)
		if !ok {
			t.Fatalf("VecFactory(%q) unknown", name)
		}
		p := prm
		p.Vec = fac
		res, snap, err := RunMeasured(ufsclust.RunA(), FSTR, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Bytes != want {
			t.Errorf("%s: moved %d bytes, want %d", name, res.Bytes, want)
		}
		queued := snap.Get("driver.vec_queued")
		switch name {
		case "list":
			if queued == 0 {
				t.Errorf("list: no vec-tagged transfers queued")
			}
		case "sieve", "naive":
			if queued != 0 {
				t.Errorf("%s: %d vec-tagged transfers queued, want 0", name, queued)
			}
		}
		if snap.Get("core.vec_calls") == 0 {
			t.Errorf("%s: no vectored calls counted", name)
		}
	}
}

func TestVecFactoryUnknown(t *testing.T) {
	if _, ok := VecFactory("bogus"); ok {
		t.Fatal("VecFactory accepted an unknown name")
	}
}
