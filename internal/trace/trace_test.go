package trace

import (
	"strings"
	"testing"
)

func render(t *testing.T, f *Figure, err error) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	f.Render(&sb)
	return sb.String()
}

func TestFigure3MatchesPaper(t *testing.T) {
	f, err := Figure3()
	out := render(t, f, err)
	t.Logf("\n%s", out)
	// Paper: page 0 -> sync read page 0, async read page 1, nextr=1;
	// page 1 -> async read 2, nextr=2; page 2 -> async read 3.
	if len(f.Pages) != 3 {
		t.Fatalf("pages = %d", len(f.Pages))
	}
	p0 := strings.Join(f.Pages[0].Actions, " ")
	if !strings.Contains(p0, "sync 0") || !strings.Contains(p0, "async 1") {
		t.Errorf("page 0 actions = %v", f.Pages[0].Actions)
	}
	if f.Pages[0].Pred != 1 || f.Pages[1].Pred != 2 || f.Pages[2].Pred != 3 {
		t.Errorf("nextr sequence = %d,%d,%d, want 1,2,3",
			f.Pages[0].Pred, f.Pages[1].Pred, f.Pages[2].Pred)
	}
	p1 := strings.Join(f.Pages[1].Actions, " ")
	if !strings.Contains(p1, "async 2") || strings.HasPrefix(p1, "sync") {
		t.Errorf("page 1 actions = %v", f.Pages[1].Actions)
	}
}

func TestFigure6MatchesPaper(t *testing.T) {
	f, err := Figure6()
	out := render(t, f, err)
	t.Logf("\n%s", out)
	if len(f.Pages) != 7 {
		t.Fatalf("pages = %d", len(f.Pages))
	}
	p0 := strings.Join(f.Pages[0].Actions, " ")
	if !strings.Contains(p0, "sync 0,1,2") || !strings.Contains(p0, "async 3,4,5") {
		t.Errorf("page 0 actions = %v", f.Pages[0].Actions)
	}
	if f.Pages[0].Pred != 6 {
		t.Errorf("page 0 nextrio = %d, want 6", f.Pages[0].Pred)
	}
	// Pages 1, 2 do nothing.
	if len(f.Pages[1].Actions) != 0 || len(f.Pages[2].Actions) != 0 {
		t.Errorf("pages 1-2 acted: %v %v", f.Pages[1].Actions, f.Pages[2].Actions)
	}
	// Page 3 prefetches 6,7,8.
	p3 := strings.Join(f.Pages[3].Actions, " ")
	if !strings.Contains(p3, "async 6,7,8") || f.Pages[3].Pred != 9 {
		t.Errorf("page 3 = %v nextrio=%d", f.Pages[3].Actions, f.Pages[3].Pred)
	}
	// Page 6 prefetches 9,10,11.
	p6 := strings.Join(f.Pages[6].Actions, " ")
	if !strings.Contains(p6, "async 9,10,11") || f.Pages[6].Pred != 12 {
		t.Errorf("page 6 = %v nextrio=%d", f.Pages[6].Actions, f.Pages[6].Pred)
	}
}

func TestFigure7MatchesPaper(t *testing.T) {
	f, err := Figure7()
	out := render(t, f, err)
	t.Logf("\n%s", out)
	if len(f.Pages) != 6 {
		t.Fatalf("pages = %d", len(f.Pages))
	}
	// Paper: lie, lie, push 0,1,2, lie, lie, push 3,4,5.
	wantPush := map[int]string{2: "push 0,1,2", 5: "push 3,4,5"}
	for i, p := range f.Pages {
		joined := strings.Join(p.Actions, " ")
		if want, ok := wantPush[i]; ok {
			if !strings.Contains(joined, want) {
				t.Errorf("page %d = %v, want %q", i, p.Actions, want)
			}
		} else {
			if strings.Contains(joined, "push") {
				t.Errorf("page %d unexpectedly pushed: %v", i, p.Actions)
			}
			if !strings.Contains(joined, "lie") {
				t.Errorf("page %d did not lie: %v", i, p.Actions)
			}
		}
	}
}

func TestRenderLayout(t *testing.T) {
	f := &Figure{
		Title:     "test",
		PredLabel: "nextr",
		Pages: []PageEvents{
			{Page: 0, Actions: []string{"sync 0"}, Pred: 1},
			{Page: 1, Pred: 2},
		},
	}
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"test", "page", "sync 0", "nextr"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
