// Package trace renders the paper's access-pattern figures (3, 6, 7)
// from live executions of the engine: for each page touched it records
// what the file system did — synchronous reads, asynchronous
// read-aheads, delayed-write "lies", cluster pushes — and the relevant
// inode predictor after the call, then lays the events out as the paper
// does, one column per page.
package trace

import (
	"fmt"
	"io"
	"strings"

	"ufsclust"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
	"ufsclust/internal/ufs"
)

// actionName maps the bus events the figures care about to the paper's
// vocabulary. Other event kinds return "".
func actionName(k telemetry.EventKind) string {
	switch k {
	case telemetry.EvSyncRead:
		return "sync"
	case telemetry.EvReadAhead:
		return "async"
	case telemetry.EvWriteLie:
		return "lie"
	case telemetry.EvClusterPush:
		return "push"
	}
	return ""
}

// PageEvents is everything that happened during the fault (or putpage)
// for one page.
type PageEvents struct {
	Page    int64
	Actions []string // e.g. "sync 0,1,2", "async 3,4,5", "lie", "push 0,1,2"
	Pred    int64    // nextr (fig 3) or nextrio (fig 6) after the call
}

// Figure is a rendered access-pattern table.
type Figure struct {
	Title     string
	PredLabel string // "nextr" / "nextrio" / "" for fig 7
	Pages     []PageEvents
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintln(w, f.Title)
	width := 16
	cell := func(s string) string {
		if len(s) > width-2 {
			s = s[:width-2]
		}
		return fmt.Sprintf("%-*s", width, s)
	}
	var rows [][]string
	maxActs := 0
	for _, p := range f.Pages {
		if len(p.Actions) > maxActs {
			maxActs = len(p.Actions)
		}
	}
	header := []string{"page"}
	for _, p := range f.Pages {
		header = append(header, fmt.Sprintf("%d", p.Page))
	}
	rows = append(rows, header)
	for a := 0; a < maxActs; a++ {
		row := []string{""}
		for _, p := range f.Pages {
			if a < len(p.Actions) {
				row = append(row, p.Actions[a])
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	if f.PredLabel != "" {
		row := []string{f.PredLabel}
		for _, p := range f.Pages {
			row = append(row, fmt.Sprintf("%d", p.Pred))
		}
		rows = append(rows, row)
	}
	for i, row := range rows {
		var sb strings.Builder
		for _, c := range row {
			sb.WriteString(cell(c))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		if i == 0 {
			fmt.Fprintln(w, strings.Repeat("-", width*len(row)))
		}
	}
}

func lbnList(lbn int64, n int) string {
	var parts []string
	for i := 0; i < n; i++ {
		parts = append(parts, fmt.Sprintf("%d", lbn+int64(i)))
	}
	return strings.Join(parts, ",")
}

// machine builds a small machine with the given tuning.
func machine(rotdelayMs, maxcontig int, clustered bool) (*ufsclust.Machine, error) {
	opts := ufsclust.Options{
		Mkfs: ufs.MkfsOpts{Rotdelay: rotdelayMs, Maxcontig: maxcontig},
	}
	opts.Engine.Clustered = clustered
	opts.Engine.ReadAhead = true
	return ufsclust.NewMachine(opts)
}

// readFigure runs a sequential read of npages and records per-page
// events. nextrio selects which predictor is reported.
func readFigure(title string, rotdelayMs, maxcontig, npages int, clustered bool) (*Figure, error) {
	m, err := machine(rotdelayMs, maxcontig, clustered)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	fig := &Figure{Title: title, PredLabel: "nextr"}
	if clustered {
		fig.PredLabel = "nextrio"
	}
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/trace")
		if err != nil {
			return
		}
		f.Write(p, 0, make([]byte, (npages+3*maxcontig+2)*8192))
		f.Purge(p)

		var cur *PageEvents
		m.Tel.Bus.Subscribe(func(ev telemetry.Event) {
			name := actionName(ev.Kind)
			if cur == nil || name == "" {
				return
			}
			cur.Actions = append(cur.Actions, fmt.Sprintf("%s %s", name, lbnList(ev.LBN, int(ev.Blocks))))
		})
		buf := make([]byte, 8192)
		for i := 0; i < npages; i++ {
			pe := PageEvents{Page: int64(i)}
			cur = &pe
			f.Read(p, int64(i)*8192, buf)
			if clustered {
				pe.Pred = f.Inode().Nextrio
			} else {
				pe.Pred = f.Inode().Nextr
			}
			fig.Pages = append(fig.Pages, pe)
		}
		cur = nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Figure3 reproduces the legacy one-block read-ahead table.
func Figure3() (*Figure, error) {
	return readFigure("Figure 3: access pattern showing read ahead (legacy UFS)",
		4, 1, 3, false)
}

// Figure6 reproduces the clustered-read table with maxcontig = 3.
func Figure6() (*Figure, error) {
	return readFigure("Figure 6: clustered reads when maxcontig = 3",
		0, 3, 7, true)
}

// Figure7 reproduces the clustered-write ("lie/push") table with
// maxcontig = 3.
func Figure7() (*Figure, error) {
	m, err := machine(0, 3, true)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	fig := &Figure{Title: "Figure 7: clustered writes with maxcontig = 3"}
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/trace")
		if err != nil {
			return
		}
		var cur *PageEvents
		m.Tel.Bus.Subscribe(func(ev telemetry.Event) {
			name := actionName(ev.Kind)
			if cur == nil || name == "" {
				return
			}
			s := name
			if ev.Kind == telemetry.EvClusterPush {
				s = fmt.Sprintf("push %s", lbnList(ev.LBN, int(ev.Blocks)))
			}
			cur.Actions = append(cur.Actions, s)
		})
		buf := make([]byte, 8192)
		for i := 0; i < 6; i++ {
			pe := PageEvents{Page: int64(i)}
			cur = &pe
			f.Write(p, int64(i)*8192, buf)
			fig.Pages = append(fig.Pages, pe)
		}
		cur = nil
		f.Fsync(p)
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}
