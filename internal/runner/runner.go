// Package runner is the host-side parallel experiment orchestrator.
//
// Every experiment in this repository is a self-contained, deterministic
// discrete-event simulation: it owns its sim.Sim, draws randomness only
// from the sim's seeded source, and reports results in virtual time.
// Host-level parallelism therefore cannot change any result — it only
// changes how many host cores the parameter sweep saturates. The runner
// exploits that: a worker pool over GOMAXPROCS runs one independent
// simulation per job and collects the results in job order, so the
// output of a parallel sweep is byte-identical to the serial one.
//
// This package is registered as host-side tooling in internal/analysis
// (like analysis and detsort): it runs outside the simulation, so the
// determinism rules that govern model code do not apply to its worker
// goroutines. The contract is that the job function must be a closed
// simulation — it must not share mutable state across jobs.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a pool.
type Options struct {
	// Workers is the number of host worker goroutines; 0 means
	// runtime.GOMAXPROCS(0). 1 degenerates to serial in-order
	// execution on the calling goroutine.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0) .. fn(n-1) on a worker pool and returns the results in
// job order. fn must be safe to call from multiple goroutines at once,
// which in practice means each job builds its own machine/simulation.
// All jobs run to completion even when some fail; the returned error is
// the failure of the lowest-numbered failed job, so error reporting does
// not depend on worker interleaving.
func Map[T any](n int, o Options, fn func(job int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
		return results, firstErr(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return results, firstErr(errs)
}

// firstErr returns the error of the lowest-numbered failed job.
func firstErr(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
	}
	return nil
}

// Seed derives a deterministic per-job seed from a base seed. Jobs must
// not share a sim.Rand (each owns a simulation), and seeding job i with
// base+i would correlate neighbouring runs; the splitmix64 finalizer
// decorrelates them while staying a pure function of (base, job), so a
// sweep replays identically no matter how many workers execute it.
func Seed(base int64, job int) int64 {
	z := uint64(base) + (uint64(job)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
