package runner

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"ufsclust/internal/sim"
)

// simJob is a small but real simulation: a handful of processes sleeping
// on seed-dependent periods, reporting the final virtual clock and a
// value drawn from the sim's own random source. Any cross-job
// interference or scheduling dependence would change its output.
func simJob(seed int64) (string, error) {
	s := sim.New(seed)
	defer s.Close()
	for i := 0; i < 4; i++ {
		period := sim.Time(s.Rand.Intn(9)+1) * sim.Microsecond
		s.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			for j := 0; j < 50; j++ {
				p.Sleep(period)
			}
		})
	}
	if err := s.Run(); err != nil {
		return "", err
	}
	return fmt.Sprintf("%v %d", s.Now(), s.Rand.Int63()), nil
}

// TestParallelMatchesSerial is the runner's core contract: a parallel
// sweep returns results identical to, and in the same order as, the
// serial sweep. Run with -race this also exercises the pool for data
// races.
func TestParallelMatchesSerial(t *testing.T) {
	const n = 32
	job := func(i int) (string, error) { return simJob(Seed(42, i)) }

	serial, err := Map(n, Options{Workers: 1}, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 2, 4, 16, 64} {
		parallel, err := Map(n, Options{Workers: w}, job)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: parallel results differ from serial\nserial:   %v\nparallel: %v", w, serial, parallel)
		}
	}
}

// TestErrorIsLowestJob pins deterministic error reporting: no matter
// which worker hits a failure first, Map reports the failure of the
// lowest-numbered failed job, and every job still runs.
func TestErrorIsLowestJob(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(16, Options{Workers: 8}, func(i int) (int, error) {
		ran.Add(1)
		if i == 5 || i == 11 {
			return 0, sentinel
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the job error", err)
	}
	if want := "job 5: boom"; err.Error() != want {
		t.Fatalf("error = %q, want %q (lowest failed job)", err, want)
	}
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d jobs, want all 16 despite failures", got)
	}
}

func TestMapEdgeCases(t *testing.T) {
	res, err := Map(0, Options{}, func(i int) (int, error) { return i, nil })
	if err != nil || res != nil {
		t.Fatalf("n=0: got (%v, %v), want (nil, nil)", res, err)
	}
	res, err = Map(3, Options{Workers: 16}, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 4}; !reflect.DeepEqual(res, want) {
		t.Fatalf("more workers than jobs: got %v, want %v", res, want)
	}
}

// TestSeed pins the per-job seed derivation: a pure function of
// (base, job), decorrelated across neighbouring jobs, and distinct from
// the base.
func TestSeed(t *testing.T) {
	seen := map[int64]bool{}
	for job := 0; job < 1000; job++ {
		s := Seed(7, job)
		if s == 7 {
			t.Fatalf("Seed(7, %d) returned the base seed", job)
		}
		if seen[s] {
			t.Fatalf("Seed(7, %d) = %d collides with an earlier job", job, s)
		}
		seen[s] = true
		if again := Seed(7, job); again != s {
			t.Fatalf("Seed(7, %d) not stable: %d then %d", job, s, again)
		}
	}
	if Seed(7, 0) == Seed(8, 0) {
		t.Fatal("different base seeds produced the same job seed")
	}
}
