// Package alloclab reproduces the paper's allocator-contiguity
// experiment ("Allocator details"): how large are the physically
// contiguous extents the FFS allocator produces for a big file, on an
// empty file system (best case: average extent 1.5 MB in a 13 MB file)
// and on a heavily fragmented, mostly-full one (worst case: 62 KB
// average in a 16 MB file)? The result justified shipping clustering
// without preallocation.
package alloclab

import (
	"fmt"

	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

// Report summarizes the extents of one file. An extent here is the
// paper's definition: "a span of contiguous blocks followed by a gap";
// it may contain many clusters.
type Report struct {
	FileBytes int64
	Extents   []int64 // extent sizes in bytes, in file order
}

// AvgExtent returns the mean extent size in bytes.
func (r *Report) AvgExtent() int64 {
	if len(r.Extents) == 0 {
		return 0
	}
	var sum int64
	for _, e := range r.Extents {
		sum += e
	}
	return sum / int64(len(r.Extents))
}

// MaxExtent returns the largest extent in bytes.
func (r *Report) MaxExtent() int64 {
	var m int64
	for _, e := range r.Extents {
		if e > m {
			m = e
		}
	}
	return m
}

// String renders the report like the paper's prose.
func (r *Report) String() string {
	return fmt.Sprintf("%d extents in a %.1fMB file, average %.1fKB, largest %.1fKB",
		len(r.Extents), float64(r.FileBytes)/(1<<20),
		float64(r.AvgExtent())/1024, float64(r.MaxExtent())/1024)
}

// MeasureFile walks a file's block map and reports its extents.
func MeasureFile(p *sim.Proc, fs *ufs.Fs, ip *ufs.Inode) (*Report, error) {
	sb := fs.SB
	r := &Report{FileBytes: ip.D.Size}
	nblocks := (ip.D.Size + int64(sb.Bsize) - 1) / int64(sb.Bsize)
	var prev int32 = -1
	var cur int64
	for lbn := int64(0); lbn < nblocks; lbn++ {
		fsbn, _, err := fs.Bmap(p, ip, lbn)
		if err != nil {
			return nil, err
		}
		if fsbn == 0 {
			continue
		}
		n := int64(sb.BlkSize(ip.D.Size, lbn))
		if prev >= 0 && fsbn == prev+sb.Frag {
			cur += n
		} else {
			if cur > 0 {
				r.Extents = append(r.Extents, cur)
			}
			cur = n
		}
		prev = fsbn
	}
	if cur > 0 {
		r.Extents = append(r.Extents, cur)
	}
	return r, nil
}

// allocFile creates a file and allocates (without writing data) size
// bytes of blocks — aging and measurement need only allocator state.
func allocFile(p *sim.Proc, fs *ufs.Fs, name string, size int64) (*ufs.Inode, error) {
	ip, err := fs.Create(p, name)
	if err != nil {
		return nil, err
	}
	bsize := int64(fs.SB.Bsize)
	for off := int64(0); off < size; off += bsize {
		n := bsize
		if off+n > size {
			n = size - off
		}
		if _, err := fs.BmapAlloc(p, ip, off/bsize, int(n)); err != nil {
			return ip, err
		}
		ip.D.Size = off + n
	}
	ip.MarkDirty()
	return ip, nil
}

// BestCase writes one file of fileBytes onto an empty file system and
// reports its extents.
func BestCase(p *sim.Proc, fs *ufs.Fs, fileBytes int64) (*Report, error) {
	ip, err := allocFile(p, fs, "/bestcase", fileBytes)
	if err != nil {
		return nil, err
	}
	return MeasureFile(p, fs, ip)
}

// AgeOpts controls the fragmentation aging pass.
type AgeOpts struct {
	TargetFull float64 // stop filling at this fraction of data space (e.g. 0.85)
	Churn      int     // delete/recreate cycles after the fill
	MeanFileKB int     // mean size of the filler files
}

// Age fills the file system nearly to the minfree ceiling with many
// small files, churns (deletes and recreates a random subset
// repeatedly), and finally deletes files at random down to TargetFull —
// so the free space the next big file must use is scattered holes, not
// a contiguous tail. This matches the paper's "heavily fragmented /home
// partition": a file system that has lived at high occupancy with
// ongoing deletions.
func Age(p *sim.Proc, fs *ufs.Fs, o AgeOpts) (int, error) {
	if o.TargetFull == 0 {
		o.TargetFull = 0.85
	}
	if o.Churn == 0 {
		o.Churn = 3
	}
	if o.MeanFileKB == 0 {
		o.MeanFileKB = 48
	}
	rng := fs.Sim.Rand
	var names []string
	id := 0
	// Spread the filler files across directories: FFS places new
	// directories (and therefore their files) in different cylinder
	// groups, as a real /home's user directories are. Without this the
	// fill packs groups front to back and leaves an unfragmented tail.
	ndirs := int(fs.SB.Ncg)
	if ndirs > 32 {
		ndirs = 32
	}
	dirs := make([]string, ndirs)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("/aged%d", i)
		if _, err := fs.Mkdir(p, dirs[i]); err != nil {
			return 0, err
		}
	}
	fileSize := func() int64 {
		// Exponential-ish mix: mostly small, some large.
		kb := 4 + rng.Intn(o.MeanFileKB*2-4)
		if rng.Intn(10) == 0 {
			kb *= 8
		}
		return int64(kb) << 10
	}
	full := func() float64 {
		return 1 - float64(fs.SB.CsNbfree*fs.SB.Frag+fs.SB.CsNffree)/float64(fs.SB.Dsize)
	}
	// Fill as far as the minfree reserve allows.
	fill := func() error {
		for {
			name := fmt.Sprintf("%s/age%d", dirs[id%ndirs], id)
			id++
			if _, err := allocFile(p, fs, name, fileSize()); err != nil {
				if err == ufs.ErrNoSpace {
					// The partial file still holds blocks; keep it,
					// it only adds realism.
					names = append(names, name)
					return nil
				}
				return err
			}
			names = append(names, name)
		}
	}
	if err := fill(); err != nil {
		return 0, err
	}
	created := len(names)
	for c := 0; c < o.Churn; c++ {
		// Delete ~40% at random, then refill to the ceiling.
		for i := 0; i < len(names); i++ {
			if rng.Intn(10) < 4 {
				if err := fs.Remove(p, names[i]); err != nil {
					return 0, err
				}
				names[i] = names[len(names)-1]
				names = names[:len(names)-1]
				i--
			}
		}
		if err := fill(); err != nil {
			return 0, err
		}
		created = len(names)
	}
	// Finally, delete at random down to the target occupancy: the free
	// space is now scattered holes across every group.
	for full() > o.TargetFull && len(names) > 0 {
		i := rng.Intn(len(names))
		if err := fs.Remove(p, names[i]); err != nil {
			return 0, err
		}
		names[i] = names[len(names)-1]
		names = names[:len(names)-1]
	}
	return created, nil
}

// WorstCase ages the file system, then allocates a large file in the
// remaining space and reports its extents.
func WorstCase(p *sim.Proc, fs *ufs.Fs, fileBytes int64, age AgeOpts) (*Report, error) {
	if _, err := Age(p, fs, age); err != nil {
		return nil, err
	}
	ip, err := allocFile(p, fs, "/worstcase", fileBytes)
	if err != nil && err != ufs.ErrNoSpace {
		return nil, err
	}
	return MeasureFile(p, fs, ip)
}
