package alloclab

import (
	"reflect"
	"testing"

	"ufsclust"
	"ufsclust/internal/cpu"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

func newFs(t *testing.T, cyls int) (*sim.Sim, *ufs.Fs, *disk.Disk) {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	dp := disk.DefaultParams()
	dp.Geom = disk.UniformGeometry(cyls, 8, 64, 3600)
	d := disk.New(s, "d0", dp)
	if _, err := ufs.Mkfs(d, ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 15}); err != nil {
		t.Fatal(err)
	}
	dr := driver.New(s, d, cpu.New(s, 12), driver.DefaultConfig())
	fs, err := ufs.Mount(s, cpu.New(s, 12), dr, ufs.MountOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return s, fs, d
}

func TestBestCaseLargeExtents(t *testing.T) {
	// Paper: "In the best case, the average extent size was 1.5MB in a
	// 13MB file." maxbpg caps per-group runs at ~2MB here; expect
	// megabyte-scale average extents.
	s, fs, _ := newFs(t, 192) // ~50 MB
	var rep *Report
	s.Spawn("lab", func(p *sim.Proc) {
		var err error
		rep, err = BestCase(p, fs, 13<<20)
		if err != nil {
			t.Errorf("best case: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.FileBytes != 13<<20 {
		t.Fatalf("file bytes = %d", rep.FileBytes)
	}
	if avg := rep.AvgExtent(); avg < 512<<10 {
		t.Errorf("best-case average extent = %dKB, want >= 512KB (%s)", avg>>10, rep)
	}
	if len(rep.Extents) > 26 {
		t.Errorf("best case produced %d extents for 13MB", len(rep.Extents))
	}
}

func TestWorstCaseSmallExtentsButUsable(t *testing.T) {
	// Paper: "In the worst case, the average extent size was 62KB in a
	// 16MB file" on a fragmented, 85%-full partition. Expect extents
	// around tens of KB — far smaller than best case, far larger than
	// one block.
	s, fs, _ := newFs(t, 192)
	var best, worst *Report
	s.Spawn("lab", func(p *sim.Proc) {
		var err error
		best, err = BestCase(p, fs, 4<<20)
		if err != nil {
			t.Errorf("best: %v", err)
			return
		}
		// On this ~45MB test fs, 80% full leaves ~5MB above the minfree
		// reserve; the paper's 85%-of-400MB leaves room for its 16MB.
		worst, err = WorstCase(p, fs, 4<<20, AgeOpts{TargetFull: 0.80, Churn: 3})
		if err != nil {
			t.Errorf("worst: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if worst.FileBytes < 3<<20 {
		t.Fatalf("worst-case file only reached %d bytes", worst.FileBytes)
	}
	avg := worst.AvgExtent()
	if avg >= best.AvgExtent() {
		t.Errorf("fragmentation did not shrink extents: worst %d >= best %d", avg, best.AvgExtent())
	}
	if avg < 2*8192 {
		t.Errorf("worst-case average extent = %dKB: allocator degraded to single blocks (%s)", avg>>10, worst)
	}
	if avg > 1<<20 {
		t.Errorf("worst-case average extent = %dKB: aging did not fragment (%s)", avg>>10, worst)
	}
}

func TestAgedFsStillConsistent(t *testing.T) {
	s, fs, d := newFs(t, 96)
	s.Spawn("lab", func(p *sim.Proc) {
		if _, err := Age(p, fs, AgeOpts{TargetFull: 0.7, Churn: 2}); err != nil {
			t.Errorf("age: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	fs.SyncImage()
	rep, err := ufs.Fsck(d)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		max := len(rep.Problems)
		if max > 10 {
			max = 10
		}
		t.Fatalf("aged fs inconsistent: %v", rep.Problems[:max])
	}
}

func TestMeasureFileCountsTailFragments(t *testing.T) {
	s, fs, _ := newFs(t, 96)
	s.Spawn("lab", func(p *sim.Proc) {
		ip, err := allocFile(p, fs, "/tail", 8192+3000)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		rep, err := MeasureFile(p, fs, ip)
		if err != nil {
			t.Errorf("measure: %v", err)
			return
		}
		var sum int64
		for _, e := range rep.Extents {
			sum += e
		}
		if sum != 8192+3072 { // tail rounded to 3 fragments
			t.Errorf("extent bytes = %d, want 11264", sum)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepDeterministicAcrossWorkers pins the sweep contract: the
// parallel aging sweep produces exactly the serial results, point for
// point, because every point is an independent machine.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	points := []SweepPoint{
		{FileBytes: 2 << 20, Age: AgeOpts{TargetFull: 0.6, Churn: 1}},
		{FileBytes: 2 << 20, Age: AgeOpts{TargetFull: 0.8, Churn: 1}},
	}
	serial, err := SweepWorstCase(ufsclust.RunA(), points, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepWorstCase(ufsclust.RunA(), points, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Report.Extents, parallel[i].Report.Extents) {
			t.Fatalf("point %d: serial extents %v != parallel extents %v",
				i, serial[i].Report.Extents, parallel[i].Report.Extents)
		}
	}
	if serial[0].Report.AvgExtent() <= serial[1].Report.AvgExtent() {
		t.Logf("note: avg extent did not shrink with fill (%d vs %d) — small config",
			serial[0].Report.AvgExtent(), serial[1].Report.AvgExtent())
	}
}
