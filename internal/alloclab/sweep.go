package alloclab

import (
	"fmt"

	"ufsclust"
	"ufsclust/internal/runner"
	"ufsclust/internal/sim"
)

// SweepPoint is one aging configuration in a contiguity sweep.
type SweepPoint struct {
	FileBytes int64
	Age       AgeOpts
}

// SweepResult pairs a point with its measured worst-case report.
type SweepResult struct {
	Point  SweepPoint
	Report *Report
}

// SweepWorstCase measures the worst-case contiguity at every point,
// each on a freshly built and aged machine, across workers host
// goroutines (0 means GOMAXPROCS, 1 means serial). Every point is an
// independent deterministic simulation, so the result slice is
// identical whatever the worker count — parallelism buys wall-clock
// time on what is by far the repository's most expensive experiment
// (each point fills, churns, and re-fills a whole file system).
func SweepWorstCase(rc ufsclust.RunConfig, points []SweepPoint, workers int) ([]SweepResult, error) {
	return runner.Map(len(points), runner.Options{Workers: workers}, func(i int) (SweepResult, error) {
		pt := points[i]
		m, err := ufsclust.NewMachineForRun(rc)
		if err != nil {
			return SweepResult{}, err
		}
		defer m.Close()
		var rep *Report
		runErr := m.Run(func(p *sim.Proc) {
			var ferr error
			rep, ferr = WorstCase(p, m.FS, pt.FileBytes, pt.Age)
			if ferr != nil {
				err = fmt.Errorf("worst case at %.0f%% full: %w", pt.Age.TargetFull*100, ferr)
			}
		})
		if runErr != nil {
			return SweepResult{}, runErr
		}
		if err != nil {
			return SweepResult{}, err
		}
		return SweepResult{Point: pt, Report: rep}, nil
	})
}
