package telemetry

import (
	"errors"
	"strings"
	"testing"

	"ufsclust/internal/sim"
)

func TestBusDelivery(t *testing.T) {
	b := &Bus{}
	if b.Active() {
		t.Error("empty bus reports Active")
	}
	var got []Event
	b.Subscribe(func(ev Event) { got = append(got, ev) })
	if !b.Active() {
		t.Error("subscribed bus not Active")
	}
	b.Emit(Event{T: sim.Second, Kind: EvClusterPush, LBN: 3, Blocks: 15})
	if len(got) != 1 || got[0].Kind != EvClusterPush || got[0].Blocks != 15 {
		t.Errorf("delivered %+v", got)
	}
}

// TestDeferDuringEmit pins the re-entrancy contract: an event deferred
// from inside a fan-out is delivered to every subscriber after the
// triggering event, regardless of subscription order — the property the
// fault injector's crash_cut relies on.
func TestDeferDuringEmit(t *testing.T) {
	b := &Bus{}
	var before, after []EventKind
	b.Subscribe(func(ev Event) { before = append(before, ev.Kind) })
	b.Subscribe(func(ev Event) {
		if ev.Kind == EvIOStart {
			b.Defer(Event{Kind: EvCrashCut})
		}
	})
	b.Subscribe(func(ev Event) { after = append(after, ev.Kind) })
	b.Emit(Event{Kind: EvIOStart})
	want := []EventKind{EvIOStart, EvCrashCut}
	for name, got := range map[string][]EventKind{"before": before, "after": after} {
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("subscriber subscribed %s the deferrer saw %v, want %v", name, got, want)
		}
	}
}

// TestDeferIdle: with no emission in progress, Defer is just Emit.
func TestDeferIdle(t *testing.T) {
	b := &Bus{}
	var got []EventKind
	b.Subscribe(func(ev Event) { got = append(got, ev.Kind) })
	b.Defer(Event{Kind: EvCrashCut})
	if len(got) != 1 || got[0] != EvCrashCut {
		t.Errorf("idle Defer delivered %v, want immediate crash_cut", got)
	}
	var nb *Bus
	nb.Defer(Event{Kind: EvIOStart}) // must not panic
}

// TestDeferChain: a deferral made while the deferred queue drains lands
// behind the events already queued, in FIFO order.
func TestDeferChain(t *testing.T) {
	b := &Bus{}
	var got []EventKind
	fired := false
	b.Subscribe(func(ev Event) {
		got = append(got, ev.Kind)
		if ev.Kind == EvIOStart {
			b.Defer(Event{Kind: EvIODone})
		}
		if ev.Kind == EvIODone && !fired {
			fired = true
			b.Defer(Event{Kind: EvCrashCut})
		}
	})
	b.Emit(Event{Kind: EvIOStart})
	want := []EventKind{EvIOStart, EvIODone, EvCrashCut}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("chained deferral order %v, want %v", got, want)
	}
}

func TestNilBusSafe(t *testing.T) {
	var b *Bus
	b.Emit(Event{Kind: EvIOStart}) // must not panic
	if b.Active() {
		t.Error("nil bus reports Active")
	}
}

func TestKindNames(t *testing.T) {
	// Every kind has a wire name; the JSONL format depends on it.
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if numEventKinds.String() != "unknown" {
		t.Errorf("out-of-range kind renders %q", numEventKinds.String())
	}
	if EvClusterPush.String() != "cluster_push" {
		t.Errorf("EvClusterPush = %q", EvClusterPush.String())
	}
}

func TestJSONLFormat(t *testing.T) {
	var sb strings.Builder
	jw := NewJSONL(&sb)
	jw.Write(Event{
		T: 1500, Kind: EvIODone, Sector: 264, Bytes: 8192,
		Depth: 2, Dur: 900, Write: true,
	})
	jw.Write(Event{T: 2000, Kind: EvReadAhead, LBN: 7, Blocks: 15})
	want := `{"t":1500,"ev":"io_done","sector":264,"lbn":0,"bytes":8192,"blocks":0,"depth":2,"dur":900,"write":true}
{"t":2000,"ev":"read_ahead","sector":0,"lbn":7,"bytes":0,"blocks":15,"depth":0,"dur":0,"write":false}
`
	if sb.String() != want {
		t.Errorf("JSONL:\n%s\nwant:\n%s", sb.String(), want)
	}
	if jw.Err() != nil {
		t.Errorf("Err = %v", jw.Err())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestJSONLStickyError(t *testing.T) {
	fw := &failWriter{}
	jw := NewJSONL(fw)
	jw.Write(Event{Kind: EvIOStart})
	jw.Write(Event{Kind: EvIOStart})
	if jw.Err() == nil {
		t.Fatal("error not recorded")
	}
	if fw.n != 1 {
		t.Errorf("writer called %d times after error, want 1 (sticky)", fw.n)
	}
}

// TestEmitNoSubscriberNoAlloc is the acceptance gate for the
// instrumentation's hot-path cost: with nobody listening, Emit must not
// touch the heap.
func TestEmitNoSubscriberNoAlloc(t *testing.T) {
	b := &Bus{}
	n := testing.AllocsPerRun(1000, func() {
		b.Emit(Event{T: sim.Second, Kind: EvIOStart, Sector: 100, Bytes: 8192, Depth: 3})
	})
	if n != 0 {
		t.Errorf("Emit with no subscriber allocates %v per call, want 0", n)
	}
}

func BenchmarkEmitNoSubscriber(b *testing.B) {
	bus := &Bus{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(Event{T: sim.Time(i), Kind: EvIOStart, Sector: int64(i), Bytes: 8192})
	}
}

func BenchmarkEmitOneSubscriber(b *testing.B) {
	bus := &Bus{}
	var sink int64
	bus.Subscribe(func(ev Event) { sink += ev.Bytes })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(Event{T: sim.Time(i), Kind: EvIOStart, Sector: int64(i), Bytes: 8192})
	}
	_ = sink
}
