package telemetry

import (
	"errors"
	"strings"
	"testing"

	"ufsclust/internal/sim"
)

func TestBusDelivery(t *testing.T) {
	b := &Bus{}
	if b.Active() {
		t.Error("empty bus reports Active")
	}
	var got []Event
	b.Subscribe(func(ev Event) { got = append(got, ev) })
	if !b.Active() {
		t.Error("subscribed bus not Active")
	}
	b.Emit(Event{T: sim.Second, Kind: EvClusterPush, LBN: 3, Blocks: 15})
	if len(got) != 1 || got[0].Kind != EvClusterPush || got[0].Blocks != 15 {
		t.Errorf("delivered %+v", got)
	}
}

func TestNilBusSafe(t *testing.T) {
	var b *Bus
	b.Emit(Event{Kind: EvIOStart}) // must not panic
	if b.Active() {
		t.Error("nil bus reports Active")
	}
}

func TestKindNames(t *testing.T) {
	// Every kind has a wire name; the JSONL format depends on it.
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if numEventKinds.String() != "unknown" {
		t.Errorf("out-of-range kind renders %q", numEventKinds.String())
	}
	if EvClusterPush.String() != "cluster_push" {
		t.Errorf("EvClusterPush = %q", EvClusterPush.String())
	}
}

func TestJSONLFormat(t *testing.T) {
	var sb strings.Builder
	jw := NewJSONL(&sb)
	jw.Write(Event{
		T: 1500, Kind: EvIODone, Sector: 264, Bytes: 8192,
		Depth: 2, Dur: 900, Write: true,
	})
	jw.Write(Event{T: 2000, Kind: EvReadAhead, LBN: 7, Blocks: 15})
	want := `{"t":1500,"ev":"io_done","sector":264,"lbn":0,"bytes":8192,"blocks":0,"depth":2,"dur":900,"write":true}
{"t":2000,"ev":"read_ahead","sector":0,"lbn":7,"bytes":0,"blocks":15,"depth":0,"dur":0,"write":false}
`
	if sb.String() != want {
		t.Errorf("JSONL:\n%s\nwant:\n%s", sb.String(), want)
	}
	if jw.Err() != nil {
		t.Errorf("Err = %v", jw.Err())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestJSONLStickyError(t *testing.T) {
	fw := &failWriter{}
	jw := NewJSONL(fw)
	jw.Write(Event{Kind: EvIOStart})
	jw.Write(Event{Kind: EvIOStart})
	if jw.Err() == nil {
		t.Fatal("error not recorded")
	}
	if fw.n != 1 {
		t.Errorf("writer called %d times after error, want 1 (sticky)", fw.n)
	}
}

// TestEmitNoSubscriberNoAlloc is the acceptance gate for the
// instrumentation's hot-path cost: with nobody listening, Emit must not
// touch the heap.
func TestEmitNoSubscriberNoAlloc(t *testing.T) {
	b := &Bus{}
	n := testing.AllocsPerRun(1000, func() {
		b.Emit(Event{T: sim.Second, Kind: EvIOStart, Sector: 100, Bytes: 8192, Depth: 3})
	})
	if n != 0 {
		t.Errorf("Emit with no subscriber allocates %v per call, want 0", n)
	}
}

func BenchmarkEmitNoSubscriber(b *testing.B) {
	bus := &Bus{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(Event{T: sim.Time(i), Kind: EvIOStart, Sector: int64(i), Bytes: 8192})
	}
}

func BenchmarkEmitOneSubscriber(b *testing.B) {
	bus := &Bus{}
	var sink int64
	bus.Subscribe(func(ev Event) { sink += ev.Bytes })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(Event{T: sim.Time(i), Kind: EvIOStart, Sector: int64(i), Bytes: 8192})
	}
	_ = sink
}
