package telemetry

import (
	"testing"

	"ufsclust/internal/sim"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Bounds are upper-inclusive: v lands in the first bucket whose
	// bound is >= v.
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {9, 0}, {10, 0}, // at the bound stays in the bucket
		{11, 1}, {20, 1},
		{21, 2}, {40, 2},
		{41, 3}, {1 << 40, 3}, // overflow
		{-5, 0}, // below the first bound
	}
	for _, c := range cases {
		h := NewHistogram("t", UnitCount, []int64{10, 20, 40})
		h.Observe(c.v)
		s := h.snapshot()
		for i, n := range s.Counts {
			want := int64(0)
			if i == c.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%d): bucket %d = %d, want %d", c.v, i, n, want)
			}
		}
	}
}

func TestHistogramSumAndMean(t *testing.T) {
	h := NewHistogram("t", UnitCount, []int64{10})
	h.Observe(4)
	h.Observe(6)
	h.Observe(20)
	s := h.snapshot()
	if s.N != 3 || s.Sum != 30 {
		t.Errorf("n=%d sum=%d, want 3 and 30", s.N, s.Sum)
	}
	if s.Mean() != 10 {
		t.Errorf("mean = %v, want 10", s.Mean())
	}
	if (HistSnapshot{}).Mean() != 0 {
		t.Error("empty mean != 0")
	}
}

func TestHistogramNilObserve(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic: unattached telemetry leaves hists nil
}

func TestHistogramDelta(t *testing.T) {
	h := NewHistogram("t", UnitCount, []int64{10, 20})
	h.Observe(5)
	pre := h.snapshot()
	h.Observe(15)
	h.Observe(25)
	d := h.snapshot().delta(pre)
	if d.N != 2 || d.Sum != 40 {
		t.Errorf("delta n=%d sum=%d, want 2 and 40", d.N, d.Sum)
	}
	if d.Counts[0] != 0 || d.Counts[1] != 1 || d.Counts[2] != 1 {
		t.Errorf("delta counts = %v, want [0 1 1]", d.Counts)
	}
	// Delta against an empty prev is the identity.
	id := h.snapshot().delta(HistSnapshot{})
	if id.N != 3 {
		t.Errorf("delta vs empty: n=%d, want 3", id.N)
	}
}

func TestHistogramNonAscendingBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	NewHistogram("bad", UnitCount, []int64{10, 10})
}

func TestStandardBounds(t *testing.T) {
	tb := TimeBounds()
	if tb[0] != int64(250*sim.Microsecond) || tb[len(tb)-1] != int64(128*sim.Millisecond) {
		t.Errorf("TimeBounds span [%d, %d], want [250us, 128ms]", tb[0], tb[len(tb)-1])
	}
	db := DepthBounds()
	if db[0] != 0 || db[1] != 1 || db[len(db)-1] != 128 {
		t.Errorf("DepthBounds = %v", db)
	}
	sb := SizeBounds()
	if sb[0] != 1 || sb[len(sb)-1] != 256 {
		t.Errorf("SizeBounds = %v", sb)
	}
	for _, bounds := range [][]int64{tb, db, sb} {
		NewHistogram("check", UnitCount, bounds) // panics if not ascending
	}
}

func TestObserveNoAlloc(t *testing.T) {
	h := NewHistogram("t", UnitNs, TimeBounds())
	n := testing.AllocsPerRun(1000, func() {
		h.Observe(int64(3 * sim.Millisecond))
	})
	if n != 0 {
		t.Errorf("Observe allocates %v per call, want 0", n)
	}
}
