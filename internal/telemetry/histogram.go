package telemetry

import (
	"fmt"
	"io"
	"strconv"

	"ufsclust/internal/sim"
)

// Unit selects how a histogram's bucket bounds render.
type Unit uint8

// Histogram units.
const (
	UnitCount Unit = iota // plain integers (queue depth, sectors)
	UnitNs                // nanoseconds, rendered with sim.Time's adaptive format
)

// Histogram is a fixed-bucket distribution. Bounds are ascending and
// upper-inclusive: an observation v lands in the first bucket whose
// bound is >= v, or in the trailing overflow bucket. Buckets are fixed
// at construction so Observe is a bounded linear scan with no
// allocation — safe on the simulation's hot paths.
type Histogram struct {
	Name   string
	Unit   Unit
	bounds []int64
	counts []int64 // len(bounds)+1; last is overflow
	sum    int64
	n      int64
}

// NewHistogram builds a histogram over the given ascending bounds.
func NewHistogram(name string, unit Unit, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds not ascending: " + name) // simlint:invariant -- construction-time API misuse
		}
	}
	return &Histogram{
		Name:   name,
		Unit:   unit,
		bounds: bounds,
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe records one value. Nil-safe: a nil histogram (no telemetry
// attached) is a no-op, so instrumented code needs no guards.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// HistSnapshot is a histogram's state inside a Snapshot.
type HistSnapshot struct {
	Name   string
	Unit   Unit
	Bounds []int64
	Counts []int64 // len(Bounds)+1; last is overflow
	Sum    int64
	N      int64
}

func (h *Histogram) snapshot() HistSnapshot {
	return HistSnapshot{
		Name:   h.Name,
		Unit:   h.Unit,
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		N:      h.n,
	}
}

// delta subtracts a previous snapshot of the same histogram.
func (h HistSnapshot) delta(prev HistSnapshot) HistSnapshot {
	if prev.N == 0 && prev.Sum == 0 {
		return h
	}
	d := h
	d.Counts = append([]int64(nil), h.Counts...)
	for i := range d.Counts {
		if i < len(prev.Counts) {
			d.Counts[i] -= prev.Counts[i]
		}
	}
	d.Sum -= prev.Sum
	d.N -= prev.N
	return d
}

// Mean returns the average observed value (0 when empty).
func (h HistSnapshot) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// bound renders one bucket bound in the histogram's unit.
func (h HistSnapshot) bound(i int) string {
	if i >= len(h.Bounds) {
		return "+inf"
	}
	if h.Unit == UnitNs {
		return sim.Time(h.Bounds[i]).String()
	}
	return strconv.FormatInt(h.Bounds[i], 10)
}

// format writes the nonempty buckets as "name: <=bound count ...".
func (h HistSnapshot) format(w io.Writer) {
	fmt.Fprintf(w, "%s (n=%d", h.Name, h.N)
	if h.Unit == UnitNs {
		fmt.Fprintf(w, ", mean %v", sim.Time(h.Mean()))
	} else {
		fmt.Fprintf(w, ", mean %.1f", h.Mean())
	}
	fmt.Fprint(w, ")\n")
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		fmt.Fprintf(w, "  <=%-10s %d\n", h.bound(i), c)
	}
}

// TimeBounds returns the standard latency buckets: 250us doubling to
// 128ms, covering command overhead through multi-seek worst cases on
// the simulated drive.
func TimeBounds() []int64 {
	var out []int64
	for b := 250 * sim.Microsecond; b <= 128*sim.Millisecond; b *= 2 {
		out = append(out, int64(b))
	}
	return out
}

// DepthBounds returns the standard queue-depth buckets: 0, 1, then
// doubling to 128.
func DepthBounds() []int64 {
	out := []int64{0}
	for b := int64(1); b <= 128; b *= 2 {
		out = append(out, b)
	}
	return out
}

// SizeBounds returns the standard transfer-size buckets in sectors:
// 1 (512 B) doubling to 256 (128 KB, run A's full cluster).
func SizeBounds() []int64 {
	var out []int64
	for b := int64(1); b <= 256; b *= 2 {
		out = append(out, b)
	}
	return out
}
