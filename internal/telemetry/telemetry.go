// Package telemetry is the machine's observability layer: a
// deterministic metrics registry (named counters and gauges, read
// lazily from the subsystems that own them), fixed-bucket histograms
// for latency and size distributions, and a typed event-trace bus.
//
// The registry replaces the old reset-and-read Stats discipline with
// interval measurement: take a Snapshot before the measured phase and
// another after, and Delta the two. Snapshots are pure reads — taking
// one never perturbs simulated time, scheduling, or the counters
// themselves, so back-to-back measurements on one machine compose.
//
// Determinism: every snapshot is sorted by metric name, histograms
// observe values derived only from simulated state, and events are
// emitted synchronously at fixed points in the simulated code path —
// so two same-seed runs produce byte-identical formatted snapshots and
// byte-identical JSONL event streams.
package telemetry

import (
	"fmt"
	"io"
	"sort"

	"ufsclust/internal/sim"
)

// Telemetry bundles the two halves every machine carries: the metrics
// registry and the event bus.
type Telemetry struct {
	Reg *Registry
	Bus *Bus
}

// New returns an empty telemetry instance.
func New() *Telemetry {
	return &Telemetry{Reg: NewRegistry(), Bus: &Bus{}}
}

// metric is one registered counter or gauge: a name and a getter that
// reads the live value from the owning subsystem.
type metric struct {
	name  string
	gauge bool
	get   func() int64
}

// Registry holds the machine's named metrics. Subsystems register
// getters at construction (AttachTelemetry); nothing is copied or
// accumulated here until Snapshot reads the live values.
type Registry struct {
	metrics []metric
	names   map[string]bool
	// sources contribute dynamically named counters (e.g. per-category
	// CPU accounting, where workloads invent categories at run time).
	sources []func(add func(name string, v int64))
	hists   []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// Counter registers a monotonically increasing metric. Delta subtracts
// counters between snapshots.
func (r *Registry) Counter(name string, get func() int64) {
	r.register(name, false, get)
}

// Gauge registers a point-in-time level (queue depth, free pages).
// Delta keeps the newer snapshot's value rather than subtracting.
func (r *Registry) Gauge(name string, get func() int64) {
	r.register(name, true, get)
}

func (r *Registry) register(name string, gauge bool, get func() int64) {
	if r.names[name] {
		panic("telemetry: duplicate metric " + name) // simlint:invariant -- registration-time API misuse, caught at machine construction
	}
	r.names[name] = true
	r.metrics = append(r.metrics, metric{name: name, gauge: gauge, get: get})
}

// CounterSource registers a callback that contributes dynamically named
// counters at snapshot time. The source must emit each name at most
// once per snapshot and must prefix its names so they cannot collide
// with registered metrics; emission order does not matter (snapshots
// sort by name).
func (r *Registry) CounterSource(emit func(add func(name string, v int64))) {
	r.sources = append(r.sources, emit)
}

// Hist registers a histogram and returns it. The histogram's name
// shares the metric namespace.
func (r *Registry) Hist(h *Histogram) *Histogram {
	if r.names[h.Name] {
		panic("telemetry: duplicate metric " + h.Name) // simlint:invariant -- registration-time API misuse, caught at machine construction
	}
	r.names[h.Name] = true
	r.hists = append(r.hists, h)
	return h
}

// Entry is one metric value inside a snapshot.
type Entry struct {
	Name  string
	Value int64
	Gauge bool
}

// Snapshot is a consistent reading of every metric at one instant of
// virtual time. Entries are sorted by name; histogram snapshots are
// sorted by histogram name.
type Snapshot struct {
	At       sim.Time // virtual time the snapshot was taken
	Interval sim.Time // nonzero only on a Delta: At - prev.At
	Entries  []Entry
	Hists    []HistSnapshot
}

// Snapshot reads every registered metric, source, and histogram.
func (r *Registry) Snapshot(at sim.Time) Snapshot {
	s := Snapshot{At: at, Entries: make([]Entry, 0, len(r.metrics))}
	for _, m := range r.metrics {
		s.Entries = append(s.Entries, Entry{Name: m.name, Value: m.get(), Gauge: m.gauge})
	}
	for _, src := range r.sources {
		src(func(name string, v int64) {
			s.Entries = append(s.Entries, Entry{Name: name, Value: v})
		})
	}
	sort.Slice(s.Entries, func(i, j int) bool { return s.Entries[i].Name < s.Entries[j].Name })
	for _, h := range r.hists {
		s.Hists = append(s.Hists, h.snapshot())
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}

// Get returns the value of a named metric, or zero if absent.
func (s Snapshot) Get(name string) int64 {
	i := sort.Search(len(s.Entries), func(i int) bool { return s.Entries[i].Name >= name })
	if i < len(s.Entries) && s.Entries[i].Name == name {
		return s.Entries[i].Value
	}
	return 0
}

// Hist returns the named histogram snapshot, or a zero snapshot if
// absent.
func (s Snapshot) Hist(name string) HistSnapshot {
	for _, h := range s.Hists {
		if h.Name == name {
			return h
		}
	}
	return HistSnapshot{}
}

// Delta returns the interval measurement s - prev: counters and
// histogram contents subtract, gauges keep s's value (a level has no
// meaningful difference). Metrics present only in s — dynamic counters
// born during the interval — carry their full value.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		At:       s.At,
		Interval: s.At - prev.At,
		Entries:  make([]Entry, len(s.Entries)),
	}
	copy(d.Entries, s.Entries)
	for i := range d.Entries {
		if !d.Entries[i].Gauge {
			d.Entries[i].Value -= prev.Get(d.Entries[i].Name)
		}
	}
	d.Hists = make([]HistSnapshot, len(s.Hists))
	for i, h := range s.Hists {
		d.Hists[i] = h.delta(prev.Hist(h.Name))
	}
	return d
}

// Format writes a human-readable rendering: nonzero metrics in name
// order, then every histogram with observations. Zero-valued counters
// are elided so interval deltas read as a summary of what happened.
func (s Snapshot) Format(w io.Writer) {
	if s.Interval > 0 {
		fmt.Fprintf(w, "interval %v (at %v)\n", s.Interval, s.At)
	} else {
		fmt.Fprintf(w, "at %v\n", s.At)
	}
	for _, e := range s.Entries {
		if e.Value == 0 {
			continue
		}
		fmt.Fprintf(w, "%-28s %d\n", e.Name, e.Value)
	}
	for _, h := range s.Hists {
		if h.N == 0 {
			continue
		}
		h.format(w)
	}
}
