package telemetry

import (
	"strings"
	"testing"

	"ufsclust/internal/sim"
)

func TestSnapshotReadsLiveValues(t *testing.T) {
	r := NewRegistry()
	var reads, depth int64
	r.Counter("disk.reads", func() int64 { return reads })
	r.Gauge("driver.queue_len", func() int64 { return depth })

	s0 := r.Snapshot(0)
	if got := s0.Get("disk.reads"); got != 0 {
		t.Errorf("initial disk.reads = %d, want 0", got)
	}
	reads, depth = 7, 3
	s1 := r.Snapshot(sim.Second)
	if got := s1.Get("disk.reads"); got != 7 {
		t.Errorf("disk.reads = %d, want 7", got)
	}
	if got := s1.Get("driver.queue_len"); got != 3 {
		t.Errorf("driver.queue_len = %d, want 3", got)
	}
	if got := s1.Get("no.such.metric"); got != 0 {
		t.Errorf("absent metric = %d, want 0", got)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz.last", func() int64 { return 1 })
	r.Counter("aa.first", func() int64 { return 1 })
	r.CounterSource(func(add func(string, int64)) {
		add("mm.middle", 1)
	})
	s := r.Snapshot(0)
	if len(s.Entries) != 3 {
		t.Fatalf("len(Entries) = %d, want 3", len(s.Entries))
	}
	for i := 1; i < len(s.Entries); i++ {
		if s.Entries[i-1].Name >= s.Entries[i].Name {
			t.Errorf("entries not sorted: %q before %q", s.Entries[i-1].Name, s.Entries[i].Name)
		}
	}
}

func TestDeltaCountersSubtractGaugesKeep(t *testing.T) {
	r := NewRegistry()
	var reads, free int64
	r.Counter("disk.reads", func() int64 { return reads })
	r.Gauge("vm.free_pages", func() int64 { return free })

	reads, free = 10, 100
	pre := r.Snapshot(sim.Second)
	reads, free = 25, 40
	d := r.Snapshot(3 * sim.Second).Delta(pre)

	if got := d.Get("disk.reads"); got != 15 {
		t.Errorf("delta disk.reads = %d, want 15", got)
	}
	if got := d.Get("vm.free_pages"); got != 40 {
		t.Errorf("delta vm.free_pages = %d, want 40 (gauges keep the newer value)", got)
	}
	if d.Interval != 2*sim.Second {
		t.Errorf("Interval = %v, want 2s", d.Interval)
	}
	if d.At != 3*sim.Second {
		t.Errorf("At = %v, want 3s", d.At)
	}
}

func TestDeltaDynamicCounterBornMidInterval(t *testing.T) {
	r := NewRegistry()
	cats := map[string]int64{}
	r.CounterSource(func(add func(string, int64)) {
		for _, name := range []string{"cpu.copy.ns", "cpu.musbus-cmd.ns"} {
			if v, ok := cats[name]; ok {
				add(name, v)
			}
		}
	})
	cats["cpu.copy.ns"] = 50
	pre := r.Snapshot(0)
	cats["cpu.copy.ns"] = 80
	cats["cpu.musbus-cmd.ns"] = 30 // born after pre
	d := r.Snapshot(sim.Second).Delta(pre)
	if got := d.Get("cpu.copy.ns"); got != 30 {
		t.Errorf("delta cpu.copy.ns = %d, want 30", got)
	}
	if got := d.Get("cpu.musbus-cmd.ns"); got != 30 {
		t.Errorf("delta cpu.musbus-cmd.ns = %d, want 30 (full value when absent from prev)", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("disk.reads", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Counter registration did not panic")
		}
	}()
	r.Gauge("disk.reads", func() int64 { return 0 })
}

func TestDuplicateHistNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("disk.seek_ns", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("histogram colliding with a counter name did not panic")
		}
	}()
	r.Hist(NewHistogram("disk.seek_ns", UnitNs, TimeBounds()))
}

func TestSnapshotIsPureRead(t *testing.T) {
	r := NewRegistry()
	var reads int64 = 5
	r.Counter("disk.reads", func() int64 { return reads })
	h := r.Hist(NewHistogram("disk.svc", UnitNs, TimeBounds()))
	h.Observe(int64(sim.Millisecond))

	s1 := r.Snapshot(sim.Second)
	s2 := r.Snapshot(sim.Second)
	if s1.Get("disk.reads") != s2.Get("disk.reads") {
		t.Error("back-to-back snapshots disagree on a counter")
	}
	if s1.Hist("disk.svc").N != 1 || s2.Hist("disk.svc").N != 1 {
		t.Error("taking a snapshot disturbed a histogram")
	}
}

func TestFormatElidesZeroes(t *testing.T) {
	r := NewRegistry()
	r.Counter("disk.reads", func() int64 { return 12 })
	r.Counter("disk.writes", func() int64 { return 0 })
	r.Hist(NewHistogram("disk.svc", UnitNs, TimeBounds())) // never observed

	var sb strings.Builder
	r.Snapshot(4200 * sim.Microsecond).Format(&sb)
	out := sb.String()
	if !strings.Contains(out, "disk.reads") {
		t.Errorf("format lost a nonzero counter:\n%s", out)
	}
	if strings.Contains(out, "disk.writes") {
		t.Errorf("format printed a zero counter:\n%s", out)
	}
	if strings.Contains(out, "disk.svc") {
		t.Errorf("format printed an empty histogram:\n%s", out)
	}
	if !strings.Contains(out, "at 4.20ms") {
		t.Errorf("format missing timestamp header:\n%s", out)
	}
}

func TestFormatDeterministic(t *testing.T) {
	mk := func() string {
		r := NewRegistry()
		r.Counter("b.two", func() int64 { return 2 })
		r.Counter("a.one", func() int64 { return 1 })
		h := r.Hist(NewHistogram("c.hist", UnitCount, DepthBounds()))
		h.Observe(3)
		h.Observe(70)
		var sb strings.Builder
		r.Snapshot(sim.Second).Format(&sb)
		return sb.String()
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("two identical registries format differently:\n%q\n%q", a, b)
	}
}
