package telemetry

import (
	"io"
	"strconv"

	"ufsclust/internal/sim"
)

// EventKind identifies what happened. The taxonomy covers the paper's
// data path end to end: queueing and service at the drive, the engine's
// read/write clustering decisions, and the VM daemon's sweeps.
type EventKind uint8

// Event kinds. Emission sites (one each, so same-seed streams replay
// byte-identically):
//
//	EvIOQueue     driver.Strategy accepted a request
//	EvIOStart     the drive began servicing a request
//	EvIODone      the driver's completion interrupt ran
//	EvSyncRead    the engine issued a demand read
//	EvReadAhead   the engine issued an asynchronous prefetch
//	EvWriteLie    a delayed ("lied about") putpage
//	EvClusterPush the engine wrote out a cluster of dirty pages
//	EvFreeBehind  a sequential read freed the page behind it
//	EvPageoutScan the pageout daemon finished one sweep
//	EvFaultInject the drive failed a transfer per the fault plan
//	EvIORetry     the driver rescheduled a failed transfer
//	EvIOGiveup    the driver exhausted its retries for a transfer
//	EvCrashCut    the fault injector power-cut the machine
//	EvRAWindow    a read-ahead policy decision: LBN is the window start,
//	              Blocks the post-clamp window size in blocks (0 on a
//	              collapse or an unconfirmed trigger), Depth the
//	              detector's sequentiality confidence. Emitted only by
//	              non-fixed policies, so default-policy streams replay
//	              the pre-policy fixtures byte-for-byte.
//	EvParityRMW   a RAID-5 volume turned a partial-stripe write into a
//	              read-modify-write: Sector is the row's first logical
//	              sector, Blocks the data pieces rewritten.
//	EvDegradedRead a redundant volume served a read by reconstruction
//	              (mirror failover or parity XOR) instead of the failed
//	              member.
//	EvMemberFail  a volume marked a member device failed (media give-up
//	              or administrative kill); Depth is the member index.
//	EvVecIO       the engine executed a vectored Readv/Writev: LBN is the
//	              envelope's first file block, Bytes the payload, Blocks
//	              the merged-run count, Depth the chosen method (0 naive,
//	              1 sieve, 2 list). Single-element vectors degenerate to
//	              the scalar paths and emit nothing, so pre-vec streams
//	              replay byte-for-byte.
//	EvLogCommit   the metadata journal committed a transaction: Sector is
//	              the log sector the record landed at, Bytes the record
//	              size, Blocks the metadata blocks it carries. Emitted
//	              only on journaled machines (WithJournal), so default
//	              streams replay the pre-journal fixtures byte-for-byte.
//	EvLogCheckpoint the journal wrote its committed blocks home and reset
//	              the log: Blocks is the blocks written in place, Depth
//	              the new log epoch.
//	EvLogReplay   boot recovery replayed the journal: Blocks is the
//	              transactions applied, Bytes the sectors read, Depth the
//	              sectors written.
//
// New kinds are appended, never inserted: the wire names below are part
// of the JSONL stream format that committed golden fixtures replay.
const (
	EvIOQueue EventKind = iota
	EvIOStart
	EvIODone
	EvSyncRead
	EvReadAhead
	EvWriteLie
	EvClusterPush
	EvFreeBehind
	EvPageoutScan
	EvFaultInject
	EvIORetry
	EvIOGiveup
	EvCrashCut
	EvRAWindow
	EvParityRMW
	EvDegradedRead
	EvMemberFail
	EvVecIO
	EvLogCommit
	EvLogCheckpoint
	EvLogReplay
	numEventKinds
)

var kindNames = [numEventKinds]string{
	"io_queue", "io_start", "io_done", "sync_read", "read_ahead",
	"write_lie", "cluster_push", "free_behind", "pageout_scan",
	"fault_inject", "io_retry", "io_giveup", "crash_cut", "ra_window",
	"parity_rmw", "degraded_read", "member_fail", "vec_io",
	"log_commit", "log_checkpoint", "log_replay",
}

// String returns the kind's snake_case wire name.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured trace record. It is a plain value — emitting
// one allocates nothing — and only the fields relevant to the kind are
// set; the rest stay zero.
type Event struct {
	T      sim.Time  // virtual time of emission
	Kind   EventKind //
	Sector int64     // device sector (I/O events)
	LBN    int64     // file logical block (engine events)
	Bytes  int64     // transfer size in bytes
	Blocks int64     // blocks in the cluster / pages freed
	Depth  int64     // queue depth at emission / pages scanned
	Dur    sim.Time  // request latency (EvIODone)
	Write  bool      // transfer direction (I/O events)
	// Dev labels the member device of a volume ("sd1"); empty on a
	// bare-disk machine and on volume-level events, so single-spindle
	// streams replay the pre-volume fixtures byte-for-byte.
	Dev string
}

// Bus fans events out to subscribers. The zero value is ready to use,
// and both a nil bus and a bus with no subscribers make Emit a no-op
// that performs no allocation — instrumented hot paths pay only a nil
// check and a length test when nobody is listening.
type Bus struct {
	subs    []func(Event)
	depth   int     // emissions in progress (re-entrancy guard)
	pending []Event // events deferred until the current fan-out ends
}

// Subscribe adds a handler. Handlers run synchronously at the emission
// site, in subscription order, in simulated-process or scheduler
// context — they must not block and must not perturb simulated state.
func (b *Bus) Subscribe(fn func(Event)) {
	b.subs = append(b.subs, fn)
}

// Active reports whether any subscriber is attached; emitters may use
// it to skip event assembly that is not free (e.g. computing a field).
func (b *Bus) Active() bool {
	return b != nil && len(b.subs) > 0
}

// Emit delivers ev to every subscriber, then drains any events that
// subscribers deferred during the fan-out.
func (b *Bus) Emit(ev Event) {
	if b == nil {
		return
	}
	b.deliver(ev)
	b.drain()
}

// Defer delivers ev like Emit, except that when an emission is already
// in progress the event is queued and delivered after the current
// fan-out completes. Subscribers that need to publish in reaction to an
// event (the fault injector's crash_cut) must use it: re-entering Emit
// from inside a fan-out would hand later subscribers the reaction
// before the event that provoked it, so the stream order would no
// longer be the emission order.
func (b *Bus) Defer(ev Event) {
	if b == nil {
		return
	}
	if b.depth > 0 {
		b.pending = append(b.pending, ev)
		return
	}
	b.deliver(ev)
	b.drain()
}

// deliver runs one complete fan-out of ev.
func (b *Bus) deliver(ev Event) {
	b.depth++
	for _, fn := range b.subs {
		fn(ev)
	}
	b.depth--
}

// drain delivers deferred events in FIFO order; a deferral made during
// the drain itself lands behind the events already queued.
func (b *Bus) drain() {
	for b.depth == 0 && len(b.pending) > 0 {
		ev := b.pending[0]
		b.pending = b.pending[1:]
		b.deliver(ev)
	}
}

// JSONLWriter renders events as JSON Lines with a fixed field order,
// so same-seed runs export byte-identical streams. Subscribe its Write
// method: bus.Subscribe(w.Write). Errors are sticky; check Err once
// the run is over.
type JSONLWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewJSONL returns a JSONL writer over w.
func NewJSONL(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: w, buf: make([]byte, 0, 160)}
}

// Write renders one event as a single JSON line.
func (jw *JSONLWriter) Write(ev Event) {
	if jw.err != nil {
		return
	}
	b := jw.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(ev.T), 10)
	b = append(b, `,"ev":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","sector":`...)
	b = strconv.AppendInt(b, ev.Sector, 10)
	b = append(b, `,"lbn":`...)
	b = strconv.AppendInt(b, ev.LBN, 10)
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, ev.Bytes, 10)
	b = append(b, `,"blocks":`...)
	b = strconv.AppendInt(b, ev.Blocks, 10)
	b = append(b, `,"depth":`...)
	b = strconv.AppendInt(b, ev.Depth, 10)
	b = append(b, `,"dur":`...)
	b = strconv.AppendInt(b, int64(ev.Dur), 10)
	b = append(b, `,"write":`...)
	b = strconv.AppendBool(b, ev.Write)
	if ev.Dev != "" {
		// Member tag, volume machines only: omitted when empty so the
		// pre-volume goldens stay byte-identical.
		b = append(b, `,"dev":"`...)
		b = append(b, ev.Dev...)
		b = append(b, '"')
	}
	b = append(b, '}', '\n')
	jw.buf = b
	_, jw.err = jw.w.Write(b)
}

// Err returns the first write error, if any.
func (jw *JSONLWriter) Err() error { return jw.err }
