package vec

import (
	"reflect"
	"testing"
)

func TestNormalizeEmpty(t *testing.T) {
	n, err := Normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Runs) != 0 || n.Payload != 0 || n.Span != 0 || n.Coalesced != 0 {
		t.Fatalf("empty vector normalized to %+v", n)
	}
	if d := n.Density(); d != 0 {
		t.Fatalf("empty density = %v, want 0", d)
	}
}

func TestNormalizeRejectsNegative(t *testing.T) {
	if _, err := Normalize([]Ext{{Off: -1, Len: 8}}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := Normalize([]Ext{{Off: 0, Len: -8}}); err == nil {
		t.Error("negative length accepted")
	}
}

func TestNormalizeZeroLengthElements(t *testing.T) {
	n, err := Normalize([]Ext{{Off: 100, Len: 0}, {Off: 0, Len: 16}, {Off: 50, Len: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Runs) != 1 || n.Runs[0].Off != 0 || n.Runs[0].Len != 16 {
		t.Fatalf("runs = %+v, want one 16-byte run at 0", n.Runs)
	}
	if !reflect.DeepEqual(n.Runs[0].Members, []int{1}) {
		t.Fatalf("members = %v, want [1]: zero-length elements join no run", n.Runs[0].Members)
	}
	if n.Payload != 16 || n.Span != 16 {
		t.Fatalf("payload/span = %d/%d, want 16/16", n.Payload, n.Span)
	}
}

func TestNormalizeSortsAndMerges(t *testing.T) {
	// Unsorted input: [32,48) [0,16) [16,32) [64,80) — first three chain
	// into one run (adjacent), the last stands alone across a gap.
	n, err := Normalize([]Ext{
		{Off: 32, Len: 16}, {Off: 0, Len: 16}, {Off: 16, Len: 16}, {Off: 64, Len: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Runs) != 2 {
		t.Fatalf("got %d runs, want 2: %+v", len(n.Runs), n.Runs)
	}
	r0, r1 := n.Runs[0], n.Runs[1]
	if r0.Off != 0 || r0.Len != 48 || !reflect.DeepEqual(r0.Members, []int{0, 1, 2}) {
		t.Fatalf("run 0 = %+v, want [0,48) members [0 1 2]", r0)
	}
	if r1.Off != 64 || r1.Len != 16 || !reflect.DeepEqual(r1.Members, []int{3}) {
		t.Fatalf("run 1 = %+v, want [64,80) members [3]", r1)
	}
	if n.Coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", n.Coalesced)
	}
	if n.Lo != 0 || n.Span != 80 {
		t.Fatalf("lo/span = %d/%d, want 0/80", n.Lo, n.Span)
	}
}

func TestNormalizeOverlap(t *testing.T) {
	// [0,24) and [16,40) overlap; the merged run must cover the union
	// and payload counts both elements in full.
	n, err := Normalize([]Ext{{Off: 16, Len: 24}, {Off: 0, Len: 24}})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Runs) != 1 || n.Runs[0].Off != 0 || n.Runs[0].Len != 40 {
		t.Fatalf("runs = %+v, want one [0,40) run", n.Runs)
	}
	if !reflect.DeepEqual(n.Runs[0].Members, []int{0, 1}) {
		t.Fatalf("members = %v, want vector order [0 1]", n.Runs[0].Members)
	}
	if n.Payload != 48 || n.Span != 40 {
		t.Fatalf("payload/span = %d/%d, want 48/40", n.Payload, n.Span)
	}
	if d := n.Density(); d != 1 {
		t.Fatalf("density = %v, want clamped to 1", d)
	}
	// A contained element must not extend the run.
	n, err = Normalize([]Ext{{Off: 0, Len: 40}, {Off: 8, Len: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Runs) != 1 || n.Runs[0].Len != 40 {
		t.Fatalf("contained element grew the run: %+v", n.Runs)
	}
}

func TestNormalizeStableOnEqualOffsets(t *testing.T) {
	// Two elements at the same offset: members stay in vector order, so
	// a write overlay applies element 1 over element 0.
	n, err := Normalize([]Ext{{Off: 8, Len: 8}, {Off: 8, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Runs) != 1 || !reflect.DeepEqual(n.Runs[0].Members, []int{0, 1}) {
		t.Fatalf("runs = %+v, want one run with members [0 1]", n.Runs)
	}
}

func TestNormalizeDeterministic(t *testing.T) {
	v := []Ext{{96, 8}, {0, 8}, {8, 8}, {96, 16}, {40, 0}, {32, 8}}
	a, err := Normalize(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		b, err := Normalize(v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("normalization not deterministic:\n%+v\n%+v", a, b)
		}
	}
}

func TestAutoPick(t *testing.T) {
	s := Auto(0)
	dense, _ := Normalize([]Ext{{0, 8192}, {16384, 8192}})   // density 2/3
	sparse, _ := Normalize([]Ext{{0, 8192}, {131072, 8192}}) // density ~0.12
	single, _ := Normalize([]Ext{{0, 8192}, {8192, 8192}})   // one merged run
	if m := s.Pick(dense, false); m != Sieve {
		t.Errorf("dense pick = %v, want sieve", m)
	}
	if m := s.Pick(sparse, false); m != List {
		t.Errorf("sparse pick = %v, want list", m)
	}
	if m := s.Pick(single, false); m != Sieve {
		t.Errorf("single-run read pick = %v, want sieve (envelope is the payload)", m)
	}
	if m := s.Pick(single, true); m != List {
		t.Errorf("single-run write pick = %v, want list (nothing to read-modify-write)", m)
	}
	if s.Name() != "auto" {
		t.Errorf("name = %q", s.Name())
	}
}

func TestFixedStrategies(t *testing.T) {
	n, _ := Normalize([]Ext{{0, 8}, {64, 8}})
	for _, tc := range []struct {
		s    Strategy
		want Method
		name string
	}{
		{UseNaive(), Naive, "naive"},
		{UseSieve(), Sieve, "sieve"},
		{UseList(), List, "list"},
	} {
		if m := tc.s.Pick(n, true); m != tc.want {
			t.Errorf("%s picked %v", tc.name, m)
		}
		if tc.s.Name() != tc.name {
			t.Errorf("name = %q, want %q", tc.s.Name(), tc.name)
		}
	}
}

func TestMethodString(t *testing.T) {
	if Naive.String() != "naive" || Sieve.String() != "sieve" || List.String() != "list" {
		t.Error("method wire names changed")
	}
	if Method(99).String() != "unknown" {
		t.Error("out-of-range method must stringify as unknown")
	}
}
