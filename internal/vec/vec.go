// Package vec implements the planning half of vectored (noncontiguous)
// I/O: the offset–length algebra and strategy selection behind the root
// API's Readv/Writev. Ching et al. ("Noncontiguous I/O through PVFS")
// name the two classic implementations — data sieving (transfer the
// covering envelope once, scatter/gather in memory) and true list I/O
// (sort the pieces, merge adjacent and overlapping runs, issue one
// transfer per run) — and show that neither wins everywhere: sieving
// wins dense access patterns, where the envelope carries little dead
// weight, and list I/O wins sparse ones, where the envelope is mostly
// gap. A Strategy makes that call per request; the engine in
// internal/core keeps the mechanism (page cache, cluster reads, the
// delayed-write window).
//
// Determinism rules for the run-merge sort (see DESIGN.md "Vectored
// I/O"): elements sort by file offset with a stable sort, so equal
// offsets keep their vector order; runs merge exactly when they overlap
// or abut; a run's member list is in ascending vector-index order, so
// overlay order (later elements win overlapping writes) never depends
// on sort internals. Same vector, same plan, same telemetry — vectored
// event streams replay byte-identically across same-seed runs.
package vec

import (
	"fmt"
	"sort"
)

// Ext is one element of an I/O vector: Len bytes at file offset Off.
type Ext struct {
	Off int64
	Len int64
}

// End returns the offset just past the element.
func (e Ext) End() int64 { return e.Off + e.Len }

// Run is one merged extent of the normalized vector: a maximal set of
// elements that pairwise chain-overlap or abut, covering [Off, Off+Len)
// with no interior gap. Members holds the vector indices of the
// elements the run absorbed, in ascending vector order.
type Run struct {
	Off     int64
	Len     int64
	Members []int
}

// End returns the offset just past the run.
func (r Run) End() int64 { return r.Off + r.Len }

// Norm is a normalized I/O vector: the merged runs plus the request
// shape numbers a Strategy decides from.
type Norm struct {
	// Runs are the merged extents in ascending offset order.
	Runs []Run
	// Payload is the sum of the element lengths: the bytes the caller
	// asked to move. Overlapping elements count each time — they cost
	// a memory copy each, even when the disk transfer is shared.
	Payload int64
	// Span is the covering envelope in bytes: from the lowest element
	// offset to the highest element end. A sieving transfer moves this
	// much.
	Span int64
	// Lo is the envelope's start offset (the lowest element offset).
	Lo int64
	// Coalesced counts elements that were absorbed into a run with at
	// least one other element — the merge win list I/O gets for free.
	Coalesced int
}

// Density returns Payload/Span, the fraction of the envelope the
// caller actually wants. 1 means fully contiguous; small values mean a
// sparse request whose envelope is mostly gap.
func (n Norm) Density() float64 {
	if n.Span == 0 {
		return 0
	}
	d := float64(n.Payload) / float64(n.Span)
	if d > 1 {
		d = 1 // overlapping elements can push payload past the span
	}
	return d
}

// Normalize validates v and computes its merged-run plan. Zero-length
// elements are legal and produce no run membership; a negative offset
// or length is an error. The input slice is not modified.
func Normalize(v []Ext) (Norm, error) {
	var n Norm
	for i, e := range v {
		if e.Off < 0 || e.Len < 0 {
			return Norm{}, fmt.Errorf("vec: element %d has negative offset or length (%d,%d)", i, e.Off, e.Len)
		}
		n.Payload += e.Len
	}
	// Sort element indices by offset, stably: equal offsets keep vector
	// order, so the plan is a pure function of the vector.
	idx := make([]int, 0, len(v))
	for i, e := range v {
		if e.Len > 0 {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]].Off < v[idx[b]].Off })
	for _, i := range idx {
		e := v[i]
		if len(n.Runs) > 0 {
			last := &n.Runs[len(n.Runs)-1]
			if e.Off <= last.End() { // overlap or abut: merge
				if e.End() > last.End() {
					last.Len = e.End() - last.Off
				}
				last.Members = append(last.Members, i)
				continue
			}
		}
		n.Runs = append(n.Runs, Run{Off: e.Off, Len: e.Len, Members: []int{i}})
	}
	for i := range n.Runs {
		r := &n.Runs[i]
		if len(r.Members) > 1 {
			n.Coalesced += len(r.Members) - 1
		}
		// Members were appended in offset order; overlay order must be
		// vector order so later elements win overlapping writes.
		sort.Ints(r.Members)
	}
	if len(n.Runs) > 0 {
		n.Lo = n.Runs[0].Off
		n.Span = n.Runs[len(n.Runs)-1].End() - n.Lo
	}
	return n, nil
}

// Method is one of the three vectored-I/O implementations.
type Method uint8

const (
	// Naive services each element with its own ordinary read or write,
	// in vector order: the per-piece baseline both classic strategies
	// are measured against.
	Naive Method = iota
	// Sieve transfers the covering envelope once and scatters (reads)
	// or gathers with read-modify-write over the gaps (writes) in
	// memory. Cheap when the vector is dense, pure waste when sparse.
	Sieve
	// List sorts the elements, merges adjacent and overlapping runs,
	// and moves each run with the engine's clustering machinery: batched
	// cluster-sized reads, delayed-window writes. The envelope's gaps
	// are never transferred.
	List
)

// String returns the method's wire name.
func (m Method) String() string {
	switch m {
	case Naive:
		return "naive"
	case Sieve:
		return "sieve"
	case List:
		return "list"
	}
	return "unknown"
}

// Strategy picks the method for one vectored request. Implementations
// must be deterministic, stateless or per-machine, and must not touch
// simulated time — the pick feeds the byte-identical event streams.
type Strategy interface {
	// Name returns the strategy's wire name ("auto", "sieve", ...).
	Name() string
	// Pick chooses the method for a normalized request. write reports
	// the transfer direction.
	Pick(n Norm, write bool) Method
}

// fixed always answers the same method.
type fixed struct{ m Method }

func (f fixed) Name() string           { return f.m.String() }
func (f fixed) Pick(Norm, bool) Method { return f.m }

// UseNaive returns the per-piece baseline strategy: every element is an
// ordinary read or write, in vector order, with no reordering. It is
// the control arm of the FSTR benchmark, not a good idea.
func UseNaive() Strategy { return fixed{Naive} }

// UseSieve returns the always-sieve strategy.
func UseSieve() Strategy { return fixed{Sieve} }

// UseList returns the always-list-I/O strategy.
func UseList() Strategy { return fixed{List} }

// DefaultDenseCutoff is Auto's default density threshold, calibrated
// against the FSTR stride matrix in BENCH_iobench.json: on the
// simulated drive, sieving's clustered envelope read still beats list
// I/O's per-run transfers at density 1/4, and list wins from 1/8 down,
// so the cutoff sits between them. The byte-level density is only a
// proxy — the true determinant is how many file blocks the runs touch,
// which this fs-agnostic package cannot see — but it tracks the
// measured winner across the whole published sweep.
const DefaultDenseCutoff = 0.2

// auto picks Sieve for dense requests and List for sparse ones.
type auto struct{ cutoff float64 }

func (a auto) Name() string { return "auto" }

func (a auto) Pick(n Norm, write bool) Method {
	if len(n.Runs) <= 1 {
		// A single merged run has no gaps, so sieving's envelope IS the
		// payload: a read rides the scalar path's read-ahead with zero
		// waste, while a write would pay a pointless read-modify-write
		// of bytes it fully overwrites — so reads sieve, writes take
		// the run path directly.
		if write {
			return List
		}
		return Sieve
	}
	if n.Density() >= a.cutoff {
		return Sieve
	}
	return List
}

// Auto returns the density-threshold strategy: requests at or above
// cutoff go through data sieving, sparser ones through list I/O.
// A cutoff of 0 selects DefaultDenseCutoff.
func Auto(cutoff float64) Strategy {
	if cutoff == 0 {
		cutoff = DefaultDenseCutoff
	}
	return auto{cutoff: cutoff}
}
