package vm

import (
	"testing"

	"ufsclust/internal/sim"
)

// fakePager fills pages with a marker, counting faults.
type fakePager struct {
	v      *VM
	faults int
}

func (fp *fakePager) Fault(p *sim.Proc, obj Object, off int64) (*Page, error) {
	fp.faults++
	if pg, ok := fp.v.Lookup(obj, off); ok {
		pg.WaitUnbusy(p)
		return pg, nil
	}
	pg := fp.v.Alloc(p, obj, off)
	for i := range pg.Data {
		pg.Data[i] = byte(off >> 13)
	}
	pg.Unbusy()
	return pg, nil
}

func TestAddressSpaceFaultChain(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	v := New(s, nil, Config{MemBytes: 8 << 20})
	obj := &fakeObj{s: s}
	fp := &fakePager{v: v}
	as := NewAddressSpace(v)
	if _, err := as.Map(0, 4*PageSize, obj, 0, fp); err != nil {
		t.Fatal(err)
	}
	s.Spawn("toucher", func(p *sim.Proc) {
		// First touch of each page faults; repeats do not.
		for pass := 0; pass < 3; pass++ {
			for addr := int64(0); addr < 4*PageSize; addr += PageSize {
				pg, err := as.Touch(p, addr+5)
				if err != nil {
					t.Errorf("touch: %v", err)
					return
				}
				if pg.Data[0] != byte(addr>>13) {
					t.Errorf("wrong page at %d", addr)
				}
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fp.faults != 4 {
		t.Errorf("faults = %d, want 4 (one per page)", fp.faults)
	}
	if as.SoftTouches != 8 {
		t.Errorf("soft touches = %d, want 8", as.SoftTouches)
	}
}

func TestAddressSpaceSegmentation(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	v := New(s, nil, Config{MemBytes: 8 << 20})
	obj := &fakeObj{s: s}
	fp := &fakePager{v: v}
	as := NewAddressSpace(v)
	if _, err := as.Map(2*PageSize, 2*PageSize, obj, 0, fp); err != nil {
		t.Fatal(err)
	}
	// Overlap rejected.
	if _, err := as.Map(3*PageSize, PageSize, obj, 0, fp); err == nil {
		t.Fatal("overlapping mapping accepted")
	}
	s.Spawn("toucher", func(p *sim.Proc) {
		if _, err := as.Touch(p, 0); err == nil {
			t.Error("unmapped touch at 0 succeeded")
		}
		if _, err := as.Touch(p, 5*PageSize); err == nil {
			t.Error("unmapped touch past end succeeded")
		}
		if _, err := as.Touch(p, 2*PageSize); err != nil {
			t.Errorf("mapped touch failed: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTranslationDroppedWhenPageRecycled(t *testing.T) {
	// If the page behind a translation is stolen for another identity,
	// the next touch must re-fault rather than read the recycled frame.
	s := sim.New(1)
	t.Cleanup(s.Close)
	v := New(s, nil, Config{MemBytes: 8 << 20})
	obj := &fakeObj{s: s}
	fp := &fakePager{v: v}
	as := NewAddressSpace(v)
	if _, err := as.Map(0, PageSize, obj, 0, fp); err != nil {
		t.Fatal(err)
	}
	s.Spawn("toucher", func(p *sim.Proc) {
		pg, _ := as.Touch(p, 0)
		// Steal the page: free it and recycle under a new identity.
		v.Free(pg, true)
		other := &fakeObj{s: s}
		np := v.Alloc(p, other, 0)
		np.Unbusy()
		faults := fp.faults
		pg2, err := as.Touch(p, 0)
		if err != nil {
			t.Errorf("touch: %v", err)
			return
		}
		if fp.faults != faults+1 {
			t.Error("touch of recycled translation did not re-fault")
		}
		if pg2.Obj != Object(obj) {
			t.Error("touch returned a page belonging to another object")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapRemovesSegment(t *testing.T) {
	s := sim.New(1)
	t.Cleanup(s.Close)
	v := New(s, nil, Config{MemBytes: 8 << 20})
	obj := &fakeObj{s: s}
	fp := &fakePager{v: v}
	as := NewAddressSpace(v)
	seg, err := as.Map(0, PageSize, obj, 0, fp)
	if err != nil {
		t.Fatal(err)
	}
	as.Unmap(seg)
	s.Spawn("toucher", func(p *sim.Proc) {
		if _, err := as.Touch(p, 0); err == nil {
			t.Error("touch after unmap succeeded")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
