package vm

import (
	"testing"

	"ufsclust/internal/sim"
)

// fakeObj is a backing object whose PageOut cleans the page after a
// simulated I/O delay.
type fakeObj struct {
	s        *sim.Sim
	pageouts int
	delay    sim.Time
}

func (f *fakeObj) PageOut(p *sim.Proc, pg *Page) {
	f.pageouts++
	d := f.delay
	if d == 0 {
		d = 10 * sim.Millisecond
	}
	f.s.After(d, func() {
		pg.ClearDirty()
		pg.Unbusy()
	})
}

func newVM(t *testing.T, memMB int64) (*sim.Sim, *VM, *fakeObj) {
	t.Helper()
	s := sim.New(1)
	t.Cleanup(s.Close)
	v := New(s, nil, Config{MemBytes: memMB << 20})
	return s, v, &fakeObj{s: s}
}

func TestAllocAndLookup(t *testing.T) {
	s, v, obj := newVM(t, 8)
	s.Spawn("p", func(p *sim.Proc) {
		pg := v.Alloc(p, obj, 0)
		if !pg.Busy() {
			t.Error("fresh page not busy")
		}
		pg.Data[0] = 42
		pg.Unbusy()
		got, ok := v.Lookup(obj, 0)
		if !ok || got != pg || got.Data[0] != 42 {
			t.Error("lookup did not return the allocated page")
		}
		if _, ok := v.Lookup(obj, PageSize); ok {
			t.Error("lookup invented a page")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Stats.Hits != 1 || v.Stats.Misses != 1 || v.Stats.Allocs != 1 {
		t.Fatalf("stats = %+v", v.Stats)
	}
}

func TestDoubleAllocPanics(t *testing.T) {
	s, v, obj := newVM(t, 8)
	s.Spawn("p", func(p *sim.Proc) {
		pg := v.Alloc(p, obj, 0)
		pg.Unbusy()
		defer func() {
			if recover() == nil {
				t.Error("double alloc did not panic")
			}
		}()
		v.Alloc(p, obj, 0)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeAndReclaim(t *testing.T) {
	s, v, obj := newVM(t, 8)
	s.Spawn("p", func(p *sim.Proc) {
		pg := v.Alloc(p, obj, 0)
		pg.Data[0] = 7
		pg.Unbusy()
		free0 := v.FreeMem()
		v.Free(pg, false)
		if v.FreeMem() != free0+1 {
			t.Error("free did not grow the free list")
		}
		// Reclaim: identity retained while on the free list.
		got, ok := v.Lookup(obj, 0)
		if !ok || got != pg || got.Data[0] != 7 {
			t.Error("reclaim failed")
		}
		if v.FreeMem() != free0 {
			t.Error("reclaim did not remove page from free list")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Stats.Reclaims != 1 {
		t.Fatalf("reclaims = %d, want 1", v.Stats.Reclaims)
	}
}

func TestFreeFrontIsReusedFirst(t *testing.T) {
	s, v, obj := newVM(t, 8)
	s.Spawn("p", func(p *sim.Proc) {
		a := v.Alloc(p, obj, 0)
		a.Unbusy()
		b := v.Alloc(p, obj, PageSize)
		b.Unbusy()
		v.Free(a, false) // tail
		v.Free(b, true)  // front (free-behind)
		got := v.Alloc(p, obj, 2*PageSize)
		if got != b {
			t.Error("front-freed page not reused first")
		}
		got.Unbusy()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Stats.FreeBehind != 1 {
		t.Fatalf("freeBehind = %d, want 1", v.Stats.FreeBehind)
	}
	if v.Stats.Steals != 1 {
		t.Fatalf("steals = %d, want 1 (page b recycled)", v.Stats.Steals)
	}
}

func TestStealDropsOldIdentity(t *testing.T) {
	s, v, obj := newVM(t, 8)
	s.Spawn("p", func(p *sim.Proc) {
		a := v.Alloc(p, obj, 0)
		a.Unbusy()
		v.Free(a, true)
		b := v.Alloc(p, obj, PageSize) // steals a
		b.Unbusy()
		if _, ok := v.Lookup(obj, 0); ok {
			t.Error("stolen page still reachable under old name")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDestroyRemovesIdentity(t *testing.T) {
	s, v, obj := newVM(t, 8)
	s.Spawn("p", func(p *sim.Proc) {
		pg := v.Alloc(p, obj, 0)
		pg.SetDirty() // destroy discards even dirty pages (truncate)
		pg.Unbusy()
		v.Destroy(pg)
		if _, ok := v.Lookup(obj, 0); ok {
			t.Error("destroyed page still cached")
		}
		if v.FreeMem() != v.TotalPages() {
			t.Error("destroyed page not freed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitUnbusyBlocks(t *testing.T) {
	s, v, obj := newVM(t, 8)
	var when sim.Time
	s.Spawn("filler", func(p *sim.Proc) {
		pg := v.Alloc(p, obj, 0)
		s.Spawn("waiter", func(w *sim.Proc) {
			got, ok := v.Lookup(obj, 0)
			if !ok {
				t.Error("page vanished")
				return
			}
			got.WaitUnbusy(w)
			when = w.Now()
		})
		p.Sleep(25 * sim.Millisecond)
		pg.Unbusy()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if when != 25*sim.Millisecond {
		t.Fatalf("waiter released at %v, want 25ms", when)
	}
}

func TestAllocBlocksUntilDaemonFrees(t *testing.T) {
	// Fill all of memory with clean, unreferenced pages; the next Alloc
	// must sleep until the pageout daemon frees some.
	s, v, obj := newVM(t, 8)
	n := v.TotalPages()
	s.Spawn("hog", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pg := v.Alloc(p, obj, int64(i)*PageSize)
			pg.Unbusy()
			pg.ref = false // pretend they have aged
		}
		if v.FreeMem() != 0 {
			t.Error("memory not exhausted")
		}
		pg := v.Alloc(p, obj, int64(n)*PageSize)
		pg.Unbusy()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Stats.MemWaits != 1 {
		t.Fatalf("memWaits = %d, want 1", v.Stats.MemWaits)
	}
	if v.Stats.DaemonRuns == 0 || v.Stats.Scans == 0 {
		t.Fatalf("daemon never ran: %+v", v.Stats)
	}
	if v.FreeMem() == 0 {
		t.Fatal("daemon did not restore free memory")
	}
}

func TestDaemonWritesDirtyPages(t *testing.T) {
	s, v, obj := newVM(t, 8)
	n := v.TotalPages()
	s.Spawn("dirtier", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pg := v.Alloc(p, obj, int64(i)*PageSize)
			pg.SetDirty()
			pg.Unbusy()
			pg.ref = false
		}
		// Next alloc forces the daemon to launder dirty pages.
		pg := v.Alloc(p, obj, int64(n)*PageSize)
		pg.Unbusy()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if obj.pageouts == 0 {
		t.Fatal("daemon never paged out a dirty page")
	}
	if v.Stats.Pageouts != int64(obj.pageouts) {
		t.Fatalf("pageouts stat %d != object count %d", v.Stats.Pageouts, obj.pageouts)
	}
}

func TestClockGivesReferencedPagesASecondChance(t *testing.T) {
	// Half the pages are continuously re-referenced; under pressure the
	// daemon should steal mostly from the cold half.
	s := sim.New(1)
	t.Cleanup(s.Close)
	v := New(s, nil, Config{MemBytes: 8 << 20})
	hot := &fakeObj{s: s}
	cold := &fakeObj{s: s}
	n := v.TotalPages()
	var hotPages []*Page
	s.Spawn("workload", func(p *sim.Proc) {
		for i := 0; i < n/2; i++ {
			pg := v.Alloc(p, hot, int64(i)*PageSize)
			pg.Unbusy()
			hotPages = append(hotPages, pg)
		}
		for i := 0; i < n/2; i++ {
			pg := v.Alloc(p, cold, int64(i)*PageSize)
			pg.Unbusy()
			pg.ref = false
		}
		// Keep the hot set referenced while allocating fresh pages.
		extra := &fakeObj{s: s}
		for i := 0; i < n/4; i++ {
			for _, hp := range hotPages {
				hp.Touch()
			}
			pg := v.Alloc(p, extra, int64(i)*PageSize)
			pg.Unbusy()
			pg.ref = false
			p.Sleep(sim.Millisecond)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	hotLeft := len(v.ObjectPages(hot))
	coldLeft := len(v.ObjectPages(cold))
	if hotLeft <= coldLeft {
		t.Fatalf("clock evicted hot pages before cold: hot=%d cold=%d", hotLeft, coldLeft)
	}
}

func TestMemoryLowThreshold(t *testing.T) {
	s, v, obj := newVM(t, 8)
	s.Spawn("p", func(p *sim.Proc) {
		if v.MemoryLow() {
			t.Error("fresh VM reports low memory")
		}
		n := v.TotalPages() - v.Lotsfree()
		for i := 0; i < n; i++ {
			pg := v.Alloc(p, obj, int64(i)*PageSize)
			pg.Unbusy()
		}
		if !v.MemoryLow() {
			t.Error("VM does not report low memory near lotsfree")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectPagesEnumerates(t *testing.T) {
	s, v, obj := newVM(t, 8)
	other := &fakeObj{s: s}
	s.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			v.Alloc(p, obj, int64(i)*PageSize).Unbusy()
		}
		v.Alloc(p, other, 0).Unbusy()
		if got := len(v.ObjectPages(obj)); got != 5 {
			t.Errorf("ObjectPages = %d, want 5", got)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeGuards(t *testing.T) {
	s, v, obj := newVM(t, 8)
	s.Spawn("p", func(p *sim.Proc) {
		pg := v.Alloc(p, obj, 0)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("freeing busy page did not panic")
				}
			}()
			v.Free(pg, false)
		}()
		pg.Unbusy()
		pg.SetDirty()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("freeing dirty page did not panic")
				}
			}()
			v.Free(pg, false)
		}()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
