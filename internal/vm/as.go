package vm

import (
	"fmt"
	"sort"

	"ufsclust/internal/sim"
)

// This file models the fault path of the paper's Background section:
// "the kernel finds the address space associated with the process and
// calls the address fault handler ... the segment's fault handler
// converts the address into a <vnode, offset> pair and calls getpage of
// the associated file system." The mmap benchmark (Figure 12) runs
// through it.

// SegPager resolves a segment fault to a page: the file system's
// getpage entry as the segment driver sees it. A fault that cannot be
// resolved (an I/O error on the backing store) returns the error — the
// hardware analogue is a SIGBUS delivered to the toucher.
type SegPager interface {
	Fault(p *sim.Proc, obj Object, off int64) (*Page, error)
}

// Seg is a mapping of [Base, Base+Len) to an object starting at Off —
// the seg_vn segment driver's state.
type Seg struct {
	Base, Len int64
	Obj       Object
	Off       int64
	Pager     SegPager

	// translations records which pages currently have a valid MMU
	// translation in this mapping; a touch with a valid translation
	// does not fault.
	translations map[int64]*Page
}

// AddressSpace is a process's collection of segments.
type AddressSpace struct {
	VM   *VM
	segs []*Seg

	// Stats
	Faults, SoftTouches int64
}

// NewAddressSpace returns an empty address space over the VM system.
func NewAddressSpace(v *VM) *AddressSpace { return &AddressSpace{VM: v} }

// Map adds a segment mapping length bytes of obj (from objOff) at base.
// Overlapping mappings are rejected.
func (as *AddressSpace) Map(base, length int64, obj Object, objOff int64, pager SegPager) (*Seg, error) {
	if length <= 0 || base < 0 {
		return nil, fmt.Errorf("vm: bad mapping [%d,+%d)", base, length)
	}
	for _, s := range as.segs {
		if base < s.Base+s.Len && s.Base < base+length {
			return nil, fmt.Errorf("vm: mapping [%d,+%d) overlaps [%d,+%d)", base, length, s.Base, s.Len)
		}
	}
	seg := &Seg{Base: base, Len: length, Obj: obj, Off: objOff, Pager: pager,
		translations: make(map[int64]*Page)}
	as.segs = append(as.segs, seg)
	sort.Slice(as.segs, func(i, j int) bool { return as.segs[i].Base < as.segs[j].Base })
	return seg, nil
}

// Unmap removes a segment (by identity), dropping its translations.
func (as *AddressSpace) Unmap(seg *Seg) {
	for i, s := range as.segs {
		if s == seg {
			as.segs = append(as.segs[:i], as.segs[i+1:]...)
			return
		}
	}
}

// seg finds the segment containing addr.
func (as *AddressSpace) seg(addr int64) (*Seg, error) {
	i := sort.Search(len(as.segs), func(i int) bool { return as.segs[i].Base+as.segs[i].Len > addr })
	if i == len(as.segs) || addr < as.segs[i].Base {
		return nil, fmt.Errorf("vm: segmentation violation at %#x", addr)
	}
	return as.segs[i], nil
}

// Touch simulates a memory reference at addr: if the page has a valid
// translation it costs nothing here (the MMU resolves it); otherwise
// the fault chain runs — address space, segment, pager — and the
// translation is installed. It returns the page.
func (as *AddressSpace) Touch(p *sim.Proc, addr int64) (*Page, error) {
	seg, err := as.seg(addr)
	if err != nil {
		return nil, err
	}
	pageAddr := addr &^ (PageSize - 1)
	if pg, ok := seg.translations[pageAddr]; ok && !pg.onFree && pg.Obj == seg.Obj {
		// Valid translation: no fault. (A recycled page drops it.)
		as.SoftTouches++
		pg.Touch()
		return pg, nil
	}
	as.Faults++
	off := seg.Off + (pageAddr - seg.Base)
	pg, err := seg.Pager.Fault(p, seg.Obj, off)
	if err != nil {
		return nil, err
	}
	seg.translations[pageAddr] = pg
	return pg, nil
}

// InvalidateTranslations drops all MMU translations of a segment (e.g.
// after an unmap elsewhere or a truncation).
func (s *Seg) InvalidateTranslations() {
	s.translations = make(map[int64]*Page)
}
