// Package vm implements the SunOS unified virtual-memory page cache the
// paper's file system runs against: pages named by <object, offset>, a
// hashed lookup with reclaim from the free list, and a two-handed-clock
// pageout daemon with lotsfree/minfree watermarks. The paper's
// "unanticipated problems" — page thrashing on large sequential I/O and
// the write fairness problem — are emergent behaviours of this component,
// which is why it is modeled in full rather than stubbed.
package vm

import (
	"fmt"
	"sort"

	"ufsclust/internal/cpu"
	"ufsclust/internal/sim"
	"ufsclust/internal/telemetry"
)

// PageSize is the system page size. Per the paper's footnote 3 the file
// system block size is assumed >= the page size; we set them equal (8 KB)
// as the measured SunOS 4.1 configuration effectively did for I/O.
const PageSize = 8192

// Object is the backing object a page belongs to (a vnode). The VM
// system writes dirty pages back through it. Implementations must be
// comparable (pointer identity) since pages are named <Object, offset>.
type Object interface {
	// PageOut writes pg (and possibly neighbouring dirty pages) to
	// backing store from the pageout daemon's context. The callee owns
	// clearing the dirty bit and unbusying the page when the write
	// completes.
	PageOut(p *sim.Proc, pg *Page)
}

// Page is one physical page frame.
type Page struct {
	Obj Object
	Off int64 // byte offset within the object

	Data []byte

	dirty  bool
	busy   bool // locked for I/O or fault handling
	ref    bool // reference bit (clock hand 1 clears, hand 2 tests)
	onFree bool
	ra     bool // brought in by read-ahead, not yet demanded

	wanted sim.WaitQ
}

// Dirty reports whether the page holds unwritten modifications.
func (pg *Page) Dirty() bool { return pg.dirty }

// SetDirty marks the page modified.
func (pg *Page) SetDirty() { pg.dirty = true }

// ClearDirty marks the page clean (its backing store matches).
func (pg *Page) ClearDirty() { pg.dirty = false }

// Busy reports whether the page is locked for I/O.
func (pg *Page) Busy() bool { return pg.busy }

// SetBusy locks the page. The caller must know it is unlocked.
func (pg *Page) SetBusy() {
	if pg.busy {
		panic("vm: page already busy") // simlint:invariant -- page lifecycle bug, not caller input
	}
	pg.busy = true
}

// Unbusy unlocks the page and wakes any waiters.
func (pg *Page) Unbusy() {
	pg.busy = false
	pg.wanted.WakeAll()
}

// WaitUnbusy blocks the calling process until the page is not busy.
func (pg *Page) WaitUnbusy(p *sim.Proc) {
	for pg.busy {
		p.Block(&pg.wanted)
	}
}

// Touch sets the reference bit, protecting the page from the next clock
// sweep.
func (pg *Page) Touch() { pg.ref = true }

// MarkRA tags the page as brought in by read-ahead. The tag survives
// until the first demand access claims it (TakeRA) or the page is
// recycled unreferenced, which counts as prefetch waste.
func (pg *Page) MarkRA() { pg.ra = true }

// TakeRA consumes the read-ahead tag: it reports whether the page was a
// not-yet-demanded prefetch, and clears the tag so each prefetched page
// is counted as a hit at most once.
func (pg *Page) TakeRA() bool {
	was := pg.ra
	pg.ra = false
	return was
}

type key struct {
	obj Object
	off int64
}

// Stats counts VM events.
type Stats struct {
	Lookups    int64
	Hits       int64 // found active
	Reclaims   int64 // found on the free list, rescued
	Misses     int64
	Allocs     int64
	Steals     int64 // free-list pages recycled away from an identity
	Pageouts   int64 // dirty pages written by the daemon
	FreeBehind int64 // pages freed by the free-behind path
	Scans      int64 // pages examined by the clock
	DaemonRuns int64
	MemWaits   int64 // allocations that had to sleep for memory
	RAWaste    int64 // read-ahead pages recycled without a demand access
}

// Config sizes the VM system.
type Config struct {
	MemBytes   int64 // physical memory; default 8 MB (the paper's machine)
	Lotsfree   int   // pageout wakeup threshold, pages; default mem/16
	Minfree    int   // desperation threshold, pages; default lotsfree/2
	ScanInstr  int64 // CPU instructions per page examined by the clock
	Handspread int   // pages between the clock hands; default mem/4
}

// DefaultConfig matches the paper's 8 MB SparcStation.
func DefaultConfig() Config {
	return Config{MemBytes: 8 << 20}
}

// VM is the virtual memory system.
type VM struct {
	Sim *sim.Sim
	CPU *cpu.Model // may be nil

	pages     []*Page
	hash      map[key]*Page
	free      []*Page // FIFO free list; index 0 is next to be reused
	lotsfree  int
	minfree   int
	spread    int
	scanInstr int64

	hand1, hand2 int

	daemonWake sim.WaitQ
	memWait    sim.WaitQ
	daemonBusy bool

	Stats Stats

	// Telemetry; nil (and nil-safe) until AttachTelemetry.
	bus *telemetry.Bus
}

// AttachTelemetry registers the VM counters and the free-memory gauge
// and connects the pageout daemon to the event bus.
func (v *VM) AttachTelemetry(tel *telemetry.Telemetry) {
	v.bus = tel.Bus
	r := tel.Reg
	r.Counter("vm.lookups", func() int64 { return v.Stats.Lookups })
	r.Counter("vm.hits", func() int64 { return v.Stats.Hits })
	r.Counter("vm.reclaims", func() int64 { return v.Stats.Reclaims })
	r.Counter("vm.misses", func() int64 { return v.Stats.Misses })
	r.Counter("vm.allocs", func() int64 { return v.Stats.Allocs })
	r.Counter("vm.steals", func() int64 { return v.Stats.Steals })
	r.Counter("vm.pageouts", func() int64 { return v.Stats.Pageouts })
	r.Counter("vm.free_behind", func() int64 { return v.Stats.FreeBehind })
	r.Counter("vm.scans", func() int64 { return v.Stats.Scans })
	r.Counter("vm.daemon_runs", func() int64 { return v.Stats.DaemonRuns })
	r.Counter("vm.mem_waits", func() int64 { return v.Stats.MemWaits })
	r.Counter("vm.ra_waste", func() int64 { return v.Stats.RAWaste })
	r.Gauge("vm.free_pages", func() int64 { return int64(len(v.free)) })
}

// New builds the page pool and starts the pageout daemon.
func New(s *sim.Sim, cpuModel *cpu.Model, cfg Config) *VM {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 8 << 20
	}
	n := int(cfg.MemBytes / PageSize)
	if n < 8 {
		panic(fmt.Sprintf("vm: %d bytes is too little memory", cfg.MemBytes)) // simlint:invariant -- harness configuration assertion at construction
	}
	if cfg.Lotsfree == 0 {
		cfg.Lotsfree = n / 16
	}
	if cfg.Minfree == 0 {
		cfg.Minfree = cfg.Lotsfree / 2
	}
	if cfg.ScanInstr == 0 {
		cfg.ScanInstr = 120
	}
	if cfg.Handspread == 0 {
		cfg.Handspread = n / 4
	}
	v := &VM{
		Sim:       s,
		CPU:       cpuModel,
		hash:      make(map[key]*Page),
		lotsfree:  cfg.Lotsfree,
		minfree:   cfg.Minfree,
		spread:    cfg.Handspread,
		scanInstr: cfg.ScanInstr,
	}
	v.daemonWake.Name = "pageout"
	v.memWait.Name = "memwait"
	v.pages = make([]*Page, n)
	v.free = make([]*Page, 0, n)
	for i := range v.pages {
		pg := &Page{Data: make([]byte, PageSize), onFree: true}
		v.pages[i] = pg
		v.free = append(v.free, pg)
	}
	// The front hand leads the back hand by handspread pages, so a page
	// has that long to be re-referenced between bit-clear and check.
	v.hand1 = v.spread % n
	v.hand2 = 0
	s.SpawnDaemon("pageout", v.pageoutDaemon)
	return v
}

// TotalPages returns the physical page count.
func (v *VM) TotalPages() int { return len(v.pages) }

// FreeMem returns the current free page count.
func (v *VM) FreeMem() int { return len(v.free) }

// Lotsfree returns the pageout wakeup threshold in pages.
func (v *VM) Lotsfree() int { return v.lotsfree }

// MemoryLow reports whether free memory is near the pageout threshold —
// the paper's trigger condition for free-behind.
func (v *VM) MemoryLow() bool { return len(v.free) <= v.lotsfree*2 }

// Lookup finds the page <obj, off> in the cache. A page found on the
// free list is reclaimed (its contents are still valid). The returned
// page may be busy; callers that need its data must WaitUnbusy.
func (v *VM) Lookup(obj Object, off int64) (*Page, bool) {
	v.Stats.Lookups++
	pg, ok := v.hash[key{obj, off}]
	if !ok {
		v.Stats.Misses++
		return nil, false
	}
	if pg.onFree {
		v.removeFree(pg)
		v.Stats.Reclaims++
	} else {
		v.Stats.Hits++
	}
	pg.ref = true
	return pg, true
}

// Cached reports whether the page <obj, off> is present in the cache
// (active or resting on the free list) without perturbing any state: no
// stats, no reclaim, no reference bit. startRead uses it to size its
// read-ahead accounting before issuing.
func (v *VM) Cached(obj Object, off int64) bool {
	_, ok := v.hash[key{obj, off}]
	return ok
}

// Alloc takes a free page, names it <obj, off>, and returns it busy (the
// caller is expected to fill it). It blocks while no memory is free,
// waking the pageout daemon. The page must not already be cached.
func (v *VM) Alloc(p *sim.Proc, obj Object, off int64) *Page {
	if _, ok := v.hash[key{obj, off}]; ok {
		panic("vm: Alloc of cached page") // simlint:invariant -- page lifecycle bug, not caller input
	}
	v.Stats.Allocs++
	if len(v.free) < v.lotsfree {
		v.KickDaemon()
	}
	waited := false
	for len(v.free) == 0 {
		if !waited {
			v.Stats.MemWaits++
			waited = true
		}
		v.KickDaemon()
		p.Block(&v.memWait)
	}
	pg := v.free[0]
	copy(v.free, v.free[1:])
	v.free = v.free[:len(v.free)-1]
	pg.onFree = false
	if pg.Obj != nil {
		delete(v.hash, key{pg.Obj, pg.Off})
		v.Stats.Steals++
	}
	if pg.ra {
		// A read-ahead page recycled before any demand access: the
		// prefetch that brought it in was pure waste.
		v.Stats.RAWaste++
		pg.ra = false
	}
	pg.Obj, pg.Off = obj, off
	pg.dirty, pg.ref = false, true
	pg.busy = true
	v.hash[key{obj, off}] = pg
	return pg
}

// Free returns a page to the free list, keeping its identity so it can
// be reclaimed until recycled. If front is true the page goes to the
// head of the list (it will be reused first) — the free-behind path uses
// this so sequential I/O recycles its own pages.
func (v *VM) Free(pg *Page, front bool) {
	if pg.busy {
		panic("vm: freeing busy page") // simlint:invariant -- page lifecycle bug, not caller input
	}
	if pg.dirty {
		panic("vm: freeing dirty page") // simlint:invariant -- page lifecycle bug, not caller input
	}
	if pg.onFree {
		return
	}
	pg.onFree = true
	if front {
		v.free = append(v.free, nil)
		copy(v.free[1:], v.free)
		v.free[0] = pg
		v.Stats.FreeBehind++
	} else {
		v.free = append(v.free, pg)
	}
	v.memWait.WakeAll()
}

// Destroy removes a page's identity and frees it to the front of the
// list; used by truncate/unlink.
func (v *VM) Destroy(pg *Page) {
	if pg.busy {
		panic("vm: destroying busy page") // simlint:invariant -- page lifecycle bug, not caller input
	}
	if pg.Obj != nil {
		delete(v.hash, key{pg.Obj, pg.Off})
		pg.Obj = nil
	}
	if pg.ra {
		v.Stats.RAWaste++
		pg.ra = false
	}
	pg.dirty = false
	if !pg.onFree {
		pg.onFree = true
		v.free = append(v.free, nil)
		copy(v.free[1:], v.free)
		v.free[0] = pg
	}
	v.memWait.WakeAll()
}

// ObjectPages returns the cached pages of obj ordered by file offset,
// including pages resting on the free list. The order matters: callers
// (Purge, Truncate) destroy the pages in sequence, which reshapes the
// free list, so a map-order walk here would leak host randomness into
// later allocations.
func (v *VM) ObjectPages(obj Object) []*Page {
	var out []*Page
	for k, pg := range v.hash {
		if k.obj == obj {
			out = append(out, pg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

func (v *VM) removeFree(pg *Page) {
	for i, f := range v.free {
		if f == pg {
			copy(v.free[i:], v.free[i+1:])
			v.free = v.free[:len(v.free)-1]
			pg.onFree = false
			return
		}
	}
	panic("vm: page marked free but not on list") // simlint:invariant -- free-list/flag consistency assertion
}

// KickDaemon wakes the pageout daemon.
func (v *VM) KickDaemon() { v.daemonWake.WakeAll() }

// pageoutDaemon is the classic two-handed clock: the front hand clears
// reference bits, the back hand (handspread pages behind) frees pages
// whose bit is still clear, writing them first if dirty.
func (v *VM) pageoutDaemon(p *sim.Proc) {
	for {
		for len(v.free) >= v.lotsfree {
			p.Block(&v.daemonWake)
		}
		v.Stats.DaemonRuns++
		target := v.lotsfree
		// Sweep until the target is met, but never more than two full
		// revolutions per run; if everything is busy or rereferenced we
		// must let I/O complete rather than spin.
		maxScan := 2 * len(v.pages)
		scanned := 0
		freed := 0
		for len(v.free) < target && scanned < maxScan {
			front := v.pages[v.hand1]
			v.hand1 = (v.hand1 + 1) % len(v.pages)
			if !front.onFree && !front.busy {
				front.ref = false
			}
			back := v.pages[v.hand2]
			v.hand2 = (v.hand2 + 1) % len(v.pages)
			scanned++
			v.Stats.Scans++
			if v.CPU != nil {
				v.CPU.Use(p, cpu.PageDaemon, v.scanInstr)
			} else {
				p.Sleep(10 * sim.Microsecond)
			}
			if back.onFree || back.busy || back.ref || back.Obj == nil {
				continue
			}
			if back.dirty {
				// Hand the page to its object for write-back; the
				// object unbusies and cleans it on completion, after
				// which a later sweep can free it.
				back.SetBusy()
				v.Stats.Pageouts++
				back.Obj.PageOut(p, back)
				continue
			}
			v.Free(back, false)
			freed++
		}
		v.bus.Emit(telemetry.Event{
			T:      p.Now(),
			Kind:   telemetry.EvPageoutScan,
			Depth:  int64(scanned),
			Blocks: int64(freed),
		})
		if len(v.free) < target {
			// Everything in sight is busy; wait for completions.
			p.Sleep(4 * sim.Millisecond)
		}
	}
}
