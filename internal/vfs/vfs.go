// Package vfs defines the vnode/vfs interfaces of [Kleiman]: the
// contract between the kernel and a file system implementation. The
// paper's point about these interfaces is architectural — "The UFS
// interfaces (ufs_getpage, ufs_putpage) are general enough that no
// changes were needed for clustering" (unlike S5FS's bread/bwrite,
// which Peacock had to extend) — so the engine in internal/core is
// required, by compile-time assertion, to satisfy them unchanged in
// both its legacy and clustered configurations.
package vfs

import (
	"ufsclust/internal/sim"
	"ufsclust/internal/vec"
	"ufsclust/internal/vm"
)

// File is an open vnode as the system-call layer sees it: the rdwr
// entry points.
type File interface {
	// Read copies file data into buf from offset off (the read(2)
	// path: map, fault, copy, unmap per block).
	Read(p *sim.Proc, off int64, buf []byte) (int, error)
	// Write copies buf into the file at off, allocating backing store
	// as needed and handing dirty pages to PutPage on unmap.
	Write(p *sim.Proc, off int64, data []byte) (int, error)
	// Readv reads a vector of extents into buf, laid out element after
	// element (the readv(2) iovec list flattened); the implementation
	// may reorder and coalesce the transfers. A single-element vector
	// must behave exactly like Read.
	Readv(p *sim.Proc, v []vec.Ext, buf []byte) (int, error)
	// Writev writes a vector of extents from data (same layout);
	// overlapping elements apply in vector order. A single-element
	// vector must behave exactly like Write.
	Writev(p *sim.Proc, v []vec.Ext, data []byte) (int, error)
	// Size returns the current file length.
	Size() int64
	// Fsync flushes delayed writes, waits for them to reach the platter,
	// and writes the file's metadata synchronously; a nil return means
	// everything written before the call is durable.
	Fsync(p *sim.Proc) error
	// Truncate resizes the file.
	Truncate(p *sim.Proc, size int64) error
}

// Pager is the page-level interface a file system exposes to the VM
// system: getpage/putpage. GetPage returns the page holding offset off;
// PutPage accepts a dirty page back. Both may perform clustering
// invisibly — that is the paper's thesis.
type Pager interface {
	GetPage(p *sim.Proc, vn Object, off int64) (*vm.Page, error)
	PutPage(p *sim.Proc, vn Object, off int64)
}

// Object identifies a file for page naming; it must be the same object
// the VM system writes back through.
type Object = vm.Object

// FS is the per-file-system-type factory: path operations returning
// open files.
type FS interface {
	Open(p *sim.Proc, path string) (File, error)
	Create(p *sim.Proc, path string) (File, error)
	Remove(p *sim.Proc, path string) error
}
