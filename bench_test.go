// Benchmarks regenerating every table and figure in the paper's
// evaluation, plus the ablations its design discussion implies. Each
// benchmark measures the host cost of the simulation (the usual Go
// numbers) and reports the paper's own metric — virtual-time transfer
// rates, CPU seconds, extent sizes — via b.ReportMetric, so
// `go test -bench=.` prints the reproduction next to the benchmark.
package ufsclust_test

import (
	"fmt"
	"testing"

	"ufsclust"

	"ufsclust/internal/alloclab"
	"ufsclust/internal/core"
	"ufsclust/internal/cpubench"
	"ufsclust/internal/disk"
	"ufsclust/internal/driver"
	"ufsclust/internal/extfs"
	"ufsclust/internal/iobench"
	"ufsclust/internal/musbus"
	"ufsclust/internal/raw"
	"ufsclust/internal/runner"
	"ufsclust/internal/sim"
	"ufsclust/internal/trace"
	"ufsclust/internal/ufs"
)

// benchParams keeps host time manageable; cmd/iobench runs the full
// paper-sized configuration.
func benchParams() iobench.Params {
	return iobench.Params{FileMB: 8, RandomOps: 256}
}

// --- Figures 3, 6, 7: access patterns ------------------------------------

func BenchmarkFig03LegacyReadahead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := trace.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06ClusterRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := trace.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07ClusterWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := trace.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 4, 5: allocator placement ------------------------------------

func benchPlacement(b *testing.B, rotdelay int) (gapBlocks int32) {
	for i := 0; i < b.N; i++ {
		m, err := ufsclust.NewMachine(ufsclust.Options{Mkfs: ufs.MkfsOpts{Rotdelay: rotdelay, Maxcontig: 7}})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		gapBlocks = m.FS.SB.GapBlocks()
		err = m.Run(func(p *sim.Proc) {
			ip, err := m.FS.Create(p, "/f")
			if err != nil {
				b.Error(err)
				return
			}
			for lbn := int64(0); lbn < 64; lbn++ {
				if _, err := m.FS.BmapAlloc(p, ip, lbn, int(m.FS.SB.Bsize)); err != nil {
					b.Error(err)
					return
				}
				ip.D.Size = (lbn + 1) * int64(m.FS.SB.Bsize)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return gapBlocks
}

func BenchmarkFig04InterleavedPlacement(b *testing.B) {
	gap := benchPlacement(b, 4)
	b.ReportMetric(float64(gap), "gap-blocks")
}

func BenchmarkFig05ContiguousPlacement(b *testing.B) {
	gap := benchPlacement(b, 0)
	b.ReportMetric(float64(gap), "gap-blocks")
}

// --- Figures 9/10/11: IObench ---------------------------------------------

func BenchmarkFig10IObench(b *testing.B) {
	for _, rc := range ufsclust.Runs() {
		for _, kind := range iobench.Kinds() {
			rc, kind := rc, kind
			b.Run(fmt.Sprintf("%s/%s", rc.Name, kind), func(b *testing.B) {
				var res iobench.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = iobench.Run(rc, kind, benchParams())
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.RateKBs(), "virtKB/s")
			})
		}
	}
}

func BenchmarkFig11Ratios(b *testing.B) {
	var tab *iobench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = iobench.RunAll([]ufsclust.RunConfig{ufsclust.RunA(), ufsclust.RunD()}, iobench.Kinds(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range iobench.Kinds() {
		b.ReportMetric(tab.Ratio("A", "D", k), "A/D-"+string(k))
	}
}

// BenchmarkIObenchMatrixParallel runs the full A–D × kinds matrix
// through the parallel orchestrator (one worker per host CPU). The
// per-cell results are identical to the serial path — each cell is its
// own sealed simulation — so this measures pure host-side speedup on
// the repo's heaviest workload.
func BenchmarkIObenchMatrixParallel(b *testing.B) {
	var tab *iobench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = iobench.RunAllParallel(ufsclust.Runs(), iobench.Kinds(), benchParams(), 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range iobench.Kinds() {
		b.ReportMetric(tab.Ratio("A", "D", k), "A/D-"+string(k))
	}
}

// --- Figure 12: CPU comparison ---------------------------------------------

func BenchmarkFig12CPUCompare(b *testing.B) {
	var newRes, oldRes cpubench.Result
	for i := 0; i < b.N; i++ {
		var err error
		newRes, oldRes, err = cpubench.Figure12(16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(newRes.CPUTime.Seconds(), "new-cpu-s")
	b.ReportMetric(oldRes.CPUTime.Seconds(), "old-cpu-s")
	b.ReportMetric(float64(newRes.CPUTime)/float64(oldRes.CPUTime), "new/old")
}

// BenchmarkIntroHalfCPU reproduces the sizing claim that motivated the
// work: half a 12 MIPS CPU for half of a ~1.5 MB/s disk.
func BenchmarkIntroHalfCPU(b *testing.B) {
	var res cpubench.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = cpubench.ReadWithCopy(ufsclust.RunD(), 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RateKBs, "virtKB/s")
	b.ReportMetric(res.CPUShare*100, "cpu%")
}

// --- In-text: allocator contiguity -----------------------------------------

func BenchmarkAllocatorExtentsBestCase(b *testing.B) {
	var avg int64
	for i := 0; i < b.N; i++ {
		m, err := ufsclust.NewMachineForRun(ufsclust.RunA())
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		err = m.Run(func(p *sim.Proc) {
			rep, err := alloclab.BestCase(p, m.FS, 13<<20)
			if err != nil {
				b.Error(err)
				return
			}
			avg = rep.AvgExtent()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(avg)/1024, "avg-extent-KB")
}

func BenchmarkAllocatorExtentsWorstCase(b *testing.B) {
	var avg int64
	for i := 0; i < b.N; i++ {
		m, err := ufsclust.NewMachineForRun(ufsclust.RunA())
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		err = m.Run(func(p *sim.Proc) {
			rep, err := alloclab.WorstCase(p, m.FS, 16<<20,
				alloclab.AgeOpts{TargetFull: 0.85, Churn: 2})
			if err != nil {
				b.Error(err)
				return
			}
			avg = rep.AvgExtent()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(avg)/1024, "avg-extent-KB")
}

// --- In-text: MusBus ---------------------------------------------------------

func BenchmarkMusBus(b *testing.B) {
	for _, rc := range []ufsclust.RunConfig{ufsclust.RunA(), ufsclust.RunD()} {
		rc := rc
		b.Run(rc.Name, func(b *testing.B) {
			var res musbus.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = musbus.Run(rc, musbus.Params{Users: 4, Duration: 60 * sim.Second})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Throughput(), "iter/virtmin")
		})
	}
}

// --- In-text: the write-limit sizing argument -------------------------------

// BenchmarkWriteLimitSweep reproduces the paper's sizing discussion: a
// process alternates writes between the beginning and end of a file.
// Too small a limit kills the elevator's chance to sort; 240 KB keeps
// most of the unlimited rate.
func BenchmarkWriteLimitSweep(b *testing.B) {
	limitsKB := []int{8, 56, 240, 0}
	var rates []float64
	for i := 0; i < b.N; i++ {
		var err error
		// The sweep points are independent machines, so they run through
		// the parallel runner; the rates come back in point order.
		rates, err = runner.Map(len(limitsKB), runner.Options{}, func(job int) (float64, error) {
			return writeLimitRate(int64(limitsKB[job]) << 10)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for j, limitKB := range limitsKB {
		name := fmt.Sprintf("limit%dKB-virtKB/s", limitKB)
		if limitKB == 0 {
			name = "unlimited-virtKB/s"
		}
		b.ReportMetric(rates[j], name)
	}
}

// writeLimitRate measures the fairness-stress rate under one write
// limit. It is runner-safe: its machine is private and it reports
// failures as errors rather than through a *testing.B.
func writeLimitRate(limit int64) (float64, error) {
	o := ufsclust.RunA().Options()
	o.Mount.WriteLimit = limit
	m, err := ufsclust.NewMachine(o)
	if err != nil {
		return 0, err
	}
	defer m.Close()
	const n = 256
	var elapsed sim.Time
	var runErr error
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/sweep")
		if err != nil {
			runErr = err
			return
		}
		f.Write(p, 0, make([]byte, 8<<20))
		f.Fsync(p)
		buf := make([]byte, 8192)
		t0 := p.Now()
		for j := 0; j < n; j++ {
			off := int64(j/2) * 8192
			if j%2 == 1 {
				off = 8<<20 - int64(j/2+1)*8192
			}
			f.Write(p, off, buf)
		}
		f.Fsync(p)
		elapsed = p.Now() - t0
	})
	if err != nil {
		return 0, err
	}
	if runErr != nil {
		return 0, runErr
	}
	return float64(n*8192) / 1024 / elapsed.Seconds(), nil
}

// --- Rejected alternative: tuning only (track buffer) ------------------------

// BenchmarkTrackBufferTradeoff is the "file system tuning" alternative:
// rotdelay 0 with the legacy block-at-a-time engine. Reads improve
// (track buffer), but writes "suffer horribly" — write-through means a
// full rotation per block.
func BenchmarkTrackBufferTradeoff(b *testing.B) {
	measure := func(b *testing.B, write bool) float64 {
		var rate float64
		for i := 0; i < b.N; i++ {
			o := ufsclust.Options{
				Mkfs:   ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 1},
				Engine: core.Config{Clustered: false, ReadAhead: true},
			}
			m, err := ufsclust.NewMachine(o)
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			const size = 4 << 20
			var elapsed sim.Time
			err = m.Run(func(p *sim.Proc) {
				f, err := m.Engine.Create(p, "/tuned")
				if err != nil {
					b.Error(err)
					return
				}
				chunk := make([]byte, 8192)
				if !write {
					for off := int64(0); off < size; off += 8192 {
						f.Write(p, off, chunk)
					}
					f.Purge(p)
				}
				t0 := p.Now()
				for off := int64(0); off < size; off += 8192 {
					if write {
						f.Write(p, off, chunk)
					} else {
						f.Read(p, off, chunk)
					}
				}
				f.Fsync(p)
				elapsed = p.Now() - t0
			})
			if err != nil {
				b.Fatal(err)
			}
			rate = float64(size) / 1024 / elapsed.Seconds()
		}
		return rate
	}
	b.Run("read", func(b *testing.B) {
		b.ReportMetric(measure(b, false), "virtKB/s")
	})
	b.Run("write", func(b *testing.B) {
		b.ReportMetric(measure(b, true), "virtKB/s")
	})
}

// --- Rejected alternative: driver clustering ---------------------------------

// BenchmarkDriverClustering shows the paper's objection: coalescing in
// the driver helps asynchronous writes but cannot help synchronous
// reads (at most two requests are ever queued), and the file system is
// still traversed per block.
func BenchmarkDriverClustering(b *testing.B) {
	measure := func(b *testing.B, write bool) float64 {
		var rate float64
		for i := 0; i < b.N; i++ {
			dc := driver.DefaultConfig()
			dc.Coalesce = true
			o := ufsclust.Options{
				Mkfs:   ufs.MkfsOpts{Rotdelay: 0, Maxcontig: 1},
				Driver: &dc,
				Engine: core.Config{Clustered: false, ReadAhead: true},
			}
			m, err := ufsclust.NewMachine(o)
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			const size = 4 << 20
			var elapsed sim.Time
			err = m.Run(func(p *sim.Proc) {
				f, err := m.Engine.Create(p, "/drvclu")
				if err != nil {
					b.Error(err)
					return
				}
				chunk := make([]byte, 8192)
				if !write {
					for off := int64(0); off < size; off += 8192 {
						f.Write(p, off, chunk)
					}
					f.Purge(p)
				}
				t0 := p.Now()
				for off := int64(0); off < size; off += 8192 {
					if write {
						f.Write(p, off, chunk)
					} else {
						f.Read(p, off, chunk)
					}
				}
				f.Fsync(p)
				elapsed = p.Now() - t0
			})
			if err != nil {
				b.Fatal(err)
			}
			rate = float64(size) / 1024 / elapsed.Seconds()
		}
		return rate
	}
	b.Run("read", func(b *testing.B) {
		b.ReportMetric(measure(b, false), "virtKB/s")
	})
	b.Run("write", func(b *testing.B) {
		b.ReportMetric(measure(b, true), "virtKB/s")
	})
}

// --- Ablation: extents vs clustering ------------------------------------------

// BenchmarkExtentVsCluster compares a true extent-based file system
// (user-chosen 120 KB extents, preallocated) with clustered UFS on the
// same sequential workload: the paper's thesis is that the two are
// comparable, without the format change.
func BenchmarkExtentVsCluster(b *testing.B) {
	const size = 8 << 20
	b.Run("extfs", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			s := sim.New(1)
			dp := disk.DefaultParams()
			d := disk.New(s, "d0", dp)
			if err := extfs.Mkfs(d); err != nil {
				b.Fatal(err)
			}
			dc := driver.DefaultConfig()
			dc.MaxPhys = 128 << 10
			dr := driver.New(s, d, nil, dc)
			fs, err := extfs.Mount(s, nil, dr)
			if err != nil {
				b.Fatal(err)
			}
			var elapsed sim.Time
			s.Spawn("bench", func(p *sim.Proc) {
				f, err := fs.Create("seq", 128) // 1MB extents (12 slots must cover 8MB)
				if err != nil {
					b.Error(err)
					return
				}
				if err := f.Preallocate(size); err != nil {
					b.Error(err)
					return
				}
				t0 := p.Now()
				buf := make([]byte, 120<<10)
				for off := int64(0); off < size; off += int64(len(buf)) {
					n := int64(len(buf))
					if off+n > size {
						n = size - off
					}
					f.Write(p, off, buf[:n])
				}
				elapsed = p.Now() - t0
			})
			if err := s.Run(); err != nil {
				b.Fatal(err)
			}
			rate = float64(size) / 1024 / elapsed.Seconds()
		}
		b.ReportMetric(rate, "virtKB/s")
	})
	b.Run("clustered-ufs", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			m, err := ufsclust.NewMachineForRun(ufsclust.RunA())
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			var elapsed sim.Time
			err = m.Run(func(p *sim.Proc) {
				f, err := m.Engine.Create(p, "/seq")
				if err != nil {
					b.Error(err)
					return
				}
				t0 := p.Now()
				buf := make([]byte, 120<<10)
				for off := int64(0); off < size; off += int64(len(buf)) {
					n := int64(len(buf))
					if off+n > size {
						n = size - off
					}
					f.Write(p, off, buf[:n])
				}
				f.Fsync(p)
				elapsed = p.Now() - t0
			})
			if err != nil {
				b.Fatal(err)
			}
			rate = float64(size) / 1024 / elapsed.Seconds()
		}
		b.ReportMetric(rate, "virtKB/s")
	})
}

// --- Baseline: raw disk --------------------------------------------------------

// BenchmarkRawDisk is the "act of desperation": the deliverable
// bandwidth with no file system at all, an upper bound for everything
// above.
func BenchmarkRawDisk(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		d := disk.New(s, "d0", disk.DefaultParams())
		dc := driver.DefaultConfig()
		dc.MaxPhys = 128 << 10
		dev := raw.Open(driver.New(s, d, nil, dc), nil)
		const size = 8 << 20
		var elapsed sim.Time
		s.Spawn("bench", func(p *sim.Proc) {
			buf := make([]byte, 128<<10)
			t0 := p.Now()
			for off := int64(0); off < size; off += int64(len(buf)) {
				dev.ReadAt(p, off, buf)
			}
			elapsed = p.Now() - t0
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
		rate = float64(size) / 1024 / elapsed.Seconds()
	}
	b.ReportMetric(rate, "virtKB/s")
}

// --- Simulator micro-benchmarks (host performance) ----------------------------

func BenchmarkSimContextSwitch(b *testing.B) {
	s := sim.New(1)
	s.SpawnDaemon("ticker", func(p *sim.Proc) {
		for {
			p.Sleep(sim.Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.RunUntil(sim.Time(b.N) * sim.Microsecond); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkDiskServiceLoop(b *testing.B) {
	s := sim.New(1)
	d := disk.New(s, "d0", disk.DefaultParams())
	buf := make([]byte, 8192)
	n := 0
	s.SpawnDaemon("io", func(p *sim.Proc) {
		for {
			d.IO(p, &disk.Request{Sector: int64(n%1000) * 16, Count: 16, Data: buf})
			n++
		}
	})
	b.ResetTimer()
	for n < b.N {
		if err := s.RunUntil(s.Now() + sim.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Further Work features (paper's final section), as ablations --------------

// BenchmarkFwBmapCache measures the "Bmap cache" idea: "A small cache in
// the inode could reduce the cost of bmap substantially."
func BenchmarkFwBmapCache(b *testing.B) {
	for _, cache := range []bool{false, true} {
		cache := cache
		name := "off"
		if cache {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var cpuS float64
			for i := 0; i < b.N; i++ {
				o := ufsclust.RunA().Options()
				o.Mount.BmapCache = cache
				m, err := ufsclust.NewMachine(o)
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				err = m.Run(func(p *sim.Proc) {
					f, err := m.Engine.Create(p, "/big")
					if err != nil {
						b.Error(err)
						return
					}
					f.Write(p, 0, make([]byte, 4<<20))
					f.Purge(p)
					pre := m.Snapshot()
					buf := make([]byte, 8192)
					for off := int64(0); off < 4<<20; off += 8192 {
						f.Read(p, off, buf)
					}
					cpuS = sim.Time(m.Snapshot().Delta(pre).Get("cpu.system_ns")).Seconds()
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cpuS*1000, "virt-cpu-ms")
		})
	}
}

// BenchmarkFwSkipBmapOnHit measures UFS_HOLE: skipping the defensive
// bmap when the page is cached and the file has no holes.
func BenchmarkFwSkipBmapOnHit(b *testing.B) {
	for _, skip := range []bool{false, true} {
		skip := skip
		name := "off"
		if skip {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var cpuS float64
			for i := 0; i < b.N; i++ {
				o := ufsclust.RunA().Options()
				o.Engine.SkipBmapOnHit = skip
				m, err := ufsclust.NewMachine(o)
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				err = m.Run(func(p *sim.Proc) {
					f, err := m.Engine.Create(p, "/warm")
					if err != nil {
						b.Error(err)
						return
					}
					f.Write(p, 0, make([]byte, 2<<20))
					f.Fsync(p)
					// Warm: everything cached.
					buf := make([]byte, 8192)
					for off := int64(0); off < 2<<20; off += 8192 {
						f.Read(p, off, buf)
					}
					pre := m.Snapshot()
					// Random cached re-reads: the bmap-skip case.
					for j := 0; j < 512; j++ {
						off := m.Sim.Rand.Int63n(2<<20/8192) * 8192
						f.Read(p, off, buf)
					}
					cpuS = sim.Time(m.Snapshot().Delta(pre).Get("cpu.system_ns")).Seconds()
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cpuS*1000, "virt-cpu-ms")
		})
	}
}

// BenchmarkFwRandomClustering measures the request-size hint on random
// 56KB reads ("random reads of 20KB segments ... will not receive the
// full benefits of clustering" without it).
func BenchmarkFwRandomClustering(b *testing.B) {
	for _, hint := range []bool{false, true} {
		hint := hint
		name := "off"
		if hint {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				o := ufsclust.RunA().Options()
				o.Engine.RandomClustering = hint
				m, err := ufsclust.NewMachine(o)
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				const size = 8 << 20
				var elapsed sim.Time
				var moved int64
				err = m.Run(func(p *sim.Proc) {
					f, err := m.Engine.Create(p, "/seg")
					if err != nil {
						b.Error(err)
						return
					}
					chunk := make([]byte, 112<<10)
					for off := int64(0); off < size; off += int64(len(chunk)) {
						f.Write(p, off, chunk)
					}
					f.Purge(p)
					t0 := p.Now()
					segs := size / int64(len(chunk))
					for j := 0; j < 64; j++ {
						off := m.Sim.Rand.Int63n(segs) * int64(len(chunk))
						f.Read(p, off, chunk)
						moved += int64(len(chunk))
					}
					elapsed = p.Now() - t0
				})
				if err != nil {
					b.Fatal(err)
				}
				rate = float64(moved) / 1024 / elapsed.Seconds()
			}
			b.ReportMetric(rate, "virtKB/s")
		})
	}
}

// BenchmarkFwOrderedRmStar measures B_ORDER: "The performance of
// commands like rm * would improve substantially."
func BenchmarkFwOrderedRmStar(b *testing.B) {
	for _, ordered := range []bool{false, true} {
		ordered := ordered
		name := "sync"
		if ordered {
			name = "b-order"
		}
		b.Run(name, func(b *testing.B) {
			var elapsed sim.Time
			for i := 0; i < b.N; i++ {
				o := ufsclust.RunA().Options()
				o.Mount.OrderedWrites = ordered
				m, err := ufsclust.NewMachine(o)
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				const nfiles = 64
				err = m.Run(func(p *sim.Proc) {
					for j := 0; j < nfiles; j++ {
						f, err := m.Engine.Create(p, fmt.Sprintf("/f%d", j))
						if err != nil {
							b.Error(err)
							return
						}
						f.Write(p, 0, make([]byte, 8192))
						f.Fsync(p)
					}
					t0 := p.Now()
					for j := 0; j < nfiles; j++ {
						if err := m.Engine.Remove(p, fmt.Sprintf("/f%d", j)); err != nil {
							b.Error(err)
							return
						}
					}
					elapsed = p.Now() - t0
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(elapsed.Seconds()*1000, "virt-ms")
		})
	}
}

// --- Ablation: the rotdelay tuning space ---------------------------------------

// BenchmarkRotdelaySweep sweeps the legacy system's only real knob,
// showing the dead end the paper escaped: every rotdelay caps
// sequential reads near half the disk, and zero trades writes away.
func BenchmarkRotdelaySweep(b *testing.B) {
	rots := []int{8, 4, 0}
	// Each (rotdelay, direction) pair is an independent machine; the
	// runner spreads the six of them over the host cores.
	type point struct {
		rot   int
		write bool
	}
	var points []point
	for _, rot := range rots {
		points = append(points, point{rot, false}, point{rot, true})
	}
	var rates []float64
	for i := 0; i < b.N; i++ {
		var err error
		rates, err = runner.Map(len(points), runner.Options{}, func(job int) (float64, error) {
			return seqRateErr(points[job].rot, false, points[job].write)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for j, pt := range points {
		dir := "read"
		if pt.write {
			dir = "write"
		}
		b.ReportMetric(rates[j], fmt.Sprintf("rot%dms-%s-virtKB/s", pt.rot, dir))
	}
}

// seqRate measures a sequential 4MB read or write on the legacy engine
// (or clustered when clustered is true).
func seqRate(b *testing.B, rotdelay int, clustered, write bool) float64 {
	rate, err := seqRateErr(rotdelay, clustered, write)
	if err != nil {
		b.Fatal(err)
	}
	return rate
}

// seqRateErr is the runner-safe form of seqRate: private machine,
// errors returned rather than reported to a *testing.B.
func seqRateErr(rotdelay int, clustered, write bool) (float64, error) {
	o := ufsclust.Options{
		Mkfs: ufs.MkfsOpts{Rotdelay: rotdelay, Maxcontig: 1},
	}
	o.Engine = core.Config{ReadAhead: true}
	if clustered {
		o.Mkfs.Maxcontig = 15
		o.Engine.Clustered = true
		dc := driver.DefaultConfig()
		dc.MaxPhys = 128 << 10
		o.Driver = &dc
	}
	m, err := ufsclust.NewMachine(o)
	if err != nil {
		return 0, err
	}
	defer m.Close()
	const size = 4 << 20
	var elapsed sim.Time
	var runErr error
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/r")
		if err != nil {
			runErr = err
			return
		}
		chunk := make([]byte, 8192)
		if !write {
			for off := int64(0); off < size; off += 8192 {
				f.Write(p, off, chunk)
			}
			f.Purge(p)
		}
		t0 := p.Now()
		for off := int64(0); off < size; off += 8192 {
			if write {
				f.Write(p, off, chunk)
			} else {
				f.Read(p, off, chunk)
			}
		}
		f.Fsync(p)
		elapsed = p.Now() - t0
	})
	if err != nil {
		return 0, err
	}
	if runErr != nil {
		return 0, runErr
	}
	return float64(size) / 1024 / elapsed.Seconds(), nil
}

// --- Ablation: read-ahead ---------------------------------------------------

// BenchmarkReadAheadAblation isolates the read-ahead heuristic that
// motivates the rotdelay gap in the first place: without it, even the
// gap cannot save sequential reads.
func BenchmarkReadAheadAblation(b *testing.B) {
	for _, ra := range []bool{true, false} {
		ra := ra
		name := "with-readahead"
		if !ra {
			name = "without"
		}
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				o := ufsclust.Options{Mkfs: ufs.MkfsOpts{Rotdelay: 4, Maxcontig: 1}}
				o.Engine = core.Config{ReadAhead: ra}
				m, err := ufsclust.NewMachine(o)
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				const size = 4 << 20
				var elapsed sim.Time
				err = m.Run(func(p *sim.Proc) {
					f, err := m.Engine.Create(p, "/ra")
					if err != nil {
						b.Error(err)
						return
					}
					chunk := make([]byte, 8192)
					for off := int64(0); off < size; off += 8192 {
						f.Write(p, off, chunk)
					}
					f.Purge(p)
					t0 := p.Now()
					for off := int64(0); off < size; off += 8192 {
						f.Read(p, off, chunk)
					}
					elapsed = p.Now() - t0
				})
				if err != nil {
					b.Fatal(err)
				}
				rate = float64(size) / 1024 / elapsed.Seconds()
			}
			b.ReportMetric(rate, "virtKB/s")
		})
	}
}
