package ufsclust

import (
	"bytes"
	"fmt"
	"testing"

	"ufsclust/internal/disk"
	"ufsclust/internal/sim"
	"ufsclust/internal/vol"
)

// volMember is a small drive template for array machines: 200 cyl x
// 8 heads x 64 spt = 102400 sectors = 50 MB per member, so mkfs over a
// multi-member array stays quick.
func volMember() disk.Params {
	p := disk.DefaultParams()
	p.Geom = disk.UniformGeometry(200, 8, 64, 3600)
	return p
}

// TestUFSOnEveryVolumeLevel runs the full stack — engine, UFS, driver,
// volume, member disks — at every RAID level: write a 1 MB file, purge
// the cache, read it back, fsck the array, and (on redundant levels)
// check the redundancy invariant over the whole composed device.
func TestUFSOnEveryVolumeLevel(t *testing.T) {
	for _, cfg := range []vol.Config{
		{Level: vol.Concat, Members: 1},
		{Level: vol.Concat, Members: 2},
		{Level: vol.RAID0, Members: 3},
		{Level: vol.RAID1, Members: 2},
		{Level: vol.RAID5, Members: 4},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("%s-x%d", cfg.Level, cfg.Members), func(t *testing.T) {
			m, err := New(RunA(),
				WithSeed(3),
				WithDiskParams(volMember()),
				WithVolume(cfg))
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if m.Vol == nil || m.Dev != disk.Device(m.Vol) {
				t.Fatal("volume machine did not route Dev through the volume")
			}
			if m.Dev.Channels() != cfg.Members {
				t.Fatalf("device exposes %d channels, want %d", m.Dev.Channels(), cfg.Members)
			}
			data := make([]byte, 1<<20)
			for i := range data {
				data[i] = byte(i*13 + int(cfg.Level))
			}
			err = m.Run(func(p *sim.Proc) {
				f, err := m.Engine.Create(p, "/vol")
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				f.Write(p, 0, data)
				f.Fsync(p)
				f.Purge(p)
				got := make([]byte, len(data))
				f.Read(p, 0, got)
				if !bytes.Equal(got, data) {
					t.Error("data corrupted through the array")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := m.Fsck()
			if err != nil || !rep.Clean() {
				t.Fatalf("fsck: %v %v", err, rep.Problems)
			}
			if cfg.Level == vol.RAID1 || cfg.Level == vol.RAID5 {
				if bad, first := m.Vol.CheckParity(); bad > 0 {
					t.Fatalf("%d bad redundancy spans after the run: %v", bad, first)
				}
			}
			// Striped and mirrored levels spread a 1 MB file across
			// every spindle; concat fills members in address order, so
			// only member 0 need be busy there.
			if cfg.Level != vol.Concat {
				for i, d := range m.Vol.Members() {
					if d.Stats.Writes == 0 {
						t.Fatalf("member sd%d of %s saw no writes", i, cfg.Level)
					}
				}
			}
		})
	}
}

// TestVolumeSnapshotBoot moves a populated RAID-1 array between
// machines via member snapshots — the volume counterpart of WithImage.
func TestVolumeSnapshotBoot(t *testing.T) {
	cfg := vol.Config{Level: vol.RAID1, Members: 2}
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i * 31)
	}
	m, err := New(RunA(), WithSeed(5), WithDiskParams(volMember()), WithVolume(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.Run(func(p *sim.Proc) {
		f, err := m.Engine.Create(p, "/keep")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		f.Write(p, 0, data)
		f.Fsync(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	m.FS.SyncImage()
	imgs := m.Vol.Snapshot()

	m2, err := New(RunA(), WithSeed(6), WithDiskParams(volMember()),
		WithVolume(cfg), WithVolumeImages(imgs))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	err = m2.Run(func(p *sim.Proc) {
		f, err := m2.Engine.Open(p, "/keep")
		if err != nil {
			t.Errorf("open on rebooted array: %v", err)
			return
		}
		got := make([]byte, len(data))
		f.Read(p, 0, got)
		if !bytes.Equal(got, data) {
			t.Error("file bytes diverged across the snapshot boot")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m2.Fsck()
	if err != nil || !rep.Clean() {
		t.Fatalf("fsck after snapshot boot: %v %v", err, rep.Problems)
	}
}
