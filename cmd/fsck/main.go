// Command fsck checks the consistency of a UFS image created by
// cmd/mkfs (or dumped from a simulation): superblock, block and inode
// bitmaps, per-file block accounting, directory structure, link counts,
// and summary totals. It is the repository's proof of the paper's
// headline constraint: the clustered engine leaves the on-disk format
// byte-compatible with the legacy one.
package main

import (
	"flag"
	"fmt"
	"os"

	"ufsclust/internal/disk"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fsck <image>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	s := sim.New(0)
	defer s.Close()
	d := disk.New(s, "sd0", disk.DefaultParams())
	if err := d.LoadImage(f); err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		os.Exit(1)
	}
	rep, err := ufs.Fsck(d)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%d files, %d directories, %d fragments used, %d free\n",
		rep.Files, rep.Dirs, rep.UsedFrags, rep.FreeFrags)
	if !rep.Clean() {
		for _, p := range rep.Problems {
			fmt.Printf("  PROBLEM: %s\n", p)
		}
		fmt.Printf("%d problem(s) found\n", len(rep.Problems))
		os.Exit(1)
	}
	fmt.Println("clean")
}
