// Command faultlab sweeps power-cut crash points across an IObench-style
// sequential write and verifies crash consistency of every recovery: the
// machine is cut mid-run at sector granularity, a fresh machine mounts
// the torn image, repairs it, and every acknowledged-durable byte is
// checked against the written pattern.
//
// Usage:
//
//	faultlab [-run A] [-file MB] [-fsync BYTES] [-cuts N] [-parallel N] [-seed S]
//
// Exit status is 1 if any cut produces a crash-consistency violation
// (lost acknowledged data, corrupt bytes, or a dirty post-repair check).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ufsclust"
	"ufsclust/internal/faultlab"
)

func main() {
	runName := flag.String("run", "A", "IObench run configuration (A, B, C, D)")
	fileMB := flag.Int("file", 16, "workload file size in MB")
	fsync := flag.Int("fsync", 1<<20, "fsync interval in bytes (0 = only the final fsync)")
	cuts := flag.Int("cuts", 50, "number of evenly spaced crash points")
	parallel := flag.Int("parallel", 0, "host workers (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "workload seed (pattern + sim)")
	flag.Parse()

	var rc ufsclust.RunConfig
	found := false
	for _, r := range ufsclust.Runs() {
		if strings.EqualFold(r.Name, *runName) {
			rc, found = r, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "faultlab: unknown run %q\n", *runName)
		os.Exit(2)
	}

	w := faultlab.Workload{RC: rc, FileMB: *fileMB, FsyncEvery: *fsync, Seed: *seed}
	sr, err := faultlab.Sweep(w, *cuts, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultlab: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(sr.Format())
	if v := sr.Violations(); len(v) != 0 {
		fmt.Fprintf(os.Stderr, "faultlab: %d crash-consistency violations\n", len(v))
		os.Exit(1)
	}
}
