// Command faultlab sweeps power-cut crash points across an IObench-style
// sequential write and verifies crash consistency of every recovery: the
// machine is cut mid-run at sector granularity, a fresh machine mounts
// the torn image, repairs it, and every acknowledged-durable byte is
// checked against the written pattern.
//
// Usage:
//
//	faultlab [-run A] [-file MB] [-fsync BYTES] [-cuts N] [-parallel N] [-seed S]
//	         [-journal MODE] [-vol LEVEL] [-members N] [-stripe KB] [-degraded I,J]
//	faultlab -vol raid1 -members 2 -losemember 1
//
// With -vol the workload runs on a composed volume (concat, raid0,
// raid1, raid5) instead of the single drive; -degraded boots it with
// the listed members already dead, so the sweep proves the durability
// contract holds on a degraded array. -losemember skips the cut sweep
// and instead runs the spindle-loss round trip: build the file, arm a
// hard media fault on that member's first read, and verify a redundant
// volume serves every byte (then rebuilds), while a stripe set reports
// the loss.
//
// With -journal wal (or wal-clustered) the machine runs a metadata
// journal and every recovery goes through log replay instead of
// full-image repair; the report then carries the replay accounting
// (sectors read against the log-size bound).
//
// Exit status is 1 if any cut produces a crash-consistency violation
// (lost acknowledged data, corrupt bytes, or a dirty post-repair check).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ufsclust"
	"ufsclust/internal/faultlab"
	"ufsclust/internal/vol"
	"ufsclust/internal/wal"
)

func main() {
	runName := flag.String("run", "A", "IObench run configuration (A, B, C, D)")
	fileMB := flag.Int("file", 16, "workload file size in MB")
	fsync := flag.Int("fsync", 1<<20, "fsync interval in bytes (0 = only the final fsync)")
	cuts := flag.Int("cuts", 50, "number of evenly spaced crash points")
	parallel := flag.Int("parallel", 0, "host workers (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "workload seed (pattern + sim)")
	jmode := flag.String("journal", "off", "metadata journal (off, wal, wal-clustered)")
	volLevel := flag.String("vol", "", "run on a volume: concat, raid0|stripe, raid1|mirror, raid5")
	members := flag.Int("members", 0, "volume member count (default per level)")
	stripe := flag.Int("stripe", 0, "stripe unit in KB for raid0/raid5 (default 32)")
	degraded := flag.String("degraded", "", "comma-separated members dead from boot (redundant levels)")
	loseMember := flag.Int("losemember", -1, "run the spindle-loss round trip against this member instead of the cut sweep")
	flag.Parse()

	var rc ufsclust.RunConfig
	found := false
	for _, r := range ufsclust.Runs() {
		if strings.EqualFold(r.Name, *runName) {
			rc, found = r, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "faultlab: unknown run %q\n", *runName)
		os.Exit(2)
	}

	w := faultlab.Workload{RC: rc, FileMB: *fileMB, FsyncEvery: *fsync, Seed: *seed}
	switch *jmode {
	case "off":
	case "wal":
		w.Journal = &wal.Config{}
	case "wal-clustered":
		w.Journal = &wal.Config{Clustered: true}
	default:
		fmt.Fprintf(os.Stderr, "faultlab: unknown journal mode %q\n", *jmode)
		os.Exit(2)
	}
	if *volLevel != "" {
		lvl, ok := vol.ParseLevel(*volLevel)
		if !ok {
			fmt.Fprintf(os.Stderr, "faultlab: unknown volume level %q\n", *volLevel)
			os.Exit(2)
		}
		cfg := vol.Config{Level: lvl, Members: *members, StripeKB: *stripe}
		if cfg.Members == 0 {
			switch lvl {
			case vol.RAID5:
				cfg.Members = 3
			case vol.Concat:
				cfg.Members = 1
			default:
				cfg.Members = 2
			}
		}
		if *degraded != "" {
			for _, s := range strings.Split(*degraded, ",") {
				var i int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &i); err != nil {
					fmt.Fprintf(os.Stderr, "faultlab: bad -degraded member %q\n", s)
					os.Exit(2)
				}
				cfg.Degraded = append(cfg.Degraded, i)
			}
		}
		w.Volume = &cfg
	}

	if *loseMember >= 0 {
		if w.Volume == nil {
			fmt.Fprintln(os.Stderr, "faultlab: -losemember needs -vol")
			os.Exit(2)
		}
		rep, err := faultlab.RunDegradedMember(w, *loseMember)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultlab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("spindle loss sd%d on %s x%d: %s (member failed %v, rebuilt %v)\n",
			rep.Member, w.Volume.Level, w.Volume.Members, rep.Outcome, rep.Failed, rep.Rebuilt)
		if rep.Detail != "" {
			fmt.Printf("  %s\n", rep.Detail)
		}
		if rep.Outcome.Violation() && w.Volume.Level != vol.Concat && w.Volume.Level != vol.RAID0 {
			os.Exit(1)
		}
		return
	}

	sr, err := faultlab.Sweep(w, *cuts, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultlab: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(sr.Format())
	if v := sr.Violations(); len(v) != 0 {
		fmt.Fprintf(os.Stderr, "faultlab: %d crash-consistency violations\n", len(v))
		os.Exit(1)
	}
}
