// Command iobench reproduces the paper's Figures 9, 10, and 11: the
// IObench run configurations, transfer rates in KB/second, and the
// rate ratios relative to run A.
//
// Usage:
//
//	iobench [-file MB] [-ops N] [-runs A,B,C,D] [-ra fixed] [-list] [-ratios] [-parallel N]
//	iobench -ramatrix BENCH_iobench.json
//	iobench -volmatrix BENCH_iobench.json
//	iobench -vecmatrix BENCH_iobench.json
//	iobench -jmatrix BENCH_iobench.json
//
// -parallel runs the (run, kind) matrix on N host workers (0 means
// GOMAXPROCS). Every cell is an independent deterministic simulation,
// so the output is byte-identical to the serial run.
//
// -ramatrix skips the figures and instead writes the read-ahead policy
// comparison to the named JSON file: policy × {FSR, FRR, FMX} on run A
// under memory pressure (file twice physical memory), with transfer
// rates and the prefetch hit/waste counters.
//
// -volmatrix likewise writes the volume-layer comparison: cluster size
// (run A's 120 KB against run B's 8 KB) × RAID level × stripe width,
// sequential write and read rates plus the parity path counters.
//
// -vecmatrix writes the vectored-I/O strategy comparison: the FSTR
// strided-read cell (8 KB records) swept from dense to sparse strides
// under each Readv strategy, with transfer rates and the vec counters.
// Data sieving wins the dense strides, true list I/O the sparse ones —
// the crossover of Ching et al.'s noncontiguous-I/O study — and the
// auto rows show the density cutoff tracking the winner.
//
// -jmatrix writes the metadata-journal comparison: journal mode (off,
// per-record, clustered) × {FSW, FSR} on runs A and B, with transfer
// rates and the wal commit/checkpoint counters. The write cells price
// the log's steady-state cost (every metadata update commits twice:
// once to the log, once at checkpoint); the read cells pin that a
// journal is free when nothing dirties metadata.
//
// All matrix flags merge their section into the same JSON report file
// ({"ramatrix": ..., "volmatrix": ..., "vecmatrix": ..., "jmatrix":
// ...}), so bench.sh can refresh them independently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ufsclust"
	"ufsclust/internal/iobench"
	"ufsclust/internal/vol"
	"ufsclust/internal/wal"
)

// writeSection merges one named section into the JSON report at path,
// preserving the other sections already there (a legacy flat report is
// discarded: it carries no section keys worth keeping).
func writeSection(path, key string, section any) error {
	full := map[string]json.RawMessage{}
	if b, err := os.ReadFile(path); err == nil {
		var old map[string]json.RawMessage
		if json.Unmarshal(b, &old) == nil {
			for _, k := range []string{"ramatrix", "volmatrix", "vecmatrix", "jmatrix"} {
				if v, ok := old[k]; ok {
					full[k] = v
				}
			}
		}
	}
	raw, err := json.Marshal(section)
	if err != nil {
		return err
	}
	full[key] = raw
	out, err := json.MarshalIndent(full, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// raCell is one matrix entry in the -ramatrix report.
type raCell struct {
	Kind    string  `json:"kind"`
	Policy  string  `json:"policy"`
	RateKBs float64 `json:"rate_kbs"`
	RAHits  int64   `json:"ra_hits"`
	RAWaste int64   `json:"ra_waste"`
}

// raMatrix writes the policy comparison matrix. The cell parameters
// mirror the acceptance tests: a 2 MB file against 1 MB of memory, so
// the steady state has real replacement pressure; pure-random gets
// enough operations for fixed's accidental trigger matches to show up.
func raMatrix(path string) error {
	type cellParams struct {
		kind iobench.Kind
		ops  int
	}
	cells := []cellParams{{iobench.FSR, 0}, {iobench.FRR, 512}, {iobench.FMX, 16}}
	policies := []string{"fixed", "adaptive", "off"}
	report := struct {
		Run       string         `json:"run"`
		FileMB    int            `json:"file_mb"`
		MemMB     int            `json:"mem_mb"`
		RandomOps map[string]int `json:"random_ops"`
		Cells     []raCell       `json:"cells"`
	}{Run: "A", FileMB: 2, MemMB: 1, RandomOps: map[string]int{}}
	for _, c := range cells {
		report.RandomOps[string(c.kind)] = c.ops
		for _, name := range policies {
			pol, _ := iobench.PolicyFactory(name)
			prm := iobench.Params{FileMB: report.FileMB, RandomOps: c.ops, MemBytes: int64(report.MemMB) << 20, Policy: pol}
			res, snap, err := iobench.RunMeasured(ufsclust.RunA(), c.kind, prm)
			if err != nil {
				return err
			}
			report.Cells = append(report.Cells, raCell{
				Kind: string(c.kind), Policy: name, RateKBs: res.RateKBs(),
				RAHits: snap.Get("core.ra_hits"), RAWaste: snap.Get("vm.ra_waste"),
			})
		}
	}
	return writeSection(path, "ramatrix", report)
}

// volCell is one matrix entry in the -volmatrix report.
type volCell struct {
	Run              string  `json:"run"`
	Level            string  `json:"level"`
	Members          int     `json:"members"`
	StripeKB         int     `json:"stripe_kb,omitempty"`
	Kind             string  `json:"kind"`
	RateKBs          float64 `json:"rate_kbs"`
	SubRequests      int64   `json:"sub_requests"`
	FullStripeWrites int64   `json:"full_stripe_writes,omitempty"`
	ParityRMWRows    int64   `json:"parity_rmw_rows,omitempty"`
}

// volMatrix writes the volume comparison: for each cluster size (run A
// clusters at 120 KB, run B at 8 KB with rotdelay), each level, and —
// on the striped levels — each stripe width, the sequential write and
// read rates. The single-spindle concat row is the baseline; the
// parity counters show how much of RAID-5's write traffic ran the
// full-stripe fast path versus read-modify-write, which is the whole
// performance story of striping under a clustering file system.
func volMatrix(path string, fileMB int) error {
	type shape struct {
		cfg     vol.Config
		stripes []int
	}
	shapes := []shape{
		{vol.Config{Level: vol.Concat, Members: 1}, []int{0}},
		{vol.Config{Level: vol.RAID0, Members: 3}, []int{16, 32, 64}},
		{vol.Config{Level: vol.RAID1, Members: 2}, []int{0}},
		{vol.Config{Level: vol.RAID5, Members: 4}, []int{16, 32, 64}},
	}
	report := struct {
		FileMB int       `json:"file_mb"`
		Kinds  []string  `json:"kinds"`
		Cells  []volCell `json:"cells"`
	}{FileMB: fileMB, Kinds: []string{string(iobench.FSW), string(iobench.FSR)}}
	for _, rc := range []ufsclust.RunConfig{ufsclust.RunA(), ufsclust.RunB()} {
		for _, sh := range shapes {
			for _, st := range sh.stripes {
				cfg := sh.cfg
				cfg.StripeKB = st
				for _, kind := range []iobench.Kind{iobench.FSW, iobench.FSR} {
					prm := iobench.Params{FileMB: fileMB, Volume: &cfg}
					res, snap, err := iobench.RunMeasured(rc, kind, prm)
					if err != nil {
						return fmt.Errorf("%s %s x%d stripe %dK %s: %w",
							rc.Name, cfg.Level, cfg.Members, st, kind, err)
					}
					report.Cells = append(report.Cells, volCell{
						Run: rc.Name, Level: cfg.Level.String(), Members: cfg.Members,
						StripeKB: st, Kind: string(kind), RateKBs: res.RateKBs(),
						SubRequests:      snap.Get("vol.sub_requests"),
						FullStripeWrites: snap.Get("vol.full_stripe_writes"),
						ParityRMWRows:    snap.Get("vol.parity_rmw_rows"),
					})
				}
			}
		}
	}
	return writeSection(path, "volmatrix", report)
}

// vecCell is one matrix entry in the -vecmatrix report.
type vecCell struct {
	StrideKB     int     `json:"stride_kb"`
	Density      float64 `json:"density"`
	Strategy     string  `json:"strategy"`
	RateKBs      float64 `json:"rate_kbs"`
	VecRuns      int64   `json:"vec_runs"`
	VecCoalesced int64   `json:"vec_coalesced"`
	SieveWaste   int64   `json:"sieve_waste"`
	VecQueued    int64   `json:"vec_queued"`
}

// vecMatrix writes the Readv strategy comparison: the FSTR cell (2 KB
// records, 32 per call) swept across strides on run A under each
// strategy. Density — record over stride — is the independent variable:
// at 1.0 the vector is one contiguous run, and as the stride widens the
// sieve envelope reads ever more bytes it throws away while list I/O
// pays per-run transfers that the elevator batches into one sweep. The
// records are sub-block on purpose: that is the regime where sieving's
// clustered envelope genuinely beats per-run transfers at dense
// strides, so the sweep exhibits the crossover instead of list
// dominating everywhere.
func vecMatrix(path string, fileMB int) error {
	const recordKB = 2
	strides := []int{2, 4, 8, 16, 32, 64}
	strategies := []string{"naive", "sieve", "list", "auto"}
	report := struct {
		Run      string    `json:"run"`
		FileMB   int       `json:"file_mb"`
		RecordKB int       `json:"record_kb"`
		VecBatch int       `json:"vec_batch"`
		Cells    []vecCell `json:"cells"`
	}{Run: "A", FileMB: fileMB, RecordKB: recordKB, VecBatch: 32}
	for _, st := range strides {
		for _, name := range strategies {
			fac, _ := iobench.VecFactory(name)
			prm := iobench.Params{
				FileMB: fileMB, Record: recordKB << 10, Stride: st << 10,
				VecBatch: report.VecBatch, Vec: fac,
			}
			res, snap, err := iobench.RunMeasured(ufsclust.RunA(), iobench.FSTR, prm)
			if err != nil {
				return fmt.Errorf("stride %dK %s: %w", st, name, err)
			}
			report.Cells = append(report.Cells, vecCell{
				StrideKB: st, Density: float64(recordKB) / float64(st), Strategy: name,
				RateKBs:      res.RateKBs(),
				VecRuns:      snap.Get("core.vec_runs"),
				VecCoalesced: snap.Get("core.vec_coalesced"),
				SieveWaste:   snap.Get("core.sieve_waste"),
				VecQueued:    snap.Get("driver.vec_queued"),
			})
		}
	}
	return writeSection(path, "vecmatrix", report)
}

// jCell is one matrix entry in the -jmatrix report.
type jCell struct {
	Run              string  `json:"run"`
	Journal          string  `json:"journal"`
	Kind             string  `json:"kind"`
	RateKBs          float64 `json:"rate_kbs"`
	Commits          int64   `json:"wal_commits,omitempty"`
	CommitSectors    int64   `json:"wal_commit_sectors,omitempty"`
	Checkpoints      int64   `json:"wal_checkpoints,omitempty"`
	CheckpointBlocks int64   `json:"wal_checkpoint_blocks,omitempty"`
	JournalMetaWr    int64   `json:"journal_meta_writes,omitempty"`
}

// jMatrix writes the journal cost comparison: each journal mode (off,
// per-record commits, clustered commits) against the sequential write
// and read cells on runs A and B. FSW is where the log charges rent —
// the file grows, so every fsync interval commits inode and indirect
// block updates to the log before their home locations — and FSR is
// the control: a read-only steady state stages nothing, so the rate
// must match the unjournaled machine to the digit.
func jMatrix(path string, fileMB int) error {
	modes := []struct {
		name string
		cfg  *wal.Config
	}{
		{"off", nil},
		{"wal", &wal.Config{}},
		{"wal-clustered", &wal.Config{Clustered: true}},
	}
	report := struct {
		FileMB int      `json:"file_mb"`
		Kinds  []string `json:"kinds"`
		Cells  []jCell  `json:"cells"`
	}{FileMB: fileMB, Kinds: []string{string(iobench.FSW), string(iobench.FSR)}}
	for _, rc := range []ufsclust.RunConfig{ufsclust.RunA(), ufsclust.RunB()} {
		for _, mode := range modes {
			for _, kind := range []iobench.Kind{iobench.FSW, iobench.FSR} {
				prm := iobench.Params{FileMB: fileMB, Journal: mode.cfg}
				res, snap, err := iobench.RunMeasured(rc, kind, prm)
				if err != nil {
					return fmt.Errorf("%s %s %s: %w", rc.Name, mode.name, kind, err)
				}
				report.Cells = append(report.Cells, jCell{
					Run: rc.Name, Journal: mode.name, Kind: string(kind), RateKBs: res.RateKBs(),
					Commits:          snap.Get("wal.commits"),
					CommitSectors:    snap.Get("wal.commit_sectors"),
					Checkpoints:      snap.Get("wal.checkpoints"),
					CheckpointBlocks: snap.Get("wal.checkpoint_blocks"),
					JournalMetaWr:    snap.Get("fs.journal_meta_writes"),
				})
			}
		}
	}
	return writeSection(path, "jmatrix", report)
}

func main() {
	fileMB := flag.Int("file", 16, "benchmark file size in MB")
	ops := flag.Int("ops", 0, "random-phase operations (default file/8KB)")
	runsFlag := flag.String("runs", "A,B,C,D", "comma-separated run configurations")
	raFlag := flag.String("ra", "fixed", "read-ahead policy (fixed, adaptive, off)")
	matrix := flag.String("ramatrix", "", "write the read-ahead policy matrix to this JSON file and exit")
	volmat := flag.String("volmatrix", "", "write the volume (RAID level x stripe) matrix to this JSON file and exit")
	vecmat := flag.String("vecmatrix", "", "write the vectored-I/O (stride x strategy) matrix to this JSON file and exit")
	jmat := flag.String("jmatrix", "", "write the metadata-journal (mode x kind) matrix to this JSON file and exit")
	list := flag.Bool("list", false, "print Figure 9 (run descriptions) and exit")
	ratiosOnly := flag.Bool("ratios", false, "print only Figure 11 (ratios)")
	parallel := flag.Int("parallel", 1, "host workers for the run×kind matrix (0 = GOMAXPROCS)")
	flag.Parse()

	anyMatrix := false
	runMatrix := func(path string, fn func(string) error) {
		if path == "" {
			return
		}
		anyMatrix = true
		if err := fn(path); err != nil {
			fmt.Fprintf(os.Stderr, "iobench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("iobench: wrote %s\n", path)
	}
	runMatrix(*matrix, raMatrix)
	runMatrix(*volmat, func(p string) error { return volMatrix(p, 2) })
	runMatrix(*vecmat, func(p string) error { return vecMatrix(p, 8) })
	runMatrix(*jmat, func(p string) error { return jMatrix(p, 8) })
	if anyMatrix {
		return
	}

	all := map[string]ufsclust.RunConfig{}
	for _, rc := range ufsclust.Runs() {
		all[rc.Name] = rc
	}
	var runs []ufsclust.RunConfig
	for _, name := range strings.Split(*runsFlag, ",") {
		rc, ok := all[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "iobench: unknown run %q\n", name)
			os.Exit(2)
		}
		runs = append(runs, rc)
	}

	if *list {
		fmt.Println("Figure 9: IObench run descriptions")
		fmt.Printf("%-4s %8s %9s %8s %11s %11s\n", "", "cluster", "rotdelay", "UFS", "free-behind", "write-limit")
		for _, rc := range runs {
			fmt.Printf("%-4s %7dK %7dms %8s %11v %11v\n",
				rc.Name, rc.ClusterKB, rc.RotdelayMs, rc.UFSVersion, rc.FreeBehind, rc.WriteLimit)
		}
		return
	}

	pol, ok := iobench.PolicyFactory(*raFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "iobench: unknown read-ahead policy %q\n", *raFlag)
		os.Exit(2)
	}
	prm := iobench.Params{FileMB: *fileMB, RandomOps: *ops, Policy: pol}
	tab, err := iobench.RunAllParallel(runs, iobench.Kinds(), prm, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iobench: %v\n", err)
		os.Exit(1)
	}
	if !*ratiosOnly {
		fmt.Printf("Figure 10: IObench transfer rates in KB/second (%dMB file)\n", *fileMB)
		fmt.Print(tab.FormatRates(iobench.Kinds()))
		fmt.Println()
	}
	fmt.Println("Figure 11: IObench transfer rate ratios")
	fmt.Print(tab.FormatRatios(iobench.Kinds()))
}
