// Command iobench reproduces the paper's Figures 9, 10, and 11: the
// IObench run configurations, transfer rates in KB/second, and the
// rate ratios relative to run A.
//
// Usage:
//
//	iobench [-file MB] [-ops N] [-runs A,B,C,D] [-list] [-ratios] [-parallel N]
//
// -parallel runs the (run, kind) matrix on N host workers (0 means
// GOMAXPROCS). Every cell is an independent deterministic simulation,
// so the output is byte-identical to the serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ufsclust"
	"ufsclust/internal/iobench"
)

func main() {
	fileMB := flag.Int("file", 16, "benchmark file size in MB")
	ops := flag.Int("ops", 0, "random-phase operations (default file/8KB)")
	runsFlag := flag.String("runs", "A,B,C,D", "comma-separated run configurations")
	list := flag.Bool("list", false, "print Figure 9 (run descriptions) and exit")
	ratiosOnly := flag.Bool("ratios", false, "print only Figure 11 (ratios)")
	parallel := flag.Int("parallel", 1, "host workers for the run×kind matrix (0 = GOMAXPROCS)")
	flag.Parse()

	all := map[string]ufsclust.RunConfig{}
	for _, rc := range ufsclust.Runs() {
		all[rc.Name] = rc
	}
	var runs []ufsclust.RunConfig
	for _, name := range strings.Split(*runsFlag, ",") {
		rc, ok := all[strings.TrimSpace(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "iobench: unknown run %q\n", name)
			os.Exit(2)
		}
		runs = append(runs, rc)
	}

	if *list {
		fmt.Println("Figure 9: IObench run descriptions")
		fmt.Printf("%-4s %8s %9s %8s %11s %11s\n", "", "cluster", "rotdelay", "UFS", "free-behind", "write-limit")
		for _, rc := range runs {
			fmt.Printf("%-4s %7dK %7dms %8s %11v %11v\n",
				rc.Name, rc.ClusterKB, rc.RotdelayMs, rc.UFSVersion, rc.FreeBehind, rc.WriteLimit)
		}
		return
	}

	prm := iobench.Params{FileMB: *fileMB, RandomOps: *ops}
	tab, err := iobench.RunAllParallel(runs, iobench.Kinds(), prm, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iobench: %v\n", err)
		os.Exit(1)
	}
	if !*ratiosOnly {
		fmt.Printf("Figure 10: IObench transfer rates in KB/second (%dMB file)\n", *fileMB)
		fmt.Print(tab.FormatRates(iobench.Kinds()))
		fmt.Println()
	}
	fmt.Println("Figure 11: IObench transfer rate ratios")
	fmt.Print(tab.FormatRatios(iobench.Kinds()))
}
