// Command allocstat reproduces the paper's allocator-contiguity
// experiment: the average extent size the FFS allocator achieves for a
// large file on an empty file system (best case, paper: 1.5 MB average
// in a 13 MB file) and on a heavily fragmented, mostly-full one (worst
// case, paper: 62 KB average in a 16 MB file). With -layout it prints
// the placement patterns of Figures 4 and 5 instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"ufsclust"
	"ufsclust/internal/alloclab"
	"ufsclust/internal/sim"
	"ufsclust/internal/ufs"
)

func main() {
	bestMB := flag.Int("best", 13, "best-case file size in MB")
	worstMB := flag.Int("worst", 16, "worst-case file size in MB")
	full := flag.Float64("full", 0.85, "fragmented-fill target fraction")
	churn := flag.Int("churn", 3, "delete/refill churn cycles")
	layout := flag.Bool("layout", false, "print Figures 4/5 block placement instead")
	sweep := flag.Bool("sweep", false, "sweep worst-case contiguity across fill fractions instead")
	parallel := flag.Int("parallel", 0, "host workers for -sweep (0 = GOMAXPROCS)")
	flag.Parse()

	if *layout {
		printLayout()
		return
	}
	if *sweep {
		printSweep(int64(*worstMB)<<20, *churn, *parallel)
		return
	}

	best := measure(func(p *sim.Proc, fs *ufs.Fs) (*alloclab.Report, error) {
		return alloclab.BestCase(p, fs, int64(*bestMB)<<20)
	})
	fmt.Printf("best case (empty fs):        %s\n", best)
	fmt.Println("  paper: average extent 1.5MB in a 13MB file")

	worst := measure(func(p *sim.Proc, fs *ufs.Fs) (*alloclab.Report, error) {
		return alloclab.WorstCase(p, fs, int64(*worstMB)<<20,
			alloclab.AgeOpts{TargetFull: *full, Churn: *churn})
	})
	fmt.Printf("worst case (aged, %.0f%% full): %s\n", *full*100, worst)
	fmt.Println("  paper: average extent 62KB in a 16MB file")
}

func measure(fn func(p *sim.Proc, fs *ufs.Fs) (*alloclab.Report, error)) *alloclab.Report {
	m, err := ufsclust.NewMachineForRun(ufsclust.RunA())
	if err != nil {
		fatal(err)
	}
	defer m.Close()
	var rep *alloclab.Report
	err = m.Run(func(p *sim.Proc) {
		var ferr error
		rep, ferr = fn(p, m.FS)
		if ferr != nil {
			fatal(ferr)
		}
	})
	if err != nil {
		fatal(err)
	}
	return rep
}

// printSweep runs the aging sweep: worst-case contiguity as a function
// of how full the aged file system is, each point an independent
// machine, in parallel across host workers.
func printSweep(fileBytes int64, churn, workers int) {
	fills := []float64{0.5, 0.6, 0.7, 0.8, 0.85, 0.9}
	points := make([]alloclab.SweepPoint, len(fills))
	for i, f := range fills {
		points[i] = alloclab.SweepPoint{
			FileBytes: fileBytes,
			Age:       alloclab.AgeOpts{TargetFull: f, Churn: churn},
		}
	}
	results, err := alloclab.SweepWorstCase(ufsclust.RunA(), points, workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("worst-case contiguity vs fill fraction (%dMB file, churn %d)\n", fileBytes>>20, churn)
	fmt.Printf("%8s %12s %12s %8s\n", "full", "avg extent", "max extent", "extents")
	for _, r := range results {
		fmt.Printf("%7.0f%% %11dK %11dK %8d\n",
			r.Point.Age.TargetFull*100,
			r.Report.AvgExtent()>>10, r.Report.MaxExtent()>>10, len(r.Report.Extents))
	}
	fmt.Println("  paper: average extent 62KB in a 16MB file on the aged /home partition")
}

// printLayout shows where the allocator places the first blocks of a
// file under rotdelay=4ms (Figure 4, interleaved) and rotdelay=0
// (Figure 5, contiguous).
func printLayout() {
	for _, cfg := range []struct {
		name     string
		rotdelay int
	}{
		{"Figure 4: interleaved blocks (rotdelay 4ms)", 4},
		{"Figure 5: non-interleaved blocks (rotdelay 0)", 0},
	} {
		m, err := ufsclust.NewMachine(ufsclust.Options{
			Mkfs: ufs.MkfsOpts{Rotdelay: cfg.rotdelay, Maxcontig: 7},
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(cfg.name)
		err = m.Run(func(p *sim.Proc) {
			ip, err := m.FS.Create(p, "/layout")
			if err != nil {
				fatal(err)
			}
			var addrs []int32
			for lbn := int64(0); lbn < 8; lbn++ {
				fsbn, err := m.FS.BmapAlloc(p, ip, lbn, int(m.FS.SB.Bsize))
				if err != nil {
					fatal(err)
				}
				ip.D.Size = (lbn + 1) * int64(m.FS.SB.Bsize)
				addrs = append(addrs, fsbn)
			}
			base := addrs[0]
			fmt.Print("  track positions: ")
			for lbn, a := range addrs {
				fmt.Printf("%d@%d ", lbn, (a-base)/m.FS.SB.Frag)
			}
			fmt.Println()
		})
		m.Close()
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "allocstat: %v\n", err)
	os.Exit(1)
}
